package patchdb

import (
	"patchdb/internal/cast"
	"patchdb/internal/core/oversample"
)

// Variant identifies one of the eight if-statement templates of Fig. 5.
type Variant = oversample.Variant

// The eight control-flow variant templates.
const (
	VariantZeroOr    = oversample.VariantZeroOr
	VariantOneAnd    = oversample.VariantOneAnd
	VariantBoolEq    = oversample.VariantBoolEq
	VariantBoolNeg   = oversample.VariantBoolNeg
	VariantFlagSet   = oversample.VariantFlagSet
	VariantFlagClear = oversample.VariantFlagClear
	VariantFlagAnd   = oversample.VariantFlagAnd
	VariantFlagOr    = oversample.VariantFlagOr
)

// NumVariants is the number of variant templates.
const NumVariants = oversample.NumVariants

// Side selects whether the extra edit lands in the pre- or post-patch file
// version.
type Side = oversample.Side

// Sides of the merge construction (Sec. III-C-3).
const (
	ModifyAfter  = oversample.ModifyAfter
	ModifyBefore = oversample.ModifyBefore
)

// Synthetic is one generated artificial patch.
type Synthetic = oversample.Synthetic

// Oversampler synthesizes control-flow patch variants from full
// before/after file snapshots (Sec. III-C).
type Oversampler = oversample.Oversampler

// ParseC parses C source into an AST with line-accurate if-statement spans
// (the LLVM-AST substitute used to locate patched conditionals).
func ParseC(src string) (*cast.File, error) { return cast.Parse(src) }

// CFile is a parsed C translation unit.
type CFile = cast.File

// IfStmt is an if statement with its source span and condition offsets.
type IfStmt = cast.IfStmt

// ApplyVariant rewrites one if statement of src according to a variant
// template, preserving program semantics.
func ApplyVariant(src string, ifStmt *IfStmt, v Variant) (string, error) {
	return oversample.ApplyVariant(src, ifStmt, v)
}
