package patchdb

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleDataset() *Dataset {
	return &Dataset{
		NVD: []Record{
			{ID: "aaa", Repo: "r1", CVE: "CVE-2010-10001", Security: true, Pattern: PatternBoundCheck, Source: "nvd", Text: "t"},
		},
		Wild: []Record{
			{ID: "bbb", Repo: "r2", Security: true, Pattern: PatternNullCheck, Source: "wild", Text: "t"},
		},
		NonSecurity: []Record{
			{ID: "ccc", Repo: "r1", Source: "wild", Text: "t"},
		},
		Synthetic: []Record{},
	}
}

func TestSaveJSONAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.json")
	ds := sampleDataset()

	// First write, then overwrite: the artifact must stay loadable and no
	// temp files may be left behind.
	for i := 0; i < 2; i++ {
		if err := ds.SaveJSON(path); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	got, err := LoadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats() != ds.Stats() {
		t.Errorf("round trip stats: %+v vs %+v", got.Stats(), ds.Stats())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "ds.json" {
			t.Errorf("leftover temp file %q", e.Name())
		}
	}
}

func TestSaveJSONFailureKeepsOldArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.json")
	if err := sampleDataset().SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Make the directory read-only so the temp-file creation fails: the
	// existing artifact must be untouched.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Geteuid() == 0 {
		t.Skip("running as root: read-only directory does not block writes")
	}
	if err := sampleDataset().SaveJSON(path); err == nil {
		t.Fatal("save into read-only dir succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("failed save modified the existing artifact")
	}
}

func TestLoadDatasetRejectsTrailingGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.json")
	if err := sampleDataset().SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, tail := range []string{"garbage", "{\"nvd\":[]}", "[1,2,3]"} {
		if err := os.WriteFile(path, append(append([]byte{}, doc...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadDatasetFile(path); err == nil {
			t.Errorf("trailing %q accepted", tail)
		}
	}

	// Trailing whitespace is fine.
	if err := os.WriteFile(path, append(append([]byte{}, doc...), " \n\t\n"...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDatasetFile(path); err != nil {
		t.Errorf("trailing whitespace rejected: %v", err)
	}
}

func TestLoadDatasetNormalizesNullComponents(t *testing.T) {
	ds, err := LoadDataset(strings.NewReader(`{"nvd": null, "wild": null, "non_security": null, "synthetic": null}`))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NVD == nil || ds.Wild == nil || ds.NonSecurity == nil || ds.Synthetic == nil {
		t.Errorf("null components not normalized: %+v", ds)
	}
	if ds.Stats() != (Stats{}) {
		t.Errorf("stats = %+v, want zero", ds.Stats())
	}
	// An empty document behaves the same.
	ds, err = LoadDataset(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NVD == nil {
		t.Error("absent components not normalized")
	}
}

func TestLoadDatasetRejectsRecordWithoutID(t *testing.T) {
	_, err := LoadDataset(strings.NewReader(`{"wild": [{"repo": "r", "security": true, "source": "wild", "text": "t"}]}`))
	if err == nil {
		t.Fatal("record without id accepted")
	}
	if !strings.Contains(err.Error(), "no id") {
		t.Errorf("unexpected error: %v", err)
	}
}
