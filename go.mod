module patchdb

go 1.24
