package patchdb

import (
	"patchdb/internal/corpus"
	"patchdb/internal/fixpattern"
	"patchdb/internal/signature"
)

// The types below surface the paper's Sec. V usage scenarios: patch-enhanced
// vulnerability signatures for vulnerability / patch presence detection, and
// fix-pattern mining for automatic patch generation research.

// VulnSignature is a two-sided fingerprint (vulnerable code + fix) derived
// from a security patch.
type VulnSignature = signature.Signature

// SignatureOptions tunes signature generation.
type SignatureOptions = signature.Options

// SignatureMatcher tests target code against vulnerability signatures.
type SignatureMatcher = signature.Matcher

// MatchResult is the outcome of one presence test.
type MatchResult = signature.MatchResult

// PresenceStatus classifies target code relative to a signature.
type PresenceStatus = signature.Status

// Presence statuses.
const (
	PresenceUnknown    = signature.Unknown
	PresenceVulnerable = signature.Vulnerable
	PresencePatched    = signature.Patched
)

// GenerateSignature builds a vulnerability signature from a security patch
// (Sec. V-A-1). It fails for patches too small or abstraction-invariant to
// fingerprint.
func GenerateSignature(p *Patch, cve string, opts SignatureOptions) (*VulnSignature, error) {
	return signature.Generate(p, cve, opts)
}

// NewSignatureMatcher builds a matcher over signatures.
func NewSignatureMatcher(sigs []*VulnSignature) *SignatureMatcher {
	return signature.NewMatcher(sigs)
}

// FixTemplate is one mined fix pattern (Sec. V-A-2, Table VII).
type FixTemplate = fixpattern.Template

// FixPatternInput couples a security patch with its pattern class for
// mining.
type FixPatternInput = fixpattern.Input

// FixPatternMiner extracts frequent fix templates from security patches.
type FixPatternMiner = fixpattern.Miner

// MineFixPatterns summarizes recurring fix shapes across labeled security
// patches with default mining parameters.
func MineFixPatterns(inputs []FixPatternInput) []FixTemplate {
	return fixpattern.Miner{}.Mine(inputs)
}

// RenderFixPatterns prints templates grouped by class, Table VII style.
func RenderFixPatterns(templates []FixTemplate) string {
	return fixpattern.Render(templates)
}

// MineDatasetFixPatterns mines fix patterns directly from a dataset's
// security patches (skipping records whose text fails to parse).
func MineDatasetFixPatterns(d *Dataset, miner FixPatternMiner) ([]FixTemplate, error) {
	var inputs []FixPatternInput
	for _, r := range d.SecurityPatches() {
		p, err := r.Patch()
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, FixPatternInput{Patch: p, Pattern: corpus.Pattern(r.Pattern)})
	}
	return miner.Mine(inputs), nil
}
