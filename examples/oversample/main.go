// Oversampling example: apply the eight control-flow variant templates of
// the paper's Fig. 5 to a patched if statement and print the resulting
// synthetic patches.
package main

import (
	"fmt"
	"log"

	"patchdb"
)

// A tiny "repository": one file before and after a security fix that adds a
// bound check (the kind of patch ~70% of security fixes resemble).
var (
	before = map[string]string{"src/copy.c": `#include <string.h>

int copy_frame(char *dst, const char *src, int len)
{
	int ret = 0;
	memcpy(dst, src, len);
	ret = len;
	return ret;
}
`}
	after = map[string]string{"src/copy.c": `#include <string.h>

int copy_frame(char *dst, const char *src, int len)
{
	int ret = 0;
	if (len < 0 || len > 4096)
		return -1;
	memcpy(dst, src, len);
	ret = len;
	return ret;
}
`}
)

func main() {
	// The natural patch.
	natural := patchdb.ComputePatch("abc123", "fix out-of-bounds copy", before, after, 3)
	fmt.Println("NATURAL PATCH:")
	fmt.Println(patchdb.FormatPatch(natural))

	// Generate every (variant, side) synthetic patch for it.
	ov := &patchdb.Oversampler{}
	syns, err := ov.Synthesize("abc123", before, after)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d synthetic patches (8 templates x before/after sides)\n\n", len(syns))

	for _, s := range syns {
		if s.Side != patchdb.ModifyAfter {
			continue // print the AFTER-side variants; BEFORE-side are symmetric
		}
		fmt.Printf("--- variant %v (if at line %d) ---\n", s.Variant, s.Line)
		fmt.Println(patchdb.FormatPatch(s.Patch))
	}
}
