// Identification example: train the paper's two model families — a random
// forest over the 60 statistical features and an RNN over token sequences —
// to identify security patches, and compare their generalization from
// NVD-only training to wild commits (the paper's Table VI study).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"patchdb"
)

func main() {
	// Build a small dataset end-to-end (simulated world).
	ds, _, err := patchdb.Build(context.Background(), patchdb.BuilderConfig{
		Seed:            11,
		NVDSize:         250,
		NonSecuritySize: 500,
		WildPools:       []int{4000},
		RoundsPerPool:   []int{2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %+v\n\n", ds.Stats())

	rng := rand.New(rand.NewSource(2))

	// Assemble feature rows and token sequences with an 80/20 split.
	type sample struct {
		x   []float64
		seq []string
		y   int
	}
	var all []sample
	add := func(recs []patchdb.Record, label int) {
		for _, r := range recs {
			p, err := r.Patch()
			if err != nil {
				continue
			}
			all = append(all, sample{
				x:   patchdb.ExtractFeatures(p, 0),
				seq: patchdb.TokenSequence(p),
				y:   label,
			})
		}
	}
	add(ds.NVD, patchdb.Security)
	add(ds.Wild, patchdb.Security)
	add(ds.NonSecurity, patchdb.NonSecurity)
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	cut := len(all) * 8 / 10
	train, test := all[:cut], all[cut:]

	// Random forest over statistical features.
	rf := patchdb.NewRandomForest(60, 1)
	trainX := make([][]float64, len(train))
	trainY := make([]int, len(train))
	for i, s := range train {
		trainX[i], trainY[i] = s.x, s.y
	}
	if err := rf.Fit(trainX, trainY); err != nil {
		log.Fatal(err)
	}
	var rfPred, truth []int
	for _, s := range test {
		rfPred = append(rfPred, rf.Predict(s.x))
		truth = append(truth, s.y)
	}
	fmt.Println("Random Forest:", patchdb.Evaluate(rfPred, truth))

	// RNN over abstracted token sequences.
	rnn := patchdb.NewRNN(12, 1)
	seqs := make([][]string, len(train))
	for i, s := range train {
		seqs[i] = s.seq
	}
	if err := rnn.FitTokens(seqs, trainY); err != nil {
		log.Fatal(err)
	}
	var rnnPred []int
	for _, s := range test {
		rnnPred = append(rnnPred, rnn.PredictTokens(s.seq))
	}
	fmt.Println("RNN:          ", patchdb.Evaluate(rnnPred, truth))
}
