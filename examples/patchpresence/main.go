// Patch presence example (paper Sec. V-A-1): build vulnerability signatures
// from a constructed dataset's security patches and use them to audit a
// downstream codebase — detecting vulnerable clones and confirming patched
// code, then mine Table VII-style fix patterns from the same dataset.
package main

import (
	"context"
	"fmt"
	"log"

	"patchdb"
)

func main() {
	// Build a small PatchDB.
	ds, _, err := patchdb.Build(context.Background(), patchdb.BuilderConfig{
		Seed:            19,
		NVDSize:         120,
		NonSecuritySize: 240,
		WildPools:       []int{1500},
		RoundsPerPool:   []int{1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Generate signatures from every security patch that can be
	// fingerprinted.
	var sigs []*patchdb.VulnSignature
	rejected := 0
	for _, r := range ds.SecurityPatches() {
		p, err := r.Patch()
		if err != nil {
			continue
		}
		sig, err := patchdb.GenerateSignature(p, r.CVE, patchdb.SignatureOptions{})
		if err != nil {
			rejected++ // too small or abstraction-invariant
			continue
		}
		sigs = append(sigs, sig)
	}
	fmt.Printf("signatures: %d generated, %d patches rejected as unfingerprintable\n",
		len(sigs), rejected)

	// "Downstream codebase": a vendored copy of code fixed by the first
	// usable signature — we reconstruct its pre-patch version from the
	// dataset record and scan it.
	matcher := patchdb.NewSignatureMatcher(sigs)
	// The synthetic corpus contains many near-clone functions, so a strict
	// containment threshold keeps cross-matches down (real-world signature
	// systems face the same tradeoff).
	matcher.Threshold = 0.95
	target := vulnerableSnapshot(ds)
	if target == "" {
		log.Fatal("no reconstructable target found")
	}
	vulnerable, patched := matcher.Scan(target)
	fmt.Printf("\nscanning downstream code (%d bytes):\n", len(target))
	for _, sig := range vulnerable {
		fmt.Printf("  VULNERABLE to %s (patch %.8s not applied)\n", orUnindexed(sig.CVE), sig.ID)
	}
	fmt.Printf("  (%d signatures matched as already patched, %d total checked)\n",
		len(patched), matcher.Len())

	// Mine fix patterns from the dataset (Sec. V-A-2).
	templates, err := patchdb.MineDatasetFixPatterns(ds, patchdb.FixPatternMiner{MinSupport: 5, TopK: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(patchdb.RenderFixPatterns(templates))
}

// vulnerableSnapshot reconstructs a pre-patch file from a dataset record by
// reverse-applying its patch conceptually: here we simply re-derive the
// before-version text from the patch hunks.
func vulnerableSnapshot(ds *patchdb.Dataset) string {
	for _, r := range ds.NVD {
		p, err := r.Patch()
		if err != nil || len(p.Files) == 0 {
			continue
		}
		var out []string
		for _, h := range p.Files[0].Hunks {
			for _, ln := range h.Lines {
				// Context + removed lines reconstruct the before version.
				if ln.Kind != patchdb.LineAdded {
					out = append(out, ln.Text)
				}
			}
		}
		if len(out) > 5 {
			text := ""
			for _, ln := range out {
				text += ln + "\n"
			}
			return text
		}
	}
	return ""
}

func orUnindexed(cve string) string {
	if cve == "" {
		return "a silent (unindexed) vulnerability"
	}
	return cve
}
