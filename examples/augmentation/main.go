// Augmentation example: build a small simulated world end-to-end with
// patchdb.Build — crawl the NVD feed, run nearest-link augmentation rounds
// with simulated expert verification, synthesize variants — then compare the
// nearest-link hit ratio against brute-force screening.
package main

import (
	"context"
	"fmt"
	"log"

	"patchdb"
)

func main() {
	ds, report, err := patchdb.Build(context.Background(), patchdb.BuilderConfig{
		Seed:              7,
		NVDSize:           150,
		NonSecuritySize:   300,
		WildPools:         []int{3000, 4000},
		RoundsPerPool:     []int{2, 1},
		SyntheticPerPatch: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("NVD crawl: %d CVE entries, %d with patch links, %d patches downloaded\n",
		report.Crawl.Entries, report.Crawl.WithPatchRefs, report.Crawl.Downloaded)
	fmt.Println("\naugmentation rounds (cf. paper Table II):")
	totalCand, totalSec := 0, 0
	for _, r := range report.Rounds {
		fmt.Printf("  %v\n", r)
		totalCand += r.Candidates
		totalSec += r.Verified
	}

	stats := ds.Stats()
	fmt.Printf("\ndataset: %d NVD + %d wild security, %d non-security, %d synthetic\n",
		stats.NVD, stats.Wild, stats.NonSecurity, stats.Synthetic)

	// Compare with brute force: screening the whole wild would inspect every
	// commit for a 6-10%% hit rate; nearest link inspected far fewer.
	ratio := float64(totalSec) / float64(totalCand)
	fmt.Printf("\nnearest link: %d/%d candidates verified as security (%.0f%%)\n",
		totalSec, totalCand, 100*ratio)
	fmt.Printf("human verifications spent: %d (brute force would need the full pools)\n",
		report.HumanVerifications)
}
