// Quickstart: parse a security patch (the paper's Listing 1,
// CVE-2019-20912), extract its Table I feature vector, inspect its token
// stream, and categorize its fix pattern.
package main

import (
	"fmt"
	"log"
	"strings"

	"patchdb"
)

// listing1 is the stack-underflow fix of CVE-2019-20912 shown in the
// paper's Listing 1.
const listing1 = `commit b84c2cab55948a5ee70860779b2640913e3ee1ed

    fix stack underflow in bit_write_UMC

diff --git a/src/bits.c b/src/bits.c
index 014b04fe4..a3692bdc6 100644
--- a/src/bits.c
+++ b/src/bits.c
@@ -953,7 +953,7 @@ bit_write_UMC (Bit_Chain *dat, BITCODE_UMC val)
       if (byte[i] & 0x7f)
         break;
     }
-  if (byte[i] & 0x40)
+  if (byte[i] & 0x40 && i > 0)
     byte[i] &= 0x7f;
   for (j = 4; j >= i; j--)
     {
`

func main() {
	patch, err := patchdb.ParsePatch(listing1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("commit  %s\n", patch.Commit)
	fmt.Printf("files   %d, hunks %d\n", len(patch.Files), len(patch.HunkList()))
	fmt.Printf("message %q\n\n", patch.Message)

	// The 60-dimensional syntactic feature vector of Table I.
	vec := patchdb.ExtractFeatures(patch, 0)
	names := patchdb.FeatureNames()
	fmt.Println("non-zero features:")
	for i, v := range vec {
		if v != 0 {
			fmt.Printf("  %-22s %6.2f\n", names[i], v)
		}
	}

	// The abstracted token stream the RNN classifier consumes.
	seq := patchdb.TokenSequence(patch)
	fmt.Printf("\ntoken stream (%d tokens): %s ...\n",
		len(seq), strings.Join(seq[:min(18, len(seq))], " "))

	// Rule-based pattern categorization (Table V taxonomy).
	fmt.Printf("\npattern: %v\n", patchdb.CategorizePatch(patch))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
