package patchdb

import (
	"context"
	"strings"
	"testing"
)

func buildSmall(t *testing.T) *Dataset {
	t.Helper()
	ds, _, err := Build(context.Background(), BuilderConfig{
		Seed:              13,
		NVDSize:           40,
		NonSecuritySize:   80,
		WildPools:         []int{500},
		RoundsPerPool:     []int{1},
		SyntheticPerPatch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSignatureFacade(t *testing.T) {
	ds := buildSmall(t)
	var sigs []*VulnSignature
	for _, r := range ds.NVD {
		p, err := r.Patch()
		if err != nil {
			t.Fatal(err)
		}
		sig, err := GenerateSignature(p, r.CVE, SignatureOptions{})
		if err != nil {
			continue
		}
		sigs = append(sigs, sig)
	}
	if len(sigs) == 0 {
		t.Fatal("no signatures generated")
	}
	m := NewSignatureMatcher(sigs)
	if m.Len() != len(sigs) {
		t.Errorf("matcher len = %d", m.Len())
	}
	res := m.Test(sigs[0], "int unrelated(void) { return 0; }\n")
	if res.Status != PresenceUnknown {
		t.Errorf("unrelated code status = %v", res.Status)
	}
}

func TestFixPatternFacade(t *testing.T) {
	ds := buildSmall(t)
	templates, err := MineDatasetFixPatterns(ds, FixPatternMiner{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(templates) == 0 {
		t.Fatal("no templates mined")
	}
	out := RenderFixPatterns(templates)
	if !strings.Contains(out, "Table VII") {
		t.Error("render missing reference")
	}
	// The convenience wrapper with defaults works too.
	var inputs []FixPatternInput
	for _, r := range ds.SecurityPatches() {
		p, err := r.Patch()
		if err != nil {
			continue
		}
		inputs = append(inputs, FixPatternInput{Patch: p, Pattern: r.Pattern})
	}
	_ = MineFixPatterns(inputs)
}

func TestSyntheticRecordsLabeled(t *testing.T) {
	ds := buildSmall(t)
	if len(ds.Synthetic) == 0 {
		t.Fatal("no synthetic records")
	}
	var pos, neg int
	for _, r := range ds.Synthetic {
		if r.Source != "synthetic" {
			t.Fatalf("synthetic record with source %q", r.Source)
		}
		if r.Security {
			pos++
		} else {
			neg++
		}
		if !strings.Contains(r.ID, "-syn-") {
			t.Errorf("synthetic id %q lacks variant marker", r.ID)
		}
	}
	if pos == 0 || neg == 0 {
		t.Errorf("synthetic labels unbalanced: %d pos, %d neg", pos, neg)
	}
}

func TestLineKindConstants(t *testing.T) {
	if LineContext.String() != " " || LineRemoved.String() != "-" || LineAdded.String() != "+" {
		t.Error("line kind markers wrong")
	}
}
