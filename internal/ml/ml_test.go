package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvaluate(t *testing.T) {
	pred := []int{1, 1, 0, 0, 1, 0}
	truth := []int{1, 0, 0, 1, 1, 0}
	m := Evaluate(pred, truth)
	if m.TP != 2 || m.FP != 1 || m.TN != 2 || m.FN != 1 {
		t.Fatalf("confusion = %+v", m)
	}
	if math.Abs(m.Precision-2.0/3) > 1e-9 {
		t.Errorf("precision = %v", m.Precision)
	}
	if math.Abs(m.Recall-2.0/3) > 1e-9 {
		t.Errorf("recall = %v", m.Recall)
	}
	if math.Abs(m.Accuracy-4.0/6) > 1e-9 {
		t.Errorf("accuracy = %v", m.Accuracy)
	}
	if math.Abs(m.F1-2.0/3) > 1e-9 {
		t.Errorf("f1 = %v", m.F1)
	}
}

func TestEvaluateDegenerate(t *testing.T) {
	m := Evaluate([]int{0, 0}, []int{0, 0})
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("all-negative metrics = %+v", m)
	}
	if m.Accuracy != 1 {
		t.Errorf("accuracy = %v", m.Accuracy)
	}
	if s := m.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestConfidenceInterval95(t *testing.T) {
	ci := ConfidenceInterval95(0.5, 100)
	if math.Abs(ci-1.96*0.05) > 1e-9 {
		t.Errorf("ci = %v", ci)
	}
	if ConfidenceInterval95(0.5, 0) != 0 {
		t.Error("n=0 must give 0")
	}
	if ConfidenceInterval95(0, 100) != 0 {
		t.Error("p=0 must give 0")
	}
}

func TestSplitStratified(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 100; i++ {
		y := NonSecurity
		if i < 20 {
			y = Security
		}
		d.Append([]float64{float64(i)}, y, "")
	}
	rng := rand.New(rand.NewSource(3))
	train, test := d.Split(0.8, rng)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes = %d/%d", train.Len(), test.Len())
	}
	if train.CountLabel(Security) != 16 || test.CountLabel(Security) != 4 {
		t.Errorf("stratification broken: %d/%d positives",
			train.CountLabel(Security), test.CountLabel(Security))
	}
	// No row in both splits.
	seen := map[float64]bool{}
	for _, row := range train.X {
		seen[row[0]] = true
	}
	for _, row := range test.X {
		if seen[row[0]] {
			t.Fatalf("row %v in both splits", row)
		}
	}
}

func TestMergeAndSubset(t *testing.T) {
	a := &Dataset{}
	a.Append([]float64{1}, Security, "a")
	b := &Dataset{}
	b.Append([]float64{2}, NonSecurity, "b")
	m := Merge(a, b)
	if m.Len() != 2 || m.IDs[1] != "b" {
		t.Fatalf("merge = %+v", m)
	}
	s := m.Subset([]int{1})
	if s.Len() != 1 || s.Y[0] != NonSecurity {
		t.Fatalf("subset = %+v", s)
	}
}

func TestNormalizer(t *testing.T) {
	d := &Dataset{X: [][]float64{{2, -4, 0}, {1, 8, 0}}, Y: []int{0, 1}}
	n := FitNormalizer(d)
	if len(n.Weights) != 3 {
		t.Fatalf("weights = %v", n.Weights)
	}
	row := n.Apply([]float64{2, 8, 5})
	if row[0] != 1 || row[1] != 1 {
		t.Errorf("normalized = %v", row)
	}
	// Zero-variance dimension gets weight 1.
	if n.Weights[2] != 1 {
		t.Errorf("constant dim weight = %v", n.Weights[2])
	}
	// Sign preserved for net features.
	neg := n.Apply([]float64{-2, -8, 0})
	if neg[0] != -1 || neg[1] != -1 {
		t.Errorf("sign lost: %v", neg)
	}
	all := n.ApplyAll(d)
	if all.Len() != 2 || all.X[0][1] != -0.5 {
		t.Errorf("ApplyAll = %+v", all.X)
	}
}

type constClassifier struct{ p []float64 }

func (c *constClassifier) Fit([][]float64, []int) error { return nil }
func (c *constClassifier) Predict(x []float64) int      { return 0 }
func (c *constClassifier) Proba(x []float64) float64    { return x[0] }

func TestArgmaxProba(t *testing.T) {
	rows := [][]float64{{0.1}, {0.9}, {0.5}, {0.7}}
	got := ArgmaxProba(&constClassifier{}, rows, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("ArgmaxProba = %v", got)
	}
	// k larger than rows.
	if got := ArgmaxProba(&constClassifier{}, rows, 10); len(got) != 4 {
		t.Errorf("clamped k = %v", got)
	}
}

func TestSortSliceProperty(t *testing.T) {
	f := func(xs []float64) bool {
		s := append([]float64(nil), xs...)
		sortSlice(s, func(a, b float64) bool { return a < b })
		for i := 1; i < len(s); i++ {
			if s[i-1] > s[i] {
				return false
			}
		}
		return len(s) == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateClassifier(t *testing.T) {
	d := &Dataset{X: [][]float64{{0.9}, {0.1}}, Y: []int{1, 0}}
	c := &thresholdClassifier{}
	m := EvaluateClassifier(c, d)
	if m.Accuracy != 1 {
		t.Errorf("accuracy = %v", m.Accuracy)
	}
}

type thresholdClassifier struct{}

func (c *thresholdClassifier) Fit([][]float64, []int) error { return nil }
func (c *thresholdClassifier) Predict(x []float64) int {
	if x[0] >= 0.5 {
		return Security
	}
	return NonSecurity
}
func (c *thresholdClassifier) Proba(x []float64) float64 { return x[0] }
