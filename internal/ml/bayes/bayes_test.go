package bayes

import (
	"errors"
	"math/rand"
	"testing"

	"patchdb/internal/ml"
)

func blobs(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		label := i % 2
		shift := float64(label) * 2.5
		x[i] = []float64{shift + rng.NormFloat64(), -shift + rng.NormFloat64(), rng.NormFloat64()}
		y[i] = label
	}
	return x, y
}

func accuracy(c ml.Classifier, x [][]float64, y []int) float64 {
	hits := 0
	for i := range x {
		if c.Predict(x[i]) == y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(x))
}

func TestGaussianNBSeparable(t *testing.T) {
	x, y := blobs(600, 1)
	g := &GaussianNB{}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := blobs(300, 2)
	if acc := accuracy(g, xt, yt); acc < 0.9 {
		t.Errorf("GaussianNB accuracy = %.2f", acc)
	}
}

func TestGaussianNBProba(t *testing.T) {
	x, y := blobs(400, 3)
	g := &GaussianNB{}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	deepPos := g.Proba([]float64{4, -4, 0})
	deepNeg := g.Proba([]float64{-1.5, 1.5, 0})
	if deepPos < 0.9 {
		t.Errorf("deep positive proba = %v", deepPos)
	}
	if deepNeg > 0.1 {
		t.Errorf("deep negative proba = %v", deepNeg)
	}
	if g2 := (&GaussianNB{}); g2.Proba([]float64{0}) != 0 {
		t.Error("unfit proba != 0")
	}
}

func TestGaussianNBSingleClass(t *testing.T) {
	// All-positive training: must not NaN/panic and must lean positive.
	x := [][]float64{{1, 2}, {1.5, 2.5}, {0.8, 1.9}}
	y := []int{1, 1, 1}
	g := &GaussianNB{}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if p := g.Proba([]float64{1, 2}); p < 0.5 || p != p {
		t.Errorf("single-class proba = %v", p)
	}
}

func TestDiscreteNBSeparable(t *testing.T) {
	x, y := blobs(600, 4)
	d := &DiscreteNB{Bins: 6}
	if err := d.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := blobs(300, 5)
	if acc := accuracy(d, xt, yt); acc < 0.85 {
		t.Errorf("DiscreteNB accuracy = %.2f", acc)
	}
}

func TestTANSeparable(t *testing.T) {
	x, y := blobs(600, 6)
	tan := &TAN{Bins: 4}
	if err := tan.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := blobs(300, 7)
	if acc := accuracy(tan, xt, yt); acc < 0.85 {
		t.Errorf("TAN accuracy = %.2f", acc)
	}
}

func TestTANStructureIsTree(t *testing.T) {
	x, y := blobs(300, 8)
	tan := &TAN{Bins: 3}
	if err := tan.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Feature 0 is the root (-1); every other feature has exactly one parent
	// and the parent graph is acyclic.
	if tan.parent[0] != -1 {
		t.Errorf("root parent = %d", tan.parent[0])
	}
	for j := 1; j < len(tan.parent); j++ {
		p := tan.parent[j]
		if p < 0 || p >= len(tan.parent) {
			t.Fatalf("feature %d parent %d out of range", j, p)
		}
		// Walk to the root; must terminate.
		seen := map[int]bool{j: true}
		for cur := p; cur != -1; cur = tan.parent[cur] {
			if seen[cur] {
				t.Fatalf("cycle through feature %d", cur)
			}
			seen[cur] = true
		}
	}
}

func TestAllRejectEmpty(t *testing.T) {
	for name, c := range map[string]ml.Classifier{
		"gaussian": &GaussianNB{}, "discrete": &DiscreteNB{}, "tan": &TAN{},
	} {
		if err := c.Fit(nil, nil); !errors.Is(err, ml.ErrEmptyDataset) {
			t.Errorf("%s: err = %v", name, err)
		}
	}
}

func TestDiscretizerBins(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	d := fitDiscretizer(x, 4)
	if got := d.bins(0); got != 4 {
		t.Fatalf("bins = %d", got)
	}
	if d.bin(0, 0) != 0 {
		t.Error("below-min value not in bin 0")
	}
	if d.bin(0, 100) != 3 {
		t.Error("above-max value not in last bin")
	}
	if d.bin(0, 1) >= d.bin(0, 8) {
		t.Error("bin order broken")
	}
}
