// Package bayes implements probabilistic classifiers: Gaussian naive Bayes,
// discrete (binned) naive Bayes, and a tree-augmented naive Bayes network
// learned with the Chow-Liu algorithm — the "Naive Bayes" and "Bayesian
// Network" members of the ten-classifier ensemble in Table III.
package bayes

import (
	"math"
	"sort"

	"patchdb/internal/ml"
)

// GaussianNB models each feature as a per-class Gaussian.
type GaussianNB struct {
	priors [2]float64
	mean   [2][]float64
	vari   [2][]float64
}

var _ ml.Classifier = (*GaussianNB)(nil)

// Fit estimates per-class feature means and variances.
func (g *GaussianNB) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ml.ErrEmptyDataset
	}
	dim := len(x[0])
	var count [2]int
	for c := 0; c < 2; c++ {
		g.mean[c] = make([]float64, dim)
		g.vari[c] = make([]float64, dim)
	}
	for i, row := range x {
		c := y[i]
		count[c]++
		for j, v := range row {
			g.mean[c][j] += v
		}
	}
	n := len(x)
	for c := 0; c < 2; c++ {
		g.priors[c] = (float64(count[c]) + 1) / (float64(n) + 2)
		if count[c] == 0 {
			continue
		}
		for j := range g.mean[c] {
			g.mean[c][j] /= float64(count[c])
		}
	}
	for i, row := range x {
		c := y[i]
		for j, v := range row {
			d := v - g.mean[c][j]
			g.vari[c][j] += d * d
		}
	}
	for c := 0; c < 2; c++ {
		if count[c] == 0 {
			continue
		}
		for j := range g.vari[c] {
			g.vari[c][j] = g.vari[c][j]/float64(count[c]) + 1e-6
		}
	}
	return nil
}

func (g *GaussianNB) logLikelihood(c int, x []float64) float64 {
	ll := math.Log(g.priors[c])
	for j, v := range x {
		variance := g.vari[c][j]
		if variance == 0 {
			variance = 1e-6
		}
		d := v - g.mean[c][j]
		ll += -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
	}
	return ll
}

// Proba returns P(security|x).
func (g *GaussianNB) Proba(x []float64) float64 {
	if g.mean[0] == nil {
		return 0
	}
	l0 := g.logLikelihood(0, x)
	l1 := g.logLikelihood(1, x)
	m := math.Max(l0, l1)
	e0 := math.Exp(l0 - m)
	e1 := math.Exp(l1 - m)
	return e1 / (e0 + e1)
}

// Predict thresholds at 0.5.
func (g *GaussianNB) Predict(x []float64) int {
	if g.Proba(x) >= 0.5 {
		return ml.Security
	}
	return ml.NonSecurity
}

// discretizer bins each feature into equal-frequency bins.
type discretizer struct {
	cuts [][]float64 // per-feature ascending cut points
}

func fitDiscretizer(x [][]float64, bins int) *discretizer {
	dim := len(x[0])
	d := &discretizer{cuts: make([][]float64, dim)}
	vals := make([]float64, len(x))
	for j := 0; j < dim; j++ {
		for i, row := range x {
			vals[i] = row[j]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		var cuts []float64
		for b := 1; b < bins; b++ {
			q := sorted[len(sorted)*b/bins]
			if len(cuts) == 0 || q > cuts[len(cuts)-1] {
				cuts = append(cuts, q)
			}
		}
		d.cuts[j] = cuts
	}
	return d
}

func (d *discretizer) bin(j int, v float64) int {
	cuts := d.cuts[j]
	for b, c := range cuts {
		if v < c {
			return b
		}
	}
	return len(cuts)
}

func (d *discretizer) bins(j int) int { return len(d.cuts[j]) + 1 }

// DiscreteNB is naive Bayes over equal-frequency-binned features with
// Laplace smoothing.
type DiscreteNB struct {
	// Bins per feature (default 5).
	Bins int

	disc   *discretizer
	priors [2]float64
	// counts[c][j][b] = P(feature j in bin b | class c), smoothed.
	counts [2][][]float64
}

var _ ml.Classifier = (*DiscreteNB)(nil)

// Fit estimates the smoothed conditional bin probabilities.
func (d *DiscreteNB) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ml.ErrEmptyDataset
	}
	if d.Bins <= 1 {
		d.Bins = 5
	}
	d.disc = fitDiscretizer(x, d.Bins)
	dim := len(x[0])
	var count [2]int
	for c := 0; c < 2; c++ {
		d.counts[c] = make([][]float64, dim)
		for j := 0; j < dim; j++ {
			d.counts[c][j] = make([]float64, d.disc.bins(j))
		}
	}
	for i, row := range x {
		c := y[i]
		count[c]++
		for j, v := range row {
			d.counts[c][j][d.disc.bin(j, v)]++
		}
	}
	n := len(x)
	for c := 0; c < 2; c++ {
		d.priors[c] = (float64(count[c]) + 1) / (float64(n) + 2)
		for j := 0; j < dim; j++ {
			total := float64(count[c]) + float64(len(d.counts[c][j]))
			for b := range d.counts[c][j] {
				d.counts[c][j][b] = (d.counts[c][j][b] + 1) / total
			}
		}
	}
	return nil
}

// Proba returns P(security|x).
func (d *DiscreteNB) Proba(x []float64) float64 {
	if d.disc == nil {
		return 0
	}
	ll := [2]float64{math.Log(d.priors[0]), math.Log(d.priors[1])}
	for j, v := range x {
		b := d.disc.bin(j, v)
		for c := 0; c < 2; c++ {
			ll[c] += math.Log(d.counts[c][j][b])
		}
	}
	m := math.Max(ll[0], ll[1])
	e0 := math.Exp(ll[0] - m)
	e1 := math.Exp(ll[1] - m)
	return e1 / (e0 + e1)
}

// Predict thresholds at 0.5.
func (d *DiscreteNB) Predict(x []float64) int {
	if d.Proba(x) >= 0.5 {
		return ml.Security
	}
	return ml.NonSecurity
}

// TAN is a tree-augmented naive Bayes network: features are binned, a
// maximum-spanning tree over class-conditional mutual information links each
// feature to at most one feature parent (Chow-Liu), and inference multiplies
// the resulting conditional tables.
type TAN struct {
	Bins int

	disc   *discretizer
	priors [2]float64
	parent []int // parent feature index, -1 for the root
	// cpt[c][j] maps parentBin*bins(j)+bin(j) -> smoothed probability.
	cpt [2][][]float64
}

var _ ml.Classifier = (*TAN)(nil)

// Fit learns structure (Chow-Liu over conditional mutual information) and
// parameters.
func (t *TAN) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ml.ErrEmptyDataset
	}
	if t.Bins <= 1 {
		t.Bins = 4
	}
	t.disc = fitDiscretizer(x, t.Bins)
	dim := len(x[0])

	// Bin the whole matrix once.
	bx := make([][]int, len(x))
	for i, row := range x {
		bx[i] = make([]int, dim)
		for j, v := range row {
			bx[i][j] = t.disc.bin(j, v)
		}
	}

	// Class-conditional mutual information between feature pairs.
	mi := t.pairwiseCMI(bx, y, dim)

	// Maximum spanning tree (Prim) rooted at feature 0.
	t.parent = make([]int, dim)
	inTree := make([]bool, dim)
	best := make([]float64, dim)
	bestFrom := make([]int, dim)
	for j := range best {
		best[j] = -1
		bestFrom[j] = -1
		t.parent[j] = -1
	}
	inTree[0] = true
	for j := 1; j < dim; j++ {
		best[j] = mi[0][j]
		bestFrom[j] = 0
	}
	for added := 1; added < dim; added++ {
		pick := -1
		for j := 0; j < dim; j++ {
			if !inTree[j] && (pick == -1 || best[j] > best[pick]) {
				pick = j
			}
		}
		if pick == -1 {
			break
		}
		inTree[pick] = true
		t.parent[pick] = bestFrom[pick]
		for j := 0; j < dim; j++ {
			if !inTree[j] && mi[pick][j] > best[j] {
				best[j] = mi[pick][j]
				bestFrom[j] = pick
			}
		}
	}

	// Parameters.
	var count [2]int
	for _, c := range y {
		count[c]++
	}
	n := len(x)
	for c := 0; c < 2; c++ {
		t.priors[c] = (float64(count[c]) + 1) / (float64(n) + 2)
		t.cpt[c] = make([][]float64, dim)
		for j := 0; j < dim; j++ {
			pb := 1
			if t.parent[j] >= 0 {
				pb = t.disc.bins(t.parent[j])
			}
			t.cpt[c][j] = make([]float64, pb*t.disc.bins(j))
		}
	}
	for i, row := range bx {
		c := y[i]
		for j := 0; j < dim; j++ {
			pbin := 0
			if t.parent[j] >= 0 {
				pbin = row[t.parent[j]]
			}
			t.cpt[c][j][pbin*t.disc.bins(j)+row[j]]++
		}
	}
	for c := 0; c < 2; c++ {
		for j := 0; j < dim; j++ {
			bj := t.disc.bins(j)
			pb := len(t.cpt[c][j]) / bj
			for p := 0; p < pb; p++ {
				total := 0.0
				for b := 0; b < bj; b++ {
					total += t.cpt[c][j][p*bj+b]
				}
				for b := 0; b < bj; b++ {
					t.cpt[c][j][p*bj+b] = (t.cpt[c][j][p*bj+b] + 1) / (total + float64(bj))
				}
			}
		}
	}
	return nil
}

// pairwiseCMI estimates I(Xi;Xj|C) from binned data.
func (t *TAN) pairwiseCMI(bx [][]int, y []int, dim int) [][]float64 {
	mi := make([][]float64, dim)
	for i := range mi {
		mi[i] = make([]float64, dim)
	}
	n := float64(len(bx))
	for a := 0; a < dim; a++ {
		ba := t.disc.bins(a)
		for b := a + 1; b < dim; b++ {
			bb := t.disc.bins(b)
			joint := make([]float64, 2*ba*bb)
			margA := make([]float64, 2*ba)
			margB := make([]float64, 2*bb)
			margC := make([]float64, 2)
			for i, row := range bx {
				c := y[i]
				joint[(c*ba+row[a])*bb+row[b]]++
				margA[c*ba+row[a]]++
				margB[c*bb+row[b]]++
				margC[c]++
			}
			sum := 0.0
			for c := 0; c < 2; c++ {
				if margC[c] == 0 {
					continue
				}
				for va := 0; va < ba; va++ {
					for vb := 0; vb < bb; vb++ {
						pj := joint[(c*ba+va)*bb+vb] / n
						if pj == 0 {
							continue
						}
						pa := margA[c*ba+va] / margC[c]
						pb := margB[c*bb+vb] / margC[c]
						pc := margC[c] / n
						sum += pj * math.Log(pj/(pc*pa*pb))
					}
				}
			}
			mi[a][b] = sum
			mi[b][a] = sum
		}
	}
	return mi
}

// Proba returns P(security|x).
func (t *TAN) Proba(x []float64) float64 {
	if t.disc == nil {
		return 0
	}
	row := make([]int, len(x))
	for j, v := range x {
		row[j] = t.disc.bin(j, v)
	}
	ll := [2]float64{math.Log(t.priors[0]), math.Log(t.priors[1])}
	for j := range x {
		pbin := 0
		if t.parent[j] >= 0 {
			pbin = row[t.parent[j]]
		}
		bj := t.disc.bins(j)
		for c := 0; c < 2; c++ {
			ll[c] += math.Log(t.cpt[c][j][pbin*bj+row[j]])
		}
	}
	m := math.Max(ll[0], ll[1])
	e0 := math.Exp(ll[0] - m)
	e1 := math.Exp(ll[1] - m)
	return e1 / (e0 + e1)
}

// Predict thresholds at 0.5.
func (t *TAN) Predict(x []float64) int {
	if t.Proba(x) >= 0.5 {
		return ml.Security
	}
	return ml.NonSecurity
}
