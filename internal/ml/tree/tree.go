// Package tree implements decision-tree classifiers: CART decision trees,
// random forests (the paper's strongest traditional model), and REPTree
// (reduced-error-pruning trees, one of the ten Weka classifiers used for
// uncertainty-based labeling in Table III).
package tree

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"patchdb/internal/ml"
)

// Tree is a CART binary decision tree with Gini impurity splits.
type Tree struct {
	// MaxDepth bounds tree depth (<=0 means unbounded).
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf.
	MinLeaf int
	// MaxFeatures limits how many randomly chosen features are considered
	// per split (<=0 means all; random forests set sqrt(d)).
	MaxFeatures int
	// Rand is the randomness source for feature subsampling; nil means a
	// deterministic default seed.
	Rand *rand.Rand

	root *node
}

var _ ml.Classifier = (*Tree)(nil)

type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	leaf      bool
	proba     float64 // P(positive) at a leaf
}

// Fit grows the tree.
func (t *Tree) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ml.ErrEmptyDataset
	}
	if t.MinLeaf <= 0 {
		t.MinLeaf = 1
	}
	if t.Rand == nil {
		t.Rand = rand.New(rand.NewSource(1))
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(x, y, idx, 0)
	return nil
}

func (t *Tree) grow(x [][]float64, y []int, idx []int, depth int) *node {
	pos := 0
	for _, i := range idx {
		pos += y[i]
	}
	proba := float64(pos) / float64(len(idx))
	if pos == 0 || pos == len(idx) ||
		(t.MaxDepth > 0 && depth >= t.MaxDepth) || len(idx) < 2*t.MinLeaf {
		return &node{leaf: true, proba: proba}
	}
	feature, threshold, ok := t.bestSplit(x, y, idx)
	if !ok {
		return &node{leaf: true, proba: proba}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.MinLeaf || len(right) < t.MinLeaf {
		return &node{leaf: true, proba: proba}
	}
	return &node{
		feature:   feature,
		threshold: threshold,
		left:      t.grow(x, y, left, depth+1),
		right:     t.grow(x, y, right, depth+1),
	}
}

// bestSplit scans candidate features for the split minimizing weighted Gini
// impurity. Features are sorted once per call; thresholds are midpoints
// between consecutive distinct values.
func (t *Tree) bestSplit(x [][]float64, y []int, idx []int) (feature int, threshold float64, ok bool) {
	dim := len(x[0])
	candidates := make([]int, dim)
	for j := range candidates {
		candidates[j] = j
	}
	if t.MaxFeatures > 0 && t.MaxFeatures < dim {
		t.Rand.Shuffle(dim, func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
		candidates = candidates[:t.MaxFeatures]
	}

	bestGini := math.Inf(1)
	type pair struct {
		v float64
		y int
	}
	pairs := make([]pair, len(idx))
	totalPos := 0
	for _, i := range idx {
		totalPos += y[i]
	}
	n := float64(len(idx))

	for _, j := range candidates {
		for k, i := range idx {
			pairs[k] = pair{x[i][j], y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		leftPos, leftN := 0, 0
		for k := 0; k < len(pairs)-1; k++ {
			leftPos += pairs[k].y
			leftN++
			if pairs[k].v == pairs[k+1].v {
				continue
			}
			if leftN < t.MinLeaf || len(pairs)-leftN < t.MinLeaf {
				continue
			}
			rightPos := totalPos - leftPos
			rightN := len(pairs) - leftN
			g := gini(leftPos, leftN)*float64(leftN)/n + gini(rightPos, rightN)*float64(rightN)/n
			if g < bestGini {
				bestGini = g
				feature = j
				threshold = (pairs[k].v + pairs[k+1].v) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// Proba returns the leaf probability of the positive class.
func (t *Tree) Proba(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.proba
}

// Predict thresholds Proba at 0.5.
func (t *Tree) Predict(x []float64) int {
	if t.Proba(x) >= 0.5 {
		return ml.Security
	}
	return ml.NonSecurity
}

// Depth returns the depth of the grown tree (0 for a single leaf).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Forest is a random forest: bagged CART trees with per-split feature
// subsampling, trained in parallel.
type Forest struct {
	// Trees is the ensemble size (default 50).
	Trees int
	// MaxDepth bounds each tree (default 12).
	MaxDepth int
	// MinLeaf per tree (default 2).
	MinLeaf int
	// Seed drives all randomness deterministically.
	Seed int64

	members []*Tree
}

var _ ml.Classifier = (*Forest)(nil)

// Fit trains the ensemble. Trees are grown concurrently, one goroutine per
// tree, each with an independent deterministic sub-seed.
func (f *Forest) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ml.ErrEmptyDataset
	}
	if f.Trees <= 0 {
		f.Trees = 50
	}
	if f.MaxDepth == 0 {
		f.MaxDepth = 12
	}
	if f.MinLeaf <= 0 {
		f.MinLeaf = 2
	}
	dim := len(x[0])
	maxFeatures := int(math.Ceil(math.Sqrt(float64(dim))))

	f.members = make([]*Tree, f.Trees)
	var wg sync.WaitGroup
	for m := 0; m < f.Trees; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(f.Seed + int64(m)*7919 + 1))
			// Bootstrap sample.
			bx := make([][]float64, len(x))
			by := make([]int, len(y))
			for i := range bx {
				j := rng.Intn(len(x))
				bx[i] = x[j]
				by[i] = y[j]
			}
			t := &Tree{MaxDepth: f.MaxDepth, MinLeaf: f.MinLeaf, MaxFeatures: maxFeatures, Rand: rng}
			_ = t.Fit(bx, by) // bx is non-empty by construction
			f.members[m] = t
		}(m)
	}
	wg.Wait()
	return nil
}

// Proba averages member probabilities.
func (f *Forest) Proba(x []float64) float64 {
	if len(f.members) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range f.members {
		sum += t.Proba(x)
	}
	return sum / float64(len(f.members))
}

// Predict thresholds Proba at 0.5.
func (f *Forest) Predict(x []float64) int {
	if f.Proba(x) >= 0.5 {
		return ml.Security
	}
	return ml.NonSecurity
}

// REPTree is a depth-limited CART tree followed by reduced-error pruning on
// an internal validation split, mirroring Weka's REPTree.
type REPTree struct {
	MaxDepth int
	MinLeaf  int
	// PruneFrac is the fraction of training data held out for pruning
	// (default 0.25).
	PruneFrac float64
	Seed      int64

	tree *Tree
}

var _ ml.Classifier = (*REPTree)(nil)

// Fit grows then prunes.
func (r *REPTree) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ml.ErrEmptyDataset
	}
	if r.PruneFrac <= 0 || r.PruneFrac >= 1 {
		r.PruneFrac = 0.25
	}
	if r.MaxDepth == 0 {
		r.MaxDepth = 10
	}
	rng := rand.New(rand.NewSource(r.Seed + 13))
	order := rng.Perm(len(x))
	cut := int(float64(len(x)) * (1 - r.PruneFrac))
	if cut < 1 {
		cut = len(x)
	}
	var gx, px [][]float64
	var gy, py []int
	for i, j := range order {
		if i < cut {
			gx = append(gx, x[j])
			gy = append(gy, y[j])
		} else {
			px = append(px, x[j])
			py = append(py, y[j])
		}
	}
	t := &Tree{MaxDepth: r.MaxDepth, MinLeaf: r.MinLeaf, Rand: rng}
	if err := t.Fit(gx, gy); err != nil {
		return err
	}
	if len(px) > 0 {
		pruneNode(t.root, px, py, indices(len(px)))
	}
	r.tree = t
	return nil
}

func indices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// pruneNode replaces an internal node by a leaf whenever doing so does not
// increase error on the pruning set routed to it.
func pruneNode(n *node, px [][]float64, py []int, idx []int) (pos, total int) {
	for _, i := range idx {
		pos += py[i]
	}
	total = len(idx)
	if n == nil || n.leaf {
		return pos, total
	}
	var left, right []int
	for _, i := range idx {
		if px[i][n.feature] <= n.threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	pruneNode(n.left, px, py, left)
	pruneNode(n.right, px, py, right)
	if total == 0 {
		return 0, 0
	}
	// Errors if kept as subtree vs collapsed to majority leaf.
	subtreeErr := 0
	for _, i := range idx {
		pred := ml.NonSecurity
		if probaAt(n, px[i]) >= 0.5 {
			pred = ml.Security
		}
		if pred != py[i] {
			subtreeErr++
		}
	}
	leafProba := float64(pos) / float64(total)
	leafPred := ml.NonSecurity
	if leafProba >= 0.5 {
		leafPred = ml.Security
	}
	leafErr := 0
	for _, i := range idx {
		if leafPred != py[i] {
			leafErr++
		}
	}
	if leafErr <= subtreeErr {
		n.leaf = true
		n.proba = leafProba
		n.left, n.right = nil, nil
	}
	return pos, total
}

func probaAt(n *node, x []float64) float64 {
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.proba
}

// Proba delegates to the pruned tree.
func (r *REPTree) Proba(x []float64) float64 {
	if r.tree == nil {
		return 0
	}
	return r.tree.Proba(x)
}

// Predict thresholds Proba at 0.5.
func (r *REPTree) Predict(x []float64) int {
	if r.Proba(x) >= 0.5 {
		return ml.Security
	}
	return ml.NonSecurity
}
