package tree

import (
	"errors"
	"math/rand"
	"testing"

	"patchdb/internal/ml"
)

// blob generates two separable Gaussian-ish blobs with some overlap noise.
func blob(n int, seed int64, noise float64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		label := i % 2
		cx := float64(label) * 3
		x[i] = []float64{cx + rng.NormFloat64(), cx/2 + rng.NormFloat64(), rng.NormFloat64()}
		y[i] = label
		if rng.Float64() < noise {
			y[i] = 1 - y[i]
		}
	}
	return x, y
}

func accuracy(c ml.Classifier, x [][]float64, y []int) float64 {
	hits := 0
	for i := range x {
		if c.Predict(x[i]) == y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(x))
}

func TestTreeSeparable(t *testing.T) {
	x, y := blob(400, 1, 0)
	tr := &Tree{MaxDepth: 6}
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tr, x, y); acc < 0.9 {
		t.Errorf("train accuracy = %.2f", acc)
	}
	if tr.Depth() == 0 {
		t.Error("tree did not split")
	}
}

func TestTreeXor(t *testing.T) {
	// XOR needs depth >= 2; a depth-1 stump must fail, a deeper tree succeed.
	var x [][]float64
	var y []int
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 400; i++ {
		a := float64(rng.Intn(2))
		b := float64(rng.Intn(2))
		x = append(x, []float64{a + rng.Float64()*0.1, b + rng.Float64()*0.1})
		y = append(y, int(a)^int(b))
	}
	deep := &Tree{MaxDepth: 4}
	if err := deep.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(deep, x, y); acc < 0.95 {
		t.Errorf("deep tree accuracy on XOR = %.2f", acc)
	}
	stump := &Tree{MaxDepth: 1}
	if err := stump.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(stump, x, y); acc > 0.8 {
		t.Errorf("depth-1 stump solved XOR (%.2f): depth limit ignored", acc)
	}
}

func TestTreeEmpty(t *testing.T) {
	tr := &Tree{}
	if err := tr.Fit(nil, nil); !errors.Is(err, ml.ErrEmptyDataset) {
		t.Errorf("err = %v", err)
	}
	if tr.Proba([]float64{1}) != 0 {
		t.Error("unfit tree proba != 0")
	}
}

func TestTreePureLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	tr := &Tree{}
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if tr.Proba([]float64{9}) != 1 {
		t.Errorf("pure positive proba = %v", tr.Proba([]float64{9}))
	}
	if tr.Depth() != 0 {
		t.Error("pure data must yield a single leaf")
	}
}

func TestForestBetterThanStump(t *testing.T) {
	x, y := blob(600, 3, 0.1)
	xt, yt := blob(300, 4, 0)
	f := &Forest{Trees: 30, Seed: 5}
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(f, xt, yt); acc < 0.85 {
		t.Errorf("forest test accuracy = %.2f", acc)
	}
}

func TestForestDeterminism(t *testing.T) {
	x, y := blob(200, 6, 0.05)
	f1 := &Forest{Trees: 10, Seed: 7}
	f2 := &Forest{Trees: 10, Seed: 7}
	if err := f1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		probe := []float64{float64(i) / 10, 0, 0}
		if f1.Proba(probe) != f2.Proba(probe) {
			t.Fatalf("same seed, different proba at %v", probe)
		}
	}
}

func TestForestEmpty(t *testing.T) {
	f := &Forest{}
	if err := f.Fit(nil, nil); !errors.Is(err, ml.ErrEmptyDataset) {
		t.Errorf("err = %v", err)
	}
	if f.Proba([]float64{1}) != 0 {
		t.Error("unfit forest proba != 0")
	}
}

func TestForestProbaRange(t *testing.T) {
	x, y := blob(200, 8, 0.2)
	f := &Forest{Trees: 15, Seed: 9}
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, row := range x {
		p := f.Proba(row)
		if p < 0 || p > 1 {
			t.Fatalf("proba %v out of range", p)
		}
	}
}

func TestREPTreePrunes(t *testing.T) {
	// Noisy labels: pruning should not hurt and the model must still learn
	// the dominant signal.
	x, y := blob(500, 10, 0.25)
	r := &REPTree{Seed: 11}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := blob(300, 12, 0)
	if acc := accuracy(r, xt, yt); acc < 0.8 {
		t.Errorf("REPTree test accuracy = %.2f", acc)
	}
}

func TestREPTreeEmpty(t *testing.T) {
	r := &REPTree{}
	if err := r.Fit(nil, nil); !errors.Is(err, ml.ErrEmptyDataset) {
		t.Errorf("err = %v", err)
	}
	if r.Proba([]float64{0}) != 0 {
		t.Error("unfit REPTree proba != 0")
	}
}

func TestInterfaceCompliance(t *testing.T) {
	var _ ml.Classifier = (*Tree)(nil)
	var _ ml.Classifier = (*Forest)(nil)
	var _ ml.Classifier = (*REPTree)(nil)
}
