package linear

import (
	"errors"
	"math/rand"
	"testing"

	"patchdb/internal/ml"
)

// linearly generates a linearly separable problem with margin and optional
// label noise.
func linearly(n int, seed int64, noise float64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		c := rng.NormFloat64() * 0.1
		x[i] = []float64{a, b, c}
		if a+2*b > 0.3 {
			y[i] = 1
		} else if a+2*b < -0.3 {
			y[i] = 0
		} else {
			y[i] = rng.Intn(2) // margin region: random
		}
		if rng.Float64() < noise {
			y[i] = 1 - y[i]
		}
	}
	return x, y
}

func accuracy(c ml.Classifier, x [][]float64, y []int) float64 {
	hits := 0
	for i := range x {
		if c.Predict(x[i]) == y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(x))
}

func models(seed int64) map[string]ml.Classifier {
	return map[string]ml.Classifier{
		"logistic":         &Logistic{},
		"sgd":              &SGD{Seed: seed},
		"svm":              &SVM{Seed: seed},
		"smo":              &SMO{Seed: seed},
		"voted-perceptron": &VotedPerceptron{Seed: seed},
	}
}

func TestAllModelsLearnSeparable(t *testing.T) {
	x, y := linearly(500, 1, 0)
	xt, yt := linearly(300, 2, 0)
	for name, m := range models(3) {
		t.Run(name, func(t *testing.T) {
			if err := m.Fit(x, y); err != nil {
				t.Fatal(err)
			}
			if acc := accuracy(m, xt, yt); acc < 0.82 {
				t.Errorf("%s test accuracy = %.2f", name, acc)
			}
		})
	}
}

func TestAllModelsRejectEmpty(t *testing.T) {
	for name, m := range models(4) {
		if err := m.Fit(nil, nil); !errors.Is(err, ml.ErrEmptyDataset) {
			t.Errorf("%s: err = %v", name, err)
		}
	}
}

func TestAllModelsProbaRange(t *testing.T) {
	x, y := linearly(300, 5, 0.1)
	for name, m := range models(6) {
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		for _, row := range x[:50] {
			p := m.Proba(row)
			if p < 0 || p > 1 {
				t.Fatalf("%s proba %v out of [0,1]", name, p)
			}
		}
	}
}

func TestUnfitProbaZero(t *testing.T) {
	for name, m := range models(7) {
		if p := m.Proba([]float64{1, 2, 3}); p != 0 {
			t.Errorf("%s unfit proba = %v", name, p)
		}
	}
}

func TestLogisticProbaMonotone(t *testing.T) {
	// Points deeper in the positive half-space must get higher probability.
	x, y := linearly(500, 8, 0)
	l := &Logistic{}
	if err := l.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	weak := l.Proba([]float64{0.2, 0.2, 0})
	strong := l.Proba([]float64{3, 3, 0})
	if strong <= weak {
		t.Errorf("proba not monotone along the positive direction: %v <= %v", strong, weak)
	}
}

func TestSVMMarginSign(t *testing.T) {
	x, y := linearly(500, 9, 0)
	s := &SVM{Seed: 10}
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if s.Margin([]float64{3, 3, 0}) <= 0 {
		t.Error("deep positive point has non-positive margin")
	}
	if s.Margin([]float64{-3, -3, 0}) >= 0 {
		t.Error("deep negative point has non-negative margin")
	}
}

func TestSMOSubsamples(t *testing.T) {
	// SMO must cap its working set and still learn.
	x, y := linearly(3000, 11, 0)
	s := &SMO{Seed: 12, MaxRows: 300}
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, yt := linearly(300, 13, 0)
	if acc := accuracy(s, xt, yt); acc < 0.8 {
		t.Errorf("subsampled SMO accuracy = %.2f", acc)
	}
}

func TestStandardizerConstantDim(t *testing.T) {
	s := fitStandardizer([][]float64{{1, 5}, {2, 5}, {3, 5}})
	row := s.apply([]float64{2, 5})
	if row[1] != 0 {
		t.Errorf("constant dim standardized to %v", row[1])
	}
	if row[0] != 0 {
		t.Errorf("mean point standardized to %v, want 0", row[0])
	}
}

func TestVotedPerceptronCapsVectors(t *testing.T) {
	x, y := linearly(2000, 14, 0.3) // noisy: many mistakes, many vectors
	v := &VotedPerceptron{Seed: 15, MaxVectors: 20, Epochs: 3}
	if err := v.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if len(v.vectors) > 21 {
		t.Errorf("stored vectors = %d, cap 20(+1)", len(v.vectors))
	}
}
