// Package linear implements the linear-model family used in PatchDB's
// evaluation: logistic regression, an SGD classifier, a linear SVM trained
// with Pegasos, an SMO-style dual SVM, and the voted perceptron (five of the
// ten Weka classifiers behind Table III's uncertainty-based labeling
// baseline).
package linear

import (
	"math"
	"math/rand"

	"patchdb/internal/ml"
)

// standardizer performs per-feature z-scoring so gradient methods converge
// on raw count features.
type standardizer struct {
	mean, std []float64
}

func fitStandardizer(x [][]float64) *standardizer {
	dim := len(x[0])
	s := &standardizer{mean: make([]float64, dim), std: make([]float64, dim)}
	for _, row := range x {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] < 1e-9 {
			s.std[j] = 1
		}
	}
	return s
}

func (s *standardizer) apply(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

func (s *standardizer) applyAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.apply(row)
	}
	return out
}

func sigmoid(z float64) float64 {
	if z < -30 {
		return 0
	}
	if z > 30 {
		return 1
	}
	return 1 / (1 + math.Exp(-z))
}

func dot(w, x []float64) float64 {
	sum := 0.0
	for j, v := range x {
		sum += w[j] * v
	}
	return sum
}

// Logistic is L2-regularized logistic regression trained with full-batch
// gradient descent.
type Logistic struct {
	// Epochs of full-batch gradient descent (default 200).
	Epochs int
	// LR is the learning rate (default 0.1).
	LR float64
	// L2 is the ridge penalty (default 1e-4).
	L2 float64

	w    []float64
	b    float64
	norm *standardizer
}

var _ ml.Classifier = (*Logistic)(nil)

// Fit trains the model.
func (l *Logistic) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ml.ErrEmptyDataset
	}
	if l.Epochs <= 0 {
		l.Epochs = 200
	}
	if l.LR <= 0 {
		l.LR = 0.1
	}
	if l.L2 <= 0 {
		l.L2 = 1e-4
	}
	l.norm = fitStandardizer(x)
	xs := l.norm.applyAll(x)
	dim := len(xs[0])
	l.w = make([]float64, dim)
	l.b = 0
	n := float64(len(xs))
	gw := make([]float64, dim)
	for epoch := 0; epoch < l.Epochs; epoch++ {
		for j := range gw {
			gw[j] = 0
		}
		gb := 0.0
		for i, row := range xs {
			err := sigmoid(dot(l.w, row)+l.b) - float64(y[i])
			for j, v := range row {
				gw[j] += err * v
			}
			gb += err
		}
		for j := range l.w {
			l.w[j] -= l.LR * (gw[j]/n + l.L2*l.w[j])
		}
		l.b -= l.LR * gb / n
	}
	return nil
}

// Proba returns P(security).
func (l *Logistic) Proba(x []float64) float64 {
	if l.w == nil {
		return 0
	}
	return sigmoid(dot(l.w, l.norm.apply(x)) + l.b)
}

// Predict thresholds at 0.5.
func (l *Logistic) Predict(x []float64) int { return threshold(l.Proba(x)) }

// SGD is a logistic-loss stochastic gradient descent classifier with an
// inverse-scaling learning rate, mirroring scikit/Weka SGD.
type SGD struct {
	Epochs int
	Eta0   float64
	L2     float64
	Seed   int64

	w    []float64
	b    float64
	norm *standardizer
}

var _ ml.Classifier = (*SGD)(nil)

// Fit trains the model.
func (s *SGD) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ml.ErrEmptyDataset
	}
	if s.Epochs <= 0 {
		s.Epochs = 20
	}
	if s.Eta0 <= 0 {
		s.Eta0 = 0.05
	}
	if s.L2 <= 0 {
		s.L2 = 1e-4
	}
	s.norm = fitStandardizer(x)
	xs := s.norm.applyAll(x)
	dim := len(xs[0])
	s.w = make([]float64, dim)
	rng := rand.New(rand.NewSource(s.Seed + 11))
	t := 1.0
	for epoch := 0; epoch < s.Epochs; epoch++ {
		for _, i := range rng.Perm(len(xs)) {
			eta := s.Eta0 / math.Sqrt(t)
			t++
			row := xs[i]
			err := sigmoid(dot(s.w, row)+s.b) - float64(y[i])
			for j, v := range row {
				s.w[j] -= eta * (err*v + s.L2*s.w[j])
			}
			s.b -= eta * err
		}
	}
	return nil
}

// Proba returns P(security).
func (s *SGD) Proba(x []float64) float64 {
	if s.w == nil {
		return 0
	}
	return sigmoid(dot(s.w, s.norm.apply(x)) + s.b)
}

// Predict thresholds at 0.5.
func (s *SGD) Predict(x []float64) int { return threshold(s.Proba(x)) }

// SVM is a linear support vector machine trained with the Pegasos
// stochastic sub-gradient algorithm. Proba is a Platt-style sigmoid over the
// margin.
type SVM struct {
	Epochs int
	Lambda float64
	Seed   int64

	w    []float64
	b    float64
	norm *standardizer
}

var _ ml.Classifier = (*SVM)(nil)

// Fit trains with Pegasos.
func (s *SVM) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ml.ErrEmptyDataset
	}
	if s.Epochs <= 0 {
		s.Epochs = 30
	}
	if s.Lambda <= 0 {
		s.Lambda = 1e-4
	}
	s.norm = fitStandardizer(x)
	xs := s.norm.applyAll(x)
	dim := len(xs[0])
	s.w = make([]float64, dim)
	rng := rand.New(rand.NewSource(s.Seed + 17))
	t := 1.0
	for epoch := 0; epoch < s.Epochs; epoch++ {
		for _, i := range rng.Perm(len(xs)) {
			eta := 1 / (s.Lambda * t)
			t++
			row := xs[i]
			yi := float64(2*y[i] - 1) // {-1,+1}
			margin := yi * (dot(s.w, row) + s.b)
			for j := range s.w {
				s.w[j] *= 1 - eta*s.Lambda
			}
			if margin < 1 {
				for j, v := range row {
					s.w[j] += eta * yi * v
				}
				s.b += eta * yi * 0.1
			}
		}
	}
	return nil
}

// Margin returns the signed distance-like score w.x+b.
func (s *SVM) Margin(x []float64) float64 {
	if s.w == nil {
		return 0
	}
	return dot(s.w, s.norm.apply(x)) + s.b
}

// Proba squashes the margin through a sigmoid (0 before Fit).
func (s *SVM) Proba(x []float64) float64 {
	if s.w == nil {
		return 0
	}
	return sigmoid(2 * s.Margin(x))
}

// Predict uses the sign of the margin.
func (s *SVM) Predict(x []float64) int {
	if s.Margin(x) >= 0 {
		return ml.Security
	}
	return ml.NonSecurity
}

// SMO is a dual-form linear SVM trained with a simplified Sequential
// Minimal Optimization loop (Platt's algorithm with random second-choice
// heuristic), standing in for Weka's SMO classifier.
type SMO struct {
	C      float64
	Tol    float64
	Passes int
	Seed   int64
	// MaxRows caps the training subsample so the O(n^2)-ish loop stays
	// tractable on large datasets (default 800).
	MaxRows int

	w    []float64
	b    float64
	norm *standardizer
}

var _ ml.Classifier = (*SMO)(nil)

// Fit runs simplified SMO on (a subsample of) the data, then collapses the
// dual solution into a primal weight vector (valid for the linear kernel).
func (s *SMO) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ml.ErrEmptyDataset
	}
	if s.C <= 0 {
		s.C = 1
	}
	if s.Tol <= 0 {
		s.Tol = 1e-3
	}
	if s.Passes <= 0 {
		s.Passes = 3
	}
	if s.MaxRows <= 0 {
		s.MaxRows = 800
	}
	rng := rand.New(rand.NewSource(s.Seed + 23))
	idx := rng.Perm(len(x))
	if len(idx) > s.MaxRows {
		idx = idx[:s.MaxRows]
	}
	s.norm = fitStandardizer(x)
	xs := make([][]float64, len(idx))
	ys := make([]float64, len(idx))
	for k, i := range idx {
		xs[k] = s.norm.apply(x[i])
		ys[k] = float64(2*y[i] - 1)
	}
	n := len(xs)
	alpha := make([]float64, n)
	b := 0.0
	f := func(i int) float64 {
		sum := b
		for k := 0; k < n; k++ {
			if alpha[k] != 0 {
				sum += alpha[k] * ys[k] * dot(xs[k], xs[i])
			}
		}
		return sum
	}
	passes := 0
	for passes < s.Passes {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - ys[i]
			if (ys[i]*ei < -s.Tol && alpha[i] < s.C) || (ys[i]*ei > s.Tol && alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := f(j) - ys[j]
				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if ys[i] != ys[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(s.C, s.C+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-s.C)
					hi = math.Min(s.C, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*dot(xs[i], xs[j]) - dot(xs[i], xs[i]) - dot(xs[j], xs[j])
				if eta >= 0 {
					continue
				}
				alpha[j] = aj - ys[j]*(ei-ej)/eta
				alpha[j] = math.Min(hi, math.Max(lo, alpha[j]))
				if math.Abs(alpha[j]-aj) < 1e-5 {
					continue
				}
				alpha[i] = ai + ys[i]*ys[j]*(aj-alpha[j])
				b1 := b - ei - ys[i]*(alpha[i]-ai)*dot(xs[i], xs[i]) - ys[j]*(alpha[j]-aj)*dot(xs[i], xs[j])
				b2 := b - ej - ys[i]*(alpha[i]-ai)*dot(xs[i], xs[j]) - ys[j]*(alpha[j]-aj)*dot(xs[j], xs[j])
				switch {
				case alpha[i] > 0 && alpha[i] < s.C:
					b = b1
				case alpha[j] > 0 && alpha[j] < s.C:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	dim := len(xs[0])
	s.w = make([]float64, dim)
	for k := 0; k < n; k++ {
		if alpha[k] != 0 {
			for j, v := range xs[k] {
				s.w[j] += alpha[k] * ys[k] * v
			}
		}
	}
	s.b = b
	return nil
}

// Proba squashes the margin.
func (s *SMO) Proba(x []float64) float64 {
	if s.w == nil {
		return 0
	}
	return sigmoid(2 * (dot(s.w, s.norm.apply(x)) + s.b))
}

// Predict uses the margin sign.
func (s *SMO) Predict(x []float64) int {
	if s.Proba(x) >= 0.5 {
		return ml.Security
	}
	return ml.NonSecurity
}

// VotedPerceptron implements Freund & Schapire's voted perceptron.
type VotedPerceptron struct {
	Epochs int
	Seed   int64
	// MaxVectors caps the stored prediction vectors (default 200); older
	// vectors are merged by weight when the cap is hit.
	MaxVectors int

	vectors [][]float64
	biases  []float64
	votes   []float64
	norm    *standardizer
}

var _ ml.Classifier = (*VotedPerceptron)(nil)

// Fit trains the model.
func (v *VotedPerceptron) Fit(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ml.ErrEmptyDataset
	}
	if v.Epochs <= 0 {
		v.Epochs = 5
	}
	if v.MaxVectors <= 0 {
		v.MaxVectors = 200
	}
	v.norm = fitStandardizer(x)
	xs := v.norm.applyAll(x)
	dim := len(xs[0])
	rng := rand.New(rand.NewSource(v.Seed + 29))

	w := make([]float64, dim)
	b := 0.0
	c := 1.0
	v.vectors = nil
	v.biases = nil
	v.votes = nil
	for epoch := 0; epoch < v.Epochs; epoch++ {
		for _, i := range rng.Perm(len(xs)) {
			yi := float64(2*y[i] - 1)
			if yi*(dot(w, xs[i])+b) <= 0 {
				v.pushVector(w, b, c)
				nw := append([]float64(nil), w...)
				for j, val := range xs[i] {
					nw[j] += yi * val
				}
				w = nw
				b += yi
				c = 1
			} else {
				c++
			}
		}
	}
	v.pushVector(w, b, c)
	return nil
}

func (v *VotedPerceptron) pushVector(w []float64, b, c float64) {
	if len(v.vectors) >= v.MaxVectors {
		// Merge the two oldest by vote weight to bound memory.
		w0, w1 := v.vectors[0], v.vectors[1]
		c0, c1 := v.votes[0], v.votes[1]
		merged := make([]float64, len(w0))
		for j := range merged {
			merged[j] = (w0[j]*c0 + w1[j]*c1) / (c0 + c1)
		}
		mb := (v.biases[0]*c0 + v.biases[1]*c1) / (c0 + c1)
		v.vectors = append([][]float64{merged}, v.vectors[2:]...)
		v.biases = append([]float64{mb}, v.biases[2:]...)
		v.votes = append([]float64{c0 + c1}, v.votes[2:]...)
	}
	v.vectors = append(v.vectors, append([]float64(nil), w...))
	v.biases = append(v.biases, b)
	v.votes = append(v.votes, c)
}

// score returns the vote-weighted sign sum.
func (v *VotedPerceptron) score(x []float64) float64 {
	row := v.norm.apply(x)
	total := 0.0
	weight := 0.0
	for k, w := range v.vectors {
		s := dot(w, row) + v.biases[k]
		sign := 1.0
		if s < 0 {
			sign = -1
		}
		total += v.votes[k] * sign
		weight += v.votes[k]
	}
	if weight == 0 {
		return 0
	}
	return total / weight
}

// Proba maps the vote share into [0,1].
func (v *VotedPerceptron) Proba(x []float64) float64 {
	if len(v.vectors) == 0 {
		return 0
	}
	return (v.score(x) + 1) / 2
}

// Predict uses the vote majority.
func (v *VotedPerceptron) Predict(x []float64) int {
	if v.Proba(x) >= 0.5 {
		return ml.Security
	}
	return ml.NonSecurity
}

func threshold(p float64) int {
	if p >= 0.5 {
		return ml.Security
	}
	return ml.NonSecurity
}
