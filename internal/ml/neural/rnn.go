// Package neural implements the recurrent neural network classifier used in
// PatchDB's evaluation (Tables IV and VI): an Elman RNN over the abstracted
// token stream of a patch (keywords, identifiers, operators, ...), trained
// with backpropagation through time and Adagrad. The current state depends
// on the current input token and the previous state, so the model captures
// context information the statistical features cannot.
package neural

import (
	"math"
	"math/rand"

	"patchdb/internal/ml"
)

// Vocab maps token strings to dense ids. Id 0 is reserved for unknown
// tokens.
type Vocab struct {
	index map[string]int
	words []string
}

// BuildVocab builds a vocabulary from token sequences, keeping the maxSize
// most frequent tokens (0 means unlimited).
func BuildVocab(seqs [][]string, maxSize int) *Vocab {
	freq := make(map[string]int)
	for _, seq := range seqs {
		for _, w := range seq {
			freq[w]++
		}
	}
	words := make([]string, 0, len(freq))
	for w := range freq {
		words = append(words, w)
	}
	// Sort by frequency desc, then lexicographically for determinism.
	for i := 1; i < len(words); i++ {
		for j := i; j > 0; j-- {
			a, b := words[j-1], words[j]
			if freq[b] > freq[a] || (freq[b] == freq[a] && b < a) {
				words[j-1], words[j] = b, a
			} else {
				break
			}
		}
	}
	if maxSize > 0 && len(words) > maxSize {
		words = words[:maxSize]
	}
	v := &Vocab{index: make(map[string]int, len(words)+1), words: append([]string{"<unk>"}, words...)}
	for i, w := range v.words {
		v.index[w] = i
	}
	return v
}

// Size returns the vocabulary size including <unk>.
func (v *Vocab) Size() int { return len(v.words) }

// ID returns the id of a token (0 for unknown).
func (v *Vocab) ID(w string) int { return v.index[w] }

// Encode maps a token sequence to ids.
func (v *Vocab) Encode(seq []string) []int {
	out := make([]int, len(seq))
	for i, w := range seq {
		out[i] = v.index[w]
	}
	return out
}

// RNN is an Elman recurrent network for binary sequence classification.
type RNN struct {
	// Embed is the embedding width (default 16).
	Embed int
	// Hidden is the recurrent state width (default 24).
	Hidden int
	// Epochs over the training set (default 4).
	Epochs int
	// LR is the Adagrad base learning rate (default 0.05).
	LR float64
	// MaxLen truncates sequences (default 160 tokens).
	MaxLen int
	// Clip bounds gradient magnitude per parameter (default 5).
	Clip float64
	// Seed drives initialization and shuffling.
	Seed int64

	vocab *Vocab

	emb  [][]float64 // vocab x embed
	wxh  [][]float64 // hidden x embed
	whh  [][]float64 // hidden x hidden
	bh   []float64
	wout []float64
	bout float64

	// Adagrad accumulators, same shapes.
	gEmb  [][]float64
	gWxh  [][]float64
	gWhh  [][]float64
	gBh   []float64
	gWout []float64
	gBout float64
}

func (r *RNN) defaults() {
	if r.Embed <= 0 {
		r.Embed = 16
	}
	if r.Hidden <= 0 {
		r.Hidden = 24
	}
	if r.Epochs <= 0 {
		r.Epochs = 4
	}
	if r.LR <= 0 {
		r.LR = 0.05
	}
	if r.MaxLen <= 0 {
		r.MaxLen = 160
	}
	if r.Clip <= 0 {
		r.Clip = 5
	}
}

func newMatrix(rows, cols int, scale float64, rng *rand.Rand) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = (rng.Float64()*2 - 1) * scale
		}
	}
	return m
}

// FitTokens trains the network on token sequences with labels.
func (r *RNN) FitTokens(seqs [][]string, y []int) error {
	return r.FitTokensWeighted(seqs, y, nil)
}

// FitTokensWeighted trains with optional per-sample loss weights (nil means
// uniform). Class weighting for imbalance is applied on top.
func (r *RNN) FitTokensWeighted(seqs [][]string, y []int, sampleW []float64) error {
	if len(seqs) == 0 {
		return ml.ErrEmptyDataset
	}
	r.defaults()
	rng := rand.New(rand.NewSource(r.Seed + 101))
	r.vocab = BuildVocab(seqs, 2000)
	v := r.vocab.Size()
	r.emb = newMatrix(v, r.Embed, 0.1, rng)
	r.wxh = newMatrix(r.Hidden, r.Embed, 0.2, rng)
	r.whh = newMatrix(r.Hidden, r.Hidden, 0.2, rng)
	r.bh = make([]float64, r.Hidden)
	r.wout = make([]float64, r.Hidden)
	for j := range r.wout {
		r.wout[j] = (rng.Float64()*2 - 1) * 0.2
	}
	r.gEmb = newMatrix(v, r.Embed, 0, rng)
	r.gWxh = newMatrix(r.Hidden, r.Embed, 0, rng)
	r.gWhh = newMatrix(r.Hidden, r.Hidden, 0, rng)
	r.gBh = make([]float64, r.Hidden)
	r.gWout = make([]float64, r.Hidden)

	encoded := make([][]int, len(seqs))
	pos := 0
	for i, s := range seqs {
		ids := r.vocab.Encode(s)
		if len(ids) > r.MaxLen {
			ids = ids[:r.MaxLen]
		}
		encoded[i] = ids
		pos += y[i]
	}
	// Weight the minority class so imbalanced training sets (e.g. with 2-3x
	// synthetic non-security patches) do not collapse to the majority label.
	posWeight := 1.0
	if pos > 0 && pos < len(y) {
		posWeight = float64(len(y)-pos) / float64(pos)
		if posWeight < 0.25 {
			posWeight = 0.25
		}
		if posWeight > 4 {
			posWeight = 4
		}
	}
	for epoch := 0; epoch < r.Epochs; epoch++ {
		for _, i := range rng.Perm(len(encoded)) {
			w := 1.0
			if y[i] == 1 {
				w = posWeight
			}
			if sampleW != nil {
				w *= sampleW[i]
			}
			r.step(encoded[i], float64(y[i]), w)
		}
	}
	return nil
}

// step runs one forward+BPTT pass and applies Adagrad updates. weight
// scales the loss gradient (class weighting).
func (r *RNN) step(ids []int, target, weight float64) {
	if len(ids) == 0 {
		return
	}
	tlen := len(ids)
	hs := make([][]float64, tlen+1)
	hs[0] = make([]float64, r.Hidden)
	raw := make([][]float64, tlen) // pre-activation, for tanh'
	for t, id := range ids {
		h := make([]float64, r.Hidden)
		e := r.emb[id]
		prev := hs[t]
		for j := 0; j < r.Hidden; j++ {
			sum := r.bh[j]
			wx := r.wxh[j]
			for k := 0; k < r.Embed; k++ {
				sum += wx[k] * e[k]
			}
			wh := r.whh[j]
			for k := 0; k < r.Hidden; k++ {
				sum += wh[k] * prev[k]
			}
			h[j] = math.Tanh(sum)
		}
		raw[t] = h
		hs[t+1] = h
	}
	last := hs[tlen]
	z := r.bout
	for j := 0; j < r.Hidden; j++ {
		z += r.wout[j] * last[j]
	}
	p := 1 / (1 + math.Exp(-z))
	dz := (p - target) * weight // dL/dz for weighted BCE

	// Output layer gradients.
	dWout := make([]float64, r.Hidden)
	dh := make([]float64, r.Hidden)
	for j := 0; j < r.Hidden; j++ {
		dWout[j] = dz * last[j]
		dh[j] = dz * r.wout[j]
	}

	dWxh := make([][]float64, r.Hidden)
	dWhh := make([][]float64, r.Hidden)
	for j := range dWxh {
		dWxh[j] = make([]float64, r.Embed)
		dWhh[j] = make([]float64, r.Hidden)
	}
	dBh := make([]float64, r.Hidden)
	dEmb := make(map[int][]float64)

	for t := tlen - 1; t >= 0; t-- {
		h := hs[t+1]
		prev := hs[t]
		e := r.emb[ids[t]]
		dRaw := make([]float64, r.Hidden)
		for j := 0; j < r.Hidden; j++ {
			dRaw[j] = dh[j] * (1 - h[j]*h[j])
		}
		de, ok := dEmb[ids[t]]
		if !ok {
			de = make([]float64, r.Embed)
			dEmb[ids[t]] = de
		}
		nextDh := make([]float64, r.Hidden)
		for j := 0; j < r.Hidden; j++ {
			g := dRaw[j]
			dBh[j] += g
			wx := dWxh[j]
			for k := 0; k < r.Embed; k++ {
				wx[k] += g * e[k]
				de[k] += g * r.wxh[j][k]
			}
			wh := dWhh[j]
			for k := 0; k < r.Hidden; k++ {
				wh[k] += g * prev[k]
				nextDh[k] += g * r.whh[j][k]
			}
		}
		dh = nextDh
	}

	clip := func(g float64) float64 {
		if g > r.Clip {
			return r.Clip
		}
		if g < -r.Clip {
			return -r.Clip
		}
		return g
	}
	adagrad := func(w, g []float64, acc []float64) {
		for j := range w {
			gj := clip(g[j])
			acc[j] += gj * gj
			w[j] -= r.LR * gj / (math.Sqrt(acc[j]) + 1e-8)
		}
	}
	for j := 0; j < r.Hidden; j++ {
		adagrad(r.wxh[j], dWxh[j], r.gWxh[j])
		adagrad(r.whh[j], dWhh[j], r.gWhh[j])
	}
	adagrad(r.bh, dBh, r.gBh)
	adagrad(r.wout, dWout, r.gWout)
	gb := clip(dz)
	r.gBout += gb * gb
	r.bout -= r.LR * gb / (math.Sqrt(r.gBout) + 1e-8)
	for id, de := range dEmb {
		adagrad(r.emb[id], de, r.gEmb[id])
	}
}

// ProbaTokens returns P(security) for a token sequence.
func (r *RNN) ProbaTokens(seq []string) float64 {
	if r.vocab == nil {
		return 0
	}
	ids := r.vocab.Encode(seq)
	if len(ids) > r.MaxLen {
		ids = ids[:r.MaxLen]
	}
	h := make([]float64, r.Hidden)
	next := make([]float64, r.Hidden)
	for _, id := range ids {
		e := r.emb[id]
		for j := 0; j < r.Hidden; j++ {
			sum := r.bh[j]
			wx := r.wxh[j]
			for k := 0; k < r.Embed; k++ {
				sum += wx[k] * e[k]
			}
			wh := r.whh[j]
			for k := 0; k < r.Hidden; k++ {
				sum += wh[k] * h[k]
			}
			next[j] = math.Tanh(sum)
		}
		h, next = next, h
	}
	z := r.bout
	for j := 0; j < r.Hidden; j++ {
		z += r.wout[j] * h[j]
	}
	return 1 / (1 + math.Exp(-z))
}

// PredictTokens thresholds ProbaTokens at 0.5.
func (r *RNN) PredictTokens(seq []string) int {
	if r.ProbaTokens(seq) >= 0.5 {
		return ml.Security
	}
	return ml.NonSecurity
}
