package neural

import (
	"errors"
	"math/rand"
	"testing"

	"patchdb/internal/ml"
)

func TestVocab(t *testing.T) {
	seqs := [][]string{{"a", "b", "a"}, {"a", "c"}}
	v := BuildVocab(seqs, 0)
	if v.Size() != 4 { // <unk> + a,b,c
		t.Fatalf("size = %d", v.Size())
	}
	if v.ID("a") == 0 || v.ID("zzz") != 0 {
		t.Errorf("ids: a=%d zzz=%d", v.ID("a"), v.ID("zzz"))
	}
	// Most frequent token gets the smallest non-unk id.
	if v.ID("a") != 1 {
		t.Errorf("most frequent token id = %d", v.ID("a"))
	}
	enc := v.Encode([]string{"a", "zzz", "c"})
	if enc[0] != v.ID("a") || enc[1] != 0 || enc[2] != v.ID("c") {
		t.Errorf("encode = %v", enc)
	}
}

func TestVocabMaxSize(t *testing.T) {
	seqs := [][]string{{"a", "a", "b", "b", "c"}}
	v := BuildVocab(seqs, 2)
	if v.Size() != 3 { // <unk> + 2 kept
		t.Fatalf("size = %d", v.Size())
	}
	if v.ID("c") != 0 {
		t.Error("least frequent token survived the cap")
	}
}

func TestVocabDeterminism(t *testing.T) {
	seqs := [][]string{{"x", "y"}, {"z", "y"}}
	v1 := BuildVocab(seqs, 0)
	v2 := BuildVocab(seqs, 0)
	for _, w := range []string{"x", "y", "z"} {
		if v1.ID(w) != v2.ID(w) {
			t.Fatalf("unstable id for %q", w)
		}
	}
}

// markerTask builds sequences where the label depends on whether the marker
// token appears — the simplest context task an RNN must solve.
func markerTask(n int, seed int64) ([][]string, []int) {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"if", "(", ")", "VAR", "NUM", ";", "return"}
	seqs := make([][]string, n)
	y := make([]int, n)
	for i := range seqs {
		ln := 5 + rng.Intn(10)
		seq := make([]string, ln)
		for j := range seq {
			seq[j] = words[rng.Intn(len(words))]
		}
		if i%2 == 0 {
			seq[rng.Intn(ln)] = "MARKER"
			y[i] = 1
		}
		seqs[i] = seq
	}
	return seqs, y
}

func TestRNNLearnsMarker(t *testing.T) {
	seqs, y := markerTask(400, 1)
	r := &RNN{Epochs: 12, Seed: 2}
	if err := r.FitTokens(seqs, y); err != nil {
		t.Fatal(err)
	}
	testSeqs, testY := markerTask(200, 3)
	hits := 0
	for i, s := range testSeqs {
		if r.PredictTokens(s) == testY[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(len(testSeqs)); acc < 0.9 {
		t.Errorf("marker-task accuracy = %.2f", acc)
	}
}

func TestRNNOrderSensitivity(t *testing.T) {
	// Label depends on whether "A" precedes "B": requires recurrent state,
	// not just bag-of-tokens.
	rng := rand.New(rand.NewSource(4))
	gen := func(n int) ([][]string, []int) {
		seqs := make([][]string, n)
		y := make([]int, n)
		for i := range seqs {
			filler := make([]string, 3+rng.Intn(5))
			for j := range filler {
				filler[j] = "x"
			}
			if i%2 == 0 {
				seqs[i] = append(append([]string{"A"}, filler...), "B")
				y[i] = 1
			} else {
				seqs[i] = append(append([]string{"B"}, filler...), "A")
			}
		}
		return seqs, y
	}
	seqs, y := gen(400)
	r := &RNN{Epochs: 25, Seed: 5, Hidden: 16, Embed: 8}
	if err := r.FitTokens(seqs, y); err != nil {
		t.Fatal(err)
	}
	testSeqs, testY := gen(200)
	hits := 0
	for i, s := range testSeqs {
		if r.PredictTokens(s) == testY[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(len(testSeqs)); acc < 0.85 {
		t.Errorf("order-task accuracy = %.2f (bag-of-tokens cannot exceed 0.5)", acc)
	}
}

func TestRNNEmpty(t *testing.T) {
	r := &RNN{}
	if err := r.FitTokens(nil, nil); !errors.Is(err, ml.ErrEmptyDataset) {
		t.Errorf("err = %v", err)
	}
	if r.ProbaTokens([]string{"a"}) != 0 {
		t.Error("unfit proba != 0")
	}
}

func TestRNNEmptySequence(t *testing.T) {
	seqs, y := markerTask(50, 6)
	seqs = append(seqs, nil) // an empty sequence must not panic
	y = append(y, 0)
	r := &RNN{Epochs: 2, Seed: 7}
	if err := r.FitTokens(seqs, y); err != nil {
		t.Fatal(err)
	}
	_ = r.ProbaTokens(nil)
}

func TestRNNTruncation(t *testing.T) {
	long := make([]string, 5000)
	for i := range long {
		long[i] = "x"
	}
	r := &RNN{Epochs: 1, Seed: 8, MaxLen: 32}
	if err := r.FitTokens([][]string{long, {"MARKER"}}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	_ = r.ProbaTokens(long) // must not blow up on long input
}

func TestRNNDeterminism(t *testing.T) {
	seqs, y := markerTask(100, 9)
	r1 := &RNN{Epochs: 3, Seed: 10}
	r2 := &RNN{Epochs: 3, Seed: 10}
	if err := r1.FitTokens(seqs, y); err != nil {
		t.Fatal(err)
	}
	if err := r2.FitTokens(seqs, y); err != nil {
		t.Fatal(err)
	}
	for _, s := range seqs[:20] {
		if r1.ProbaTokens(s) != r2.ProbaTokens(s) {
			t.Fatal("same seed, different model")
		}
	}
}

func TestRNNWeightedSamples(t *testing.T) {
	// Zero-weighted contradictory samples must not prevent learning.
	seqs, y := markerTask(200, 11)
	flipped := make([]int, len(y))
	for i, v := range y {
		flipped[i] = 1 - v
	}
	all := append(append([][]string{}, seqs...), seqs...)
	labels := append(append([]int{}, y...), flipped...)
	weights := make([]float64, len(all))
	for i := range weights {
		if i < len(seqs) {
			weights[i] = 1
		} // flipped copies get weight 0
	}
	r := &RNN{Epochs: 10, Seed: 12}
	if err := r.FitTokensWeighted(all, labels, weights); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, s := range seqs {
		if r.PredictTokens(s) == y[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(len(seqs)); acc < 0.85 {
		t.Errorf("weighted training accuracy = %.2f", acc)
	}
}
