// Package ml provides the machine-learning substrate PatchDB's evaluation
// relies on: dataset containers, train/test splitting, classification
// metrics with confidence intervals, and the Classifier interface all model
// families (trees, linear models, Bayes, the RNN) implement.
package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Label values for the binary security-patch identification task.
const (
	// NonSecurity is the negative class.
	NonSecurity = 0
	// Security is the positive class.
	Security = 1
)

// ErrEmptyDataset is returned by Fit when there are no training rows.
var ErrEmptyDataset = errors.New("ml: empty training dataset")

// Classifier is a binary classifier over feature vectors.
type Classifier interface {
	// Fit trains on rows X with labels y (0 or 1).
	Fit(x [][]float64, y []int) error
	// Predict returns the predicted label for one row.
	Predict(x []float64) int
	// Proba returns the estimated probability of the positive class.
	Proba(x []float64) float64
}

// Dataset couples feature rows with labels and optional opaque ids.
type Dataset struct {
	X   [][]float64
	Y   []int
	IDs []string
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Append adds one row.
func (d *Dataset) Append(x []float64, y int, id string) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
	d.IDs = append(d.IDs, id)
}

// Merge returns a new dataset with the rows of both inputs.
func Merge(a, b *Dataset) *Dataset {
	out := &Dataset{
		X:   make([][]float64, 0, a.Len()+b.Len()),
		Y:   make([]int, 0, a.Len()+b.Len()),
		IDs: make([]string, 0, a.Len()+b.Len()),
	}
	for _, d := range []*Dataset{a, b} {
		out.X = append(out.X, d.X...)
		out.Y = append(out.Y, d.Y...)
		out.IDs = append(out.IDs, d.IDs...)
	}
	return out
}

// Subset returns the dataset restricted to the given row indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		X:   make([][]float64, len(idx)),
		Y:   make([]int, len(idx)),
		IDs: make([]string, len(idx)),
	}
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
		if j < len(d.IDs) {
			out.IDs[i] = d.IDs[j]
		}
	}
	return out
}

// Split partitions the dataset into train/test with the given train
// fraction, shuffling with rng. It is stratified per class so both splits
// keep the class balance (the paper's 80/20 protocol).
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test *Dataset) {
	var pos, neg []int
	for i, y := range d.Y {
		if y == Security {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	var trainIdx, testIdx []int
	for _, class := range [][]int{pos, neg} {
		cut := int(float64(len(class)) * trainFrac)
		trainIdx = append(trainIdx, class[:cut]...)
		testIdx = append(testIdx, class[cut:]...)
	}
	rng.Shuffle(len(trainIdx), func(i, j int) { trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i] })
	return d.Subset(trainIdx), d.Subset(testIdx)
}

// CountLabel returns how many rows carry label y.
func (d *Dataset) CountLabel(y int) int {
	n := 0
	for _, v := range d.Y {
		if v == y {
			n++
		}
	}
	return n
}

// Metrics summarizes binary classification quality.
type Metrics struct {
	TP, FP, TN, FN int
	Precision      float64
	Recall         float64
	F1             float64
	Accuracy       float64
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.1f%% R=%.1f%% F1=%.1f%% Acc=%.1f%% (tp=%d fp=%d tn=%d fn=%d)",
		100*m.Precision, 100*m.Recall, 100*m.F1, 100*m.Accuracy, m.TP, m.FP, m.TN, m.FN)
}

// Evaluate computes metrics from predictions against ground truth.
func Evaluate(pred, truth []int) Metrics {
	var m Metrics
	for i := range pred {
		switch {
		case pred[i] == Security && truth[i] == Security:
			m.TP++
		case pred[i] == Security && truth[i] == NonSecurity:
			m.FP++
		case pred[i] == NonSecurity && truth[i] == NonSecurity:
			m.TN++
		default:
			m.FN++
		}
	}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	total := m.TP + m.FP + m.TN + m.FN
	if total > 0 {
		m.Accuracy = float64(m.TP+m.TN) / float64(total)
	}
	return m
}

// EvaluateClassifier runs the classifier over the test set and scores it.
func EvaluateClassifier(c Classifier, test *Dataset) Metrics {
	pred := make([]int, test.Len())
	for i, x := range test.X {
		pred[i] = c.Predict(x)
	}
	return Evaluate(pred, test.Y)
}

// ConfidenceInterval95 returns the half-width of the 95% normal-approximation
// confidence interval for a proportion p observed over n samples (the
// "(±x)%" annotations of Table III).
func ConfidenceInterval95(p float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return 1.96 * math.Sqrt(p*(1-p)/float64(n))
}

// Normalizer rescales each feature dimension by 1/max|a_j| — the paper's
// weighting scheme (Sec. III-B-2). Values land in [-1, 1] and net-value
// signs are preserved.
type Normalizer struct {
	Weights []float64
}

// FitNormalizer computes per-dimension weights from the rows of all the
// provided datasets (the paper normalizes over the union of security and
// wild patches).
func FitNormalizer(sets ...*Dataset) *Normalizer {
	var dim int
	for _, s := range sets {
		if s.Len() > 0 {
			dim = len(s.X[0])
			break
		}
	}
	w := make([]float64, dim)
	for _, s := range sets {
		for _, row := range s.X {
			for j, v := range row {
				if a := math.Abs(v); a > w[j] {
					w[j] = a
				}
			}
		}
	}
	for j := range w {
		if w[j] == 0 {
			w[j] = 1 // constant dimension: weight is irrelevant
		} else {
			w[j] = 1 / w[j]
		}
	}
	return &Normalizer{Weights: w}
}

// Apply returns a new row scaled by the weights.
func (n *Normalizer) Apply(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = v * n.Weights[j]
	}
	return out
}

// ApplyAll returns a copy of the dataset with every row scaled.
func (n *Normalizer) ApplyAll(d *Dataset) *Dataset {
	out := &Dataset{X: make([][]float64, d.Len()), Y: append([]int(nil), d.Y...), IDs: append([]string(nil), d.IDs...)}
	for i, row := range d.X {
		out.X[i] = n.Apply(row)
	}
	return out
}

// ArgmaxProba returns the indices of the k rows with the highest positive
// probability under c, in descending order (used by pseudo labeling).
func ArgmaxProba(c Classifier, rows [][]float64, k int) []int {
	type scored struct {
		idx int
		p   float64
	}
	all := make([]scored, len(rows))
	for i, x := range rows {
		all[i] = scored{i, c.Proba(x)}
	}
	// partial selection sort via heap-free nth_element would be fine; a full
	// sort keeps it simple at these sizes.
	sortSlice(all, func(a, b scored) bool { return a.p > b.p })
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].idx
	}
	return out
}

func sortSlice[T any](s []T, less func(a, b T) bool) {
	// Simple merge sort to avoid reflection-based sort.Slice in hot paths.
	if len(s) < 2 {
		return
	}
	mid := len(s) / 2
	left := append([]T(nil), s[:mid]...)
	right := append([]T(nil), s[mid:]...)
	sortSlice(left, less)
	sortSlice(right, less)
	i, j := 0, 0
	for k := range s {
		switch {
		case i < len(left) && (j >= len(right) || !less(right[j], left[i])):
			s[k] = left[i]
			i++
		default:
			s[k] = right[j]
			j++
		}
	}
}
