package fixpattern

import (
	"strings"
	"testing"

	"patchdb/internal/corpus"
	"patchdb/internal/diff"
)

func inputsFromGenerator(t *testing.T, n int) []Input {
	t.Helper()
	g := corpus.NewGenerator(corpus.Config{Seed: 41})
	out := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		lc := g.SecurityCommit(corpus.DefaultWildMix)
		out = append(out, Input{Patch: lc.Commit.Patch(), Pattern: lc.Pattern})
	}
	return out
}

func TestShapeOf(t *testing.T) {
	cases := []struct{ line, want string }{
		{"if (len > 64)", "if ( VAR > NUM )"},
		{"\treturn -1;", "return - NUM ;"},
		{"state_lock(ctx);", "FUNC ( VAR ) ;"},
		{"", ""},
		{"   ", ""},
	}
	for _, tc := range cases {
		if got := shapeOf(tc.line); got != tc.want {
			t.Errorf("shapeOf(%q) = %q, want %q", tc.line, got, tc.want)
		}
	}
}

func TestMineFindsRecurringShapes(t *testing.T) {
	inputs := inputsFromGenerator(t, 300)
	templates := Miner{MinSupport: 5}.Mine(inputs)
	if len(templates) == 0 {
		t.Fatal("no templates mined")
	}
	for _, tmpl := range templates {
		if tmpl.Support < 5 {
			t.Errorf("template below min support: %+v", tmpl)
		}
		if tmpl.Shape == "" {
			t.Error("empty shape")
		}
		if tmpl.Kind != "add" && tmpl.Kind != "remove" && tmpl.Kind != "rewrite" {
			t.Errorf("kind = %q", tmpl.Kind)
		}
		if tmpl.Example == "" {
			t.Error("template without example")
		}
	}
	// The corpus's dominant fix shapes must surface: an added guard
	// (`if ( ... )`) for the check classes.
	foundGuard := false
	for _, tmpl := range templates {
		if tmpl.Kind == "add" && strings.HasPrefix(tmpl.Shape, "if (") {
			foundGuard = true
		}
	}
	if !foundGuard {
		t.Error("no added-guard template mined from a check-heavy corpus")
	}
}

func TestMineLockUnlockPattern(t *testing.T) {
	// Hand-built race-condition fixes (Table VII left column): the miner
	// must surface lock/unlock additions.
	var inputs []Input
	for i := 0; i < 5; i++ {
		before := map[string]string{"a.c": "void f(struct s *cv)\n{\n\tupdate(cv);\n\temit(cv);\n}\n"}
		after := map[string]string{"a.c": "void f(struct s *cv)\n{\n\tlock(cv);\n\tupdate(cv);\n\tunlock(cv);\n\temit(cv);\n}\n"}
		p := diff.ComputePatch("h"+string(rune('0'+i)), "", before, after, 3)
		inputs = append(inputs, Input{Patch: p, Pattern: corpus.PatternFuncCall})
	}
	templates := Miner{MinSupport: 4}.Mine(inputs)
	locks := 0
	for _, tmpl := range templates {
		if tmpl.Kind == "add" && tmpl.Shape == "FUNC ( VAR ) ;" {
			locks++
		}
	}
	if locks == 0 {
		t.Errorf("lock/unlock addition not mined: %+v", templates)
	}
}

func TestMineRewrites(t *testing.T) {
	var inputs []Input
	for i := 0; i < 4; i++ {
		before := map[string]string{"a.c": "void f(char *d, char *s)\n{\n\tstrcpy(d, s);\n}\n"}
		after := map[string]string{"a.c": "void f(char *d, char *s)\n{\n\tstrlcpy(d, s, sizeof(d));\n}\n"}
		p := diff.ComputePatch("r"+string(rune('0'+i)), "", before, after, 3)
		inputs = append(inputs, Input{Patch: p, Pattern: corpus.PatternFuncCall})
	}
	templates := Miner{MinSupport: 3}.Mine(inputs)
	found := false
	for _, tmpl := range templates {
		if tmpl.Kind == "rewrite" && strings.Contains(tmpl.RewriteTo, "sizeof") {
			found = true
		}
	}
	if !found {
		t.Errorf("rewrite template not mined: %+v", templates)
	}
}

func TestSupportCountsDistinctPatches(t *testing.T) {
	// One patch repeating a shape 10 times must count as support 1.
	var lines []string
	for i := 0; i < 10; i++ {
		lines = append(lines, "\tcheck_thing(x);")
	}
	before := map[string]string{"a.c": "void f(int x)\n{\n\twork(x);\n}\n"}
	after := map[string]string{"a.c": "void f(int x)\n{\n" + strings.Join(lines, "\n") + "\n\twork(x);\n}\n"}
	p := diff.ComputePatch("s1", "", before, after, 3)
	templates := Miner{MinSupport: 1}.Mine([]Input{{Patch: p, Pattern: corpus.PatternFuncCall}})
	for _, tmpl := range templates {
		if tmpl.Support != 1 {
			t.Errorf("support = %d for single patch: %+v", tmpl.Support, tmpl)
		}
	}
}

func TestTopKCap(t *testing.T) {
	inputs := inputsFromGenerator(t, 300)
	templates := Miner{MinSupport: 2, TopK: 2}.Mine(inputs)
	counts := map[string]int{}
	for _, tmpl := range templates {
		key := tmpl.Pattern.String() + "/" + tmpl.Kind
		counts[key]++
		if counts[key] > 2 {
			t.Fatalf("TopK=2 exceeded for %s", key)
		}
	}
}

func TestRender(t *testing.T) {
	inputs := inputsFromGenerator(t, 100)
	out := Render(Miner{MinSupport: 3}.Mine(inputs))
	if !strings.Contains(out, "Table VII") {
		t.Error("render missing title")
	}
	if !strings.Contains(out, "e.g.") {
		t.Error("render missing examples")
	}
}
