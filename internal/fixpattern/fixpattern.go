// Package fixpattern implements the paper's second usage scenario
// (Sec. V-A-2): summarizing recurring fix patterns from a large security
// patch dataset. Each patch's added and removed lines are abstracted into
// canonical token shapes; frequent shapes (and removed->added rewrite
// pairs) per pattern class become templates like the race-condition and
// data-leakage examples of Table VII.
package fixpattern

import (
	"fmt"
	"sort"
	"strings"

	"patchdb/internal/corpus"
	"patchdb/internal/ctoken"
	"patchdb/internal/diff"
)

// Input couples a security patch with its pattern class.
type Input struct {
	Patch   *diff.Patch
	Pattern corpus.Pattern
}

// Template is one mined fix shape.
type Template struct {
	// Pattern is the class the template was mined from.
	Pattern corpus.Pattern
	// Kind is "add", "remove", or "rewrite".
	Kind string
	// Shape is the abstracted token form, e.g. "if ( VAR -> VAR > NUM )".
	Shape string
	// RewriteTo holds the post form for rewrite templates.
	RewriteTo string
	// Support counts distinct patches exhibiting the shape.
	Support int
	// Example is one concrete source line matching the shape.
	Example string
}

// Miner extracts frequent fix templates.
type Miner struct {
	// MinSupport is the minimum number of distinct patches a shape must
	// appear in (default 3).
	MinSupport int
	// TopK bounds the number of templates reported per class and kind
	// (default 5).
	TopK int
}

func (m Miner) withDefaults() Miner {
	if m.MinSupport <= 0 {
		m.MinSupport = 3
	}
	if m.TopK <= 0 {
		m.TopK = 5
	}
	return m
}

// shapeOf abstracts a source line into its canonical token form.
func shapeOf(line string) string {
	toks := ctoken.Abstract(ctoken.LexLine(line))
	if len(toks) == 0 {
		return ""
	}
	return strings.Join(toks, " ")
}

type shapeKey struct {
	pattern corpus.Pattern
	kind    string
	shape   string
	to      string
}

// Mine aggregates templates across the inputs.
func (m Miner) Mine(inputs []Input) []Template {
	m = m.withDefaults()
	support := make(map[shapeKey]int)
	examples := make(map[shapeKey]string)

	for _, in := range inputs {
		seen := make(map[shapeKey]bool) // support counts distinct patches
		record := func(k shapeKey, example string) {
			if seen[k] {
				return
			}
			seen[k] = true
			support[k]++
			if _, ok := examples[k]; !ok {
				examples[k] = strings.TrimSpace(example)
			}
		}
		for _, h := range in.Patch.HunkList() {
			added := h.AddedLines()
			removed := h.RemovedLines()
			for _, ln := range added {
				if shape := shapeOf(ln); shape != "" {
					record(shapeKey{in.Pattern, "add", shape, ""}, ln)
				}
			}
			for _, ln := range removed {
				if shape := shapeOf(ln); shape != "" {
					record(shapeKey{in.Pattern, "remove", shape, ""}, ln)
				}
			}
			// One-for-one hunks are rewrites (strcpy -> strlcpy style).
			if len(added) == 1 && len(removed) == 1 {
				from := shapeOf(removed[0])
				to := shapeOf(added[0])
				if from != "" && to != "" && from != to {
					record(shapeKey{in.Pattern, "rewrite", from, to}, removed[0]+" -> "+added[0])
				}
			}
		}
	}

	var out []Template
	for k, n := range support {
		if n < m.MinSupport {
			continue
		}
		out = append(out, Template{
			Pattern:   k.pattern,
			Kind:      k.kind,
			Shape:     k.shape,
			RewriteTo: k.to,
			Support:   n,
			Example:   examples[k],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pattern != b.Pattern {
			return a.Pattern < b.Pattern
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Shape < b.Shape
	})
	// Keep TopK per (pattern, kind).
	counts := make(map[[2]string]int)
	kept := out[:0]
	for _, tmpl := range out {
		key := [2]string{fmt.Sprint(int(tmpl.Pattern)), tmpl.Kind}
		if counts[key] >= m.TopK {
			continue
		}
		counts[key]++
		kept = append(kept, tmpl)
	}
	return kept
}

// Render prints templates grouped by class, Table VII style.
func Render(templates []Template) string {
	var b strings.Builder
	b.WriteString("Mined fix patterns (cf. Table VII)\n")
	var last corpus.Pattern
	for _, t := range templates {
		if t.Pattern != last {
			fmt.Fprintf(&b, "\n[%d] %s\n", int(t.Pattern), t.Pattern)
			last = t.Pattern
		}
		switch t.Kind {
		case "rewrite":
			fmt.Fprintf(&b, "  rewrite (x%d): %s => %s\n      e.g. %s\n", t.Support, t.Shape, t.RewriteTo, t.Example)
		default:
			fmt.Fprintf(&b, "  %s (x%d): %s\n      e.g. %s\n", t.Kind, t.Support, t.Shape, t.Example)
		}
	}
	return b.String()
}
