// Package gitrepo implements an in-memory git-like object store: named
// repositories holding ordered commits addressed by SHA-1-style hashes, each
// commit retaining before/after snapshots of the files it touched. It stands
// in for the 313 GitHub repositories of the paper, providing the two
// operations the pipeline requires: enumerating a repository's full commit
// log (`git log`, the "wild") and rolling back to the state just before or
// after a commit (needed by the oversampler to parse complete files).
package gitrepo

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"patchdb/internal/diff"
)

// Commit is one recorded change set.
type Commit struct {
	Hash    string
	Repo    string
	Author  string
	Date    string
	Message string
	// Before and After snapshot only the files the commit touched. A path
	// missing from Before was created; missing from After was deleted.
	Before map[string]string
	After  map[string]string

	patchOnce sync.Once
	patch     *diff.Patch
}

// Patch lazily computes (and caches) the unified diff of the commit.
func (c *Commit) Patch() *diff.Patch {
	c.patchOnce.Do(func() {
		c.patch = diff.ComputePatch(c.Hash, c.Message, c.Before, c.After, 3)
		c.patch.Author = c.Author
		c.patch.Date = c.Date
	})
	return c.patch
}

// Repo is a single repository: an append-only commit log plus head state.
type Repo struct {
	Name string

	mu      sync.RWMutex
	commits []*Commit
	byHash  map[string]*Commit
	head    map[string]string
}

// NewRepo creates an empty repository.
func NewRepo(name string) *Repo {
	return &Repo{
		Name:   name,
		byHash: make(map[string]*Commit),
		head:   make(map[string]string),
	}
}

// Head returns a copy of the current file tree.
func (r *Repo) Head() map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]string, len(r.head))
	for k, v := range r.head {
		out[k] = v
	}
	return out
}

// File returns the current content of one file.
func (r *Repo) File(path string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.head[path]
	return v, ok
}

// SeedFile writes a file into the head tree without recording a commit.
// Corpus generation uses it to lay down pristine pre-patch files so that the
// first recorded commit of a file is a modification, not a bulk addition.
func (r *Repo) SeedFile(path, content string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.head[path] = content
}

// Commit applies edits (path -> new content; empty string deletes the file)
// and records a commit. It returns the new commit.
func (r *Repo) Commit(author, date, message string, edits map[string]string) *Commit {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Commit{
		Repo:    r.Name,
		Author:  author,
		Date:    date,
		Message: message,
		Before:  make(map[string]string, len(edits)),
		After:   make(map[string]string, len(edits)),
	}
	paths := make([]string, 0, len(edits))
	for p := range edits {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if old, ok := r.head[p]; ok {
			c.Before[p] = old
		}
		if edits[p] == "" {
			delete(r.head, p)
		} else {
			c.After[p] = edits[p]
			r.head[p] = edits[p]
		}
	}
	c.Hash = hashCommit(r.Name, len(r.commits), message, paths)
	r.commits = append(r.commits, c)
	r.byHash[c.Hash] = c
	return c
}

// Log returns the commits in chronological order (`git log --reverse`).
func (r *Repo) Log() []*Commit {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Commit, len(r.commits))
	copy(out, r.commits)
	return out
}

// Lookup resolves a commit hash.
func (r *Repo) Lookup(hash string) (*Commit, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.byHash[hash]
	return c, ok
}

// Len returns the number of commits.
func (r *Repo) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.commits)
}

func hashCommit(repo string, index int, message string, paths []string) string {
	h := sha1.New()
	h.Write([]byte(repo))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(index)))
	h.Write([]byte{0})
	h.Write([]byte(message))
	for _, p := range paths {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Store is a collection of repositories, the pipeline's view of "GitHub".
type Store struct {
	mu    sync.RWMutex
	repos map[string]*Repo
	order []string
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{repos: make(map[string]*Repo)}
}

// Add registers a repository. Adding a duplicate name is an error.
func (s *Store) Add(r *Repo) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.repos[r.Name]; ok {
		return fmt.Errorf("gitrepo: repository %q already exists", r.Name)
	}
	s.repos[r.Name] = r
	s.order = append(s.order, r.Name)
	return nil
}

// Repo resolves a repository by name.
func (s *Store) Repo(name string) (*Repo, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.repos[name]
	return r, ok
}

// Names returns the repository names in insertion order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// AllCommits returns every commit of every repository in insertion order.
func (s *Store) AllCommits() []*Commit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Commit
	for _, name := range s.order {
		out = append(out, s.repos[name].Log()...)
	}
	return out
}

// Lookup finds a commit by hash across all repositories.
func (s *Store) Lookup(hash string) (*Commit, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, name := range s.order {
		if c, ok := s.repos[name].Lookup(hash); ok {
			return c, true
		}
	}
	return nil, false
}
