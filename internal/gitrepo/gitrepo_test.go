package gitrepo

import (
	"strings"
	"testing"
)

func TestCommitAndLog(t *testing.T) {
	r := NewRepo("org/repo")
	c1 := r.Commit("alice", "2020-01-01", "add file", map[string]string{"a.c": "int x;\n"})
	c2 := r.Commit("bob", "2020-01-02", "edit file", map[string]string{"a.c": "int y;\n"})
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	log := r.Log()
	if log[0] != c1 || log[1] != c2 {
		t.Error("log order wrong")
	}
	if got, ok := r.Lookup(c2.Hash); !ok || got != c2 {
		t.Error("lookup failed")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("lookup of unknown hash succeeded")
	}
}

func TestBeforeAfterSnapshots(t *testing.T) {
	r := NewRepo("org/repo")
	r.SeedFile("a.c", "v1\n")
	c := r.Commit("alice", "2020-01-01", "edit", map[string]string{"a.c": "v2\n"})
	if c.Before["a.c"] != "v1\n" || c.After["a.c"] != "v2\n" {
		t.Errorf("snapshots: before=%q after=%q", c.Before["a.c"], c.After["a.c"])
	}
	// Creation: no before entry.
	c2 := r.Commit("alice", "2020-01-02", "create", map[string]string{"b.c": "new\n"})
	if _, ok := c2.Before["b.c"]; ok {
		t.Error("created file has a before snapshot")
	}
	// Deletion: empty content removes the file, no after entry.
	c3 := r.Commit("alice", "2020-01-03", "delete", map[string]string{"b.c": ""})
	if _, ok := c3.After["b.c"]; ok {
		t.Error("deleted file has an after snapshot")
	}
	if _, ok := r.File("b.c"); ok {
		t.Error("deleted file still in head")
	}
}

func TestSeedFileDoesNotLog(t *testing.T) {
	r := NewRepo("org/repo")
	r.SeedFile("a.c", "content\n")
	if r.Len() != 0 {
		t.Error("SeedFile created a commit")
	}
	if v, ok := r.File("a.c"); !ok || v != "content\n" {
		t.Error("seeded file missing from head")
	}
}

func TestHashUniquenessAndShape(t *testing.T) {
	r := NewRepo("org/repo")
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		c := r.Commit("a", "d", "same message", map[string]string{"f.c": strings.Repeat("x", i+1)})
		if len(c.Hash) != 40 {
			t.Fatalf("hash %q is not 40 hex chars", c.Hash)
		}
		if seen[c.Hash] {
			t.Fatalf("duplicate hash %q", c.Hash)
		}
		seen[c.Hash] = true
	}
}

func TestCommitPatchLazy(t *testing.T) {
	r := NewRepo("org/repo")
	r.SeedFile("a.c", "line1\nline2\n")
	c := r.Commit("alice", "2020-01-01", "tweak", map[string]string{"a.c": "line1\nchanged\n"})
	p := c.Patch()
	if p == nil || len(p.Files) != 1 {
		t.Fatalf("patch = %+v", p)
	}
	if p.Commit != c.Hash || p.Message != "tweak" || p.Author != "alice" {
		t.Errorf("patch metadata: %q %q %q", p.Commit, p.Message, p.Author)
	}
	if p2 := c.Patch(); p2 != p {
		t.Error("patch not cached")
	}
	added := p.AddedLines()
	if len(added) != 1 || added[0] != "changed" {
		t.Errorf("added = %v", added)
	}
}

func TestHeadIsCopy(t *testing.T) {
	r := NewRepo("org/repo")
	r.SeedFile("a.c", "x\n")
	head := r.Head()
	head["a.c"] = "mutated"
	if v, _ := r.File("a.c"); v != "x\n" {
		t.Error("Head() leaked internal state")
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	r1 := NewRepo("org/one")
	r2 := NewRepo("org/two")
	if err := s.Add(r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(r2); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(NewRepo("org/one")); err == nil {
		t.Error("duplicate repo accepted")
	}
	if got, ok := s.Repo("org/two"); !ok || got != r2 {
		t.Error("repo lookup failed")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "org/one" {
		t.Errorf("names = %v", names)
	}
	c := r1.Commit("a", "d", "m", map[string]string{"x.c": "1\n"})
	r2.Commit("a", "d", "m2", map[string]string{"y.c": "2\n"})
	if len(s.AllCommits()) != 2 {
		t.Errorf("all commits = %d", len(s.AllCommits()))
	}
	if got, ok := s.Lookup(c.Hash); !ok || got != c {
		t.Error("store lookup failed")
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Error("store lookup of unknown hash succeeded")
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRepo("org/repo")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Commit("a", "d", "m", map[string]string{"f.c": "x\n"})
		}
	}()
	for i := 0; i < 100; i++ {
		_ = r.Log()
		_ = r.Head()
		_ = r.Len()
	}
	<-done
}
