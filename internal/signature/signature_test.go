package signature

import (
	"errors"
	"testing"

	"patchdb/internal/corpus"
	"patchdb/internal/diff"
)

const vulnFile = `int copy_frame(char *dst, const char *src, int len)
{
	int ret = 0;
	memcpy(dst, src, len);
	ret = len;
	return ret;
}
`

const fixedFile = `int copy_frame(char *dst, const char *src, int len)
{
	int ret = 0;
	if (len < 0 || len > 4096)
		return -1;
	memcpy(dst, src, len);
	ret = len;
	return ret;
}
`

// renamedVulnFile is the vulnerable code with all identifiers renamed —
// abstraction must still match it.
const renamedVulnFile = `int clone_packet(char *out, const char *in, int n)
{
	int rc = 0;
	memcpy(out, in, n);
	rc = n;
	return rc;
}
`

func makeSig(t *testing.T) *Signature {
	t.Helper()
	p := diff.ComputePatch("c0ffee", "fix", map[string]string{"a.c": vulnFile}, map[string]string{"a.c": fixedFile}, 3)
	sig, err := Generate(p, "CVE-2020-0001", Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func TestGenerate(t *testing.T) {
	sig := makeSig(t)
	if sig.ID != "c0ffee" || sig.CVE != "CVE-2020-0001" {
		t.Errorf("metadata = %q %q", sig.ID, sig.CVE)
	}
	if len(sig.VulnGrams) == 0 || len(sig.FixGrams) == 0 {
		t.Fatalf("grams = %d/%d", len(sig.VulnGrams), len(sig.FixGrams))
	}
	// The fix side must carry grams the vulnerable side lacks (the check).
	vuln := toSet(sig.VulnGrams)
	fresh := 0
	for _, g := range sig.FixGrams {
		if !vuln[g] {
			fresh++
		}
	}
	if fresh == 0 {
		t.Error("fix side identical to vulnerable side")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(&diff.Patch{Commit: "x"}, "", Options{}); !errors.Is(err, ErrNoChanges) {
		t.Errorf("empty patch err = %v", err)
	}
	tiny := diff.ComputePatch("t", "", map[string]string{"a.c": "x;\n"}, map[string]string{"a.c": "y;\n"}, 0)
	if _, err := Generate(tiny, "", Options{MinGrams: 50}); err == nil {
		t.Error("tiny patch accepted with high MinGrams")
	}
}

func TestPresenceStatus(t *testing.T) {
	sig := makeSig(t)
	m := NewMatcher([]*Signature{sig})

	if res := m.Test(sig, vulnFile); res.Status != Vulnerable {
		t.Errorf("vulnerable file = %v (vuln=%.2f fix=%.2f)", res.Status, res.VulnScore, res.FixScore)
	}
	if res := m.Test(sig, fixedFile); res.Status != Patched {
		t.Errorf("fixed file = %v (vuln=%.2f fix=%.2f)", res.Status, res.VulnScore, res.FixScore)
	}
	unrelated := "int main(void)\n{\n\tprintf(\"hello\");\n\treturn 0;\n}\n"
	if res := m.Test(sig, unrelated); res.Status != Unknown {
		t.Errorf("unrelated file = %v", res.Status)
	}
}

func TestAbstractionSurvivesRenames(t *testing.T) {
	sig := makeSig(t)
	m := NewMatcher([]*Signature{sig})
	res := m.Test(sig, renamedVulnFile)
	if res.Status != Vulnerable {
		t.Errorf("renamed clone = %v (vuln=%.2f fix=%.2f): abstraction failed", res.Status, res.VulnScore, res.FixScore)
	}
}

func TestScan(t *testing.T) {
	sig := makeSig(t)
	// A second, unrelated signature.
	p2 := diff.ComputePatch("beef", "fix2",
		map[string]string{"b.c": "void g(struct s *p)\n{\n\tp->x = p->y << 2;\n\temit(p->x);\n}\n"},
		map[string]string{"b.c": "void g(struct s *p)\n{\n\tif (p == NULL)\n\t\treturn;\n\tp->x = p->y << 2;\n\temit(p->x);\n}\n"}, 3)
	sig2, err := Generate(p2, "CVE-2020-0002", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher([]*Signature{sig, sig2})
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	vulnerable, patched := m.Scan(vulnFile)
	if len(vulnerable) != 1 || vulnerable[0].CVE != "CVE-2020-0001" {
		t.Errorf("scan vulnerable = %+v", vulnerable)
	}
	if len(patched) != 0 {
		t.Errorf("scan patched = %+v", patched)
	}
	vulnerable, patched = m.Scan(fixedFile)
	if len(patched) != 1 || len(vulnerable) != 0 {
		t.Errorf("scan of fixed: vuln=%d patched=%d", len(vulnerable), len(patched))
	}
}

// TestEndToEndOnCorpus generates security patches, builds signatures, and
// verifies presence testing works on the generator's own before/after
// snapshots at scale.
func TestEndToEndOnCorpus(t *testing.T) {
	g := corpus.NewGenerator(corpus.Config{Seed: 31})
	correct, total := 0, 0
	for i := 0; i < 40; i++ {
		lc := g.SecurityCommit(corpus.DefaultNVDMix)
		sig, err := Generate(lc.Commit.Patch(), lc.CVE, Options{})
		if err != nil {
			continue // tiny patches are legitimately rejected
		}
		m := NewMatcher([]*Signature{sig})
		for path, before := range lc.Commit.Before {
			after := lc.Commit.After[path]
			total += 2
			if res := m.Test(sig, before); res.Status == Vulnerable {
				correct++
			}
			if res := m.Test(sig, after); res.Status == Patched {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no signatures generated")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Errorf("presence-test accuracy = %.2f (%d/%d)", acc, correct, total)
	}
}

func TestStatusString(t *testing.T) {
	if Vulnerable.String() != "vulnerable" || Patched.String() != "patched" || Unknown.String() != "unknown" {
		t.Error("status names wrong")
	}
}

func TestGramsSmallInput(t *testing.T) {
	gs := grams([]string{"x"}, 4)
	if len(gs) != 1 {
		t.Errorf("short input grams = %d", len(gs))
	}
	if gs := grams(nil, 4); gs != nil {
		t.Errorf("empty input grams = %v", gs)
	}
}

func TestContainmentBounds(t *testing.T) {
	a := toSet([]uint64{1, 2, 3, 4})
	b := toSet([]uint64{1, 2})
	if got := containment(a, b); got != 0.5 {
		t.Errorf("containment = %v", got)
	}
	if got := containment(map[uint64]bool{}, b); got != 0 {
		t.Errorf("empty sig containment = %v", got)
	}
}
