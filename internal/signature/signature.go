// Package signature implements the paper's first usage scenario (Sec. V-A-1):
// patch-enhanced vulnerability signatures. A security patch embeds both the
// vulnerable code (its removed/context lines) and the fix (its added lines);
// a signature captures both sides as abstracted token fingerprints so that
// target code can be classified as vulnerable (matches the vulnerable
// fingerprint, lacks the fix) or patched (contains the fix fingerprint) —
// the patch presence testing of MVP/VUDDY-style systems.
package signature

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"patchdb/internal/ctoken"
	"patchdb/internal/diff"
)

// ErrNoChanges is returned when a patch contains no usable hunks.
var ErrNoChanges = errors.New("signature: patch has no code changes")

// ErrNotDistinctive is returned when the pre- and post-patch versions are
// identical after token abstraction (e.g. a constant tweak or a pure
// statement move): no fingerprint can tell them apart.
var ErrNotDistinctive = errors.New("signature: patch sides identical after abstraction")

// Signature is a two-sided fingerprint derived from one security patch.
type Signature struct {
	// ID identifies the originating patch (commit hash).
	ID string
	// CVE is the associated vulnerability id, if known.
	CVE string
	// VulnGrams are hashed abstracted-token n-grams that characterize the
	// vulnerable version (removed lines plus their context).
	VulnGrams []uint64
	// FixGrams characterize the fixed version (added lines plus context).
	FixGrams []uint64
	// vulnSet/fixSet hold all grams per side; vulnOnly/fixOnly hold the
	// side-exclusive grams used for matching.
	vulnSet  map[uint64]bool
	fixSet   map[uint64]bool
	vulnOnly map[uint64]bool
	fixOnly  map[uint64]bool
	// vulnFallback/fixFallback mark sides with no exclusive grams (pure
	// insertions/deletions): such a side is only "present" when the other
	// side is absent.
	vulnFallback bool
	fixFallback  bool
}

// Options tunes signature generation.
type Options struct {
	// N is the token n-gram size (default 4).
	N int
	// MinGrams rejects patches whose sides produce fewer distinct n-grams
	// (default 3): tiny patches make unreliable signatures.
	MinGrams int
}

func (o Options) withDefaults() Options {
	if o.N <= 0 {
		o.N = 4
	}
	if o.MinGrams <= 0 {
		o.MinGrams = 3
	}
	return o
}

// Generate builds a signature from a security patch.
func Generate(p *diff.Patch, cve string, opts Options) (*Signature, error) {
	opts = opts.withDefaults()
	// Reconstruct each hunk's pre- and post-patch line sequences in their
	// true order, so token windows reflect adjacencies that actually occur
	// in the corresponding file version.
	var vulnGrams, fixGrams []uint64
	changed := false
	for _, h := range p.HunkList() {
		var beforeLines, afterLines []string
		for _, ln := range h.Lines {
			switch ln.Kind {
			case diff.Context:
				beforeLines = append(beforeLines, ln.Text)
				afterLines = append(afterLines, ln.Text)
			case diff.Removed:
				beforeLines = append(beforeLines, ln.Text)
				changed = true
			case diff.Added:
				afterLines = append(afterLines, ln.Text)
				changed = true
			}
		}
		vulnGrams = append(vulnGrams, grams(beforeLines, opts.N)...)
		fixGrams = append(fixGrams, grams(afterLines, opts.N)...)
	}
	if !changed {
		return nil, ErrNoChanges
	}
	sig := &Signature{
		ID:        p.Commit,
		CVE:       cve,
		VulnGrams: dedupe(vulnGrams),
		FixGrams:  dedupe(fixGrams),
	}
	if len(sig.VulnGrams) < opts.MinGrams && len(sig.FixGrams) < opts.MinGrams {
		return nil, fmt.Errorf("signature: patch %s too small (%d vuln / %d fix grams, need %d)",
			p.Commit, len(sig.VulnGrams), len(sig.FixGrams), opts.MinGrams)
	}
	sig.vulnSet = toSet(sig.VulnGrams)
	sig.fixSet = toSet(sig.FixGrams)
	// Matching uses the DISTINCTIVE grams of each side: context lines land
	// in both fingerprints, so on small patches the shared portion would
	// dominate and both versions of a file would match both sides. The
	// differential is what discriminates (ReDeBug-style). When one side has
	// no exclusive grams (pure additions/removals), the full set is kept.
	sig.vulnOnly = subtract(sig.vulnSet, sig.fixSet)
	sig.fixOnly = subtract(sig.fixSet, sig.vulnSet)
	if len(sig.vulnOnly) == 0 && len(sig.fixOnly) == 0 {
		return nil, ErrNotDistinctive
	}
	if len(sig.vulnOnly) == 0 {
		sig.vulnOnly = sig.vulnSet
		sig.vulnFallback = true
	}
	if len(sig.fixOnly) == 0 {
		sig.fixOnly = sig.fixSet
		sig.fixFallback = true
	}
	return sig, nil
}

func dedupe(gs []uint64) []uint64 {
	seen := make(map[uint64]bool, len(gs))
	out := gs[:0]
	for _, g := range gs {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

func subtract(a, b map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool)
	for g := range a {
		if !b[g] {
			out[g] = true
		}
	}
	return out
}

// grams lexes lines, abstracts the tokens, and hashes sliding n-grams.
func grams(lines []string, n int) []uint64 {
	var toks []string
	for _, ln := range lines {
		toks = append(toks, ctoken.Abstract(ctoken.LexLine(ln))...)
	}
	if len(toks) < n {
		if len(toks) == 0 {
			return nil
		}
		return []uint64{hashGram(toks)}
	}
	seen := make(map[uint64]bool)
	out := make([]uint64, 0, len(toks)-n+1)
	for i := 0; i+n <= len(toks); i++ {
		g := hashGram(toks[i : i+n])
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

func hashGram(toks []string) uint64 {
	h := fnv.New64a()
	for _, t := range toks {
		h.Write([]byte(t))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func toSet(gs []uint64) map[uint64]bool {
	out := make(map[uint64]bool, len(gs))
	for _, g := range gs {
		out[g] = true
	}
	return out
}

// Status is the outcome of a presence test.
type Status int

const (
	// Unknown: the target code does not match either side of the signature.
	Unknown Status = iota + 1
	// Vulnerable: the target contains the pre-patch code and not the fix.
	Vulnerable
	// Patched: the target contains the fix.
	Patched
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Vulnerable:
		return "vulnerable"
	case Patched:
		return "patched"
	default:
		return "unknown"
	}
}

// MatchResult reports how strongly a target matched.
type MatchResult struct {
	Status Status
	// VulnScore and FixScore are containment ratios in [0,1]: the fraction
	// of the signature's grams found in the target.
	VulnScore float64
	FixScore  float64
}

// Matcher tests target code against a set of signatures.
type Matcher struct {
	// Threshold is the containment ratio above which a side counts as
	// present (default 0.7).
	Threshold float64
	// N must match the signatures' n-gram size (default 4).
	N int

	sigs []*Signature
}

// NewMatcher builds a matcher over signatures.
func NewMatcher(sigs []*Signature) *Matcher {
	return &Matcher{Threshold: 0.7, N: 4, sigs: sigs}
}

// Add registers another signature.
func (m *Matcher) Add(sig *Signature) { m.sigs = append(m.sigs, sig) }

// Len returns the number of registered signatures.
func (m *Matcher) Len() int { return len(m.sigs) }

// Test classifies target source code against one signature. Scores are
// containment ratios of each side's exclusive grams; when both sides clear
// the threshold the higher score wins.
func (m *Matcher) Test(sig *Signature, source string) MatchResult {
	targetGrams := toSet(grams(strings.Split(source, "\n"), m.n()))
	res := MatchResult{Status: Unknown}
	res.VulnScore = containment(sig.vulnOnly, targetGrams)
	res.FixScore = containment(sig.fixOnly, targetGrams)
	res.Status = classify(sig, res.VulnScore, res.FixScore, m.Threshold)
	return res
}

// classify resolves the two containment scores into a status, honoring the
// fallback semantics: a context-only side counts as present only when the
// other, distinctive side is absent.
func classify(sig *Signature, vulnScore, fixScore, threshold float64) Status {
	if threshold <= 0 {
		threshold = 0.7
	}
	fixPresent := fixScore >= threshold
	vulnPresent := vulnScore >= threshold
	if sig.vulnFallback && fixPresent {
		vulnPresent = false
	}
	if sig.fixFallback && vulnPresent {
		fixPresent = false
	}
	switch {
	case fixPresent && (!vulnPresent || fixScore >= vulnScore):
		return Patched
	case vulnPresent:
		return Vulnerable
	default:
		return Unknown
	}
}

// Scan tests target code against every signature and returns the ids of
// signatures whose vulnerable side matched without the fix (detected
// vulnerable clones), plus those found patched.
func (m *Matcher) Scan(source string) (vulnerable, patched []*Signature) {
	targetGrams := toSet(grams(strings.Split(source, "\n"), m.n()))
	for _, sig := range m.sigs {
		fix := containment(sig.fixOnly, targetGrams)
		vuln := containment(sig.vulnOnly, targetGrams)
		switch classify(sig, vuln, fix, m.Threshold) {
		case Patched:
			patched = append(patched, sig)
		case Vulnerable:
			vulnerable = append(vulnerable, sig)
		}
	}
	return vulnerable, patched
}

func (m *Matcher) n() int {
	if m.N <= 0 {
		return 4
	}
	return m.N
}

// containment returns |sig ∩ target| / |sig|.
func containment(sig, target map[uint64]bool) float64 {
	if len(sig) == 0 {
		return 0
	}
	hits := 0
	for g := range sig {
		if target[g] {
			hits++
		}
	}
	return float64(hits) / float64(len(sig))
}
