// Package cast implements a tolerant recursive-descent parser for the C
// subset used by the corpus, producing an AST with line- and byte-accurate
// spans. PatchDB's oversampler uses it the way the paper uses LLVM AST
// dumps: to locate the `if` statements a patch touches (the `IfStmt
// <line:N, line:N>` information) so control-flow variants can be applied.
package cast

import (
	"fmt"

	"patchdb/internal/ctoken"
)

// Node is any AST node with a source span.
type Node interface {
	// Span returns the 1-based first and last source line of the node.
	Span() (startLine, endLine int)
}

// span is the common position bookkeeping embedded in every node.
type span struct {
	StartLine int
	EndLine   int
	StartOff  int // byte offset of the first token
	EndOff    int // byte offset just past the last token
}

func (s span) Span() (int, int) { return s.StartLine, s.EndLine }

// File is a parsed translation unit.
type File struct {
	span
	Funcs []*FuncDef
	// TopLevel holds non-function top-level statements (globals, typedefs).
	TopLevel []Stmt
}

// FuncDef is a function definition with a brace-delimited body.
type FuncDef struct {
	span
	Name string
	Body *Block
}

// Stmt is implemented by every statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a `{ ... }` statement list.
type Block struct {
	span
	Stmts []Stmt
}

// IfStmt is an if statement, the target of the oversampler.
type IfStmt struct {
	span
	// KwOffset is the byte offset of the `if` keyword.
	KwOffset int
	// CondOpen and CondClose are byte offsets of the '(' and matching ')'.
	CondOpen  int
	CondClose int
	// CondText is the raw source text of the condition between the parens.
	CondText string
	Then     Stmt
	Else     Stmt // nil if absent
}

// LoopStmt is a for/while/do statement.
type LoopStmt struct {
	span
	Keyword string
	Body    Stmt
}

// ReturnStmt is a return statement.
type ReturnStmt struct{ span }

// DeclStmt is a declaration statement (heuristic: begins with a type
// keyword or struct/const and ends with ';').
type DeclStmt struct{ span }

// ExprStmt is any other single-semicolon statement.
type ExprStmt struct{ span }

// SwitchStmt is a switch statement (body treated as a block).
type SwitchStmt struct {
	span
	Body *Block
}

func (*Block) stmtNode()      {}
func (*IfStmt) stmtNode()     {}
func (*LoopStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode() {}
func (*DeclStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()   {}
func (*SwitchStmt) stmtNode() {}

// SyntaxError reports an unrecoverable parse failure (the parser is
// tolerant, so these are rare: unbalanced braces/parens at EOF).
type SyntaxError struct {
	Line   int
	Reason string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("parse error at line %d: %s", e.Line, e.Reason)
}

type parser struct {
	src  string
	toks []ctoken.Token
	pos  int
}

// Parse parses source text into a File. It is tolerant: constructs outside
// the supported subset are consumed as generic statements; it only fails on
// structurally unbalanced input.
func Parse(src string) (*File, error) {
	p := &parser{src: src, toks: ctoken.Lex(src, 1)}
	f := &File{}
	for !p.eof() {
		if fn, ok := p.tryFuncDef(); ok {
			f.Funcs = append(f.Funcs, fn)
			continue
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		f.TopLevel = append(f.TopLevel, st)
	}
	if len(p.toks) > 0 {
		f.StartLine = p.toks[0].Line
		last := p.toks[len(p.toks)-1]
		f.EndLine = last.Line
		f.EndOff = last.Offset + len(last.Text)
	}
	return f, nil
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() ctoken.Token {
	if p.eof() {
		return ctoken.Token{}
	}
	return p.toks[p.pos]
}

func (p *parser) next() ctoken.Token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) at(text string) bool {
	return !p.eof() && p.toks[p.pos].Text == text
}

// tryFuncDef attempts to parse `type name(args) { ... }` starting at the
// current position. On failure it restores the position and returns false.
func (p *parser) tryFuncDef() (*FuncDef, bool) {
	save := p.pos
	start := p.peek()
	// Consume leading type/qualifier tokens and pointer stars until we reach
	// an identifier immediately followed by '(' — the function name.
	name := ""
	sawType := false
	for !p.eof() {
		t := p.peek()
		if (t.Kind == ctoken.Keyword && (isDeclKeyword(t.Text) || t.Text == "inline")) || t.Text == "*" {
			p.next()
			if t.Text != "*" {
				sawType = true
			}
			continue
		}
		if t.Kind == ctoken.Identifier {
			if t.Call {
				// `struct foo *bar(...)`: bar is the name.
				name = t.Text
				p.next()
				break
			}
			// Part of a typedef'd return type.
			p.next()
			sawType = true
			continue
		}
		p.pos = save
		return nil, false
	}
	if name == "" || !sawType || !p.at("(") {
		p.pos = save
		return nil, false
	}
	if !p.skipBalanced("(", ")") {
		p.pos = save
		return nil, false
	}
	if !p.at("{") {
		p.pos = save
		return nil, false
	}
	body, err := p.parseBlock()
	if err != nil {
		p.pos = save
		return nil, false
	}
	fn := &FuncDef{Name: name, Body: body}
	fn.StartLine = start.Line
	fn.StartOff = start.Offset
	fn.EndLine = body.EndLine
	fn.EndOff = body.EndOff
	return fn, true
}

func (p *parser) parseBlock() (*Block, error) {
	open := p.next() // consume '{'
	b := &Block{}
	b.StartLine = open.Line
	b.StartOff = open.Offset
	for !p.eof() && !p.at("}") {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, st)
	}
	if p.eof() {
		return nil, &SyntaxError{Line: open.Line, Reason: "unterminated block"}
	}
	closeTok := p.next()
	b.EndLine = closeTok.Line
	b.EndOff = closeTok.Offset + 1
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.Text == "{":
		return p.parseBlock()
	case ctoken.IsIfKeyword(t):
		return p.parseIf()
	case t.Kind == ctoken.Keyword && (t.Text == "for" || t.Text == "while"):
		return p.parseLoop(t.Text)
	case t.Kind == ctoken.Keyword && t.Text == "do":
		return p.parseDoWhile()
	case t.Kind == ctoken.Keyword && t.Text == "switch":
		return p.parseSwitch()
	case t.Kind == ctoken.Keyword && t.Text == "return":
		st := &ReturnStmt{}
		st.StartLine = t.Line
		st.StartOff = t.Offset
		end, err := p.consumeToSemicolon(t.Line)
		if err != nil {
			return nil, err
		}
		st.EndLine, st.EndOff = end.Line, end.Offset+1
		return st, nil
	case t.Kind == ctoken.Keyword && isDeclKeyword(t.Text):
		st := &DeclStmt{}
		st.StartLine = t.Line
		st.StartOff = t.Offset
		end, err := p.consumeToSemicolon(t.Line)
		if err != nil {
			return nil, err
		}
		st.EndLine, st.EndOff = end.Line, end.Offset+1
		return st, nil
	default:
		st := &ExprStmt{}
		st.StartLine = t.Line
		st.StartOff = t.Offset
		end, err := p.consumeToSemicolon(t.Line)
		if err != nil {
			return nil, err
		}
		st.EndLine, st.EndOff = end.Line, end.Offset+1
		return st, nil
	}
}

func isDeclKeyword(s string) bool {
	switch s {
	case "int", "char", "long", "short", "unsigned", "signed", "float",
		"double", "void", "bool", "const", "static", "struct", "union",
		"enum", "auto", "register", "volatile", "extern", "typedef":
		return true
	}
	return false
}

func (p *parser) parseIf() (Stmt, error) {
	kw := p.next() // `if`
	st := &IfStmt{KwOffset: kw.Offset}
	st.StartLine = kw.Line
	st.StartOff = kw.Offset
	if !p.at("(") {
		return nil, &SyntaxError{Line: kw.Line, Reason: "if without condition"}
	}
	openTok := p.peek()
	st.CondOpen = openTok.Offset
	closeIdx, ok := p.findBalanced("(", ")")
	if !ok {
		return nil, &SyntaxError{Line: kw.Line, Reason: "unbalanced if condition"}
	}
	closeTok := p.toks[closeIdx]
	st.CondClose = closeTok.Offset
	st.CondText = p.src[st.CondOpen+1 : st.CondClose]
	p.pos = closeIdx + 1
	thenStmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Then = thenStmt
	_, st.EndLine = thenStmt.Span()
	st.EndOff = endOff(thenStmt)
	if !p.eof() && p.peek().Kind == ctoken.Keyword && p.peek().Text == "else" {
		p.next()
		elseStmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = elseStmt
		_, st.EndLine = elseStmt.Span()
		st.EndOff = endOff(elseStmt)
	}
	return st, nil
}

func (p *parser) parseLoop(keyword string) (Stmt, error) {
	kw := p.next()
	st := &LoopStmt{Keyword: keyword}
	st.StartLine = kw.Line
	st.StartOff = kw.Offset
	if !p.at("(") {
		return nil, &SyntaxError{Line: kw.Line, Reason: keyword + " without header"}
	}
	if !p.skipBalanced("(", ")") {
		return nil, &SyntaxError{Line: kw.Line, Reason: "unbalanced " + keyword + " header"}
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	_, st.EndLine = body.Span()
	st.EndOff = endOff(body)
	return st, nil
}

func (p *parser) parseDoWhile() (Stmt, error) {
	kw := p.next() // `do`
	st := &LoopStmt{Keyword: "do"}
	st.StartLine = kw.Line
	st.StartOff = kw.Offset
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	// Consume `while (...) ;`
	if !p.eof() && p.peek().Text == "while" {
		p.next()
		if p.at("(") {
			p.skipBalanced("(", ")")
		}
		end, err := p.consumeToSemicolon(kw.Line)
		if err != nil {
			return nil, err
		}
		st.EndLine, st.EndOff = end.Line, end.Offset+1
		return st, nil
	}
	_, st.EndLine = body.Span()
	st.EndOff = endOff(body)
	return st, nil
}

func (p *parser) parseSwitch() (Stmt, error) {
	kw := p.next()
	st := &SwitchStmt{}
	st.StartLine = kw.Line
	st.StartOff = kw.Offset
	if p.at("(") {
		if !p.skipBalanced("(", ")") {
			return nil, &SyntaxError{Line: kw.Line, Reason: "unbalanced switch header"}
		}
	}
	if !p.at("{") {
		return nil, &SyntaxError{Line: kw.Line, Reason: "switch without body"}
	}
	// case/default labels are consumed as generic statements inside the block.
	body, err := p.parseSwitchBody()
	if err != nil {
		return nil, err
	}
	st.Body = body
	st.EndLine = body.EndLine
	st.EndOff = body.EndOff
	return st, nil
}

// parseSwitchBody consumes a brace-balanced region without interpreting
// labels, returning it as a Block with no inner statements beyond what
// parses cleanly.
func (p *parser) parseSwitchBody() (*Block, error) {
	open := p.next()
	b := &Block{}
	b.StartLine = open.Line
	b.StartOff = open.Offset
	depth := 1
	var last ctoken.Token = open
	for !p.eof() && depth > 0 {
		t := p.next()
		last = t
		switch t.Text {
		case "{":
			depth++
		case "}":
			depth--
		}
	}
	if depth != 0 {
		return nil, &SyntaxError{Line: open.Line, Reason: "unterminated switch body"}
	}
	b.EndLine = last.Line
	b.EndOff = last.Offset + 1
	return b, nil
}

// consumeToSemicolon advances past the next top-level ';', skipping over
// balanced parens/braces/brackets, and returns the semicolon token.
func (p *parser) consumeToSemicolon(startLine int) (ctoken.Token, error) {
	depth := 0
	for !p.eof() {
		t := p.next()
		switch t.Text {
		case "(", "{", "[":
			depth++
		case ")", "}", "]":
			depth--
		case ";":
			if depth <= 0 {
				return t, nil
			}
		}
	}
	return ctoken.Token{}, &SyntaxError{Line: startLine, Reason: "statement without terminating semicolon"}
}

// skipBalanced consumes from an opening delimiter through its match,
// returning false if unbalanced.
func (p *parser) skipBalanced(open, close string) bool {
	idx, ok := p.findBalanced(open, close)
	if !ok {
		return false
	}
	p.pos = idx + 1
	return true
}

// findBalanced returns the token index of the delimiter matching the opener
// at the current position, without consuming anything.
func (p *parser) findBalanced(open, close string) (int, bool) {
	if !p.at(open) {
		return 0, false
	}
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		switch p.toks[i].Text {
		case open:
			depth++
		case close:
			depth--
			if depth == 0 {
				return i, true
			}
		}
	}
	return 0, false
}

func endOff(st Stmt) int {
	switch s := st.(type) {
	case *Block:
		return s.EndOff
	case *IfStmt:
		return s.EndOff
	case *LoopStmt:
		return s.EndOff
	case *ReturnStmt:
		return s.EndOff
	case *DeclStmt:
		return s.EndOff
	case *ExprStmt:
		return s.EndOff
	case *SwitchStmt:
		return s.EndOff
	default:
		return 0
	}
}

// IfStmts returns every IfStmt in the file (all nesting levels, in source
// order).
func (f *File) IfStmts() []*IfStmt {
	var out []*IfStmt
	var walkStmt func(Stmt)
	walkStmt = func(st Stmt) {
		switch s := st.(type) {
		case *Block:
			for _, inner := range s.Stmts {
				walkStmt(inner)
			}
		case *IfStmt:
			out = append(out, s)
			if s.Then != nil {
				walkStmt(s.Then)
			}
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *LoopStmt:
			if s.Body != nil {
				walkStmt(s.Body)
			}
		}
	}
	for _, fn := range f.Funcs {
		walkStmt(fn.Body)
	}
	for _, st := range f.TopLevel {
		walkStmt(st)
	}
	return out
}

// IfStmtsInLines returns the if statements whose span overlaps the given
// 1-based inclusive line range — the "if statements involved with code
// changes in the patch" of the paper's Sec. III-C-2.
func (f *File) IfStmtsInLines(first, last int) []*IfStmt {
	var out []*IfStmt
	for _, s := range f.IfStmts() {
		lo, hi := s.Span()
		if lo <= last && hi >= first {
			out = append(out, s)
		}
	}
	return out
}
