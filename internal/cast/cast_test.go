package cast

import (
	"strings"
	"testing"
)

const sampleSrc = `#include <string.h>

struct pkt_state {
	int flags;
	struct pkt_state *next;
};

static int transform(int value, int scale)
{
	return (value * scale) % 7;
}

static int process_pkt(struct pkt_state *ctx, char *buf, int len)
{
	int i;
	int ret = 0;
	char tmp[64];

	if (len < 0 || len > 4096)
		return -1;

	for (i = 0; i < len; i++) {
		buf[i] = transform(buf[i], ctx->flags);
		if (buf[i] == 0)
			continue;
		ret += buf[i] & 0xff;
	}

	if (ctx->flags & 0x4) {
		ret = transform(ret, 2);
	} else {
		ret = 0;
	}

	memcpy(tmp, buf, len);
	return ret;
}
`

func TestParseFunctions(t *testing.T) {
	f, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(f.Funcs))
	}
	if f.Funcs[0].Name != "transform" || f.Funcs[1].Name != "process_pkt" {
		t.Errorf("names = %q %q", f.Funcs[0].Name, f.Funcs[1].Name)
	}
	// The struct declaration parses as a top-level statement.
	if len(f.TopLevel) == 0 {
		t.Error("no top-level statements for the struct")
	}
}

func TestIfStmtSpans(t *testing.T) {
	f, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	ifs := f.IfStmts()
	if len(ifs) != 3 {
		t.Fatalf("if statements = %d, want 3", len(ifs))
	}
	lines := strings.Split(sampleSrc, "\n")
	for _, s := range ifs {
		lo, hi := s.Span()
		if lo < 1 || hi < lo || hi > len(lines) {
			t.Errorf("bad span %d-%d", lo, hi)
		}
		if !strings.Contains(lines[lo-1], "if") {
			t.Errorf("span start line %d does not contain `if`: %q", lo, lines[lo-1])
		}
	}
	// The first if has a multi-clause condition.
	if !strings.Contains(ifs[0].CondText, "||") {
		t.Errorf("first cond = %q", ifs[0].CondText)
	}
	// The second if is nested in the loop.
	if ifs[1].CondText != "buf[i] == 0" {
		t.Errorf("second cond = %q", ifs[1].CondText)
	}
	// The third if carries an else.
	if ifs[2].Else == nil {
		t.Error("third if lost its else branch")
	}
}

func TestCondOffsets(t *testing.T) {
	f, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.IfStmts() {
		if sampleSrc[s.CondOpen] != '(' || sampleSrc[s.CondClose] != ')' {
			t.Errorf("cond offsets do not point at parens: %q %q",
				sampleSrc[s.CondOpen], sampleSrc[s.CondClose])
		}
		if got := sampleSrc[s.CondOpen+1 : s.CondClose]; got != s.CondText {
			t.Errorf("CondText mismatch: %q vs %q", got, s.CondText)
		}
		if !strings.HasPrefix(sampleSrc[s.KwOffset:], "if") {
			t.Errorf("KwOffset does not point at `if`")
		}
	}
}

func TestIfStmtsInLines(t *testing.T) {
	f, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	all := f.IfStmts()
	first, _ := all[0].Span()
	got := f.IfStmtsInLines(first, first)
	if len(got) != 1 || got[0] != all[0] {
		t.Errorf("IfStmtsInLines(%d,%d) = %d stmts", first, first, len(got))
	}
	if got := f.IfStmtsInLines(1, 5); len(got) != 0 {
		t.Errorf("no ifs expected in header lines, got %d", len(got))
	}
	if got := f.IfStmtsInLines(1, 1000); len(got) != 3 {
		t.Errorf("full range ifs = %d", len(got))
	}
}

func TestParseLoops(t *testing.T) {
	src := `int f(int n)
{
	int s = 0;
	while (n > 0) {
		n--;
	}
	do {
		s++;
	} while (s < 10);
	for (;;)
		break;
	return s;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 1 {
		t.Fatalf("funcs = %d", len(f.Funcs))
	}
	loops := 0
	for _, st := range f.Funcs[0].Body.Stmts {
		if _, ok := st.(*LoopStmt); ok {
			loops++
		}
	}
	if loops != 3 {
		t.Errorf("loops = %d, want 3", loops)
	}
}

func TestParseSwitch(t *testing.T) {
	src := `int f(int n)
{
	switch (n) {
	case 0:
		return 1;
	default:
		break;
	}
	return 0;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range f.Funcs[0].Body.Stmts {
		if _, ok := st.(*SwitchStmt); ok {
			found = true
		}
	}
	if !found {
		t.Error("switch statement not parsed")
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `int f(int n)
{
	if (n == 0) {
		return 0;
	} else if (n == 1) {
		return 1;
	} else {
		return 2;
	}
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := f.IfStmts()
	if len(ifs) != 2 {
		t.Fatalf("ifs = %d, want 2 (chained else-if)", len(ifs))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unterminated block", "int f(int x)\n{\n\treturn x;\n"},
		{"unbalanced if", "int f(int x)\n{\n\tif (x {\n\t\treturn 1;\n\t}\n}\n"},
		{"missing semicolon", "int f(int x)\n{\n\treturn x\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Error("Parse succeeded, want error")
			}
		})
	}
}

func TestParseTolerant(t *testing.T) {
	// Unusual-but-balanced constructs must not fail.
	srcs := []string{
		"typedef unsigned long ulong_t;\n",
		"int g;\n",
		"struct s { int a; };\n",
		"static inline struct foo *get_foo(struct bar *b)\n{\n\treturn b->foo;\n}\n",
		"custom_t helper(int x)\n{\n\treturn (custom_t)x;\n}\n",
		"", // empty file
	}
	for _, src := range srcs {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestNestedIfDiscovery(t *testing.T) {
	src := `int f(int a, int b)
{
	if (a) {
		if (b) {
			if (a > b)
				return 1;
		}
	}
	return 0;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.IfStmts()); got != 3 {
		t.Errorf("nested ifs = %d, want 3", got)
	}
}

func TestFuncSpan(t *testing.T) {
	f, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Funcs[1]
	lo, hi := fn.Span()
	lines := strings.Split(sampleSrc, "\n")
	if !strings.Contains(lines[lo-1], "process_pkt") {
		t.Errorf("func start line %d: %q", lo, lines[lo-1])
	}
	if strings.TrimSpace(lines[hi-1]) != "}" {
		t.Errorf("func end line %d: %q", hi, lines[hi-1])
	}
}
