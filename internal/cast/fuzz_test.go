package cast

import "testing"

// FuzzParse asserts the C parser never panics and that reported spans and
// condition offsets stay inside the input.
func FuzzParse(f *testing.F) {
	f.Add(sampleSrc)
	f.Add("int f(int x)\n{\n\tif (x) return 1;\n\treturn 0;\n}\n")
	f.Add("if (((\n")
	f.Add("struct s { int a; };\n")
	f.Add("}{)(\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return
		}
		for _, s := range file.IfStmts() {
			lo, hi := s.Span()
			if lo < 0 || hi < lo {
				t.Fatalf("bad span %d-%d", lo, hi)
			}
			if s.CondOpen < 0 || s.CondClose >= len(src)+1 || s.CondClose < s.CondOpen {
				t.Fatalf("bad cond offsets %d-%d (len %d)", s.CondOpen, s.CondClose, len(src))
			}
			if s.CondOpen < len(src) && src[s.CondOpen] != '(' {
				t.Fatalf("CondOpen not at '('")
			}
		}
	})
}
