package experiments

import (
	"strings"
	"sync"
	"testing"

	"patchdb/internal/corpus"
)

var (
	labOnce sync.Once
	lab     *Lab
)

// sharedLab builds one SmallScale lab for the whole test binary; the
// augmentation schedule runs once and is cached inside the Lab.
func sharedLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() { lab = NewLab(SmallScale) })
	return lab
}

func TestLabPopulations(t *testing.T) {
	l := sharedLab(t)
	if len(l.NVD) != SmallScale.NVDSeed || len(l.NonSec) != SmallScale.NonSecSeed {
		t.Fatalf("seed sizes = %d/%d", len(l.NVD), len(l.NonSec))
	}
	if len(l.SetI) != SmallScale.SetI || len(l.SetII) != SmallScale.SetII {
		t.Fatalf("pool sizes = %d/%d", len(l.SetI), len(l.SetII))
	}
	for _, lc := range l.NVD {
		if !lc.Security {
			t.Fatal("NVD commit not security")
		}
	}
	for _, lc := range l.NonSec {
		if lc.Security {
			t.Fatal("NonSec commit is security")
		}
	}
	// Features are cached and dimension-stable.
	v1 := l.Features(l.NVD[0])
	v2 := l.Features(l.NVD[0])
	if &v1[0] != &v2[0] {
		t.Error("feature cache miss on second lookup")
	}
}

func TestTableIIShape(t *testing.T) {
	l := sharedLab(t)
	tab, err := l.RunTableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	// Round numbering is sequential across pools.
	for i, r := range tab.Rows {
		if r.Round.Round != i+1 {
			t.Errorf("row %d numbered %d", i, r.Round.Round)
		}
	}
	// Candidates per round equal the current seed size, so they must grow
	// monotonically within a pool.
	if tab.Rows[1].Candidates <= tab.Rows[0].Candidates {
		t.Errorf("candidates did not grow: %d then %d", tab.Rows[0].Candidates, tab.Rows[1].Candidates)
	}
	// The first-round ratio must be a multiple of the ~8% base rate.
	if tab.Rows[0].Ratio < 0.16 {
		t.Errorf("round 1 ratio = %.2f, want >= 2x the 8%% base rate", tab.Rows[0].Ratio)
	}
	// Sets labeled like the paper.
	if !strings.HasPrefix(tab.Rows[0].Set, "Set I") || !strings.HasPrefix(tab.Rows[3].Set, "Set II") ||
		!strings.HasPrefix(tab.Rows[4].Set, "Set III") {
		t.Errorf("set labels: %q %q %q", tab.Rows[0].Set, tab.Rows[3].Set, tab.Rows[4].Set)
	}
	if tab.TotalSecurity <= tab.NVDCount {
		t.Error("no wild security patches discovered")
	}
	if s := tab.String(); !strings.Contains(s, "Table II") {
		t.Error("render missing title")
	}
}

func TestTableIIIOrdering(t *testing.T) {
	l := sharedLab(t)
	tab, err := l.RunTableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byMethod := map[string]TableIIIRow{}
	for _, r := range tab.Rows {
		byMethod[r.Method] = r
	}
	bf := byMethod["Brute Force Search"]
	nl := byMethod["Nearest Link Search (ours)"]
	pl := byMethod["Pseudo Labeling"]
	ub := byMethod["Uncertainty-based Labeling"]
	// The paper's headline: nearest link beats everything; brute force is
	// the base rate.
	if nl.SecurityPct <= bf.SecurityPct*2 {
		t.Errorf("nearest link %.2f not well above brute force %.2f", nl.SecurityPct, bf.SecurityPct)
	}
	if nl.SecurityPct <= pl.SecurityPct {
		t.Errorf("nearest link %.2f not above pseudo labeling %.2f", nl.SecurityPct, pl.SecurityPct)
	}
	if nl.SecurityPct <= ub.SecurityPct {
		t.Errorf("nearest link %.2f not above uncertainty labeling %.2f", nl.SecurityPct, ub.SecurityPct)
	}
	// Candidate set sizes: NL and PL return one candidate per seed patch.
	if nl.Candidates != len(l.NVD) || pl.Candidates != len(l.NVD) {
		t.Errorf("candidate counts: nl=%d pl=%d, want %d", nl.Candidates, pl.Candidates, len(l.NVD))
	}
	if bf.Candidates != len(l.SetII) {
		t.Errorf("brute force candidates = %d", bf.Candidates)
	}
	for _, r := range tab.Rows {
		if r.CI95 < 0 || r.CI95 > 0.2 {
			t.Errorf("%s CI = %v", r.Method, r.CI95)
		}
	}
	if s := tab.String(); !strings.Contains(s, "Nearest Link") {
		t.Error("render missing method")
	}
}

func TestTableVAndFigure6(t *testing.T) {
	l := sharedLab(t)
	tab, err := l.RunTableV()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for p := corpus.Pattern(1); int(p) <= corpus.NumPatterns; p++ {
		sum += tab.Dist.Pct(p)
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("distribution sums to %.2f", sum)
	}

	fig, err := l.RunFigure6()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline finding: NVD's head class is Type 11 (redesign),
	// the wild's head class is Type 8 (function calls).
	if got := HeadClass(&fig.NVD); got != corpus.PatternRedesign {
		t.Errorf("NVD head class = %v, want redesign", got)
	}
	if got := HeadClass(&fig.Wild); got != corpus.PatternFuncCall {
		t.Errorf("wild head class = %v, want function calls", got)
	}
	// Type 11 collapses in the wild (paper: ~31%% -> ~5%%).
	if fig.Wild.Pct(corpus.PatternRedesign) >= fig.NVD.Pct(corpus.PatternRedesign) {
		t.Errorf("redesign share did not collapse: NVD %.1f%% wild %.1f%%",
			fig.NVD.Pct(corpus.PatternRedesign), fig.Wild.Pct(corpus.PatternRedesign))
	}
	if s := fig.String(); !strings.Contains(s, "head class") {
		t.Error("render missing head class line")
	}
}

func TestTableIVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("RNN training")
	}
	l := sharedLab(t)
	tab, err := l.RunTableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0].Dataset != "NVD" || tab.Rows[2].Dataset != "NVD+Wild" {
		t.Errorf("row datasets: %q %q", tab.Rows[0].Dataset, tab.Rows[2].Dataset)
	}
	if tab.Rows[0].Synthetic != "-" || tab.Rows[1].Synthetic == "-" {
		t.Error("synthetic annotations wrong")
	}
	for i, r := range tab.Rows {
		if r.Metrics.Precision < 0 || r.Metrics.Precision > 1 ||
			r.Metrics.Recall < 0 || r.Metrics.Recall > 1 {
			t.Errorf("row %d metrics out of range: %+v", i, r.Metrics)
		}
	}
	// The models must be far better than chance on their test sets.
	if tab.Rows[0].Metrics.F1 < 0.45 {
		t.Errorf("NVD baseline F1 = %.2f", tab.Rows[0].Metrics.F1)
	}
	if s := tab.String(); !strings.Contains(s, "Synthetic") {
		t.Error("render missing synthetic column")
	}
}

func TestTableVIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("RNN training")
	}
	l := sharedLab(t)
	tab, err := l.RunTableVI()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (2 train x 2 algo x 2 test)", len(tab.Rows))
	}
	get := func(train, algo, test string) TableVIRow {
		for _, r := range tab.Rows {
			if r.TrainSet == train && r.Algorithm == algo && r.TestSet == test {
				return r
			}
		}
		t.Fatalf("row %s/%s/%s missing", train, algo, test)
		return TableVIRow{}
	}
	// The paper's dataset-quality story: models trained on NVD+Wild are more
	// stable on the wild test set than NVD-only models (higher precision on
	// wild test data).
	for _, algo := range []string{"Random Forest", "RNN"} {
		nvdOnly := get("NVD", algo, "Wild")
		both := get("NVD+Wild", algo, "Wild")
		if both.Metrics.Precision <= nvdOnly.Metrics.Precision {
			t.Errorf("%s: NVD+Wild wild-test precision %.2f not above NVD-only %.2f",
				algo, both.Metrics.Precision, nvdOnly.Metrics.Precision)
		}
	}
	if s := tab.String(); !strings.Contains(s, "Random Forest") {
		t.Error("render missing algorithm")
	}
}

func TestScalesAreDistinct(t *testing.T) {
	if SmallScale.NVDSeed >= DefaultScale.NVDSeed || DefaultScale.NVDSeed >= PaperScale.NVDSeed {
		t.Error("scale ordering broken")
	}
	if PaperScale.NVDSeed != 4076 || PaperScale.SetI != 100000 {
		t.Error("paper scale does not match the paper")
	}
}

func TestTableVII(t *testing.T) {
	l := sharedLab(t)
	tab, err := l.RunTableVII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Templates) == 0 {
		t.Fatal("no templates mined")
	}
	if s := tab.String(); !strings.Contains(s, "Table VII") {
		t.Error("render missing reference")
	}
}
