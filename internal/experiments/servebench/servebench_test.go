package servebench

import (
	"testing"

	"patchdb/internal/experiments"
)

func TestServeDataset(t *testing.T) {
	s := experiments.Scale{Name: "tiny", Seed: 7, NVDSeed: 20, NonSecSeed: 30, SetI: 100}
	ds := ServeDataset(s)
	if len(ds.NVD) != s.NVDSeed {
		t.Fatalf("nvd = %d, want %d", len(ds.NVD), s.NVDSeed)
	}
	if got := len(ds.Wild) + len(ds.NonSecurity) - s.NonSecSeed; got != s.SetI {
		t.Fatalf("wild pool split = %d, want %d", got, s.SetI)
	}
	for _, r := range ds.NVD {
		if r.CVE == "" || !r.Security || r.Text == "" {
			t.Fatalf("malformed nvd record %+v", r)
		}
	}
	for _, r := range ds.Wild {
		if !r.Security || r.Source != "wild" {
			t.Fatalf("malformed wild record %+v", r)
		}
	}
}

// TestRunServeBench drives the full load harness end to end at a miniature
// scale: real loopback HTTP, two shard counts, cold+warm phases, zero
// request errors.
func TestRunServeBench(t *testing.T) {
	s := experiments.Scale{Name: "tiny", Seed: 3, NVDSeed: 15, NonSecSeed: 25, SetI: 80}
	bench, err := RunServeBench(s, 4, 60, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if bench.Records == 0 || bench.Workers != 4 {
		t.Fatalf("header = %+v", bench)
	}
	if len(bench.Rows) != 4 { // 2 shard counts x cold/warm
		t.Fatalf("rows = %d, want 4", len(bench.Rows))
	}
	for _, row := range bench.Rows {
		if row.Errors != 0 {
			t.Errorf("%d shards %s: %d request errors", row.Shards, row.Phase, row.Errors)
		}
		if row.Requests != 60 || row.QPS <= 0 || row.P50NS <= 0 || row.P99NS < row.P50NS {
			t.Errorf("implausible row %+v", row)
		}
	}
}
