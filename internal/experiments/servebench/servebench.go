// Package servebench is the SERVE experiment: a load-generation harness
// that measures the patchdb-serve query API (internal/store) over real
// loopback HTTP. It lives outside internal/experiments proper because it
// depends on the root patchdb package (for Dataset/Record), which the
// root package's own benchmarks would turn into an import cycle through
// internal/experiments.
package servebench

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"patchdb"
	"patchdb/internal/corpus"
	"patchdb/internal/diff"
	"patchdb/internal/experiments"
	"patchdb/internal/store"
	"patchdb/internal/telemetry"
)

// ServeDataset assembles a serving-bench dataset from generated populations
// (no crawl, no augmentation): the scale's NVD seed as nvd records, the
// cleaned non-security seed, and the full Set I wild pool split by ground
// truth into wild security and non-security records.
func ServeDataset(s experiments.Scale) *patchdb.Dataset {
	gen := corpus.NewGenerator(corpus.Config{Seed: s.Seed})
	ds := &patchdb.Dataset{}
	for _, lc := range gen.GenerateNVD(s.NVDSeed) {
		ds.NVD = append(ds.NVD, patchdb.Record{
			ID: lc.Commit.Hash, Repo: lc.Commit.Repo, CVE: lc.CVE, Security: true,
			Pattern: lc.Pattern, Source: "nvd", Text: diff.Format(lc.Commit.Patch()),
		})
	}
	for _, lc := range gen.GenerateNonSecurity(s.NonSecSeed) {
		ds.NonSecurity = append(ds.NonSecurity, patchdb.Record{
			ID: lc.Commit.Hash, Repo: lc.Commit.Repo, Security: false,
			Source: "wild", Text: diff.Format(lc.Commit.Patch()),
		})
	}
	for _, lc := range gen.GenerateWild(s.SetI) {
		r := patchdb.Record{
			ID: lc.Commit.Hash, Repo: lc.Commit.Repo, Security: lc.Security,
			Source: "wild", Text: diff.Format(lc.Commit.Patch()),
		}
		if lc.Security {
			r.Pattern = lc.Pattern
			ds.Wild = append(ds.Wild, r)
		} else {
			ds.NonSecurity = append(ds.NonSecurity, r)
		}
	}
	return ds
}

// ServeBenchRow is one (shard count, cache phase) measurement of the SERVE
// load-generation harness.
type ServeBenchRow struct {
	Shards int `json:"shards"`
	// Phase is "cold" (first pass over a freshly loaded snapshot) or
	// "warm" (identical request sequence repeated).
	Phase    string  `json:"phase"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	QPS      float64 `json:"qps"`
	P50NS    int64   `json:"p50_ns"`
	P99NS    int64   `json:"p99_ns"`
}

// ServeBench is the SERVE experiment outcome.
type ServeBench struct {
	Records int `json:"records"`
	Workers int `json:"workers"`
	// ExemplarCapture records that the measured handler ran with full
	// request correlation on — per-request IDs, spans, SLO accounting, and
	// histogram exemplars — so the p50/p99 numbers price that overhead in.
	ExemplarCapture bool            `json:"exemplar_capture"`
	Rows            []ServeBenchRow `json:"rows"`
}

// serveRequestMix builds the deterministic request sequence the harness
// replays in every phase: point lookups (including misses), CVE lookups,
// filtered paginated scans, and stats/distribution calls, roughly in the
// proportions an automated "is this commit a security patch?" consumer
// produces.
func serveRequestMix(rng *rand.Rand, ds *patchdb.Dataset, n int) []string {
	var ids, cves []string
	for _, c := range [][]patchdb.Record{ds.NVD, ds.Wild, ds.NonSecurity, ds.Synthetic} {
		for _, r := range c {
			ids = append(ids, r.ID)
			if r.CVE != "" {
				cves = append(cves, r.CVE)
			}
		}
	}
	paths := make([]string, n)
	for i := range paths {
		switch p := rng.Float64(); {
		case p < 0.60: // point lookup, hit
			paths[i] = "/v1/patch/" + ids[rng.Intn(len(ids))]
		case p < 0.70: // point lookup, miss (404 is a served answer, not an error)
			paths[i] = fmt.Sprintf("/v1/patch/unknown-%d", rng.Intn(1<<30))
		case p < 0.80: // CVE lookup
			paths[i] = "/v1/cve/" + cves[rng.Intn(len(cves))]
		case p < 0.90: // filtered scan page
			src := []string{"nvd", "wild"}[rng.Intn(2)]
			paths[i] = fmt.Sprintf("/v1/patches?source=%s&security=true&limit=%d", src, 10+rng.Intn(40))
		case p < 0.95: // deep paginated scan page
			paths[i] = "/v1/patches?cursor=" + ids[rng.Intn(len(ids))] + "&limit=50"
		case p < 0.98:
			paths[i] = "/v1/stats"
		default:
			paths[i] = "/v1/distribution"
		}
	}
	return paths
}

// runServePhase replays paths against base over workers concurrent clients
// and reduces the per-request latencies into one row.
func runServePhase(base string, client *http.Client, paths []string, workers int, shards int, phase string) ServeBenchRow {
	lat := make([]time.Duration, len(paths))
	errs := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (len(paths) + workers - 1) / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(paths) {
			hi = len(paths)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				t0 := time.Now()
				resp, err := client.Get(base + paths[i])
				if err != nil {
					errs[w]++
					continue
				}
				_, copyErr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat[i] = time.Since(t0)
				if copyErr != nil || resp.StatusCode >= 500 {
					errs[w]++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	row := ServeBenchRow{Shards: shards, Phase: phase, Requests: len(paths)}
	for _, e := range errs {
		row.Errors += e
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		row.P50NS = lat[len(lat)/2].Nanoseconds()
		row.P99NS = lat[len(lat)*99/100].Nanoseconds()
	}
	if secs := elapsed.Seconds(); secs > 0 {
		row.QPS = float64(len(paths)) / secs
	}
	return row
}

// RunServeBench measures the serving layer end to end over real loopback
// HTTP: for each shard count it loads a fresh store, replays the same
// deterministic request mix cold (first pass over the new snapshot) and
// warm (identical repeat), and reports p50/p99 latency, QPS, and error
// counts. workers <= 0 means 8 concurrent clients; requests <= 0 picks a
// scale-appropriate per-phase request count.
func RunServeBench(s experiments.Scale, workers, requests int, shardCounts []int) (*ServeBench, error) {
	if workers <= 0 {
		workers = 8
	}
	if requests <= 0 {
		requests = 4000
		if s.SetI <= 2000 {
			requests = 800
		}
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 4, 16}
	}

	ds := ServeDataset(s)
	stats := ds.Stats()
	out := &ServeBench{
		Records:         stats.NVD + stats.Wild + stats.NonSecurity + stats.Synthetic,
		Workers:         workers,
		ExemplarCapture: true,
	}
	paths := serveRequestMix(rand.New(rand.NewSource(s.Seed)), ds, requests)

	for _, shards := range shardCounts {
		// A real hub (not nil) so the bench measures the serving path with
		// exemplar capture, spans, and SLO accounting enabled — the numbers
		// must price in the observability the production handler carries.
		hub := telemetry.NewHub()
		hub.SetLogger(nil) // ring only; keep bench stderr clean
		st := store.New(shards, hub)
		st.Load(ds)
		srv, err := store.Serve("127.0.0.1:0", store.NewHandler(st, hub, nil))
		if err != nil {
			return nil, fmt.Errorf("serve bench (%d shards): %w", shards, err)
		}
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns:        workers,
			MaxIdleConnsPerHost: workers,
		}}
		for _, phase := range []string{"cold", "warm"} {
			row := runServePhase(srv.URL, client, paths, workers, shards, phase)
			if row.Errors > 0 {
				srv.Close()
				return nil, fmt.Errorf("serve bench (%d shards, %s): %d/%d requests failed",
					shards, phase, row.Errors, row.Requests)
			}
			out.Rows = append(out.Rows, row)
		}
		client.CloseIdleConnections()
		if err := srv.Close(); err != nil {
			return nil, fmt.Errorf("serve bench (%d shards): %w", shards, err)
		}
	}
	return out, nil
}
