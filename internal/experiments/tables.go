package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"patchdb/internal/core/baselines"
	"patchdb/internal/corpus"
	"patchdb/internal/fixpattern"
	"patchdb/internal/ml"
)

// TableII reproduces the five-round augmentation accounting (candidates,
// verified security patches, and ratio per round).
type TableII struct {
	Rows []SetRound
	// NVDCount is the seed size.
	NVDCount int
	// TotalSecurity is the final security patch count (NVD + wild).
	TotalSecurity int
	// TotalNonSecurity is the cleaned non-security set discovered.
	TotalNonSecurity int
}

// RunTableII executes the schedule and assembles the table.
func (l *Lab) RunTableII() (*TableII, error) {
	rows, err := l.RunAugmentation()
	if err != nil {
		return nil, err
	}
	t := &TableII{Rows: rows, NVDCount: len(l.NVD), TotalSecurity: len(l.NVD)}
	for _, r := range rows {
		t.TotalSecurity += r.Verified
		t.TotalNonSecurity += r.Candidates - r.Verified
	}
	return t, nil
}

// String renders the table in the paper's layout.
func (t *TableII) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: # of security patches identified per round\n")
	fmt.Fprintf(&b, "%-16s %-6s %-11s %-9s %s\n", "Search Range", "Round", "Candidates", "Verified", "Ratio")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-16s %-6d %-11d %-9d %.0f%%\n",
			r.Set, r.Round.Round, r.Candidates, r.Verified, 100*r.Ratio)
	}
	fmt.Fprintf(&b, "total security patches: %d (wild-discovered: %d), cleaned non-security: %d\n",
		t.TotalSecurity, t.TotalSecurity-t.NVDCount, t.TotalNonSecurity)
	return b.String()
}

// TableIIIRow is one augmentation method's outcome.
type TableIIIRow struct {
	Method     string
	Unlabeled  int
	Candidates int
	// SecurityPct is the fraction of candidates verified as security.
	SecurityPct float64
	// CI95 is the 95% confidence half-width over the verified sample.
	CI95 float64
	// SampleSize is how many candidates were manually verified.
	SampleSize int
}

// TableIII compares brute force, pseudo labeling, uncertainty-based
// labeling, and nearest link search on one unlabeled pool.
type TableIII struct {
	Rows []TableIIIRow
}

// RunTableIII reproduces the comparison. The training data is the NVD-based
// dataset (positives) plus the cleaned non-security dataset (negatives), as
// in the paper; the pool is Set II.
func (l *Lab) RunTableIII() (*TableIII, error) {
	rng := rand.New(rand.NewSource(l.Scale.Seed + 333))
	pool := l.Items(l.SetII)
	seedX := l.FeatureRows(l.NVD)

	train := &ml.Dataset{}
	for _, lc := range l.NVD {
		train.Append(l.Features(lc), ml.Security, lc.Commit.Hash)
	}
	for _, lc := range l.NonSec {
		train.Append(l.Features(lc), ml.NonSecurity, lc.Commit.Hash)
	}

	verifySample := func(idx []int) (pct, ci float64, n int) {
		if len(idx) == 0 {
			return 0, 0, 0
		}
		sample := idx
		if len(sample) > l.Scale.VerifySample {
			perm := rng.Perm(len(idx))
			sample = make([]int, l.Scale.VerifySample)
			for i := range sample {
				sample[i] = idx[perm[i]]
			}
		}
		hits := 0
		for _, j := range sample {
			if l.Oracle.Verify(pool[j].ID) {
				hits++
			}
		}
		p := float64(hits) / float64(len(sample))
		return p, ml.ConfidenceInterval95(p, len(sample)), len(sample)
	}

	var t TableIII

	bf := baselines.BruteForce(pool, l.Scale.VerifySample, rng)
	pct, ci, n := verifySample(bf)
	t.Rows = append(t.Rows, TableIIIRow{
		Method: "Brute Force Search", Unlabeled: len(pool), Candidates: len(pool),
		SecurityPct: pct, CI95: ci, SampleSize: n,
	})

	pl, err := baselines.PseudoLabeling(train, pool, len(l.NVD), l.Scale.Seed)
	if err != nil {
		return nil, fmt.Errorf("table III: %w", err)
	}
	pct, ci, n = verifySample(pl)
	t.Rows = append(t.Rows, TableIIIRow{
		Method: "Pseudo Labeling", Unlabeled: len(pool), Candidates: len(pl),
		SecurityPct: pct, CI95: ci, SampleSize: n,
	})

	ub, err := baselines.Uncertainty(train, pool, l.Scale.Seed)
	if err != nil {
		return nil, fmt.Errorf("table III: %w", err)
	}
	pct, ci, n = verifySample(ub)
	t.Rows = append(t.Rows, TableIIIRow{
		Method: "Uncertainty-based Labeling", Unlabeled: len(pool), Candidates: len(ub),
		SecurityPct: pct, CI95: ci, SampleSize: n,
	})

	links, err := nearestLinkCandidates(seedX, pool)
	if err != nil {
		return nil, fmt.Errorf("table III: %w", err)
	}
	pct, ci, n = verifySample(links)
	t.Rows = append(t.Rows, TableIIIRow{
		Method: "Nearest Link Search (ours)", Unlabeled: len(pool), Candidates: len(links),
		SecurityPct: pct, CI95: ci, SampleSize: n,
	})
	return &t, nil
}

// String renders the comparison like the paper.
func (t *TableIII) String() string {
	var b strings.Builder
	b.WriteString("Table III: Comparison with other augmentation methods\n")
	fmt.Fprintf(&b, "%-28s %-10s %-11s %s\n", "Method", "Unlabeled", "Candidates", "Security Patches (%)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-28s %-10d %-11d %.0f(±%.1f)%%\n",
			r.Method, r.Unlabeled, r.Candidates, 100*r.SecurityPct, 100*r.CI95)
	}
	return b.String()
}

// TypeDistribution counts security patches per pattern class.
type TypeDistribution struct {
	Counts [corpus.NumPatterns]int
	Total  int
}

// Add records one patch.
func (d *TypeDistribution) Add(p corpus.Pattern) {
	if p >= 1 && int(p) <= corpus.NumPatterns {
		d.Counts[p-1]++
		d.Total++
	}
}

// Pct returns the percentage of class p.
func (d *TypeDistribution) Pct(p corpus.Pattern) float64 {
	if d.Total == 0 {
		return 0
	}
	return 100 * float64(d.Counts[p-1]) / float64(d.Total)
}

// TableV is the security patch pattern distribution of the whole PatchDB.
type TableV struct {
	Dist TypeDistribution
}

// RunTableV categorizes all security patches (NVD + discovered wild).
func (l *Lab) RunTableV() (*TableV, error) {
	wild, err := l.WildSecurity()
	if err != nil {
		return nil, err
	}
	var t TableV
	for _, lc := range l.NVD {
		t.Dist.Add(lc.Pattern)
	}
	for _, lc := range wild {
		t.Dist.Add(lc.Pattern)
	}
	return &t, nil
}

// String renders the distribution like Table V.
func (t *TableV) String() string {
	var b strings.Builder
	b.WriteString("Table V: Security patch distribution in PatchDB\n")
	fmt.Fprintf(&b, "%-4s %-40s %s\n", "ID", "Type of patch pattern", "%")
	for p := corpus.Pattern(1); int(p) <= corpus.NumPatterns; p++ {
		fmt.Fprintf(&b, "%-4d %-40s %.1f%%\n", int(p), p.String(), t.Dist.Pct(p))
	}
	fmt.Fprintf(&b, "total security patches: %d\n", t.Dist.Total)
	return b.String()
}

// Figure6 contrasts the NVD-based and wild-based type distributions.
type Figure6 struct {
	NVD  TypeDistribution
	Wild TypeDistribution
}

// RunFigure6 computes both distributions.
func (l *Lab) RunFigure6() (*Figure6, error) {
	wild, err := l.WildSecurity()
	if err != nil {
		return nil, err
	}
	var f Figure6
	for _, lc := range l.NVD {
		f.NVD.Add(lc.Pattern)
	}
	for _, lc := range wild {
		f.Wild.Add(lc.Pattern)
	}
	return &f, nil
}

// HeadClass returns the most frequent pattern of a distribution.
func HeadClass(d *TypeDistribution) corpus.Pattern {
	best := corpus.Pattern(1)
	for p := corpus.Pattern(2); int(p) <= corpus.NumPatterns; p++ {
		if d.Counts[p-1] > d.Counts[best-1] {
			best = p
		}
	}
	return best
}

// String renders both distributions side by side with text bars.
func (f *Figure6) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: NVD-based vs wild-based type distribution\n")
	fmt.Fprintf(&b, "%-4s %-8s %-26s %-8s %s\n", "Type", "NVD %", "", "Wild %", "")
	for p := corpus.Pattern(1); int(p) <= corpus.NumPatterns; p++ {
		np := f.NVD.Pct(p)
		wp := f.Wild.Pct(p)
		fmt.Fprintf(&b, "%-4d %6.1f%%  %-25s %6.1f%%  %s\n",
			int(p), np, bar(np), wp, bar(wp))
	}
	fmt.Fprintf(&b, "head class: NVD=Type %d, wild=Type %d\n",
		int(HeadClass(&f.NVD)), int(HeadClass(&f.Wild)))
	return b.String()
}

func bar(pct float64) string {
	n := int(pct / 1.5)
	if n > 25 {
		n = 25
	}
	return strings.Repeat("#", n)
}

// TableVII holds mined fix-pattern templates (the paper shows two
// hand-summarized examples; we mine them mechanically from the built
// dataset).
type TableVII struct {
	Templates []fixpattern.Template
}

// RunTableVII mines fix patterns from all security patches (NVD +
// discovered wild).
func (l *Lab) RunTableVII() (*TableVII, error) {
	wild, err := l.WildSecurity()
	if err != nil {
		return nil, err
	}
	inputs := make([]fixpattern.Input, 0, len(l.NVD)+len(wild))
	for _, lc := range append(append([]*corpus.LabeledCommit(nil), l.NVD...), wild...) {
		inputs = append(inputs, fixpattern.Input{Patch: lc.Commit.Patch(), Pattern: lc.Pattern})
	}
	miner := fixpattern.Miner{MinSupport: max(3, len(inputs)/100), TopK: 2}
	return &TableVII{Templates: miner.Mine(inputs)}, nil
}

// String renders the mined templates.
func (t *TableVII) String() string {
	return fixpattern.Render(t.Templates)
}
