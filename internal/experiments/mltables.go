package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"patchdb/internal/core/augment"
	"patchdb/internal/core/nearestlink"
	"patchdb/internal/core/oversample"
	"patchdb/internal/corpus"
	"patchdb/internal/features"
	"patchdb/internal/ml"
	"patchdb/internal/ml/neural"
	"patchdb/internal/ml/tree"
)

// nearestLinkCandidates returns the pool indices selected by nearest link
// search for a verified seed. The pool features are flattened into the
// engine's row-major Matrix once and searched in place.
func nearestLinkCandidates(seedX [][]float64, pool []augment.Item) ([]int, error) {
	wildX := make([][]float64, len(pool))
	for i, it := range pool {
		wildX[i] = it.Features
	}
	sec, err := nearestlink.MatrixFromRows(seedX)
	if err != nil {
		return nil, err
	}
	wld, err := nearestlink.MatrixFromRows(wildX)
	if err != nil {
		return nil, err
	}
	links, err := nearestlink.SearchMatrix(context.Background(), sec, wld, nil)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(links))
	for i, l := range links {
		out[i] = l.Wild
	}
	return out, nil
}

// seqDataset couples token sequences with labels (and optional per-sample
// weights) for the RNN.
type seqDataset struct {
	seqs [][]string
	y    []int
	w    []float64 // nil = uniform
}

func (d *seqDataset) append(seq []string, label int) {
	d.seqs = append(d.seqs, seq)
	d.y = append(d.y, label)
	if d.w != nil {
		d.w = append(d.w, 1)
	}
}

// appendWeighted adds a sample with an explicit loss weight.
func (d *seqDataset) appendWeighted(seq []string, label int, weight float64) {
	if d.w == nil {
		d.w = make([]float64, len(d.seqs))
		for i := range d.w {
			d.w[i] = 1
		}
	}
	d.seqs = append(d.seqs, seq)
	d.y = append(d.y, label)
	d.w = append(d.w, weight)
}

func (l *Lab) tokenSeq(lc *corpus.LabeledCommit) []string {
	return features.TokenSequence(lc.Commit.Patch())
}

// splitCommits shuffles and splits a commit list 80/20.
func splitCommits(list []*corpus.LabeledCommit, rng *rand.Rand) (train, test []*corpus.LabeledCommit) {
	idx := rng.Perm(len(list))
	cut := len(list) * 8 / 10
	for i, j := range idx {
		if i < cut {
			train = append(train, list[j])
		} else {
			test = append(test, list[j])
		}
	}
	return train, test
}

// synthesizeFor generates synthetic token sequences from natural training
// commits using the source-level oversampler. maxPer bounds variants per
// natural patch.
func (l *Lab) synthesizeFor(list []*corpus.LabeledCommit, label int, maxPer int, weight float64, out *seqDataset) (count int) {
	rng := rand.New(rand.NewSource(l.Scale.Seed + 777))
	ov := &oversample.Oversampler{MaxPerPatch: maxPer, Rand: rng}
	for _, lc := range list {
		syns, err := ov.Synthesize(lc.Commit.Hash, lc.Commit.Before, lc.Commit.After)
		if err != nil {
			continue
		}
		for _, s := range syns {
			out.appendWeighted(features.TokenSequence(s.Patch), label, weight)
			count++
		}
	}
	return count
}

// rnnEpochs adapts the epoch count to the training-set size so small
// datasets still see enough gradient updates (~30K minimum).
func (l *Lab) rnnEpochs(n int) int {
	epochs := l.Scale.RNNEpochs
	if n > 0 && n*epochs < 30000 {
		epochs = (30000 + n - 1) / n
		if epochs > 40 {
			epochs = 40
		}
	}
	return epochs
}

// rnnRuns is the number of independently seeded RNN trainings averaged per
// evaluation cell; single runs are too noisy for the small deltas Table IV
// reports.
const rnnRuns = 2

// evalRNN trains rnnRuns RNNs on train and returns their average test
// metrics.
func (l *Lab) evalRNN(train *seqDataset, test *seqDataset, seed int64) (ml.Metrics, error) {
	var agg ml.Metrics
	for r := 0; r < rnnRuns; r++ {
		rnn := &neural.RNN{Epochs: l.rnnEpochs(len(train.seqs)), Seed: seed + int64(r)*1000}
		if err := rnn.FitTokensWeighted(train.seqs, train.y, train.w); err != nil {
			return ml.Metrics{}, err
		}
		pred := make([]int, len(test.seqs))
		for i, s := range test.seqs {
			pred[i] = rnn.PredictTokens(s)
		}
		m := ml.Evaluate(pred, test.y)
		agg.Precision += m.Precision / rnnRuns
		agg.Recall += m.Recall / rnnRuns
		agg.F1 += m.F1 / rnnRuns
		agg.Accuracy += m.Accuracy / rnnRuns
		agg.TP += m.TP
		agg.FP += m.FP
		agg.TN += m.TN
		agg.FN += m.FN
	}
	return agg, nil
}

// TableIVRow is one configuration of the synthetic-patch study.
type TableIVRow struct {
	Dataset   string
	Synthetic string // "-" or the synthetic set sizes
	Metrics   ml.Metrics
}

// TableIV evaluates whether source-level synthetic patches improve RNN-based
// security patch identification on a small (NVD) and a large (NVD+wild)
// dataset.
type TableIV struct {
	Rows []TableIVRow
}

// RunTableIV reproduces Table IV. Each cell averages Scale.TableIVSplits
// independent splits (synthesis is redone from each training split, as the
// paper requires): the deltas the paper reports are smaller than
// single-split variance at reduced scale.
func (l *Lab) RunTableIV() (*TableIV, error) {
	tableIVSplits := l.Scale.TableIVSplits
	wildSec, err := l.WildSecurity()
	if err != nil {
		return nil, err
	}
	wildNon, err := l.WildNonSecurity()
	if err != nil {
		return nil, err
	}
	var t TableIV

	runPair := func(name string, sec, non []*corpus.LabeledCommit) error {
		var natMetrics, synMetrics ml.Metrics
		var nSecTotal, nNonTotal int
		for split := 0; split < tableIVSplits; split++ {
			rng := rand.New(rand.NewSource(l.Scale.Seed + 444 + int64(split)))
			secTrain, secTest := splitCommits(sec, rng)
			nonTrain, nonTest := splitCommits(non, rng)

			natural := &seqDataset{}
			for _, lc := range secTrain {
				natural.append(l.tokenSeq(lc), ml.Security)
			}
			for _, lc := range nonTrain {
				natural.append(l.tokenSeq(lc), ml.NonSecurity)
			}
			test := &seqDataset{}
			for _, lc := range secTest {
				test.append(l.tokenSeq(lc), ml.Security)
			}
			for _, lc := range nonTest {
				test.append(l.tokenSeq(lc), ml.NonSecurity)
			}

			m, err := l.evalRNN(natural, test, l.Scale.Seed+int64(split))
			if err != nil {
				return err
			}
			accumulate(&natMetrics, m, tableIVSplits)

			// Synthetic patches are generated solely from the training split
			// and down-weighted so they enrich the natural distribution
			// without dominating it.
			withSyn := &seqDataset{}
			withSyn.seqs = append(withSyn.seqs, natural.seqs...)
			withSyn.y = append(withSyn.y, natural.y...)
			nSec := l.synthesizeFor(secTrain, ml.Security, 5, 0.5, withSyn)
			nNon := l.synthesizeFor(nonTrain, ml.NonSecurity, 3, 0.5, withSyn)
			nSecTotal += nSec / tableIVSplits
			nNonTotal += nNon / tableIVSplits

			m2, err := l.evalRNN(withSyn, test, l.Scale.Seed+int64(split))
			if err != nil {
				return err
			}
			accumulate(&synMetrics, m2, tableIVSplits)
		}
		t.Rows = append(t.Rows, TableIVRow{Dataset: name, Synthetic: "-", Metrics: natMetrics})
		t.Rows = append(t.Rows, TableIVRow{
			Dataset:   name,
			Synthetic: fmt.Sprintf("~%d Sec. + ~%d NonSec.", nSecTotal, nNonTotal),
			Metrics:   synMetrics,
		})
		return nil
	}

	if err := runPair("NVD", l.NVD, l.NonSec); err != nil {
		return nil, fmt.Errorf("table IV (NVD): %w", err)
	}
	allSec := append(append([]*corpus.LabeledCommit(nil), l.NVD...), wildSec...)
	allNon := append(append([]*corpus.LabeledCommit(nil), l.NonSec...), wildNon...)
	if err := runPair("NVD+Wild", allSec, allNon); err != nil {
		return nil, fmt.Errorf("table IV (NVD+Wild): %w", err)
	}
	return &t, nil
}

// accumulate adds m/n into agg (used for split averaging).
func accumulate(agg *ml.Metrics, m ml.Metrics, n int) {
	agg.Precision += m.Precision / float64(n)
	agg.Recall += m.Recall / float64(n)
	agg.F1 += m.F1 / float64(n)
	agg.Accuracy += m.Accuracy / float64(n)
	agg.TP += m.TP
	agg.FP += m.FP
	agg.TN += m.TN
	agg.FN += m.FN
}

// String renders Table IV.
func (t *TableIV) String() string {
	var b strings.Builder
	b.WriteString("Table IV: Performance w/o or w/ synthetic patches (RNN)\n")
	fmt.Fprintf(&b, "%-10s %-28s %-10s %s\n", "Dataset", "Synthetic Dataset", "Precision", "Recall")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %-28s %-10.1f %.1f\n",
			r.Dataset, r.Synthetic, 100*r.Metrics.Precision, 100*r.Metrics.Recall)
	}
	return b.String()
}

// TableVIRow is one (training set, algorithm, test set) cell pair.
type TableVIRow struct {
	TrainSet  string
	Algorithm string
	TestSet   string
	Metrics   ml.Metrics
}

// TableVI studies dataset quality: generalization of models trained on NVD
// vs NVD+wild, tested on NVD and wild.
type TableVI struct {
	Rows []TableVIRow
}

// RunTableVI reproduces Table VI with a Random Forest over statistical
// features and the RNN over token sequences.
func (l *Lab) RunTableVI() (*TableVI, error) {
	wildSec, err := l.WildSecurity()
	if err != nil {
		return nil, err
	}
	wildNon, err := l.WildNonSecurity()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(l.Scale.Seed + 555))

	nvdSecTrain, nvdSecTest := splitCommits(l.NVD, rng)
	nvdNonTrain, nvdNonTest := splitCommits(l.NonSec, rng)
	wildSecTrain, wildSecTest := splitCommits(wildSec, rng)
	wildNonTrain, wildNonTest := splitCommits(wildNon, rng)

	type group struct {
		name string
		sec  []*corpus.LabeledCommit
		non  []*corpus.LabeledCommit
	}
	trainSets := []group{
		{"NVD", concat(nvdSecTrain), concat(nvdNonTrain)},
		{"NVD+Wild", concat(nvdSecTrain, wildSecTrain), concat(nvdNonTrain, wildNonTrain)},
	}
	testSets := []group{
		{"NVD", concat(nvdSecTest), concat(nvdNonTest)},
		{"Wild", concat(wildSecTest), concat(wildNonTest)},
	}

	var t TableVI
	for _, tr := range trainSets {
		// Random Forest on the 60 statistical features.
		ds := &ml.Dataset{}
		for _, lc := range tr.sec {
			ds.Append(l.Features(lc), ml.Security, "")
		}
		for _, lc := range tr.non {
			ds.Append(l.Features(lc), ml.NonSecurity, "")
		}
		rf := &tree.Forest{Trees: 60, Seed: l.Scale.Seed}
		if err := rf.Fit(ds.X, ds.Y); err != nil {
			return nil, fmt.Errorf("table VI rf: %w", err)
		}
		for _, te := range testSets {
			test := &ml.Dataset{}
			for _, lc := range te.sec {
				test.Append(l.Features(lc), ml.Security, "")
			}
			for _, lc := range te.non {
				test.Append(l.Features(lc), ml.NonSecurity, "")
			}
			t.Rows = append(t.Rows, TableVIRow{
				TrainSet: tr.name, Algorithm: "Random Forest", TestSet: te.name,
				Metrics: ml.EvaluateClassifier(rf, test),
			})
		}

		// RNN on token sequences.
		seqTrain := &seqDataset{}
		for _, lc := range tr.sec {
			seqTrain.append(l.tokenSeq(lc), ml.Security)
		}
		for _, lc := range tr.non {
			seqTrain.append(l.tokenSeq(lc), ml.NonSecurity)
		}
		rnn := &neural.RNN{Epochs: l.rnnEpochs(len(seqTrain.seqs)), Seed: l.Scale.Seed + 2}
		if err := rnn.FitTokens(seqTrain.seqs, seqTrain.y); err != nil {
			return nil, fmt.Errorf("table VI rnn: %w", err)
		}
		for _, te := range testSets {
			seqTest := &seqDataset{}
			for _, lc := range te.sec {
				seqTest.append(l.tokenSeq(lc), ml.Security)
			}
			for _, lc := range te.non {
				seqTest.append(l.tokenSeq(lc), ml.NonSecurity)
			}
			pred := make([]int, len(seqTest.seqs))
			for i, s := range seqTest.seqs {
				pred[i] = rnn.PredictTokens(s)
			}
			t.Rows = append(t.Rows, TableVIRow{
				TrainSet: tr.name, Algorithm: "RNN", TestSet: te.name,
				Metrics: ml.Evaluate(pred, seqTest.y),
			})
		}
	}
	return &t, nil
}

func concat(lists ...[]*corpus.LabeledCommit) []*corpus.LabeledCommit {
	var out []*corpus.LabeledCommit
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// String renders Table VI.
func (t *TableVI) String() string {
	var b strings.Builder
	b.WriteString("Table VI: Impacts of datasets over learning-based models\n")
	fmt.Fprintf(&b, "%-10s %-15s %-8s %-10s %s\n", "Train", "Algorithm", "Test", "Precision", "Recall")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %-15s %-8s %-10.1f %.1f\n",
			r.TrainSet, r.Algorithm, r.TestSet, 100*r.Metrics.Precision, 100*r.Metrics.Recall)
	}
	return b.String()
}
