// Package experiments reproduces every data-bearing table and figure of the
// PatchDB paper: the five augmentation rounds (Table II), the augmentation
// method comparison (Table III), the synthetic-patch study (Table IV), the
// dataset composition (Table V, Fig. 6), and the dataset quality study
// (Table VI). A Lab holds the shared corpus, oracle, and feature cache; each
// driver renders rows shaped like the paper's.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"patchdb/internal/core/augment"
	"patchdb/internal/corpus"
	"patchdb/internal/features"
	"patchdb/internal/oracle"
)

// Scale fixes the experiment sizes. The paper's scale (4076 seed, 100K/200K
// pools) is reachable but slow; the default is ~1/10 scale, which preserves
// every reported ratio (they are scale-stable percentages).
type Scale struct {
	Name string
	// NVDSeed is the number of NVD-indexed security patches (paper: 4076).
	NVDSeed int
	// NonSecSeed is the cleaned non-security training set size (paper: 8352).
	NonSecSeed int
	// SetI/SetII/SetIII are the unlabeled wild pool sizes
	// (paper: 100K/200K/200K).
	SetI, SetII, SetIII int
	// VerifySample is the sampled manual-verification budget of Table III
	// (paper: 1K).
	VerifySample int
	// Seed drives all randomness.
	Seed int64
	// RNNEpochs for the sequence classifier (default 3).
	RNNEpochs int
	// TableIVSplits is how many independent splits Table IV averages
	// (default 3; 1 keeps tests fast).
	TableIVSplits int
}

// DefaultScale is roughly 1/10 of the paper.
var DefaultScale = Scale{
	Name:          "default(1/10 paper)",
	NVDSeed:       400,
	NonSecSeed:    800,
	SetI:          8000,
	SetII:         16000,
	SetIII:        16000,
	VerifySample:  400,
	Seed:          1,
	RNNEpochs:     3,
	TableIVSplits: 3,
}

// SmallScale keeps unit tests and benchmarks fast.
var SmallScale = Scale{
	Name:          "small(tests)",
	NVDSeed:       120,
	NonSecSeed:    240,
	SetI:          1200,
	SetII:         2400,
	SetIII:        2400,
	VerifySample:  150,
	Seed:          1,
	RNNEpochs:     2,
	TableIVSplits: 1,
}

// PaperScale matches the paper's dataset sizes (minutes of runtime).
var PaperScale = Scale{
	Name:          "paper",
	NVDSeed:       4076,
	NonSecSeed:    8352,
	SetI:          100000,
	SetII:         200000,
	SetIII:        200000,
	VerifySample:  1000,
	Seed:          1,
	RNNEpochs:     3,
	TableIVSplits: 3,
}

// Lab is the shared experimental context: generated corpus populations, the
// verification oracle, and a feature cache.
type Lab struct {
	Scale  Scale
	Gen    *corpus.Generator
	Oracle *oracle.Oracle

	// NVD is the seed security patch set (with CVE ids).
	NVD []*corpus.LabeledCommit
	// NonSec is the cleaned non-security set.
	NonSec []*corpus.LabeledCommit
	// SetI, SetII, SetIII are the unlabeled wild pools.
	SetI, SetII, SetIII []*corpus.LabeledCommit

	byHash map[string]*corpus.LabeledCommit

	mu    sync.Mutex
	feats map[string][]float64

	augOnce sync.Once
	augRows []SetRound
	augErr  error
	wildSec []*corpus.LabeledCommit // nearest-link-discovered security patches
	wildNon []*corpus.LabeledCommit // cleaned candidates
}

// NewLab generates all populations and labels for a scale.
func NewLab(s Scale) *Lab {
	if s.RNNEpochs <= 0 {
		s.RNNEpochs = 3
	}
	if s.TableIVSplits <= 0 {
		s.TableIVSplits = 3
	}
	gen := corpus.NewGenerator(corpus.Config{Seed: s.Seed})
	lab := &Lab{
		Scale:  s,
		Gen:    gen,
		NVD:    gen.GenerateNVD(s.NVDSeed),
		NonSec: gen.GenerateNonSecurity(s.NonSecSeed),
		SetI:   gen.GenerateWild(s.SetI),
		SetII:  gen.GenerateWild(s.SetII),
		SetIII: gen.GenerateWild(s.SetIII),
		byHash: make(map[string]*corpus.LabeledCommit),
		feats:  make(map[string][]float64),
	}
	labels := make(map[string]bool)
	for _, pool := range lab.pools() {
		for _, lc := range pool {
			labels[lc.Commit.Hash] = lc.Security
			lab.byHash[lc.Commit.Hash] = lc
		}
	}
	lab.Oracle = oracle.New(labels, oracle.WithSeed(s.Seed))
	return lab
}

func (l *Lab) pools() [][]*corpus.LabeledCommit {
	return [][]*corpus.LabeledCommit{l.NVD, l.NonSec, l.SetI, l.SetII, l.SetIII}
}

// Lookup resolves a commit hash to its labeled commit.
func (l *Lab) Lookup(hash string) (*corpus.LabeledCommit, bool) {
	lc, ok := l.byHash[hash]
	return lc, ok
}

// Features returns (and caches) the 60-dim vector of a commit's patch.
func (l *Lab) Features(lc *corpus.LabeledCommit) []float64 {
	l.mu.Lock()
	if v, ok := l.feats[lc.Commit.Hash]; ok {
		l.mu.Unlock()
		return v
	}
	l.mu.Unlock()
	v := features.Extract(lc.Commit.Patch(), 0)
	l.mu.Lock()
	l.feats[lc.Commit.Hash] = v
	l.mu.Unlock()
	return v
}

// Precompute extracts features for whole pools in parallel.
func (l *Lab) Precompute(pools ...[]*corpus.LabeledCommit) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, pool := range pools {
		for _, lc := range pool {
			wg.Add(1)
			go func(lc *corpus.LabeledCommit) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				l.Features(lc)
			}(lc)
		}
	}
	wg.Wait()
}

// Items converts a pool to augmentation items (features extracted lazily
// but usually precomputed).
func (l *Lab) Items(pool []*corpus.LabeledCommit) []augment.Item {
	l.Precompute(pool)
	items := make([]augment.Item, len(pool))
	for i, lc := range pool {
		items[i] = augment.Item{ID: lc.Commit.Hash, Features: l.Features(lc)}
	}
	return items
}

// FeatureRows extracts the feature matrix of a pool.
func (l *Lab) FeatureRows(pool []*corpus.LabeledCommit) [][]float64 {
	l.Precompute(pool)
	rows := make([][]float64, len(pool))
	for i, lc := range pool {
		rows[i] = l.Features(lc)
	}
	return rows
}

// SetRound is a Table II row: an augmentation round annotated with its pool.
type SetRound struct {
	Set string
	augment.Round
}

// RunAugmentation executes the paper's five-round schedule (three rounds on
// Set I, one on Set II, one on Set III) once and caches the outcome: the
// per-round accounting and the discovered wild security / cleaned
// non-security sets used by every downstream experiment.
func (l *Lab) RunAugmentation() ([]SetRound, error) {
	l.augOnce.Do(func() {
		seed := l.FeatureRows(l.NVD)
		rounds := 0

		run := func(name string, pool []*corpus.LabeledCommit, maxRounds int) *augment.Result {
			if l.augErr != nil {
				return nil
			}
			res, err := augment.Run(context.Background(), seed, l.Items(pool), l.Oracle, rounds+1, augment.Config{
				MaxRounds:      maxRounds,
				RatioThreshold: 0.01,
			})
			if err != nil {
				l.augErr = fmt.Errorf("augmentation on %s: %w", name, err)
				return nil
			}
			for _, r := range res.Rounds {
				l.augRows = append(l.augRows, SetRound{Set: name, Round: r})
				rounds++
			}
			seed = res.SeedFeatures
			for _, id := range res.SecurityIDs {
				if lc, ok := l.Lookup(id); ok {
					l.wildSec = append(l.wildSec, lc)
				}
			}
			for _, id := range res.NonSecurityIDs {
				if lc, ok := l.Lookup(id); ok {
					l.wildNon = append(l.wildNon, lc)
				}
			}
			return res
		}
		run(fmt.Sprintf("Set I: %d", len(l.SetI)), l.SetI, 3)
		run(fmt.Sprintf("Set II: %d", len(l.SetII)), l.SetII, 1)
		run(fmt.Sprintf("Set III: %d", len(l.SetIII)), l.SetIII, 1)
	})
	return l.augRows, l.augErr
}

// WildSecurity returns the nearest-link-discovered wild security patches
// (running the augmentation schedule if needed).
func (l *Lab) WildSecurity() ([]*corpus.LabeledCommit, error) {
	if _, err := l.RunAugmentation(); err != nil {
		return nil, err
	}
	return l.wildSec, nil
}

// WildNonSecurity returns the cleaned non-security candidates.
func (l *Lab) WildNonSecurity() ([]*corpus.LabeledCommit, error) {
	if _, err := l.RunAugmentation(); err != nil {
		return nil, err
	}
	return l.wildNon, nil
}
