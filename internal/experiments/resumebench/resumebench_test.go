package resumebench

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"patchdb"
)

// scratch runs (and caches per-config) the uninterrupted reference build.
func scratch(t *testing.T, cfg patchdb.BuilderConfig) (*patchdb.Dataset, *patchdb.BuildReport) {
	t.Helper()
	ds, report, err := FromScratch(context.Background(), cfg)
	if err != nil {
		t.Fatalf("from-scratch build: %v", err)
	}
	return ds, report
}

func assertSameBuild(t *testing.T, wantDS *patchdb.Dataset, wantReport *patchdb.BuildReport, ds *patchdb.Dataset, report *patchdb.BuildReport) {
	t.Helper()
	if ok, diag := Identical(wantDS, ds); !ok {
		t.Errorf("resumed dataset not bit-identical to from-scratch build: %s", diag)
	}
	if d := ReportDivergence(wantReport, report); d != "" {
		t.Errorf("resumed report diverges from from-scratch build: %s", d)
	}
}

// TestKillAfterWriteEveryStageEveryWorkerCount is the core property: for
// every checkpoint stage boundary and workers ∈ {1, 2, 8}, a build killed
// right after that stage's checkpoint write and then resumed produces a
// dataset bit-identical to an uninterrupted from-scratch build.
func TestKillAfterWriteEveryStageEveryWorkerCount(t *testing.T) {
	base := BaseConfig()
	plan := patchdb.CheckpointPlan(base)
	if len(plan) != 5 { // crawl, seed, augment-1, augment-2, oversample
		t.Fatalf("plan = %v, want 5 stages — BaseConfig no longer covers every boundary", plan)
	}
	refCfg := base
	refCfg.Workers = 2
	wantDS, wantReport := scratch(t, refCfg)

	for _, stage := range plan {
		for _, w := range []int{1, 2, 8} {
			stage, w := stage, w
			t.Run(fmt.Sprintf("%s/workers-%d", stage, w), func(t *testing.T) {
				t.Parallel()
				cfg := base
				cfg.Workers = w
				ds, report, err := KillAndResume(context.Background(), cfg, t.TempDir(),
					patchdb.CheckpointFault{Stage: stage, Mode: patchdb.FaultAfterWrite}, w)
				if err != nil {
					t.Fatal(err)
				}
				if report.ResumedFrom != stage {
					t.Errorf("ResumedFrom = %q, want %q (after-write kill journals the stage)",
						report.ResumedFrom, stage)
				}
				assertSameBuild(t, wantDS, wantReport, ds, report)
			})
		}
	}
}

// TestKillBeforeWriteEveryStage covers the other crash placement: the stage's
// work finished but its checkpoint write was lost, so resume must re-run the
// stage — and still converge on the identical dataset.
func TestKillBeforeWriteEveryStage(t *testing.T) {
	base := BaseConfig()
	plan := patchdb.CheckpointPlan(base)
	refCfg := base
	refCfg.Workers = 2
	wantDS, wantReport := scratch(t, refCfg)

	for i, stage := range plan {
		i, stage := i, stage
		t.Run(stage, func(t *testing.T) {
			t.Parallel()
			cfg := base
			cfg.Workers = 2
			ds, report, err := KillAndResume(context.Background(), cfg, t.TempDir(),
				patchdb.CheckpointFault{Stage: stage, Mode: patchdb.FaultBeforeWrite}, 2)
			if err != nil {
				t.Fatal(err)
			}
			wantFrom := "" // crawl's checkpoint lost → the journal is empty
			if i > 0 {
				wantFrom = plan[i-1]
			}
			if report.ResumedFrom != wantFrom {
				t.Errorf("ResumedFrom = %q, want %q (before-write kill loses the stage)",
					report.ResumedFrom, wantFrom)
			}
			assertSameBuild(t, wantDS, wantReport, ds, report)
		})
	}
}

// TestCrossWorkerResume kills a single-worker build and resumes it on eight
// workers: the journal carries no worker count, and output is
// worker-invariant, so the result must still be bit-identical.
func TestCrossWorkerResume(t *testing.T) {
	base := BaseConfig()
	refCfg := base
	refCfg.Workers = 2
	wantDS, wantReport := scratch(t, refCfg)

	cfg := base
	cfg.Workers = 1
	ds, report, err := KillAndResume(context.Background(), cfg, t.TempDir(),
		patchdb.CheckpointFault{Stage: "augment-1", Mode: patchdb.FaultAfterWrite}, 8)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBuild(t, wantDS, wantReport, ds, report)
}

// TestQuarantineStateRoundTrip kills a fault-injected crawl right after its
// checkpoint and resumes: the resumed build must report the same quarantine
// list and the same Degraded verdict as an uninterrupted chaos run, without
// re-crawling.
func TestQuarantineStateRoundTrip(t *testing.T) {
	cfg := BaseConfig()
	cfg.FaultRate = 0.25
	cfg.MaxRetries = 1
	cfg.MaxCrawlFailureRatio = -1 // never fail: quarantine is reported, build proceeds
	cfg.Workers = 2

	wantDS, wantReport := scratch(t, cfg)
	if wantReport.Crawl.Quarantined == 0 {
		t.Fatal("reference chaos build quarantined nothing — raise FaultRate so the round trip is exercised")
	}
	if !wantReport.Degraded {
		t.Fatal("reference chaos build not Degraded")
	}

	ds, report, err := KillAndResume(context.Background(), cfg, t.TempDir(),
		patchdb.CheckpointFault{Stage: "crawl", Mode: patchdb.FaultAfterWrite}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.ResumedFrom != "crawl" {
		t.Fatalf("ResumedFrom = %q, want crawl", report.ResumedFrom)
	}
	if !report.Degraded {
		t.Error("resumed build lost the Degraded verdict")
	}
	assertSameBuild(t, wantDS, wantReport, ds, report)
}

// TestResumeRefusesMismatchedConfig proves the fingerprint guard: a journal
// written under one config cannot be resumed under a config that would
// change build output.
func TestResumeRefusesMismatchedConfig(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := BaseConfig()
	cfg.Workers = 2
	killed := cfg
	killed.CheckpointDir = dir
	killed.CheckpointFault = &patchdb.CheckpointFault{Stage: "seed", Mode: patchdb.FaultAfterWrite}
	if _, _, err := patchdb.Build(ctx, killed); !errors.Is(err, patchdb.ErrInjectedCrash) {
		t.Fatalf("killed build: %v", err)
	}

	mutations := map[string]func(*patchdb.BuilderConfig){
		"nvd-size":  func(c *patchdb.BuilderConfig) { c.NVDSize = 61 },
		"seed":      func(c *patchdb.BuilderConfig) { c.Seed = 8 },
		"pools":     func(c *patchdb.BuilderConfig) { c.WildPools = []int{250, 300} },
		"synthetic": func(c *patchdb.BuilderConfig) { c.SyntheticPerPatch = 3 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			bad := cfg
			bad.CheckpointDir = dir
			bad.Resume = true
			mutate(&bad)
			if _, _, err := patchdb.Build(ctx, bad); !errors.Is(err, patchdb.ErrCheckpointMismatch) {
				t.Errorf("Build with mutated %s: err = %v, want ErrCheckpointMismatch", name, err)
			}
		})
	}
}

func TestResumeRequiresCheckpointDir(t *testing.T) {
	cfg := BaseConfig()
	cfg.Resume = true
	if _, _, err := patchdb.Build(context.Background(), cfg); err == nil {
		t.Fatal("Resume without CheckpointDir succeeded")
	}
}
