// Package resumebench is the kill-and-resume chaos harness behind `make
// verify-resume`: it proves the checkpoint journal's crash-safety property
// end to end. For every checkpoint stage boundary, a build is forcibly
// aborted by a deterministic injected crash (patchdb.CheckpointFault), then
// resumed from its journal, and the resumed dataset is asserted bit-identical
// to an uninterrupted from-scratch build — at worker counts 1, 2, and 8, and
// across worker counts (killed at one, resumed at another). It lives beside
// servebench because it depends on the root patchdb package, which
// internal/experiments proper cannot import without a cycle.
package resumebench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/url"

	"patchdb"
)

// BaseConfig is the harness's build shape: small enough that the full
// kill-and-resume matrix stays fast, large enough that every stage does real
// work (two wild pools → two augmentation checkpoints, synthesis enabled →
// an oversample checkpoint, feed noise on by default).
func BaseConfig() patchdb.BuilderConfig {
	return patchdb.BuilderConfig{
		Seed:              7,
		NVDSize:           60,
		NonSecuritySize:   120,
		WildPools:         []int{250, 250},
		RoundsPerPool:     []int{2, 1},
		SyntheticPerPatch: 2,
	}
}

// DatasetJSON renders a dataset exactly as SaveJSON would write it — the
// bytes the bit-identical property is stated over.
func DatasetJSON(ds *patchdb.Dataset) ([]byte, error) {
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FromScratch runs an uninterrupted, checkpoint-free build — the reference
// the resumed builds are compared against.
func FromScratch(ctx context.Context, cfg patchdb.BuilderConfig) (*patchdb.Dataset, *patchdb.BuildReport, error) {
	cfg.CheckpointDir = ""
	cfg.Resume = false
	cfg.CheckpointFault = nil
	return patchdb.Build(ctx, cfg)
}

// KillAndResume simulates a crash at one stage boundary and recovers from
// it: it runs cfg with the journal in dir and the given fault injected — the
// build MUST die with patchdb.ErrInjectedCrash — then re-runs with Resume at
// resumeWorkers. It returns the resumed build's output.
func KillAndResume(ctx context.Context, cfg patchdb.BuilderConfig, dir string, fault patchdb.CheckpointFault, resumeWorkers int) (*patchdb.Dataset, *patchdb.BuildReport, error) {
	killed := cfg
	killed.CheckpointDir = dir
	killed.Resume = false
	killed.CheckpointFault = &fault
	if _, _, err := patchdb.Build(ctx, killed); !errors.Is(err, patchdb.ErrInjectedCrash) {
		// The wrong error (possibly nil) is the finding itself, not a chain
		// to preserve — callers match on the message, never errors.Is.
		//lint:ignore errcanon reporting a foreign error verbatim, not wrapping a chain
		return nil, nil, fmt.Errorf("killed build at stage %q (%s): err = %v, want ErrInjectedCrash", fault.Stage, fault.Mode, err)
	}

	resumed := cfg
	resumed.CheckpointDir = dir
	resumed.Resume = true
	resumed.CheckpointFault = nil
	resumed.Workers = resumeWorkers
	ds, report, err := patchdb.Build(ctx, resumed)
	if err != nil {
		return nil, nil, fmt.Errorf("resume after kill at stage %q (%s): %w", fault.Stage, fault.Mode, err)
	}
	return ds, report, nil
}

// Identical compares two datasets byte-for-byte in their serialized form. A
// non-empty diagnosis pinpoints the first divergence.
func Identical(a, b *patchdb.Dataset) (bool, string) {
	aj, err := DatasetJSON(a)
	if err != nil {
		return false, fmt.Sprintf("serialize a: %v", err)
	}
	bj, err := DatasetJSON(b)
	if err != nil {
		return false, fmt.Sprintf("serialize b: %v", err)
	}
	if bytes.Equal(aj, bj) {
		return true, ""
	}
	// Diagnose: component sizes first, then the byte offset.
	as, bs := a.Stats(), b.Stats()
	if as != bs {
		return false, fmt.Sprintf("component sizes diverge: %+v vs %+v", as, bs)
	}
	n := len(aj)
	if len(bj) < n {
		n = len(bj)
	}
	for i := 0; i < n; i++ {
		if aj[i] != bj[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return false, fmt.Sprintf("bytes diverge at offset %d: %q vs %q", i, aj[lo:i+1], bj[lo:i+1])
		}
	}
	return false, fmt.Sprintf("one serialization is a prefix of the other (%d vs %d bytes)", len(aj), len(bj))
}

// ReportDivergence compares the deterministic fields of two build reports —
// everything but wall-clock timings, stage accounting, and the telemetry
// artifact, which legitimately differ between a resumed and an uninterrupted
// run. An empty string means they agree.
func ReportDivergence(a, b *patchdb.BuildReport) string {
	if a.Degraded != b.Degraded {
		return fmt.Sprintf("Degraded: %v vs %v", a.Degraded, b.Degraded)
	}
	if a.HumanVerifications != b.HumanVerifications {
		return fmt.Sprintf("HumanVerifications: %d vs %d", a.HumanVerifications, b.HumanVerifications)
	}
	if d := crawlDivergence(a, b); d != "" {
		return d
	}
	if len(a.Rounds) != len(b.Rounds) {
		return fmt.Sprintf("rounds: %d vs %d", len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		ar, br := a.Rounds[i], b.Rounds[i]
		if ar.Round != br.Round || ar.SearchRange != br.SearchRange ||
			ar.Candidates != br.Candidates || ar.Verified != br.Verified || ar.Ratio != br.Ratio {
			return fmt.Sprintf("round %d accounting diverges: %+v vs %+v", i+1, ar, br)
		}
	}
	return ""
}

// crawlDivergence compares crawl stats field by field, skipping BreakerTrips
// (documented as timing-dependent, outside the determinism contract).
func crawlDivergence(a, b *patchdb.BuildReport) string {
	ac, bc := a.Crawl, b.Crawl
	if ac.Entries != bc.Entries || ac.WithPatchRefs != bc.WithPatchRefs ||
		ac.Downloaded != bc.Downloaded || ac.EmptyAfterClean != bc.EmptyAfterClean ||
		ac.Errors != bc.Errors || ac.Retries != bc.Retries || ac.Quarantined != bc.Quarantined {
		return fmt.Sprintf("crawl counters diverge: %+v vs %+v", ac, bc)
	}
	if len(ac.Quarantine) != len(bc.Quarantine) {
		return fmt.Sprintf("quarantine length: %d vs %d", len(ac.Quarantine), len(bc.Quarantine))
	}
	for i := range ac.Quarantine {
		qa, qb := ac.Quarantine[i], bc.Quarantine[i]
		// The URL embeds the loopback service's ephemeral port, which
		// legitimately differs between two builds; compare the path.
		qa.URL = urlPath(qa.URL)
		qb.URL = urlPath(qb.URL)
		if qa != qb {
			return fmt.Sprintf("quarantine entry %d diverges: %+v vs %+v", i, qa, qb)
		}
	}
	return ""
}

func urlPath(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return raw
	}
	return u.Path
}
