package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")

	if err := WriteFile(path, []byte("v1")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v; want \"v1\"", got, err)
	}

	if err := WriteFile(path, []byte("v2 longer content")); err != nil {
		t.Fatalf("WriteFile replace: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2 longer content" {
		t.Fatalf("after replace: %q", got)
	}
	assertNoTempLeft(t, dir)
}

func TestWriteToAbortKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFile(path, []byte("good")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	boom := errors.New("boom")
	err := WriteTo(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("WriteTo error = %v, want wrapped boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "good" {
		t.Fatalf("previous artifact clobbered: %q", got)
	}
	assertNoTempLeft(t, dir)
}

func TestWriteToMissingDirectory(t *testing.T) {
	err := WriteTo(filepath.Join(t.TempDir(), "no-such-dir", "f"), func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
}

// assertNoTempLeft verifies no temp files survive a completed or aborted
// write — the invariant that keeps artifact directories clean after crashes
// in our own code paths.
func assertNoTempLeft(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}
