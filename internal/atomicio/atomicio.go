// Package atomicio is the shared atomic-write helper behind every durable
// artifact the repo produces: datasets, run reports, bench JSON files, and
// checkpoint journals. A write lands via the temp+fsync+rename pattern — the
// document is streamed into a same-directory temp file, synced to stable
// storage, closed, and renamed over the destination — so a crash, kill, or
// full disk mid-write can never leave a truncated artifact where a previous
// good one stood.
//
// The atomicwrite analyzer (internal/analysis, `make lint`) enforces that
// artifact-writing packages go through this helper instead of calling
// os.Create / os.WriteFile directly.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteTo atomically replaces path with the bytes write produces. write
// receives the temp file; any error it returns aborts the operation, removes
// the temp file, and leaves an existing file at path untouched. After write
// succeeds the temp file is fsynced, closed, and renamed over path; the
// containing directory is then synced on a best-effort basis so the rename
// itself survives a crash.
func WriteTo(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: create temp for %s: %w", path, err)
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	if err := write(tmp); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: rename over %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// WriteFile atomically replaces path with data (the os.WriteFile shape, made
// crash-safe).
func WriteFile(path string, data []byte) error {
	return WriteTo(path, func(w io.Writer) error {
		if _, err := w.Write(data); err != nil {
			return fmt.Errorf("atomicio: write %s: %w", path, err)
		}
		return nil
	})
}

// syncDir fsyncs a directory so a just-completed rename is durable. Errors
// are deliberately ignored: not every filesystem supports directory fsync,
// and the rename itself already happened — this only narrows the crash
// window further where the platform allows it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
