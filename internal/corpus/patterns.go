// Security patch pattern editors: one per pattern class of Table V. Each
// editor takes a pristine generated file and produces the post-patch
// version, embedding the syntactic signature of its class (sanity checks add
// conditionals and relational operators, call fixes swap or add function
// calls, redesigns rewrite whole regions, ...).
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Pattern identifies one of the 12 security patch pattern classes of
// Table V.
type Pattern int

const (
	// PatternBoundCheck adds or changes bound checks (Type 1).
	PatternBoundCheck Pattern = iota + 1
	// PatternNullCheck adds or changes NULL checks (Type 2).
	PatternNullCheck
	// PatternSanityCheck adds or changes other sanity checks (Type 3).
	PatternSanityCheck
	// PatternVarDef changes variable definitions (Type 4).
	PatternVarDef
	// PatternVarValue changes variable values (Type 5).
	PatternVarValue
	// PatternFuncDecl changes function declarations (Type 6).
	PatternFuncDecl
	// PatternFuncParam changes function parameters (Type 7).
	PatternFuncParam
	// PatternFuncCall adds or changes function calls (Type 8).
	PatternFuncCall
	// PatternJump adds or changes jump statements (Type 9).
	PatternJump
	// PatternMove moves statements without modification (Type 10).
	PatternMove
	// PatternRedesign adds or changes functions wholesale (Type 11).
	PatternRedesign
	// PatternOther is uncommon minor changes (Type 12).
	PatternOther
)

// NumPatterns is the number of security pattern classes.
const NumPatterns = 12

// String returns the Table V description of the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternBoundCheck:
		return "add or change bound checks"
	case PatternNullCheck:
		return "add or change null checks"
	case PatternSanityCheck:
		return "add or change other sanity checks"
	case PatternVarDef:
		return "change variable definitions"
	case PatternVarValue:
		return "change variable values"
	case PatternFuncDecl:
		return "change function declarations"
	case PatternFuncParam:
		return "change function parameters"
	case PatternFuncCall:
		return "add or change function calls"
	case PatternJump:
		return "add or change jump statements"
	case PatternMove:
		return "move statements without modification"
	case PatternRedesign:
		return "add or change functions (redesign)"
	case PatternOther:
		return "others"
	default:
		return "unknown"
	}
}

// guardBody returns a random statement used as the body of an inserted
// check. The SAME pool is shared by security and non-security editors:
// whether `if (len > 64) return -1;` fixes a vulnerability or merely tunes
// behaviour is decided by context, not syntax, exactly as in real commits.
func guardBody(a *fnAnchors, rng *rand.Rand) string {
	switch rng.Intn(5) {
	case 0:
		return "\t\treturn -1;"
	case 1:
		return "\t\treturn 0;"
	case 2:
		return fmt.Sprintf("\t\t%s = 0;", a.lenParam)
	case 3:
		return fmt.Sprintf("\t\treturn %s;", a.retVar)
	default:
		return fmt.Sprintf("\t\t%s &= 0x%x;", a.lenParam, 0xff<<rng.Intn(3))
	}
}

// guardCond returns a random if-condition from a pool shared by security
// and non-security editors. complexBias in [0,1] is the probability of
// drawing a multi-clause condition; security fixes lean complex (defensive
// conjunctions), functional tweaks lean simple, but both draw from the same
// pool so no single syntactic family is a perfect label.
func guardCond(a *fnAnchors, rng *rand.Rand, complexBias float64) string {
	if rng.Float64() < complexBias {
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%s < 0 || %s > %d", a.lenParam, a.lenParam, 512<<rng.Intn(4))
		case 1:
			return fmt.Sprintf("!%s || !%s", a.structVar, a.ptrParam)
		case 2:
			return fmt.Sprintf("%s->refs > 0 && %s != 0", a.structVar, a.countVar)
		default:
			return fmt.Sprintf("(%s->flags & 0x%xu) != 0", a.structVar, 1<<(2+rng.Intn(4)))
		}
	}
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%s == 0", a.lenParam)
	case 1:
		return fmt.Sprintf("%s > %d", a.lenParam, 64<<rng.Intn(4))
	case 2:
		return "!" + a.structVar
	default:
		return fmt.Sprintf("%s < %d", a.countVar, 1+rng.Intn(16))
	}
}

// applySecurityPattern returns the post-patch version of file f under the
// given pattern class. The input file is not modified.
func applySecurityPattern(f *srcFile, p Pattern, rng *rand.Rand) *srcFile {
	out := f.clone()
	a := &out.fn
	switch p {
	case PatternBoundCheck:
		applyBoundCheck(out, a, rng)
	case PatternNullCheck:
		applyNullCheck(out, a, rng)
	case PatternSanityCheck:
		applySanityCheck(out, a, rng)
	case PatternVarDef:
		applyVarDef(out, a, rng)
	case PatternVarValue:
		applyVarValue(out, a, rng)
	case PatternFuncDecl:
		applyFuncDecl(out, a)
	case PatternFuncParam:
		applyFuncParam(out, a, rng)
	case PatternFuncCall:
		applyFuncCall(out, a, rng)
	case PatternJump:
		applyJump(out, a, rng)
	case PatternMove:
		applyMove(out, a)
	case PatternRedesign:
		applyRedesign(out, a, rng)
	case PatternOther:
		applyOther(out, a, rng)
	}
	return out
}

func applyBoundCheck(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		// Guard the memcpy destination against overflow.
		i := out.findContains(a.bodyStart, "memcpy(")
		if i < 0 {
			i = a.returnLine
		}
		out.insert(i,
			fmt.Sprintf("\tif (%s > (int)sizeof(%s))", a.lenParam, a.tmpBuf),
			guardBody(a, rng))
	case 1:
		// Reject suspicious lengths before the loop.
		out.insert(a.loopLine,
			"\tif ("+guardCond(a, rng, 0.6)+")",
			guardBody(a, rng))
	default:
		// Tighten an existing relational check (the CVE-2019-20912 shape:
		// strengthen the condition with an extra bound).
		i := out.findContains(a.bodyStart, "if (")
		if i >= 0 {
			old := out.lines[i]
			out.lines[i] = strings.Replace(old, ") {",
				fmt.Sprintf(" && %s > 0) {", a.idxVar), 1)
		}
	}
}

func applyNullCheck(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	if rng.Intn(2) == 0 {
		out.insert(a.bodyStart+1,
			"\tif ("+guardCond(a, rng, 0.6)+")",
			guardBody(a, rng))
	} else {
		i := out.findContains(a.bodyStart, "->")
		if i < 0 {
			i = a.bodyStart + 1
		}
		out.insert(i,
			fmt.Sprintf("\tif (%s == NULL)", a.structVar),
			guardBody(a, rng))
	}
}

func applySanityCheck(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		out.insert(a.loopLine,
			"\tif ("+guardCond(a, rng, 0.6)+")",
			guardBody(a, rng))
	case 1:
		out.insert(a.loopLine,
			fmt.Sprintf("\tif (%s == 0 && %s->refs <= 0)", a.countVar, a.structVar),
			guardBody(a, rng))
	default:
		// Strengthen the existing condition with a state validity test.
		i := out.findContains(a.ifLine-1, "if (")
		if i >= 0 {
			out.lines[i] = strings.Replace(out.lines[i], "if (",
				fmt.Sprintf("if (%s->refs > 0 && ", a.structVar), 1)
		}
	}
}

func applyVarDef(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	if rng.Intn(2) == 0 {
		// int -> unsigned int for the index (signedness vulnerability fix).
		i := out.findContains(a.bodyStart, fmt.Sprintf("int %s;", a.idxVar))
		if i >= 0 {
			out.lines[i] = strings.Replace(out.lines[i], "int ", "unsigned int ", 1)
		}
	} else {
		// Resize the stack buffer.
		i := out.find(a.bodyStart, func(s string) bool {
			return strings.Contains(s, "char "+a.tmpBuf+"[")
		})
		if i >= 0 {
			out.lines[i] = fmt.Sprintf("\tchar %s[%d];", a.tmpBuf, 256<<rng.Intn(2))
		}
	}
}

func applyVarValue(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	if rng.Intn(2) == 0 {
		// Zero the buffer to prevent information leak.
		i := out.find(a.bodyStart, func(s string) bool {
			return strings.Contains(s, "char "+a.tmpBuf+"[")
		})
		if i >= 0 {
			out.insert(i+1, fmt.Sprintf("\tmemset(%s, 0, sizeof(%s));", a.tmpBuf, a.tmpBuf))
		}
	} else {
		// Mask the attacker-influenced counter.
		i := out.findContains(a.bodyStart, fmt.Sprintf("int %s = %s->", a.countVar, a.structVar))
		if i >= 0 {
			out.lines[i] = strings.TrimSuffix(out.lines[i], ";") + " & 0xffff;"
		}
	}
}

func applyFuncDecl(out *srcFile, a *fnAnchors) {
	// Widen the return type (truncation fix).
	out.lines[a.sigLine] = strings.Replace(out.lines[a.sigLine], "static int ", "static long ", 1)
	i := out.findContains(a.bodyStart, fmt.Sprintf("int %s = 0;", a.retVar))
	if i >= 0 {
		out.lines[i] = strings.Replace(out.lines[i], "int ", "long ", 1)
	}
}

func applyFuncParam(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	if rng.Intn(2) == 0 {
		// Add an explicit capacity parameter and honor it.
		out.lines[a.sigLine] = strings.Replace(out.lines[a.sigLine], ")",
			", int cap)", 1)
		i := out.findContains(a.bodyStart, "memcpy(")
		if i >= 0 {
			out.insert(i,
				fmt.Sprintf("\tif (%s > cap)", a.lenParam),
				"\t\treturn -1;")
		}
	} else {
		// const-qualify the input buffer (write-protection fix).
		out.lines[a.sigLine] = strings.Replace(out.lines[a.sigLine],
			"char *"+a.ptrParam, "const char *"+a.ptrParam, 1)
	}
}

func applyFuncCall(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	switch rng.Intn(4) {
	case 0:
		// Unsafe copy -> bounded copy (strcpy->strlcpy analogue).
		i := out.findContains(a.bodyStart, "memcpy(")
		if i >= 0 {
			out.lines[i] = fmt.Sprintf("\tsafe_copy(%s, sizeof(%s), %s, %s);",
				a.tmpBuf, a.tmpBuf, a.ptrParam, a.lenParam)
		}
	case 1:
		// Race condition fix: lock/unlock around the shared-state update
		// (Table VII, race condition fix pattern).
		i := out.findContains(a.bodyStart, "->flags |=")
		if i >= 0 {
			out.insert(i+1, fmt.Sprintf("\t\tstate_unlock(%s);", a.structVar))
			out.insert(i, fmt.Sprintf("\t\tstate_lock(%s);", a.structVar))
		}
	case 2:
		// Data leakage fix: release the critical value after last use
		// (Table VII, data leakage fix pattern).
		i := out.findContains(a.bodyStart, fmt.Sprintf("return %s;", a.retVar))
		if i < 0 {
			i = a.returnLine
		}
		out.insert(i, fmt.Sprintf("\trelease_state(%s);", a.structVar))
	default:
		// Replace the transform with its validated variant.
		i := out.findContains(a.bodyStart, a.calleeName+"(")
		if i >= 0 {
			out.lines[i] = strings.Replace(out.lines[i], a.calleeName+"(",
				a.calleeName+"_checked(", 1)
		}
	}
}

func applyJump(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	// Add proper error handling via goto.
	i := out.findContains(a.bodyStart, fmt.Sprintf("%s = %s(", a.retVar, a.calleeName))
	if i < 0 {
		i = a.callLine
	}
	out.insert(i+1,
		fmt.Sprintf("\t\tif (%s < 0)", a.retVar),
		"\t\t\tgoto fail;")
	j := out.findContains(i, fmt.Sprintf("return %s;", a.retVar))
	if j >= 0 {
		out.insert(j+1,
			"fail:",
			fmt.Sprintf("\t%s->refs--;", a.structVar),
			"\treturn -1;")
	}
	_ = rng
}

func applyMove(out *srcFile, a *fnAnchors) {
	// Move the refcount bump from the end to before first use
	// (use-after-free / uninitialized-use shape): pure relocation.
	src := out.findContains(a.bodyStart, fmt.Sprintf("%s->refs++;", a.structVar))
	if src < 0 {
		return
	}
	line := out.lines[src]
	out.lines = append(out.lines[:src], out.lines[src+1:]...)
	dst := out.findContains(a.bodyStart, "for (")
	if dst < 0 || dst > src {
		dst = a.bodyStart + 1
	}
	out.insert(dst, line)
}

func applyRedesign(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	// Rewrite the conditional block wholesale: new logic, new helper calls,
	// extra loop — the large multi-line change signature of Type 11. Target
	// the braced top-level `if (...) {` block so the replacement region is
	// exactly one balanced block.
	start := out.find(a.bodyStart, func(s string) bool {
		return strings.HasPrefix(s, "\tif (") && strings.HasSuffix(s, "{")
	})
	if start < 0 {
		return
	}
	end := out.find(start, func(s string) bool { return s == "\t}" })
	if end < 0 || end-start > 12 {
		return
	}
	replacement := []string{
		fmt.Sprintf("\tif (%s > 0 && %s->refs < %d) {", a.countVar, a.structVar, 8+rng.Intn(56)),
		fmt.Sprintf("\t\tint step = %s(%s, %d);", a.calleeName, a.countVar, 1+rng.Intn(7)),
		fmt.Sprintf("\t\twhile (step > 0 && %s > 0) {", a.retVar),
		fmt.Sprintf("\t\t\t%s -= step;", a.retVar),
		"\t\t\tstep >>= 1;",
		"\t\t}",
		fmt.Sprintf("\t\t%s->flags &= ~0x%xu;", a.structVar, 1<<rng.Intn(5)),
		fmt.Sprintf("\t\t%s = validate_result(%s, %s);", a.retVar, a.retVar, a.countVar),
		"\t}",
	}
	out.lines = append(out.lines[:start], append(replacement, out.lines[end+1:]...)...)
}

func applyOther(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	// Uncommon minor change: adjust a masking constant.
	i := out.find(a.bodyStart, func(s string) bool { return strings.Contains(s, "& 0x") })
	if i < 0 {
		return
	}
	masks := []string{"0x7f", "0x3f", "0xff", "0x1f"}
	old := out.lines[i]
	for _, m := range masks {
		if strings.Contains(old, m) {
			next := masks[rng.Intn(len(masks))]
			for next == m {
				next = masks[rng.Intn(len(masks))]
			}
			out.lines[i] = strings.Replace(old, m, next, 1)
			return
		}
	}
}
