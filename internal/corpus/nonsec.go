// Non-security patch editors: bug fixes (performance, logic), new features,
// refactorings, and cleanups. Some deliberately share surface syntax with
// security patches (e.g. a performance early-exit adds an `if` + `return`
// just like a sanity check) — the overlap is what makes identification a
// learning problem rather than a lookup, matching the 6-10% base rate and
// imperfect classifier accuracy the paper reports.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// NonSecClass identifies a non-security change class.
type NonSecClass int

const (
	// NonSecFeature adds new functionality (many added lines, new
	// functions).
	NonSecFeature NonSecClass = iota + 1
	// NonSecPerf is a performance fix (caching, early exits, cheaper ops).
	NonSecPerf
	// NonSecLogic is a functional bug fix with no security impact.
	NonSecLogic
	// NonSecRefactor renames/reshuffles without behavior change.
	NonSecRefactor
	// NonSecCleanup is stylistic (comments, spacing, dead code removal).
	NonSecCleanup
	// NonSecHardening applies defensive checks in bulk ("adopt upstream
	// hardening guidelines"): syntactically security-shaped but not a fix
	// for any concrete vulnerability. The class occurs in the wild but NOT
	// in the cleaned negative training set — it is the distribution
	// discrepancy that makes confidence-ranked augmentation baselines
	// collapse (paper Sec. IV-B).
	NonSecHardening
)

// NumNonSecClasses is the number of non-security classes.
const NumNonSecClasses = 6

// String names the class.
func (c NonSecClass) String() string {
	switch c {
	case NonSecFeature:
		return "new feature"
	case NonSecPerf:
		return "performance fix"
	case NonSecLogic:
		return "logic bug fix"
	case NonSecRefactor:
		return "refactoring"
	case NonSecCleanup:
		return "cleanup"
	case NonSecHardening:
		return "bulk hardening"
	default:
		return "unknown"
	}
}

// applyNonSecurity returns the post-patch version of f under the given
// non-security class.
func applyNonSecurity(f *srcFile, c NonSecClass, rng *rand.Rand) *srcFile {
	out := f.clone()
	a := &out.fn
	switch c {
	case NonSecFeature:
		applyFeature(out, a, rng)
	case NonSecPerf:
		applyPerf(out, a, rng)
	case NonSecLogic:
		applyLogic(out, a, rng)
	case NonSecRefactor:
		applyRefactor(out, a, rng)
	case NonSecCleanup:
		applyCleanup(out, a, rng)
	case NonSecHardening:
		applyHardening(out, a, rng)
	}
	return out
}

// applyHardening is a "modernization + hardening sweep": the function's
// conditional block is restructured wholesale and defensive guards are
// sprinkled in — the syntactic twin of a Type 11 security redesign, applied
// as policy rather than as a fix for a concrete vulnerability. Because this
// family mimics the NVD head class but carries a non-security label, it is
// precisely the wild population that misleads confidence-ranked candidate
// selection while leaving nearest-link selection mostly intact.
func applyHardening(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	applyRedesign(out, a, rng)
	for k := rng.Intn(2) + 1; k > 0; k-- {
		out.insert(a.bodyStart+1,
			"	if ("+guardCond(a, rng, 0.6)+")",
			guardBody(a, rng))
	}
	if rng.Intn(2) == 0 {
		i := out.findContains(a.bodyStart, "->flags")
		if i >= 0 {
			out.insert(i+1, fmt.Sprintf("	state_unlock(%s);", a.structVar))
			out.insert(i, fmt.Sprintf("	state_lock(%s);", a.structVar))
		}
	}
}

func applyFeature(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	// Append a new exported function and register it from the primary one.
	feature := ident(rng, verbs, nouns)
	stat := pick(rng, helperSuffixes)
	newFn := []string{
		"",
		fmt.Sprintf("int %s_stats(struct %s_state *s, int *out_%s)", feature, a.ptrParam, stat),
		"{",
		"\tif (s == NULL || out_" + stat + " == NULL)",
		"\t\treturn -1;",
		fmt.Sprintf("\t*out_%s = s->%s;", stat, "refs"),
		fmt.Sprintf("\ts->flags |= %du;", 1<<rng.Intn(6)),
		"\treturn 0;",
		"}",
	}
	if rng.Intn(2) == 0 {
		walk := []string{
			fmt.Sprintf("\twhile (s->next != NULL && s->refs < %d) {", 16<<rng.Intn(4)),
			"\t\ts = s->next;",
			fmt.Sprintf("\t\t*out_%s += 1;", stat),
			"\t}",
		}
		newFn = append(newFn[:len(newFn)-2], append(walk, newFn[len(newFn)-2:]...)...)
	}
	out.lines = append(out.lines, newFn...)
	switch rng.Intn(3) {
	case 0:
		// Also thread a new option through the primary function.
		i := out.findContains(a.bodyStart, "for (")
		if i >= 0 {
			out.insert(i,
				fmt.Sprintf("\tif (%s->flags & 0x100u)", a.structVar),
				fmt.Sprintf("\t\t%s = %s * 2;", a.countVar, a.countVar),
				"")
		}
	case 1:
		// Instrument the primary function with tracing calls.
		i := out.findContains(a.bodyStart, "for (")
		if i >= 0 {
			out.insert(i, fmt.Sprintf("\ttrace_event(%s, %s);", a.structVar, a.lenParam))
		}
		j := out.findContains(a.bodyStart, fmt.Sprintf("return %s;", a.retVar))
		if j >= 0 {
			out.insert(j, fmt.Sprintf("\ttrace_done(%s, %s);", a.structVar, a.retVar))
		}
	}
}

func applyPerf(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	switch rng.Intn(4) {
	case 0:
		// Early exit on empty input (systemd-Listing-2-like: an `if` that is
		// NOT a security fix).
		out.insert(a.bodyStart+1,
			"\tif ("+guardCond(a, rng, 0.4)+")",
			guardBody(a, rng))
	case 1:
		// Hoist an invariant computation out of the loop.
		i := out.findContains(a.bodyStart, "for (")
		if i >= 0 {
			out.insert(i, fmt.Sprintf("\tint scale = %s * %d;", a.countVar, 1+rng.Intn(4)))
			j := out.findContains(i+1, a.calleeName+"(")
			if j >= 0 {
				out.lines[j] = strings.Replace(out.lines[j], a.countVar, "scale", 1)
			}
		}
	case 2:
		// Replace the modulo-style helper use with a shift.
		i := out.findContains(a.bodyStart, "& 0x")
		if i >= 0 {
			out.lines[i] = strings.Replace(out.lines[i], "& 0x", ">> 1 & 0x", 1)
		}
	default:
		// Drain cheap work in a batch loop before the main pass.
		out.insert(a.loopLine,
			fmt.Sprintf("\twhile (%s > %d && (%s->flags & 0x%xu)) {", a.countVar, 8<<rng.Intn(4), a.structVar, 1<<rng.Intn(4)),
			fmt.Sprintf("\t\t%s -= %d;", a.countVar, 1+rng.Intn(4)),
			"\t}")
	}
}

func applyLogic(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	switch rng.Intn(6) {
	case 0:
		// Fix an accumulation formula.
		i := out.findContains(a.bodyStart, a.retVar+" +=")
		if i >= 0 {
			out.lines[i] = strings.Replace(out.lines[i], "+=", "+= 2 *", 1)
		}
	case 1:
		// Loop start off-by-one style functional change.
		i := out.findContains(a.bodyStart, "for (")
		if i >= 0 {
			out.lines[i] = strings.Replace(out.lines[i],
				fmt.Sprintf("%s = 0", a.idxVar), fmt.Sprintf("%s = 1", a.idxVar), 1)
		}
	case 2:
		// Clamp an input to the configured maximum: changes behaviour on
		// big inputs but is a functional tuning fix, not a vulnerability
		// fix. Syntactically it is nearly indistinguishable from a bound
		// check — exactly the ambiguity human verification resolves.
		out.insert(a.loopLine,
			"\tif ("+guardCond(a, rng, 0.4)+")",
			guardBody(a, rng))
	case 3:
		// Overlapping-copy correctness fix (memcpy -> memmove): a memory
		// operator change that is not security-motivated here.
		i := out.findContains(a.bodyStart, "memcpy(")
		if i >= 0 {
			out.lines[i] = strings.Replace(out.lines[i], "memcpy(", "memmove(", 1)
		}
	case 4:
		// Route the result through a rounding/normalization helper.
		i := out.findContains(a.bodyStart, fmt.Sprintf("return %s;", a.retVar))
		if i >= 0 {
			out.lines[i] = fmt.Sprintf("\treturn %s(%s, %d);", pick(rng, callees), a.retVar, 1+rng.Intn(8))
		}
	default:
		// Adjust the threshold condition value (tuning, not hardening).
		i := out.findContains(a.bodyStart, "if (")
		if i >= 0 && strings.Contains(out.lines[i], "> ") {
			out.lines[i] = strings.Replace(out.lines[i], "> ", ">= ", 1)
		}
	}
}

func applyRefactor(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	// Rename the result variable across the function (many small hunks).
	newName := []string{"result", "rc", "status", "acc"}[rng.Intn(4)]
	for i := a.bodyStart; i < len(out.lines); i++ {
		out.lines[i] = replaceWord(out.lines[i], a.retVar, newName)
	}
	a.retVar = newName
}

func applyCleanup(out *srcFile, a *fnAnchors, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		// Document the primary function.
		out.insert(a.sigLine,
			fmt.Sprintf("/* %s: process a %s of up to %s bytes. */",
				a.name, a.ptrParam, a.lenParam))
	case 1:
		// Drop a blank line and add a trailing comment.
		i := out.find(a.bodyStart, func(s string) bool { return s == "" })
		if i >= 0 {
			out.lines = append(out.lines[:i], out.lines[i+1:]...)
		}
		out.insert(len(out.lines), "/* end of file */")
	default:
		// Normalize a hex constant's case.
		i := out.findContains(0, "0xff")
		if i >= 0 {
			out.lines[i] = strings.Replace(out.lines[i], "0xff", "0xFF", 1)
		} else {
			out.insert(a.sigLine, "/* reviewed */")
		}
	}
}

// replaceWord substitutes whole-identifier occurrences of old with new.
func replaceWord(line, old, new string) string {
	var b strings.Builder
	i := 0
	for i < len(line) {
		j := strings.Index(line[i:], old)
		if j < 0 {
			b.WriteString(line[i:])
			break
		}
		j += i
		beforeOK := j == 0 || !isIdentByte(line[j-1])
		afterOK := j+len(old) >= len(line) || !isIdentByte(line[j+len(old)])
		if beforeOK && afterOK {
			b.WriteString(line[i:j])
			b.WriteString(new)
		} else {
			b.WriteString(line[i : j+len(old)])
		}
		i = j + len(old)
	}
	return b.String()
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
