// Code generation: synthesizes realistic C source files that the pattern
// editors (patterns.go, nonsec.go) can reliably mutate. Every generated
// function embeds the anchors the editors look for: parameter validation
// targets (pointer + length), a loop with array accesses, pointer
// dereferences, library/function calls, conditional statements, and memory
// operations.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

var (
	verbs = []string{
		"parse", "read", "write", "init", "update", "handle", "process",
		"validate", "compute", "alloc", "release", "send", "recv", "decode",
		"encode", "flush", "copy", "scan", "emit", "load", "store", "probe",
		"queue", "drain", "map", "bind", "resolve", "build", "walk", "merge",
	}
	nouns = []string{
		"buf", "pkt", "hdr", "frame", "msg", "req", "resp", "node", "entry",
		"chunk", "block", "page", "record", "field", "token", "stream",
		"segment", "table", "cache", "queue", "ring", "slot", "key", "attr",
		"opt", "param", "event", "state", "conf", "desc",
	}
	scalarNames = []string{
		"len", "size", "count", "idx", "offset", "pos", "num", "total",
		"width", "depth", "limit", "span", "nbytes", "avail",
	}
	structNames = []string{
		"ctx", "dev", "session", "conn", "parser", "codec", "handle",
		"client", "worker", "channel",
	}
	callees = []string{
		"transform", "lookup", "hash", "checksum", "normalize", "convert",
		"classify", "sanitize", "translate", "project", "reduce",
	}
	helperSuffixes = []string{
		"state", "flags", "entry", "limit", "quota", "index", "mode",
	}
)

// srcFile is a generated C source file held as lines so the pattern editors
// can do precise line-level edits.
type srcFile struct {
	path  string
	lines []string
	// fn holds the anchor metadata of the primary (editable) function.
	fn fnAnchors
}

// fnAnchors records where the interesting statements of the primary function
// live. Indices are 0-based into srcFile.lines and are only valid until the
// first edit; editors re-locate anchors by content when needed.
type fnAnchors struct {
	name       string
	sigLine    int // function signature line
	bodyStart  int // line of '{'
	bodyEnd    int // line of closing '}'
	ptrParam   string
	lenParam   string
	structVar  string
	arrayVar   string
	loopLine   int
	arrayLine  int // array write inside the loop
	derefLine  int // pointer dereference statement
	callLine   int // helper call statement
	ifLine     int // existing if statement
	memcpyLine int // memory operation
	returnLine int // final return
	retVar     string
	idxVar     string
	countVar   string
	tmpBuf     string
	calleeName string
}

func (f *srcFile) text() string { return strings.Join(f.lines, "\n") + "\n" }

// clone returns a deep copy so before/after versions do not alias.
func (f *srcFile) clone() *srcFile {
	out := &srcFile{path: f.path, fn: f.fn}
	out.lines = append([]string(nil), f.lines...)
	return out
}

// insert puts text at index i, shifting the rest down.
func (f *srcFile) insert(i int, text ...string) {
	if i < 0 {
		i = 0
	}
	if i > len(f.lines) {
		i = len(f.lines)
	}
	f.lines = append(f.lines[:i], append(append([]string{}, text...), f.lines[i:]...)...)
}

// find returns the index of the first line at or after from satisfying pred,
// or -1.
func (f *srcFile) find(from int, pred func(string) bool) int {
	if from < 0 {
		from = 0
	}
	for i := from; i < len(f.lines); i++ {
		if pred(f.lines[i]) {
			return i
		}
	}
	return -1
}

// findContains locates the first line containing substr at or after from.
func (f *srcFile) findContains(from int, substr string) int {
	return f.find(from, func(s string) bool { return strings.Contains(s, substr) })
}

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

// ident builds a name like "parse_hdr" or "pkt_count".
func ident(rng *rand.Rand, a, b []string) string {
	return pick(rng, a) + "_" + pick(rng, b)
}

// genFile synthesizes a C file with a struct definition, a helper function,
// and a primary function rich in anchors. The id keeps paths unique per
// repository.
func genFile(rng *rand.Rand, id int) *srcFile {
	f := &srcFile{}
	noun := pick(rng, nouns)
	structVar := pick(rng, structNames)
	fnName := ident(rng, verbs, nouns)
	helper := pick(rng, callees)
	helperField := pick(rng, helperSuffixes)
	f.path = fmt.Sprintf("src/%s_%s_%d.c", fnName, noun, id)
	f.fn = fnAnchors{
		name:       fnName,
		ptrParam:   noun,
		lenParam:   pick(rng, scalarNames),
		structVar:  structVar,
		retVar:     "ret",
		idxVar:     "i",
		countVar:   pick(rng, scalarNames),
		tmpBuf:     "tmp",
		calleeName: helper,
	}
	a := &f.fn
	for a.countVar == a.lenParam {
		a.countVar = pick(rng, scalarNames)
	}
	bufSize := 32 << rng.Intn(3) // 32/64/128
	mask := []string{"0xff", "0x7f", "0x3f", "0x1f"}[rng.Intn(4)]
	threshold := 4 + rng.Intn(60)

	add := func(line string) { f.lines = append(f.lines, line) }
	add("#include <string.h>")
	add("#include <stdlib.h>")
	if rng.Intn(2) == 0 {
		add("#include <stdio.h>")
	}
	add("")
	add(fmt.Sprintf("struct %s_state {", noun))
	add("\tint " + helperField + ";")
	add("\tint refs;")
	add(fmt.Sprintf("\tstruct %s_state *next;", noun))
	add("\tunsigned int flags;")
	add("};")
	add("")
	// Helper function (gives the file a second function and a call target).
	add(fmt.Sprintf("static int %s(int value, int scale)", helper))
	add("{")
	switch rng.Intn(3) {
	case 0:
		add(fmt.Sprintf("\treturn (value * scale) %% %d;", 7+rng.Intn(97)))
	case 1:
		add(fmt.Sprintf("\treturn (value ^ scale) & %s;", mask))
	default:
		add(fmt.Sprintf("\treturn value + scale * %d;", 1+rng.Intn(9)))
	}
	add("}")
	add("")
	// Primary function.
	a.sigLine = len(f.lines)
	add(fmt.Sprintf("static int %s(struct %s_state *%s, char *%s, int %s)",
		a.name, noun, a.structVar, a.ptrParam, a.lenParam))
	a.bodyStart = len(f.lines)
	add("{")
	add(fmt.Sprintf("\tint %s;", a.idxVar))
	add(fmt.Sprintf("\tint %s = 0;", a.retVar))
	a.derefLine = len(f.lines)
	add(fmt.Sprintf("\tint %s = %s->%s;", a.countVar, a.structVar, helperField))
	add(fmt.Sprintf("\tchar %s[%d];", a.tmpBuf, bufSize))
	if rng.Intn(2) == 0 {
		add(fmt.Sprintf("\tstruct %s_state *cursor = %s->next;", noun, a.structVar))
	}
	// Optional extra locals and prologue logic: structural diversity so
	// commits from the same class do not collapse onto one feature point.
	for k := rng.Intn(3); k > 0; k-- {
		name := pick(rng, scalarNames) + "2"
		switch rng.Intn(3) {
		case 0:
			add(fmt.Sprintf("\tint %s = %d;", name, rng.Intn(128)))
		case 1:
			add(fmt.Sprintf("\tunsigned int %s = %s->flags;", name, a.structVar))
		default:
			add(fmt.Sprintf("\tint %s = %s / %d;", name, a.lenParam, 1+rng.Intn(7)))
		}
	}
	if rng.Intn(3) == 0 {
		add(fmt.Sprintf("\tif (%s->refs == 0)", a.structVar))
		add(fmt.Sprintf("\t\t%s->refs = 1;", a.structVar))
	}
	if rng.Intn(4) == 0 {
		add(fmt.Sprintf("\twhile (%s > %d) {", a.countVar, 64+rng.Intn(192)))
		add(fmt.Sprintf("\t\t%s >>= 1;", a.countVar))
		add("\t}")
	}
	add("")
	a.loopLine = len(f.lines)
	add(fmt.Sprintf("\tfor (%s = 0; %s < %s; %s++) {", a.idxVar, a.idxVar, a.lenParam, a.idxVar))
	a.arrayLine = len(f.lines)
	a.arrayVar = a.ptrParam
	add(fmt.Sprintf("\t\t%s[%s] = %s(%s[%s], %s);", a.ptrParam, a.idxVar, helper, a.ptrParam, a.idxVar, a.countVar))
	add(fmt.Sprintf("\t\t%s += %s[%s] & %s;", a.retVar, a.ptrParam, a.idxVar, mask))
	if rng.Intn(3) == 0 {
		add(fmt.Sprintf("\t\tif (%s[%s] == 0)", a.ptrParam, a.idxVar))
		add("\t\t\tcontinue;")
	}
	add("\t}")
	add("")
	a.ifLine = len(f.lines)
	add(fmt.Sprintf("\tif (%s > %d) {", a.countVar, threshold))
	a.callLine = len(f.lines)
	add(fmt.Sprintf("\t\t%s = %s(%s, %d);", a.retVar, helper, a.retVar, 1+rng.Intn(15)))
	add(fmt.Sprintf("\t\t%s->flags |= %du;", a.structVar, 1<<rng.Intn(5)))
	add("\t}")
	add("")
	a.memcpyLine = len(f.lines)
	add(fmt.Sprintf("\tmemcpy(%s, %s, %s);", a.tmpBuf, a.ptrParam, a.lenParam))
	add(fmt.Sprintf("\t%s->refs++;", a.structVar))
	a.returnLine = len(f.lines)
	add(fmt.Sprintf("\treturn %s;", a.retVar))
	a.bodyEnd = len(f.lines)
	add("}")
	return f
}
