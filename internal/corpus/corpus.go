// Package corpus synthesizes the patch populations PatchDB is built from: a
// set of git repositories whose commits are security patches (12 pattern
// classes, Table V) and non-security patches (features, perf/logic fixes,
// refactorings, cleanups) in configurable mixtures. It substitutes for the
// paper's 313 GitHub repositories and 6M wild commits while preserving the
// properties the pipeline depends on: the syntactic feature structure of
// each class, the NVD-vs-wild type-distribution discrepancy (Fig. 6), and
// the 6-10% base rate of silent security patches in the wild.
package corpus

import (
	"fmt"
	"math/rand"

	"patchdb/internal/gitrepo"
)

// Mix is a probability distribution over the 12 security pattern classes
// (index 0 = Pattern 1). It need not be normalized; weights are relative.
type Mix [NumPatterns]float64

// DefaultNVDMix approximates the NVD-based dataset's long-tail type
// distribution from Fig. 6: Type 11 (redesign) is the head class, three
// classes cover ~60%, and most tail classes sit under 5%.
var DefaultNVDMix = Mix{
	8,  // 1 bound checks
	7,  // 2 null checks
	16, // 3 other sanity checks
	4,  // 4 variable definitions
	6,  // 5 variable values
	2,  // 6 function declarations
	3,  // 7 function parameters
	14, // 8 function calls
	2,  // 9 jump statements
	4,  // 10 statement moves
	33, // 11 redesign
	1,  // 12 others
}

// DefaultWildMix approximates the wild population Fig. 6 reports after
// nearest-link discovery: Type 8 (function calls) becomes the head class
// and Type 11 falls to ~5%.
var DefaultWildMix = Mix{
	12, // 1
	10, // 2
	17, // 3
	5,  // 4
	9,  // 5
	2,  // 6
	2,  // 7
	30, // 8
	1,  // 9
	6,  // 10
	5,  // 11
	1,  // 12
}

// NonSecMix weights the non-security classes (index 0 = NonSecFeature).
type NonSecMix [NumNonSecClasses]float64

// DefaultNonSecMix is the composition of the cleaned non-security dataset
// (bulk hardening weight 0: that family is wild-only, see WildHardeningRate).
var DefaultNonSecMix = NonSecMix{25, 20, 25, 15, 15, 0}

// Config parameterizes a Generator.
type Config struct {
	// Seed drives all randomness; equal seeds give identical corpora.
	Seed int64
	// Repos is the number of repositories commits are spread over
	// (default 40; the paper's pipeline uses 313).
	Repos int
	// SecurityRate is the fraction of security patches among wild commits
	// (default 0.08, the paper's 6-10% band).
	SecurityRate float64
	// NVDMix is the pattern mixture of NVD-indexed security patches.
	NVDMix Mix
	// WildMix is the pattern mixture of silent security patches in the wild.
	WildMix Mix
	// NonSec is the non-security class mixture.
	NonSec NonSecMix
	// WildHardeningRate is the fraction of wild non-security commits drawn
	// from the bulk-hardening family that the cleaned training negatives do
	// not contain (default 0.10). It models the NVD-vs-wild distribution
	// discrepancy the paper identifies as the reason confidence-ranking
	// augmentation baselines underperform.
	WildHardeningRate float64
}

func (c Config) withDefaults() Config {
	if c.Repos <= 0 {
		c.Repos = 40
	}
	if c.SecurityRate <= 0 {
		c.SecurityRate = 0.08
	}
	if c.NVDMix == (Mix{}) {
		c.NVDMix = DefaultNVDMix
	}
	if c.WildMix == (Mix{}) {
		c.WildMix = DefaultWildMix
	}
	if c.NonSec == (NonSecMix{}) {
		c.NonSec = DefaultNonSecMix
	}
	if c.WildHardeningRate == 0 {
		c.WildHardeningRate = 0.16
	}
	return c
}

// LabeledCommit couples a generated commit with its ground truth, which the
// verification oracle replays in place of the paper's human experts.
type LabeledCommit struct {
	Commit *gitrepo.Commit
	// Security is the ground-truth label.
	Security bool
	// Pattern is the security pattern class (zero if non-security).
	Pattern Pattern
	// NonSec is the non-security class (zero if security).
	NonSec NonSecClass
	// CVE is the assigned CVE id for NVD-indexed patches ("" otherwise).
	CVE string
}

// Generator produces labeled commits into an in-memory repository store.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	store  *gitrepo.Store
	repos  []*gitrepo.Repo
	fileID int
	cveID  int
	year   int
}

// NewGenerator creates a generator with its repository fleet.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		store: gitrepo.NewStore(),
		year:  1999,
	}
	for i := 0; i < cfg.Repos; i++ {
		name := fmt.Sprintf("%s/%s-%s", pick(g.rng, orgNames), pick(g.rng, verbs), pick(g.rng, nouns))
		r := gitrepo.NewRepo(fmt.Sprintf("%s-%d", name, i))
		if err := g.store.Add(r); err == nil {
			g.repos = append(g.repos, r)
		}
	}
	return g
}

var orgNames = []string{
	"libfoo", "netio", "imagetools", "coreutils-ng", "kernel-widgets",
	"mediaproc", "cryptokit", "dbengine", "protostack", "fsdriver",
}

var authorNames = []string{
	"Alice Hu", "Bo Chen", "Carol Diaz", "Deepak Rao", "Elena Petrova",
	"Farid Khan", "Grace Lim", "Hiro Tanaka", "Ivan Novak", "Jun Park",
}

// Store exposes the underlying repository store (the pipeline's "GitHub").
func (g *Generator) Store() *gitrepo.Store { return g.store }

// sample draws an index from a weight vector.
func sampleWeights(rng *rand.Rand, w []float64) int {
	total := 0.0
	for _, v := range w {
		total += v
	}
	r := rng.Float64() * total
	for i, v := range w {
		r -= v
		if r < 0 {
			return i
		}
	}
	return len(w) - 1
}

func (g *Generator) nextDate() string {
	if g.rng.Intn(20) == 0 && g.year < 2019 {
		g.year++
	}
	return fmt.Sprintf("%d-%02d-%02d", g.year, 1+g.rng.Intn(12), 1+g.rng.Intn(28))
}

// SecurityCommit generates one security patch commit drawn from the given
// pattern mixture.
func (g *Generator) SecurityCommit(mix Mix) *LabeledCommit {
	p := Pattern(sampleWeights(g.rng, mix[:]) + 1)
	return g.securityCommitOfPattern(p)
}

// SecurityCommitOfPattern generates one security patch of an exact class
// (used by tests and ablations).
func (g *Generator) SecurityCommitOfPattern(p Pattern) *LabeledCommit {
	return g.securityCommitOfPattern(p)
}

func (g *Generator) securityCommitOfPattern(p Pattern) *LabeledCommit {
	repo := g.repos[g.rng.Intn(len(g.repos))]
	g.fileID++
	before := genFile(g.rng, g.fileID)
	repo.SeedFile(before.path, before.text())
	after := applySecurityPattern(before, p, g.rng)
	g.jitter(after)
	// An editor can occasionally no-op when its anchor is missing; a commit
	// must change something, so fall back to a guaranteed-effective edit.
	if after.text() == before.text() {
		after = applySecurityPattern(before, PatternNullCheck, g.rng)
	}
	msg := g.securityMessage(p, before.fn.name)
	c := repo.Commit(pick(g.rng, authorNames), g.nextDate(), msg,
		map[string]string{before.path: after.text()})
	return &LabeledCommit{Commit: c, Security: true, Pattern: p}
}

// jitter models real commits bundling incidental edits with the main
// change: comments, renames, or small tweaks land in the same diff. It
// widens the per-class feature clusters so patches of different labels
// genuinely overlap in feature space.
func (g *Generator) jitter(f *srcFile) {
	if g.rng.Float64() < 0.35 {
		applyCleanup(f, &f.fn, g.rng)
	}
	if g.rng.Float64() < 0.2 {
		applyRefactor(f, &f.fn, g.rng)
	}
	if g.rng.Float64() < 0.15 {
		applyLogic(f, &f.fn, g.rng)
	}
}

// NonSecurityCommit generates one non-security commit from the configured
// class mixture.
func (g *Generator) NonSecurityCommit() *LabeledCommit {
	c := NonSecClass(sampleWeights(g.rng, g.cfg.NonSec[:]) + 1)
	return g.nonSecurityCommitOfClass(c)
}

// NonSecurityCommitOfClass generates one non-security commit of an exact
// class.
func (g *Generator) NonSecurityCommitOfClass(cls NonSecClass) *LabeledCommit {
	return g.nonSecurityCommitOfClass(cls)
}

func (g *Generator) nonSecurityCommitOfClass(cls NonSecClass) *LabeledCommit {
	repo := g.repos[g.rng.Intn(len(g.repos))]
	g.fileID++
	before := genFile(g.rng, g.fileID)
	repo.SeedFile(before.path, before.text())
	after := applyNonSecurity(before, cls, g.rng)
	g.jitter(after)
	if after.text() == before.text() {
		after = applyNonSecurity(before, NonSecCleanup, g.rng)
	}
	msg := g.nonSecurityMessage(cls, before.fn.name)
	c := repo.Commit(pick(g.rng, authorNames), g.nextDate(), msg,
		map[string]string{before.path: after.text()})
	return &LabeledCommit{Commit: c, NonSec: cls}
}

// GenerateNVD produces n NVD-indexed security patches (NVD mixture) with
// CVE ids assigned.
func (g *Generator) GenerateNVD(n int) []*LabeledCommit {
	out := make([]*LabeledCommit, 0, n)
	for i := 0; i < n; i++ {
		lc := g.SecurityCommit(g.cfg.NVDMix)
		g.cveID++
		lc.CVE = fmt.Sprintf("CVE-%d-%05d", 2002+g.rng.Intn(18), 10000+g.cveID)
		out = append(out, lc)
	}
	return out
}

// GenerateWild produces n wild commits: SecurityRate of them are silent
// security patches (wild mixture), the rest non-security.
func (g *Generator) GenerateWild(n int) []*LabeledCommit {
	out := make([]*LabeledCommit, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case g.rng.Float64() < g.cfg.SecurityRate:
			out = append(out, g.SecurityCommit(g.cfg.WildMix))
		case g.rng.Float64() < g.cfg.WildHardeningRate:
			out = append(out, g.nonSecurityCommitOfClass(NonSecHardening))
		default:
			out = append(out, g.NonSecurityCommit())
		}
	}
	return out
}

// GenerateNonSecurity produces n non-security commits (used to build the
// cleaned negative training set).
func (g *Generator) GenerateNonSecurity(n int) []*LabeledCommit {
	out := make([]*LabeledCommit, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.NonSecurityCommit())
	}
	return out
}

// securityMessage renders a commit message. Mirroring the paper's
// observation that 61% of security patches do not mention security in their
// description, most messages are neutral.
func (g *Generator) securityMessage(p Pattern, fn string) string {
	if g.rng.Float64() < 0.39 {
		explicit := []string{
			"fix out-of-bounds access in %s",
			"%s: prevent buffer overflow",
			"fix NULL pointer dereference in %s",
			"CVE fix: validate input in %s",
			"%s: fix use-after-free",
			"fix integer overflow in %s",
		}
		return fmt.Sprintf(pick(g.rng, explicit), fn)
	}
	neutral := []string{
		"fix crash in %s",
		"%s: handle truncated input",
		"fix %s corner case",
		"%s: correct state handling",
		"don't trust caller-provided sizes in %s",
		"fix wrong behaviour of %s on malformed data",
		"%s: robustness fix",
	}
	_ = p
	return fmt.Sprintf(pick(g.rng, neutral), fn)
}

func (g *Generator) nonSecurityMessage(cls NonSecClass, fn string) string {
	var pool []string
	switch cls {
	case NonSecFeature:
		pool = []string{"add stats interface for %s", "%s: add new option", "support extended mode in %s"}
	case NonSecPerf:
		pool = []string{"speed up %s", "%s: avoid needless work", "optimize hot path of %s"}
	case NonSecLogic:
		pool = []string{"fix accounting in %s", "%s: fix wrong result", "correct %s threshold"}
	case NonSecRefactor:
		pool = []string{"refactor %s", "%s: rename locals for clarity", "simplify %s"}
	case NonSecHardening:
		pool = []string{"harden %s per review guidelines", "%s: defensive checks", "apply input validation policy to %s"}
	default:
		pool = []string{"cleanup %s", "%s: style fixes", "docs for %s"}
	}
	return fmt.Sprintf(pick(g.rng, pool), fn)
}
