package corpus

import (
	"strings"
	"testing"

	"patchdb/internal/cast"
	"patchdb/internal/diff"
)

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(Config{Seed: 5})
	g2 := NewGenerator(Config{Seed: 5})
	a := g1.GenerateWild(50)
	b := g2.GenerateWild(50)
	for i := range a {
		if a[i].Commit.Hash != b[i].Commit.Hash || a[i].Security != b[i].Security {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	g3 := NewGenerator(Config{Seed: 6})
	c := g3.GenerateWild(50)
	same := 0
	for i := range a {
		if a[i].Commit.Hash == c[i].Commit.Hash {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestSecurityRate(t *testing.T) {
	g := NewGenerator(Config{Seed: 7})
	wild := g.GenerateWild(4000)
	sec := 0
	for _, lc := range wild {
		if lc.Security {
			sec++
		}
	}
	rate := float64(sec) / float64(len(wild))
	if rate < 0.05 || rate > 0.12 {
		t.Errorf("wild security rate = %.3f, want within the paper's 6-10%% band (±)", rate)
	}
}

func TestLabelsConsistent(t *testing.T) {
	g := NewGenerator(Config{Seed: 8})
	for _, lc := range g.GenerateWild(200) {
		if lc.Security && lc.Pattern == 0 {
			t.Error("security commit without pattern")
		}
		if !lc.Security && lc.NonSec == 0 {
			t.Error("non-security commit without class")
		}
		if lc.Security && lc.NonSec != 0 {
			t.Error("security commit carries a non-security class")
		}
	}
}

func TestNVDCommitsHaveCVEs(t *testing.T) {
	g := NewGenerator(Config{Seed: 9})
	for _, lc := range g.GenerateNVD(50) {
		if !lc.Security {
			t.Error("NVD commit not security")
		}
		if !strings.HasPrefix(lc.CVE, "CVE-") {
			t.Errorf("CVE id = %q", lc.CVE)
		}
	}
}

func TestPatchesNonEmptyAndParseable(t *testing.T) {
	g := NewGenerator(Config{Seed: 10})
	all := append(g.GenerateNVD(40), g.GenerateWild(150)...)
	for _, lc := range all {
		p := lc.Commit.Patch()
		if len(p.Files) == 0 {
			t.Fatalf("empty patch for %s commit %q (%v/%v)",
				label(lc), lc.Commit.Message, lc.Pattern, lc.NonSec)
		}
		// Round-trip through the text format.
		if _, err := diff.Parse(diff.Format(p)); err != nil {
			t.Fatalf("patch of %s does not re-parse: %v", lc.Commit.Hash, err)
		}
	}
}

func label(lc *LabeledCommit) string {
	if lc.Security {
		return "security"
	}
	return "non-security"
}

func TestGeneratedFilesParse(t *testing.T) {
	g := NewGenerator(Config{Seed: 11})
	for _, lc := range g.GenerateWild(150) {
		for path, content := range lc.Commit.After {
			if _, err := cast.Parse(content); err != nil {
				t.Fatalf("generated file %s does not parse: %v\n%s", path, err, content)
			}
		}
		for path, content := range lc.Commit.Before {
			if _, err := cast.Parse(content); err != nil {
				t.Fatalf("pre-patch file %s does not parse: %v", path, err)
			}
		}
	}
}

func TestMixInfluencesDistribution(t *testing.T) {
	var onlyRedesign Mix
	onlyRedesign[PatternRedesign-1] = 1
	g := NewGenerator(Config{Seed: 12, NVDMix: onlyRedesign})
	for _, lc := range g.GenerateNVD(30) {
		if lc.Pattern != PatternRedesign {
			t.Fatalf("pattern = %v with redesign-only mix", lc.Pattern)
		}
	}
}

func TestEveryPatternProducesDistinctEdit(t *testing.T) {
	g := NewGenerator(Config{Seed: 13})
	for p := Pattern(1); int(p) <= NumPatterns; p++ {
		lc := g.SecurityCommitOfPattern(p)
		if lc.Pattern != p {
			t.Errorf("pattern label = %v, want %v", lc.Pattern, p)
		}
		patch := lc.Commit.Patch()
		if len(patch.Files) == 0 {
			t.Errorf("pattern %v produced an empty patch", p)
		}
	}
}

func TestEveryNonSecClassProducesEdit(t *testing.T) {
	g := NewGenerator(Config{Seed: 14})
	for c := NonSecClass(1); int(c) <= NumNonSecClasses; c++ {
		lc := g.NonSecurityCommitOfClass(c)
		if lc.NonSec != c {
			t.Errorf("class label = %v, want %v", lc.NonSec, c)
		}
		if len(lc.Commit.Patch().Files) == 0 {
			t.Errorf("class %v produced an empty patch", c)
		}
	}
}

func TestPatternStrings(t *testing.T) {
	for p := Pattern(1); int(p) <= NumPatterns; p++ {
		if p.String() == "unknown" {
			t.Errorf("pattern %d unnamed", p)
		}
	}
	if Pattern(0).String() != "unknown" {
		t.Error("invalid pattern named")
	}
	for c := NonSecClass(1); int(c) <= NumNonSecClasses; c++ {
		if c.String() == "unknown" {
			t.Errorf("class %d unnamed", c)
		}
	}
}

func TestCommitMessagesMostlyNeutral(t *testing.T) {
	g := NewGenerator(Config{Seed: 15})
	security := g.GenerateNVD(300)
	explicit := 0
	for _, lc := range security {
		msg := strings.ToLower(lc.Commit.Message)
		if strings.Contains(msg, "overflow") || strings.Contains(msg, "cve") ||
			strings.Contains(msg, "null pointer") || strings.Contains(msg, "use-after-free") ||
			strings.Contains(msg, "out-of-bounds") || strings.Contains(msg, "validate input") {
			explicit++
		}
	}
	frac := float64(explicit) / float64(len(security))
	// The paper reports 61% of security patches do NOT mention security.
	if frac < 0.2 || frac > 0.6 {
		t.Errorf("explicit-security message fraction = %.2f, want ~0.39", frac)
	}
}

func TestStoreHoldsAllCommits(t *testing.T) {
	g := NewGenerator(Config{Seed: 16})
	wild := g.GenerateWild(100)
	for _, lc := range wild {
		if _, ok := g.Store().Lookup(lc.Commit.Hash); !ok {
			t.Fatalf("commit %s missing from store", lc.Commit.Hash)
		}
	}
}
