package corpus

import (
	"context"
	"fmt"
	"testing"

	"patchdb/internal/core/nearestlink"
	"patchdb/internal/features"
)

// TestCalibrationNearestLinkRatio checks the pipeline's central empirical
// property: candidates selected by nearest link search from the wild contain
// a multiple of the base rate of security patches (the paper reports ~3x:
// 22-30% vs 6-10%).
func TestCalibrationNearestLinkRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	g := NewGenerator(Config{Seed: 42})
	seedCommits := g.GenerateNVD(200)
	wild := g.GenerateWild(3000)

	seedX := make([][]float64, len(seedCommits))
	for i, lc := range seedCommits {
		seedX[i] = features.Extract(lc.Commit.Patch(), 0)
	}
	wildX := make([][]float64, len(wild))
	baseRate := 0
	for i, lc := range wild {
		wildX[i] = features.Extract(lc.Commit.Patch(), 0)
		if lc.Security {
			baseRate++
		}
	}
	links, err := nearestlink.Search(context.Background(), seedX, wildX, nil)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, l := range links {
		if wild[l.Wild].Security {
			hits++
		}
	}
	ratio := float64(hits) / float64(len(links))
	base := float64(baseRate) / float64(len(wild))
	t.Logf("base rate=%.1f%% candidate ratio=%.1f%% (%d/%d links)", 100*base, 100*ratio, hits, len(links))
	fmt.Printf("CALIBRATION base=%.3f ratio=%.3f\n", base, ratio)
	if ratio < 1.5*base {
		t.Errorf("nearest link ratio %.3f is not meaningfully above base rate %.3f", ratio, base)
	}
}
