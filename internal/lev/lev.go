// Package lev provides Levenshtein edit distance over strings and token
// sequences, used by PatchDB's hunk-similarity features (features 49-56).
package lev

// Distance returns the Levenshtein distance between two string slices
// (token-level edit distance). It runs in O(len(a)*len(b)) time and
// O(min(len(a),len(b))) space.
func Distance(a, b []string) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	// b is now the shorter side.
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// DistanceStrings returns the byte-level Levenshtein distance between two
// strings.
func DistanceStrings(a, b string) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
