package lev

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDistanceTable(t *testing.T) {
	cases := []struct {
		a, b string // space-separated tokens
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "a b c", 3},
		{"a b c", "a b c", 0},
		{"a b c", "a x c", 1},
		{"a b c", "x y z", 3},
		{"a b c d", "b c d", 1},
		{"a b", "b a", 2},
		{"if ( x )", "if ( y )", 1},
		{"kitten", "sitting", 1}, // single differing token: one substitution
	}
	for _, tc := range cases {
		if got := Distance(fields(tc.a), fields(tc.b)); got != tc.want {
			t.Errorf("Distance(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func fields(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Fields(s)
}

func TestDistanceStringsClassic(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"", "abc", 3},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
	}
	for _, tc := range cases {
		if got := DistanceStrings(tc.a, tc.b); got != tc.want {
			t.Errorf("DistanceStrings(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestQuickProperties(t *testing.T) {
	symmetric := func(a, b []string) bool {
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 300}); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a []string) bool {
		return Distance(a, a) == 0
	}
	if err := quick.Check(identity, &quick.Config{MaxCount: 300}); err != nil {
		t.Error("identity:", err)
	}
	bounded := func(a, b []string) bool {
		d := Distance(a, b)
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		minDiff := len(a) - len(b)
		if minDiff < 0 {
			minDiff = -minDiff
		}
		return d >= minDiff && d <= maxLen
	}
	if err := quick.Check(bounded, &quick.Config{MaxCount: 300}); err != nil {
		t.Error("bounds:", err)
	}
	triangle := func(a, b, c []string) bool {
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("triangle inequality:", err)
	}
}
