package features

import (
	"patchdb/internal/ctoken"
	"patchdb/internal/diff"
)

// Sequence markers injected between patch regions so the RNN can tell
// removed from added code and hunk boundaries, mirroring the paper's
// token-stream encoding ("the source code of a given patch as a list of
// tokens").
const (
	TokHunk    = "<hunk>"
	TokRemoved = "<->"
	TokAdded   = "<+>"
)

// TokenSequence flattens a patch into the abstracted token stream consumed
// by the RNN classifier: per hunk, a hunk marker, then the removed lines'
// tokens behind a removal marker, then the added lines' tokens behind an
// addition marker. Identifiers and literals are abstracted (VAR/FUNC/NUM/
// STR) so the vocabulary stays small and models generalize across
// projects.
func TokenSequence(p *diff.Patch) []string {
	var seq []string
	for _, h := range p.HunkList() {
		seq = append(seq, TokHunk)
		seq = appendLines(seq, h, diff.Removed, TokRemoved)
		seq = appendLines(seq, h, diff.Added, TokAdded)
	}
	return seq
}

func appendLines(seq []string, h *diff.Hunk, kind diff.LineKind, marker string) []string {
	first := true
	for _, ln := range h.Lines {
		if ln.Kind != kind {
			continue
		}
		if first {
			seq = append(seq, marker)
			first = false
		}
		seq = append(seq, ctoken.Abstract(ctoken.LexLine(ln.Text))...)
	}
	return seq
}
