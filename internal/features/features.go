// Package features implements the 60-dimensional syntactic feature vector of
// PatchDB Table I. Features are extracted directly from a parsed patch (the
// patch is not a complete compilation unit, so the extractor is a line/token
// level parser rather than a full compiler front end, exactly as in the
// paper).
package features

import (
	"strings"

	"patchdb/internal/ctoken"
	"patchdb/internal/diff"
	"patchdb/internal/lev"
)

// Dim is the dimensionality of the feature space (Table I lists 60 features).
const Dim = 60

// Indices of notable features, exported for tests and ablations.
const (
	IdxChangedLines   = 0  // feature 1
	IdxHunks          = 1  // feature 2
	IdxAddedLines     = 2  // features 3-6 start
	IdxAddedChars     = 6  // features 7-10 start
	IdxIfStmts        = 10 // features 11-14 start
	IdxLoops          = 14 // features 15-18
	IdxCalls          = 18 // features 19-22
	IdxArith          = 22 // features 23-26
	IdxRel            = 26 // features 27-30
	IdxLogic          = 30 // features 31-34
	IdxBit            = 34 // features 35-38
	IdxMem            = 38 // features 39-42
	IdxVars           = 42 // features 43-46
	IdxFuncsTotal     = 46 // feature 47
	IdxFuncsNet       = 47 // feature 48
	IdxLevMeanRaw     = 48 // features 49-51
	IdxLevMeanAbs     = 51 // features 52-54
	IdxSameHunksRaw   = 54 // feature 55
	IdxSameHunksAbs   = 55 // feature 56
	IdxAffectedFiles  = 56 // feature 57
	IdxAffectedFilesP = 57 // feature 58
	IdxAffectedFuncs  = 58 // feature 59
	IdxAffectedFuncsP = 59 // feature 60
)

// names holds a short label per dimension, aligned with Table I.
var names = [Dim]string{
	"changed_lines", "hunks",
	"added_lines", "removed_lines", "total_lines", "net_lines",
	"added_chars", "removed_chars", "total_chars", "net_chars",
	"added_ifs", "removed_ifs", "total_ifs", "net_ifs",
	"added_loops", "removed_loops", "total_loops", "net_loops",
	"added_calls", "removed_calls", "total_calls", "net_calls",
	"added_arith", "removed_arith", "total_arith", "net_arith",
	"added_rel", "removed_rel", "total_rel", "net_rel",
	"added_logic", "removed_logic", "total_logic", "net_logic",
	"added_bit", "removed_bit", "total_bit", "net_bit",
	"added_mem", "removed_mem", "total_mem", "net_mem",
	"added_vars", "removed_vars", "total_vars", "net_vars",
	"total_modified_funcs", "net_modified_funcs",
	"lev_mean_raw", "lev_min_raw", "lev_max_raw",
	"lev_mean_abs", "lev_min_abs", "lev_max_abs",
	"same_hunks_raw", "same_hunks_abs",
	"affected_files", "affected_files_pct",
	"affected_funcs", "affected_funcs_pct",
}

// Names returns the label of every feature dimension in order.
func Names() []string {
	out := make([]string, Dim)
	copy(out, names[:])
	return out
}

// Name returns the label of dimension i.
func Name(i int) string {
	if i < 0 || i >= Dim {
		return "invalid"
	}
	return names[i]
}

// counters aggregates one token family over added and removed lines.
type counters struct {
	added, removed int
}

func (c counters) write(v []float64, base int) {
	v[base] = float64(c.added)
	v[base+1] = float64(c.removed)
	v[base+2] = float64(c.added + c.removed)
	v[base+3] = float64(c.added - c.removed)
}

// Extract computes the 60-dimensional feature vector for a patch. totalFiles
// is the number of files in the commit before non-C/C++ stripping (used by
// feature 58, "% of affected files"); pass 0 if unknown and the stripped
// file count is used as the denominator.
func Extract(p *diff.Patch, totalFiles int) []float64 {
	v := make([]float64, Dim)

	var lines, chars, ifs, loops, calls, arith, rel, logic, bit, mem, vars counters
	funcsSeen := make(map[string]bool)
	var funcDefsAdded, funcDefsRemoved int

	var levRaw, levAbs []float64
	var sameRaw, sameAbs int
	hunkCount := 0

	for _, f := range p.Files {
		for _, h := range f.Hunks {
			hunkCount++
			if h.Section != "" {
				funcsSeen[f.NewPath+"::"+sectionFuncName(h.Section)] = true
			}
			var addedToksRaw, removedToksRaw []string
			var addedToksAbs, removedToksAbs []string
			for _, ln := range h.Lines {
				if ln.Kind == diff.Context {
					continue
				}
				toks := ctoken.LexLine(ln.Text)
				added := ln.Kind == diff.Added
				bump(&lines, added, 1)
				bump(&chars, added, len(ln.Text))
				if isFunctionDefLine(ln.Text, toks) {
					if added {
						funcDefsAdded++
					} else {
						funcDefsRemoved++
					}
				}
				for _, t := range toks {
					switch {
					case ctoken.IsIfKeyword(t):
						bump(&ifs, added, 1)
					case ctoken.IsLoopKeyword(t):
						bump(&loops, added, 1)
					}
					if ctoken.IsMemoryOperator(t) {
						bump(&mem, added, 1)
					}
					switch t.Kind {
					case ctoken.ArithmeticOp:
						bump(&arith, added, 1)
					case ctoken.RelationalOp:
						bump(&rel, added, 1)
					case ctoken.LogicalOp:
						bump(&logic, added, 1)
					case ctoken.BitwiseOp:
						bump(&bit, added, 1)
					case ctoken.Identifier:
						if t.Call {
							bump(&calls, added, 1)
						} else {
							bump(&vars, added, 1)
						}
					}
				}
				raw := ctoken.Texts(toks)
				abs := ctoken.Abstract(toks)
				if added {
					addedToksRaw = append(addedToksRaw, raw...)
					addedToksAbs = append(addedToksAbs, abs...)
				} else {
					removedToksRaw = append(removedToksRaw, raw...)
					removedToksAbs = append(removedToksAbs, abs...)
				}
			}
			dRaw := lev.Distance(removedToksRaw, addedToksRaw)
			dAbs := lev.Distance(removedToksAbs, addedToksAbs)
			levRaw = append(levRaw, float64(dRaw))
			levAbs = append(levAbs, float64(dAbs))
			if dRaw == 0 {
				sameRaw++
			}
			if dAbs == 0 {
				sameAbs++
			}
		}
	}

	v[IdxChangedLines] = float64(lines.added + lines.removed)
	v[IdxHunks] = float64(hunkCount)
	lines.write(v, IdxAddedLines)
	chars.write(v, IdxAddedChars)
	ifs.write(v, IdxIfStmts)
	loops.write(v, IdxLoops)
	calls.write(v, IdxCalls)
	arith.write(v, IdxArith)
	rel.write(v, IdxRel)
	logic.write(v, IdxLogic)
	bit.write(v, IdxBit)
	mem.write(v, IdxMem)
	vars.write(v, IdxVars)
	v[IdxFuncsTotal] = float64(len(funcsSeen))
	v[IdxFuncsNet] = float64(funcDefsAdded - funcDefsRemoved)

	mean, lo, hi := stats(levRaw)
	v[IdxLevMeanRaw], v[IdxLevMeanRaw+1], v[IdxLevMeanRaw+2] = mean, lo, hi
	mean, lo, hi = stats(levAbs)
	v[IdxLevMeanAbs], v[IdxLevMeanAbs+1], v[IdxLevMeanAbs+2] = mean, lo, hi
	v[IdxSameHunksRaw] = float64(sameRaw)
	v[IdxSameHunksAbs] = float64(sameAbs)

	affected := len(p.Files)
	v[IdxAffectedFiles] = float64(affected)
	denomFiles := totalFiles
	if denomFiles < affected {
		denomFiles = affected
	}
	if denomFiles > 0 {
		v[IdxAffectedFilesP] = float64(affected) / float64(denomFiles)
	}
	v[IdxAffectedFuncs] = float64(len(funcsSeen))
	if hunkCount > 0 {
		// Functions per hunk: a proxy for how spread out the change is.
		v[IdxAffectedFuncsP] = float64(len(funcsSeen)) / float64(hunkCount)
	}
	return v
}

func bump(c *counters, added bool, n int) {
	if added {
		c.added += n
	} else {
		c.removed += n
	}
}

func stats(xs []float64) (mean, lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	lo, hi = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return sum / float64(len(xs)), lo, hi
}

// sectionFuncName extracts the function name from a hunk section string such
// as "static int bit_write_UMC (Bit_Chain *dat, ...)".
func sectionFuncName(section string) string {
	if i := strings.IndexByte(section, '('); i >= 0 {
		section = section[:i]
	}
	fields := strings.Fields(section)
	if len(fields) == 0 {
		return section
	}
	name := fields[len(fields)-1]
	return strings.TrimLeft(name, "*&")
}

// isFunctionDefLine heuristically detects a C function definition line:
// starts at column 0 (no leading whitespace in the patch line), contains an
// identifier call-form, and is not a control-flow statement or a call
// statement ending in ';'.
func isFunctionDefLine(text string, toks []ctoken.Token) bool {
	if text == "" || text[0] == ' ' || text[0] == '\t' {
		return false
	}
	trimmed := strings.TrimSpace(text)
	if strings.HasSuffix(trimmed, ";") {
		return false
	}
	callIdx := -1
	for i, t := range toks {
		if t.Kind == ctoken.Keyword {
			switch t.Text {
			case "if", "while", "for", "switch", "return", "do", "else":
				return false
			}
		}
		if ctoken.IsFunctionCall(t) {
			callIdx = i
			break
		}
	}
	// A definition has at least a return type token before the name.
	return callIdx >= 1
}
