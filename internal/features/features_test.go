package features

import (
	"strings"
	"testing"

	"patchdb/internal/diff"
)

func mustParse(t *testing.T, text string) *diff.Patch {
	t.Helper()
	p, err := diff.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func patchFrom(t *testing.T, removed, added []string) *diff.Patch {
	t.Helper()
	var b strings.Builder
	b.WriteString("commit 0123456789abcdef\n")
	b.WriteString("diff --git a/f.c b/f.c\n--- a/f.c\n+++ b/f.c\n")
	b.WriteString("@@ -1,0 +1,0 @@ int fn(void)\n")
	b.WriteString(" context\n")
	for _, l := range removed {
		b.WriteString("-" + l + "\n")
	}
	for _, l := range added {
		b.WriteString("+" + l + "\n")
	}
	b.WriteString(" context\n")
	return mustParse(t, b.String())
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != Dim {
		t.Fatalf("Names() len = %d", len(names))
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Errorf("dim %d unnamed", i)
		}
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
	}
	if Name(-1) != "invalid" || Name(Dim) != "invalid" {
		t.Error("out-of-range Name not flagged")
	}
	if Name(IdxHunks) != "hunks" {
		t.Errorf("Name(IdxHunks) = %q", Name(IdxHunks))
	}
}

func TestBasicCounts(t *testing.T) {
	p := patchFrom(t,
		[]string{"if (x > 0)"},
		[]string{"if (x > 0 && y != NULL)", "return -1;"},
	)
	v := Extract(p, 0)
	check := func(idx int, want float64, label string) {
		t.Helper()
		if v[idx] != want {
			t.Errorf("%s = %v, want %v", label, v[idx], want)
		}
	}
	check(IdxChangedLines, 3, "changed lines")
	check(IdxHunks, 1, "hunks")
	check(IdxAddedLines, 2, "added lines")
	check(IdxAddedLines+1, 1, "removed lines")
	check(IdxAddedLines+2, 3, "total lines")
	check(IdxAddedLines+3, 1, "net lines")
	check(IdxIfStmts, 1, "added ifs")
	check(IdxIfStmts+1, 1, "removed ifs")
	check(IdxIfStmts+2, 2, "total ifs")
	check(IdxIfStmts+3, 0, "net ifs")
	// rel ops: added has > and != (2); removed has > (1)
	check(IdxRel, 2, "added rel")
	check(IdxRel+1, 1, "removed rel")
	// logic ops: added && (1)
	check(IdxLogic, 1, "added logic")
	check(IdxLogic+3, 1, "net logic")
}

func TestLoopCallMemCounts(t *testing.T) {
	p := patchFrom(t,
		[]string{"for (i = 0; i < n; i++)"},
		[]string{"while (n--)", "memcpy(dst, src, n);", "helper(n);"},
	)
	v := Extract(p, 0)
	if v[IdxLoops] != 1 || v[IdxLoops+1] != 1 {
		t.Errorf("loops = %v/%v", v[IdxLoops], v[IdxLoops+1])
	}
	// calls: memcpy + helper added (memcpy is both call and memory op)
	if v[IdxCalls] != 2 {
		t.Errorf("added calls = %v", v[IdxCalls])
	}
	if v[IdxMem] != 1 {
		t.Errorf("added mem ops = %v", v[IdxMem])
	}
}

func TestLevenshteinFeatures(t *testing.T) {
	// One hunk where removed and added are identical after abstraction but
	// differ before.
	p := patchFrom(t,
		[]string{"x = foo(a);"},
		[]string{"y = bar(b);"},
	)
	v := Extract(p, 0)
	if v[IdxLevMeanRaw] == 0 {
		t.Error("raw Levenshtein should be > 0")
	}
	if v[IdxLevMeanAbs] != 0 {
		t.Errorf("abstract Levenshtein = %v, want 0 (VAR = FUNC ( VAR ) ; both sides)", v[IdxLevMeanAbs])
	}
	if v[IdxSameHunksAbs] != 1 {
		t.Errorf("same hunks after abstraction = %v, want 1", v[IdxSameHunksAbs])
	}
	if v[IdxSameHunksRaw] != 0 {
		t.Errorf("same hunks before abstraction = %v, want 0", v[IdxSameHunksRaw])
	}
}

func TestPureMoveSameHunks(t *testing.T) {
	// A hunk that removes and re-adds the same text has distance 0 both ways.
	p := patchFrom(t, []string{"ctx->refs++;"}, []string{"ctx->refs++;"})
	v := Extract(p, 0)
	if v[IdxSameHunksRaw] != 1 || v[IdxSameHunksAbs] != 1 {
		t.Errorf("same hunks = %v/%v, want 1/1", v[IdxSameHunksRaw], v[IdxSameHunksAbs])
	}
}

func TestAffectedFilesAndFuncs(t *testing.T) {
	text := "commit 0123456789abcdef\n" +
		"diff --git a/a.c b/a.c\n--- a/a.c\n+++ b/a.c\n" +
		"@@ -1,2 +1,2 @@ int first(void)\n ctx\n-x\n+y\n" +
		"@@ -10,2 +10,2 @@ int second(int n)\n ctx\n-x\n+y\n" +
		"diff --git a/b.c b/b.c\n--- a/b.c\n+++ b/b.c\n" +
		"@@ -1,2 +1,2 @@ int third(void)\n ctx\n-x\n+y\n"
	p := mustParse(t, text)
	v := Extract(p, 4) // commit originally touched 4 files (one stripped)
	if v[IdxAffectedFiles] != 2 {
		t.Errorf("affected files = %v", v[IdxAffectedFiles])
	}
	if v[IdxAffectedFilesP] != 0.5 {
		t.Errorf("affected files pct = %v, want 0.5", v[IdxAffectedFilesP])
	}
	if v[IdxAffectedFuncs] != 3 {
		t.Errorf("affected funcs = %v", v[IdxAffectedFuncs])
	}
	if v[IdxFuncsTotal] != 3 {
		t.Errorf("total modified funcs = %v", v[IdxFuncsTotal])
	}
}

func TestFunctionDefDetection(t *testing.T) {
	p := patchFrom(t,
		[]string{},
		[]string{"int new_helper(struct s *p)"},
	)
	v := Extract(p, 0)
	if v[IdxFuncsNet] != 1 {
		t.Errorf("net modified funcs = %v, want 1 (definition added)", v[IdxFuncsNet])
	}
	// A call statement must NOT be counted as a definition.
	p2 := patchFrom(t, nil, []string{"helper(a, b);"})
	if v2 := Extract(p2, 0); v2[IdxFuncsNet] != 0 {
		t.Errorf("call counted as definition: %v", v2[IdxFuncsNet])
	}
}

func TestCharCounts(t *testing.T) {
	p := patchFrom(t, []string{"abc"}, []string{"abcdef"})
	v := Extract(p, 0)
	if v[IdxAddedChars] != 6 || v[IdxAddedChars+1] != 3 || v[IdxAddedChars+2] != 9 || v[IdxAddedChars+3] != 3 {
		t.Errorf("chars = %v %v %v %v", v[IdxAddedChars], v[IdxAddedChars+1], v[IdxAddedChars+2], v[IdxAddedChars+3])
	}
}

func TestEmptyPatch(t *testing.T) {
	p := &diff.Patch{Commit: "deadbeef"}
	v := Extract(p, 0)
	for i, x := range v {
		if x != 0 {
			t.Errorf("dim %s = %v on empty patch", Name(i), x)
		}
	}
}

func TestVectorDimStable(t *testing.T) {
	p := patchFrom(t, []string{"a"}, []string{"b"})
	if got := len(Extract(p, 0)); got != Dim {
		t.Fatalf("Extract len = %d, want %d", got, Dim)
	}
}

func TestTokenSequence(t *testing.T) {
	p := patchFrom(t,
		[]string{"if (x > 0)"},
		[]string{"if (x > 0 && y)"},
	)
	seq := TokenSequence(p)
	if len(seq) == 0 || seq[0] != TokHunk {
		t.Fatalf("sequence must start with hunk marker: %v", seq)
	}
	var hasRem, hasAdd bool
	for _, tok := range seq {
		if tok == TokRemoved {
			hasRem = true
		}
		if tok == TokAdded {
			hasAdd = true
		}
	}
	if !hasRem || !hasAdd {
		t.Errorf("markers missing: %v", seq)
	}
	// Identifiers must be abstracted.
	for _, tok := range seq {
		if tok == "x" || tok == "y" {
			t.Errorf("unabstracted identifier %q in %v", tok, seq)
		}
	}
}

func TestTokenSequenceEmptySides(t *testing.T) {
	p := patchFrom(t, nil, []string{"return 0;"})
	seq := TokenSequence(p)
	for _, tok := range seq {
		if tok == TokRemoved {
			t.Errorf("removal marker present without removed lines: %v", seq)
		}
	}
}
