// Package augment drives PatchDB's human-in-the-loop dataset augmentation
// (Fig. 2): candidate selection by nearest link search, (simulated) manual
// verification, and the loop judgment that repeats rounds while the security
// ratio among candidates stays above a threshold. It produces the per-round
// accounting reported in Table II.
package augment

import (
	"context"
	"errors"
	"fmt"
	"time"

	"patchdb/internal/core/nearestlink"
	"patchdb/internal/telemetry"
)

// Item is one unlabeled wild patch in the search pool.
type Item struct {
	// ID identifies the underlying commit.
	ID string
	// Features is the 60-dim syntactic feature vector.
	Features []float64
}

// Verifier is the manual-verification interface; the oracle package
// implements it by replaying ground truth.
type Verifier interface {
	Verify(id string) bool
}

// Config tunes the augmentation loop.
type Config struct {
	// MaxRounds bounds the number of rounds over one pool (default 3, the
	// paper's Set I schedule).
	MaxRounds int
	// RatioThreshold exits the loop when the verified-security ratio of a
	// round falls below it. Zero means the default (0.05); any negative
	// value disables the early exit entirely, so all MaxRounds rounds run
	// regardless of how the ratio develops.
	RatioThreshold float64
	// Workers for the nearest link search.
	Workers int
	// Registry, when non-nil, receives the nearest-link engine counters of
	// every round's search.
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxRounds <= 0 {
		c.MaxRounds = 3
	}
	if c.RatioThreshold == 0 {
		c.RatioThreshold = 0.05
	}
	return c
}

// Round is the accounting for one augmentation round (one row of Table II).
type Round struct {
	Round       int
	SearchRange int // unlabeled pool size when the round started
	Candidates  int
	Verified    int // candidates verified as security patches
	Ratio       float64
	// SearchTime is the wall-clock cost of the round's nearest link search.
	SearchTime time.Duration
	// Search is the round's full nearest-link engine accounting (distance
	// evaluations, pruned fraction, heap activity).
	Search nearestlink.Stats
}

// String renders the round like a Table II row.
func (r Round) String() string {
	return fmt.Sprintf("round %d: range=%d candidates=%d verified=%d ratio=%.0f%%",
		r.Round, r.SearchRange, r.Candidates, r.Verified, 100*r.Ratio)
}

// Result is the outcome of an augmentation run.
type Result struct {
	Rounds []Round
	// Search is the aggregate nearest-link engine accounting across every
	// round of the run, snapshotted once after the final round completes —
	// the authoritative totals callers should report (per-round Round.Search
	// values are the same data, split by round).
	Search nearestlink.Totals
	// SecurityIDs are wild patches verified as security patches.
	SecurityIDs []string
	// NonSecurityIDs are verified non-security candidates (they join the
	// cleaned negative set).
	NonSecurityIDs []string
	// SeedFeatures is the enlarged verified-security feature set after the
	// run (input seed plus discovered positives).
	SeedFeatures [][]float64
}

// ErrEmptyPool is returned when the wild pool has no items.
var ErrEmptyPool = errors.New("augment: empty wild pool")

// Run executes augmentation rounds over one unlabeled pool. seed holds the
// feature vectors of already-verified security patches; it is enlarged as
// rounds discover new positives. Verified candidates (either label) leave
// the pool. startRound numbers the produced rounds (Table II numbers rounds
// across pools). ctx is checked between rounds and between verifications;
// cancellation aborts the run with a wrapped context error.
func Run(ctx context.Context, seed [][]float64, pool []Item, verifier Verifier, startRound int, cfg Config) (*Result, error) {
	if len(pool) == 0 {
		return nil, ErrEmptyPool
	}
	if len(seed) == 0 {
		return nil, nearestlink.ErrNoSecurityPatches
	}
	cfg = cfg.withDefaults()

	res := &Result{SeedFeatures: append([][]float64(nil), seed...)}
	active := append([]Item(nil), pool...)

	for round := 0; round < cfg.MaxRounds && len(active) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("augment: canceled before round %d: %w", startRound+round, err)
		}
		wildX := make([][]float64, len(active))
		for i, it := range active {
			wildX[i] = it.Features
		}
		var searchStats nearestlink.Stats
		links, err := nearestlink.Search(ctx, res.SeedFeatures, wildX,
			&nearestlink.Options{Workers: cfg.Workers, Stats: &searchStats, Registry: cfg.Registry})
		if err != nil {
			return nil, fmt.Errorf("augment round %d: %w", startRound+round, err)
		}

		// searchStats is only copied out after Search has fully returned
		// (all scan and rescan counters folded in), so the per-round record
		// and the end-of-run totals below always agree with the engine's
		// actual work.
		r := Round{
			Round:       startRound + round,
			SearchRange: len(active),
			Candidates:  len(links),
			SearchTime:  searchStats.Duration,
			Search:      searchStats,
		}
		selected := make(map[int]bool, len(links))
		for _, l := range links {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("augment: canceled during round %d verification: %w", r.Round, err)
			}
			selected[l.Wild] = true
			item := active[l.Wild]
			if verifier.Verify(item.ID) {
				r.Verified++
				res.SecurityIDs = append(res.SecurityIDs, item.ID)
				res.SeedFeatures = append(res.SeedFeatures, item.Features)
			} else {
				res.NonSecurityIDs = append(res.NonSecurityIDs, item.ID)
			}
		}
		if r.Candidates > 0 {
			r.Ratio = float64(r.Verified) / float64(r.Candidates)
		}
		res.Rounds = append(res.Rounds, r)

		// Remove all verified candidates from the pool.
		next := active[:0]
		for i, it := range active {
			if !selected[i] {
				next = append(next, it)
			}
		}
		active = next

		// A negative threshold disables the early exit (the loop judgment
		// of Fig. 2 runs all scheduled rounds).
		if cfg.RatioThreshold > 0 && r.Ratio < cfg.RatioThreshold {
			break
		}
	}
	// One snapshot of the engine totals at the end of the run, after every
	// round (including its rescan passes) has completed, so reported and
	// actual counts cannot diverge.
	for _, r := range res.Rounds {
		res.Search.Add(r.Search)
	}
	return res, nil
}
