package augment

import (
	"strconv"
	"testing"

	"patchdb/internal/core/nearestlink"
)

// mapVerifier labels items by a ground-truth map.
type mapVerifier struct {
	truth     map[string]bool
	inspected int
}

func (v *mapVerifier) Verify(id string) bool {
	v.inspected++
	return v.truth[id]
}

// world builds a seed cluster at 0 and a pool with positives near 0 and
// negatives near 10.
func world(nSeed, nPos, nNeg int) (seed [][]float64, pool []Item, truth map[string]bool) {
	truth = make(map[string]bool)
	for i := 0; i < nSeed; i++ {
		seed = append(seed, []float64{float64(i) * 0.01})
	}
	for i := 0; i < nPos; i++ {
		id := "pos" + strconv.Itoa(i)
		pool = append(pool, Item{ID: id, Features: []float64{0.5 + float64(i)*0.01}})
		truth[id] = true
	}
	for i := 0; i < nNeg; i++ {
		id := "neg" + strconv.Itoa(i)
		pool = append(pool, Item{ID: id, Features: []float64{10 + float64(i)*0.01}})
		truth[id] = false
	}
	return seed, pool, truth
}

func TestRunDiscoversPositives(t *testing.T) {
	seed, pool, truth := world(5, 20, 100)
	v := &mapVerifier{truth: truth}
	res, err := Run(seed, pool, v, 1, Config{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds ran")
	}
	r1 := res.Rounds[0]
	if r1.Round != 1 || r1.SearchRange != 120 || r1.Candidates != 5 {
		t.Errorf("round 1 = %+v", r1)
	}
	if r1.Verified != 5 || r1.Ratio != 1.0 {
		t.Errorf("round 1 should find only positives near the seed: %+v", r1)
	}
	// Seed grows with every discovered positive.
	if len(res.SeedFeatures) != len(seed)+len(res.SecurityIDs) {
		t.Errorf("seed features = %d", len(res.SeedFeatures))
	}
	for _, id := range res.SecurityIDs {
		if !truth[id] {
			t.Errorf("non-security id %q in SecurityIDs", id)
		}
	}
	for _, id := range res.NonSecurityIDs {
		if truth[id] {
			t.Errorf("security id %q in NonSecurityIDs", id)
		}
	}
}

func TestRunRemovesVerifiedFromPool(t *testing.T) {
	seed, pool, truth := world(10, 10, 10)
	v := &mapVerifier{truth: truth}
	res, err := Run(seed, pool, v, 1, Config{MaxRounds: 5, RatioThreshold: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	total := len(res.SecurityIDs) + len(res.NonSecurityIDs)
	if total != v.inspected {
		t.Errorf("inspected %d but recorded %d", v.inspected, total)
	}
	seen := map[string]bool{}
	for _, id := range append(append([]string{}, res.SecurityIDs...), res.NonSecurityIDs...) {
		if seen[id] {
			t.Fatalf("candidate %q verified twice (pool removal broken)", id)
		}
		seen[id] = true
	}
}

func TestRunStopsOnLowRatio(t *testing.T) {
	// All positives are found in round 1; round 2's candidates are
	// negatives, driving the ratio to 0 and stopping the loop.
	seed, pool, truth := world(10, 10, 200)
	v := &mapVerifier{truth: truth}
	res, err := Run(seed, pool, v, 1, Config{MaxRounds: 10, RatioThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) >= 10 {
		t.Errorf("loop did not stop early: %d rounds", len(res.Rounds))
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.Ratio >= 0.3 {
		t.Errorf("last round ratio %v above threshold", last.Ratio)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run([][]float64{{1}}, nil, &mapVerifier{}, 1, Config{}); err != ErrEmptyPool {
		t.Errorf("empty pool err = %v", err)
	}
	if _, err := Run(nil, []Item{{ID: "a", Features: []float64{1}}}, &mapVerifier{}, 1, Config{}); err != nearestlink.ErrNoSecurityPatches {
		t.Errorf("empty seed err = %v", err)
	}
}

func TestRoundNumbering(t *testing.T) {
	seed, pool, truth := world(3, 10, 10)
	v := &mapVerifier{truth: truth}
	res, err := Run(seed, pool, v, 4, Config{MaxRounds: 2, RatioThreshold: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds[0].Round != 4 {
		t.Errorf("first round numbered %d, want 4", res.Rounds[0].Round)
	}
	if s := res.Rounds[0].String(); s == "" {
		t.Error("empty round string")
	}
}
