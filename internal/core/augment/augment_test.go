package augment

import (
	"context"
	"errors"
	"strconv"
	"testing"

	"patchdb/internal/core/nearestlink"
	"patchdb/internal/telemetry"
)

// mapVerifier labels items by a ground-truth map.
type mapVerifier struct {
	truth     map[string]bool
	inspected int
}

func (v *mapVerifier) Verify(id string) bool {
	v.inspected++
	return v.truth[id]
}

// world builds a seed cluster at 0 and a pool with positives near 0 and
// negatives near 10.
func world(nSeed, nPos, nNeg int) (seed [][]float64, pool []Item, truth map[string]bool) {
	truth = make(map[string]bool)
	for i := 0; i < nSeed; i++ {
		seed = append(seed, []float64{float64(i) * 0.01})
	}
	for i := 0; i < nPos; i++ {
		id := "pos" + strconv.Itoa(i)
		pool = append(pool, Item{ID: id, Features: []float64{0.5 + float64(i)*0.01}})
		truth[id] = true
	}
	for i := 0; i < nNeg; i++ {
		id := "neg" + strconv.Itoa(i)
		pool = append(pool, Item{ID: id, Features: []float64{10 + float64(i)*0.01}})
		truth[id] = false
	}
	return seed, pool, truth
}

func TestRunDiscoversPositives(t *testing.T) {
	seed, pool, truth := world(5, 20, 100)
	v := &mapVerifier{truth: truth}
	res, err := Run(context.Background(), seed, pool, v, 1, Config{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds ran")
	}
	r1 := res.Rounds[0]
	if r1.Round != 1 || r1.SearchRange != 120 || r1.Candidates != 5 {
		t.Errorf("round 1 = %+v", r1)
	}
	if r1.Verified != 5 || r1.Ratio != 1.0 {
		t.Errorf("round 1 should find only positives near the seed: %+v", r1)
	}
	// Seed grows with every discovered positive.
	if len(res.SeedFeatures) != len(seed)+len(res.SecurityIDs) {
		t.Errorf("seed features = %d", len(res.SeedFeatures))
	}
	for _, id := range res.SecurityIDs {
		if !truth[id] {
			t.Errorf("non-security id %q in SecurityIDs", id)
		}
	}
	for _, id := range res.NonSecurityIDs {
		if truth[id] {
			t.Errorf("security id %q in NonSecurityIDs", id)
		}
	}
}

func TestRunRemovesVerifiedFromPool(t *testing.T) {
	seed, pool, truth := world(10, 10, 10)
	v := &mapVerifier{truth: truth}
	res, err := Run(context.Background(), seed, pool, v, 1, Config{MaxRounds: 5, RatioThreshold: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	total := len(res.SecurityIDs) + len(res.NonSecurityIDs)
	if total != v.inspected {
		t.Errorf("inspected %d but recorded %d", v.inspected, total)
	}
	seen := map[string]bool{}
	for _, id := range append(append([]string{}, res.SecurityIDs...), res.NonSecurityIDs...) {
		if seen[id] {
			t.Fatalf("candidate %q verified twice (pool removal broken)", id)
		}
		seen[id] = true
	}
}

func TestRunStopsOnLowRatio(t *testing.T) {
	// All positives are found in round 1; round 2's candidates are
	// negatives, driving the ratio to 0 and stopping the loop.
	seed, pool, truth := world(10, 10, 200)
	v := &mapVerifier{truth: truth}
	res, err := Run(context.Background(), seed, pool, v, 1, Config{MaxRounds: 10, RatioThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) >= 10 {
		t.Errorf("loop did not stop early: %d rounds", len(res.Rounds))
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.Ratio >= 0.3 {
		t.Errorf("last round ratio %v above threshold", last.Ratio)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(context.Background(), [][]float64{{1}}, nil, &mapVerifier{}, 1, Config{}); !errors.Is(err, ErrEmptyPool) {
		t.Errorf("empty pool err = %v", err)
	}
	if _, err := Run(context.Background(), nil, []Item{{ID: "a", Features: []float64{1}}}, &mapVerifier{}, 1, Config{}); !errors.Is(err, nearestlink.ErrNoSecurityPatches) {
		t.Errorf("empty seed err = %v", err)
	}
}

func TestRoundNumbering(t *testing.T) {
	seed, pool, truth := world(3, 10, 10)
	v := &mapVerifier{truth: truth}
	res, err := Run(context.Background(), seed, pool, v, 4, Config{MaxRounds: 2, RatioThreshold: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds[0].Round != 4 {
		t.Errorf("first round numbered %d, want 4", res.Rounds[0].Round)
	}
	if s := res.Rounds[0].String(); s == "" {
		t.Error("empty round string")
	}
}

// negWorld builds a world where every pool item is a non-security patch, so
// every round's ratio is 0.
func negWorld(nSeed, nNeg int) (seed [][]float64, pool []Item, truth map[string]bool) {
	truth = make(map[string]bool)
	for i := 0; i < nSeed; i++ {
		seed = append(seed, []float64{float64(i) * 0.01})
	}
	for i := 0; i < nNeg; i++ {
		id := "neg" + strconv.Itoa(i)
		pool = append(pool, Item{ID: id, Features: []float64{1 + float64(i)*0.01}})
		truth[id] = false
	}
	return seed, pool, truth
}

func TestRunEarlyExitBelowThreshold(t *testing.T) {
	seed, pool, truth := negWorld(5, 40)
	v := &mapVerifier{truth: truth}
	res, err := Run(context.Background(), seed, pool, v, 1, Config{MaxRounds: 5, RatioThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds = %d, want 1 (ratio 0 < threshold must exit after round 1)", len(res.Rounds))
	}
	if res.Rounds[0].Ratio != 0 {
		t.Errorf("ratio = %v", res.Rounds[0].Ratio)
	}
}

func TestRunZeroThresholdUsesDefault(t *testing.T) {
	// Explicit zero is the unset value and takes the 0.05 default — the
	// all-negative world exits after one round.
	seed, pool, truth := negWorld(5, 40)
	v := &mapVerifier{truth: truth}
	res, err := Run(context.Background(), seed, pool, v, 1, Config{MaxRounds: 4, RatioThreshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds = %d, want 1 under the default threshold", len(res.Rounds))
	}
}

func TestRunNegativeThresholdDisablesEarlyExit(t *testing.T) {
	seed, pool, truth := negWorld(5, 40)
	v := &mapVerifier{truth: truth}
	res, err := Run(context.Background(), seed, pool, v, 1, Config{MaxRounds: 4, RatioThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 {
		t.Fatalf("rounds = %d, want all 4 (negative threshold disables loop judgment)", len(res.Rounds))
	}
	// 5 seed rows select 5 candidates per round; all leave the pool.
	if got := len(res.NonSecurityIDs); got != 20 {
		t.Errorf("non-security verified = %d, want 20", got)
	}
}

func TestRunPoolBookkeepingAfterCollisions(t *testing.T) {
	// Every pool item has identical features, so every round's nearest link
	// search resolves column collisions for all but the first seed row. The
	// bookkeeping must still remove each verified candidate exactly once.
	truth := make(map[string]bool)
	var seed [][]float64
	for i := 0; i < 4; i++ {
		seed = append(seed, []float64{0})
	}
	var pool []Item
	for i := 0; i < 10; i++ {
		id := "dup" + strconv.Itoa(i)
		pool = append(pool, Item{ID: id, Features: []float64{0.5}})
		truth[id] = i%2 == 0
	}
	v := &mapVerifier{truth: truth}
	res, err := Run(context.Background(), seed, pool, v, 1, Config{MaxRounds: 10, RatioThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, id := range append(append([]string{}, res.SecurityIDs...), res.NonSecurityIDs...) {
		if seen[id] {
			t.Fatalf("candidate %q verified twice after collisions", id)
		}
		seen[id] = true
	}
	if len(seen) != 10 {
		t.Errorf("verified %d distinct candidates, want the whole pool (10)", len(seen))
	}
	if v.inspected != 10 {
		t.Errorf("inspections = %d, want 10", v.inspected)
	}
}

func TestRunRoundNumberingAcrossPools(t *testing.T) {
	// Table II numbers rounds continuously across pools: the builder chains
	// startRound = 1 + rounds so far. Verify the continuity end-to-end.
	seedA, poolA, truthA := world(3, 6, 6)
	v := &mapVerifier{truth: truthA}
	resA, err := Run(context.Background(), seedA, poolA, v, 1, Config{MaxRounds: 2, RatioThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, poolB, truthB := world(3, 6, 6)
	for id, sec := range truthB {
		truthA[id] = sec
	}
	resB, err := Run(context.Background(), resA.SeedFeatures, poolB, v, 1+len(resA.Rounds), Config{MaxRounds: 2, RatioThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	var nums []int
	for _, r := range append(append([]Round{}, resA.Rounds...), resB.Rounds...) {
		nums = append(nums, r.Round)
	}
	for i, n := range nums {
		if n != i+1 {
			t.Fatalf("round numbering = %v, want 1..%d contiguous", nums, len(nums))
		}
	}
}

func TestRunCanceled(t *testing.T) {
	seed, pool, truth := world(3, 5, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, seed, pool, &mapVerifier{truth: truth}, 1, Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestRunRecordsSearchTime(t *testing.T) {
	seed, pool, truth := world(5, 10, 10)
	res, err := Run(context.Background(), seed, pool, &mapVerifier{truth: truth}, 1, Config{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds[0].SearchTime <= 0 {
		t.Errorf("search time = %v, want > 0", res.Rounds[0].SearchTime)
	}
}

// TestRunSearchTotalsMatchRounds pins the reporting contract: Result.Search
// is snapshotted once after the final round completes and must equal the sum
// of every round's engine stats — the numbers a caller reports can never
// diverge from the work the engine actually did.
func TestRunSearchTotalsMatchRounds(t *testing.T) {
	seed, pool, truth := world(5, 30, 150)
	v := &mapVerifier{truth: truth}
	res, err := Run(context.Background(), seed, pool, v, 1, Config{MaxRounds: 3, RatioThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 2 {
		t.Fatalf("want multiple rounds, got %d", len(res.Rounds))
	}
	var want nearestlink.Totals
	for _, r := range res.Rounds {
		want.Add(r.Search)
	}
	if res.Search != want {
		t.Errorf("Result.Search = %+v, want sum of rounds %+v", res.Search, want)
	}
	if res.Search.Searches != len(res.Rounds) {
		t.Errorf("Searches = %d, want one per round (%d)", res.Search.Searches, len(res.Rounds))
	}
	if res.Search.DistanceEvals == 0 {
		t.Error("no distance evaluations recorded")
	}
}

// TestRunPublishesRegistryCounters checks that a Run given a registry folds
// every round's engine counters into it, matching the authoritative totals.
func TestRunPublishesRegistryCounters(t *testing.T) {
	seed, pool, truth := world(5, 30, 150)
	v := &mapVerifier{truth: truth}
	reg := telemetry.NewRegistry()
	res, err := Run(context.Background(), seed, pool, v, 1,
		Config{MaxRounds: 2, RatioThreshold: -1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(nearestlink.MetricSearches).Value(); got != float64(res.Search.Searches) {
		t.Errorf("registry searches = %v, want %d", got, res.Search.Searches)
	}
	if got := reg.Counter(nearestlink.MetricDistanceEvals).Value(); got != float64(res.Search.DistanceEvals) {
		t.Errorf("registry distance evals = %v, want %d", got, res.Search.DistanceEvals)
	}
	if got := reg.Counter(nearestlink.MetricRescans).Value(); got != float64(res.Search.Rescans) {
		t.Errorf("registry rescans = %v, want %d", got, res.Search.Rescans)
	}
}
