package nearestlink

import "patchdb/internal/telemetry"

// The registry metric families the engine publishes. All are counters
// except the search-latency histogram; the counter values are deterministic
// for a given input at any worker count (the engine's exactness contract
// covers its accounting, not just its links).
const (
	// MetricSearches counts engine invocations (Search or KNNSelect).
	MetricSearches = "nearestlink_searches_total"
	// MetricDistanceEvals counts candidate pairs whose per-dimension
	// evaluation was started.
	MetricDistanceEvals = "nearestlink_distance_evals_total"
	// MetricNormPruned counts candidates rejected by an O(1) norm bound.
	MetricNormPruned = "nearestlink_norm_pruned_total"
	// MetricQuantPruned counts candidates rejected by the quantized integer
	// prefix bound.
	MetricQuantPruned = "nearestlink_quant_pruned_total"
	// MetricEarlyExited counts evaluations aborted by a partial-distance
	// screen.
	MetricEarlyExited = "nearestlink_early_exited_total"
	// MetricHeapPops counts greedy-phase heap extractions.
	MetricHeapPops = "nearestlink_heap_pops_total"
	// MetricSecondBestHits counts collisions absorbed by the runner-up
	// cache.
	MetricSecondBestHits = "nearestlink_second_best_hits_total"
	// MetricRescans counts full row rescans on column collisions.
	MetricRescans = "nearestlink_rescans_total"
	// MetricSearchSeconds is the per-search wall-clock histogram.
	MetricSearchSeconds = "nearestlink_search_seconds"
)

// Publish folds one search's counters into a telemetry registry. A nil
// registry is a no-op.
func (s Stats) Publish(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.Counter(MetricSearches).Inc()
	r.Counter(MetricDistanceEvals).Add(float64(s.DistanceEvals))
	r.Counter(MetricNormPruned).Add(float64(s.NormPruned))
	r.Counter(MetricQuantPruned).Add(float64(s.QuantPruned))
	r.Counter(MetricEarlyExited).Add(float64(s.EarlyExited))
	r.Counter(MetricHeapPops).Add(float64(s.HeapPops))
	r.Counter(MetricSecondBestHits).Add(float64(s.SecondBestHits))
	r.Counter(MetricRescans).Add(float64(s.Rescans))
	r.Histogram(MetricSearchSeconds, nil).Observe(s.Duration.Seconds())
}
