package nearestlink

import (
	"math"
	"sync"
)

// ReferenceSearch is the straightforward transcription of Algorithm 1 that
// the optimized engine is differentially tested against: O(M·N·d) full
// distance scans over [][]float64 rows and an O(M²) argmin rescan in the
// greedy loop, with no pruning, no flat layout, and no heap. It is retained
// verbatim from the pre-engine implementation (minus timing) so property
// tests and the NEARESTLINK bench experiment can assert that Search produces
// bit-identical links, and so benchmarks can quantify the engine's speedup
// at an equal worker count. Options.Stats is ignored beyond the problem
// dimensions and rescan count.
func ReferenceSearch(security, wild [][]float64, opts *Options) ([]Link, error) {
	if len(security) == 0 {
		return nil, ErrNoSecurityPatches
	}
	if len(wild) == 0 {
		return nil, ErrNoWildPatches
	}
	if err := validateDims(security, wild); err != nil {
		return nil, err
	}
	o := opts.resolved()
	rescans := 0

	sec, wld := security, wild
	if !o.DisableNormalization {
		w, err := Weights(security, wild)
		if err != nil {
			return nil, err
		}
		sec = weightedRows(security, w)
		wld = weightedRows(wild, w)
	}

	m := len(sec)
	n := len(wld)

	// rowMin scans row i over columns not in `used`, returning the best
	// (distance^2, column).
	rowMin := func(i int, used []bool) (float64, int) {
		best := math.Inf(1)
		bestJ := -1
		row := sec[i]
		for j := 0; j < n; j++ {
			if used != nil && used[j] {
				continue
			}
			if d := dist2(row, wld[j]); d < best {
				best = d
				bestJ = j
			}
		}
		return best, bestJ
	}

	// Initial per-row minima (Algorithm 1 lines 2-3), in parallel.
	u := make([]float64, m)
	v := make([]int, m)
	var wg sync.WaitGroup
	chunk := (m + o.Workers - 1) / o.Workers
	for w0 := 0; w0 < m; w0 += chunk {
		hi := w0 + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				u[i], v[i] = rowMin(i, nil)
			}
		}(w0, hi)
	}
	wg.Wait()

	// Greedy assignment (Algorithm 1 lines 5-17).
	used := make([]bool, n)
	links := make([]Link, 0, m)
	assigned := 0
	total := m
	if n < m {
		total = n
	}
	done := make([]bool, m)
	for assigned < total {
		// m0 <- argmin U over unassigned rows.
		m0 := -1
		for i := 0; i < m; i++ {
			if !done[i] && (m0 == -1 || u[i] < u[m0]) {
				m0 = i
			}
		}
		if m0 == -1 {
			break
		}
		n0 := v[m0]
		if n0 < 0 || used[n0] {
			// Column collision: rescan this row over unused columns
			// (Algorithm 1 lines 10-15).
			rescans++
			d, j := rowMin(m0, used)
			if j < 0 {
				done[m0] = true
				continue
			}
			u[m0], v[m0] = d, j
			// Re-enter the loop: another row may now have the global min.
			continue
		}
		used[n0] = true
		done[m0] = true
		links = append(links, Link{Security: m0, Wild: n0, Distance: math.Sqrt(u[m0])})
		assigned++
	}
	if o.Stats != nil {
		*o.Stats = Stats{SecurityRows: m, WildCols: n, Rescans: rescans}
	}
	return links, nil
}
