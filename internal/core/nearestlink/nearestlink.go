// Package nearestlink implements PatchDB's core dataset-augmentation
// algorithm (Sec. III-B): max-abs feature weighting, the weighted Euclidean
// distance between verified security patches and unlabeled wild patches, and
// the greedy nearest link search of Algorithm 1 that pairs every verified
// security patch with a distinct, closest wild candidate.
//
// The implementation is a high-throughput search engine built for the
// paper's production shape (thousands of seeds × millions of wild commits):
// flat row-major matrices instead of pointer-chased rows, norm-decomposed
// pruned distance evaluation that rejects most candidates after O(1) work or
// a few dimensions, and a heap-driven greedy assignment that resolves column
// collisions from a cached runner-up instead of an O(N) rescan. Despite the
// pruning, the produced links are bit-identical to the straightforward
// transcription of Algorithm 1 retained in ReferenceSearch — see DESIGN.md
// §5.2 for the exactness argument. Memory stays O(M+N); the full M×N
// distance matrix is never materialized.
package nearestlink

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"patchdb/internal/telemetry"
)

var inf = math.Inf(1)

// Link pairs the m-th verified security patch with its selected wild patch.
type Link struct {
	// Security is the row index into the verified set.
	Security int
	// Wild is the selected column index into the unlabeled set.
	Wild int
	// Distance is the weighted Euclidean distance of the pair.
	Distance float64
}

// Options tunes the search.
type Options struct {
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	// BlockRows is the seed-major block height of the scan phase: how many
	// consecutive ascending-norm security rows share each pass over a wild
	// column (default defaultBlockRows). Affects throughput and the Stats
	// pruning counters, never the links.
	BlockRows int
	// ShardCols is the wild-pool shard width of the scan phase in
	// norm-sorted columns (default defaultShardCols). Like BlockRows it
	// moves cost between pruning stages but never changes the links, and —
	// unlike Workers — it is part of the deterministic counter contract:
	// Stats at a fixed (BlockRows, ShardCols) are identical at any worker
	// count.
	ShardCols int
	// Quantize controls the uint8-quantized integer pre-screen of the
	// blocked scan. nil (the default) resolves by screen width: the integer
	// screen pays for itself when each candidate's float stripes are wide
	// enough that the 8x-smaller quantized rows change the memory picture
	// (>= quantAutoDims dimensions); at bench-scale widths the measured
	// float ladder is strictly faster, so auto leaves it off. &true forces
	// it on, &false off. Like BlockRows and ShardCols this moves rejections
	// between stages (QuantPruned vs the float screens) but never changes
	// the links.
	Quantize *bool
	// DisableNormalization skips the max-abs weighting (ablation only; the
	// paper always normalizes).
	DisableNormalization bool
	// Stats, when non-nil, is filled with search accounting (timing,
	// pruning, heap activity) on return.
	Stats *Stats
	// Registry, when non-nil, receives the engine counters and search
	// latency of every call (see the Metric* names in this package).
	Registry *telemetry.Registry
}

func (o *Options) resolved() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out
}

// Stats is the accounting of one Search or KNNSelect call.
type Stats struct {
	// SecurityRows and WildCols are the problem dimensions.
	SecurityRows, WildCols int
	// DistanceEvals counts candidate pairs whose per-dimension evaluation
	// was started — pairs that survived every O(1) norm bound — plus the
	// small fixed sample each row evaluates to seed its pruning bound.
	DistanceEvals int64
	// NormPruned counts candidates rejected by an O(1) norm-decomposed
	// bound — the bulk norm-window skip (counted per column skipped) or the
	// per-candidate segment-norm bound — before any row data was touched.
	NormPruned int64
	// QuantPruned counts candidates rejected by the uint8-quantized integer
	// prefix bound — after the norm bounds, before any float64 row data.
	QuantPruned int64
	// EarlyExited counts evaluations aborted by a partial-distance bound —
	// the packed-prefix screen or the tail screen — before reaching the
	// last dimension.
	EarlyExited int64
	// PrunedFraction is (NormPruned+QuantPruned+EarlyExited) / candidates
	// considered: the fraction of candidate pairs that never paid for a
	// full d-dimensional evaluation.
	PrunedFraction float64
	// HeapPops counts greedy-phase heap extractions.
	HeapPops int
	// SecondBestHits counts column collisions resolved from the cached
	// runner-up column without rescanning the row.
	SecondBestHits int
	// Rescans counts full row rescans on column collisions (Algorithm 1
	// lines 10-15) that the runner-up cache could not absorb.
	Rescans int
	// Duration is the wall-clock time of the search.
	Duration time.Duration
}

// addScan folds per-worker scan counters into the stats.
func (s *Stats) addScan(c scanCounters) {
	s.DistanceEvals += c.evals
	s.NormPruned += c.normPruned
	s.QuantPruned += c.quantPruned
	s.EarlyExited += c.earlyExited
}

func (s *Stats) finish(start time.Time) {
	if considered := s.NormPruned + s.QuantPruned + s.DistanceEvals; considered > 0 {
		s.PrunedFraction = float64(s.NormPruned+s.QuantPruned+s.EarlyExited) / float64(considered)
	}
	//lint:ignore determinism Stats.Duration is telemetry-only; link selection never reads it
	s.Duration = time.Since(start)
}

// Totals aggregates Stats across many searches (e.g. all augmentation
// rounds of a build).
type Totals struct {
	Searches       int
	DistanceEvals  int64
	NormPruned     int64
	QuantPruned    int64
	EarlyExited    int64
	HeapPops       int
	SecondBestHits int
	Rescans        int
	Duration       time.Duration
}

// Add folds one search's stats into the totals.
func (t *Totals) Add(s Stats) {
	t.Searches++
	t.DistanceEvals += s.DistanceEvals
	t.NormPruned += s.NormPruned
	t.QuantPruned += s.QuantPruned
	t.EarlyExited += s.EarlyExited
	t.HeapPops += s.HeapPops
	t.SecondBestHits += s.SecondBestHits
	t.Rescans += s.Rescans
	t.Duration += s.Duration
}

// Merge folds another aggregate into the totals (e.g. one pool's
// augmentation totals into a build's).
func (t *Totals) Merge(o Totals) {
	t.Searches += o.Searches
	t.DistanceEvals += o.DistanceEvals
	t.NormPruned += o.NormPruned
	t.QuantPruned += o.QuantPruned
	t.EarlyExited += o.EarlyExited
	t.HeapPops += o.HeapPops
	t.SecondBestHits += o.SecondBestHits
	t.Rescans += o.Rescans
	t.Duration += o.Duration
}

// PrunedFraction is the aggregate fraction of candidate pairs rejected
// before a full-dimensional evaluation.
func (t Totals) PrunedFraction() float64 {
	considered := t.NormPruned + t.QuantPruned + t.DistanceEvals
	if considered == 0 {
		return 0
	}
	return float64(t.NormPruned+t.QuantPruned+t.EarlyExited) / float64(considered)
}

// String renders the totals as a one-line engine summary.
func (t Totals) String() string {
	return fmt.Sprintf("searches=%d evals=%d pruned=%.1f%% rescans=%d second-best hits=%d search time=%s",
		t.Searches, t.DistanceEvals, 100*t.PrunedFraction(), t.Rescans, t.SecondBestHits,
		t.Duration.Round(time.Millisecond))
}

// ErrNoWildPatches is returned when the unlabeled pool is empty.
var ErrNoWildPatches = errors.New("nearestlink: empty wild pool")

// ErrNoSecurityPatches is returned when the verified set is empty.
var ErrNoSecurityPatches = errors.New("nearestlink: empty security set")

// ErrDimensionMismatch is returned (wrapped, with row detail) when feature
// rows do not all share one dimensionality.
var ErrDimensionMismatch = errors.New("nearestlink: feature dimension mismatch")

// validateDims checks that every row of every set has the dimensionality of
// the first row seen. Without this check, the distance kernels index past
// the end of short rows and panic.
func validateDims(sets ...[][]float64) error {
	dim := -1
	names := []string{"security", "wild"}
	for s, set := range sets {
		name := "set"
		if s < len(names) {
			name = names[s]
		}
		for i, row := range set {
			if dim == -1 {
				dim = len(row)
				continue
			}
			if len(row) != dim {
				return fmt.Errorf("%w: %s row %d has %d features, want %d",
					ErrDimensionMismatch, name, i, len(row), dim)
			}
		}
	}
	return nil
}

// Weights computes the per-dimension max-abs weights w_j = 1/max|a_j| over
// all provided rows (paper Sec. III-B-2). Ragged rows return a wrapped
// ErrDimensionMismatch instead of indexing past the end of short rows.
func Weights(sets ...[][]float64) ([]float64, error) {
	if err := validateDims(sets...); err != nil {
		return nil, err
	}
	var dim int
	for _, s := range sets {
		if len(s) > 0 {
			dim = len(s[0])
			break
		}
	}
	w := make([]float64, dim)
	for _, s := range sets {
		for _, row := range s {
			for j, v := range row {
				if a := math.Abs(v); a > w[j] {
					w[j] = a
				}
			}
		}
	}
	for j := range w {
		if w[j] == 0 {
			w[j] = 1
		} else {
			w[j] = 1 / w[j]
		}
	}
	return w, nil
}

// canceled wraps a context error in the package's vocabulary.
func canceled(ctx context.Context) error {
	return fmt.Errorf("nearestlink: search canceled: %w", ctx.Err())
}

// Search runs Algorithm 1: for each of the M verified security patches it
// selects one distinct wild patch so that the total link distance is
// (greedily) minimized. It returns exactly min(M, N) links, identical to
// ReferenceSearch's for any input and worker count. ctx is checked between
// row chunks of the scan phase and periodically during assignment;
// cancellation aborts the search with a wrapped context error.
func Search(ctx context.Context, security, wild [][]float64, opts *Options) ([]Link, error) {
	if len(security) == 0 {
		return nil, ErrNoSecurityPatches
	}
	if len(wild) == 0 {
		return nil, ErrNoWildPatches
	}
	if err := validateDims(security, wild); err != nil {
		return nil, err
	}
	// The flat copies are owned by the search, so weighting can run in
	// place without a second copy.
	return searchFlat(ctx, flatten(security), flatten(wild), opts, true)
}

// SearchMatrix is Search over pre-flattened matrices. The inputs are not
// mutated: with normalization enabled the engine weights a private copy.
func SearchMatrix(ctx context.Context, security, wild *Matrix, opts *Options) ([]Link, error) {
	if security == nil || security.rows == 0 {
		return nil, ErrNoSecurityPatches
	}
	if wild == nil || wild.rows == 0 {
		return nil, ErrNoWildPatches
	}
	if security.cols != wild.cols {
		return nil, fmt.Errorf("%w: security rows have %d features, wild rows %d",
			ErrDimensionMismatch, security.cols, wild.cols)
	}
	return searchFlat(ctx, security, wild, opts, false)
}

// searchFlat is the engine core. owned reports whether sec/wld are private
// to this call (weighting may mutate them) or caller-visible (weighting
// must copy).
func searchFlat(ctx context.Context, sec, wld *Matrix, opts *Options, owned bool) ([]Link, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := opts.resolved()
	//lint:ignore determinism search wall-clock feeds Stats.Duration (telemetry) only
	start := time.Now()
	stats := Stats{SecurityRows: sec.rows, WildCols: wld.rows}

	if !o.DisableNormalization {
		w := weightsFlat(sec, wld)
		if owned {
			applyWeights(sec, w)
			applyWeights(wld, w)
		} else {
			sec = weightedClone(sec, w)
			wld = weightedClone(wld, w)
		}
	}
	e := newEngine(sec, wld)
	m, n := sec.rows, wld.rows

	// Phase 1 — initial per-row (best, runner-up) minima (Algorithm 1
	// lines 2-3) through the blocked, sharded candidate generator: seeded
	// norm windows, then a task grid of (seed-row block × wild shard) cells
	// whose per-shard two-bests merge into the global pairs (see block.go
	// for the layout and the exactness argument). Visiting order does not
	// matter for correctness: updates are lexicographic on (distance,
	// original column) and all rejections are strictly conservative, so the
	// result is identical to the reference's ascending scan (see kernel.go).
	u := make([]float64, m)
	v := make([]int, m)
	u2 := make([]float64, m)
	v2 := make([]int, m)
	sv := make([]bool, m) // runner-up cache valid
	plan := newBlockPlan(e, o)
	if err := plan.runBlocked(ctx, o, &stats, u, v, u2, v2); err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		sv[i] = v2[i] >= 0
	}

	// Phase 2 — heap-driven greedy assignment (Algorithm 1 lines 5-17).
	// Every pending row keeps exactly one live heap entry keyed by its
	// current u, so a pop is the exact argmin the reference loop rescans
	// O(M) rows for. A collision is resolved from the cached runner-up
	// when its column is still free (provably equal to a fresh rescan:
	// only the contested best column could have beaten it, and used
	// columns only shrink the candidate set); otherwise the row is
	// rescanned over unused columns.
	used := make([]bool, n)
	total := m
	if n < m {
		total = n
	}
	links := make([]Link, 0, total)
	h := heapifyRowHeap(u)
	var rescanCounters scanCounters
	assigned := 0
	for assigned < total && h.len() > 0 {
		stats.HeapPops++
		if stats.HeapPops&1023 == 0 && ctx.Err() != nil {
			return nil, canceled(ctx)
		}
		d, i := h.pop()
		j := v[i]
		if !used[j] {
			used[j] = true
			links = append(links, Link{Security: i, Wild: j, Distance: math.Sqrt(d)})
			assigned++
			continue
		}
		if sv[i] && !used[v2[i]] {
			// Column collision absorbed by the cached second-best.
			stats.SecondBestHits++
			u[i], v[i], sv[i] = u2[i], v2[i], false
			h.push(u[i], i)
			continue
		}
		// Full rescan over the unused columns, refreshing the runner-up.
		stats.Rescans++
		d1, j1, d2, j2 := e.scanRowSorted2(i, used, &rescanCounters)
		if j1 < 0 {
			continue // no free column left for this row
		}
		u[i], v[i] = d1, j1
		u2[i], v2[i] = d2, j2
		sv[i] = j2 >= 0
		h.push(d1, i)
	}
	stats.addScan(rescanCounters)
	stats.finish(start)
	stats.Publish(o.Registry)
	if o.Stats != nil {
		*o.Stats = stats
	}
	return links, nil
}

// parallelRows runs fn(i) for every row on o.Workers goroutines, checking
// ctx between row chunks and merging per-worker scan counters into stats.
func (e *engine) parallelRows(ctx context.Context, workers, m int, stats *Stats, fn func(i int, c *scanCounters)) error {
	if workers > m {
		workers = m
	}
	var (
		next int64
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var c scanCounters
			for {
				// Each chunk is one security row (an O(N·d) unit of work);
				// ctx is checked before every chunk so cancellation
				// propagates promptly even mid-scan.
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= m || ctx.Err() != nil {
					break
				}
				fn(i, &c)
			}
			mu.Lock()
			stats.addScan(c)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return canceled(ctx)
	}
	return nil
}

// TotalDistance sums link distances (the optimization objective).
func TotalDistance(links []Link) float64 {
	sum := 0.0
	for _, l := range links {
		sum += l.Distance
	}
	return sum
}

// KNNSelect is the contrast the paper draws in Sec. III-B-3: plain 1-nearest
// -neighbor selection where a wild patch may be chosen by multiple verified
// patches. It returns the set of distinct selected columns (size <= M),
// used by the KNN-vs-nearest-link ablation. ctx is checked between row
// chunks; cancellation aborts with a wrapped context error.
func KNNSelect(ctx context.Context, security, wild [][]float64, opts *Options) ([]int, error) {
	if len(security) == 0 {
		return nil, ErrNoSecurityPatches
	}
	if len(wild) == 0 {
		return nil, ErrNoWildPatches
	}
	if err := validateDims(security, wild); err != nil {
		return nil, err
	}
	return knnFlat(ctx, flatten(security), flatten(wild), opts, true)
}

// KNNSelectMatrix is KNNSelect over pre-flattened matrices.
func KNNSelectMatrix(ctx context.Context, security, wild *Matrix, opts *Options) ([]int, error) {
	if security == nil || security.rows == 0 {
		return nil, ErrNoSecurityPatches
	}
	if wild == nil || wild.rows == 0 {
		return nil, ErrNoWildPatches
	}
	if security.cols != wild.cols {
		return nil, fmt.Errorf("%w: security rows have %d features, wild rows %d",
			ErrDimensionMismatch, security.cols, wild.cols)
	}
	return knnFlat(ctx, security, wild, opts, false)
}

func knnFlat(ctx context.Context, sec, wld *Matrix, opts *Options, owned bool) ([]int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := opts.resolved()
	//lint:ignore determinism KNN wall-clock feeds Stats.Duration (telemetry) only
	start := time.Now()
	stats := Stats{SecurityRows: sec.rows, WildCols: wld.rows}
	if !o.DisableNormalization {
		w := weightsFlat(sec, wld)
		if owned {
			applyWeights(sec, w)
			applyWeights(wld, w)
		} else {
			sec = weightedClone(sec, w)
			wld = weightedClone(wld, w)
		}
	}
	e := newEngine(sec, wld)
	m := sec.rows
	best := make([]float64, m)
	choice := make([]int, m)
	if err := e.parallelRows(ctx, o.Workers, m, &stats, func(t int, c *scanCounters) {
		i := e.secOrder[t]
		best[i], choice[i] = e.scanRowSortedBest(i, c)
	}); err != nil {
		return nil, err
	}
	seen := make(map[int]bool, m)
	var out []int
	for _, j := range choice {
		if j >= 0 && !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	stats.finish(start)
	stats.Publish(o.Registry)
	if o.Stats != nil {
		*o.Stats = stats
	}
	return out, nil
}

// DistanceMatrix materializes the full weighted distance matrix (tests and
// small inputs only). Ragged rows return a wrapped ErrDimensionMismatch.
func DistanceMatrix(security, wild [][]float64, normalize bool) ([][]float64, error) {
	if err := validateDims(security, wild); err != nil {
		return nil, err
	}
	sec, wld := security, wild
	if normalize {
		w, err := Weights(security, wild)
		if err != nil {
			return nil, err
		}
		sec = weightedRows(security, w)
		wld = weightedRows(wild, w)
	}
	d := make([][]float64, len(sec))
	for i, row := range sec {
		d[i] = make([]float64, len(wld))
		for j := range wld {
			d[i][j] = math.Sqrt(dist2(row, wld[j]))
		}
	}
	return d, nil
}

// weightedRows returns rows scaled by w (row-per-row allocation; used only
// by the reference paths and DistanceMatrix).
func weightedRows(rows [][]float64, w []float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, row := range rows {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = v * w[j]
		}
		out[i] = r
	}
	return out
}
