// Package nearestlink implements PatchDB's core dataset-augmentation
// algorithm (Sec. III-B): max-abs feature weighting, the weighted Euclidean
// distance between verified security patches and unlabeled wild patches, and
// the greedy nearest link search of Algorithm 1 that pairs every verified
// security patch with a distinct, closest wild candidate.
//
// The implementation never materializes the full M x N distance matrix:
// row minima are computed on demand and re-scanned only on column
// collisions, so memory stays O(M+N) while matching Algorithm 1's output
// exactly.
package nearestlink

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"
)

// Link pairs the m-th verified security patch with its selected wild patch.
type Link struct {
	// Security is the row index into the verified set.
	Security int
	// Wild is the selected column index into the unlabeled set.
	Wild int
	// Distance is the weighted Euclidean distance of the pair.
	Distance float64
}

// Options tunes the search.
type Options struct {
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	// DisableNormalization skips the max-abs weighting (ablation only; the
	// paper always normalizes).
	DisableNormalization bool
	// Stats, when non-nil, is filled with search accounting (timing,
	// rescans) on return.
	Stats *Stats
}

// Stats is the accounting of one Search call.
type Stats struct {
	// SecurityRows and WildCols are the problem dimensions.
	SecurityRows, WildCols int
	// Rescans counts column-collision row rescans (Algorithm 1 lines
	// 10-15); near-zero means the greedy pass ran close to O(MN).
	Rescans int
	// Duration is the wall-clock time of the search.
	Duration time.Duration
}

// ErrNoWildPatches is returned when the unlabeled pool is empty.
var ErrNoWildPatches = errors.New("nearestlink: empty wild pool")

// ErrNoSecurityPatches is returned when the verified set is empty.
var ErrNoSecurityPatches = errors.New("nearestlink: empty security set")

// ErrDimensionMismatch is returned (wrapped, with row detail) when feature
// rows do not all share one dimensionality.
var ErrDimensionMismatch = errors.New("nearestlink: feature dimension mismatch")

// validateDims checks that every row of every set has the dimensionality of
// the first row seen. Without this check, Weights and dist2 index past the
// end of short rows and panic.
func validateDims(sets ...[][]float64) error {
	dim := -1
	names := []string{"security", "wild"}
	for s, set := range sets {
		name := "set"
		if s < len(names) {
			name = names[s]
		}
		for i, row := range set {
			if dim == -1 {
				dim = len(row)
				continue
			}
			if len(row) != dim {
				return fmt.Errorf("%w: %s row %d has %d features, want %d",
					ErrDimensionMismatch, name, i, len(row), dim)
			}
		}
	}
	return nil
}

// Weights computes the per-dimension max-abs weights w_j = 1/max|a_j| over
// all provided rows (paper Sec. III-B-2).
func Weights(sets ...[][]float64) []float64 {
	var dim int
	for _, s := range sets {
		if len(s) > 0 {
			dim = len(s[0])
			break
		}
	}
	w := make([]float64, dim)
	for _, s := range sets {
		for _, row := range s {
			for j, v := range row {
				if a := math.Abs(v); a > w[j] {
					w[j] = a
				}
			}
		}
	}
	for j := range w {
		if w[j] == 0 {
			w[j] = 1
		} else {
			w[j] = 1 / w[j]
		}
	}
	return w
}

// weighted returns rows scaled by w.
func weighted(rows [][]float64, w []float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, row := range rows {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = v * w[j]
		}
		out[i] = r
	}
	return out
}

// dist2 is the squared Euclidean distance.
func dist2(a, b []float64) float64 {
	sum := 0.0
	for j := range a {
		d := a[j] - b[j]
		sum += d * d
	}
	return sum
}

// Search runs Algorithm 1: for each of the M verified security patches it
// selects one distinct wild patch so that the total link distance is
// (greedily) minimized. It returns exactly min(M, N) links.
func Search(security, wild [][]float64, opts *Options) ([]Link, error) {
	if len(security) == 0 {
		return nil, ErrNoSecurityPatches
	}
	if len(wild) == 0 {
		return nil, ErrNoWildPatches
	}
	if err := validateDims(security, wild); err != nil {
		return nil, err
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	rescans := 0

	sec, wld := security, wild
	if !o.DisableNormalization {
		w := Weights(security, wild)
		sec = weighted(security, w)
		wld = weighted(wild, w)
	}

	m := len(sec)
	n := len(wld)

	// rowMin scans row i over columns not in `used`, returning the best
	// (distance^2, column).
	rowMin := func(i int, used []bool) (float64, int) {
		best := math.Inf(1)
		bestJ := -1
		row := sec[i]
		for j := 0; j < n; j++ {
			if used != nil && used[j] {
				continue
			}
			if d := dist2(row, wld[j]); d < best {
				best = d
				bestJ = j
			}
		}
		return best, bestJ
	}

	// Initial per-row minima (Algorithm 1 lines 2-3), in parallel.
	u := make([]float64, m)
	v := make([]int, m)
	var wg sync.WaitGroup
	chunk := (m + o.Workers - 1) / o.Workers
	for w0 := 0; w0 < m; w0 += chunk {
		hi := w0 + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				u[i], v[i] = rowMin(i, nil)
			}
		}(w0, hi)
	}
	wg.Wait()

	// Greedy assignment (Algorithm 1 lines 5-17).
	used := make([]bool, n)
	links := make([]Link, 0, m)
	assigned := 0
	total := m
	if n < m {
		total = n
	}
	done := make([]bool, m)
	for assigned < total {
		// m0 <- argmin U over unassigned rows.
		m0 := -1
		for i := 0; i < m; i++ {
			if !done[i] && (m0 == -1 || u[i] < u[m0]) {
				m0 = i
			}
		}
		if m0 == -1 {
			break
		}
		n0 := v[m0]
		if n0 < 0 || used[n0] {
			// Column collision: rescan this row over unused columns
			// (Algorithm 1 lines 10-15).
			rescans++
			d, j := rowMin(m0, used)
			if j < 0 {
				done[m0] = true
				continue
			}
			u[m0], v[m0] = d, j
			// Re-enter the loop: another row may now have the global min.
			continue
		}
		used[n0] = true
		done[m0] = true
		links = append(links, Link{Security: m0, Wild: n0, Distance: math.Sqrt(u[m0])})
		assigned++
	}
	if o.Stats != nil {
		*o.Stats = Stats{
			SecurityRows: m,
			WildCols:     n,
			Rescans:      rescans,
			Duration:     time.Since(start),
		}
	}
	return links, nil
}

// TotalDistance sums link distances (the optimization objective).
func TotalDistance(links []Link) float64 {
	sum := 0.0
	for _, l := range links {
		sum += l.Distance
	}
	return sum
}

// KNNSelect is the contrast the paper draws in Sec. III-B-3: plain 1-nearest
// -neighbor selection where a wild patch may be chosen by multiple verified
// patches. It returns the set of distinct selected columns (size <= M),
// used by the KNN-vs-nearest-link ablation.
func KNNSelect(security, wild [][]float64, opts *Options) ([]int, error) {
	if len(security) == 0 {
		return nil, ErrNoSecurityPatches
	}
	if len(wild) == 0 {
		return nil, ErrNoWildPatches
	}
	if err := validateDims(security, wild); err != nil {
		return nil, err
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	sec, wld := security, wild
	if !o.DisableNormalization {
		w := Weights(security, wild)
		sec = weighted(security, w)
		wld = weighted(wild, w)
	}
	m := len(sec)
	choice := make([]int, m)
	var wg sync.WaitGroup
	chunk := (m + o.Workers - 1) / o.Workers
	for w0 := 0; w0 < m; w0 += chunk {
		hi := w0 + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				best := math.Inf(1)
				bestJ := -1
				for j := range wld {
					if d := dist2(sec[i], wld[j]); d < best {
						best = d
						bestJ = j
					}
				}
				choice[i] = bestJ
			}
		}(w0, hi)
	}
	wg.Wait()
	seen := make(map[int]bool, m)
	var out []int
	for _, j := range choice {
		if j >= 0 && !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	if o.Stats != nil {
		*o.Stats = Stats{
			SecurityRows: m,
			WildCols:     len(wld),
			Duration:     time.Since(start),
		}
	}
	return out, nil
}

// DistanceMatrix materializes the full weighted distance matrix (tests and
// small inputs only).
func DistanceMatrix(security, wild [][]float64, normalize bool) [][]float64 {
	sec, wld := security, wild
	if normalize {
		w := Weights(security, wild)
		sec = weighted(security, w)
		wld = weighted(wild, w)
	}
	d := make([][]float64, len(sec))
	for i, row := range sec {
		d[i] = make([]float64, len(wld))
		for j := range wld {
			d[i][j] = math.Sqrt(dist2(row, wld[j]))
		}
	}
	return d
}
