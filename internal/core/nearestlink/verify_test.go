package nearestlink

import (
	"context"
	"math/rand"
	"strings"
	"testing"
)

// TestVerifySampledAcceptsEngineOutput checks the spot-checker against real
// Search and ReferenceSearch output across the tie-heavy generators: every
// sampled link must pass, at any sample size.
func TestVerifySampledAcceptsEngineOutput(t *testing.T) {
	gens := map[string]func(*rand.Rand, int, int) [][]float64{
		"gaussian":   genGaussian,
		"grid":       genGrid,
		"duplicates": genDuplicates,
	}
	for name, gen := range gens {
		rng := rand.New(rand.NewSource(7))
		sec := gen(rng, 60, 8)
		wild := gen(rng, 400, 8)

		links, err := Search(context.Background(), sec, wild, nil)
		if err != nil {
			t.Fatalf("%s: search: %v", name, err)
		}
		for _, sample := range []int{1, 16, len(links), len(links) + 100} {
			checked, err := VerifySampled(sec, wild, links, nil, sample, 42)
			if err != nil {
				t.Errorf("%s: sample %d: %v", name, sample, err)
			}
			want := sample
			if want > len(links) {
				want = len(links)
			}
			if checked != want {
				t.Errorf("%s: sample %d: checked %d links, want %d", name, sample, checked, want)
			}
		}

		ref, err := ReferenceSearch(sec, wild, nil)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		if _, err := VerifySampled(sec, wild, ref, nil, len(ref), 42); err != nil {
			t.Errorf("%s: reference output rejected: %v", name, err)
		}
	}
}

// TestVerifySampledNLessThanM covers the truncated-assignment regime where
// wild columns run out before security rows do.
func TestVerifySampledNLessThanM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sec := randRows(rng, 50, 6)
	wild := randRows(rng, 20, 6)
	links, err := Search(context.Background(), sec, wild, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 20 {
		t.Fatalf("links = %d, want 20", len(links))
	}
	if _, err := VerifySampled(sec, wild, links, nil, len(links), 1); err != nil {
		t.Error(err)
	}
}

// TestVerifySampledDetectsTampering corrupts verified output in each way the
// spot-check is supposed to catch.
func TestVerifySampledDetectsTampering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sec := randRows(rng, 40, 6)
	wild := randRows(rng, 300, 6)
	links, err := Search(context.Background(), sec, wild, nil)
	if err != nil {
		t.Fatal(err)
	}

	tamper := func(mutate func([]Link)) []Link {
		out := append([]Link(nil), links...)
		mutate(out)
		return out
	}
	cases := map[string][]Link{
		"wrong column": tamper(func(l []Link) {
			// Swap two assigned columns: both rows keep valid, distinct
			// columns, but neither is that row's argmin any more.
			l[5].Wild, l[20].Wild = l[20].Wild, l[5].Wild
		}),
		"wrong distance": tamper(func(l []Link) {
			l[30].Distance *= 1.000001
		}),
		"column reuse": tamper(func(l []Link) {
			l[7].Wild = l[3].Wild
		}),
		"row out of range": tamper(func(l []Link) {
			l[0].Security = len(sec)
		}),
		"order violation": tamper(func(l []Link) {
			l[0], l[len(l)-1] = l[len(l)-1], l[0]
		}),
	}
	for name, bad := range cases {
		if _, err := VerifySampled(sec, wild, bad, nil, len(bad), 9); err == nil {
			t.Errorf("%s: tampered links passed verification", name)
		}
	}
}

// TestVerifySampledEmpty covers the degenerate inputs.
func TestVerifySampledEmpty(t *testing.T) {
	if n, err := VerifySampled(nil, nil, nil, nil, 10, 1); n != 0 || err != nil {
		t.Errorf("empty links: %d, %v", n, err)
	}
	rng := rand.New(rand.NewSource(1))
	sec := randRows(rng, 4, 3)
	wild := randRows(rng, 4, 3)
	links, err := Search(context.Background(), sec, wild, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := VerifySampled(sec, wild, links, nil, 0, 1); n != 0 || err != nil {
		t.Errorf("sample 0: %d, %v", n, err)
	}
	// Dimension mismatch is reported, not panicked on.
	if _, err := VerifySampled(sec, [][]float64{{1, 2}}, links, nil, 1, 1); err == nil ||
		!strings.Contains(err.Error(), "dimension") {
		t.Errorf("dimension mismatch: %v", err)
	}
}
