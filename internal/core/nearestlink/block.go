package nearestlink

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Blocked, sharded candidate generation — the throughput core of Search.
//
// Phase 1 of Algorithm 1 needs each security row's lexicographic (best,
// runner-up) over the whole wild pool. The per-row outward walk
// (scanRowSorted2, retained for greedy-phase rescans) re-reads every wild
// stripe once per row; this path restructures the work on two axes so each
// stripe load is amortized and the grid parallelizes cleanly:
//
//   - Seed-major blocking: security rows are grouped into blocks of
//     defaultBlockRows consecutive scan-order (ascending-norm) rows. One
//     pass over a wild column evaluates the whole block against it, so the
//     column's stripe data (segment norms, quantized prefix, packed prefix,
//     tail) is loaded once per block instead of once per row, and the
//     block's own row data stays L1-resident across the pass.
//   - Wild-pool sharding: the norm-sorted pool is cut into contiguous
//     shards of defaultShardCols columns. A (block, shard) pair is one
//     independent task; workers drain the task grid through an atomic
//     cursor. Each task computes the block rows' (best, runner-up) over its
//     shard only, and a deterministic merge folds the per-shard pairs into
//     the global two-best per row.
//
// Exactness of the merge: every rejection inside a task is strictly above
// min(ub, d2_task) where ub (the seeded second-best bound) is ≥ the row's
// FINAL global second-best and d2_task, a running second-best over a subset
// of columns, likewise — so no candidate of the row's true global two-best
// is ever rejected in any shard. Both survive to reference-order
// confirmation in their own shards, each ranks in its shard's top two (at
// most one global candidate can out-rank it anywhere), and the
// lexicographic merge over all per-shard pairs therefore reproduces exactly
// the two smallest (distance, column) pairs the reference's full ascending
// scan would keep.
//
// Determinism of the accounting: the task grid is a pure function of
// (rows, cols, BlockRows, ShardCols) — never of Workers — each task's visit
// order and pruning bounds are fixed (bounds start from the row's seeded
// cap and tighten only within the task), and the int64 counters merge by
// addition. Stats are therefore bit-identical at any worker count; BlockRows
// and ShardCols may change counter values (they move pruning decisions
// between stages) but never the links.

// defaultBlockRows is the seed-major block height: how many consecutive
// scan-order security rows share one pass over a wild column.
const defaultBlockRows = 16

// defaultShardCols is the wild-pool shard width in norm-sorted columns.
// Sized so a shard's hot stripes stay cache-resident while the task grid
// still offers blocks×shards-way parallelism at bench shapes.
const defaultShardCols = 131072

// blockPlan is the per-search state of the blocked path: seed-major copies
// of the row-side screen data (indexed by scan-order position t, contiguous
// for a block), the quantized stripes of both sides, per-row seeded bounds
// and norm windows, and the per-(row, shard) two-best result grid.
type blockPlan struct {
	e         *engine
	blockRows int
	shardCols int
	nblocks   int
	nshards   int

	qz   quantizer
	qw   int     // quantized row width (pw + tw)
	nsuf int     // suffix-norm checkpoints per row (quantSuffixCount(qw))
	wldQ []uint8 // n×qw quantized wild rows, walk order, screen-order dims
	// Suffix norms at each chunk boundary (‖dims ≥ 16(c+1)‖), used by the
	// quantized screen's early-exit checkpoints.
	ordSuf []float64 // m×nsuf
	wldSuf []float64 // n×nsuf, walk order

	// Seed-major row data (index t = position in e.secOrder).
	ordN    []float64 // row norms
	ordMid  []int     // binary-searched norm position in wldNS
	ordUB   []float64 // seeded second-best upper bound (the pruning cap)
	ordWS   []int     // global norm-window start (from ordUB)
	ordWE   []int     // global norm-window end (exclusive)
	ordPre  []float64 // m×pw screen-order prefixes
	ordTail []float64 // m×tw screen-order tails
	ordQ    []uint8   // m×qw quantized rows

	// Fine-grained segment norms for the blocked ladder: blockSegPre even
	// splits of the prefix and blockSegTail of the tail, per row. Four times
	// the resolution of the engine-wide 4-segment stripes, so the O(1)
	// segment test and the tail lower bound both reject far more before any
	// per-dimension work (measured at 1000×100k: distance evaluations drop
	// ~5.5x against the 4-segment test at ~2x the per-candidate cost).
	ordSegs []float64 // m×blockSeg
	wldSegs []float64 // n×blockSeg, walk order

	// Per-(t, shard) two-best results, written by exactly one task each.
	d1, d2 []float64
	j1, j2 []int
}

// The blocked path's segment-norm split: blockSegPre segments cover exactly
// the screen prefix, blockSegTail exactly the tail, so the tail segments'
// squared gaps are an admissible lower bound for the tail contribution on
// its own.
const (
	blockSegPre  = 4
	blockSegTail = 12
	blockSeg     = blockSegPre + blockSegTail
)

// quantAutoDims is the screen width at which a nil Options.Quantize
// resolves to on. The integer screen trades per-dimension float64 loads for
// uint8 ones; with the blocked scan keeping its stripes cache-resident, the
// float ladder wins outright up to a few hundred dimensions (measured: the
// quantized screen costs ~95 cycles per rejection against ~50 for the
// segment+prefix float path at d=60), and only rows wide enough to blow the
// per-candidate cache budget flip the balance.
const quantAutoDims = 256

// quantizeEnabled resolves the tri-state Quantize option against the screen
// width.
func quantizeEnabled(q *bool, width int) bool {
	if q != nil {
		return *q
	}
	return width >= quantAutoDims
}

// fillEvenSegNorms writes the Euclidean norms of parts even contiguous
// splits of row (the same deterministic ⌊len·s/parts⌋ boundaries on both
// sides).
func fillEvenSegNorms(dst, row []float64) {
	parts := len(dst)
	for s := 0; s < parts; s++ {
		lo, hi := len(row)*s/parts, len(row)*(s+1)/parts
		sum := 0.0
		for _, v := range row[lo:hi] {
			sum += v * v
		}
		dst[s] = math.Sqrt(sum)
	}
}

func newBlockPlan(e *engine, o Options) *blockPlan {
	m, n := e.sec.rows, len(e.wldNS)
	p := &blockPlan{e: e, blockRows: o.BlockRows, shardCols: o.ShardCols}
	if p.blockRows <= 0 {
		p.blockRows = defaultBlockRows
	}
	if p.shardCols <= 0 {
		p.shardCols = defaultShardCols
	}
	p.nblocks = (m + p.blockRows - 1) / p.blockRows
	p.nshards = (n + p.shardCols - 1) / p.shardCols

	pw, tw := e.pw, e.tw
	p.ordN = make([]float64, m)
	p.ordMid = make([]int, m)
	p.ordUB = make([]float64, m)
	p.ordWS = make([]int, m)
	p.ordWE = make([]int, m)
	p.ordPre = make([]float64, m*pw)
	p.ordTail = make([]float64, m*tw)
	for t, i := range e.secOrder {
		p.ordN[t] = e.secN[i]
		p.ordMid[t] = sort.SearchFloat64s(e.wldNS, e.secN[i])
		row := e.secS.Row(i)
		copy(p.ordPre[t*pw:(t+1)*pw], row[:pw])
		copy(p.ordTail[t*tw:(t+1)*tw], row[pw:])
	}

	p.qw = pw + tw
	if quantizeEnabled(o.Quantize, p.qw) {
		p.qz = newQuantizer(pw, tw, p.ordPre, p.ordTail, e.wldP, e.wldT)
	}
	if p.qz.ok {
		qw := p.qw
		p.nsuf = quantSuffixCount(qw)
		p.ordQ = make([]uint8, m*qw)
		p.ordSuf = make([]float64, m*p.nsuf)
		for t := 0; t < m; t++ {
			p.qz.quantizeRow(p.ordQ[t*qw:(t+1)*qw], p.ordPre[t*pw:(t+1)*pw], p.ordTail[t*tw:(t+1)*tw])
			fillSuffixNorms(p.ordSuf[t*p.nsuf:(t+1)*p.nsuf], p.ordPre[t*pw:(t+1)*pw], p.ordTail[t*tw:(t+1)*tw])
		}
		p.wldQ = make([]uint8, n*qw)
		p.wldSuf = make([]float64, n*p.nsuf)
		for k := 0; k < n; k++ {
			p.qz.quantizeRow(p.wldQ[k*qw:(k+1)*qw], e.wldP[k*pw:(k+1)*pw], e.wldT[k*tw:(k+1)*tw])
			fillSuffixNorms(p.wldSuf[k*p.nsuf:(k+1)*p.nsuf], e.wldP[k*pw:(k+1)*pw], e.wldT[k*tw:(k+1)*tw])
		}
	}

	p.ordSegs = make([]float64, m*blockSeg)
	for t := 0; t < m; t++ {
		fillEvenSegNorms(p.ordSegs[t*blockSeg:t*blockSeg+blockSegPre], p.ordPre[t*pw:(t+1)*pw])
		fillEvenSegNorms(p.ordSegs[t*blockSeg+blockSegPre:(t+1)*blockSeg], p.ordTail[t*tw:(t+1)*tw])
	}
	p.wldSegs = make([]float64, n*blockSeg)
	for k := 0; k < n; k++ {
		fillEvenSegNorms(p.wldSegs[k*blockSeg:k*blockSeg+blockSegPre], e.wldP[k*pw:(k+1)*pw])
		fillEvenSegNorms(p.wldSegs[k*blockSeg+blockSegPre:(k+1)*blockSeg], e.wldT[k*tw:(k+1)*tw])
	}

	cells := m * p.nshards
	p.d1 = make([]float64, cells)
	p.d2 = make([]float64, cells)
	p.j1 = make([]int, cells)
	p.j2 = make([]int, cells)
	return p
}

// fillSuffixNorms records, for one packed screen-order row (prefix then
// tail), the Euclidean norm of the dimensions at and after each chunk
// boundary 16(c+1) — the checkpoint data of the quantized screen.
func fillSuffixNorms(dst []float64, pre, tail []float64) {
	d := len(pre) + len(tail)
	at := func(j int) float64 {
		if j < len(pre) {
			return pre[j]
		}
		return tail[j-len(pre)]
	}
	s2 := 0.0
	for j := d - 1; j >= 0; j-- {
		if (j+1)%quantChunk == 0 {
			if c := (j+1)/quantChunk - 1; c < len(dst) {
				dst[c] = math.Sqrt(s2)
			}
		}
		v := at(j)
		s2 += v * v
	}
}

// seedRow runs the pre-phase for scan-order row t: the seeded bounds and
// the global norm window they imply, plus the bulk accounting for every
// column outside the window (those are skipped by all of the row's tasks
// without even an O(1) test).
func (p *blockPlan) seedRow(t int, c *scanCounters) {
	e := p.e
	i := e.secOrder[t]
	_, ub := e.seedBounds(i, c)
	p.ordUB[t] = ub
	ws, we := e.normWindow(p.ordN[t], p.ordMid[t], ub)
	p.ordWS[t], p.ordWE[t] = ws, we
	c.normPruned += int64(len(e.wldNS) - (we - ws))
}

// normWindow returns the half-open column range [ws, we) that survives the
// bulk norm-window test at bound b: exactly the sorted positions whose
// shaded norm gap does not prove them strictly worse than b. The true best
// and runner-up always lie inside (their distances are ≤ √b, and the norm
// gap lower-bounds the distance).
func (e *engine) normWindow(na float64, mid int, b float64) (ws, we int) {
	n := len(e.wldNS)
	if math.IsInf(b, 1) {
		return 0, n
	}
	ws = sort.Search(mid, func(k int) bool {
		g := na - e.wldNS[k]
		return g*g*normBoundShade <= b
	})
	we = mid + sort.Search(n-mid, func(d int) bool {
		g := e.wldNS[mid+d] - na
		return g*g*normBoundShade > b
	})
	return ws, we
}

// blockScratch is one worker's reusable per-task state, sized to the block
// height once per worker.
type blockScratch struct {
	ws, we          []int // row windows clamped to the task's shard
	d1, d2          []float64
	j1, j2          []int
	b               []float64 // live pruning bound: min(seeded cap, running d2)
	onRight, onLeft []bool
}

func newBlockScratch(block int) *blockScratch {
	return &blockScratch{
		ws: make([]int, block), we: make([]int, block),
		d1: make([]float64, block), d2: make([]float64, block),
		j1: make([]int, block), j2: make([]int, block),
		b:       make([]float64, block),
		onRight: make([]bool, block), onLeft: make([]bool, block),
	}
}

// runBlocked executes the pre-phase and the task grid on o.Workers
// goroutines, then merges the per-shard pairs into u/v (best) and u2/v2
// (runner-up), indexed by original security row.
func (p *blockPlan) runBlocked(ctx context.Context, o Options, stats *Stats, u []float64, v []int, u2 []float64, v2 []int) error {
	e := p.e
	m := e.sec.rows
	if err := e.parallelRows(ctx, o.Workers, m, stats, p.seedRow); err != nil {
		return err
	}

	tasks := p.nblocks * p.nshards
	workers := o.Workers
	if workers > tasks {
		workers = tasks
	}
	var (
		next int64
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var c scanCounters
			scr := newBlockScratch(p.blockRows)
			for {
				task := int(atomic.AddInt64(&next, 1)) - 1
				if task >= tasks || ctx.Err() != nil {
					break
				}
				p.runTask(task, &c, scr)
			}
			mu.Lock()
			stats.addScan(c)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return canceled(ctx)
	}

	// Deterministic merge, ascending shard order: the global two-best is the
	// lexicographic top two over the union of every shard's reported pairs.
	for t := 0; t < m; t++ {
		d1, j1, d2, j2 := inf, -1, inf, -1
		base := t * p.nshards
		for s := 0; s < p.nshards; s++ {
			for pass := 0; pass < 2; pass++ {
				var d float64
				var j int
				if pass == 0 {
					d, j = p.d1[base+s], p.j1[base+s]
				} else {
					d, j = p.d2[base+s], p.j2[base+s]
				}
				if j < 0 {
					continue
				}
				if d < d1 || (d == d1 && j < j1) {
					d2, j2 = d1, j1
					d1, j1 = d, j
				} else if d < d2 || (d == d2 && j < j2) {
					d2, j2 = d, j
				}
			}
		}
		i := e.secOrder[t]
		u[i], v[i] = d1, j1
		u2[i], v2[i] = d2, j2
	}
	return nil
}

// runTask scans one (block, shard) cell: every row of the block against
// every shard column inside the row's norm window, sweeping outward from a
// shared anchor so the nearest-norm (likeliest) candidates are visited
// first and the live bounds collapse early.
func (p *blockPlan) runTask(task int, c *scanCounters, scr *blockScratch) {
	e := p.e
	bi, si := task/p.nshards, task%p.nshards
	lo := si * p.shardCols
	hi := lo + p.shardCols
	if n := len(e.wldNS); hi > n {
		hi = n
	}
	t0 := bi * p.blockRows
	t1 := t0 + p.blockRows
	if m := e.sec.rows; t1 > m {
		t1 = m
	}
	B := t1 - t0

	anyWin := false
	for r := 0; r < B; r++ {
		t := t0 + r
		ws, we := p.ordWS[t], p.ordWE[t]
		if ws < lo {
			ws = lo
		}
		if we > hi {
			we = hi
		}
		if we < ws {
			ws, we = lo, lo
		}
		scr.ws[r], scr.we[r] = ws, we
		scr.d1[r], scr.j1[r] = inf, -1
		scr.d2[r], scr.j2[r] = inf, -1
		scr.b[r] = p.ordUB[t]
		if we > ws {
			anyWin = true
		}
	}
	if anyWin {
		// Anchor at the block's median norm position so both sweeps walk
		// outward through growing norm gaps for (almost) every row.
		anchor := p.ordMid[t0+B/2]
		if anchor < lo {
			anchor = lo
		}
		if anchor > hi {
			anchor = hi
		}
		p.sweep(c, scr, t0, B, anchor, hi, +1)
		p.sweep(c, scr, t0, B, anchor-1, lo-1, -1)
	}
	base := t0*p.nshards + si
	for r := 0; r < B; r++ {
		cell := base + r*p.nshards
		p.d1[cell], p.j1[cell] = scr.d1[r], scr.j1[r]
		p.d2[cell], p.j2[cell] = scr.d2[r], scr.j2[r]
	}
}

// sweepTile is the column-tile width of a sweep. Rows of a block revisit the
// same tile back to back, so one tile's hot stripes (norms, segment norms,
// quantized rows) stay L1/L2-resident across the whole block while each row
// still runs a branch-light row-major inner loop over the tile.
const sweepTile = 256

// sweep walks column tiles from start toward stop (exclusive) in direction
// dir. Within a tile every still-active block row scans its in-window slice
// of the tile row-major — all per-row state in locals — through the staged
// rejection ladder. A row's window edge moves inward whenever its bound
// tightens, pruning the remainder of the side in bulk; the row drops out
// once its edge is reached, and the sweep ends when no rows remain.
func (p *blockPlan) sweep(c *scanCounters, scr *blockScratch, t0, B, start, stop, dir int) {
	on := scr.onRight
	if dir < 0 {
		on = scr.onLeft
	}
	e := p.e
	active := 0
	for r := 0; r < B; r++ {
		// Refresh this direction's far edge against the row's current bound
		// before the pass starts: the bound may have tightened during the
		// opposite pass, and this side is still entirely unvisited, so the
		// bulk accounting stays an exact partition of the task's window.
		t := t0 + r
		na, mid, b := p.ordN[t], p.ordMid[t], scr.b[r]
		if dir > 0 {
			if lo := max(mid, scr.ws[r]); lo < scr.we[r] {
				weNew := e.windowRight(na, b, lo, scr.we[r])
				c.normPruned += int64(scr.we[r] - weNew)
				scr.we[r] = weNew
			}
		} else {
			if hi := min(mid, scr.we[r]); hi > scr.ws[r] {
				wsNew := e.windowLeft(na, b, scr.ws[r], hi)
				c.normPruned += int64(wsNew - scr.ws[r])
				scr.ws[r] = wsNew
			}
		}
		in := scr.ws[r] < scr.we[r] &&
			((dir > 0 && scr.we[r] > start) || (dir < 0 && scr.ws[r] <= start))
		on[r] = in
		if in {
			active++
		}
	}
	for tile := start; tile != stop && active > 0; {
		// Tile bounds [klo, khi) regardless of direction.
		var klo, khi, next int
		if dir > 0 {
			klo = tile
			khi = tile + sweepTile
			if khi > stop {
				khi = stop
			}
			next = khi
		} else {
			khi = tile + 1
			klo = khi - sweepTile
			if klo < stop+1 {
				klo = stop + 1
			}
			next = klo - 1
		}
		for r := 0; r < B; r++ {
			if !on[r] {
				continue
			}
			ks, ke := scr.ws[r], scr.we[r]
			if ks < klo {
				ks = klo
			}
			if ke > khi {
				ke = khi
			}
			if dir > 0 && ks >= scr.we[r] {
				on[r] = false
				active--
				continue
			}
			if dir < 0 && ke <= scr.ws[r] {
				on[r] = false
				active--
				continue
			}
			if ks >= ke {
				continue
			}
			if !p.scanRowTile(c, scr, r, t0+r, ks, ke, dir) {
				on[r] = false
				active--
			}
		}
		tile = next
	}
}

// scanRowTile runs scan-order row t (scratch slot r) over tile columns
// [ks, ke) in direction dir, with every per-row value hoisted into locals.
//
// There is no per-candidate norm-gap test: the row's window edges carry the
// norm bound instead. Each time a confirmation tightens the live bound, the
// current side's outward edge is re-derived by binary search over the
// sorted norms and the excluded columns are counted in bulk — O(log n) per
// tightening instead of O(1) per candidate, and tightenings are rare.
// Candidates on the non-monotone stretch between the sweep anchor and the
// row's own norm position are covered by the segment screen, whose bound
// dominates the plain norm gap: the segment-norm vectors u, v satisfy
// ‖u‖ = ‖a‖ and ‖v‖ = ‖b‖, so ‖u−v‖² ≥ (‖a‖−‖b‖)², and any candidate a
// norm test could reject the segment test rejects too (the rejection is
// merely attributed to the segment stage).
//
// It returns false when the row has no columns left on this side.
func (p *blockPlan) scanRowTile(c *scanCounters, scr *blockScratch, r, t, ks, ke, dir int) bool {
	e := p.e
	pw, tw, qw := e.pw, e.tw, p.qw
	na := p.ordN[t]
	mid := p.ordMid[t]
	seg := p.ordSegs[t*blockSeg : t*blockSeg+blockSeg : t*blockSeg+blockSeg]
	pre := p.ordPre[t*pw : t*pw+pw : t*pw+pw]
	tail := p.ordTail[t*tw : t*tw+tw : t*tw+tw]
	var qrow []uint8
	var qsuf []float64
	nsuf := p.nsuf
	quant := p.qz.ok
	if quant {
		qrow = p.ordQ[t*qw : t*qw+qw : t*qw+qw]
		qsuf = p.ordSuf[t*nsuf : t*nsuf+nsuf : t*nsuf+nsuf]
	}
	b := scr.b[r]
	d1, j1, d2, j2 := scr.d1[r], scr.j1[r], scr.d2[r], scr.j2[r]

	k, kend := ks, ke
	if dir < 0 {
		k, kend = ke-1, ks-1
	}
	for ; k != kend; k += dir {
		sg := p.wldSegs[k*blockSeg : k*blockSeg+blockSeg : k*blockSeg+blockSeg]
		g0 := seg[0] - sg[0]
		g1 := seg[1] - sg[1]
		g2 := seg[2] - sg[2]
		g3 := seg[3] - sg[3]
		g4 := seg[4] - sg[4]
		g5 := seg[5] - sg[5]
		g6 := seg[6] - sg[6]
		g7 := seg[7] - sg[7]
		g8 := seg[8] - sg[8]
		g9 := seg[9] - sg[9]
		g10 := seg[10] - sg[10]
		g11 := seg[11] - sg[11]
		g12 := seg[12] - sg[12]
		g13 := seg[13] - sg[13]
		g14 := seg[14] - sg[14]
		g15 := seg[15] - sg[15]
		// The tail segments cover exactly the tail dimensions, so their
		// squared gaps alone lower-bound the tail contribution — the same
		// tailLb the per-dimension screens fold in below.
		tailLb := (((g4*g4 + g5*g5) + (g6*g6 + g7*g7)) + ((g8*g8 + g9*g9) + (g10*g10 + g11*g11))) +
			((g12*g12 + g13*g13) + (g14*g14 + g15*g15))
		if (((g0*g0+g1*g1)+(g2*g2+g3*g3))+tailLb)*normBoundShade > b {
			c.normPruned++
			continue
		}
		if quant && p.qz.reject(qrow, p.wldQ[k*qw:k*qw+qw:k*qw+qw], qsuf, p.wldSuf[k*nsuf:k*nsuf+nsuf:k*nsuf+nsuf], b) {
			c.quantPruned++
			continue
		}
		c.evals++
		pd, ok := prefixScreen(pre, e.wldP[k*pw:k*pw+pw:k*pw+pw], tailLb*normBoundShade, b*screenSlack)
		if !ok {
			c.earlyExited++
			continue
		}
		if !screenTailDist2(tail, e.wldT[k*tw:k*tw+tw:k*tw+tw], pd, b) {
			c.earlyExited++
			continue
		}
		j := e.orig[k]
		sum := dist2(e.sec.Row(e.secOrder[t]), e.wld.Row(j))
		if sum < d1 || (sum == d1 && j < j1) {
			d2, j2 = d1, j1
			d1, j1 = sum, j
		} else if sum < d2 || (sum == d2 && j < j2) {
			d2, j2 = sum, j
		}
		if d2 < b {
			b = d2
			// The bound just tightened: re-derive this side's outward edge
			// over the monotone (past-mid) stretch of the sorted norms,
			// count the newly excluded columns in bulk, and stop the tile
			// loop at the new edge. The confirmed column always stays
			// inside the new window (its gap is below its own distance,
			// which is below the new bound).
			if dir > 0 {
				if lo := max(k+1, mid); lo < scr.we[r] {
					weNew := e.windowRight(na, b, lo, scr.we[r])
					c.normPruned += int64(scr.we[r] - weNew)
					scr.we[r] = weNew
					if kend > weNew {
						kend = weNew
					}
				}
			} else {
				if hi := min(k, mid); hi > scr.ws[r] {
					wsNew := e.windowLeft(na, b, scr.ws[r], hi)
					c.normPruned += int64(wsNew - scr.ws[r])
					scr.ws[r] = wsNew
					if kend < wsNew-1 {
						kend = wsNew - 1
					}
				}
			}
		}
	}
	scr.b[r] = b
	scr.d1[r], scr.j1[r], scr.d2[r], scr.j2[r] = d1, j1, d2, j2
	if dir > 0 {
		return scr.we[r] > ke
	}
	return scr.ws[r] < ks
}

// windowRight returns the first position in [lo, hi) whose shaded norm gap
// above na strictly exceeds b. The caller guarantees lo is at or past the
// row's norm position, where the gap is non-decreasing.
func (e *engine) windowRight(na, b float64, lo, hi int) int {
	return lo + sort.Search(hi-lo, func(d int) bool {
		g := e.wldNS[lo+d] - na
		return g*g*normBoundShade > b
	})
}

// windowLeft returns the first position in [lo, hi) whose shaded norm gap
// below na no longer exceeds b. The caller guarantees hi is at or before the
// row's norm position, where the gap is non-increasing.
func (e *engine) windowLeft(na, b float64, lo, hi int) int {
	return lo + sort.Search(hi-lo, func(d int) bool {
		g := na - e.wldNS[lo+d]
		return g*g*normBoundShade <= b
	})
}
