package nearestlink

import (
	"math"
	"sort"
)

// Quantized pre-screen: a per-dimension affine uint8 quantization of both
// matrices' screen-order rows, used as a pure-integer lower bound on dist2
// before any float64 per-dimension work. Like every other rejection stage,
// the screen is admissible: it can only drop candidates whose reference-
// order distance is provably, strictly above the current pruning bound — a
// true nearest neighbor (or an index-winning tie) can never be lost to it.
//
// The map is affine per dimension — its own offset lo_j — with one shared
// bucket width step across all dimensions:
//
//	q_j(x) = clamp(⌊(x − lo_j) · (1/step)⌋, 0, 255)
//
// lo_j and the per-dimension span come from robust percentiles of a
// deterministic strided sample of both matrices, so a long-tailed outlier
// cannot flatten the resolution of the whole dimension; step is the widest
// robust span divided by 255, which keeps every dimension's in-range
// buckets inside [0, 255] while giving every dimension the same absolute
// resolution. Out-of-range values saturate at bucket 0 or 255.
//
// Admissibility, per dimension. Saturation is equivalent to clamping x into
// the bucket range first, and clamping is 1-Lipschitz — it can only shrink
// |x − y| — so a lower bound derived from the saturated buckets understates
// the true gap. For in-range values the computed bucket differs from the
// ideal ⌊(x − lo_j)/step⌋ only through the rounding of the subtraction, the
// stored reciprocal, and the multiply — relative error ε ≤ 5·2⁻⁵³ — so with
// bucket gap k = |q_j(x) − q_j(y)| ≥ 2,
//
//	|x − y| ≥ step·((k−1) − ε·(q_j(x)+q_j(y)+1)) ≥ step·(k−1)·(1 − 511ε),
//
// i.e. (x−y)² ≥ step²·(k−1)²·(1 − 1.1e-12), and for k ≤ 1 the zero
// contribution is trivially a lower bound. Summing over dimensions,
// step²·Σ_j max(0, k_j−1)² understates dist2 by at most the same 1.1e-12
// relative factor. The integer sum is exact — bounded by d·254² ≪ 2⁵³ — so
// its float64 conversion at each early-exit checkpoint is exact, and the
// single rounding of the scale multiply, together with the quantization
// understatement and the reference-order summation error of dist2
// (2γ₆₀ ≈ 1.3e-14), is absorbed with huge slack by the 1e-9 shade every
// quantized rejection applies.
//
// The screen self-disables (ok=false) when no dimension has a finite,
// non-degenerate robust span; a disabled screen rejects nothing.
type quantizer struct {
	ok    bool
	d     int       // screen-order width (pw + tw)
	lo    []float64 // per-dim affine offset (robust 2nd-percentile low)
	inv   []float64 // per-chunk reciprocal bucket width 1/step; 0 disables
	step2 []float64 // per-chunk step²: value-space factor for the chunk sum
}

// quantSample caps the per-side, per-dimension sample used for the robust
// range fit; the stride is a pure function of the row count, so the fit is
// deterministic for a given input.
const quantSample = 4096

// newQuantizer fits per-dimension offsets and the shared bucket width from
// the packed screen-order stripes (prefix pw wide, tail tw wide) of both
// matrices.
func newQuantizer(pw, tw int, secP, secT, wldP, wldT []float64) quantizer {
	d := pw + tw
	nch := (d + quantChunk - 1) / quantChunk
	q := quantizer{
		d:     d,
		lo:    make([]float64, d),
		inv:   make([]float64, nch),
		step2: make([]float64, nch),
	}
	sample := make([]float64, 0, 2*quantSample+2)
	span := make([]float64, d)
	for j := 0; j < d; j++ {
		sample = sample[:0]
		sample = appendDimSample(sample, secP, secT, pw, tw, j)
		sample = appendDimSample(sample, wldP, wldT, pw, tw, j)
		lo, hi, ok := robustRange(sample)
		if !ok {
			continue
		}
		q.lo[j] = lo
		span[j] = hi - lo
	}
	for ci := 0; ci < nch; ci++ {
		maxSpan := 0.0
		for j := ci * quantChunk; j < d && j < (ci+1)*quantChunk; j++ {
			if span[j] > maxSpan {
				maxSpan = span[j]
			}
		}
		step := maxSpan / 255
		if step <= 0 || math.IsInf(step, 0) {
			continue
		}
		q.ok = true
		q.inv[ci] = 1 / step
		q.step2[ci] = step * step
	}
	return q
}

// appendDimSample appends a strided sample of screen-order dimension j from
// one matrix's packed (prefix, tail) stripes, keeping only finite values.
func appendDimSample(dst []float64, packP, packT []float64, pw, tw, j int) []float64 {
	var pack []float64
	var w, off int
	if j < pw {
		pack, w, off = packP, pw, j
	} else {
		pack, w, off = packT, tw, j-pw
	}
	if w == 0 {
		return dst
	}
	rows := len(pack) / w
	stride := 1
	if rows > quantSample {
		stride = rows / quantSample
	}
	for r := 0; r < rows; r += stride {
		v := pack[r*w+off]
		if !math.IsInf(v, 0) && !math.IsNaN(v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// robustRange returns the [2nd, 98th] percentile span of the sample — wide
// enough to resolve the bulk of the mass, immune to long-tail outliers
// (saturating outliers inward keeps the bound admissible; see the type
// comment).
func robustRange(sample []float64) (lo, hi float64, ok bool) {
	if len(sample) < 8 {
		return 0, 0, false
	}
	sort.Float64s(sample)
	n := len(sample)
	lo = sample[n*2/100]
	hi = sample[n*98/100]
	return lo, hi, hi > lo
}

// quantizeRow writes one row's bucket indices into dst (len d) from its
// packed screen-order prefix and tail.
func (q *quantizer) quantizeRow(dst []uint8, pre, tail []float64) {
	pw := len(pre)
	for j, v := range pre {
		dst[j] = q.bucket(j, v)
	}
	for j, v := range tail {
		dst[pw+j] = q.bucket(pw+j, v)
	}
}

// bucket maps one value to its dimension-j bucket. The explicit comparisons
// (never a raw conversion) send NaN and out-of-range values to a saturated
// edge bucket.
func (q *quantizer) bucket(j int, v float64) uint8 {
	s := (v - q.lo[j]) * q.inv[j/quantChunk]
	if !(s > 0) {
		return 0
	}
	if s >= 255 {
		return 255
	}
	return uint8(s)
}

// quantChunk is the kernel's chunk width: an early-exit checkpoint runs
// after every quantChunk quantized dimensions.
const quantChunk = 16

// quantSuffixCount returns how many chunk boundaries of a width-d row have
// dimensions after them — the length of the suffix-norm checkpoint arrays.
func quantSuffixCount(d int) int {
	c := 0
	for quantChunk*(c+1) < d {
		c++
	}
	return c
}

// reject reports whether the integer lower bound proves the candidate pair
// strictly worse than bound. After every quantChunk dimensions it
// checkpoints the integer partial sum PLUS the squared gap of the two
// rows' remaining-dimension norms (sufA/sufB, one entry per boundary) —
// by the reverse triangle inequality the remaining dimensions contribute
// at least (‖a_suf‖−‖b_suf‖)², so the checkpoint is an admissible bound on
// the full dist2. On screen-ordered stripes (descending variance first)
// most rejections cost only the first chunk of uint8 work.
func (q *quantizer) reject(a, b []uint8, sufA, sufB []float64, bound float64) bool {
	total := 0.0
	j, d := 0, len(a)
	c := 0
	for ; j+quantChunk <= d; j += quantChunk {
		s := quantLBChunk(a[j:j+quantChunk:j+quantChunk], b[j:j+quantChunk:j+quantChunk])
		total += float64(s) * q.step2[c]
		var g float64
		if c < len(sufA) {
			g = sufA[c] - sufB[c]
		}
		if (total+g*g)*normBoundShade > bound {
			return true
		}
		c++
	}
	if j < d {
		var s int64
		for ; j < d; j++ {
			s += qterm(a[j], b[j])
		}
		total += float64(s) * q.step2[c]
	}
	return total*normBoundShade > bound
}

// quantLBChunk is the chunk-wide kernel: Σ max(0, |a−b|−1)² over one chunk.
// The re-slicing drops every bounds check, and the two independent
// accumulators break the integer-multiply latency chain.
func quantLBChunk(a, b []uint8) int64 {
	a = a[:quantChunk:quantChunk]
	b = b[:quantChunk:quantChunk]
	var s0, s1 int64
	for j := 0; j < quantChunk; j += 2 {
		s0 += qterm(a[j], b[j])
		s1 += qterm(a[j+1], b[j+1])
	}
	return s0 + s1
}

// qterm is one dimension's term max(0, |a−b|−1)². Small enough to inline;
// the branches compile to conditional moves.
func qterm(a, b uint8) int64 {
	d := int64(a) - int64(b)
	if d < 0 {
		d = -d
	}
	d--
	if d <= 0 {
		return 0
	}
	return d * d
}
