package nearestlink

import (
	"fmt"
	"math"
)

// Matrix is a flat, row-major feature matrix: rows*cols float64 values in
// one contiguous allocation with a fixed stride between rows. The engine
// operates exclusively on this layout — scanning a wild pool walks memory
// sequentially instead of chasing per-row pointers, which is what lets the
// distance kernel run at cache speed on realistic (thousands × millions)
// problem sizes.
type Matrix struct {
	rows, cols int
	// stride is the element distance between consecutive rows; always
	// >= cols (== cols for matrices built here, kept separate so future
	// sub-views can share one backing array).
	stride int
	data   []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nearestlink: NewMatrix(%d, %d): negative dimension", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, stride: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows copies a [][]float64 into flat storage, validating that
// every row shares the first row's dimensionality. A ragged input returns a
// wrapped ErrDimensionMismatch instead of the out-of-range panic the old
// pointer-per-row code paths risked.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d features, want %d",
				ErrDimensionMismatch, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// flatten copies pre-validated rows into flat storage (internal fast path;
// callers must have run validateDims).
func flatten(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return &Matrix{}
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the per-row feature dimensionality.
func (m *Matrix) Cols() int { return m.cols }

// Stride returns the element distance between consecutive rows.
func (m *Matrix) Stride() int { return m.stride }

// Data exposes the backing array (row-major, stride-spaced).
func (m *Matrix) Data() []float64 { return m.data }

// Row returns the i-th row as a view into the backing array (no copy).
func (m *Matrix) Row(i int) []float64 {
	off := i * m.stride
	return m.data[off : off+m.cols : off+m.cols]
}

// SetRow copies vals into the i-th row.
func (m *Matrix) SetRow(i int, vals []float64) {
	if len(vals) != m.cols {
		panic(fmt.Sprintf("nearestlink: SetRow: %d values into %d columns", len(vals), m.cols))
	}
	copy(m.Row(i), vals)
}

// RowSlices returns the rows as a [][]float64 of views into the flat
// backing array — one header allocation, zero data copies. It lets flat
// matrices feed APIs that still speak [][]float64 (the ml classifiers).
func (m *Matrix) RowSlices() [][]float64 {
	out := make([][]float64, m.rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// Clone returns a deep copy. Densely packed matrices (stride == cols, the
// layout every constructor here produces) clone with one bulk copy instead
// of a per-row loop — this sits on the SearchMatrix hot path, where
// normalization clones the full wild pool before weighting it.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	if m.stride == m.cols {
		copy(c.data, m.data)
		return c
	}
	for i := 0; i < m.rows; i++ {
		copy(c.Row(i), m.Row(i))
	}
	return c
}

// weightsFlat computes the max-abs weights w_j = 1/max|a_j| over the rows
// of all provided matrices (they must share a column count).
func weightsFlat(sets ...*Matrix) []float64 {
	dim := 0
	for _, s := range sets {
		if s != nil && s.rows > 0 {
			dim = s.cols
			break
		}
	}
	w := make([]float64, dim)
	for _, s := range sets {
		if s == nil {
			continue
		}
		for i := 0; i < s.rows; i++ {
			row := s.Row(i)
			for j, v := range row {
				if v < 0 {
					v = -v
				}
				if v > w[j] {
					w[j] = v
				}
			}
		}
	}
	for j := range w {
		if w[j] == 0 {
			w[j] = 1
		} else {
			w[j] = 1 / w[j]
		}
	}
	return w
}

// applyWeights scales every row of m by w in place.
func applyWeights(m *Matrix, w []float64) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= w[j]
		}
	}
}

// weightedClone returns a copy of m with every row scaled by w.
func weightedClone(m *Matrix, w []float64) *Matrix {
	c := m.Clone()
	applyWeights(c, w)
	return c
}

// rowNorms returns the Euclidean norm ‖x‖ of every row, computed with the
// blocked dot kernel. The norms feed the engine's O(1) candidate rejection
// bound (‖a‖−‖b‖)² ≤ ‖a−b‖².
func rowNorms(m *Matrix) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		out[i] = math.Sqrt(dot(row, row))
	}
	return out
}
