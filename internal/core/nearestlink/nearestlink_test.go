package nearestlink

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestWeights(t *testing.T) {
	a := [][]float64{{2, -8, 0}}
	b := [][]float64{{-4, 1, 0}}
	w := Weights(a, b)
	if w[0] != 0.25 || w[1] != 0.125 {
		t.Errorf("weights = %v", w)
	}
	if w[2] != 1 {
		t.Errorf("constant-dimension weight = %v, want 1", w[2])
	}
}

func TestSearchHandPicked(t *testing.T) {
	// Two security patches; wild pool where the greedy assignment is
	// unambiguous.
	sec := [][]float64{{0}, {10}}
	wild := [][]float64{{9}, {1}, {50}}
	links, err := Search(sec, wild, &Options{DisableNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("links = %d", len(links))
	}
	got := map[int]int{}
	for _, l := range links {
		got[l.Security] = l.Wild
	}
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("assignment = %v, want 0->1, 1->0", got)
	}
}

func TestSearchCollisionResolution(t *testing.T) {
	// Both security patches are nearest to wild[0]; one must fall back to
	// its second choice, and the pair with the smaller distance wins the
	// contested column (greedy global-min order).
	sec := [][]float64{{0}, {0.5}}
	wild := [][]float64{{0.1}, {3}}
	links, err := Search(sec, wild, &Options{DisableNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	for _, l := range links {
		got[l.Security] = l.Wild
	}
	// sec[0] is 0.1 from wild[0]; sec[1] is 0.4 from wild[0]. sec[0] wins.
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("assignment = %v, want 0->0, 1->1", got)
	}
}

func TestSearchUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sec := randRows(rng, 40, 5)
	wild := randRows(rng, 200, 5)
	links, err := Search(sec, wild, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 40 {
		t.Fatalf("links = %d", len(links))
	}
	usedWild := map[int]bool{}
	usedSec := map[int]bool{}
	for _, l := range links {
		if usedWild[l.Wild] {
			t.Fatalf("wild %d linked twice", l.Wild)
		}
		if usedSec[l.Security] {
			t.Fatalf("security %d linked twice", l.Security)
		}
		usedWild[l.Wild] = true
		usedSec[l.Security] = true
		if l.Distance < 0 || math.IsNaN(l.Distance) {
			t.Fatalf("bad distance %v", l.Distance)
		}
	}
}

func TestSearchMoreSecurityThanWild(t *testing.T) {
	sec := [][]float64{{0}, {1}, {2}, {3}}
	wild := [][]float64{{0}, {1}}
	links, err := Search(sec, wild, &Options{DisableNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("links = %d, want min(M,N)=2", len(links))
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(nil, [][]float64{{1}}, nil); err != ErrNoSecurityPatches {
		t.Errorf("err = %v", err)
	}
	if _, err := Search([][]float64{{1}}, nil, nil); err != ErrNoWildPatches {
		t.Errorf("err = %v", err)
	}
}

func TestSearchDimensionMismatch(t *testing.T) {
	// A short wild row used to panic inside Weights/dist2; it must now
	// surface as a descriptive error.
	sec := [][]float64{{1, 2}, {3, 4}}
	wild := [][]float64{{1, 2}, {3}}
	if _, err := Search(sec, wild, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Search err = %v, want ErrDimensionMismatch", err)
	} else if !strings.Contains(err.Error(), "wild row 1") {
		t.Errorf("error lacks row detail: %v", err)
	}
	// Mismatch inside the security set itself.
	if _, err := Search([][]float64{{1, 2}, {3, 4, 5}}, [][]float64{{1, 2}}, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("security mismatch err = %v", err)
	}
	if _, err := KNNSelect(sec, wild, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("KNNSelect err = %v, want ErrDimensionMismatch", err)
	}
	// Matching dims still succeed with normalization disabled too.
	if _, err := Search(sec, [][]float64{{5, 6}}, &Options{DisableNormalization: true}); err != nil {
		t.Errorf("valid dims err = %v", err)
	}
}

func TestSearchStats(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sec := randRows(rng, 20, 4)
	wild := randRows(rng, 80, 4)
	var st Stats
	links, err := Search(sec, wild, &Options{Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.SecurityRows != 20 || st.WildCols != 80 {
		t.Errorf("stats dims = %+v", st)
	}
	if st.Duration <= 0 {
		t.Errorf("duration = %v", st.Duration)
	}
	if st.Rescans < 0 {
		t.Errorf("rescans = %d", st.Rescans)
	}
	if len(links) != 20 {
		t.Errorf("links = %d", len(links))
	}

	var kst Stats
	if _, err := KNNSelect(sec, wild, &Options{Stats: &kst}); err != nil {
		t.Fatal(err)
	}
	if kst.SecurityRows != 20 || kst.WildCols != 80 || kst.Duration <= 0 {
		t.Errorf("knn stats = %+v", kst)
	}
}

func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sec := randRows(rng, 30, 8)
	wild := randRows(rng, 120, 8)
	l1, err := Search(sec, wild, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	l8, err := Search(sec, wild, &Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(l1) != len(l8) {
		t.Fatalf("lengths differ: %d vs %d", len(l1), len(l8))
	}
	m1 := map[int]int{}
	for _, l := range l1 {
		m1[l.Security] = l.Wild
	}
	for _, l := range l8 {
		if m1[l.Security] != l.Wild {
			t.Fatalf("worker count changed assignment for security %d", l.Security)
		}
	}
}

func TestNormalizationMatters(t *testing.T) {
	// Dimension 1 has a huge scale (set by wild[2]); unnormalized, wild[0]'s
	// small dim-1 offset (10) dominates its zero dim-0 distance and wild[1]
	// wins. Normalized, dim-1 shrinks by 1/1000 and wild[0] wins.
	sec := [][]float64{{1, 0}}
	wild := [][]float64{{1, 10}, {2, 0}, {0, 1000}}
	raw, err := Search(sec, wild, &Options{DisableNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := Search(sec, wild, nil)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0].Wild != 1 {
		t.Errorf("unnormalized picked %d, want 1 (raw dim-1 dominates)", raw[0].Wild)
	}
	if norm[0].Wild != 0 {
		t.Errorf("normalized picked %d, want 0 (dim-1 rescaled away)", norm[0].Wild)
	}
}

func TestKNNSelectAllowsFewer(t *testing.T) {
	// Two security patches share the same nearest wild patch; KNN dedups to
	// one candidate while nearest link yields two.
	sec := [][]float64{{0}, {0.1}}
	wild := [][]float64{{0.05}, {9}}
	knn, err := KNNSelect(sec, wild, &Options{DisableNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(knn) != 1 || knn[0] != 0 {
		t.Errorf("knn = %v, want [0]", knn)
	}
	links, err := Search(sec, wild, &Options{DisableNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Errorf("nearest link = %d links, want 2 (one-to-one)", len(links))
	}
}

func TestDistanceMatrix(t *testing.T) {
	d := DistanceMatrix([][]float64{{0, 0}, {3, 4}}, [][]float64{{0, 0}}, false)
	if d[0][0] != 0 || d[1][0] != 5 {
		t.Errorf("matrix = %v", d)
	}
}

func TestTotalDistance(t *testing.T) {
	links := []Link{{Distance: 1.5}, {Distance: 2.5}}
	if TotalDistance(links) != 4 {
		t.Errorf("total = %v", TotalDistance(links))
	}
}

// TestGreedyMatchesBruteForceOnTiny compares Algorithm 1 against exhaustive
// column scans on tiny instances, asserting the structural invariants that
// greedy guarantees: the globally closest pair is always linked first.
func TestGreedyClosestPairAlwaysLinked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		sec := randRows(rng, 4, 3)
		wild := randRows(rng, 10, 3)
		links, err := Search(sec, wild, &Options{DisableNormalization: true})
		if err != nil {
			t.Fatal(err)
		}
		// Find the global minimum pair by brute force.
		bestD := math.Inf(1)
		bestM, bestN := -1, -1
		for m := range sec {
			for n := range wild {
				if d := dist2(sec[m], wild[n]); d < bestD {
					bestD = d
					bestM, bestN = m, n
				}
			}
		}
		found := false
		for _, l := range links {
			if l.Security == bestM && l.Wild == bestN {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: global closest pair (%d,%d) not linked: %v", trial, bestM, bestN, links)
		}
	}
}

func randRows(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}
