package nearestlink

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

var bg = context.Background()

func TestWeights(t *testing.T) {
	a := [][]float64{{2, -8, 0}}
	b := [][]float64{{-4, 1, 0}}
	w, err := Weights(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 0.25 || w[1] != 0.125 {
		t.Errorf("weights = %v", w)
	}
	if w[2] != 1 {
		t.Errorf("constant-dimension weight = %v, want 1", w[2])
	}
}

func TestWeightsDimensionMismatch(t *testing.T) {
	// Ragged rows used to make Weights index past the end of short rows.
	if _, err := Weights([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Weights err = %v, want ErrDimensionMismatch", err)
	}
	if _, err := Weights([][]float64{{1, 2}}, [][]float64{{1, 2, 3}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("cross-set Weights err = %v, want ErrDimensionMismatch", err)
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 || m.Stride() != 3 {
		t.Fatalf("shape = %dx%d stride %d", m.Rows(), m.Cols(), m.Stride())
	}
	if got := m.Row(1); got[0] != 4 || got[2] != 6 {
		t.Errorf("row 1 = %v", got)
	}
	// Row views alias the flat backing array.
	m.Row(0)[1] = 99
	if m.Data()[1] != 99 {
		t.Error("Row view does not alias Data")
	}
	views := m.RowSlices()
	if len(views) != 2 || views[0][1] != 99 {
		t.Errorf("RowSlices = %v", views)
	}
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("ragged err = %v, want ErrDimensionMismatch", err)
	}
}

func TestSearchHandPicked(t *testing.T) {
	// Two security patches; wild pool where the greedy assignment is
	// unambiguous.
	sec := [][]float64{{0}, {10}}
	wild := [][]float64{{9}, {1}, {50}}
	links, err := Search(bg, sec, wild, &Options{DisableNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("links = %d", len(links))
	}
	got := map[int]int{}
	for _, l := range links {
		got[l.Security] = l.Wild
	}
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("assignment = %v, want 0->1, 1->0", got)
	}
}

func TestSearchCollisionResolution(t *testing.T) {
	// Both security patches are nearest to wild[0]; one must fall back to
	// its second choice, and the pair with the smaller distance wins the
	// contested column (greedy global-min order).
	sec := [][]float64{{0}, {0.5}}
	wild := [][]float64{{0.1}, {3}}
	links, err := Search(bg, sec, wild, &Options{DisableNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	for _, l := range links {
		got[l.Security] = l.Wild
	}
	// sec[0] is 0.1 from wild[0]; sec[1] is 0.4 from wild[0]. sec[0] wins.
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("assignment = %v, want 0->0, 1->1", got)
	}
}

func TestSearchMatrix(t *testing.T) {
	sec, err := MatrixFromRows([][]float64{{0}, {0.5}})
	if err != nil {
		t.Fatal(err)
	}
	wild, err := MatrixFromRows([][]float64{{0.1}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	secBefore := append([]float64(nil), sec.Data()...)
	links, err := SearchMatrix(bg, sec, wild, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("links = %d", len(links))
	}
	// Normalization must not mutate the caller's matrices.
	for i, v := range sec.Data() {
		if v != secBefore[i] {
			t.Fatalf("SearchMatrix mutated input at %d: %v != %v", i, v, secBefore[i])
		}
	}
	// Column-count mismatch across matrices.
	bad, err := MatrixFromRows([][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SearchMatrix(bg, sec, bad, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("mismatched matrices err = %v", err)
	}
}

func TestSearchUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sec := randRows(rng, 40, 5)
	wild := randRows(rng, 200, 5)
	links, err := Search(bg, sec, wild, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 40 {
		t.Fatalf("links = %d", len(links))
	}
	usedWild := map[int]bool{}
	usedSec := map[int]bool{}
	for _, l := range links {
		if usedWild[l.Wild] {
			t.Fatalf("wild %d linked twice", l.Wild)
		}
		if usedSec[l.Security] {
			t.Fatalf("security %d linked twice", l.Security)
		}
		usedWild[l.Wild] = true
		usedSec[l.Security] = true
		if l.Distance < 0 || math.IsNaN(l.Distance) {
			t.Fatalf("bad distance %v", l.Distance)
		}
	}
}

func TestSearchMoreSecurityThanWild(t *testing.T) {
	sec := [][]float64{{0}, {1}, {2}, {3}}
	wild := [][]float64{{0}, {1}}
	links, err := Search(bg, sec, wild, &Options{DisableNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("links = %d, want min(M,N)=2", len(links))
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(bg, nil, [][]float64{{1}}, nil); !errors.Is(err, ErrNoSecurityPatches) {
		t.Errorf("err = %v", err)
	}
	if _, err := Search(bg, [][]float64{{1}}, nil, nil); !errors.Is(err, ErrNoWildPatches) {
		t.Errorf("err = %v", err)
	}
}

func TestSearchDimensionMismatch(t *testing.T) {
	// A short wild row used to panic inside Weights/dist2; it must now
	// surface as a descriptive error.
	sec := [][]float64{{1, 2}, {3, 4}}
	wild := [][]float64{{1, 2}, {3}}
	if _, err := Search(bg, sec, wild, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Search err = %v, want ErrDimensionMismatch", err)
	} else if !strings.Contains(err.Error(), "wild row 1") {
		t.Errorf("error lacks row detail: %v", err)
	}
	// Mismatch inside the security set itself.
	if _, err := Search(bg, [][]float64{{1, 2}, {3, 4, 5}}, [][]float64{{1, 2}}, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("security mismatch err = %v", err)
	}
	if _, err := KNNSelect(bg, sec, wild, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("KNNSelect err = %v, want ErrDimensionMismatch", err)
	}
	// Matching dims still succeed with normalization disabled too.
	if _, err := Search(bg, sec, [][]float64{{5, 6}}, &Options{DisableNormalization: true}); err != nil {
		t.Errorf("valid dims err = %v", err)
	}
}

func TestSearchCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sec := randRows(rng, 500, 60)
	wild := randRows(rng, 50000, 60)

	// A pre-canceled context aborts before any scanning.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, sec, wild, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Search err = %v, want context.Canceled", err)
	}
	if _, err := KNNSelect(ctx, sec, wild, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled KNNSelect err = %v, want context.Canceled", err)
	}

	// Cancellation mid-search aborts promptly: the scan phase checks ctx
	// between row chunks, so the 500×50k search (well over a millisecond
	// of work) must return the wrapped error long before completing.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel2()
	}()
	start := time.Now()
	_, err := Search(ctx2, sec, wild, &Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight Search err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Errorf("error not descriptive: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

func TestSearchStats(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sec := randRows(rng, 20, 4)
	wild := randRows(rng, 80, 4)
	var st Stats
	links, err := Search(bg, sec, wild, &Options{Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.SecurityRows != 20 || st.WildCols != 80 {
		t.Errorf("stats dims = %+v", st)
	}
	if st.Duration <= 0 {
		t.Errorf("duration = %v", st.Duration)
	}
	if st.Rescans < 0 {
		t.Errorf("rescans = %d", st.Rescans)
	}
	if st.HeapPops < 20 {
		t.Errorf("heap pops = %d, want >= one per assigned row", st.HeapPops)
	}
	if st.DistanceEvals <= 0 {
		t.Errorf("distance evals = %d", st.DistanceEvals)
	}
	if st.PrunedFraction < 0 || st.PrunedFraction > 1 {
		t.Errorf("pruned fraction = %v", st.PrunedFraction)
	}
	if len(links) != 20 {
		t.Errorf("links = %d", len(links))
	}

	var kst Stats
	if _, err := KNNSelect(bg, sec, wild, &Options{Stats: &kst}); err != nil {
		t.Fatal(err)
	}
	if kst.SecurityRows != 20 || kst.WildCols != 80 || kst.Duration <= 0 {
		t.Errorf("knn stats = %+v", kst)
	}

	var tot Totals
	tot.Add(st)
	tot.Add(kst)
	if tot.Searches != 2 || tot.DistanceEvals != st.DistanceEvals+kst.DistanceEvals {
		t.Errorf("totals = %+v", tot)
	}
	if s := tot.String(); !strings.Contains(s, "searches=2") {
		t.Errorf("totals string = %q", s)
	}
}

func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sec := randRows(rng, 30, 8)
	wild := randRows(rng, 120, 8)
	l1, err := Search(bg, sec, wild, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	l8, err := Search(bg, sec, wild, &Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(l1) != len(l8) {
		t.Fatalf("lengths differ: %d vs %d", len(l1), len(l8))
	}
	m1 := map[int]int{}
	for _, l := range l1 {
		m1[l.Security] = l.Wild
	}
	for _, l := range l8 {
		if m1[l.Security] != l.Wild {
			t.Fatalf("worker count changed assignment for security %d", l.Security)
		}
	}
}

// TestStatsDeterministicAcrossWorkers pins the deterministic-counter
// contract of the blocked scan: at a fixed (BlockRows, ShardCols) the task
// grid, every task's visit order, and every pruning bound are independent of
// the worker count, so the full Stats accounting — not just the links — must
// be bit-identical at workers 1, 2, and 8. Duration is wall-clock telemetry
// and is excluded.
func TestStatsDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sec := randRows(rng, 45, 12)
	wild := randRows(rng, 700, 12)
	on := true
	for _, quant := range []*bool{nil, &on} {
		// BlockRows 8 and ShardCols 128 give a 6x6 task grid at this shape,
		// so the counters really do merge across many concurrently scanned
		// cells.
		base := Options{BlockRows: 8, ShardCols: 128, Quantize: quant}
		var want Stats
		var wantLinks []Link
		for wi, workers := range []int{1, 2, 8} {
			o := base
			o.Workers = workers
			var st Stats
			o.Stats = &st
			links, err := Search(bg, sec, wild, &o)
			if err != nil {
				t.Fatalf("quant=%v w=%d: %v", quant != nil, workers, err)
			}
			st.Duration = 0
			if wi == 0 {
				want, wantLinks = st, links
				if quant != nil && st.QuantPruned == 0 {
					t.Error("forced-on quantizer pruned nothing; counter contract untested")
				}
				continue
			}
			if st != want {
				t.Errorf("quant=%v w=%d: stats diverge:\n got %+v\nwant %+v",
					quant != nil, workers, st, want)
			}
			if len(links) != len(wantLinks) {
				t.Fatalf("quant=%v w=%d: %d links, want %d", quant != nil, workers, len(links), len(wantLinks))
			}
			for k := range links {
				if links[k] != wantLinks[k] {
					t.Fatalf("quant=%v w=%d: link %d = %+v, want %+v",
						quant != nil, workers, k, links[k], wantLinks[k])
				}
			}
		}
	}
}

// TestLinksInvariantAcrossBlockAndShard pins the other half of the contract:
// BlockRows and ShardCols move pruning decisions between stages (the
// counters may change) but may never change the links. Every combination —
// including degenerate single-row blocks and shards smaller than one sweep
// tile — must reproduce the reference assignment bit-for-bit.
func TestLinksInvariantAcrossBlockAndShard(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	sec := genGrid(rng, 35, 9) // tie-heavy: the regime where a merge bug shows
	wild := genGrid(rng, 900, 9)
	want, err := ReferenceSearch(sec, wild, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, blockRows := range []int{1, 3, 16, 64} {
		for _, shardCols := range []int{32, 100, 1000} {
			got, err := Search(bg, sec, wild,
				&Options{Workers: 4, BlockRows: blockRows, ShardCols: shardCols})
			if err != nil {
				t.Fatalf("block=%d shard=%d: %v", blockRows, shardCols, err)
			}
			assertLinksIdentical(t, fmt.Sprintf("block=%d/shard=%d", blockRows, shardCols), 4, want, got)
		}
	}
}

func TestNormalizationMatters(t *testing.T) {
	// Dimension 1 has a huge scale (set by wild[2]); unnormalized, wild[0]'s
	// small dim-1 offset (10) dominates its zero dim-0 distance and wild[1]
	// wins. Normalized, dim-1 shrinks by 1/1000 and wild[0] wins.
	sec := [][]float64{{1, 0}}
	wild := [][]float64{{1, 10}, {2, 0}, {0, 1000}}
	raw, err := Search(bg, sec, wild, &Options{DisableNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := Search(bg, sec, wild, nil)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0].Wild != 1 {
		t.Errorf("unnormalized picked %d, want 1 (raw dim-1 dominates)", raw[0].Wild)
	}
	if norm[0].Wild != 0 {
		t.Errorf("normalized picked %d, want 0 (dim-1 rescaled away)", norm[0].Wild)
	}
}

func TestKNNSelectAllowsFewer(t *testing.T) {
	// Two security patches share the same nearest wild patch; KNN dedups to
	// one candidate while nearest link yields two.
	sec := [][]float64{{0}, {0.1}}
	wild := [][]float64{{0.05}, {9}}
	knn, err := KNNSelect(bg, sec, wild, &Options{DisableNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(knn) != 1 || knn[0] != 0 {
		t.Errorf("knn = %v, want [0]", knn)
	}
	links, err := Search(bg, sec, wild, &Options{DisableNormalization: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Errorf("nearest link = %d links, want 2 (one-to-one)", len(links))
	}
}

func TestDistanceMatrix(t *testing.T) {
	d, err := DistanceMatrix([][]float64{{0, 0}, {3, 4}}, [][]float64{{0, 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if d[0][0] != 0 || d[1][0] != 5 {
		t.Errorf("matrix = %v", d)
	}
	// Ragged rows used to panic; they must error instead.
	if _, err := DistanceMatrix([][]float64{{0, 0}, {3}}, [][]float64{{0, 0}}, true); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("ragged err = %v, want ErrDimensionMismatch", err)
	}
}

func TestTotalDistance(t *testing.T) {
	links := []Link{{Distance: 1.5}, {Distance: 2.5}}
	if TotalDistance(links) != 4 {
		t.Errorf("total = %v", TotalDistance(links))
	}
}

// TestGreedyClosestPairAlwaysLinked asserts the structural invariant greedy
// guarantees: the globally closest pair is always linked first.
func TestGreedyClosestPairAlwaysLinked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		sec := randRows(rng, 4, 3)
		wild := randRows(rng, 10, 3)
		links, err := Search(bg, sec, wild, &Options{DisableNormalization: true})
		if err != nil {
			t.Fatal(err)
		}
		// Find the global minimum pair by brute force.
		bestD := math.Inf(1)
		bestM, bestN := -1, -1
		for m := range sec {
			for n := range wild {
				if d := dist2(sec[m], wild[n]); d < bestD {
					bestD = d
					bestM, bestN = m, n
				}
			}
		}
		found := false
		for _, l := range links {
			if l.Security == bestM && l.Wild == bestN {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: global closest pair (%d,%d) not linked: %v", trial, bestM, bestN, links)
		}
	}
}

// TestKernelEquivalence pins the exactness contract of the fast kernels:
// screening may never reject a candidate the reference-order dist2 would
// accept (its rejection must be conservative under the reordering error of
// float64 summation), and the shaded norm bound must never exceed the true
// squared distance.
func TestKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(100)
		a, b := make([]float64, d), make([]float64, d)
		for j := range a {
			a[j] = rng.NormFloat64() * 10
			b[j] = rng.NormFloat64() * 10
		}
		want := dist2(a, b)
		got, maybe := screenDist2(a, b, inf)
		if !maybe {
			t.Fatalf("trial %d: screen rejected against an infinite bound", trial)
		}
		if rel := math.Abs(got-want) / math.Max(want, 1); rel > 1e-13 {
			t.Fatalf("trial %d: screen sum %v vs dist2 %v (rel err %v)", trial, got, want, rel)
		}
		// No false rejection: any bound the reference-order value beats must
		// survive screening.
		for _, bound := range []float64{want * 1.000001, want + 1, want * 4} {
			if want >= bound {
				continue
			}
			if _, maybe := screenDist2(a, b, bound); !maybe {
				t.Fatalf("trial %d: screen rejected dist %v against bound %v", trial, want, bound)
			}
		}
		// True rejection against a bound clearly below the distance.
		if want > 0 {
			if _, maybe := screenDist2(a, b, want/2); maybe {
				t.Fatalf("trial %d: bound %v not honored", trial, want/2)
			}
		}
		na, nb := math.Sqrt(dot(a, a)), math.Sqrt(dot(b, b))
		diff := na - nb
		if lb := diff * diff * normBoundShade; lb > want {
			t.Fatalf("trial %d: norm bound %v exceeds true distance %v", trial, lb, want)
		}
	}
}

func randRows(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}
