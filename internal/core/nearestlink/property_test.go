package nearestlink

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Instance generators for the differential property test. Each stresses a
// different regime of Algorithm 1:
//
//   - gaussian: generic continuous features, few exact ties.
//   - grid: coordinates from a small binary-exact set (multiples of 0.5),
//     so many pairs are exactly equidistant and the first-column tie-break
//     carries the assignment — the high-collision regime.
//   - duplicates: rows sampled from a handful of distinct points, so whole
//     rows collide on the same columns and zero distances abound.
func genGaussian(rng *rand.Rand, n, d int) [][]float64 {
	return randRows(rng, n, d)
}

func genGrid(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = 0.5 * float64(rng.Intn(4)) // {0, 0.5, 1, 1.5}: binary-exact
		}
	}
	return out
}

func genDuplicates(rng *rand.Rand, n, d int) [][]float64 {
	distinct := 3 + rng.Intn(3)
	points := randRows(rng, distinct, d)
	out := make([][]float64, n)
	for i := range out {
		out[i] = points[rng.Intn(distinct)]
	}
	return out
}

// TestSearchMatchesReference is the engine's central contract: on seeded
// random instances spanning the collision-heavy, duplicate-point, and N<M
// regimes, Search produces links bit-identical to ReferenceSearch — same
// pair sequence, same Float64 distance bits — at worker counts 1, 2, and 8,
// with normalization both on and off.
func TestSearchMatchesReference(t *testing.T) {
	type gen struct {
		name string
		fn   func(*rand.Rand, int, int) [][]float64
	}
	gens := []gen{
		{"gaussian", genGaussian},
		{"grid", genGrid},
		{"duplicates", genDuplicates},
	}
	type shape struct{ m, n, d int }
	shapes := []shape{
		{1, 1, 1},
		{5, 3, 2},   // N < M: only N links possible
		{12, 40, 1}, // 1-D: maximal collision pressure
		{20, 60, 7},
		{40, 25, 5}, // N < M again, multi-dim
		{30, 300, 16},
	}
	for _, g := range gens {
		for si, sh := range shapes {
			for _, disableNorm := range []bool{false, true} {
				seed := int64(1000*si + len(g.name))
				rng := rand.New(rand.NewSource(seed))
				sec := g.fn(rng, sh.m, sh.d)
				wild := g.fn(rng, sh.n, sh.d)
				name := fmt.Sprintf("%s/%dx%dx%d/norm=%v", g.name, sh.m, sh.n, sh.d, !disableNorm)

				want, err := ReferenceSearch(sec, wild, &Options{DisableNormalization: disableNorm})
				if err != nil {
					t.Fatalf("%s: reference: %v", name, err)
				}
				for _, workers := range []int{1, 2, 8} {
					got, err := Search(context.Background(), sec, wild,
						&Options{DisableNormalization: disableNorm, Workers: workers})
					if err != nil {
						t.Fatalf("%s w=%d: engine: %v", name, workers, err)
					}
					assertLinksIdentical(t, name, workers, want, got)
				}
			}
		}
	}
}

// TestSearchMatrixMatchesReference covers the pre-flattened entry point
// with the same differential contract.
func TestSearchMatrixMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sec := genGrid(rng, 25, 6)
	wild := genGrid(rng, 120, 6)
	want, err := ReferenceSearch(sec, wild, nil)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := MatrixFromRows(sec)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := MatrixFromRows(wild)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SearchMatrix(context.Background(), sm, wm, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertLinksIdentical(t, "matrix", 2, want, got)
}

func assertLinksIdentical(t *testing.T, name string, workers int, want, got []Link) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s w=%d: %d links, reference %d", name, workers, len(got), len(want))
	}
	for k := range want {
		w, g := want[k], got[k]
		if g.Security != w.Security || g.Wild != w.Wild {
			t.Fatalf("%s w=%d: link %d = (%d,%d), reference (%d,%d)",
				name, workers, k, g.Security, g.Wild, w.Security, w.Wild)
		}
		if math.Float64bits(g.Distance) != math.Float64bits(w.Distance) {
			t.Fatalf("%s w=%d: link %d distance %x, reference %x",
				name, workers, k, math.Float64bits(g.Distance), math.Float64bits(w.Distance))
		}
	}
}
