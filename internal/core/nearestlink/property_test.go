package nearestlink

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Instance generators for the differential property test. Each stresses a
// different regime of Algorithm 1:
//
//   - gaussian: generic continuous features, few exact ties.
//   - grid: coordinates from a small binary-exact set (multiples of 0.5),
//     so many pairs are exactly equidistant and the first-column tie-break
//     carries the assignment — the high-collision regime.
//   - duplicates: rows sampled from a handful of distinct points, so whole
//     rows collide on the same columns and zero distances abound.
func genGaussian(rng *rand.Rand, n, d int) [][]float64 {
	return randRows(rng, n, d)
}

func genGrid(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = 0.5 * float64(rng.Intn(4)) // {0, 0.5, 1, 1.5}: binary-exact
		}
	}
	return out
}

func genDuplicates(rng *rand.Rand, n, d int) [][]float64 {
	distinct := 3 + rng.Intn(3)
	points := randRows(rng, distinct, d)
	out := make([][]float64, n)
	for i := range out {
		out[i] = points[rng.Intn(distinct)]
	}
	return out
}

// TestSearchMatchesReference is the engine's central contract: on seeded
// random instances spanning the collision-heavy, duplicate-point, and N<M
// regimes, Search produces links bit-identical to ReferenceSearch — same
// pair sequence, same Float64 distance bits — at worker counts 1, 2, and 8,
// with normalization both on and off.
func TestSearchMatchesReference(t *testing.T) {
	type gen struct {
		name string
		fn   func(*rand.Rand, int, int) [][]float64
	}
	gens := []gen{
		{"gaussian", genGaussian},
		{"grid", genGrid},
		{"duplicates", genDuplicates},
	}
	type shape struct{ m, n, d int }
	shapes := []shape{
		{1, 1, 1},
		{5, 3, 2},   // N < M: only N links possible
		{12, 40, 1}, // 1-D: maximal collision pressure
		{20, 60, 7},
		{40, 25, 5}, // N < M again, multi-dim
		{30, 300, 16},
	}
	for _, g := range gens {
		for si, sh := range shapes {
			for _, disableNorm := range []bool{false, true} {
				seed := int64(1000*si + len(g.name))
				rng := rand.New(rand.NewSource(seed))
				sec := g.fn(rng, sh.m, sh.d)
				wild := g.fn(rng, sh.n, sh.d)
				name := fmt.Sprintf("%s/%dx%dx%d/norm=%v", g.name, sh.m, sh.n, sh.d, !disableNorm)

				want, err := ReferenceSearch(sec, wild, &Options{DisableNormalization: disableNorm})
				if err != nil {
					t.Fatalf("%s: reference: %v", name, err)
				}
				for _, workers := range []int{1, 2, 8} {
					got, err := Search(context.Background(), sec, wild,
						&Options{DisableNormalization: disableNorm, Workers: workers})
					if err != nil {
						t.Fatalf("%s w=%d: engine: %v", name, workers, err)
					}
					assertLinksIdentical(t, name, workers, want, got)
				}
			}
		}
	}
}

// TestSearchMatrixMatchesReference covers the pre-flattened entry point
// with the same differential contract.
func TestSearchMatrixMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sec := genGrid(rng, 25, 6)
	wild := genGrid(rng, 120, 6)
	want, err := ReferenceSearch(sec, wild, nil)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := MatrixFromRows(sec)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := MatrixFromRows(wild)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SearchMatrix(context.Background(), sm, wm, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertLinksIdentical(t, "matrix", 2, want, got)
}

// TestQuantScreenAdmissibleAtBucketBoundaries fuzzes the quantized
// pre-screen exactly where its affine bucket map is most fragile: values
// sitting on (and one ULP either side of) quantization bucket boundaries,
// where float rounding decides which bucket a value lands in. Whatever side
// the rounding picks, the screen must stay admissible — reject() against a
// pair's own exact squared distance must never fire, whether that distance
// is summed in screen order or in a permuted (reference-like) order.
func TestQuantScreenAdmissibleAtBucketBoundaries(t *testing.T) {
	const pw, tw = 16, 44
	d := pw + tw
	rng := rand.New(rand.NewSource(90))

	// Fit the quantizer from bulk data, exactly as the engine does.
	fit := func(rows int) (p, tl []float64) {
		p = make([]float64, rows*pw)
		tl = make([]float64, rows*tw)
		for i := range p {
			p[i] = 100 * rng.Float64()
		}
		for i := range tl {
			tl[i] = 100 * rng.Float64()
		}
		return p, tl
	}
	secP, secT := fit(64)
	wldP, wldT := fit(512)
	qz := newQuantizer(pw, tw, secP, secT, wldP, wldT)
	if !qz.ok {
		t.Fatal("quantizer self-disabled on non-degenerate data")
	}

	// boundaryValue picks, for dimension j, a value at bucket edge
	// lo_j + k·step (k random), then nudges it 0 or ±1 ULP.
	boundaryValue := func(j int) float64 {
		inv := qz.inv[j/quantChunk]
		if inv == 0 { // chunk self-disabled: no buckets to straddle
			return qz.lo[j]
		}
		v := qz.lo[j] + float64(rng.Intn(256))/inv
		switch rng.Intn(3) {
		case 0:
			return math.Nextafter(v, math.Inf(1))
		case 1:
			return math.Nextafter(v, math.Inf(-1))
		}
		return v
	}

	nsuf := quantSuffixCount(d)
	perm := rng.Perm(d)
	for trial := 0; trial < 500; trial++ {
		a, b := make([]float64, d), make([]float64, d)
		for j := 0; j < d; j++ {
			a[j], b[j] = boundaryValue(j), boundaryValue(j)
			if rng.Intn(4) == 0 {
				b[j] = a[j] // exact collisions: bucket gap 0 or ±1 only
			}
		}
		qa, qb := make([]uint8, d), make([]uint8, d)
		qz.quantizeRow(qa, a[:pw], a[pw:])
		qz.quantizeRow(qb, b[:pw], b[pw:])
		sufA, sufB := make([]float64, nsuf), make([]float64, nsuf)
		fillSuffixNorms(sufA, a[:pw], a[pw:])
		fillSuffixNorms(sufB, b[:pw], b[pw:])

		// The engine's bound is a reference-order dist2 sum; the screen runs
		// over screen-order stripes. Check admissibility against both the
		// in-order sum and a fixed permuted sum standing in for the
		// reference's dimension order.
		pa, pb := make([]float64, d), make([]float64, d)
		for j, pj := range perm {
			pa[j], pb[j] = a[pj], b[pj]
		}
		for _, exact := range []float64{dist2(a, b), dist2(pa, pb)} {
			if qz.reject(qa, qb, sufA, sufB, exact) {
				t.Fatalf("trial %d: screen rejected a boundary pair against its own distance² %g",
					trial, exact)
			}
		}
	}

	// Sanity that the screen is not vacuously permissive: a pair separated by
	// the full bucket range in every dimension has integer lower bound
	// Σ step²·254² > 0 and must be rejected against half its own bound.
	lo, hi := make([]float64, d), make([]float64, d)
	lb := 0.0
	for j := 0; j < d; j++ {
		lo[j], hi[j] = qz.lo[j], qz.lo[j]
		if inv := qz.inv[j/quantChunk]; inv != 0 {
			step := 1 / inv
			hi[j] += 255 * step
			lb += step * step * 254 * 254
		}
	}
	ql, qh := make([]uint8, d), make([]uint8, d)
	qz.quantizeRow(ql, lo[:pw], lo[pw:])
	qz.quantizeRow(qh, hi[:pw], hi[pw:])
	sufL, sufH := make([]float64, nsuf), make([]float64, nsuf)
	fillSuffixNorms(sufL, lo[:pw], lo[pw:])
	fillSuffixNorms(sufH, hi[:pw], hi[pw:])
	if !qz.reject(ql, qh, sufL, sufH, lb/2) {
		t.Fatal("screen failed to reject a maximally separated pair against half its integer lower bound")
	}
}

// TestQuantScreenEndToEndAdmissible runs the engine-level form of the same
// property: with the quantized screen forced on over real stripes (built
// through newEngine/newBlockPlan), a sampled pair may never be rejected
// against its own reference-order distance.
func TestQuantScreenEndToEndAdmissible(t *testing.T) {
	gens := map[string]func(*rand.Rand, int, int) [][]float64{
		"gaussian":   genGaussian,
		"grid":       genGrid,
		"duplicates": genDuplicates,
	}
	for name, gen := range gens {
		rng := rand.New(rand.NewSource(21))
		sec := gen(rng, 40, 24)
		wild := gen(rng, 600, 24)
		checked, err := VerifyQuantBound(sec, wild, nil, 5000, 13)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// grid/duplicates instances can be degenerate enough to disable the
		// quantizer; gaussian never is.
		if name == "gaussian" && checked != 5000 {
			t.Errorf("%s: checked %d pairs, want 5000", name, checked)
		}
	}
}

// TestSearchQuantizeForcedMatchesReference pins the gating contract of
// Options.Quantize: forcing the quantized screen on or off moves rejections
// between stages but never changes the links. The forced-on runs also
// guarantee every seed row's screened candidate set kept its exact argmin —
// otherwise some link would diverge from the reference's full scan.
func TestSearchQuantizeForcedMatchesReference(t *testing.T) {
	on, off := true, false
	rng := rand.New(rand.NewSource(55))
	type shape struct{ m, n, d int }
	for _, sh := range []shape{{15, 200, 4}, {30, 400, 16}, {25, 800, 33}} {
		sec := genGrid(rng, sh.m, sh.d) // binary-exact values: bucket-edge heavy
		wild := genGrid(rng, sh.n, sh.d)
		want, err := ReferenceSearch(sec, wild, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []*bool{&on, &off, nil} {
			for _, workers := range []int{1, 2, 8} {
				got, err := Search(context.Background(), sec, wild,
					&Options{Workers: workers, Quantize: q})
				if err != nil {
					t.Fatalf("%dx%dx%d w=%d: %v", sh.m, sh.n, sh.d, workers, err)
				}
				name := fmt.Sprintf("%dx%dx%d/quant=%v", sh.m, sh.n, sh.d, q != nil && *q)
				assertLinksIdentical(t, name, workers, want, got)
			}
		}
	}
}

func assertLinksIdentical(t *testing.T, name string, workers int, want, got []Link) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s w=%d: %d links, reference %d", name, workers, len(got), len(want))
	}
	for k := range want {
		w, g := want[k], got[k]
		if g.Security != w.Security || g.Wild != w.Wild {
			t.Fatalf("%s w=%d: link %d = (%d,%d), reference (%d,%d)",
				name, workers, k, g.Security, g.Wild, w.Security, w.Wild)
		}
		if math.Float64bits(g.Distance) != math.Float64bits(w.Distance) {
			t.Fatalf("%s w=%d: link %d distance %x, reference %x",
				name, workers, k, math.Float64bits(g.Distance), math.Float64bits(w.Distance))
		}
	}
}
