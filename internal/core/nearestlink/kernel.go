package nearestlink

import (
	"math"
	"sort"
)

// Distance kernels. Two precision regimes coexist here, and the split is
// what keeps the fast engine's output bit-identical to the reference
// transcription of Algorithm 1:
//
//   - Bounds (norm lower bound, screening rejection) may be computed any
//     fast way, because they only ever *reject* candidates, and they are
//     shaded/slacked so that rejection is conservative under rounding.
//   - Accepted distances — every value that can reach a Link or an argmin
//     comparison — come from dist2, the reference accumulation order: a
//     single accumulator over ascending dimensions. Candidates that survive
//     screening are re-evaluated with dist2 before any comparison the
//     reference would make, so the engine's comparisons see exactly the
//     reference's float64 values.

// normBoundShade scales the norm lower bound down by a relative margin many
// orders of magnitude larger than the worst-case rounding error of the bound
// computation (~60-term dot products: tens of ulps). Shading keeps
// (‖a‖−‖b‖)² a true lower bound of ‖a−b‖² even in floating point, so the
// prune can never reject a candidate the reference would have accepted.
const normBoundShade = 1 - 1e-9

// dot is a blocked, unrolled dot product with four independent accumulators
// (instruction-level parallelism). It is used for row norms — bound inputs
// only — never for values that must match the reference summation order.
func dot(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= len(a); j += 4 {
		x := a[j : j+4 : j+4]
		y := b[j : j+4 : j+4]
		s0 += x[0] * y[0]
		s1 += x[1] * y[1]
		s2 += x[2] * y[2]
		s3 += x[3] * y[3]
	}
	for ; j < len(a); j++ {
		s0 += a[j] * b[j]
	}
	return (s0 + s1) + (s2 + s3)
}

// dist2 is the straightforward squared Euclidean distance — the reference
// accumulation order every accepted distance must reproduce.
func dist2(a, b []float64) float64 {
	sum := 0.0
	for j := range a {
		d := a[j] - b[j]
		sum += d * d
	}
	return sum
}

// screenSlack inflates the screening rejection threshold by a relative
// margin far above the worst-case reordering error of a float64 summation
// of ~60 non-negative terms (|s_any_order − s_reference_order| ≤
// 2γ_n·Σterms ≈ 1.3e-14·sum for n = 60). A candidate is rejected only when
// its screened (partial) sum exceeds bound·screenSlack, which proves the
// reference-order sum strictly exceeds bound — so screening can never
// reject a candidate the reference scan would have accepted.
const screenSlack = 1 + 1e-12

// screenDist2 computes the squared Euclidean distance with four independent
// accumulators (breaking the serial FP-add dependency chain that limits
// dist2 to ~1 dimension per add latency), checking the running sum against
// bound·screenSlack after every 16-dimension block. The scan path now splits
// this work across prefixDist2 + screenTailDist2 (stripe layout); this
// single-call form is retained as the screen's specification and is
// exercised directly by TestKernelEquivalence.
//
// It returns (sum, true) iff the full distance was evaluated and the
// screened sum stayed within the slacked bound — the candidate MAY beat
// bound (or tie it, which matters for index tie-breaks), and the caller
// must confirm with the reference-order dist2 before any comparison.
// (sum, false) is a guaranteed-exact rejection: the summands (a_j−b_j)² are
// the same rounded non-negative terms dist2 adds, so a partial reordered
// sum strictly above bound·screenSlack proves dist2's total is strictly
// above bound — such a candidate can never displace the current best, nor
// tie it. The comparisons are strictly-greater (not ≥) so a bound of 0
// cannot silently reject an exact-duplicate candidate whose smaller column
// index would win the reference tie-break.
func screenDist2(a, b []float64, bound float64) (float64, bool) {
	limit := bound * screenSlack
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+16 <= len(a); j += 16 {
		x := a[j : j+16 : j+16]
		y := b[j : j+16 : j+16]
		d0 := x[0] - y[0]
		d1 := x[1] - y[1]
		d2 := x[2] - y[2]
		d3 := x[3] - y[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		d4 := x[4] - y[4]
		d5 := x[5] - y[5]
		d6 := x[6] - y[6]
		d7 := x[7] - y[7]
		s0 += d4 * d4
		s1 += d5 * d5
		s2 += d6 * d6
		s3 += d7 * d7
		d8 := x[8] - y[8]
		d9 := x[9] - y[9]
		d10 := x[10] - y[10]
		d11 := x[11] - y[11]
		s0 += d8 * d8
		s1 += d9 * d9
		s2 += d10 * d10
		s3 += d11 * d11
		d12 := x[12] - y[12]
		d13 := x[13] - y[13]
		d14 := x[14] - y[14]
		d15 := x[15] - y[15]
		s0 += d12 * d12
		s1 += d13 * d13
		s2 += d14 * d14
		s3 += d15 * d15
		if s := (s0 + s1) + (s2 + s3); s > limit {
			return s, false
		}
	}
	for ; j+4 <= len(a); j += 4 {
		x := a[j : j+4 : j+4]
		y := b[j : j+4 : j+4]
		d0 := x[0] - y[0]
		d1 := x[1] - y[1]
		d2 := x[2] - y[2]
		d3 := x[3] - y[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; j < len(a); j++ {
		d := a[j] - b[j]
		s0 += d * d
	}
	sum := (s0 + s1) + (s2 + s3)
	return sum, sum <= limit
}

// screenTailDist2 continues a screened evaluation over the packed tail
// dimensions, starting from the already-computed prefix partial sum. It
// reports whether the candidate survives: the combined sum is an any-order
// summation of exactly the rounded non-negative terms dist2 adds over all
// dimensions, so the screenDist2 rejection guarantee applies unchanged —
// a strict excess over bound·screenSlack proves the reference-order total
// strictly exceeds bound.
func screenTailDist2(a, b []float64, prefix, bound float64) bool {
	limit := bound * screenSlack
	s0 := prefix
	var s1, s2, s3 float64
	j := 0
	for ; j+16 <= len(a); j += 16 {
		x := a[j : j+16 : j+16]
		y := b[j : j+16 : j+16]
		d0 := x[0] - y[0]
		d1 := x[1] - y[1]
		d2 := x[2] - y[2]
		d3 := x[3] - y[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		d4 := x[4] - y[4]
		d5 := x[5] - y[5]
		d6 := x[6] - y[6]
		d7 := x[7] - y[7]
		s0 += d4 * d4
		s1 += d5 * d5
		s2 += d6 * d6
		s3 += d7 * d7
		d8 := x[8] - y[8]
		d9 := x[9] - y[9]
		d10 := x[10] - y[10]
		d11 := x[11] - y[11]
		s0 += d8 * d8
		s1 += d9 * d9
		s2 += d10 * d10
		s3 += d11 * d11
		d12 := x[12] - y[12]
		d13 := x[13] - y[13]
		d14 := x[14] - y[14]
		d15 := x[15] - y[15]
		s0 += d12 * d12
		s1 += d13 * d13
		s2 += d14 * d14
		s3 += d15 * d15
		if s := (s0 + s1) + (s2 + s3); s > limit {
			return false
		}
	}
	for ; j+4 <= len(a); j += 4 {
		x := a[j : j+4 : j+4]
		y := b[j : j+4 : j+4]
		d0 := x[0] - y[0]
		d1 := x[1] - y[1]
		d2 := x[2] - y[2]
		d3 := x[3] - y[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; j < len(a); j++ {
		d := a[j] - b[j]
		s0 += d * d
	}
	return (s0+s1)+(s2+s3) <= limit
}

// scanCounters accumulates per-worker pruning accounting, merged into Stats
// after parallel phases.
type scanCounters struct {
	evals       int64 // evaluations started (survived every cheap bound)
	normPruned  int64 // rejected by the norm window or segment-norm bound
	quantPruned int64 // rejected by the quantized integer prefix bound
	earlyExited int64 // aborted by the prefix or tail partial-distance screen
}

func (c *scanCounters) add(o scanCounters) {
	c.evals += o.evals
	c.normPruned += o.normPruned
	c.quantPruned += o.quantPruned
	c.earlyExited += o.earlyExited
}

// screenPrefix is the width of the packed prefix array: the first
// screenPrefix screen-order (highest wild-variance) dimensions of every
// norm-sorted wild row, stored contiguously. A 60-dim float64 row is 480
// bytes — 8 cache lines — but most candidates are rejected within the first
// block of the screen, so the scan's memory traffic is dominated by row
// fetches that were never going to survive. The prefix array packs the
// rejecting dimensions at 128 bytes per candidate in walk order, cutting
// the traffic of the common reject path ~4× and making it sequential;
// only prefix survivors touch the full row.
const screenPrefix = 16

// screenSegments is the granularity of the segment-norm lower bound: the
// screen-order dimensions are split into this many contiguous segments and
// each row stores the Euclidean norm of every segment. For rows a, b with
// segment-norm vectors u, w the bound Σ_g(u_g−w_g)² = ‖u−w‖² satisfies
// ‖u−w‖² ≥ (‖u‖−‖w‖)² — it always dominates the global norm bound — and
// ‖u−w‖² ≤ ‖a−b‖² (reverse triangle inequality per segment), so it is a
// valid O(1) filter that rejects candidates whose mass is distributed
// differently across the feature space even when their total norms match —
// exactly the candidates the norm window cannot separate. At 32 bytes per
// candidate (packed, walk order) it costs a quarter of a prefix probe.
const screenSegments = 4

// engine bundles the weighted flat matrices, their precomputed row norms,
// and a search-ready layout of the problem:
//
//   - secS holds the security rows with dimensions permuted by descending
//     wild-pool variance (screen order). The screening kernels may sum
//     squared terms in any order (their slack covers reordering error), so
//     high-spread dimensions first makes the partial sum cross the
//     rejection bound as early as possible.
//   - The wild pool is stored sorted by ascending row norm (wldNS; orig
//     maps a sorted position back to the original wild index), split into
//     packed screen-order stripes that match the access pattern of the
//     staged rejection: wldG (segment norms, 32 B/candidate), wldP (the
//     first pw screen-order dimensions, see screenPrefix), and wldT (the
//     remaining tw dimensions, touched only by prefix survivors). The scan
//     walks each security row's norm neighborhood outward from a binary-
//     searched start, so every column outside the current bound's norm
//     window is skipped in bulk without even an O(1) per-column test, and
//     each surviving stage reads only the stripe it needs — sequentially,
//     because stripes are packed in walk order.
//   - secOrder lists security rows by ascending norm — the processing order
//     of the scan phase. Consecutive rows then walk strongly overlapping
//     norm windows, so the window's stripe data stays cache-resident from
//     one row to the next.
//
// Reference-order confirmation always reads the original matrices.
type engine struct {
	sec, wld   *Matrix
	secN, wldN []float64 // Euclidean norms of the weighted rows
	secS       *Matrix   // screen-order copy of sec
	secG       []float64 // m×screenSegments segment norms of secS rows
	wldNS      []float64 // sorted wild row norms, ascending
	orig       []int     // sorted position -> original wild index
	wldG       []float64 // n×screenSegments packed segment norms, walk order
	wldP       []float64 // n×pw packed screen-order prefixes, walk order
	wldT       []float64 // n×tw packed screen-order tails, walk order
	pw, tw     int       // stripe widths: pw+tw = cols
	secOrder   []int     // security rows by (norm, index) — scan order
}

func newEngine(sec, wld *Matrix) *engine {
	perm := screenPerm(wld)
	wldN := rowNorms(wld)
	n, cols := wld.rows, wld.cols

	// Order wild columns by (norm, original index) — deterministic, so every
	// Stats counter is a pure function of the input.
	orig := make([]int, n)
	for j := range orig {
		orig[j] = j
	}
	sort.Slice(orig, func(a, b int) bool {
		if wldN[orig[a]] != wldN[orig[b]] {
			return wldN[orig[a]] < wldN[orig[b]]
		}
		return orig[a] < orig[b]
	})
	pw := screenPrefix
	if cols < pw {
		pw = cols
	}
	tw := cols - pw
	wldNS := make([]float64, n)
	wldG := make([]float64, n*screenSegments)
	wldP := make([]float64, n*pw)
	wldT := make([]float64, n*tw)
	scratch := make([]float64, cols)
	for k, j := range orig {
		src := wld.Row(j)
		for t, p := range perm {
			scratch[t] = src[p]
		}
		copy(wldP[k*pw:(k+1)*pw], scratch[:pw])
		copy(wldT[k*tw:(k+1)*tw], scratch[pw:])
		segmentNorms(scratch, wldG[k*screenSegments:(k+1)*screenSegments], pw)
		wldNS[k] = wldN[j]
	}

	secN := rowNorms(sec)
	secOrder := make([]int, sec.rows)
	for i := range secOrder {
		secOrder[i] = i
	}
	sort.Slice(secOrder, func(a, b int) bool {
		if secN[secOrder[a]] != secN[secOrder[b]] {
			return secN[secOrder[a]] < secN[secOrder[b]]
		}
		return secOrder[a] < secOrder[b]
	})

	e := &engine{
		sec: sec, wld: wld,
		secN: secN, wldN: wldN,
		secS:  permuteCols(sec, perm),
		wldNS: wldNS, orig: orig,
		wldG: wldG, wldP: wldP, wldT: wldT,
		pw: pw, tw: tw,
		secOrder: secOrder,
	}
	e.secG = make([]float64, sec.rows*screenSegments)
	for i := 0; i < sec.rows; i++ {
		segmentNorms(e.secS.Row(i), e.secG[i*screenSegments:(i+1)*screenSegments], pw)
	}
	return e
}

// segmentNorms fills out with the screenSegments per-segment Euclidean
// norms of one screen-order row. Segment 0 covers exactly the prefix
// dimensions [0, pw); the remaining segments split the tail evenly. The
// alignment lets the scan reuse the tail segments (1..3) after the prefix
// sum is known: dist² = partial_prefix + dist²_tail ≥ p + Σ_{g≥1} gap²_g,
// a second rejection that costs one multiply-add on already-loaded data
// instead of a tail-stripe read.
func segmentNorms(row, out []float64, pw int) {
	out[0] = math.Sqrt(dot(row[:pw], row[:pw]))
	tail := row[pw:]
	tcols := len(tail)
	for g := 1; g < screenSegments; g++ {
		lo := (g - 1) * tcols / (screenSegments - 1)
		hi := g * tcols / (screenSegments - 1)
		seg := tail[lo:hi]
		out[g] = math.Sqrt(dot(seg, seg))
	}
}

// prefixDist2 is the first-stage screen: the squared distance restricted to
// the packed prefix dimensions, summed with independent accumulators. Its
// terms are a subset of the non-negative terms dist2 adds, so (up to the
// reordering error screenSlack covers) it is a lower bound of the full
// reference-order distance and may reject — never accept — candidates.
func prefixDist2(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= len(a); j += 4 {
		x := a[j : j+4 : j+4]
		y := b[j : j+4 : j+4]
		d0 := x[0] - y[0]
		d1 := x[1] - y[1]
		d2 := x[2] - y[2]
		d3 := x[3] - y[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; j < len(a); j++ {
		d := a[j] - b[j]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// prefixScreen evaluates the prefix partial distance with a rejection
// checkpoint every 8 dimensions: the candidate is rejected as soon as
// partial + add exceeds limit. Each checkpoint applies exactly the caller's
// final test, and the partial sum is monotone under the appended
// non-negative terms (adding t ≥ 0 to an accumulator never decreases its
// rounded value, and the final accumulator combination is monotone in each
// part) — so a midway rejection coincides with the decision the full prefix
// sum would have produced. Only wasted arithmetic is skipped; the rejected
// set, and with it every Stats counter, is unchanged.
func prefixScreen(a, b []float64, add, limit float64) (pd float64, live bool) {
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+8 <= len(a); j += 8 {
		x := a[j : j+8 : j+8]
		y := b[j : j+8 : j+8]
		d0 := x[0] - y[0]
		d1 := x[1] - y[1]
		d2 := x[2] - y[2]
		d3 := x[3] - y[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		d4 := x[4] - y[4]
		d5 := x[5] - y[5]
		d6 := x[6] - y[6]
		d7 := x[7] - y[7]
		s0 += d4 * d4
		s1 += d5 * d5
		s2 += d6 * d6
		s3 += d7 * d7
		if s := (s0 + s1) + (s2 + s3); s+add > limit {
			return s, false
		}
	}
	for ; j+4 <= len(a); j += 4 {
		x := a[j : j+4 : j+4]
		y := b[j : j+4 : j+4]
		d0 := x[0] - y[0]
		d1 := x[1] - y[1]
		d2 := x[2] - y[2]
		d3 := x[3] - y[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; j < len(a); j++ {
		d := a[j] - b[j]
		s0 += d * d
	}
	pd = (s0 + s1) + (s2 + s3)
	return pd, pd+add <= limit
}

// screenPerm orders dimensions by descending variance over the wild pool
// (ties by ascending dimension, so the order — and with it every Stats
// counter — is deterministic for a given input).
func screenPerm(wld *Matrix) []int {
	d := wld.cols
	sum := make([]float64, d)
	sumSq := make([]float64, d)
	for i := 0; i < wld.rows; i++ {
		row := wld.Row(i)
		for j, x := range row {
			sum[j] += x
			sumSq[j] += x * x
		}
	}
	n := float64(wld.rows)
	variance := make([]float64, d)
	for j := 0; j < d; j++ {
		mean := sum[j] / n
		variance[j] = sumSq[j]/n - mean*mean
	}
	perm := make([]int, d)
	for j := range perm {
		perm[j] = j
	}
	sort.Slice(perm, func(a, b int) bool {
		if variance[perm[a]] != variance[perm[b]] {
			return variance[perm[a]] > variance[perm[b]]
		}
		return perm[a] < perm[b]
	})
	return perm
}

// permuteCols copies m with its columns reordered by perm.
func permuteCols(m *Matrix, perm []int) *Matrix {
	out := NewMatrix(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for k, j := range perm {
			dst[k] = src[j]
		}
	}
	return out
}

// seedSpan is the per-side width of the bound-seeding sample: before its
// outward walk, every security row evaluates the exact distance to its
// 2·seedSpan nearest-norm wild rows. The smallest and second-smallest
// sampled distances are upper bounds on the row's final best and second-best
// (order statistics over a subset can only be ≥ those over the full set), so
// the walk prunes against min(current, seeded) from its very first step —
// before its own visits have tightened the running second-best.
const seedSpan = 64

// seedBounds samples the 2·seedSpan nearest-norm wild rows of security row i
// and returns the smallest and second-smallest exact distances — valid upper
// bounds for the row's final (best, second-best). The values are used only
// as pruning bounds, never recorded as candidates, so the walk's
// lexicographic state is built exclusively from its own confirmed visits.
func (e *engine) seedBounds(i int, c *scanCounters) (float64, float64) {
	row := e.sec.Row(i)
	n := len(e.wldNS)
	lo := sort.SearchFloat64s(e.wldNS, e.secN[i]) - seedSpan
	if lo < 0 {
		lo = 0
	}
	hi := lo + 2*seedSpan
	if hi > n {
		hi = n
		if lo = hi - 2*seedSpan; lo < 0 {
			lo = 0
		}
	}
	b1, b2 := inf, inf
	for k := lo; k < hi; k++ {
		c.evals++
		sum := dist2(row, e.wld.Row(e.orig[k]))
		if sum < b1 {
			b1, b2 = sum, b1
		} else if sum < b2 {
			b2 = sum
		}
	}
	return b1, b2
}

// Why the out-of-order scans below still reproduce the reference exactly:
// the reference's ascending scan with strict-< updates computes the
// lexicographically smallest (distance, column) pair — on equal distances
// the earlier column wins — and, for the two-best variant, the two
// lexicographically smallest pairs. A scan may therefore visit columns in
// ANY order and produce identical results, provided (1) every update
// comparison is lexicographic on (distance, original column index), and
// (2) every rejection path — the bulk norm-window break, the segment-norm
// bound, the prefix + tail-segment check, and the tail screen — rejects
// only candidates whose reference-order distance is guaranteed STRICTLY
// above the current bound, so a tie that would win by index can never be
// discarded. All four rejections here use strictly-greater comparisons on
// conservatively shaded/slacked bounds, which proves exactly that.

// scanRowSorted2 computes security row i's lexicographic (best, second-best)
// over the entire wild pool in one outward walk from the row's binary-
// searched norm position. The pruning bound at every step is min(d2, ub) —
// the eviction threshold for the (best, second) pair, capped by the row's
// seeded upper bound. Pruning against ub is exact for the same reason
// pruning against d2 is: both are ≥ the row's FINAL second-best at all
// times, so a strictly-greater rejection can only drop candidates outside
// the final two-best. Because the walk starts at the nearest-norm
// candidates — the likeliest true matches — d2 collapses to near-final
// within the first few visits, and once a side's norm gap alone proves
// every remaining column of that side is strictly worse than the bound,
// the whole remainder is skipped in bulk. Surviving columns pass the
// segment-norm bound, the packed prefix screen, and the tail screen, and
// only then pay for the reference-order dist2 — so every distance that
// reaches a comparison is bit-identical to the reference's.
func (e *engine) scanRowSorted2(i int, used []bool, c *scanCounters) (d1 float64, j1 int, d2 float64, j2 int) {
	row := e.sec.Row(i)
	rowS := e.secS.Row(i)
	pre := rowS[:e.pw]
	seg := e.secG[i*screenSegments : (i+1)*screenSegments : (i+1)*screenSegments]
	na := e.secN[i]
	n := len(e.wldNS)
	// Rescans (used != nil) cannot use the seeded cap: the sampled columns
	// may be taken, and a taken column's distance is no upper bound on the
	// remaining pool's second-best.
	ub := inf
	if used == nil {
		_, ub = e.seedBounds(i, c)
	}
	d1, d2 = inf, inf
	j1, j2 = -1, -1
	mid := sort.SearchFloat64s(e.wldNS, na)
	// Right side: norms ≥ na, norm gap grows with k.
	for k := mid; k < n; k++ {
		b := d2
		if ub < b {
			b = ub
		}
		diff := e.wldNS[k] - na
		if diff*diff*normBoundShade > b {
			c.normPruned += int64(n - k)
			break
		}
		if used != nil && used[e.orig[k]] {
			continue
		}
		sg := e.wldG[k*screenSegments : (k+1)*screenSegments : (k+1)*screenSegments]
		g0 := seg[0] - sg[0]
		g1 := seg[1] - sg[1]
		g2 := seg[2] - sg[2]
		g3 := seg[3] - sg[3]
		tailLb := (g1*g1 + g2*g2) + g3*g3
		if (g0*g0+tailLb)*normBoundShade > b {
			c.normPruned++
			continue
		}
		c.evals++
		p := prefixDist2(pre, e.wldP[k*e.pw:(k+1)*e.pw])
		if p+tailLb*normBoundShade > b*screenSlack {
			c.earlyExited++
			continue
		}
		d1, j1, d2, j2 = e.confirm2(k, row, rowS, p, c, d1, j1, d2, j2, b)
	}
	// Left side: norms < na, norm gap grows as k decreases.
	for k := mid - 1; k >= 0; k-- {
		b := d2
		if ub < b {
			b = ub
		}
		diff := na - e.wldNS[k]
		if diff*diff*normBoundShade > b {
			c.normPruned += int64(k + 1)
			break
		}
		if used != nil && used[e.orig[k]] {
			continue
		}
		sg := e.wldG[k*screenSegments : (k+1)*screenSegments : (k+1)*screenSegments]
		g0 := seg[0] - sg[0]
		g1 := seg[1] - sg[1]
		g2 := seg[2] - sg[2]
		g3 := seg[3] - sg[3]
		tailLb := (g1*g1 + g2*g2) + g3*g3
		if (g0*g0+tailLb)*normBoundShade > b {
			c.normPruned++
			continue
		}
		c.evals++
		p := prefixDist2(pre, e.wldP[k*e.pw:(k+1)*e.pw])
		if p+tailLb*normBoundShade > b*screenSlack {
			c.earlyExited++
			continue
		}
		d1, j1, d2, j2 = e.confirm2(k, row, rowS, p, c, d1, j1, d2, j2, b)
	}
	return d1, j1, d2, j2
}

// confirm2 runs one prefix-surviving candidate through the tail screen
// (continuing from the prefix sum, against bound — min of the current
// second-best and the seeded cap) and, if it survives, the reference-order
// confirmation and lexicographic two-best update.
func (e *engine) confirm2(k int, row, rowS []float64, p float64, c *scanCounters, d1 float64, j1 int, d2 float64, j2 int, bound float64) (float64, int, float64, int) {
	if !screenTailDist2(rowS[e.pw:], e.wldT[k*e.tw:(k+1)*e.tw], p, bound) {
		c.earlyExited++
		return d1, j1, d2, j2
	}
	j := e.orig[k]
	sum := dist2(row, e.wld.Row(j))
	if sum < d1 || (sum == d1 && j < j1) {
		d2, j2 = d1, j1
		d1, j1 = sum, j
	} else if sum < d2 || (sum == d2 && j < j2) {
		d2, j2 = sum, j
	}
	return d1, j1, d2, j2
}

// scanRowSortedBest is the single-best variant used by KNNSelect: it prunes
// against min(best, ub) — the best distance directly (a tighter bound than
// second-best), capped by the seeded best-distance upper bound.
func (e *engine) scanRowSortedBest(i int, c *scanCounters) (best float64, bestJ int) {
	row := e.sec.Row(i)
	rowS := e.secS.Row(i)
	pre := rowS[:e.pw]
	seg := e.secG[i*screenSegments : (i+1)*screenSegments : (i+1)*screenSegments]
	na := e.secN[i]
	n := len(e.wldNS)
	ub, _ := e.seedBounds(i, c)
	best, bestJ = inf, -1
	mid := sort.SearchFloat64s(e.wldNS, na)
	for k := mid; k < n; k++ {
		b := best
		if ub < b {
			b = ub
		}
		diff := e.wldNS[k] - na
		if diff*diff*normBoundShade > b {
			c.normPruned += int64(n - k)
			break
		}
		sg := e.wldG[k*screenSegments : (k+1)*screenSegments : (k+1)*screenSegments]
		g0 := seg[0] - sg[0]
		g1 := seg[1] - sg[1]
		g2 := seg[2] - sg[2]
		g3 := seg[3] - sg[3]
		tailLb := (g1*g1 + g2*g2) + g3*g3
		if (g0*g0+tailLb)*normBoundShade > b {
			c.normPruned++
			continue
		}
		c.evals++
		p := prefixDist2(pre, e.wldP[k*e.pw:(k+1)*e.pw])
		if p+tailLb*normBoundShade > b*screenSlack {
			c.earlyExited++
			continue
		}
		best, bestJ = e.confirmBest(k, row, rowS, p, c, best, bestJ, b)
	}
	for k := mid - 1; k >= 0; k-- {
		b := best
		if ub < b {
			b = ub
		}
		diff := na - e.wldNS[k]
		if diff*diff*normBoundShade > b {
			c.normPruned += int64(k + 1)
			break
		}
		sg := e.wldG[k*screenSegments : (k+1)*screenSegments : (k+1)*screenSegments]
		g0 := seg[0] - sg[0]
		g1 := seg[1] - sg[1]
		g2 := seg[2] - sg[2]
		g3 := seg[3] - sg[3]
		tailLb := (g1*g1 + g2*g2) + g3*g3
		if (g0*g0+tailLb)*normBoundShade > b {
			c.normPruned++
			continue
		}
		c.evals++
		p := prefixDist2(pre, e.wldP[k*e.pw:(k+1)*e.pw])
		if p+tailLb*normBoundShade > b*screenSlack {
			c.earlyExited++
			continue
		}
		best, bestJ = e.confirmBest(k, row, rowS, p, c, best, bestJ, b)
	}
	return best, bestJ
}

func (e *engine) confirmBest(k int, row, rowS []float64, p float64, c *scanCounters, best float64, bestJ int, bound float64) (float64, int) {
	if !screenTailDist2(rowS[e.pw:], e.wldT[k*e.tw:(k+1)*e.tw], p, bound) {
		c.earlyExited++
		return best, bestJ
	}
	j := e.orig[k]
	if sum := dist2(row, e.wld.Row(j)); sum < best || (sum == best && j < bestJ) {
		best, bestJ = sum, j
	}
	return best, bestJ
}
