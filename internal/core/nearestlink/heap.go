package nearestlink

// rowHeap is a binary min-heap of (distance, row) pairs ordered by distance
// and, on ties, by row index. The tie-break is load-bearing: the reference
// greedy loop scans rows in ascending index with a strict <, so the lowest
// index among minimal rows must win for the heap-driven assignment to
// reproduce Algorithm 1's output exactly.
//
// Invariant maintained by the greedy phase: every unassigned, unexhausted
// row has exactly one live entry whose key equals the row's current u value
// (a row's key changes only while it is popped, and it is re-pushed with
// the new key), so a pop is always the true argmin over pending rows.
type rowHeap struct {
	d []float64
	r []int
}

func newRowHeap(capacity int) *rowHeap {
	return &rowHeap{d: make([]float64, 0, capacity), r: make([]int, 0, capacity)}
}

func (h *rowHeap) len() int { return len(h.d) }

func (h *rowHeap) less(a, b int) bool {
	if h.d[a] != h.d[b] {
		return h.d[a] < h.d[b]
	}
	return h.r[a] < h.r[b]
}

func (h *rowHeap) swap(a, b int) {
	h.d[a], h.d[b] = h.d[b], h.d[a]
	h.r[a], h.r[b] = h.r[b], h.r[a]
}

func (h *rowHeap) push(d float64, row int) {
	h.d = append(h.d, d)
	h.r = append(h.r, row)
	i := len(h.d) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *rowHeap) pop() (float64, int) {
	d, row := h.d[0], h.r[0]
	last := len(h.d) - 1
	h.swap(0, last)
	h.d = h.d[:last]
	h.r = h.r[:last]
	h.siftDown(0)
	return d, row
}

// heapifyRowHeap builds a heap over all rows at once — entry i keyed by
// u[i] — with Floyd's bottom-up sift-down: O(m) instead of the O(m log m)
// of m pushes. The heap's internal layout differs from push-built, but pop
// order is a pure function of the (distance, row) total order, so the
// greedy phase's output and accounting are unchanged.
func heapifyRowHeap(u []float64) *rowHeap {
	m := len(u)
	h := &rowHeap{d: append(make([]float64, 0, m), u...), r: make([]int, m)}
	for i := range h.r {
		h.r[i] = i
	}
	for i := m/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

// siftDown restores the heap property below index i.
func (h *rowHeap) siftDown(i int) {
	n := len(h.d)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
