package nearestlink

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// VerifySampled spot-checks a Search (or ReferenceSearch) output against the
// reference semantics of Algorithm 1 without re-running the full O(M·N·d)
// reference search. It exploits an invariant of the greedy assignment: when
// link k is emitted, its wild column is the first-index argmin of the
// reference-order distance over every column not already taken by links
// 0..k-1, and its distance is exactly that minimum. (At assignment time the
// row's cached minimum is exact over the then-unused columns, and any
// earlier-index tie would have been returned by the row scan first.) So each
// sampled link can be verified independently with one brute-force row scan
// over the columns unused before it — the same dist2 accumulation order the
// reference uses, compared bit-for-bit.
//
// In addition to the sampled scans, the whole output is checked for the
// cheap global invariants: in-range indices, one-to-one rows and columns,
// and non-decreasing emission distances (the greedy always assigns the
// current global minimum, and cached minima only grow).
//
// sample bounds how many links get the brute-force scan (capped at
// len(links)); seed makes the sample deterministic. It returns the number of
// links scanned and the first violation found, if any.
func VerifySampled(security, wild [][]float64, links []Link, opts *Options, sample int, seed int64) (int, error) {
	if len(links) == 0 {
		return 0, nil
	}
	if len(security) == 0 {
		return 0, ErrNoSecurityPatches
	}
	if len(wild) == 0 {
		return 0, ErrNoWildPatches
	}
	if err := validateDims(security, wild); err != nil {
		return 0, err
	}
	o := opts.resolved()

	sec, wld := security, wild
	if !o.DisableNormalization {
		w, err := Weights(security, wild)
		if err != nil {
			return 0, err
		}
		sec = weightedRows(security, w)
		wld = weightedRows(wild, w)
	}
	m, n := len(sec), len(wld)

	// Global invariants over the full output.
	rowTaken := make([]bool, m)
	colTaken := make([]bool, n)
	for k, l := range links {
		if l.Security < 0 || l.Security >= m {
			return 0, fmt.Errorf("link %d: security row %d out of range [0,%d)", k, l.Security, m)
		}
		if l.Wild < 0 || l.Wild >= n {
			return 0, fmt.Errorf("link %d: wild column %d out of range [0,%d)", k, l.Wild, n)
		}
		if rowTaken[l.Security] {
			return 0, fmt.Errorf("link %d: security row %d linked twice", k, l.Security)
		}
		if colTaken[l.Wild] {
			return 0, fmt.Errorf("link %d: wild column %d linked twice", k, l.Wild)
		}
		rowTaken[l.Security] = true
		colTaken[l.Wild] = true
		if k > 0 && l.Distance < links[k-1].Distance {
			return 0, fmt.Errorf("link %d: distance %g below predecessor %g (greedy emits non-decreasing distances)",
				k, l.Distance, links[k-1].Distance)
		}
	}

	if sample > len(links) {
		sample = len(links)
	}
	if sample <= 0 {
		return 0, nil
	}
	rng := rand.New(rand.NewSource(seed))
	sampled := make(map[int]bool, sample)
	for _, k := range rng.Perm(len(links))[:sample] {
		sampled[k] = true
	}

	// Snapshot the used-column set as it stood before each sampled link, in
	// one pass over the emission order, then run the brute-force scans in
	// parallel.
	type check struct {
		k    int
		link Link
		used []bool
	}
	checks := make([]check, 0, sample)
	used := make([]bool, n)
	for k, l := range links {
		if sampled[k] {
			checks = append(checks, check{k: k, link: l, used: append([]bool(nil), used...)})
		}
		used[l.Wild] = true
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	chunk := (len(checks) + o.Workers - 1) / o.Workers
	for lo := 0; lo < len(checks); lo += chunk {
		hi := lo + chunk
		if hi > len(checks) {
			hi = len(checks)
		}
		wg.Add(1)
		go func(cs []check) {
			defer wg.Done()
			for _, c := range cs {
				if err := verifyOneLink(sec, wld, c.link, c.used); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("link %d: %w", c.k, err)
					}
					mu.Unlock()
					return
				}
			}
		}(checks[lo:hi])
	}
	wg.Wait()
	return len(checks), firstErr
}

// VerifyQuantBound spot-checks the quantized pre-screen's admissibility
// contract on real data. It rebuilds the engine's quantized stripes for the
// given inputs with the screen forced on, samples (security, wild) pairs
// deterministically, and asserts for each that the screen does not reject
// the pair against the pair's OWN reference-order squared distance — the
// exact property the screen's exactness argument rests on: a bound the true
// distance meets must survive the integer lower bound and every suffix-norm
// checkpoint (see the quantizer type comment in quant.go).
//
// It returns the number of pairs checked (0 when the quantizer self-disables
// on degenerate data) and the first violation found, if any.
func VerifyQuantBound(security, wild [][]float64, opts *Options, sample int, seed int64) (int, error) {
	if len(security) == 0 || len(wild) == 0 || sample <= 0 {
		return 0, nil
	}
	if err := validateDims(security, wild); err != nil {
		return 0, err
	}
	o := opts.resolved()
	sec, wld := flatten(security), flatten(wild)
	if !o.DisableNormalization {
		w := weightsFlat(sec, wld)
		applyWeights(sec, w)
		applyWeights(wld, w)
	}
	e := newEngine(sec, wld)
	force := true
	o.Quantize = &force
	p := newBlockPlan(e, o)
	if !p.qz.ok {
		return 0, nil
	}
	m, n, qw, nsuf := sec.rows, wld.rows, p.qw, p.nsuf
	rng := rand.New(rand.NewSource(seed))
	for checked := 0; checked < sample; checked++ {
		t, k := rng.Intn(m), rng.Intn(n)
		i, j := e.secOrder[t], e.orig[k]
		exact := dist2(e.sec.Row(i), e.wld.Row(j))
		if p.qz.reject(p.ordQ[t*qw:(t+1)*qw], p.wldQ[k*qw:(k+1)*qw],
			p.ordSuf[t*nsuf:(t+1)*nsuf], p.wldSuf[k*nsuf:(k+1)*nsuf], exact) {
			return checked, fmt.Errorf(
				"quant screen rejected security row %d vs wild column %d against its own distance² %g (inadmissible bound)",
				i, j, exact)
		}
	}
	return sample, nil
}

// verifyOneLink brute-force scans one security row over the columns unused
// at its assignment time and compares the first-index argmin (and its exact
// distance) with the link under test.
func verifyOneLink(sec, wld [][]float64, l Link, used []bool) error {
	row := sec[l.Security]
	best := math.Inf(1)
	bestJ := -1
	for j := range wld {
		if used[j] {
			continue
		}
		if d := dist2(row, wld[j]); d < best {
			best, bestJ = d, j
		}
	}
	if bestJ != l.Wild {
		return fmt.Errorf("security row %d linked to wild %d, reference scan selects %d (dist %g vs %g)",
			l.Security, l.Wild, bestJ, l.Distance, math.Sqrt(best))
	}
	if d := math.Sqrt(best); d != l.Distance {
		return fmt.Errorf("security row %d -> wild %d: distance %g, reference scan computes %g",
			l.Security, l.Wild, l.Distance, d)
	}
	return nil
}
