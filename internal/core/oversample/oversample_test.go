package oversample

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"patchdb/internal/cast"
	"patchdb/internal/diff"
)

const beforeSrc = `#include <string.h>

int copy_frame(char *dst, const char *src, int len)
{
	int ret = 0;
	memcpy(dst, src, len);
	ret = len;
	return ret;
}
`

const afterSrc = `#include <string.h>

int copy_frame(char *dst, const char *src, int len)
{
	int ret = 0;
	if (len < 0 || len > 4096)
		return -1;
	memcpy(dst, src, len);
	ret = len;
	return ret;
}
`

func locateIf(t *testing.T, src string) *cast.IfStmt {
	t.Helper()
	f, err := cast.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := f.IfStmts()
	if len(ifs) == 0 {
		t.Fatal("no if statement")
	}
	return ifs[0]
}

func TestApplyVariantAll(t *testing.T) {
	wantSnippets := map[Variant][]string{
		VariantZeroOr:    {"const int _SYS_ZERO = 0;", "_SYS_ZERO || (len < 0 || len > 4096)"},
		VariantOneAnd:    {"const int _SYS_ONE = 1;", "_SYS_ONE && (len < 0 || len > 4096)"},
		VariantBoolEq:    {"int _SYS_STMT = (len < 0 || len > 4096);", "if (1 == _SYS_STMT)"},
		VariantBoolNeg:   {"int _SYS_STMT = !(len < 0 || len > 4096);", "if (!_SYS_STMT)"},
		VariantFlagSet:   {"int _SYS_VAL = 0;", "{ _SYS_VAL = 1; }", "if (_SYS_VAL)"},
		VariantFlagClear: {"int _SYS_VAL = 1;", "{ _SYS_VAL = 0; }", "if (!_SYS_VAL)"},
		VariantFlagAnd:   {"if (_SYS_VAL && (len < 0 || len > 4096))"},
		VariantFlagOr:    {"if (!_SYS_VAL || (len < 0 || len > 4096))"},
	}
	for v := Variant(1); v <= NumVariants; v++ {
		t.Run(v.String(), func(t *testing.T) {
			ifStmt := locateIf(t, afterSrc)
			got, err := ApplyVariant(afterSrc, ifStmt, v)
			if err != nil {
				t.Fatal(err)
			}
			for _, snippet := range wantSnippets[v] {
				if !strings.Contains(got, snippet) {
					t.Errorf("variant %v output missing %q:\n%s", v, snippet, got)
				}
			}
			// The transformed source must still parse.
			if _, err := cast.Parse(got); err != nil {
				t.Errorf("variant %v output unparseable: %v", v, err)
			}
			// The original statement body is preserved.
			if !strings.Contains(got, "return -1;") {
				t.Errorf("variant %v lost the guarded body", v)
			}
		})
	}
}

func TestApplyVariantPreservesIndent(t *testing.T) {
	ifStmt := locateIf(t, afterSrc)
	got, err := ApplyVariant(afterSrc, ifStmt, VariantZeroOr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "\tconst int _SYS_ZERO = 0;\n\tif (") {
		t.Errorf("declaration not indented like the if:\n%s", got)
	}
}

func TestApplyVariantErrors(t *testing.T) {
	if _, err := ApplyVariant("x", nil, VariantZeroOr); !errors.Is(err, ErrNoIfStatement) {
		t.Errorf("nil ifStmt err = %v", err)
	}
	ifStmt := locateIf(t, afterSrc)
	if _, err := ApplyVariant(afterSrc, ifStmt, Variant(99)); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestSynthesizeAfterSide(t *testing.T) {
	before := map[string]string{"src/copy.c": beforeSrc}
	after := map[string]string{"src/copy.c": afterSrc}
	ov := &Oversampler{Sides: []Side{ModifyAfter}}
	syns, err := ov.Synthesize("cafe01", before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(syns) != NumVariants {
		t.Fatalf("synthetics = %d, want %d", len(syns), NumVariants)
	}
	for _, s := range syns {
		// Each synthetic patch must still contain the original fix AND the
		// variant boilerplate (merged modifications).
		text := diff.Format(s.Patch)
		if !strings.Contains(text, "_SYS") {
			t.Errorf("variant %v patch lacks boilerplate:\n%s", s.Variant, text)
		}
		// Applying the synthetic patch to the BEFORE file must reproduce the
		// mutated AFTER version exactly (patch validity).
		got, err := diff.Apply(beforeSrc, s.Patch.Files[0])
		if err != nil {
			t.Fatalf("variant %v patch does not apply: %v\n%s", s.Variant, err, text)
		}
		if _, err := cast.Parse(got); err != nil {
			t.Errorf("variant %v applied result unparseable: %v", s.Variant, err)
		}
		if !strings.Contains(got, "if (") {
			t.Errorf("variant %v applied result lost conditionals", s.Variant)
		}
	}
}

func TestSynthesizeBeforeSide(t *testing.T) {
	// The BEFORE version has no if statement, so ModifyBefore yields nothing
	// for this patch — exactly the paper's observation that only patches
	// touching conditionals can be oversampled on that side.
	before := map[string]string{"src/copy.c": beforeSrc}
	after := map[string]string{"src/copy.c": afterSrc}
	ov := &Oversampler{Sides: []Side{ModifyBefore}}
	syns, err := ov.Synthesize("cafe02", before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(syns) != 0 {
		t.Errorf("before-side synthetics = %d, want 0 (no if pre-patch)", len(syns))
	}

	// Now a patch that MODIFIES an existing if: both sides produce variants.
	b2 := strings.Replace(afterSrc, "len > 4096", "len > 1024", 1)
	ov2 := &Oversampler{}
	syns2, err := ov2.Synthesize("cafe03", map[string]string{"src/copy.c": b2}, map[string]string{"src/copy.c": afterSrc})
	if err != nil {
		t.Fatal(err)
	}
	var beforeCount, afterCount int
	for _, s := range syns2 {
		if s.Side == ModifyBefore {
			beforeCount++
		} else {
			afterCount++
		}
	}
	if beforeCount == 0 || afterCount == 0 {
		t.Errorf("sides = before:%d after:%d, want both > 0", beforeCount, afterCount)
	}
	// Before-side synthetic patches must apply to the MUTATED before, i.e.
	// they are patches from before' to after; validate via re-parse.
	for _, s := range syns2 {
		if len(s.Patch.Files) == 0 {
			t.Fatalf("empty synthetic patch for side %v", s.Side)
		}
	}
}

func TestSynthesizeMaxPerPatch(t *testing.T) {
	before := map[string]string{"src/copy.c": beforeSrc}
	after := map[string]string{"src/copy.c": afterSrc}
	ov := &Oversampler{MaxPerPatch: 3}
	syns, err := ov.Synthesize("cafe04", before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(syns) != 3 {
		t.Errorf("capped synthetics = %d, want 3", len(syns))
	}
}

func TestSynthesizeShuffleDiversity(t *testing.T) {
	before := map[string]string{"src/copy.c": beforeSrc}
	after := map[string]string{"src/copy.c": afterSrc}
	ov := &Oversampler{MaxPerPatch: 4, Rand: rand.New(rand.NewSource(5))}
	syns, err := ov.Synthesize("cafe05", before, after)
	if err != nil {
		t.Fatal(err)
	}
	// With shuffling, the first 4 must not always be variants 1-4 in order.
	inOrder := true
	for i, s := range syns {
		if s.Variant != Variant(i+1) {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("shuffled synthesis returned the deterministic prefix")
	}
}

func TestSynthesizeSkipsNonC(t *testing.T) {
	before := map[string]string{"README.md": "# old\nif (x) y;\n"}
	after := map[string]string{"README.md": "# new\nif (x) y;\n"}
	ov := &Oversampler{}
	syns, err := ov.Synthesize("cafe06", before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(syns) != 0 {
		t.Errorf("non-C file produced %d synthetics", len(syns))
	}
}

func TestSynthesizeUntouchedIfIgnored(t *testing.T) {
	// The patch changes a line FAR from the only if statement: no variants.
	b := `int f(int a)
{
	if (a > 0)
		return 1;
	return 0;
}

int g(int b)
{
	return b + 1;
}
`
	a := strings.Replace(b, "b + 1", "b + 2", 1)
	ov := &Oversampler{}
	syns, err := ov.Synthesize("cafe07", map[string]string{"x.c": b}, map[string]string{"x.c": a})
	if err != nil {
		t.Fatal(err)
	}
	if len(syns) != 0 {
		t.Errorf("untouched if produced %d synthetics", len(syns))
	}
}

func TestVariantAndSideStrings(t *testing.T) {
	for v := Variant(1); v <= NumVariants; v++ {
		if v.String() == "unknown" {
			t.Errorf("variant %d unnamed", v)
		}
	}
	if Variant(0).String() != "unknown" {
		t.Error("invalid variant named")
	}
	if ModifyAfter.String() != "after" || ModifyBefore.String() != "before" {
		t.Error("side names wrong")
	}
}
