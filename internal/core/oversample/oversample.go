// Package oversample implements PatchDB's source-level oversampling
// (Sec. III-C): locate the `if` statements a patch touches via the AST,
// apply one of eight semantics-preserving control-flow variant templates
// (Fig. 5) to the pre- or post-patch version of the file, and re-derive the
// unified diff. Modifying the AFTER version merges the original patch with
// the extra edit; modifying the BEFORE version merges the inverse edit, so
// both directions of the paper's merge construction fall out of a single
// re-diff.
package oversample

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"patchdb/internal/cast"
	"patchdb/internal/diff"
)

// Variant identifies one of the eight if-statement templates of Fig. 5.
type Variant int

const (
	// VariantZeroOr rewrites `if (C)` as `const int _SYS_ZERO = 0;
	// if (_SYS_ZERO || (C))`.
	VariantZeroOr Variant = iota + 1
	// VariantOneAnd rewrites with `const int _SYS_ONE = 1; if (_SYS_ONE && (C))`.
	VariantOneAnd
	// VariantBoolEq hoists the condition: `int _SYS_STMT = (C); if (1 == _SYS_STMT)`.
	VariantBoolEq
	// VariantBoolNeg hoists the negation: `int _SYS_STMT = !(C); if (!_SYS_STMT)`.
	VariantBoolNeg
	// VariantFlagSet precomputes a flag: `int _SYS_VAL = 0; if (C) { _SYS_VAL = 1; } if (_SYS_VAL)`.
	VariantFlagSet
	// VariantFlagClear precomputes the inverted flag: `int _SYS_VAL = 1;
	// if (C) { _SYS_VAL = 0; } if (!_SYS_VAL)`.
	VariantFlagClear
	// VariantFlagAnd guards with flag AND condition: `... if (_SYS_VAL && (C))`.
	VariantFlagAnd
	// VariantFlagOr guards with inverted flag OR condition: `... if (!_SYS_VAL || (C))`.
	VariantFlagOr
)

// NumVariants is the number of templates.
const NumVariants = 8

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantZeroOr:
		return "SYS_ZERO||cond"
	case VariantOneAnd:
		return "SYS_ONE&&cond"
	case VariantBoolEq:
		return "bool-eq"
	case VariantBoolNeg:
		return "bool-neg"
	case VariantFlagSet:
		return "flag-set"
	case VariantFlagClear:
		return "flag-clear"
	case VariantFlagAnd:
		return "flag-and"
	case VariantFlagOr:
		return "flag-or"
	default:
		return "unknown"
	}
}

// Side selects which version of the file the extra edit lands in.
type Side int

const (
	// ModifyAfter edits the post-patch version (extra modifications are
	// appended to the patch).
	ModifyAfter Side = iota + 1
	// ModifyBefore edits the pre-patch version (the inverse modification is
	// prepended to the patch).
	ModifyBefore
)

// String names the side.
func (s Side) String() string {
	if s == ModifyBefore {
		return "before"
	}
	return "after"
}

// ErrNoIfStatement is returned when the requested if statement cannot be
// transformed (e.g. no condition span).
var ErrNoIfStatement = errors.New("oversample: no transformable if statement")

// ApplyVariant rewrites one if statement inside src according to the
// template, returning the transformed source. The transformation never
// changes the truth value of the condition, so program semantics are
// preserved.
func ApplyVariant(src string, ifStmt *cast.IfStmt, v Variant) (string, error) {
	if ifStmt == nil || ifStmt.CondClose <= ifStmt.CondOpen {
		return "", ErrNoIfStatement
	}
	cond := strings.TrimSpace(src[ifStmt.CondOpen+1 : ifStmt.CondClose])
	if cond == "" {
		return "", ErrNoIfStatement
	}
	// Find the start of the line holding the `if` and its indentation.
	lineStart := strings.LastIndexByte(src[:ifStmt.KwOffset], '\n') + 1
	indent := src[lineStart:ifStmt.KwOffset]
	if strings.TrimSpace(indent) != "" {
		// `if` shares the line with other code (e.g. `} else if`): indent
		// from column zero of that text.
		indent = leadingWhitespace(src[lineStart:])
	}

	var decl []string
	var newCond string
	wrapped := "(" + cond + ")"
	switch v {
	case VariantZeroOr:
		decl = []string{"const int _SYS_ZERO = 0;"}
		newCond = "_SYS_ZERO || " + wrapped
	case VariantOneAnd:
		decl = []string{"const int _SYS_ONE = 1;"}
		newCond = "_SYS_ONE && " + wrapped
	case VariantBoolEq:
		decl = []string{"int _SYS_STMT = " + wrapped + ";"}
		newCond = "1 == _SYS_STMT"
	case VariantBoolNeg:
		decl = []string{"int _SYS_STMT = !" + wrapped + ";"}
		newCond = "!_SYS_STMT"
	case VariantFlagSet:
		decl = []string{
			"int _SYS_VAL = 0;",
			"if " + wrapped + " { _SYS_VAL = 1; }",
		}
		newCond = "_SYS_VAL"
	case VariantFlagClear:
		decl = []string{
			"int _SYS_VAL = 1;",
			"if " + wrapped + " { _SYS_VAL = 0; }",
		}
		newCond = "!_SYS_VAL"
	case VariantFlagAnd:
		decl = []string{
			"int _SYS_VAL = 0;",
			"if " + wrapped + " { _SYS_VAL = 1; }",
		}
		newCond = "_SYS_VAL && " + wrapped
	case VariantFlagOr:
		decl = []string{
			"int _SYS_VAL = 1;",
			"if " + wrapped + " { _SYS_VAL = 0; }",
		}
		newCond = "!_SYS_VAL || " + wrapped
	default:
		return "", fmt.Errorf("oversample: unknown variant %d", int(v))
	}

	var b strings.Builder
	b.Grow(len(src) + 64*len(decl))
	b.WriteString(src[:lineStart])
	for _, d := range decl {
		b.WriteString(indent)
		b.WriteString(d)
		b.WriteString("\n")
	}
	b.WriteString(src[lineStart : ifStmt.CondOpen+1])
	b.WriteString(newCond)
	b.WriteString(src[ifStmt.CondClose:])
	return b.String(), nil
}

func leadingWhitespace(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] != ' ' && s[i] != '\t' {
			return s[:i]
		}
	}
	return s
}

// Synthetic is one generated artificial patch.
type Synthetic struct {
	Patch   *diff.Patch
	Variant Variant
	Side    Side
	// File is the path whose if statement was transformed.
	File string
	// Line is the 1-based line of the transformed if statement.
	Line int
}

// Oversampler synthesizes patch variants from full before/after file
// snapshots.
type Oversampler struct {
	// ContextLines in regenerated diffs (default 3, matching git).
	ContextLines int
	// MaxPerPatch caps synthetic patches per natural patch (0 = all).
	MaxPerPatch int
	// Sides selects which versions to modify (default: both).
	Sides []Side
	// Variants selects which templates to use (default: all eight).
	Variants []Variant
	// Rand, when set, shuffles the (if-statement, variant, side) candidate
	// combinations before MaxPerPatch truncation so capped synthesis samples
	// diverse variants instead of always the first templates.
	Rand *rand.Rand
}

func (o *Oversampler) defaults() (int, []Side, []Variant) {
	ctx := o.ContextLines
	if ctx <= 0 {
		ctx = 3
	}
	sides := o.Sides
	if len(sides) == 0 {
		sides = []Side{ModifyAfter, ModifyBefore}
	}
	variants := o.Variants
	if len(variants) == 0 {
		variants = make([]Variant, NumVariants)
		for i := range variants {
			variants[i] = Variant(i + 1)
		}
	}
	return ctx, sides, variants
}

// Synthesize generates artificial patches for one natural patch, given the
// full before/after snapshots of the files it touches. Patches that do not
// modify any if statement yield no variants (the paper reports ~70% of
// security patches involve conditional statements).
func (o *Oversampler) Synthesize(commitHash string, before, after map[string]string) ([]*Synthetic, error) {
	ctxLines, sides, variants := o.defaults()
	base := diff.ComputePatch(commitHash, "", before, after, ctxLines)

	// Enumerate all (file, side, if-statement, variant) combinations first.
	type combo struct {
		fd     *diff.FileDiff
		side   Side
		src    string
		ifStmt *cast.IfStmt
		v      Variant
	}
	var combos []combo
	for _, fd := range base.Files {
		if !fd.IsCFamily() {
			continue
		}
		for _, side := range sides {
			var src string
			var ok bool
			if side == ModifyAfter {
				src, ok = after[fd.NewPath]
			} else {
				src, ok = before[fd.OldPath]
			}
			if !ok || src == "" {
				continue
			}
			file, err := cast.Parse(src)
			if err != nil {
				continue // unparseable: skip, as the paper skips LLVM failures
			}
			for _, ifStmt := range targetIfStmts(file, fd, side) {
				for _, v := range variants {
					combos = append(combos, combo{fd: fd, side: side, src: src, ifStmt: ifStmt, v: v})
				}
			}
		}
	}
	if o.Rand != nil {
		o.Rand.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
	}

	var out []*Synthetic
	for _, c := range combos {
		mutated, err := ApplyVariant(c.src, c.ifStmt, c.v)
		if err != nil {
			continue
		}
		var p *diff.Patch
		variantHash := fmt.Sprintf("%s-syn-%s-%d-%d", commitHash, c.side, c.ifStmt.StartLine, c.v)
		if c.side == ModifyAfter {
			newAfter := overlay(after, c.fd.NewPath, mutated)
			p = diff.ComputePatch(variantHash, "", before, newAfter, ctxLines)
		} else {
			newBefore := overlay(before, c.fd.OldPath, mutated)
			p = diff.ComputePatch(variantHash, "", newBefore, after, ctxLines)
		}
		if len(p.Files) == 0 {
			continue
		}
		out = append(out, &Synthetic{
			Patch:   p,
			Variant: c.v,
			Side:    c.side,
			File:    c.fd.NewPath,
			Line:    c.ifStmt.StartLine,
		})
		if o.MaxPerPatch > 0 && len(out) >= o.MaxPerPatch {
			break
		}
	}
	return out, nil
}

// targetIfStmts returns the if statements overlapping the patch's changed
// lines on the requested side.
func targetIfStmts(file *cast.File, fd *diff.FileDiff, side Side) []*cast.IfStmt {
	seen := make(map[*cast.IfStmt]bool)
	var out []*cast.IfStmt
	for _, h := range fd.Hunks {
		var first, last int
		if side == ModifyAfter {
			first, last = h.NewStart, h.NewStart+h.NewLines-1
		} else {
			first, last = h.OldStart, h.OldStart+h.OldLines-1
		}
		for _, s := range file.IfStmtsInLines(first, last) {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

func overlay(files map[string]string, path, content string) map[string]string {
	out := make(map[string]string, len(files))
	for k, v := range files {
		out[k] = v
	}
	out[path] = content
	return out
}
