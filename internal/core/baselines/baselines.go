// Package baselines implements the three dataset-augmentation baselines the
// paper compares nearest link search against in Table III: brute force
// search, pseudo labeling (top-confidence candidates of a single model), and
// uncertainty-based labeling (consensus of ten classifiers).
package baselines

import (
	"fmt"
	"math/rand"

	"patchdb/internal/core/augment"
	"patchdb/internal/core/nearestlink"
	"patchdb/internal/ml"
	"patchdb/internal/ml/bayes"
	"patchdb/internal/ml/linear"
	"patchdb/internal/ml/tree"
)

// poolMatrix assembles the pool's feature vectors into one flat, row-major
// matrix (validating dimensionality), so classifier scoring walks contiguous
// memory instead of chasing per-item feature pointers.
func poolMatrix(pool []augment.Item) (*nearestlink.Matrix, error) {
	rows := make([][]float64, len(pool))
	for i, it := range pool {
		rows[i] = it.Features
	}
	m, err := nearestlink.MatrixFromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("pool features: %w", err)
	}
	return m, nil
}

// BruteForce samples sampleSize items uniformly from the pool and verifies
// each — the "screen everything" strategy. It returns the indices of the
// sampled candidates.
func BruteForce(pool []augment.Item, sampleSize int, rng *rand.Rand) []int {
	idx := rng.Perm(len(pool))
	if sampleSize > len(idx) {
		sampleSize = len(idx)
	}
	return idx[:sampleSize]
}

// PseudoLabeling trains a Random Forest on the labeled seed (the paper found
// it the best-performing single model) and returns the k pool indices with
// the highest predicted security-patch confidence.
func PseudoLabeling(train *ml.Dataset, pool []augment.Item, k int, seed int64) ([]int, error) {
	rf := &tree.Forest{Trees: 40, Seed: seed}
	if err := rf.Fit(train.X, train.Y); err != nil {
		return nil, fmt.Errorf("pseudo labeling: %w", err)
	}
	m, err := poolMatrix(pool)
	if err != nil {
		return nil, fmt.Errorf("pseudo labeling: %w", err)
	}
	return ml.ArgmaxProba(rf, m.RowSlices(), k), nil
}

// TenClassifiers builds the ten-model ensemble of the paper's
// uncertainty-based labeling baseline: Random Forest, SVM, Logistic
// Regression, SGD, SMO, Naive Bayes, Bayesian Network, J48-style decision
// tree, REPTree, and Voted Perceptron.
func TenClassifiers(seed int64) []ml.Classifier {
	return []ml.Classifier{
		&tree.Forest{Trees: 30, Seed: seed},
		&linear.SVM{Seed: seed},
		&linear.Logistic{},
		&linear.SGD{Seed: seed},
		&linear.SMO{Seed: seed},
		&bayes.GaussianNB{},
		&bayes.TAN{},
		&tree.Tree{MaxDepth: 12, MinLeaf: 2}, // J48-style single tree
		&tree.REPTree{Seed: seed},
		&linear.VotedPerceptron{Seed: seed},
	}
}

// Uncertainty trains the ensemble on the labeled seed and returns the pool
// indices every classifier predicts as security patches (the
// highest-certainty consensus set).
func Uncertainty(train *ml.Dataset, pool []augment.Item, seed int64) ([]int, error) {
	models := TenClassifiers(seed)
	for i, m := range models {
		if err := m.Fit(train.X, train.Y); err != nil {
			return nil, fmt.Errorf("uncertainty model %d: %w", i, err)
		}
	}
	feats, err := poolMatrix(pool)
	if err != nil {
		return nil, fmt.Errorf("uncertainty: %w", err)
	}
	var out []int
	for i := 0; i < feats.Rows(); i++ {
		row := feats.Row(i)
		all := true
		for _, m := range models {
			if m.Predict(row) != ml.Security {
				all = false
				break
			}
		}
		if all {
			out = append(out, i)
		}
	}
	return out, nil
}
