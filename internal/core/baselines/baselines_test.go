package baselines

import (
	"math/rand"
	"strconv"
	"testing"

	"patchdb/internal/core/augment"
	"patchdb/internal/ml"
)

// world builds a labeled training set plus an unlabeled pool where
// positives cluster high in dimension 0.
func world(seed int64) (*ml.Dataset, []augment.Item, map[string]bool) {
	rng := rand.New(rand.NewSource(seed))
	train := &ml.Dataset{}
	for i := 0; i < 200; i++ {
		label := i % 2
		x := []float64{float64(label)*3 + rng.NormFloat64(), rng.NormFloat64()}
		train.Append(x, label, "")
	}
	var pool []augment.Item
	truth := make(map[string]bool)
	for i := 0; i < 400; i++ {
		label := rng.Intn(10) == 0 // 10% positives
		base := 0.0
		if label {
			base = 3
		}
		id := "item" + strconv.Itoa(i)
		pool = append(pool, augment.Item{ID: id, Features: []float64{base + rng.NormFloat64(), rng.NormFloat64()}})
		truth[id] = label
	}
	return train, pool, truth
}

func hitRate(idx []int, pool []augment.Item, truth map[string]bool) float64 {
	if len(idx) == 0 {
		return 0
	}
	hits := 0
	for _, i := range idx {
		if truth[pool[i].ID] {
			hits++
		}
	}
	return float64(hits) / float64(len(idx))
}

func TestBruteForceUniform(t *testing.T) {
	_, pool, truth := world(1)
	rng := rand.New(rand.NewSource(2))
	idx := BruteForce(pool, 200, rng)
	if len(idx) != 200 {
		t.Fatalf("sample = %d", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatal("duplicate sample")
		}
		seen[i] = true
	}
	// Uniform sampling tracks the base rate (10%), give or take noise.
	if r := hitRate(idx, pool, truth); r > 0.25 {
		t.Errorf("brute force hit rate %.2f suspiciously high", r)
	}
	// Oversized request clamps.
	if got := BruteForce(pool, 10000, rng); len(got) != len(pool) {
		t.Errorf("clamp = %d", len(got))
	}
}

func TestPseudoLabelingBeatsBase(t *testing.T) {
	train, pool, truth := world(3)
	idx, err := PseudoLabeling(train, pool, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 40 {
		t.Fatalf("candidates = %d", len(idx))
	}
	if r := hitRate(idx, pool, truth); r < 0.3 {
		t.Errorf("pseudo labeling hit rate %.2f should beat the 10%% base on separable data", r)
	}
}

func TestUncertaintyConsensus(t *testing.T) {
	train, pool, truth := world(5)
	idx, err := Uncertainty(train, pool, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) == 0 {
		t.Fatal("consensus empty on separable data")
	}
	if r := hitRate(idx, pool, truth); r < 0.3 {
		t.Errorf("consensus hit rate %.2f should beat the base rate", r)
	}
}

func TestTenClassifiers(t *testing.T) {
	models := TenClassifiers(7)
	if len(models) != 10 {
		t.Fatalf("ensemble size = %d", len(models))
	}
	train, _, _ := world(8)
	for i, m := range models {
		if err := m.Fit(train.X, train.Y); err != nil {
			t.Errorf("model %d fit: %v", i, err)
		}
	}
}

func TestErrorsPropagate(t *testing.T) {
	empty := &ml.Dataset{}
	if _, err := PseudoLabeling(empty, nil, 5, 1); err == nil {
		t.Error("pseudo labeling on empty training set succeeded")
	}
	if _, err := Uncertainty(empty, nil, 1); err == nil {
		t.Error("uncertainty on empty training set succeeded")
	}
}
