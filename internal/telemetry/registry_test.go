package telemetry

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from many goroutines — mixing
// get-or-create lookups with updates — and checks the totals. Run under
// -race this doubles as the data-race proof for the whole registry.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 1000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("shared_total").Inc()
				reg.Counter("labeled_total", L("worker", fmt.Sprint(g%4))).Inc()
				reg.Gauge("level").Set(float64(i))
				reg.Histogram("lat_seconds", nil).Observe(float64(i) / perG)
			}
		}(g)
	}
	wg.Wait()

	if got := reg.Counter("shared_total").Value(); got != goroutines*perG {
		t.Errorf("shared_total = %v, want %d", got, goroutines*perG)
	}
	var labeled float64
	for g := 0; g < 4; g++ {
		labeled += reg.Counter("labeled_total", L("worker", fmt.Sprint(g))).Value()
	}
	if labeled != goroutines*perG {
		t.Errorf("labeled_total sum = %v, want %d", labeled, goroutines*perG)
	}
	h := reg.Histogram("lat_seconds", nil).Snapshot()
	if h.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
}

func TestCounterIgnoresInvalid(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)         // counters are monotonic; negative adds are dropped
	c.Add(math.NaN()) // NaN would poison the accumulator forever
	if got := c.Value(); got != 5 {
		t.Errorf("Value() = %v, want 5", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var reg *Registry
	// None of these may panic; all return usable nil handles.
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(1)
	reg.Histogram("z", nil).Observe(1)
	if reg.Counter("x").Value() != 0 || reg.Gauge("y").Value() != 0 {
		t.Error("nil metric values should read 0")
	}
	if pts := reg.Snapshot(); pts != nil {
		t.Errorf("nil registry Snapshot = %v, want nil", pts)
	}
	var tr *Tracer
	_, sp := tr.Start(nil, "noop")
	sp.SetAttr("k", "v")
	sp.End()
}

// TestHistogramBucketBoundaries pins the le (less-or-equal) semantics: an
// observation exactly on a bound lands in that bound's bucket, one just
// above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("b_seconds", []float64{1, 2, 4})

	h.Observe(0.5) // bucket le=1
	h.Observe(1)   // bucket le=1: boundary is inclusive
	h.Observe(1.5) // bucket le=2
	h.Observe(2)   // bucket le=2
	h.Observe(4)   // bucket le=4
	h.Observe(4.1) // +Inf overflow
	h.Observe(100) // +Inf overflow

	s := h.Snapshot()
	wantCounts := []uint64{2, 2, 1, 2}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("len(Counts) = %d, want %d (len(bounds)+1)", len(s.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("Counts[%d] = %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.Count != 7 {
		t.Errorf("Count = %d, want 7", s.Count)
	}
	if want := 0.5 + 1 + 1.5 + 2 + 4 + 4.1 + 100; s.Sum != want {
		t.Errorf("Sum = %v, want %v", s.Sum, want)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-increasing bounds")
		}
	}()
	NewRegistry().Histogram("bad", []float64{1, 1, 2})
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Error("expected panic re-registering a counter as a gauge")
		}
	}()
	reg.Gauge("dual")
}

// TestSnapshotDeterministic checks that two snapshots of the same state are
// identical and ordered by family name then label set — the property the
// RunReport determinism contract leans on.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		// Registration order differs from sorted order on purpose.
		reg.Counter("z_total", L("stage", "search")).Add(3)
		reg.Counter("a_total").Add(1)
		reg.Counter("z_total", L("stage", "crawl")).Add(2)
		reg.Gauge("m_level").Set(7)
		return reg
	}
	a, b := build().Snapshot(), build().Snapshot()
	if len(a) != 4 {
		t.Fatalf("snapshot has %d points, want 4", len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Value != b[i].Value {
			t.Errorf("snapshots diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	wantOrder := []string{"a_total", "m_level", "z_total", "z_total"}
	for i, name := range wantOrder {
		if a[i].Name != name {
			t.Errorf("point %d name = %s, want %s", i, a[i].Name, name)
		}
	}
	if a[2].Labels[0].Value != "crawl" || a[3].Labels[0].Value != "search" {
		t.Errorf("label order not deterministic: %v then %v", a[2].Labels, a[3].Labels)
	}
}

// TestCounterDurationNanosExact guards the convention of storing durations
// as integral nanoseconds in float64 counters: sums must round-trip exactly
// (10ms + 5ms must equal 15ms, which plain float seconds cannot guarantee).
func TestCounterDurationNanosExact(t *testing.T) {
	var c Counter
	c.Add(10e6) // 10ms in ns
	c.Add(5e6)  // 5ms in ns
	if got := int64(c.Value()); got != 15e6 {
		t.Errorf("duration ns sum = %d, want %d", got, int64(15e6))
	}
}
