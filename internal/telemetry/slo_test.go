package telemetry

import (
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// sloClock is an injectable, manually-advanced clock.
type sloClock struct {
	mu  sync.Mutex
	now time.Time
}

func newSLOClock() *sloClock {
	return &sloClock{now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *sloClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *sloClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// windowByName finds one window's burn in a verdict.
func windowByName(t *testing.T, v Verdict, name string) WindowBurn {
	t.Helper()
	for _, w := range v.Windows {
		if w.Window == name {
			return w
		}
	}
	t.Fatalf("verdict %s has no window %q (have %+v)", v.Name, name, v.Windows)
	return WindowBurn{}
}

// TestSLOBurnRateTable drives one availability objective through the
// canonical scenarios with a deterministic clock.
func TestSLOBurnRateTable(t *testing.T) {
	const target = 0.999 // error budget 0.001

	cases := []struct {
		name string
		// drive records traffic against the set under the clock.
		drive       func(s *SLOSet, c *sloClock)
		wantHealthy bool
		wantFast    bool
		wantSlow    bool
		// window -> want burn rate (checked approximately)
		wantBurn map[string]float64
	}{
		{
			name:        "zero traffic",
			drive:       func(s *SLOSet, c *sloClock) {},
			wantHealthy: true,
			wantBurn:    map[string]float64{"5m0s": 0, "1h0m0s": 0, "30m0s": 0, "6h0m0s": 0},
		},
		{
			name: "all good",
			drive: func(s *SLOSet, c *sloClock) {
				for range 1000 {
					s.RecordRequest(http.StatusOK, time.Millisecond)
				}
			},
			wantHealthy: true,
			wantBurn:    map[string]float64{"5m0s": 0, "1h0m0s": 0},
		},
		{
			name: "burst of errors fires fast and slow",
			drive: func(s *SLOSet, c *sloClock) {
				for i := range 1000 {
					code := http.StatusOK
					if i%20 == 0 { // 5% errors = 50x budget
						code = http.StatusInternalServerError
					}
					s.RecordRequest(code, time.Millisecond)
				}
			},
			wantHealthy: false,
			wantFast:    true,
			wantSlow:    true,
			wantBurn:    map[string]float64{"5m0s": 50, "1h0m0s": 50},
		},
		{
			name: "old errors age out of the short window",
			drive: func(s *SLOSet, c *sloClock) {
				// Errors burn hot, then six minutes of clean traffic: the 5m
				// window no longer sees them, so the fast pair cannot fire —
				// but the errors still sit inside 30m/1h/6h, so the slow
				// pair (correctly) keeps the page up.
				for range 100 {
					s.RecordRequest(http.StatusInternalServerError, time.Millisecond)
				}
				c.Advance(6 * time.Minute)
				for range 100 {
					s.RecordRequest(http.StatusOK, time.Millisecond)
				}
			},
			wantHealthy: false,
			wantFast:    false,
			wantSlow:    true,
			wantBurn:    map[string]float64{"5m0s": 0, "1h0m0s": 500},
		},
		{
			name: "errors at the exact window edge still count",
			drive: func(s *SLOSet, c *sloClock) {
				// 4m50s back is inside a 5m window that includes the current
				// bucket; the fast pair sees the full error mass.
				for range 100 {
					s.RecordRequest(http.StatusInternalServerError, time.Millisecond)
				}
				c.Advance(4*time.Minute + 50*time.Second)
				for range 100 {
					s.RecordRequest(http.StatusOK, time.Millisecond)
				}
			},
			wantHealthy: false,
			wantFast:    true,
			wantSlow:    true,
			wantBurn:    map[string]float64{"5m0s": 500, "1h0m0s": 500},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newSLOClock()
			s := NewSLOSet(nil, nil, clock.Now, Objective{Name: "availability", Target: target})
			tc.drive(s, clock)
			vs := s.Evaluate()
			if len(vs) != 1 {
				t.Fatalf("got %d verdicts, want 1", len(vs))
			}
			v := vs[0]
			if v.Healthy != tc.wantHealthy || v.FastBurn != tc.wantFast || v.SlowBurn != tc.wantSlow {
				t.Errorf("verdict = healthy=%v fast=%v slow=%v, want healthy=%v fast=%v slow=%v",
					v.Healthy, v.FastBurn, v.SlowBurn, tc.wantHealthy, tc.wantFast, tc.wantSlow)
			}
			for name, want := range tc.wantBurn {
				got := windowByName(t, v, name).BurnRate
				if math.IsNaN(got) || math.Abs(got-want) > 0.01 {
					t.Errorf("window %s burn = %v, want %v", name, got, want)
				}
			}
		})
	}
}

// TestSLOLatencyObjective checks threshold goodness: a 2xx that overruns the
// latency threshold still spends latency budget.
func TestSLOLatencyObjective(t *testing.T) {
	clock := newSLOClock()
	s := NewSLOSet(nil, nil, clock.Now,
		Objective{Name: "latency", Target: 0.9, Threshold: 100 * time.Millisecond})
	for i := range 100 {
		lat := time.Millisecond
		if i%2 == 0 { // 50% slow = error rate 0.5, budget 0.1, burn 5
			lat = time.Second
		}
		s.RecordRequest(http.StatusOK, lat)
	}
	v := s.Evaluate()[0]
	if got := windowByName(t, v, "5m0s"); math.Abs(got.BurnRate-5) > 0.01 {
		t.Errorf("latency burn = %v, want 5", got.BurnRate)
	}
	if v.Threshold != "100ms" {
		t.Errorf("threshold = %q, want 100ms", v.Threshold)
	}
}

// TestSLOWorkerInvariance feeds the identical request mix through 1, 2, and
// 8 goroutines under the same frozen clock and demands byte-identical
// verdicts: the ring keeps only sums, so scheduling cannot show through.
func TestSLOWorkerInvariance(t *testing.T) {
	run := func(workers int) []Verdict {
		clock := newSLOClock()
		s := NewSLOSet(nil, nil, clock.Now,
			Objective{Name: "availability", Target: 0.999},
			Objective{Name: "latency", Target: 0.99, Threshold: 250 * time.Millisecond})
		const n = 960
		var wg sync.WaitGroup
		per := n / workers
		for w := range workers {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range per {
					idx := w*per + i
					code := http.StatusOK
					if idx%96 == 0 {
						code = http.StatusBadGateway
					}
					lat := time.Millisecond
					if idx%48 == 0 {
						lat = time.Second
					}
					s.RecordRequest(code, lat)
				}
			}()
		}
		wg.Wait()
		return s.Evaluate()
	}

	want := fmt.Sprintf("%+v", run(1))
	for _, workers := range []int{2, 8} {
		if got := fmt.Sprintf("%+v", run(workers)); got != want {
			t.Errorf("workers=%d verdicts diverge:\ngot:  %s\nwant: %s", workers, got, want)
		}
	}
}

// TestSLOGaugesAndTransitions checks Evaluate publishes the verdict gauges
// and logs exactly one record per healthy<->burning transition.
func TestSLOGaugesAndTransitions(t *testing.T) {
	clock := newSLOClock()
	reg := NewRegistry()
	buffer := NewLogBuffer(16)
	logger := slog.New(NewLogHandler(LogHandlerOptions{Buffer: buffer}))
	s := NewSLOSet(reg, logger, clock.Now, Objective{Name: "availability", Target: 0.999})

	s.Evaluate() // healthy, no transition
	for range 100 {
		s.RecordRequest(http.StatusInternalServerError, time.Millisecond)
	}
	s.Evaluate() // -> burning
	s.Evaluate() // still burning: no second record
	clock.Advance(7 * time.Hour)
	s.Evaluate() // errors aged out -> healthy again

	var firing, recovered int
	for _, r := range buffer.Records() {
		switch r.Msg {
		case "slo burn-rate alert firing":
			firing++
		case "slo recovered":
			recovered++
		}
	}
	if firing != 1 || recovered != 1 {
		t.Errorf("transition records: firing=%d recovered=%d, want 1/1 (records %+v)",
			firing, recovered, buffer.Records())
	}

	healthy := math.NaN()
	burn5m := math.NaN()
	for _, p := range reg.Snapshot() {
		labels := map[string]string{}
		for _, l := range p.Labels {
			labels[l.Key] = l.Value
		}
		switch {
		case p.Name == "patchdb_slo_healthy" && labels["slo"] == "availability":
			healthy = p.Value
		case p.Name == "patchdb_slo_burn_rate" && labels["slo"] == "availability" && labels["window"] == "5m0s":
			burn5m = p.Value
		}
	}
	if healthy != 1 {
		t.Errorf("patchdb_slo_healthy = %v, want 1 after recovery", healthy)
	}
	if burn5m != 0 {
		t.Errorf("patchdb_slo_burn_rate{window=5m0s} = %v, want 0 after recovery", burn5m)
	}
}

// TestSLOHandler checks the /debug/slo JSON shape and nil-safety.
func TestSLOHandler(t *testing.T) {
	clock := newSLOClock()
	s := NewSLOSet(nil, nil, clock.Now, Objective{Name: "availability", Target: 0.999})
	s.RecordRequest(http.StatusOK, time.Millisecond)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/slo", nil))
	body := rr.Body.String()
	for _, want := range []string{`"objectives"`, `"availability"`, `"burn_rate"`, `"5m0s"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/slo missing %s:\n%s", want, body)
		}
	}

	var nilSet *SLOSet
	nilSet.RecordRequest(http.StatusOK, time.Millisecond)
	if v := nilSet.Evaluate(); v != nil {
		t.Errorf("nil set evaluated to %+v", v)
	}
	rr = httptest.NewRecorder()
	nilSet.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/slo", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "objectives") {
		t.Errorf("nil set handler: code=%d body=%s", rr.Code, rr.Body.String())
	}
}
