// Package telemetry is the process-wide, dependency-free observability
// subsystem: a metrics registry (counters, gauges, fixed-bucket histograms)
// that is safe for concurrent use and deterministic to snapshot, lightweight
// span tracing with a bounded in-memory buffer and a JSONL exporter, a
// Prometheus-text-format /metrics handler with /debug/pprof wiring behind
// one Serve call, and the end-of-run RunReport artifact that merges stage
// timings with subsystem counters.
//
// Everything is nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, *Tracer, or *Span are no-ops, so instrumentation points never
// need to guard against an absent sink.
package telemetry

import (
	"fmt"
	"log/slog"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies a metric.
type Kind string

// The metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing float64 value (Prometheus counters
// are floats; integral adds stay exact below 2^53). The zero value is ready
// to use; a nil *Counter ignores all operations.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by v. Negative deltas are ignored — counters
// only go up.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 value that can go up and down. The zero value is ready
// to use; a nil *Gauge ignores all operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v (negative deltas allowed).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. Bucket semantics
// follow Prometheus: counts[i] counts observations v <= bounds[i] (after
// subtracting lower buckets); the final implicit +Inf bucket catches the
// rest. The zero value is NOT usable — histograms come from
// Registry.Histogram, which fixes the bounds. A nil *Histogram ignores all
// observations.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  uint64
	// exemplars keeps the most recent correlated observation per bucket
	// (zero-value entries mean "no exemplar yet"); lazily allocated on the
	// first ObserveExemplar so uncorrelated histograms pay nothing.
	exemplars []Exemplar
}

// Exemplar links one bucket of a histogram to the trace that produced its
// most recent observation, so a latency spike on a dashboard resolves to a
// concrete request.
type Exemplar struct {
	Trace string  `json:"trace"`
	Value float64 `json:"value"`
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.ObserveExemplar(v, "")
}

// ObserveExemplar records one value and, when trace is non-empty, remembers
// (trace, v) as the bucket's exemplar — the most recent correlated
// observation wins.
func (h *Histogram) ObserveExemplar(v float64, trace string) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the le-bucket
	h.counts[i]++
	h.sum += v
	h.count++
	if trace == "" {
		return
	}
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.counts))
	}
	h.exemplars[i] = Exemplar{Trace: trace, Value: v}
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
	if h.exemplars != nil {
		s.Exemplars = append([]Exemplar(nil), h.exemplars...)
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bucket bounds, strictly increasing.
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the +Inf overflow
	// bucket. Counts are per-bucket, not cumulative.
	Counts []uint64 `json:"counts"`
	Sum    float64  `json:"sum"`
	Count  uint64   `json:"count"`
	// Exemplars, when present, has len(Counts) entries aligned with Counts;
	// an entry with an empty Trace means that bucket has no exemplar.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// DefDurationBuckets is the default latency histogram layout (seconds):
// 1ms to ~30s, roughly exponential.
var DefDurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// MetricPoint is one metric's state in a Registry snapshot.
type MetricPoint struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Kind   Kind    `json:"kind"`
	// Help is the family's registered help text ("" if none was set).
	Help string `json:"help,omitempty"`
	// Value always serializes (a zero counter is real state, not absence).
	Value     float64            `json:"value"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// entry is one registered metric instance (a family name plus one label
// set).
type entry struct {
	name    string
	labels  []Label
	kind    Kind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds metrics keyed by (name, label set). Metric accessors are
// get-or-create; all methods are safe for concurrent use, and Snapshot is
// deterministic (sorted by name, then label set). A nil *Registry returns
// nil metrics, whose operations are no-ops — optional instrumentation costs
// one nil check.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*entry
	help    map[string]string // family name -> # HELP text
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*entry)}
}

// metricID renders the canonical identity of a metric instance: the family
// name plus its label set sorted by key.
func metricID(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String(), ls
}

// lookup returns the entry for (name, labels), creating it with mk if
// absent. Registering the same identity under two different kinds is a
// programming error and panics (like expvar re-registration).
func (r *Registry) lookup(name string, labels []Label, kind Kind, mk func(e *entry)) *entry {
	id, ls := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.metrics == nil {
		r.metrics = make(map[string]*entry)
	}
	e, ok := r.metrics[id]
	if !ok {
		e = &entry{name: name, labels: ls, kind: kind}
		mk(e)
		r.metrics[id] = e
		return e
	}
	if e.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s already registered as %s, requested %s", id, e.kind, kind))
	}
	return e
}

// SetHelp registers the # HELP text for a metric family; the exposition
// formats emit it ahead of the family's # TYPE line.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.help == nil {
		r.help = make(map[string]string)
	}
	r.help[name] = help
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, KindCounter, func(e *entry) { e.counter = &Counter{} }).counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, KindGauge, func(e *entry) { e.gauge = &Gauge{} }).gauge
}

// Histogram returns the histogram for (name, labels), creating it on first
// use with the given inclusive upper bucket bounds (which must be strictly
// increasing; nil means DefDurationBuckets). Bounds are fixed at creation —
// later calls for the same instance ignore the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, KindHistogram, func(e *entry) {
		if bounds == nil {
			bounds = DefDurationBuckets
		}
		bs := append([]float64(nil), bounds...)
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %s bounds not strictly increasing at %d", name, i))
			}
		}
		e.hist = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
	}).hist
}

// Snapshot copies every metric's current state, sorted by metric identity
// (family name, then label set) so the output is deterministic.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ids := make([]string, 0, len(r.metrics))
	for id := range r.metrics {
		ids = append(ids, id)
	}
	entries := make([]*entry, 0, len(ids))
	sort.Strings(ids)
	for _, id := range ids {
		entries = append(entries, r.metrics[id])
	}
	help := make(map[string]string, len(r.help))
	for name, h := range r.help {
		help[name] = h
	}
	r.mu.Unlock()

	out := make([]MetricPoint, 0, len(entries))
	for _, e := range entries {
		p := MetricPoint{Name: e.name, Labels: e.labels, Kind: e.kind, Help: help[e.name]}
		switch e.kind {
		case KindCounter:
			p.Value = e.counter.Value()
		case KindGauge:
			p.Value = e.gauge.Value()
		case KindHistogram:
			s := e.hist.Snapshot()
			p.Histogram = &s
		}
		out = append(out, p)
	}
	return out
}

// Hub bundles the telemetry sinks a run instruments into: the metrics
// registry, the span tracer, and the structured log ring behind the Logger
// method.
type Hub struct {
	Registry *Registry
	Tracer   *Tracer
	// Logs keeps the most recent log records for /debug/logs (nil on a hub
	// built without logging; the Logger method then discards).
	Logs *LogBuffer

	logger *slog.Logger
}

// NewHub creates a hub with a fresh registry, a default-capacity tracer, and
// a JSON logger that writes to stderr and mirrors into a default-capacity
// log ring.
func NewHub() *Hub {
	logs := NewLogBuffer(DefaultLogCapacity)
	return &Hub{
		Registry: NewRegistry(),
		Tracer:   NewTracer(DefaultTraceCapacity),
		Logs:     logs,
		logger:   slog.New(NewLogHandler(LogHandlerOptions{Writer: os.Stderr, Buffer: logs})),
	}
}

// defaultHub is the process-wide hub used when a context carries none.
var defaultHub = NewHub()

// Default returns the process-wide hub.
func Default() *Hub { return defaultHub }
