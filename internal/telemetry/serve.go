package telemetry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// OpenMetricsContentType is the content type of the OpenMetrics text
// exposition (the format that carries exemplars).
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteProm renders the registry's current state in the Prometheus text
// exposition format (version 0.0.4): a # HELP line (when registered) and a
// # TYPE line per metric family, then one sample line per instance,
// deterministically ordered. The 0.0.4 format has no exemplar syntax; use
// WriteOpenMetrics for exemplars.
func WriteProm(w io.Writer, r *Registry) error {
	return writeExposition(w, r, false)
}

// WriteOpenMetrics renders the registry in the OpenMetrics text exposition:
// HELP/TYPE metadata, sample lines, histogram bucket exemplars in the
// `# {trace_id="..."} value` syntax, and the terminating # EOF marker.
func WriteOpenMetrics(w io.Writer, r *Registry) error {
	if err := writeExposition(w, r, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// writeExposition is the shared family walk of both text formats; openMetrics
// selects exemplar emission.
func writeExposition(w io.Writer, r *Registry, openMetrics bool) error {
	points := r.Snapshot()
	lastFamily := ""
	for _, p := range points {
		if p.Name != lastFamily {
			if p.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, escapeHelp(p.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
				return err
			}
			lastFamily = p.Name
		}
		var err error
		switch p.Kind {
		case KindHistogram:
			err = writePromHistogram(w, p, openMetrics)
		default:
			_, err = fmt.Fprintf(w, "%s%s %s\n", p.Name, promLabels(p.Labels, "", 0), promFloat(p.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits cumulative _bucket series plus _sum and _count.
// In OpenMetrics mode each bucket line carries its exemplar (most recent
// correlated observation) when one exists.
func writePromHistogram(w io.Writer, p MetricPoint, openMetrics bool) error {
	h := p.Histogram
	exemplar := func(i int) string {
		if !openMetrics || i >= len(h.Exemplars) || h.Exemplars[i].Trace == "" {
			return ""
		}
		e := h.Exemplars[i]
		return fmt.Sprintf(" # {trace_id=\"%s\"} %s", escapeLabelValue(e.Trace), promFloat(e.Value))
	}
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", p.Name, promLabels(p.Labels, "le", b), cum, exemplar(i)); err != nil {
			return err
		}
	}
	last := len(h.Bounds)
	cum += h.Counts[last]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", p.Name, promLabels(p.Labels, "le", math.Inf(1)), cum, exemplar(last)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, promLabels(p.Labels, "", 0), promFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, promLabels(p.Labels, "", 0), h.Count)
	return err
}

// labelEscaper implements the exposition-format escaping for label values:
// backslash, double quote, and newline. (Go's %q escapes more — e.g.
// non-ASCII — which scrapers would read back literally.)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper implements # HELP text escaping: backslash and newline only
// (quotes are legal in help text).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }
func escapeHelp(v string) string       { return helpEscaper.Replace(v) }

// promLabels renders a label set (plus an optional trailing le bound) as
// {k="v",...}, or "" when empty.
func promLabels(labels []Label, le string, bound float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", l.Key, escapeLabelValue(l.Value))
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", le, promFloat(bound))
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat renders a float the way Prometheus expects (+Inf, not +inf).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricsHandler serves the hub's registry: Prometheus text format by
// default, the OpenMetrics exposition (which carries histogram exemplars)
// when the request's Accept header asks for application/openmetrics-text.
func (h *Hub) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var reg *Registry
		if h != nil {
			reg = h.Registry
		}
		var err error
		if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			err = WriteOpenMetrics(w, reg)
		} else {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			err = WriteProm(w, reg)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Server is a running telemetry endpoint (see Serve).
type Server struct {
	// URL is the server's base address, e.g. http://127.0.0.1:9090.
	URL string

	srv      *http.Server
	done     chan struct{}
	serveErr error
}

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the hub's
// /metrics plus the /debug/pprof profiling endpoints until Close. A nil hub
// serves the process-wide Default hub.
func Serve(addr string, hub *Hub) (*Server, error) {
	if hub == nil {
		hub = Default()
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", hub.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		URL:  "http://" + ln.Addr().String(),
		srv:  &http.Server{Handler: mux},
		done: make(chan struct{}),
	}
	//lint:ignore goroleak exit is bounded by Close: Shutdown unblocks Serve with ErrServerClosed and Close waits on <-s.done before returning
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Surfaced by Close: the serve goroutine has no other channel
			// back to the caller.
			s.serveErr = fmt.Errorf("telemetry: serve: %w", err)
		}
	}()
	return s, nil
}

// Close shuts the server down, waits for the serve goroutine, and returns
// the first serve error if one occurred.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownErr := s.srv.Shutdown(ctx)
	<-s.done
	if s.serveErr != nil {
		return s.serveErr
	}
	return shutdownErr
}
