package telemetry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// WriteProm renders the registry's current state in the Prometheus text
// exposition format (version 0.0.4): a # TYPE line per metric family, then
// one sample line per instance, deterministically ordered.
func WriteProm(w io.Writer, r *Registry) error {
	points := r.Snapshot()
	lastFamily := ""
	for _, p := range points {
		if p.Name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
				return err
			}
			lastFamily = p.Name
		}
		var err error
		switch p.Kind {
		case KindHistogram:
			err = writePromHistogram(w, p)
		default:
			_, err = fmt.Fprintf(w, "%s%s %s\n", p.Name, promLabels(p.Labels, "", 0), promFloat(p.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits cumulative _bucket series plus _sum and _count.
func writePromHistogram(w io.Writer, p MetricPoint) error {
	h := p.Histogram
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, "le", b), cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, "le", math.Inf(1)), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, promLabels(p.Labels, "", 0), promFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, promLabels(p.Labels, "", 0), h.Count)
	return err
}

// promLabels renders a label set (plus an optional trailing le bound) as
// {k="v",...}, or "" when empty.
func promLabels(labels []Label, le string, bound float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", le, promFloat(bound))
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat renders a float the way Prometheus expects (+Inf, not +inf).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricsHandler serves the hub's registry in Prometheus text format.
func (h *Hub) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var reg *Registry
		if h != nil {
			reg = h.Registry
		}
		if err := WriteProm(w, reg); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Server is a running telemetry endpoint (see Serve).
type Server struct {
	// URL is the server's base address, e.g. http://127.0.0.1:9090.
	URL string

	srv      *http.Server
	done     chan struct{}
	serveErr error
}

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the hub's
// /metrics plus the /debug/pprof profiling endpoints until Close. A nil hub
// serves the process-wide Default hub.
func Serve(addr string, hub *Hub) (*Server, error) {
	if hub == nil {
		hub = Default()
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", hub.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		URL:  "http://" + ln.Addr().String(),
		srv:  &http.Server{Handler: mux},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Surfaced by Close: the serve goroutine has no other channel
			// back to the caller.
			s.serveErr = fmt.Errorf("telemetry: serve: %w", err)
		}
	}()
	return s, nil
}

// Close shuts the server down, waits for the serve goroutine, and returns
// the first serve error if one occurred.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownErr := s.srv.Shutdown(ctx)
	<-s.done
	if s.serveErr != nil {
		return s.serveErr
	}
	return shutdownErr
}
