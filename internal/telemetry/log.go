package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLogCapacity bounds the in-memory log ring of a NewHub logger.
const DefaultLogCapacity = 512

// LogRecord is one captured log record as stored in the ring buffer and
// served on /debug/logs. Attrs flattens the record's (possibly grouped)
// attributes into dotted keys, so the shape is stable regardless of how the
// logger was derived.
type LogRecord struct {
	Time  time.Time `json:"time"`
	Level string    `json:"level"`
	Msg   string    `json:"msg"`
	// Trace is the correlation ID in force when the record was emitted
	// (WithTraceID or the current span), "" for uncorrelated records.
	Trace string         `json:"trace,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// LogBuffer is a bounded ring of recent log records: once full, the oldest
// records are dropped (and counted). A nil *LogBuffer ignores everything.
type LogBuffer struct {
	mu      sync.Mutex
	cap     int
	recs    []LogRecord
	head    int // index of the oldest record when len(recs) == cap
	dropped uint64
}

// NewLogBuffer creates a buffer keeping at most capacity records
// (capacity <= 0 means DefaultLogCapacity).
func NewLogBuffer(capacity int) *LogBuffer {
	if capacity <= 0 {
		capacity = DefaultLogCapacity
	}
	return &LogBuffer{cap: capacity}
}

// add appends one record, evicting the oldest when full.
func (b *LogBuffer) add(rec LogRecord) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.recs) < b.cap {
		b.recs = append(b.recs, rec)
		return
	}
	b.recs[b.head] = rec
	b.head = (b.head + 1) % b.cap
	b.dropped++
}

// Records copies the buffered records, oldest first.
func (b *LogBuffer) Records() []LogRecord {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]LogRecord, 0, len(b.recs))
	out = append(out, b.recs[b.head:]...)
	out = append(out, b.recs[:b.head]...)
	return out
}

// Dropped counts records evicted from a full buffer.
func (b *LogBuffer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// logsResponse is the /debug/logs payload.
type logsResponse struct {
	Dropped uint64      `json:"dropped"`
	Records []LogRecord `json:"records"`
}

// Handler serves the buffer's current contents as JSON ({"dropped": N,
// "records": [...]}, oldest first) — the /debug/logs endpoint.
func (b *LogBuffer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		recs := b.Records()
		if recs == nil {
			recs = []LogRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		// The status line is already out; an encode failure here can only be
		// a dead client, which the server loop surfaces on its own.
		_ = enc.Encode(logsResponse{Dropped: b.Dropped(), Records: recs})
	})
}

// LogHandlerOptions configures NewLogHandler.
type LogHandlerOptions struct {
	// Writer receives one JSON object per record (nil = ring buffer only).
	Writer io.Writer
	// Buffer keeps the last records for /debug/logs (nil = no ring).
	Buffer *LogBuffer
	// Level is the minimum level handled (nil = slog.LevelInfo).
	Level slog.Leveler
	// Clock stamps records (nil = time.Now). Inject a fixed clock for
	// byte-deterministic log output in tests.
	Clock func() time.Time
}

// logHandler is the hub's slog.Handler: it renders records as single-line
// JSON, auto-attaches the context's correlation ID, and mirrors every record
// into the ring buffer. The zero-allocation fast paths of stock handlers are
// deliberately traded for a deterministic, test-friendly shape (map attrs
// serialize with sorted keys).
type logHandler struct {
	opts   LogHandlerOptions
	mu     *sync.Mutex // serializes Writer writes across derived handlers
	attrs  []slog.Attr // pre-resolved WithAttrs state
	groups []string    // open WithGroup scopes, outermost first
}

// NewLogHandler builds the JSON slog.Handler the Hub logger uses. With a
// fixed Clock and a bytes.Buffer Writer the output is byte-deterministic.
func NewLogHandler(opts LogHandlerOptions) slog.Handler {
	return &logHandler{opts: opts, mu: &sync.Mutex{}}
}

func (h *logHandler) Enabled(_ context.Context, level slog.Level) bool {
	min := slog.LevelInfo
	if h.opts.Level != nil {
		min = h.opts.Level.Level()
	}
	return level >= min
}

func (h *logHandler) Handle(ctx context.Context, r slog.Record) error {
	now := r.Time
	if h.opts.Clock != nil {
		now = h.opts.Clock()
	}
	rec := LogRecord{
		Time:  now.UTC(),
		Level: r.Level.String(),
		Msg:   r.Message,
		Trace: TraceIDFromContext(ctx),
	}
	attrs := make(map[string]any)
	for _, a := range h.attrs {
		attrs[a.Key] = attrValue(a.Value)
	}
	prefix := ""
	for _, g := range h.groups {
		prefix += g + "."
	}
	r.Attrs(func(a slog.Attr) bool {
		attrs[prefix+a.Key] = attrValue(a.Value)
		return true
	})
	if len(attrs) > 0 {
		rec.Attrs = attrs
	}
	h.opts.Buffer.add(rec)
	if h.opts.Writer == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("telemetry: encode log record: %w", err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err = h.opts.Writer.Write(append(line, '\n'))
	return err
}

func (h *logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	nh := *h
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), prefixAttrs(h.groups, attrs)...)
	return &nh
}

func (h *logHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.groups = append(append([]string(nil), h.groups...), name)
	return &nh
}

// prefixAttrs applies the open group scopes to attribute keys as dotted
// prefixes (group.key), flattening nested slog groups the same way.
func prefixAttrs(groups []string, attrs []slog.Attr) []slog.Attr {
	prefix := ""
	for _, g := range groups {
		prefix += g + "."
	}
	out := make([]slog.Attr, 0, len(attrs))
	for _, a := range attrs {
		out = append(out, slog.Attr{Key: prefix + a.Key, Value: a.Value})
	}
	return out
}

// attrValue converts a resolved slog.Value into a JSON-friendly Go value.
func attrValue(v slog.Value) any {
	v = v.Resolve()
	switch v.Kind() {
	case slog.KindGroup:
		m := make(map[string]any, len(v.Group()))
		for _, a := range v.Group() {
			m[a.Key] = attrValue(a.Value)
		}
		return m
	case slog.KindDuration:
		return v.Duration().String()
	case slog.KindTime:
		return v.Time()
	default:
		return v.Any()
	}
}

// requestIDNonce distinguishes processes: request IDs stay unique-enough
// across restarts without coordinating, so a trace ID in a log file names
// one request, not one per process lifetime.
var requestIDNonce = func() uint32 {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0 // degraded: IDs are still unique within the process
	}
	return binary.BigEndian.Uint32(b[:])
}()

var requestIDCounter atomic.Uint64

// NewRequestID mints a process-unique correlation ID (an 8-hex-digit process
// nonce plus a monotonic counter). The serving layer assigns one to every
// request that does not carry its own X-Request-ID.
func NewRequestID() string {
	return fmt.Sprintf("%08x-%06d", requestIDNonce, requestIDCounter.Add(1))
}

// Logger returns the hub's structured logger. A nil hub (or a hub built
// without one, e.g. a zero Hub literal) returns a discard logger, so
// instrumentation points never guard against an absent sink.
func (h *Hub) Logger() *slog.Logger {
	if h == nil || h.logger == nil {
		return slog.New(slog.DiscardHandler)
	}
	return h.logger
}

// SetLogger replaces the hub's logger (e.g. with one built from a custom
// LogHandlerOptions). Call it during setup, before the hub is shared.
func (h *Hub) SetLogger(l *slog.Logger) {
	if h == nil {
		return
	}
	h.logger = l
}

// LogsHandler serves the hub's log ring as JSON — the /debug/logs endpoint.
// A nil hub (or one without a ring) serves an empty record list.
func (h *Hub) LogsHandler() http.Handler {
	if h == nil {
		return (*LogBuffer)(nil).Handler()
	}
	return h.Logs.Handler()
}
