package telemetry

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunReportWriteFile(t *testing.T) {
	hub := NewHub()
	hub.Registry.Counter("items_total").Add(7)
	_, sp := hub.Tracer.Start(context.Background(), "stage")
	sp.End()

	rr := NewRunReport("test-tool", hub)
	rr.Stages = append(rr.Stages, StageReport{Stage: "extract", DurationNS: 1e6, Items: 7})
	rr.Crawl = &CrawlReport{Entries: 10, Downloaded: 9, Retries: 2}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := rr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Tool != "test-tool" {
		t.Errorf("Tool = %q, want test-tool", back.Tool)
	}
	if len(back.Stages) != 1 || back.Stages[0].Stage != "extract" || back.Stages[0].Items != 7 {
		t.Errorf("Stages round-trip = %+v", back.Stages)
	}
	if back.Crawl == nil || back.Crawl.Retries != 2 {
		t.Errorf("Crawl round-trip = %+v", back.Crawl)
	}
	if len(back.Metrics) != 1 || back.Metrics[0].Name != "items_total" || back.Metrics[0].Value != 7 {
		t.Errorf("Metrics round-trip = %+v", back.Metrics)
	}
	if len(back.Spans) != 1 || back.Spans[0].Name != "stage" {
		t.Errorf("Spans round-trip = %+v", back.Spans)
	}
}

func TestNewRunReportNilHub(t *testing.T) {
	rr := NewRunReport("shell", nil)
	if rr.Tool != "shell" || rr.Metrics != nil || rr.Spans != nil {
		t.Errorf("nil-hub report = %+v, want empty shell", rr)
	}
}
