package telemetry

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// decodeChromeTrace validates data as Chrome trace-event JSON and returns
// the events.
func decodeChromeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.TraceEvents == nil {
		t.Fatal("trace output has no traceEvents array")
	}
	return doc.TraceEvents
}

// TestChromeTraceJSON builds a small span tree and checks the exported
// events: a process-name metadata record, one complete ("X") event per span
// with µs timestamps, and parent/trace correlation in args.
func TestChromeTraceJSON(t *testing.T) {
	tr := NewTracer(16)
	ctx := WithTraceID(context.Background(), "req-7")
	ctx, root := tr.Start(ctx, "build")
	cctx, child := tr.Start(ctx, "crawl")
	child.SetAttr("items", 42)
	_ = cctx
	child.End()
	root.End()

	data, err := tr.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	events := decodeChromeTrace(t, data)
	if len(events) != 3 { // metadata + 2 spans
		t.Fatalf("got %d events, want 3: %v", len(events), events)
	}
	if events[0]["ph"] != "M" || events[0]["name"] != "process_name" {
		t.Errorf("first event is not process metadata: %v", events[0])
	}
	byName := map[string]map[string]any{}
	for _, e := range events[1:] {
		if e["ph"] != "X" {
			t.Errorf("span event phase = %v, want X", e["ph"])
		}
		if _, ok := e["ts"].(float64); !ok {
			t.Errorf("event %v has no numeric ts", e)
		}
		if dur, ok := e["dur"].(float64); !ok || dur < 1 {
			t.Errorf("event %v has no positive dur", e)
		}
		byName[e["name"].(string)] = e
	}
	crawl, ok := byName["crawl"]
	if !ok {
		t.Fatalf("no crawl event in %v", events)
	}
	args := crawl["args"].(map[string]any)
	if args["trace"] != "req-7" {
		t.Errorf("crawl args trace = %v, want req-7", args["trace"])
	}
	if args["parent"] == nil || args["items"] != float64(42) {
		t.Errorf("crawl args = %v, want parent and items=42", args)
	}
	if buildArgs := byName["build"]["args"].(map[string]any); buildArgs["parent"] != nil {
		t.Errorf("root span has parent %v", buildArgs["parent"])
	}
}

// TestChromeTraceLanes checks sequential spans share a lane while
// overlapping spans stack onto distinct ones.
func TestChromeTraceLanes(t *testing.T) {
	tr := NewTracer(16)
	ctx := context.Background()
	// a and b overlap; c starts after both end.
	_, a := tr.Start(ctx, "a")
	_, b := tr.Start(ctx, "b")
	time.Sleep(2 * time.Millisecond)
	a.End()
	b.End()
	_, c := tr.Start(ctx, "c")
	time.Sleep(time.Millisecond)
	c.End()

	data, err := tr.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	tids := map[string]float64{}
	for _, e := range decodeChromeTrace(t, data) {
		if e["ph"] == "X" {
			tids[e["name"].(string)] = e["tid"].(float64)
		}
	}
	if tids["a"] == tids["b"] {
		t.Errorf("overlapping spans share lane %v", tids["a"])
	}
	if tids["c"] != tids["a"] {
		t.Errorf("sequential span c got lane %v, want reuse of %v", tids["c"], tids["a"])
	}
}

// TestWriteChromeTraceFile checks the atomic file export round-trips.
func TestWriteChromeTraceFile(t *testing.T) {
	tr := NewTracer(16)
	_, s := tr.Start(context.Background(), "work")
	s.End()
	path := filepath.Join(t.TempDir(), "sub", "trace.json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events := decodeChromeTrace(t, data)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}

	// An empty tracer still produces a valid document.
	empty := NewTracer(4)
	data, err = empty.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeChromeTrace(t, data); len(got) != 1 {
		t.Errorf("empty tracer exported %d events, want metadata only", len(got))
	}
}
