package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePromGolden fixes the exact Prometheus text exposition for a known
// registry state: one TYPE line per family, deterministic ordering,
// cumulative histogram buckets with a trailing +Inf, and _sum/_count.
func TestWritePromGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("patchdb_stage_items_total", L("stage", "extract")).Add(120)
	reg.Counter("patchdb_stage_items_total", L("stage", "crawl")).Add(40)
	reg.Gauge("build_workers").Set(8)
	h := reg.Histogram("fetch_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := WriteProm(&sb, reg); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE build_workers gauge
build_workers 8
# TYPE fetch_seconds histogram
fetch_seconds_bucket{le="0.1"} 2
fetch_seconds_bucket{le="1"} 3
fetch_seconds_bucket{le="+Inf"} 4
fetch_seconds_sum 3.6
fetch_seconds_count 4
# TYPE patchdb_stage_items_total counter
patchdb_stage_items_total{stage="crawl"} 40
patchdb_stage_items_total{stage="extract"} 120
`
	if got := sb.String(); got != want {
		t.Errorf("prometheus text mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestMetricsHandler(t *testing.T) {
	hub := NewHub()
	hub.Registry.Counter("reqs_total").Add(3)

	srv := httptest.NewServer(hub.MetricsHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	if want := "reqs_total 3\n"; !strings.Contains(string(body), want) {
		t.Errorf("body missing %q:\n%s", want, body)
	}
}

// TestServe exercises the full Serve/Close lifecycle on an ephemeral port:
// /metrics serves the hub and /debug/pprof/ responds.
func TestServe(t *testing.T) {
	hub := NewHub()
	hub.Registry.Counter("live_total").Inc()

	srv, err := Serve("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, path := range []string{"/metrics", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "live_total 1") {
			t.Errorf("GET %s missing counter:\n%s", path, body)
		}
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
