package telemetry

import (
	"encoding/json"
	"fmt"

	"patchdb/internal/atomicio"
)

// DefaultRunReportPath is the conventional RunReport output filename (the
// path the CLIs document and .gitignore covers).
const DefaultRunReportPath = "patchdb-run-report.json"

// StageReport is one pipeline stage's accounting inside a RunReport.
type StageReport struct {
	Stage      string `json:"stage"`
	DurationNS int64  `json:"duration_ns"`
	Items      int    `json:"items"`
}

// CrawlReport summarizes the crawl layer inside a RunReport: feed
// accounting, retry and circuit-breaker activity, quarantine size, and the
// degradation verdict.
type CrawlReport struct {
	Entries         int  `json:"entries"`
	WithPatchRefs   int  `json:"with_patch_refs"`
	Downloaded      int  `json:"downloaded"`
	EmptyAfterClean int  `json:"empty_after_clean"`
	Retries         int  `json:"retries"`
	Quarantined     int  `json:"quarantined"`
	BreakerTrips    int  `json:"breaker_trips"`
	Degraded        bool `json:"degraded"`
}

// SearchReport aggregates the nearest-link engine counters inside a
// RunReport.
type SearchReport struct {
	Searches       int     `json:"searches"`
	DistanceEvals  int64   `json:"distance_evals"`
	NormPruned     int64   `json:"norm_pruned"`
	EarlyExited    int64   `json:"early_exited"`
	PrunedFraction float64 `json:"pruned_fraction"`
	HeapPops       int     `json:"heap_pops"`
	SecondBestHits int     `json:"second_best_hits"`
	Rescans        int     `json:"rescans"`
	DurationNS     int64   `json:"duration_ns"`
}

// RunReport is the structured end-of-run artifact: per-stage timings,
// crawl and nearest-link accounting, the full metrics-registry snapshot,
// and the buffered trace spans, merged into one JSON document.
type RunReport struct {
	// Tool names the producer (e.g. "patchdb-build").
	Tool   string        `json:"tool"`
	Stages []StageReport `json:"stages"`
	Crawl  *CrawlReport  `json:"crawl,omitempty"`
	Search *SearchReport `json:"search,omitempty"`
	// Metrics is the deterministic registry snapshot at the end of the run.
	Metrics []MetricPoint `json:"metrics"`
	// Spans is the trace buffer at the end of the run, parents before
	// children.
	Spans []SpanRecord `json:"spans,omitempty"`
}

// NewRunReport seeds a report with hub state (registry snapshot + span
// buffer). A nil hub yields an empty report shell.
func NewRunReport(tool string, hub *Hub) *RunReport {
	rr := &RunReport{Tool: tool}
	if hub != nil {
		rr.Metrics = hub.Registry.Snapshot()
		rr.Spans = hub.Tracer.Snapshot()
	}
	return rr
}

// JSON renders the report as indented JSON.
func (r *RunReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteFile writes the report as indented JSON via the shared
// temp+fsync+rename helper (internal/atomicio), so readers never observe a
// half-written report.
func (r *RunReport) WriteFile(path string) error {
	data, err := r.JSON()
	if err != nil {
		return fmt.Errorf("telemetry: encode run report: %w", err)
	}
	if err := atomicio.WriteFile(path, append(data, '\n')); err != nil {
		return fmt.Errorf("telemetry: write run report: %w", err)
	}
	return nil
}
