package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// sloBucket is the ring resolution of an SLO's good/total counts. Windows are
// multiples of it, so every burn-rate window edge lands exactly on a bucket
// boundary and verdicts are reproducible under an injected clock.
const sloBucket = 10 * time.Second

// sloRetention bounds the ring: the longest window any burn pair evaluates.
const sloRetention = 6 * time.Hour

// BurnWindow is one (short, long) multi-window burn-rate pair with its page
// threshold, per the standard multiwindow/multi-burn-rate alerting policy:
// the short window confirms the long window's burn is still happening.
type BurnWindow struct {
	Short     time.Duration
	Long      time.Duration
	Threshold float64 // burn rate at which the pair fires
}

// DefaultBurnWindows are the canonical fast (5m/1h @ 14.4x) and slow
// (30m/6h @ 6x) pairs.
var DefaultBurnWindows = []BurnWindow{
	{Short: 5 * time.Minute, Long: time.Hour, Threshold: 14.4},
	{Short: 30 * time.Minute, Long: 6 * time.Hour, Threshold: 6},
}

// Objective declares one service-level objective. Threshold == 0 means an
// availability objective (a request is good unless it 5xxs); Threshold > 0
// means a latency objective (a request is good iff it finishes within
// Threshold).
type Objective struct {
	Name      string        `json:"name"`
	Target    float64       `json:"target"` // e.g. 0.999
	Threshold time.Duration `json:"threshold,omitempty"`
}

// WindowBurn is the evaluated state of one objective over one time window.
type WindowBurn struct {
	Window    string  `json:"window"` // e.g. "5m", "1h"
	Good      uint64  `json:"good"`
	Total     uint64  `json:"total"`
	ErrorRate float64 `json:"error_rate"`
	// BurnRate is ErrorRate divided by the objective's error budget
	// (1 - Target): 1.0 means budget is being spent exactly at the rate that
	// exhausts it over the SLO period; 14.4 means 14.4x too fast.
	BurnRate float64 `json:"burn_rate"`
}

// Verdict is one objective's full evaluation: per-window burns plus the
// overall healthy bit (no burn pair has both windows over threshold).
type Verdict struct {
	Name      string       `json:"name"`
	Target    float64      `json:"target"`
	Threshold string       `json:"threshold,omitempty"`
	Healthy   bool         `json:"healthy"`
	FastBurn  bool         `json:"fast_burn"`
	SlowBurn  bool         `json:"slow_burn"`
	Windows   []WindowBurn `json:"windows"`
}

// slo is one objective's counting state: a ring of per-bucket (good, total)
// counts. Only sums are kept per bucket, so the evaluated state is invariant
// to how many goroutines recorded into it — worker-count determinism falls
// out of the arithmetic, not of scheduling.
type slo struct {
	obj   Objective
	good  []uint64
	total []uint64
	// bucketIdx is the absolute bucket index (unix time / sloBucket) the ring
	// head currently represents, or -1 before the first record/evaluate.
	bucketIdx int64
}

// SLOSet evaluates a set of objectives over a shared clock. A nil *SLOSet
// ignores RecordRequest and evaluates to no verdicts.
type SLOSet struct {
	mu     sync.Mutex
	slos   []*slo
	pairs  []BurnWindow
	reg    *Registry
	logger *slog.Logger
	clock  func() time.Time
	// lastHealthy tracks each objective's previous verdict so transitions
	// (healthy<->burning) emit exactly one log record each.
	lastHealthy map[string]bool
}

// NewSLOSet builds an evaluator for objs using DefaultBurnWindows. Verdict
// gauges publish into reg (nil = none), transitions log to logger (nil =
// none), and clock drives all windowing (nil = time.Now) — inject a fixed
// clock for deterministic verdicts.
func NewSLOSet(reg *Registry, logger *slog.Logger, clock func() time.Time, objs ...Objective) *SLOSet {
	if clock == nil {
		clock = time.Now
	}
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	n := int(sloRetention / sloBucket)
	s := &SLOSet{
		pairs:       DefaultBurnWindows,
		reg:         reg,
		logger:      logger,
		clock:       clock,
		lastHealthy: make(map[string]bool),
	}
	for _, o := range objs {
		s.slos = append(s.slos, &slo{obj: o, good: make([]uint64, n), total: make([]uint64, n), bucketIdx: -1})
		s.lastHealthy[o.Name] = true
	}
	return s
}

// Objectives returns the declared objectives in registration order.
func (s *SLOSet) Objectives() []Objective {
	if s == nil {
		return nil
	}
	out := make([]Objective, len(s.slos))
	for i, o := range s.slos {
		out[i] = o.obj
	}
	return out
}

// advance rolls o's ring forward to the absolute bucket index now occupies,
// zeroing every bucket skipped over. Caller holds s.mu.
func (o *slo) advance(idx int64) {
	n := int64(len(o.good))
	if o.bucketIdx < 0 {
		o.bucketIdx = idx
		return
	}
	if idx <= o.bucketIdx {
		return // clock stalled or rewound: keep counting into the head bucket
	}
	steps := idx - o.bucketIdx
	if steps >= n {
		for i := range o.good {
			o.good[i], o.total[i] = 0, 0
		}
	} else {
		for i := o.bucketIdx + 1; i <= idx; i++ {
			o.good[i%n], o.total[i%n] = 0, 0
		}
	}
	o.bucketIdx = idx
}

// RecordRequest feeds one finished request into every objective: status
// determines availability goodness (good unless >= 500), latency determines
// threshold goodness.
func (s *SLOSet) RecordRequest(status int, latency time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.clock().UnixNano() / int64(sloBucket)
	for _, o := range s.slos {
		o.advance(idx)
		i := o.bucketIdx % int64(len(o.good))
		o.total[i]++
		good := status < 500
		if o.obj.Threshold > 0 {
			good = latency <= o.obj.Threshold
		}
		if good {
			o.good[i]++
		}
	}
}

// window sums the most recent d worth of buckets, including the current one.
// Caller holds s.mu.
func (o *slo) window(d time.Duration) (good, total uint64) {
	if o.bucketIdx < 0 {
		return 0, 0
	}
	n := int64(len(o.good))
	buckets := int64(d / sloBucket)
	if buckets > n {
		buckets = n
	}
	for i := int64(0); i < buckets; i++ {
		j := (o.bucketIdx - i) % n
		if j < 0 {
			j += n
		}
		good += o.good[j]
		total += o.total[j]
	}
	return good, total
}

// burn evaluates one window: zero traffic burns nothing (a quiet service is
// inside its objective, and 0/0 must not become NaN).
func (o *slo) burn(d time.Duration, label string) WindowBurn {
	good, total := o.window(d)
	wb := WindowBurn{Window: label, Good: good, Total: total}
	if total == 0 {
		return wb
	}
	wb.ErrorRate = float64(total-good) / float64(total)
	if budget := 1 - o.obj.Target; budget > 0 {
		wb.BurnRate = wb.ErrorRate / budget
	}
	return wb
}

// Evaluate computes every objective's verdict at the current clock, publishes
// patchdb_slo_burn_rate / patchdb_slo_healthy gauges, and logs each
// healthy<->burning transition once.
func (s *SLOSet) Evaluate() []Verdict {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.clock().UnixNano() / int64(sloBucket)
	verdicts := make([]Verdict, 0, len(s.slos))
	for _, o := range s.slos {
		o.advance(idx)
		v := Verdict{Name: o.obj.Name, Target: o.obj.Target, Healthy: true}
		if o.obj.Threshold > 0 {
			v.Threshold = o.obj.Threshold.String()
		}
		burns := make(map[time.Duration]WindowBurn)
		for _, p := range s.pairs {
			for _, d := range []time.Duration{p.Short, p.Long} {
				if _, ok := burns[d]; !ok {
					wb := o.burn(d, d.String())
					burns[d] = wb
					v.Windows = append(v.Windows, wb)
					if s.reg != nil {
						s.reg.Gauge("patchdb_slo_burn_rate",
							Label{Key: "slo", Value: o.obj.Name},
							Label{Key: "window", Value: wb.Window},
						).Set(wb.BurnRate)
					}
				}
			}
			firing := burns[p.Short].BurnRate >= p.Threshold && burns[p.Long].BurnRate >= p.Threshold
			if firing {
				v.Healthy = false
				if p.Short <= 5*time.Minute {
					v.FastBurn = true
				} else {
					v.SlowBurn = true
				}
			}
		}
		if s.reg != nil {
			g := s.reg.Gauge("patchdb_slo_healthy", Label{Key: "slo", Value: o.obj.Name})
			if v.Healthy {
				g.Set(1)
			} else {
				g.Set(0)
			}
		}
		if was, ok := s.lastHealthy[o.obj.Name]; ok && was != v.Healthy {
			level := slog.LevelWarn
			msg := "slo burn-rate alert firing"
			if v.Healthy {
				level = slog.LevelInfo
				msg = "slo recovered"
			}
			s.logger.LogAttrs(context.Background(), level, msg,
				slog.String("slo", o.obj.Name),
				slog.Bool("fast_burn", v.FastBurn),
				slog.Bool("slow_burn", v.SlowBurn),
			)
		}
		s.lastHealthy[o.obj.Name] = v.Healthy
		verdicts = append(verdicts, v)
	}
	return verdicts
}

// Handler serves the current verdicts as indented JSON — the /debug/slo
// endpoint.
func (s *SLOSet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		verdicts := s.Evaluate()
		if verdicts == nil {
			verdicts = []Verdict{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(struct {
			Objectives []Verdict `json:"objectives"`
		}{verdicts}); err != nil {
			// Status line already sent; nothing useful left to do.
			_ = err
		}
	})
}

// Summary renders verdicts as the compact strings /healthz embeds, e.g.
// "availability: healthy (target 99.9%)".
func Summary(verdicts []Verdict) []string {
	out := make([]string, 0, len(verdicts))
	for _, v := range verdicts {
		state := "healthy"
		if !v.Healthy {
			state = "burning"
		}
		out = append(out, fmt.Sprintf("%s: %s (target %g%%)", v.Name, state, v.Target*100))
	}
	return out
}
