package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"patchdb/internal/atomicio"
)

// DefaultTraceCapacity bounds the in-memory span buffer of a NewHub tracer.
const DefaultTraceCapacity = 4096

// SpanRecord is one finished span as stored in the trace buffer and
// exported to JSONL. IDs are assigned at Start from a per-tracer monotonic
// counter, so a parent's ID is always smaller than its children's.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Trace is the correlation ID the span belongs to (a request's
	// X-Request-ID in the serving layer), inherited from the parent span or
	// from WithTraceID on the starting context; "" for uncorrelated spans.
	Trace string    `json:"trace,omitempty"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// DurationNS is the span's wall-clock duration in nanoseconds.
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Tracer collects finished spans into a bounded ring buffer: once full, the
// oldest spans are dropped (and counted). A nil *Tracer ignores everything.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	nextID  uint64
	spans   []SpanRecord // ring storage
	head    int          // index of the oldest record when len(spans) == cap
	dropped uint64
}

// NewTracer creates a tracer buffering at most capacity finished spans
// (capacity <= 0 means DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity}
}

// Span is one in-flight traced operation. A nil *Span ignores SetAttr and
// End, so callers never guard the Start return.
type Span struct {
	tracer *Tracer
	id     uint64
	parent uint64
	trace  string
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

type spanKey struct{}
type traceIDKey struct{}

// WithTraceID returns a context carrying a correlation ID. Spans started
// under the context (and their descendants) record it, and the hub logger
// attaches it to every record, so one request's spans, logs, and histogram
// exemplars all share the ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFromContext returns the correlation ID carried by ctx: the current
// span's trace if one is in flight, else the value set by WithTraceID, else
// "".
func TraceIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	if s := SpanFromContext(ctx); s != nil && s.trace != "" {
		return s.trace
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// Start begins a span under t, linking it to the span already in ctx (if
// any) as its parent, and returns a context carrying the new span. The span
// inherits its correlation ID from the parent span, or from WithTraceID.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var parent uint64
	var trace string
	if p := SpanFromContext(ctx); p != nil {
		parent = p.id
		trace = p.trace
	}
	if trace == "" {
		trace = TraceIDFromContext(ctx)
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	s := &Span{tracer: t, id: id, parent: parent, trace: trace, name: name, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// TraceID returns the span's correlation ID ("" for a nil or uncorrelated
// span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// SetAttr attaches one attribute to the span. Values should be
// JSON-encodable (strings, numbers, bools).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
}

// End finishes the span and records it in the tracer's buffer. End is
// idempotent: only the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tracer.record(SpanRecord{
		ID:         s.id,
		Parent:     s.parent,
		Trace:      s.trace,
		Name:       s.name,
		Start:      s.start,
		DurationNS: int64(time.Since(s.start)),
		Attrs:      attrs,
	})
}

// record appends one finished span, evicting the oldest when full.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, rec)
		return
	}
	t.spans[t.head] = rec
	t.head = (t.head + 1) % t.cap
	t.dropped++
}

// Dropped counts spans evicted from a full buffer.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot copies the buffered spans sorted by ID. Since IDs are assigned
// at Start, a parent always sorts before every span it parents.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WriteJSONL exports the buffered spans as one JSON object per line, in ID
// order (parents before children).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range t.Snapshot() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONLFile exports the buffered spans as JSONL to path through the
// shared temp+fsync+rename helper, so a concurrent reader never observes a
// half-written trace artifact.
func (t *Tracer) WriteJSONLFile(path string) error {
	var buf bytes.Buffer
	if err := t.WriteJSONL(&buf); err != nil {
		return fmt.Errorf("telemetry: encode span JSONL: %w", err)
	}
	if err := atomicio.WriteFile(path, buf.Bytes()); err != nil {
		return fmt.Errorf("telemetry: write span JSONL: %w", err)
	}
	return nil
}

// hubKey carries a *Hub in a context.
type hubKey struct{}

// WithHub returns a context carrying h; Start and HubFromContext resolve
// against it instead of the process-wide Default hub.
func WithHub(ctx context.Context, h *Hub) context.Context {
	return context.WithValue(ctx, hubKey{}, h)
}

// HubFromContext returns the hub carried by ctx, or the process-wide
// Default hub.
func HubFromContext(ctx context.Context) *Hub {
	if ctx != nil {
		if h, ok := ctx.Value(hubKey{}).(*Hub); ok && h != nil {
			return h
		}
	}
	return defaultHub
}

// Start begins a span on the tracer of the hub carried by ctx (or the
// Default hub), parenting it under the context's current span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return HubFromContext(ctx).Tracer.Start(ctx, name)
}
