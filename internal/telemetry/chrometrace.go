package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"

	"patchdb/internal/atomicio"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// chrome://tracing and Perfetto load). Only the "X" (complete) and "M"
// (metadata) phases are emitted.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`            // microseconds, relative to the earliest span
	Dur   int64          `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ChromeTraceJSON renders the buffered spans as Chrome trace-event JSON.
// Spans are laid out on lanes (tid) greedily: each span takes the lowest
// lane that is free at its start time, so overlapping work renders stacked
// and sequential work renders flat.
func (t *Tracer) ChromeTraceJSON() ([]byte, error) {
	spans := t.Snapshot()
	events := []chromeEvent{{
		Name:  "process_name",
		Phase: "M",
		PID:   1,
		Args:  map[string]any{"name": "patchdb"},
	}}
	var epoch int64 // earliest start in µs; keeps ts small and stable-offset
	for i, s := range spans {
		us := s.Start.UnixMicro()
		if i == 0 || us < epoch {
			epoch = us
		}
	}
	var laneEnds []int64 // per-lane last end time in µs (absolute)
	for _, s := range spans {
		start := s.Start.UnixMicro()
		end := start + s.DurationNS/1000
		lane := -1
		for i, e := range laneEnds {
			if start >= e {
				lane = i
				break
			}
		}
		if lane == -1 {
			lane = len(laneEnds)
			laneEnds = append(laneEnds, 0)
		}
		laneEnds[lane] = end
		args := map[string]any{"id": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.Trace != "" {
			args["trace"] = s.Trace
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		events = append(events, chromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    start - epoch,
			Dur:   max(s.DurationNS/1000, 1), // zero-width events vanish in viewers
			PID:   1,
			TID:   lane + 1,
			Args:  args,
		})
	}
	return json.MarshalIndent(chromeTrace{TraceEvents: events}, "", " ")
}

// WriteChromeTraceFile exports the buffered spans as Chrome trace-event JSON
// to path through the shared temp+fsync+rename helper.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	data, err := t.ChromeTraceJSON()
	if err != nil {
		return fmt.Errorf("telemetry: encode chrome trace: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(data)
	buf.WriteByte('\n')
	if err := atomicio.WriteFile(path, buf.Bytes()); err != nil {
		return fmt.Errorf("telemetry: write chrome trace: %w", err)
	}
	return nil
}
