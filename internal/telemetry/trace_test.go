package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestSpanParentChildOrdering builds a small span tree, exports it to JSONL,
// and checks that (a) every line is valid JSON, (b) each child's parent
// appears on an earlier line, and (c) parent linkage follows the context.
func TestSpanParentChildOrdering(t *testing.T) {
	tr := NewTracer(16)
	ctx := context.Background()

	ctx, root := tr.Start(ctx, "build")
	cctx, crawl := tr.Start(ctx, "crawl")
	_, fetch := tr.Start(cctx, "fetch_feed")
	fetch.SetAttr("attempts", 2)
	fetch.End()
	crawl.End()
	_, extract := tr.Start(ctx, "extract")
	extract.End()
	root.End()
	root.End() // idempotent: must not record twice

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	var recs []SpanRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 4 {
		t.Fatalf("exported %d spans, want 4", len(recs))
	}

	seen := map[uint64]SpanRecord{}
	for i, r := range recs {
		if r.Parent != 0 {
			if _, ok := seen[r.Parent]; !ok {
				t.Errorf("line %d: span %d (%s) precedes its parent %d", i, r.ID, r.Name, r.Parent)
			}
		}
		seen[r.ID] = r
	}

	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["build"].Parent != 0 {
		t.Errorf("root span has parent %d, want 0", byName["build"].Parent)
	}
	if byName["crawl"].Parent != byName["build"].ID {
		t.Errorf("crawl parent = %d, want build's id %d", byName["crawl"].Parent, byName["build"].ID)
	}
	if byName["fetch_feed"].Parent != byName["crawl"].ID {
		t.Errorf("fetch_feed parent = %d, want crawl's id %d", byName["fetch_feed"].Parent, byName["crawl"].ID)
	}
	if byName["extract"].Parent != byName["build"].ID {
		t.Errorf("extract parent = %d, want build's id %d", byName["extract"].Parent, byName["build"].ID)
	}
	if got := byName["fetch_feed"].Attrs["attempts"]; got != float64(2) {
		t.Errorf("fetch_feed attempts attr = %v, want 2", got)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		_, s := tr.Start(ctx, "op")
		s.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("buffer holds %d spans, want cap 3", len(spans))
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped() = %d, want 2", tr.Dropped())
	}
	// The survivors are the newest spans, still in ID order.
	for i, want := range []uint64{3, 4, 5} {
		if spans[i].ID != want {
			t.Errorf("span %d id = %d, want %d", i, spans[i].ID, want)
		}
	}
}

func TestHubFromContextFallback(t *testing.T) {
	if got := HubFromContext(context.Background()); got != Default() {
		t.Error("no-hub context should resolve to the Default hub")
	}
	h := NewHub()
	ctx := WithHub(context.Background(), h)
	if got := HubFromContext(ctx); got != h {
		t.Error("WithHub context should resolve to its own hub")
	}
	// Package-level Start must use the context hub's tracer.
	_, s := Start(ctx, "scoped")
	s.End()
	if n := len(h.Tracer.Snapshot()); n != 1 {
		t.Errorf("hub tracer buffered %d spans, want 1", n)
	}
}
