package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// expositionRegistry builds the registry both exposition goldens share:
// escaped label values, registered help text, and a histogram with
// exemplars on two buckets.
func expositionRegistry() *Registry {
	reg := NewRegistry()
	reg.SetHelp("patchdb_serve_requests_total", "Requests served, by endpoint and status code.")
	reg.SetHelp("patchdb_serve_request_seconds", "Request latency in seconds.\nSecond line.")
	reg.Counter("patchdb_serve_requests_total", L("endpoint", `quo"te`)).Add(7)
	reg.Counter("patchdb_serve_requests_total", L("endpoint", "back\\slash\nnewline")).Add(2)
	h := reg.Histogram("patchdb_serve_request_seconds", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "req-a")
	h.ObserveExemplar(0.07, "req-b") // most recent wins within the bucket
	h.Observe(0.5)                   // uncorrelated: bucket stays exemplar-free
	h.ObserveExemplar(3, "req-c")
	return reg
}

// TestWritePromEscapingGolden fixes the Prometheus (0.0.4) exposition:
// HELP before TYPE, escaped label values and help text, and no exemplar
// syntax (0.0.4 has none).
func TestWritePromEscapingGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteProm(&sb, expositionRegistry()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP patchdb_serve_request_seconds Request latency in seconds.\nSecond line.
# TYPE patchdb_serve_request_seconds histogram
patchdb_serve_request_seconds_bucket{le="0.1"} 2
patchdb_serve_request_seconds_bucket{le="1"} 3
patchdb_serve_request_seconds_bucket{le="+Inf"} 4
patchdb_serve_request_seconds_sum 3.62
patchdb_serve_request_seconds_count 4
# HELP patchdb_serve_requests_total Requests served, by endpoint and status code.
# TYPE patchdb_serve_requests_total counter
patchdb_serve_requests_total{endpoint="back\\slash\nnewline"} 2
patchdb_serve_requests_total{endpoint="quo\"te"} 7
`
	if got := sb.String(); got != want {
		t.Errorf("prom exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWriteOpenMetricsGolden fixes the OpenMetrics exposition: bucket lines
// carry their most-recent exemplar in `# {trace_id="..."} value` syntax and
// the stream ends with # EOF.
func TestWriteOpenMetricsGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteOpenMetrics(&sb, expositionRegistry()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP patchdb_serve_request_seconds Request latency in seconds.\nSecond line.
# TYPE patchdb_serve_request_seconds histogram
patchdb_serve_request_seconds_bucket{le="0.1"} 2 # {trace_id="req-b"} 0.07
patchdb_serve_request_seconds_bucket{le="1"} 3
patchdb_serve_request_seconds_bucket{le="+Inf"} 4 # {trace_id="req-c"} 3
patchdb_serve_request_seconds_sum 3.62
patchdb_serve_request_seconds_count 4
# HELP patchdb_serve_requests_total Requests served, by endpoint and status code.
# TYPE patchdb_serve_requests_total counter
patchdb_serve_requests_total{endpoint="back\\slash\nnewline"} 2
patchdb_serve_requests_total{endpoint="quo\"te"} 7
# EOF
`
	if got := sb.String(); got != want {
		t.Errorf("openmetrics exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMetricsHandlerNegotiation checks the Accept-header switch between the
// two expositions.
func TestMetricsHandlerNegotiation(t *testing.T) {
	hub := NewHub()
	hub.Registry.Histogram("x_seconds", []float64{1}).ObserveExemplar(0.5, "req-1")

	get := func(accept string) (string, string) {
		t.Helper()
		rr := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		hub.MetricsHandler().ServeHTTP(rr, req)
		body, _ := io.ReadAll(rr.Body)
		return rr.Header().Get("Content-Type"), string(body)
	}

	ct, body := get("")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default content type = %q", ct)
	}
	if strings.Contains(body, "trace_id") || strings.Contains(body, "# EOF") {
		t.Errorf("prom exposition leaked openmetrics syntax:\n%s", body)
	}

	ct, body = get("application/openmetrics-text; version=1.0.0")
	if ct != OpenMetricsContentType {
		t.Errorf("openmetrics content type = %q", ct)
	}
	if !strings.Contains(body, `# {trace_id="req-1"} 0.5`) {
		t.Errorf("openmetrics exposition missing exemplar:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("openmetrics exposition missing # EOF terminator:\n%s", body)
	}
}

// TestHistogramSnapshotExemplars checks exemplars ride along in registry
// snapshots (and stay absent for uncorrelated histograms).
func TestHistogramSnapshotExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("with_exemplars", []float64{1})
	h.ObserveExemplar(0.5, "t-1")
	reg.Histogram("without_exemplars", []float64{1}).Observe(0.5)
	for _, p := range reg.Snapshot() {
		switch p.Name {
		case "with_exemplars":
			if len(p.Histogram.Exemplars) != 2 || p.Histogram.Exemplars[0] != (Exemplar{Trace: "t-1", Value: 0.5}) {
				t.Errorf("exemplars = %+v", p.Histogram.Exemplars)
			}
		case "without_exemplars":
			if p.Histogram.Exemplars != nil {
				t.Errorf("uncorrelated histogram grew exemplars: %+v", p.Histogram.Exemplars)
			}
		}
	}
}
