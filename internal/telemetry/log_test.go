package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a clock stuck at a known instant.
func fixedClock(t time.Time) func() time.Time {
	return func() time.Time { return t }
}

// TestLogHandlerDeterministicGolden fixes the exact JSON output of the hub's
// log handler under an injected clock: one line per record, sorted map keys,
// UTC timestamps, and the context's trace ID auto-attached.
func TestLogHandlerDeterministicGolden(t *testing.T) {
	var buf bytes.Buffer
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	logger := slog.New(NewLogHandler(LogHandlerOptions{
		Writer: &buf,
		Clock:  fixedClock(at),
	}))

	ctx := WithTraceID(context.Background(), "req-42")
	logger.InfoContext(ctx, "snapshot loaded", "version", 3, "records", 1200)
	logger.WithGroup("reload").With("source", "sighup").WarnContext(ctx, "slow request", "elapsed", 300*time.Millisecond)
	logger.Info("uncorrelated")

	want := `{"time":"2026-08-08T12:00:00Z","level":"INFO","msg":"snapshot loaded","trace":"req-42","attrs":{"records":1200,"version":3}}
{"time":"2026-08-08T12:00:00Z","level":"WARN","msg":"slow request","trace":"req-42","attrs":{"reload.elapsed":"300ms","reload.source":"sighup"}}
{"time":"2026-08-08T12:00:00Z","level":"INFO","msg":"uncorrelated"}
`
	if got := buf.String(); got != want {
		t.Errorf("log output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestLogHandlerLevel checks the handler honors its minimum level (default
// Info).
func TestLogHandlerLevel(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(LogHandlerOptions{Writer: &buf}))
	logger.Debug("below threshold")
	if buf.Len() != 0 {
		t.Errorf("debug record emitted at default level: %q", buf.String())
	}
	logger = slog.New(NewLogHandler(LogHandlerOptions{Writer: &buf, Level: slog.LevelDebug}))
	logger.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Errorf("debug record missing at debug level: %q", buf.String())
	}
}

// TestLogHandlerTraceFromSpan checks a record emitted under an active span
// inherits the span's trace ID even without WithTraceID on the context.
func TestLogHandlerTraceFromSpan(t *testing.T) {
	buffer := NewLogBuffer(8)
	logger := slog.New(NewLogHandler(LogHandlerOptions{Buffer: buffer}))
	tr := NewTracer(8)
	ctx := WithTraceID(context.Background(), "span-trace")
	ctx, span := tr.Start(ctx, "work")
	logger.InfoContext(ctx, "inside span")
	span.End()
	recs := buffer.Records()
	if len(recs) != 1 || recs[0].Trace != "span-trace" {
		t.Fatalf("got records %+v, want one with trace span-trace", recs)
	}
}

// TestLogBufferWrap checks ring eviction: capacity 3, five records, the
// oldest two dropped and counted.
func TestLogBufferWrap(t *testing.T) {
	b := NewLogBuffer(3)
	for i := range 5 {
		b.add(LogRecord{Msg: fmt.Sprintf("m%d", i)})
	}
	recs := b.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, want := range []string{"m2", "m3", "m4"} {
		if recs[i].Msg != want {
			t.Errorf("record %d = %q, want %q (oldest first)", i, recs[i].Msg, want)
		}
	}
	if b.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", b.Dropped())
	}
}

// TestLogsHandler checks the /debug/logs payload shape.
func TestLogsHandler(t *testing.T) {
	hub := NewHub()
	hub.Logger().Info("hello", "k", "v")
	rr := httptest.NewRecorder()
	hub.LogsHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/logs", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var resp struct {
		Dropped uint64      `json:"dropped"`
		Records []LogRecord `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode /debug/logs: %v", err)
	}
	if len(resp.Records) != 1 || resp.Records[0].Msg != "hello" {
		t.Errorf("records = %+v, want one 'hello'", resp.Records)
	}
	if resp.Records[0].Attrs["k"] != "v" {
		t.Errorf("attrs = %+v, want k=v", resp.Records[0].Attrs)
	}
}

// TestHubLoggerNilSafety: a nil hub and a zero hub both hand back a working
// discard logger; a nil buffer ignores adds; the nil LogsHandler serves an
// empty list.
func TestHubLoggerNilSafety(t *testing.T) {
	var nilHub *Hub
	nilHub.Logger().Info("into the void")
	nilHub.SetLogger(slog.New(slog.DiscardHandler))
	(&Hub{}).Logger().Info("also fine")
	var nilBuf *LogBuffer
	nilBuf.add(LogRecord{Msg: "dropped"})
	if nilBuf.Records() != nil || nilBuf.Dropped() != 0 {
		t.Error("nil buffer should be empty")
	}
	rr := httptest.NewRecorder()
	nilHub.LogsHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/logs", nil))
	if rr.Code != http.StatusOK {
		t.Errorf("nil hub /debug/logs status = %d", rr.Code)
	}
}

// TestNewRequestIDUnique checks concurrent ID minting never collides.
func TestNewRequestIDUnique(t *testing.T) {
	const n = 200
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range n / 4 {
				ids <- NewRequestID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[string]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate request ID %s", id)
		}
		seen[id] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d unique IDs, want %d", len(seen), n)
	}
}
