package diff

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const samplePatch = `commit b84c2cab55948a5ee70860779b2640913e3ee1ed
Author: Jane Dev <jane@example.com>
Date: 2019-11-13

    fix stack underflow

diff --git a/src/bits.c b/src/bits.c
index 014b04fe4..a3692bdc6 100644
--- a/src/bits.c
+++ b/src/bits.c
@@ -953,7 +953,7 @@ bit_write_UMC (Bit_Chain *dat, BITCODE_UMC val)
       if (byte[i] & 0x7f)
         break;
     }
-  if (byte[i] & 0x40)
+  if (byte[i] & 0x40 && i > 0)
   byte[i] &= 0x7f;
   for (j = 4; j >= i; j--)
     {
`

func TestParseBasic(t *testing.T) {
	p, err := Parse(samplePatch)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Commit != "b84c2cab55948a5ee70860779b2640913e3ee1ed" {
		t.Errorf("commit = %q", p.Commit)
	}
	if p.Author != "Jane Dev <jane@example.com>" {
		t.Errorf("author = %q", p.Author)
	}
	if p.Message != "fix stack underflow" {
		t.Errorf("message = %q", p.Message)
	}
	if len(p.Files) != 1 {
		t.Fatalf("files = %d", len(p.Files))
	}
	f := p.Files[0]
	if f.OldPath != "src/bits.c" || f.NewPath != "src/bits.c" {
		t.Errorf("paths = %q %q", f.OldPath, f.NewPath)
	}
	if len(f.Hunks) != 1 {
		t.Fatalf("hunks = %d", len(f.Hunks))
	}
	h := f.Hunks[0]
	if h.OldStart != 953 || h.OldLines != 7 || h.NewStart != 953 || h.NewLines != 7 {
		t.Errorf("ranges = %d,%d %d,%d", h.OldStart, h.OldLines, h.NewStart, h.NewLines)
	}
	if h.Section != "bit_write_UMC (Bit_Chain *dat, BITCODE_UMC val)" {
		t.Errorf("section = %q", h.Section)
	}
	if got := h.AddedLines(); len(got) != 1 || !strings.Contains(got[0], "i > 0") {
		t.Errorf("added = %q", got)
	}
	if got := h.RemovedLines(); len(got) != 1 {
		t.Errorf("removed = %q", got)
	}
}

func TestParseGitHubFromHeader(t *testing.T) {
	text := "From abcdef0123456789abcdef0123456789abcdef01 Mon Sep 17 00:00:00 2001\n" +
		"From: Dev <d@example.com>\n" +
		"Subject: [PATCH] fix\n\n" +
		"diff --git a/a.c b/a.c\n--- a/a.c\n+++ b/a.c\n@@ -1 +1 @@\n-x\n+y\n"
	p, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Commit != "abcdef0123456789abcdef0123456789abcdef01" {
		t.Errorf("commit = %q", p.Commit)
	}
}

func TestParseBareDiff(t *testing.T) {
	text := "--- a/x.c\n+++ b/x.c\n@@ -1,2 +1,2 @@\n context\n-old\n+new\n"
	p, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Files) != 1 || p.Files[0].NewPath != "x.c" {
		t.Fatalf("files = %+v", p.Files)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"garbage", "not a patch at all"},
		{"bad hunk header", "diff --git a/a b/a\n@@ nonsense\n"},
		{"hunk outside file", "@@ -1 +1 @@\n-x\n+y\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.text); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.text)
			}
		})
	}
}

func TestParseErrorType(t *testing.T) {
	_, err := Parse("diff --git a/a b/a\n@@ nonsense\n")
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("error %v is not a *ParseError", err)
	}
	if pe.LineNo != 2 {
		t.Errorf("LineNo = %d, want 2", pe.LineNo)
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestFormatRoundTrip(t *testing.T) {
	p, err := Parse(samplePatch)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(Format(p))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if Format(p) != Format(p2) {
		t.Errorf("Format not stable:\n%s\nvs\n%s", Format(p), Format(p2))
	}
}

func TestStripNonCFamily(t *testing.T) {
	text := "commit 1234567\n" +
		"diff --git a/ChangeLog b/ChangeLog\n--- a/ChangeLog\n+++ b/ChangeLog\n@@ -1 +1 @@\n-a\n+b\n" +
		"diff --git a/src/x.c b/src/x.c\n--- a/src/x.c\n+++ b/src/x.c\n@@ -1 +1 @@\n-a\n+b\n" +
		"diff --git a/run.sh b/run.sh\n--- a/run.sh\n+++ b/run.sh\n@@ -1 +1 @@\n-a\n+b\n" +
		"diff --git a/inc/y.hpp b/inc/y.hpp\n--- a/inc/y.hpp\n+++ b/inc/y.hpp\n@@ -1 +1 @@\n-a\n+b\n"
	p, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Files) != 4 {
		t.Fatalf("files = %d", len(p.Files))
	}
	s := p.StripNonCFamily()
	if len(s.Files) != 2 {
		t.Fatalf("stripped files = %d", len(s.Files))
	}
	if s.Files[0].NewPath != "src/x.c" || s.Files[1].NewPath != "inc/y.hpp" {
		t.Errorf("kept %q %q", s.Files[0].NewPath, s.Files[1].NewPath)
	}
}

func TestIsCFamily(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"a.c", true}, {"b.h", true}, {"c.cpp", true}, {"d.cc", true},
		{"e.cxx", true}, {"f.hpp", true}, {"g.hh", true},
		{"UPPER.C", true},
		{"x.go", false}, {"y.sh", false}, {"ChangeLog", false},
		{"z.phpt", false}, {"k.kconfig", false},
	}
	for _, tc := range cases {
		fd := &FileDiff{OldPath: tc.path, NewPath: tc.path}
		if got := fd.IsCFamily(); got != tc.want {
			t.Errorf("IsCFamily(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

func TestLineKindString(t *testing.T) {
	if Context.String() != " " || Removed.String() != "-" || Added.String() != "+" {
		t.Error("LineKind markers wrong")
	}
	if LineKind(0).String() != "?" {
		t.Error("invalid kind marker")
	}
}

func TestComputeIdentical(t *testing.T) {
	if fd := Compute("a.c", "x\ny\n", "x\ny\n", 3); fd != nil {
		t.Errorf("identical content produced diff %+v", fd)
	}
}

func TestComputeSimpleChange(t *testing.T) {
	oldText := "a\nb\nc\nd\ne\n"
	newText := "a\nb\nC\nd\ne\n"
	fd := Compute("f.c", oldText, newText, 1)
	if fd == nil {
		t.Fatal("nil diff")
	}
	if len(fd.Hunks) != 1 {
		t.Fatalf("hunks = %d", len(fd.Hunks))
	}
	h := fd.Hunks[0]
	if len(h.RemovedLines()) != 1 || h.RemovedLines()[0] != "c" {
		t.Errorf("removed = %v", h.RemovedLines())
	}
	if len(h.AddedLines()) != 1 || h.AddedLines()[0] != "C" {
		t.Errorf("added = %v", h.AddedLines())
	}
}

func TestComputeHunkGrouping(t *testing.T) {
	var oldLines, newLines []string
	for i := 0; i < 30; i++ {
		oldLines = append(oldLines, "line")
		newLines = append(newLines, "line")
	}
	newLines[2] = "changed-top"
	newLines[27] = "changed-bottom"
	fd := Compute("f.c", strings.Join(oldLines, "\n")+"\n", strings.Join(newLines, "\n")+"\n", 3)
	if fd == nil {
		t.Fatal("nil diff")
	}
	if len(fd.Hunks) != 2 {
		t.Fatalf("hunks = %d, want 2 (changes far apart must split)", len(fd.Hunks))
	}
}

func TestComputeAdjacentChangesMerge(t *testing.T) {
	oldText := "a\nb\nc\nd\ne\nf\ng\nh\n"
	newText := "a\nB\nc\nd\nE\nf\ng\nh\n"
	fd := Compute("f.c", oldText, newText, 3)
	if fd == nil {
		t.Fatal("nil diff")
	}
	if len(fd.Hunks) != 1 {
		t.Fatalf("hunks = %d, want 1 (close changes share a hunk)", len(fd.Hunks))
	}
}

func TestComputePatchMultiFile(t *testing.T) {
	before := map[string]string{"a.c": "1\n", "b.c": "2\n", "same.c": "s\n"}
	after := map[string]string{"a.c": "1x\n", "b.c": "2\n", "same.c": "s\n", "new.c": "n\n"}
	p := ComputePatch("deadbeef", "msg", before, after, 3)
	if p.Commit != "deadbeef" || p.Message != "msg" {
		t.Errorf("metadata lost: %q %q", p.Commit, p.Message)
	}
	if len(p.Files) != 2 {
		t.Fatalf("files = %d, want 2 (a.c changed, new.c added)", len(p.Files))
	}
}

func TestApplyRoundTrip(t *testing.T) {
	cases := []struct{ name, oldText, newText string }{
		{"modify", "a\nb\nc\n", "a\nX\nc\n"},
		{"append", "a\nb\n", "a\nb\nc\nd\n"},
		{"prepend", "a\nb\n", "z\na\nb\n"},
		{"delete all", "a\nb\n", ""},
		{"create", "", "a\nb\n"},
		{"delete middle", "a\nb\nc\nd\ne\n", "a\ne\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fd := Compute("f.c", tc.oldText, tc.newText, 3)
			if fd == nil {
				if tc.oldText != tc.newText {
					t.Fatal("expected a diff")
				}
				return
			}
			got, err := Apply(tc.oldText, fd)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if got != tc.newText {
				t.Errorf("Apply = %q, want %q", got, tc.newText)
			}
		})
	}
}

func TestApplyMismatch(t *testing.T) {
	fd := Compute("f.c", "a\nb\nc\n", "a\nX\nc\n", 3)
	if _, err := Apply("totally\ndifferent\n", fd); err == nil {
		t.Error("Apply on mismatched base succeeded")
	}
}

// TestQuickComputeApply is the core diff invariant: for random file pairs,
// applying the computed diff to the old version reproduces the new version.
func TestQuickComputeApply(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func() string {
		n := rng.Intn(40)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString([]string{"alpha", "beta", "gamma", "delta", "eps"}[rng.Intn(5)])
			b.WriteString("\n")
		}
		return b.String()
	}
	mutate := func(s string) string {
		lines := strings.Split(s, "\n")
		for i := range lines {
			switch rng.Intn(6) {
			case 0:
				lines[i] = "mutated"
			case 1:
				lines[i] = ""
			}
		}
		return strings.Join(lines, "\n")
	}
	for i := 0; i < 300; i++ {
		oldText := gen()
		var newText string
		if rng.Intn(3) == 0 {
			newText = gen()
		} else {
			newText = mutate(oldText)
		}
		// Normalize to trailing-newline form as Compute expects file-like text.
		oldText = normalizeText(oldText)
		newText = normalizeText(newText)
		fd := Compute("f.c", oldText, newText, 3)
		if fd == nil {
			if splitJoined(oldText) != splitJoined(newText) {
				t.Fatalf("case %d: no diff for differing inputs", i)
			}
			continue
		}
		got, err := Apply(oldText, fd)
		if err != nil {
			t.Fatalf("case %d: Apply: %v\nold=%q\nnew=%q", i, err, oldText, newText)
		}
		if splitJoined(got) != splitJoined(newText) {
			t.Fatalf("case %d: round trip failed\nold=%q\nnew=%q\ngot=%q", i, oldText, newText, got)
		}
	}
}

func normalizeText(s string) string {
	lines := splitLines(s)
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

func splitJoined(s string) string { return strings.Join(splitLines(s), "\n") }

// TestQuickParseFormat checks Parse(Format(p)) stability on generated
// patches.
func TestQuickParseFormat(t *testing.T) {
	f := func(oldSeed, newSeed int64) bool {
		a := genText(oldSeed)
		b := genText(newSeed)
		p := ComputePatch("cafebabe", "m", map[string]string{"x.c": a}, map[string]string{"x.c": b}, 3)
		text := Format(p)
		p2, err := Parse(text)
		if err != nil {
			return false
		}
		return Format(p2) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func genText(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i, n := 0, rng.Intn(20); i < n; i++ {
		b.WriteString([]string{"int x;", "y++;", "call(a, b);", "// c", "if (x) {", "}"}[rng.Intn(6)])
		b.WriteString("\n")
	}
	return b.String()
}

func TestHunkListAndPatchAccessors(t *testing.T) {
	p, err := Parse(samplePatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.HunkList()) != 1 {
		t.Errorf("HunkList = %d", len(p.HunkList()))
	}
	if len(p.AddedLines()) != 1 || len(p.RemovedLines()) != 1 {
		t.Errorf("patch-level added/removed = %d/%d", len(p.AddedLines()), len(p.RemovedLines()))
	}
}

func TestComputePureInsertionApply(t *testing.T) {
	oldText := "a\nb\nc\nd\ne\nf\ng\nh\ni\nj\n"
	newText := "a\nb\nc\nd\ne\nX\nY\nf\ng\nh\ni\nj\n"
	fd := Compute("f.c", oldText, newText, 3)
	if fd == nil {
		t.Fatal("nil diff")
	}
	got, err := Apply(oldText, fd)
	if err != nil {
		t.Fatal(err)
	}
	if got != newText {
		t.Errorf("got %q", got)
	}
}
