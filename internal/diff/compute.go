package diff

import (
	"sort"
	"strings"
)

// editOp is one element of an edit script.
type editOp struct {
	kind LineKind // Context = keep, Removed = delete from old, Added = insert from new
	text string
}

// Compute builds the per-file diff between two versions of a file using the
// Myers O(ND) algorithm, grouped into hunks with the given number of context
// lines. It returns nil if the versions are identical.
func Compute(path string, oldText, newText string, contextLines int) *FileDiff {
	oldLines := splitLines(oldText)
	newLines := splitLines(newText)
	script := myers(oldLines, newLines)
	changed := false
	for _, op := range script {
		if op.kind != Context {
			changed = true
			break
		}
	}
	if !changed {
		return nil
	}
	fd := &FileDiff{OldPath: path, NewPath: path}
	fd.Hunks = groupHunks(script, contextLines)
	return fd
}

// ComputePatch diffs a whole set of files (map path -> content) and
// assembles a Patch. Files present in only one side are treated as
// added/deleted wholesale.
func ComputePatch(commit, message string, oldFiles, newFiles map[string]string, contextLines int) *Patch {
	p := &Patch{Commit: commit, Message: message}
	paths := make([]string, 0, len(oldFiles)+len(newFiles))
	seen := make(map[string]bool, len(oldFiles)+len(newFiles))
	for path := range oldFiles {
		paths = append(paths, path)
		seen[path] = true
	}
	for path := range newFiles {
		if !seen[path] {
			paths = append(paths, path)
		}
	}
	sortStrings(paths)
	for _, path := range paths {
		fd := Compute(path, oldFiles[path], newFiles[path], contextLines)
		if fd != nil {
			p.Files = append(p.Files, fd)
		}
	}
	return p
}

func splitLines(text string) []string {
	if text == "" {
		return nil
	}
	lines := strings.Split(text, "\n")
	// A trailing newline produces one empty trailing element; drop it so the
	// line count matches the visible lines.
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// myers computes a line-level edit script using the greedy Myers algorithm.
func myers(a, b []string) []editOp {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return nil
	}
	max := n + m
	// v[k+max] = furthest x on diagonal k
	v := make([]int, 2*max+2)
	var trace [][]int
	var found bool
	var dFound int
	for d := 0; d <= max; d++ {
		snapshot := make([]int, len(v))
		copy(snapshot, v)
		trace = append(trace, snapshot)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[k-1+max] < v[k+1+max]) {
				x = v[k+1+max]
			} else {
				x = v[k-1+max] + 1
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[k+max] = x
			if x >= n && y >= m {
				found = true
				dFound = d
				break
			}
		}
		if found {
			snapshot := make([]int, len(v))
			copy(snapshot, v)
			trace = append(trace, snapshot)
			break
		}
	}
	// Backtrack.
	var ops []editOp
	x, y := n, m
	for d := dFound; d > 0; d-- {
		vPrev := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vPrev[k-1+max] < vPrev[k+1+max]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vPrev[prevK+max]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			x--
			y--
			ops = append(ops, editOp{kind: Context, text: a[x]})
		}
		if x == prevX {
			y--
			ops = append(ops, editOp{kind: Added, text: b[y]})
		} else {
			x--
			ops = append(ops, editOp{kind: Removed, text: a[x]})
		}
	}
	for x > 0 && y > 0 {
		x--
		y--
		ops = append(ops, editOp{kind: Context, text: a[x]})
	}
	for y > 0 {
		y--
		ops = append(ops, editOp{kind: Added, text: b[y]})
	}
	for x > 0 {
		x--
		ops = append(ops, editOp{kind: Removed, text: a[x]})
	}
	reverseOps(ops)
	return normalizeScript(ops)
}

// normalizeScript reorders each change region so removals precede additions,
// matching git's unified diff convention.
func normalizeScript(ops []editOp) []editOp {
	out := make([]editOp, 0, len(ops))
	i := 0
	for i < len(ops) {
		if ops[i].kind == Context {
			out = append(out, ops[i])
			i++
			continue
		}
		var removed, added []editOp
		for i < len(ops) && ops[i].kind != Context {
			if ops[i].kind == Removed {
				removed = append(removed, ops[i])
			} else {
				added = append(added, ops[i])
			}
			i++
		}
		out = append(out, removed...)
		out = append(out, added...)
	}
	return out
}

func reverseOps(ops []editOp) {
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
}

// groupHunks slices an edit script into hunks separated by more than
// 2*contextLines of unchanged lines.
func groupHunks(script []editOp, contextLines int) []*Hunk {
	type region struct{ start, end int } // change region indices in script
	var regions []region
	for i := 0; i < len(script); i++ {
		if script[i].kind == Context {
			continue
		}
		start := i
		for i < len(script) && script[i].kind != Context {
			i++
		}
		regions = append(regions, region{start, i})
	}
	if len(regions) == 0 {
		return nil
	}
	// Merge regions whose context gap is <= 2*contextLines.
	var merged []region
	cur := regions[0]
	for _, r := range regions[1:] {
		if r.start-cur.end <= 2*contextLines {
			cur.end = r.end
		} else {
			merged = append(merged, cur)
			cur = r
		}
	}
	merged = append(merged, cur)

	// Precompute old/new line numbers before each script index.
	oldAt := make([]int, len(script)+1) // old lines consumed before index i
	newAt := make([]int, len(script)+1)
	for i, op := range script {
		oldAt[i+1] = oldAt[i]
		newAt[i+1] = newAt[i]
		switch op.kind {
		case Context:
			oldAt[i+1]++
			newAt[i+1]++
		case Removed:
			oldAt[i+1]++
		case Added:
			newAt[i+1]++
		}
	}

	hunks := make([]*Hunk, 0, len(merged))
	for _, r := range merged {
		lo := r.start - contextLines
		if lo < 0 {
			lo = 0
		}
		hi := r.end + contextLines
		if hi > len(script) {
			hi = len(script)
		}
		h := &Hunk{
			OldStart: oldAt[lo] + 1,
			NewStart: newAt[lo] + 1,
		}
		for i := lo; i < hi; i++ {
			h.Lines = append(h.Lines, Line{Kind: script[i].kind, Text: script[i].text})
			switch script[i].kind {
			case Context:
				h.OldLines++
				h.NewLines++
			case Removed:
				h.OldLines++
			case Added:
				h.NewLines++
			}
		}
		if h.OldLines == 0 {
			h.OldStart--
		}
		if h.NewLines == 0 {
			h.NewStart--
		}
		hunks = append(hunks, h)
	}
	return hunks
}

func sortStrings(s []string) { sort.Strings(s) }

// Apply reconstructs the new version of a file from the old version and the
// file's hunks. It returns an error if the hunks do not match the old text.
func Apply(oldText string, fd *FileDiff) (string, error) {
	oldLines := splitLines(oldText)
	var out []string
	cursor := 0 // 0-based index into oldLines
	for _, h := range fd.Hunks {
		start := h.OldStart - 1
		if h.OldLines == 0 {
			start = h.OldStart
		}
		if start < cursor || start > len(oldLines) {
			return "", &ParseError{Reason: "hunk does not fit old file"}
		}
		out = append(out, oldLines[cursor:start]...)
		cursor = start
		for _, ln := range h.Lines {
			switch ln.Kind {
			case Context:
				if cursor >= len(oldLines) || oldLines[cursor] != ln.Text {
					return "", &ParseError{Reason: "context mismatch applying hunk"}
				}
				out = append(out, ln.Text)
				cursor++
			case Removed:
				if cursor >= len(oldLines) || oldLines[cursor] != ln.Text {
					return "", &ParseError{Reason: "removed-line mismatch applying hunk"}
				}
				cursor++
			case Added:
				out = append(out, ln.Text)
			}
		}
	}
	out = append(out, oldLines[cursor:]...)
	if len(out) == 0 {
		return "", nil
	}
	return strings.Join(out, "\n") + "\n", nil
}
