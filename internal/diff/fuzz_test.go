package diff

import (
	"strings"
	"testing"
)

// FuzzParse asserts that Parse never panics and that anything it accepts
// survives a Format/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(samplePatch)
	f.Add("diff --git a/a.c b/a.c\n--- a/a.c\n+++ b/a.c\n@@ -1 +1 @@\n-x\n+y\n")
	f.Add("commit 123\n\n    message only\n")
	f.Add("@@ stray hunk\n")
	f.Add("")
	f.Add("diff --git a/x b/x\n@@ -1,2 +3,4 @@ sect\n junk\n")
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return
		}
		text := Format(p)
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse of Format output failed: %v\n%s", err, text)
		}
		if Format(p2) != text {
			t.Fatalf("Format not stable after round trip")
		}
	})
}

// FuzzComputeApply asserts the diff/apply round trip on arbitrary file
// pairs.
func FuzzComputeApply(f *testing.F) {
	f.Add("a\nb\nc\n", "a\nX\nc\n")
	f.Add("", "new\n")
	f.Add("only\n", "")
	f.Add("same\n", "same\n")
	f.Fuzz(func(t *testing.T, oldText, newText string) {
		oldText = normalizeFuzz(oldText)
		newText = normalizeFuzz(newText)
		fd := Compute("f.c", oldText, newText, 3)
		if fd == nil {
			return
		}
		got, err := Apply(oldText, fd)
		if err != nil {
			t.Fatalf("Apply: %v (old=%q new=%q)", err, oldText, newText)
		}
		if strings.Join(splitLines(got), "\n") != strings.Join(splitLines(newText), "\n") {
			t.Fatalf("round trip mismatch: old=%q new=%q got=%q", oldText, newText, got)
		}
	})
}

func normalizeFuzz(s string) string {
	lines := splitLines(s)
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}
