// Package diff implements parsing, generation, and serialization of git-style
// patches (commits with unified diffs). It is the foundation the rest of the
// pipeline builds on: the NVD crawler downloads .patch files in this format,
// the feature extractor walks hunks, and the oversampler re-diffs modified
// file versions to merge extra edits into a patch.
package diff

import (
	"fmt"
	"path"
	"strconv"
	"strings"
)

// LineKind classifies a single line inside a hunk.
type LineKind int

const (
	// Context lines are unchanged lines surrounding a modification.
	Context LineKind = iota + 1
	// Removed lines exist only in the pre-patch version ("-" prefix).
	Removed
	// Added lines exist only in the post-patch version ("+" prefix).
	Added
)

// String returns the unified-diff prefix for the line kind.
func (k LineKind) String() string {
	switch k {
	case Context:
		return " "
	case Removed:
		return "-"
	case Added:
		return "+"
	default:
		return "?"
	}
}

// Line is one line of a hunk body.
type Line struct {
	Kind LineKind
	Text string // without the leading marker, without trailing newline
}

// Hunk is one consecutive region of changes plus its surrounding context.
type Hunk struct {
	OldStart int // 1-based first line in the old file covered by the hunk
	OldLines int
	NewStart int
	NewLines int
	Section  string // optional function context after the second @@
	Lines    []Line
}

// AddedLines returns the text of every added line in the hunk.
func (h *Hunk) AddedLines() []string { return h.linesOf(Added) }

// RemovedLines returns the text of every removed line in the hunk.
func (h *Hunk) RemovedLines() []string { return h.linesOf(Removed) }

func (h *Hunk) linesOf(kind LineKind) []string {
	var out []string
	for _, ln := range h.Lines {
		if ln.Kind == kind {
			out = append(out, ln.Text)
		}
	}
	return out
}

// FileDiff is the set of hunks for a single file in a patch.
type FileDiff struct {
	OldPath string // path on the "a/" side
	NewPath string // path on the "b/" side
	Hunks   []*Hunk
}

// IsCFamily reports whether the file is a C/C++ source or header file
// (.c, .cc, .cpp, .cxx, .h, .hpp, .hh), the subset PatchDB keeps.
func (f *FileDiff) IsCFamily() bool {
	p := f.NewPath
	if p == "" || p == "/dev/null" {
		p = f.OldPath
	}
	switch strings.ToLower(path.Ext(p)) {
	case ".c", ".cc", ".cpp", ".cxx", ".h", ".hpp", ".hh":
		return true
	}
	return false
}

// Patch is a parsed git commit patch: metadata plus per-file diffs.
type Patch struct {
	Commit  string // 40-char hash (or shorter synthetic id)
	Author  string
	Date    string
	Message string
	Files   []*FileDiff
}

// Hunks returns all hunks across all files.
func (p *Patch) HunkList() []*Hunk {
	var out []*Hunk
	for _, f := range p.Files {
		out = append(out, f.Hunks...)
	}
	return out
}

// AddedLines returns every added line across the whole patch.
func (p *Patch) AddedLines() []string {
	var out []string
	for _, h := range p.HunkList() {
		out = append(out, h.AddedLines()...)
	}
	return out
}

// RemovedLines returns every removed line across the whole patch.
func (p *Patch) RemovedLines() []string {
	var out []string
	for _, h := range p.HunkList() {
		out = append(out, h.RemovedLines()...)
	}
	return out
}

// StripNonCFamily returns a copy of the patch with diffs of non-C/C++ files
// removed, mirroring the paper's cleaning step (changelogs, .sh, .phpt, ...
// do not play a role in fixing vulnerabilities).
func (p *Patch) StripNonCFamily() *Patch {
	out := &Patch{Commit: p.Commit, Author: p.Author, Date: p.Date, Message: p.Message}
	for _, f := range p.Files {
		if f.IsCFamily() {
			out.Files = append(out.Files, f)
		}
	}
	return out
}

// ParseError describes a malformed patch input.
type ParseError struct {
	LineNo int
	Reason string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("patch parse error at line %d: %s", e.LineNo, e.Reason)
}

// Parse parses a git-format patch (as produced by `git show`, GitHub's
// .patch endpoint, or Format). It tolerates missing commit headers so raw
// unified diffs also parse.
func Parse(text string) (*Patch, error) {
	lines := strings.Split(text, "\n")
	// A trailing newline yields one empty final element; it is an artifact
	// of splitting, not an empty context line.
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	p := &Patch{}
	var file *FileDiff
	var hunk *Hunk
	var inMessage bool
	var msg []string

	flushHunk := func() {
		if hunk != nil && file != nil {
			file.Hunks = append(file.Hunks, hunk)
		}
		hunk = nil
	}
	flushFile := func() {
		flushHunk()
		if file != nil {
			p.Files = append(p.Files, file)
		}
		file = nil
	}

	for i, raw := range lines {
		switch {
		case strings.HasPrefix(raw, "commit "):
			p.Commit = strings.TrimSpace(strings.TrimPrefix(raw, "commit "))
			inMessage = true
		case strings.HasPrefix(raw, "From ") && p.Commit == "" && file == nil:
			// GitHub .patch header: "From <hash> Mon Sep 17 00:00:00 2001"
			fields := strings.Fields(raw)
			if len(fields) >= 2 && len(fields[1]) >= 7 {
				p.Commit = fields[1]
			}
			inMessage = true
		case strings.HasPrefix(raw, "Author:") || strings.HasPrefix(raw, "From:"):
			p.Author = strings.TrimSpace(raw[strings.Index(raw, ":")+1:])
		case strings.HasPrefix(raw, "Date:"):
			p.Date = strings.TrimSpace(strings.TrimPrefix(raw, "Date:"))
		case strings.HasPrefix(raw, "diff --git "):
			flushFile()
			inMessage = false
			oldPath, newPath, err := parseDiffGitLine(raw)
			if err != nil {
				return nil, &ParseError{LineNo: i + 1, Reason: err.Error()}
			}
			file = &FileDiff{OldPath: oldPath, NewPath: newPath}
		case strings.HasPrefix(raw, "index ") || strings.HasPrefix(raw, "new file mode") ||
			strings.HasPrefix(raw, "deleted file mode") || strings.HasPrefix(raw, "old mode") ||
			strings.HasPrefix(raw, "new mode") || strings.HasPrefix(raw, "similarity index") ||
			strings.HasPrefix(raw, "rename from") || strings.HasPrefix(raw, "rename to"):
			// metadata lines between "diff --git" and the hunks; ignored
		case strings.HasPrefix(raw, "--- "):
			if file == nil {
				// A bare unified diff without "diff --git": synthesize the file.
				file = &FileDiff{OldPath: normalizePath(raw[4:], "a/")}
			} else {
				file.OldPath = normalizePath(raw[4:], "a/")
			}
		case strings.HasPrefix(raw, "+++ "):
			if file == nil {
				return nil, &ParseError{LineNo: i + 1, Reason: "+++ outside a file diff"}
			}
			file.NewPath = normalizePath(raw[4:], "b/")
		case strings.HasPrefix(raw, "@@ "):
			if file == nil {
				return nil, &ParseError{LineNo: i + 1, Reason: "hunk header outside a file diff"}
			}
			flushHunk()
			h, err := parseHunkHeader(raw)
			if err != nil {
				return nil, &ParseError{LineNo: i + 1, Reason: err.Error()}
			}
			hunk = h
		case hunk != nil && strings.HasPrefix(raw, "+"):
			hunk.Lines = append(hunk.Lines, Line{Kind: Added, Text: raw[1:]})
		case hunk != nil && strings.HasPrefix(raw, "-"):
			hunk.Lines = append(hunk.Lines, Line{Kind: Removed, Text: raw[1:]})
		case hunk != nil && strings.HasPrefix(raw, " "):
			hunk.Lines = append(hunk.Lines, Line{Kind: Context, Text: raw[1:]})
		case hunk != nil && raw == "":
			// Some tools emit empty context lines without the leading space.
			hunk.Lines = append(hunk.Lines, Line{Kind: Context, Text: ""})
		case hunk != nil && raw == `\ No newline at end of file`:
			// ignored marker
		case inMessage:
			msg = append(msg, strings.TrimPrefix(strings.TrimPrefix(raw, "    "), "\t"))
		}
	}
	flushFile()
	p.Message = strings.TrimSpace(strings.Join(msg, "\n"))
	if len(p.Files) == 0 && p.Commit == "" {
		return nil, &ParseError{LineNo: 1, Reason: "input contains no commit header and no file diffs"}
	}
	return p, nil
}

func normalizePath(s, prefix string) string {
	// Git appends "\t<timestamp>" to ---/+++ paths; cut there, then trim
	// residual whitespace so the path is stable under re-serialization.
	if tab := strings.IndexByte(s, '\t'); tab >= 0 {
		s = s[:tab]
	}
	s = strings.TrimSpace(s)
	if s == "/dev/null" {
		return s
	}
	return strings.TrimPrefix(s, prefix)
}

func parseDiffGitLine(raw string) (oldPath, newPath string, err error) {
	rest := strings.TrimPrefix(raw, "diff --git ")
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", "", fmt.Errorf("malformed diff --git line %q", raw)
	}
	return strings.TrimPrefix(fields[0], "a/"), strings.TrimPrefix(fields[1], "b/"), nil
}

func parseHunkHeader(raw string) (*Hunk, error) {
	// @@ -l,s +l,s @@ optional section
	end := strings.Index(raw[3:], " @@")
	if end < 0 {
		return nil, fmt.Errorf("malformed hunk header %q", raw)
	}
	ranges := raw[3 : 3+end]
	section := ""
	if len(raw) > 3+end+3 {
		section = strings.TrimSpace(raw[3+end+3:])
	}
	parts := strings.Fields(ranges)
	if len(parts) != 2 || !strings.HasPrefix(parts[0], "-") || !strings.HasPrefix(parts[1], "+") {
		return nil, fmt.Errorf("malformed hunk ranges %q", ranges)
	}
	oldStart, oldLines, err := parseRange(parts[0][1:])
	if err != nil {
		return nil, err
	}
	newStart, newLines, err := parseRange(parts[1][1:])
	if err != nil {
		return nil, err
	}
	return &Hunk{
		OldStart: oldStart, OldLines: oldLines,
		NewStart: newStart, NewLines: newLines,
		Section: section,
	}, nil
}

func parseRange(s string) (start, count int, err error) {
	count = 1
	if comma := strings.IndexByte(s, ','); comma >= 0 {
		count, err = strconv.Atoi(s[comma+1:])
		if err != nil {
			return 0, 0, fmt.Errorf("malformed hunk range %q", s)
		}
		s = s[:comma]
	}
	start, err = strconv.Atoi(s)
	if err != nil {
		return 0, 0, fmt.Errorf("malformed hunk range %q", s)
	}
	return start, count, nil
}

// Format renders the patch back to git patch text. Parse(Format(p)) is
// structurally lossless for the fields Parse retains.
func Format(p *Patch) string {
	var b strings.Builder
	// The commit line anchors message parsing on re-parse, so emit it
	// whenever any header-dependent content follows, even with an empty
	// hash.
	if p.Commit != "" || p.Message != "" || p.Author != "" || p.Date != "" {
		fmt.Fprintf(&b, "commit %s\n", p.Commit)
	}
	if p.Author != "" {
		fmt.Fprintf(&b, "Author: %s\n", p.Author)
	}
	if p.Date != "" {
		fmt.Fprintf(&b, "Date: %s\n", p.Date)
	}
	if p.Message != "" {
		b.WriteString("\n")
		for _, ln := range strings.Split(p.Message, "\n") {
			b.WriteString("    " + ln + "\n")
		}
		b.WriteString("\n")
	}
	for _, f := range p.Files {
		fmt.Fprintf(&b, "diff --git a/%s b/%s\n", f.OldPath, f.NewPath)
		fmt.Fprintf(&b, "--- a/%s\n", f.OldPath)
		fmt.Fprintf(&b, "+++ b/%s\n", f.NewPath)
		for _, h := range f.Hunks {
			fmt.Fprintf(&b, "@@ -%s +%s @@", formatRange(h.OldStart, h.OldLines), formatRange(h.NewStart, h.NewLines))
			if h.Section != "" {
				b.WriteString(" " + h.Section)
			}
			b.WriteString("\n")
			for _, ln := range h.Lines {
				b.WriteString(ln.Kind.String() + ln.Text + "\n")
			}
		}
	}
	return b.String()
}

func formatRange(start, count int) string {
	if count == 1 {
		return strconv.Itoa(start)
	}
	return fmt.Sprintf("%d,%d", start, count)
}
