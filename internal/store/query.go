package store

import (
	"errors"
	"fmt"
	"sort"

	"patchdb"
)

// Pagination limits. A Limit of 0 asks for DefaultLimit; anything above
// MaxLimit is a query error, not a silent clamp, so clients learn the cap.
const (
	DefaultLimit = 50
	MaxLimit     = 500
)

// ErrBadQuery wraps every query-validation failure.
var ErrBadQuery = errors.New("store: bad query")

// knownSources are the record provenance values a query may filter on.
var knownSources = map[string]bool{"nvd": true, "wild": true, "synthetic": true}

// Query filters a paginated record scan. Zero values mean "no constraint".
type Query struct {
	// Source filters on provenance: "nvd", "wild", or "synthetic".
	Source string
	// Security, when non-nil, filters on the verified label.
	Security *bool
	// Pattern filters security patches on their pattern class (1..12).
	Pattern patchdb.Pattern
	// Repo filters on the owning repository.
	Repo string
	// Cursor resumes a scan strictly after this record ID ("" = start).
	Cursor string
	// Limit caps the page size (0 = DefaultLimit, max MaxLimit).
	Limit int
}

// validate normalizes the limit and rejects constraints no record can
// match through typos (unknown source, out-of-range pattern).
func (q *Query) validate() error {
	if q.Limit == 0 {
		q.Limit = DefaultLimit
	}
	if q.Limit < 0 || q.Limit > MaxLimit {
		return fmt.Errorf("%w: limit %d out of range [1,%d]", ErrBadQuery, q.Limit, MaxLimit)
	}
	if q.Source != "" && !knownSources[q.Source] {
		return fmt.Errorf("%w: unknown source %q (want nvd, wild, or synthetic)", ErrBadQuery, q.Source)
	}
	if q.Pattern < 0 || int(q.Pattern) > patchdb.NumPatterns {
		return fmt.Errorf("%w: pattern %d out of range [1,%d]", ErrBadQuery, int(q.Pattern), patchdb.NumPatterns)
	}
	return nil
}

// matches applies the query's filters to one record.
func (q *Query) matches(r *patchdb.Record) bool {
	if q.Source != "" && r.Source != q.Source {
		return false
	}
	if q.Security != nil && r.Security != *q.Security {
		return false
	}
	if q.Pattern != 0 && r.Pattern != q.Pattern {
		return false
	}
	if q.Repo != "" && r.Repo != q.Repo {
		return false
	}
	return true
}

// Page is one result page of a List scan.
type Page struct {
	// Records are the matching records, in ID order.
	Records []patchdb.Record `json:"records"`
	// NextCursor, when non-empty, resumes the scan on the next page.
	NextCursor string `json:"next_cursor,omitempty"`
	// Version is the snapshot version that served the page.
	Version uint64 `json:"version"`
}

// List scans the ID-sorted record spine with q's filters, returning up to
// q.Limit records after q.Cursor. Results are independent of the shard
// count, and a cursor stays valid across snapshot reloads: it names a
// position in ID order, not an offset.
func (sn *Snapshot) List(q Query) (Page, error) {
	if err := q.validate(); err != nil {
		return Page{}, err
	}
	start := 0
	if q.Cursor != "" {
		// First ID strictly greater than the cursor.
		start = sort.SearchStrings(sn.ids, q.Cursor)
		if start < len(sn.ids) && sn.ids[start] == q.Cursor {
			start++
		}
	}
	page := Page{Records: []patchdb.Record{}, Version: sn.Version}
	for _, id := range sn.ids[start:] {
		r, ok := sn.Get(id)
		if !ok || !q.matches(&r) {
			continue
		}
		if len(page.Records) == q.Limit {
			// One more match exists beyond the page: point the cursor at
			// the last record returned.
			page.NextCursor = page.Records[len(page.Records)-1].ID
			return page, nil
		}
		page.Records = append(page.Records, r)
	}
	return page, nil
}
