package store

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"time"

	"patchdb/internal/telemetry"
)

// statusPage is the template input of /debug/status.
type statusPage struct {
	Now        string
	Uptime     string
	Version    uint64
	Records    int
	SnapAge    string
	ReloadErr  string
	ReloadAt   string
	QPS5m      string
	P50        string
	P99        string
	ErrorRate  string
	Healthy    bool
	Objectives []telemetry.Verdict
	Endpoints  []endpointRow
}

// endpointRow is one per-endpoint latency line of the status table.
type endpointRow struct {
	Endpoint string
	Count    uint64
	P50      string
	P99      string
}

// statusTemplate is the whole dashboard: one self-contained HTML page with
// inline styles, no external assets, so it renders from an air-gapped
// operator laptop as well as from a browser next to the pod.
var statusTemplate = template.Must(template.New("status").Funcs(template.FuncMap{
	"mulf": func(a, b float64) float64 { return a * b },
}).Parse(`<!DOCTYPE html>
<html><head><title>patchdb-serve status</title>
<style>
body{font-family:system-ui,sans-serif;margin:2em;max-width:60em}
h1{font-size:1.4em} h2{font-size:1.1em;margin-top:1.5em}
table{border-collapse:collapse;margin-top:.5em}
td,th{border:1px solid #bbb;padding:.3em .8em;text-align:left}
.ok{color:#0a0} .bad{color:#c00;font-weight:bold}
.kv td:first-child{color:#555}
</style></head><body>
<h1>patchdb-serve {{if .Healthy}}<span class="ok">healthy</span>{{else}}<span class="bad">burning error budget</span>{{end}}</h1>
<table class="kv">
<tr><td>time</td><td>{{.Now}}</td></tr>
<tr><td>uptime</td><td>{{.Uptime}}</td></tr>
<tr><td>snapshot version</td><td>{{.Version}}</td></tr>
<tr><td>snapshot records</td><td>{{.Records}}</td></tr>
<tr><td>snapshot age</td><td>{{.SnapAge}}</td></tr>
{{if .ReloadAt}}<tr><td>last reload</td><td>{{.ReloadAt}}</td></tr>{{end}}
{{if .ReloadErr}}<tr><td>last reload error</td><td class="bad">{{.ReloadErr}}</td></tr>{{end}}
<tr><td>QPS (5m)</td><td>{{.QPS5m}}</td></tr>
<tr><td>latency p50 / p99</td><td>{{.P50}} / {{.P99}}</td></tr>
<tr><td>error rate (5m)</td><td>{{.ErrorRate}}</td></tr>
</table>
<h2>Objectives</h2>
<table>
<tr><th>SLO</th><th>target</th><th>state</th><th>windows (burn rate)</th></tr>
{{range .Objectives}}<tr><td>{{.Name}}{{if .Threshold}} ≤ {{.Threshold}}{{end}}</td><td>{{printf "%g%%" (mulf .Target 100)}}</td>
<td>{{if .Healthy}}<span class="ok">healthy</span>{{else}}<span class="bad">burning{{if .FastBurn}} (fast){{end}}{{if .SlowBurn}} (slow){{end}}</span>{{end}}</td>
<td>{{range .Windows}}{{.Window}}: {{printf "%.2f" .BurnRate}} {{end}}</td></tr>
{{end}}</table>
<h2>Endpoints</h2>
<table>
<tr><th>endpoint</th><th>requests</th><th>p50</th><th>p99</th></tr>
{{range .Endpoints}}<tr><td>{{.Endpoint}}</td><td>{{.Count}}</td><td>{{.P50}}</td><td>{{.P99}}</td></tr>
{{end}}</table>
<p>See <a href="/debug/slo">/debug/slo</a>, <a href="/debug/logs">/debug/logs</a>, <a href="/metrics">/metrics</a>.</p>
</body></html>
`))

// histogramQuantile estimates quantile q (0..1) from a cumulative-bucket
// snapshot by linear interpolation inside the target bucket; the overflow
// bucket clamps to the largest finite bound.
func histogramQuantile(h telemetry.HistogramSnapshot, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	cum := uint64(0)
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: no finite upper edge to interpolate toward.
			if len(h.Bounds) == 0 {
				return 0
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	if len(h.Bounds) == 0 {
		return 0
	}
	return h.Bounds[len(h.Bounds)-1]
}

// mergeHistograms sums compatible (same-bounds) histogram snapshots into one.
func mergeHistograms(hs []telemetry.HistogramSnapshot) telemetry.HistogramSnapshot {
	var out telemetry.HistogramSnapshot
	for _, h := range hs {
		if out.Counts == nil {
			out = telemetry.HistogramSnapshot{
				Bounds: h.Bounds,
				Counts: make([]uint64, len(h.Counts)),
			}
		}
		if len(h.Counts) != len(out.Counts) {
			continue
		}
		for i, c := range h.Counts {
			out.Counts[i] += c
		}
		out.Sum += h.Sum
		out.Count += h.Count
	}
	return out
}

// statusHandler renders the operator dashboard.
func (s *api) statusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := s.now()
		h := s.store.Health()
		page := statusPage{
			Now:        now.UTC().Format(time.RFC3339),
			Uptime:     now.Sub(s.started).Round(time.Second).String(),
			Version:    h.Version,
			Records:    h.Records,
			SnapAge:    "never loaded",
			ReloadErr:  h.LastReloadError,
			Healthy:    true,
			Objectives: s.slos.Evaluate(),
		}
		if !h.LoadedAt.IsZero() {
			page.SnapAge = now.Sub(h.LoadedAt).Round(time.Second).String()
		}
		if !h.LastReloadAt.IsZero() {
			page.ReloadAt = h.LastReloadAt.UTC().Format(time.RFC3339)
		}
		for _, v := range page.Objectives {
			if !v.Healthy {
				page.Healthy = false
			}
			if v.Threshold != "" {
				continue // QPS/error rate come from the availability objective
			}
			for _, wb := range v.Windows {
				if wb.Window == (5 * time.Minute).String() {
					page.QPS5m = fmt.Sprintf("%.2f", float64(wb.Total)/(5*time.Minute).Seconds())
					page.ErrorRate = fmt.Sprintf("%.3f%%", wb.ErrorRate*100)
				}
			}
		}
		var all []telemetry.HistogramSnapshot
		perEndpoint := map[string]telemetry.HistogramSnapshot{}
		for _, p := range s.reg.Snapshot() {
			if p.Name != MetricRequestSeconds || p.Histogram == nil {
				continue
			}
			all = append(all, *p.Histogram)
			for _, l := range p.Labels {
				if l.Key == "endpoint" {
					perEndpoint[l.Value] = *p.Histogram
				}
			}
		}
		merged := mergeHistograms(all)
		page.P50 = formatSeconds(histogramQuantile(merged, 0.50))
		page.P99 = formatSeconds(histogramQuantile(merged, 0.99))
		names := make([]string, 0, len(perEndpoint))
		for name := range perEndpoint {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			eh := perEndpoint[name]
			page.Endpoints = append(page.Endpoints, endpointRow{
				Endpoint: name,
				Count:    eh.Count,
				P50:      formatSeconds(histogramQuantile(eh, 0.50)),
				P99:      formatSeconds(histogramQuantile(eh, 0.99)),
			})
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := statusTemplate.Execute(w, page); err != nil {
			// Headers are out; the broken page is its own error report.
			_ = err
		}
	})
}

// formatSeconds renders a duration-in-seconds float compactly (ms under 1s).
func formatSeconds(s float64) string {
	if s < 1 {
		return fmt.Sprintf("%.1fms", s*1000)
	}
	return fmt.Sprintf("%.3fs", s)
}
