package store

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"patchdb/internal/telemetry"
)

func testAPI(t *testing.T, hub *telemetry.Hub, reload func() (*Snapshot, error)) (*Store, http.Handler) {
	t.Helper()
	st := New(4, hub)
	st.Load(testDataset(60, "v1"))
	return st, NewHandler(st, hub, reload)
}

func get(t *testing.T, h http.Handler, method, target string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(method, target, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

// TestHandlerStatusTable covers the 2xx/4xx surface of every endpoint.
func TestHandlerStatusTable(t *testing.T) {
	_, h := testAPI(t, nil, nil)
	cases := []struct {
		method, target string
		wantCode       int
		wantBody       string // substring
	}{
		{"GET", "/v1/patch/commit-0000", http.StatusOK, `"commit-0000"`},
		{"GET", "/v1/patch/unknown", http.StatusNotFound, "no patch"},
		{"GET", "/v1/cve/CVE-2020-00000", http.StatusOK, `"records"`},
		{"GET", "/v1/cve/CVE-1999-00000", http.StatusNotFound, "no patches"},
		{"GET", "/v1/patches", http.StatusOK, `"records"`},
		{"GET", "/v1/patches?source=nvd&security=true&limit=5", http.StatusOK, `"next_cursor"`},
		{"GET", "/v1/patches?security=maybe", http.StatusBadRequest, "not a boolean"},
		{"GET", "/v1/patches?pattern=boundcheck", http.StatusBadRequest, "pattern"},
		{"GET", "/v1/patches?pattern=99", http.StatusBadRequest, "out of range"},
		{"GET", "/v1/patches?limit=nope", http.StatusBadRequest, "not an integer"},
		{"GET", "/v1/patches?limit=100000", http.StatusBadRequest, "out of range"},
		{"GET", "/v1/patches?source=bitbucket", http.StatusBadRequest, "unknown source"},
		{"GET", "/v1/stats", http.StatusOK, `"shards": 4`},
		{"GET", "/v1/distribution", http.StatusOK, `"distribution"`},
		{"GET", "/healthz", http.StatusOK, `"ok"`},
		{"POST", "/reload", http.StatusNotImplemented, "no reload source"},
		{"GET", "/v1/nonexistent", http.StatusNotFound, ""},
		{"POST", "/v1/patches", http.StatusMethodNotAllowed, ""},
		{"GET", "/reload", http.StatusMethodNotAllowed, ""},
	}
	for _, c := range cases {
		code, body := get(t, h, c.method, c.target)
		if code != c.wantCode {
			t.Errorf("%s %s: code %d, want %d (body %q)", c.method, c.target, code, c.wantCode, body)
		}
		if c.wantBody != "" && !strings.Contains(body, c.wantBody) {
			t.Errorf("%s %s: body %q missing %q", c.method, c.target, body, c.wantBody)
		}
	}
}

func TestHandlerPaginationAndFilters(t *testing.T) {
	_, h := testAPI(t, nil, nil)
	code, body := get(t, h, "GET", "/v1/patches?source=nvd&limit=4")
	if code != http.StatusOK {
		t.Fatalf("code %d: %s", code, body)
	}
	var page Page
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Records) != 4 || page.NextCursor == "" {
		t.Fatalf("page = %d records, cursor %q", len(page.Records), page.NextCursor)
	}
	for _, r := range page.Records {
		if r.Source != "nvd" {
			t.Errorf("filtered page contains source %q", r.Source)
		}
	}
	// Follow the cursor: the next page starts strictly after the last.
	code, body = get(t, h, "GET", "/v1/patches?source=nvd&limit=100&cursor="+page.NextCursor)
	if code != http.StatusOK {
		t.Fatalf("cursor page code %d", code)
	}
	var rest Page
	if err := json.Unmarshal([]byte(body), &rest); err != nil {
		t.Fatal(err)
	}
	if len(rest.Records) == 0 || rest.Records[0].ID <= page.Records[3].ID {
		t.Errorf("cursor continuation wrong: first=%v", rest.Records)
	}
	if len(page.Records)+len(rest.Records) != 15 {
		t.Errorf("nvd records across pages = %d, want 15", len(page.Records)+len(rest.Records))
	}
}

func TestHandlerReload(t *testing.T) {
	hub := telemetry.NewHub()
	var st *Store
	reload := func() (*Snapshot, error) { return st.Load(testDataset(30, "v2")), nil }
	st, h := testAPI(t, hub, reload)

	code, body := get(t, h, "POST", "/reload")
	if code != http.StatusOK {
		t.Fatalf("reload code %d: %s", code, body)
	}
	var resp struct {
		Version uint64 `json:"version"`
		Records int    `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != 2 || resp.Records != 30 {
		t.Errorf("reload response = %+v", resp)
	}
	if st.Snapshot().Records() != 30 {
		t.Error("reload did not swap the snapshot")
	}

	// A failing reload keeps the current snapshot and answers 500.
	failing := NewHandler(st, hub, func() (*Snapshot, error) {
		return nil, errors.New("disk gone")
	})
	code, body = get(t, failing, "POST", "/reload")
	if code != http.StatusInternalServerError || !strings.Contains(body, "disk gone") {
		t.Errorf("failing reload: %d %q", code, body)
	}
	if st.Snapshot().Records() != 30 {
		t.Error("failed reload disturbed the snapshot")
	}
}

// TestHandlerTelemetry: every request lands in the hub as a counter with
// endpoint+code labels, a latency observation, and a span.
func TestHandlerTelemetry(t *testing.T) {
	hub := telemetry.NewHub()
	_, h := testAPI(t, hub, nil)
	get(t, h, "GET", "/v1/patch/commit-0000")
	get(t, h, "GET", "/v1/patch/unknown")
	get(t, h, "GET", "/v1/stats")

	if v := hub.Registry.Counter(MetricRequests,
		telemetry.L("endpoint", "patch"), telemetry.L("code", "200")).Value(); v != 1 {
		t.Errorf("patch 200 counter = %v", v)
	}
	if v := hub.Registry.Counter(MetricRequests,
		telemetry.L("endpoint", "patch"), telemetry.L("code", "404")).Value(); v != 1 {
		t.Errorf("patch 404 counter = %v", v)
	}
	hist := hub.Registry.Histogram(MetricRequestSeconds, nil, telemetry.L("endpoint", "stats")).Snapshot()
	if hist.Count != 1 {
		t.Errorf("stats latency observations = %d", hist.Count)
	}
	spans := hub.Tracer.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	for _, s := range spans {
		if !strings.HasPrefix(s.Name, "serve.") {
			t.Errorf("span %q lacks the serve. prefix", s.Name)
		}
	}
}

// TestServeLifecycle exercises the real listener: bind, query over TCP,
// graceful Close.
func TestServeLifecycle(t *testing.T) {
	st := New(2, nil)
	st.Load(testDataset(10, "v1"))
	srv, err := Serve("127.0.0.1:0", NewHandler(st, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"records": 10`) {
		t.Errorf("stats over TCP: %d %q", resp.StatusCode, body)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil close: %v", err)
	}
}
