package store

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server is a running patch-store endpoint. It follows the
// telemetry.Server listener/Close pattern: Serve returns once the listener
// is bound (so the URL is immediately usable), the accept loop runs in a
// goroutine, and Close shuts down gracefully, waits for the loop, and
// surfaces the first serve error.
type Server struct {
	// URL is the server's base address, e.g. http://127.0.0.1:8080.
	URL string

	srv      *http.Server
	done     chan struct{}
	serveErr error
}

// Serve binds addr (e.g. ":8080" or "127.0.0.1:0") and serves handler until
// Close.
func Serve(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("store: listen %s: %w", addr, err)
	}
	s := &Server{
		URL:  "http://" + ln.Addr().String(),
		srv:  &http.Server{Handler: handler},
		done: make(chan struct{}),
	}
	//lint:ignore goroleak exit is bounded by Close: Shutdown unblocks Serve with ErrServerClosed and Close waits on <-s.done before returning
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Surfaced by Close: the serve goroutine has no other channel
			// back to the caller.
			s.serveErr = fmt.Errorf("store: serve: %w", err)
		}
	}()
	return s, nil
}

// Close drains in-flight requests (bounded by a 5s timeout), waits for the
// serve goroutine, and returns the first serve error if one occurred.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownErr := s.srv.Shutdown(ctx)
	<-s.done
	if s.serveErr != nil {
		return s.serveErr
	}
	return shutdownErr
}
