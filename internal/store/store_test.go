package store

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"patchdb"
)

// testDataset builds a deterministic dataset whose every record carries tag
// in its Repo suffix, so a reader can tell which dataset version a record
// came from.
func testDataset(n int, tag string) *patchdb.Dataset {
	ds := &patchdb.Dataset{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("commit-%04d", i)
		repo := fmt.Sprintf("repo-%d-%s", i%5, tag)
		switch i % 4 {
		case 0:
			ds.NVD = append(ds.NVD, patchdb.Record{
				ID: id, Repo: repo, CVE: fmt.Sprintf("CVE-2020-%05d", i/2), Security: true,
				Pattern: patchdb.Pattern(1 + i%patchdb.NumPatterns), Source: "nvd", Text: "t",
			})
		case 1:
			ds.Wild = append(ds.Wild, patchdb.Record{
				ID: id, Repo: repo, Security: true,
				Pattern: patchdb.Pattern(1 + i%patchdb.NumPatterns), Source: "wild", Text: "t",
			})
		case 2:
			ds.NonSecurity = append(ds.NonSecurity, patchdb.Record{
				ID: id, Repo: repo, Source: "wild", Text: "t",
			})
		default:
			ds.Synthetic = append(ds.Synthetic, patchdb.Record{
				ID: id, Repo: repo, Security: true,
				Pattern: patchdb.Pattern(1 + i%patchdb.NumPatterns), Source: "synthetic", Text: "t",
			})
		}
	}
	return ds
}

func TestStoreLookupAndStats(t *testing.T) {
	ds := testDataset(100, "v1")
	st := New(4, nil)
	if st.Snapshot().Records() != 0 {
		t.Errorf("fresh store serves %d records", st.Snapshot().Records())
	}
	sn := st.Load(ds)

	if sn.Records() != 100 {
		t.Fatalf("records = %d, want 100", sn.Records())
	}
	if sn.Version != 1 {
		t.Errorf("version = %d, want 1", sn.Version)
	}
	if got, want := sn.Stats(), ds.Stats(); got != want {
		t.Errorf("stats = %+v, want %+v", got, want)
	}
	r, ok := sn.Get("commit-0004")
	if !ok || r.Source != "nvd" || !r.Security {
		t.Errorf("Get commit-0004 = %+v, %v", r, ok)
	}
	if _, ok := sn.Get("no-such-commit"); ok {
		t.Error("Get returned a record for an unknown id")
	}
	if recs := sn.CVE("CVE-2020-00002"); len(recs) != 1 || recs[0].ID != "commit-0004" {
		t.Errorf("CVE lookup = %+v", recs)
	}
	if recs := sn.CVE("CVE-1999-99999"); len(recs) != 0 {
		t.Errorf("unknown CVE returned %d records", len(recs))
	}
	if !reflect.DeepEqual(sn.Distribution(), ds.Distribution()) {
		t.Error("distribution diverges from the dataset's")
	}
}

func TestStoreDuplicateIDsFirstWins(t *testing.T) {
	ds := &patchdb.Dataset{
		NVD:  []patchdb.Record{{ID: "x", Source: "nvd", Security: true, Text: "first"}},
		Wild: []patchdb.Record{{ID: "x", Source: "wild", Security: true, Text: "second"}},
	}
	sn := New(2, nil).Load(ds)
	if sn.Duplicates() != 1 {
		t.Errorf("duplicates = %d, want 1", sn.Duplicates())
	}
	if sn.Records() != 1 {
		t.Errorf("records = %d, want 1", sn.Records())
	}
	r, _ := sn.Get("x")
	if r.Text != "first" {
		t.Errorf("duplicate resolution kept %q, want the first occurrence", r.Text)
	}
}

// TestShardCountInvariance: every query must return identical results at 1,
// 4, and 16 shards.
func TestShardCountInvariance(t *testing.T) {
	ds := testDataset(200, "v1")
	secTrue := true
	queries := []Query{
		{},
		{Source: "nvd"},
		{Source: "wild", Security: &secTrue},
		{Pattern: 3},
		{Repo: "repo-2-v1"},
		{Limit: 7},
		{Cursor: "commit-0050", Limit: 10},
	}
	var want []Page
	for qi, shards := range []int{1, 4, 16} {
		sn := New(shards, nil).Load(ds)
		for i, q := range queries {
			page, err := sn.List(q)
			if err != nil {
				t.Fatalf("shards %d query %d: %v", shards, i, err)
			}
			if qi == 0 {
				want = append(want, page)
				continue
			}
			if !reflect.DeepEqual(page.Records, want[i].Records) || page.NextCursor != want[i].NextCursor {
				t.Errorf("shards %d query %d: results diverge from 1-shard run", shards, i)
			}
		}
		// Point lookups too.
		for _, id := range []string{"commit-0000", "commit-0123", "missing"} {
			r, ok := sn.Get(id)
			r1, ok1 := New(1, nil).Load(ds).Get(id)
			if ok != ok1 || r != r1 {
				t.Errorf("shards %d: Get(%q) diverges", shards, id)
			}
		}
	}
}

// TestPaginationWalksEverything: following cursors visits every matching
// record exactly once, in ID order.
func TestPaginationWalksEverything(t *testing.T) {
	ds := testDataset(137, "v1")
	sn := New(4, nil).Load(ds)
	seen := map[string]bool{}
	q := Query{Limit: 10}
	prev := ""
	for {
		page, err := sn.List(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range page.Records {
			if seen[r.ID] {
				t.Fatalf("record %s returned twice", r.ID)
			}
			if r.ID <= prev {
				t.Fatalf("record %s out of order after %s", r.ID, prev)
			}
			prev = r.ID
			seen[r.ID] = true
		}
		if page.NextCursor == "" {
			break
		}
		q.Cursor = page.NextCursor
	}
	if len(seen) != 137 {
		t.Errorf("pagination visited %d records, want 137", len(seen))
	}
}

// TestPaginationCursorStableAcrossReload: a cursor taken from one snapshot
// resumes at the same position after the store reloads the same dataset —
// no skipped and no duplicated records.
func TestPaginationCursorStableAcrossReload(t *testing.T) {
	st := New(4, nil)
	st.Load(testDataset(100, "v1"))

	first, err := st.Snapshot().List(Query{Limit: 30})
	if err != nil {
		t.Fatal(err)
	}
	if first.NextCursor == "" {
		t.Fatal("first page has no next cursor")
	}

	// Reload (same content, new snapshot/version), then continue the walk.
	sn2 := st.Load(testDataset(100, "v1"))
	if sn2.Version != 2 {
		t.Fatalf("reload version = %d, want 2", sn2.Version)
	}
	rest, err := sn2.List(Query{Cursor: first.NextCursor, Limit: MaxLimit})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(first.Records) + len(rest.Records); got != 100 {
		t.Errorf("pages across reload cover %d records, want 100", got)
	}
	if rest.Records[0].ID <= first.Records[len(first.Records)-1].ID {
		t.Error("continuation page overlaps the pre-reload page")
	}
}

func TestQueryValidation(t *testing.T) {
	sn := New(1, nil).Load(testDataset(10, "v1"))
	for _, q := range []Query{
		{Limit: -1},
		{Limit: MaxLimit + 1},
		{Source: "github"},
		{Pattern: patchdb.Pattern(patchdb.NumPatterns + 1)},
		{Pattern: -1},
	} {
		if _, err := sn.List(q); err == nil {
			t.Errorf("query %+v accepted", q)
		}
	}
	// Default limit fills in.
	page, err := sn.List(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Records) != 10 {
		t.Errorf("default query returned %d records", len(page.Records))
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.json")
	ds := testDataset(20, "v1")
	if err := ds.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	st := New(4, nil)
	sn, err := st.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Records() != 20 {
		t.Errorf("records = %d, want 20", sn.Records())
	}
	if _, err := st.LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

// TestSnapshotSwapRace drives concurrent readers through Get/List/Stats
// while the store flips between two dataset versions. Under -race this
// proves the swap is safe; the assertions prove isolation: every observed
// page is internally consistent (all records from one version, matching the
// snapshot's version parity), never a mix.
func TestSnapshotSwapRace(t *testing.T) {
	v1 := testDataset(120, "v1")
	v2 := testDataset(120, "v2")
	st := New(4, nil)
	st.Load(v1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sn := st.Snapshot()
				// Odd versions hold v1 ("-v1" repos), even versions v2.
				wantTag := "-v1"
				if sn.Version%2 == 0 {
					wantTag = "-v2"
				}
				page, err := sn.List(Query{Limit: 40})
				if err != nil {
					t.Errorf("list: %v", err)
					return
				}
				if len(page.Records) != 40 {
					t.Errorf("page has %d records, want 40", len(page.Records))
					return
				}
				for _, r := range page.Records {
					if r.Repo[len(r.Repo)-3:] != wantTag {
						t.Errorf("snapshot v%d contains record from %s", sn.Version, r.Repo)
						return
					}
				}
				if r, ok := sn.Get(fmt.Sprintf("commit-%04d", i%120)); !ok || r.Repo[len(r.Repo)-3:] != wantTag {
					t.Errorf("snapshot v%d Get sees %+v (ok=%v)", sn.Version, r, ok)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			st.Load(v2)
		} else {
			st.Load(v1)
		}
	}
	close(stop)
	wg.Wait()
}
