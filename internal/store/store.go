// Package store is PatchDB's serving layer: an immutable, sharded in-memory
// patch store holding versioned snapshots of a built dataset, designed so a
// rebuild never blocks a reader. A Store owns one atomic pointer to the
// current Snapshot; Load constructs a complete replacement snapshot off to
// the side and swaps it in with a single atomic store, so every query runs
// against exactly one consistent version — old or new, never a mix.
//
// Records are sharded by the FNV-1a hash of their ID (the commit hash), so
// point lookups touch one shard map and snapshot construction fans out
// across shards. Scan queries walk a globally ID-sorted spine, which makes
// results invariant under the shard count and keeps cursor pagination
// stable across reloads: the cursor is the last record ID of the previous
// page, and a reload of the same dataset resumes the scan at exactly the
// same position.
package store

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"patchdb"
	"patchdb/internal/telemetry"
)

// MetricReloadFailures counts LoadFile attempts that failed (unreadable or
// malformed artifact); the previous snapshot keeps serving through every one
// of them.
const MetricReloadFailures = "patchdb_store_reload_failures_total"

// DefaultShards is the shard count used when a Store is created with a
// non-positive one.
const DefaultShards = 4

// Store holds the current snapshot and swaps in new ones atomically.
// Readers call Snapshot and query the returned value; Load may run
// concurrently with any number of readers.
type Store struct {
	shards int
	reg    *telemetry.Registry

	// loadMu serializes Load calls so version numbers observed through the
	// snapshot pointer are monotonic.
	loadMu  sync.Mutex
	version atomic.Uint64
	snap    atomic.Pointer[Snapshot]

	// healthMu guards the reload-health record below: when the current
	// snapshot was swapped in, when the last (re)load was attempted, and the
	// last attempt's error ("" after a success). A failed reload never
	// touches the snapshot pointer — readers keep the previous version — so
	// this record is the only place the failure is visible.
	healthMu      sync.Mutex
	loadedAt      time.Time
	lastReloadAt  time.Time
	lastReloadErr string
}

// Health is a point-in-time view of the store's serving state, exposed on
// /healthz: the current snapshot's version and size, when it was loaded, and
// the outcome of the most recent load attempt.
type Health struct {
	Version uint64
	Records int
	// LoadedAt is when the current snapshot was swapped in (zero if the
	// store has only ever served its empty initial snapshot).
	LoadedAt time.Time
	// LastReloadAt is when the most recent load attempt ran, successful or
	// not (zero if none).
	LastReloadAt time.Time
	// LastReloadError is the most recent load attempt's error, "" if it
	// succeeded.
	LastReloadError string
}

// Health reports the store's current serving state.
func (s *Store) Health() Health {
	sn := s.Snapshot()
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	return Health{
		Version:         sn.Version,
		Records:         sn.Records(),
		LoadedAt:        s.loadedAt,
		LastReloadAt:    s.lastReloadAt,
		LastReloadError: s.lastReloadErr,
	}
}

// New creates an empty store with the given shard count (non-positive means
// DefaultShards). The store serves empty results until the first Load.
func New(shards int, hub *telemetry.Hub) *Store {
	if shards <= 0 {
		shards = DefaultShards
	}
	if hub == nil {
		hub = telemetry.NewHub()
	}
	s := &Store{shards: shards, reg: hub.Registry}
	s.snap.Store(buildSnapshot(&patchdb.Dataset{}, shards, 0))
	return s
}

// Shards returns the configured shard count.
func (s *Store) Shards() int { return s.shards }

// Snapshot returns the current immutable snapshot. The returned value never
// changes; hold it for as long as a consistent view is needed.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Load builds a snapshot of ds and atomically makes it current, returning
// the new snapshot. Readers holding the previous snapshot are unaffected.
func (s *Store) Load(ds *patchdb.Dataset) *Snapshot {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	sn := buildSnapshot(ds, s.shards, s.version.Add(1))
	s.snap.Store(sn)
	s.healthMu.Lock()
	now := time.Now()
	s.loadedAt = now
	s.lastReloadAt = now
	s.lastReloadErr = ""
	s.healthMu.Unlock()
	s.reg.Gauge("patchdb_store_snapshot_version").Set(float64(sn.Version))
	s.reg.Gauge("patchdb_store_records").Set(float64(len(sn.ids)))
	s.reg.Counter("patchdb_store_loads_total").Inc()
	return sn
}

// LoadFile reads a dataset artifact from disk and makes it current. On
// failure the store keeps serving the previous snapshot untouched; the
// failure is recorded in Health and the reload-failure counter so operators
// can see that the artifact on disk is newer than what is being served.
func (s *Store) LoadFile(path string) (*Snapshot, error) {
	ds, err := patchdb.LoadDatasetFile(path)
	if err != nil {
		err = fmt.Errorf("store: %w", err)
		s.healthMu.Lock()
		s.lastReloadAt = time.Now()
		s.lastReloadErr = err.Error()
		s.healthMu.Unlock()
		s.reg.Counter(MetricReloadFailures).Inc()
		return nil, err
	}
	return s.Load(ds), nil
}

// Snapshot is one immutable, fully indexed version of the dataset. All
// methods are safe for unlimited concurrent use; nothing mutates a snapshot
// after buildSnapshot returns it.
type Snapshot struct {
	// Version is the load generation that produced this snapshot (1 for the
	// first Load; 0 for the empty snapshot a fresh Store serves).
	Version uint64
	// Shards is the shard count the snapshot was built with.
	Shards int

	shards []shard
	// ids is the pagination spine: every record ID, sorted.
	ids []string
	// byCVE maps a CVE id to the sorted record IDs fixing it.
	byCVE map[string][]string
	// duplicates counts records dropped because an earlier component
	// already claimed their ID (first record wins).
	duplicates int

	stats patchdb.Stats
	dist  map[patchdb.Pattern]int
}

// shard is one FNV-1a partition of the record space.
type shard struct {
	byID map[string]*patchdb.Record
}

// shardOf picks the shard index for a record ID.
func shardOf(id string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(shards))
}

// buildSnapshot constructs the full index set for ds. The dataset's record
// slices are referenced, not copied — callers must not mutate ds after
// loading it (the CLIs never do; they load, swap, and drop the reference).
func buildSnapshot(ds *patchdb.Dataset, shards int, version uint64) *Snapshot {
	sn := &Snapshot{
		Version: version,
		Shards:  shards,
		shards:  make([]shard, shards),
		byCVE:   make(map[string][]string),
		stats:   ds.Stats(),
		dist:    ds.Distribution(),
	}
	for i := range sn.shards {
		sn.shards[i].byID = make(map[string]*patchdb.Record)
	}
	for _, component := range [][]patchdb.Record{ds.NVD, ds.Wild, ds.NonSecurity, ds.Synthetic} {
		for i := range component {
			r := &component[i]
			sh := &sn.shards[shardOf(r.ID, shards)]
			if _, ok := sh.byID[r.ID]; ok {
				sn.duplicates++
				continue
			}
			sh.byID[r.ID] = r
			sn.ids = append(sn.ids, r.ID)
			if r.CVE != "" {
				sn.byCVE[r.CVE] = append(sn.byCVE[r.CVE], r.ID)
			}
		}
	}
	sort.Strings(sn.ids)
	for _, ids := range sn.byCVE {
		sort.Strings(ids)
	}
	return sn
}

// Get returns the record with the given ID.
func (sn *Snapshot) Get(id string) (patchdb.Record, bool) {
	r, ok := sn.shards[shardOf(id, sn.Shards)].byID[id]
	if !ok {
		return patchdb.Record{}, false
	}
	return *r, true
}

// CVE returns every record fixing the given CVE, in ID order.
func (sn *Snapshot) CVE(cve string) []patchdb.Record {
	ids := sn.byCVE[cve]
	out := make([]patchdb.Record, 0, len(ids))
	for _, id := range ids {
		if r, ok := sn.Get(id); ok {
			out = append(out, r)
		}
	}
	return out
}

// Records returns the total number of records in the snapshot.
func (sn *Snapshot) Records() int { return len(sn.ids) }

// Duplicates returns how many records were dropped at load because another
// component already claimed their ID.
func (sn *Snapshot) Duplicates() int { return sn.duplicates }

// Stats returns the loaded dataset's component sizes.
func (sn *Snapshot) Stats() patchdb.Stats { return sn.stats }

// Distribution returns the loaded dataset's security-pattern distribution.
// The returned map is a copy; callers may mutate it.
func (sn *Snapshot) Distribution() map[patchdb.Pattern]int {
	out := make(map[patchdb.Pattern]int, len(sn.dist))
	for p, n := range sn.dist {
		out[p] = n
	}
	return out
}
