package store

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"patchdb/internal/telemetry"
)

// correlatedAPI builds a handler wired for correlation tests: sequential
// request IDs, a hub whose logger only fills the ring (no stderr noise), and
// a forced-slow reload hook so one request reliably crosses the slow
// threshold.
func correlatedAPI(t *testing.T, slowBy time.Duration) (*telemetry.Hub, http.Handler) {
	t.Helper()
	hub := telemetry.NewHub()
	hub.SetLogger(newRingLogger(hub.Logs))
	st := New(4, hub)
	st.Load(testDataset(20, "v1"))
	seq := 0
	reload := func() (*Snapshot, error) {
		time.Sleep(slowBy)
		return st.Load(testDataset(10, "v2")), nil
	}
	h := NewHandler(st, hub, reload,
		WithSlowRequestThreshold(10*time.Millisecond),
		WithRequestIDs(func() string { seq++; return fmt.Sprintf("test-%04d", seq) }),
	)
	return hub, h
}

// newRingLogger builds a logger that writes only into the given ring — no
// stderr noise under `go test`.
func newRingLogger(b *telemetry.LogBuffer) *slog.Logger {
	return slog.New(telemetry.NewLogHandler(telemetry.LogHandlerOptions{Buffer: b}))
}

// TestEndToEndCorrelation is the tentpole's acceptance test: one forced-slow
// request produces a response X-Request-ID, a warn log record, a span, and a
// /metrics exemplar that all carry the same trace ID.
func TestEndToEndCorrelation(t *testing.T) {
	hub, h := correlatedAPI(t, 20*time.Millisecond)
	if hub == nil {
		t.Fatal("correlatedAPI returned a nil hub")
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/reload", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("reload: code %d body %s", rr.Code, rr.Body.String())
	}

	id := rr.Header().Get("X-Request-ID")
	if id == "" {
		t.Fatal("response carries no X-Request-ID")
	}

	// Log record: a warn-level slow-request entry with the trace attached.
	var logged bool
	for _, rec := range hub.Logs.Records() {
		if rec.Msg == "slow request" && rec.Trace == id {
			logged = true
			if rec.Level != "WARN" {
				t.Errorf("slow request logged at %s, want WARN", rec.Level)
			}
			if rec.Attrs["endpoint"] != "reload" {
				t.Errorf("slow request attrs = %+v, want endpoint=reload", rec.Attrs)
			}
		}
	}
	if !logged {
		t.Errorf("no slow-request log record with trace %s in %+v", id, hub.Logs.Records())
	}

	// Span: the per-request span records the same trace.
	var spanned bool
	for _, sp := range hub.Tracer.Snapshot() {
		if sp.Name == "serve.reload" && sp.Trace == id {
			spanned = true
		}
	}
	if !spanned {
		t.Errorf("no serve.reload span with trace %s in %+v", id, hub.Tracer.Snapshot())
	}

	// Exemplar: the OpenMetrics exposition links a latency bucket to the
	// same trace.
	mrr := httptest.NewRecorder()
	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mreq.Header.Set("Accept", "application/openmetrics-text")
	hub.MetricsHandler().ServeHTTP(mrr, mreq)
	if !strings.Contains(mrr.Body.String(), fmt.Sprintf(`# {trace_id="%s"}`, id)) {
		t.Errorf("/metrics (openmetrics) has no exemplar for trace %s:\n%s", id, mrr.Body.String())
	}
}

// TestRequestIDContract checks the header handshake: a caller-supplied
// X-Request-ID is honored and echoed; absent one, sequential minted IDs
// appear; error bodies repeat the ID.
func TestRequestIDContract(t *testing.T) {
	_, h := correlatedAPI(t, 0)

	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	req.Header.Set("X-Request-ID", "caller-chosen-77")
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get("X-Request-ID"); got != "caller-chosen-77" {
		t.Errorf("supplied ID not echoed: got %q", got)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/patch/nope", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("code %d", rr.Code)
	}
	id := rr.Header().Get("X-Request-ID")
	if id == "" {
		t.Fatal("minted ID missing from error response headers")
	}
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID != id {
		t.Errorf("error body request_id = %q, want %q (the header)", body.RequestID, id)
	}
}

// TestHealthzSLOAndRequestID checks /healthz carries the request ID and the
// active objectives' verdict summaries.
func TestHealthzSLOAndRequestID(t *testing.T) {
	_, h := correlatedAPI(t, 0)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var resp struct {
		OK        bool     `json:"ok"`
		RequestID string   `json:"request_id"`
		SLO       []string `json:"slo"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Error("healthz not ok")
	}
	if resp.RequestID != rr.Header().Get("X-Request-ID") || resp.RequestID == "" {
		t.Errorf("healthz request_id = %q, header %q", resp.RequestID, rr.Header().Get("X-Request-ID"))
	}
	if len(resp.SLO) != 2 {
		t.Fatalf("healthz slo = %v, want the two default objectives", resp.SLO)
	}
	for _, s := range resp.SLO {
		if !strings.Contains(s, "healthy") {
			t.Errorf("quiet service objective not healthy: %q", s)
		}
	}
}

// TestDebugEndpoints smoke-tests /debug/slo, /debug/logs, and /debug/status
// through the full handler.
func TestDebugEndpoints(t *testing.T) {
	_, h := correlatedAPI(t, 0)
	// Generate a little traffic so the dashboard has something to show.
	for range 5 {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/patch/missing", nil))

	code, body := get(t, h, "GET", "/debug/slo")
	if code != http.StatusOK {
		t.Fatalf("/debug/slo code %d", code)
	}
	for _, want := range []string{`"availability"`, `"latency"`, `"burn_rate"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/slo missing %s:\n%s", want, body)
		}
	}

	code, body = get(t, h, "GET", "/debug/logs")
	if code != http.StatusOK || !strings.Contains(body, `"records"`) {
		t.Errorf("/debug/logs code %d body %s", code, body)
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/status", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/status code %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("/debug/status content type %q", ct)
	}
	page := rr.Body.String()
	for _, want := range []string{
		"patchdb-serve", "snapshot version", "Objectives", "availability",
		"Endpoints", "stats", "healthy",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/debug/status missing %q", want)
		}
	}
	// The /debug endpoints themselves must not consume SLO budget or appear
	// as endpoints: dashboard polling cannot page the operator.
	if strings.Contains(page, "debug") && strings.Contains(page, "<td>debug") {
		t.Errorf("/debug endpoints leaked into the endpoint table:\n%s", page)
	}
}

// TestSlowRequestThresholdDisabled checks a non-positive threshold silences
// slow-request records entirely.
func TestSlowRequestThresholdDisabled(t *testing.T) {
	hub := telemetry.NewHub()
	hub.SetLogger(newRingLogger(hub.Logs))
	st := New(4, hub)
	st.Load(testDataset(5, "v1"))
	h := NewHandler(st, hub, nil, WithSlowRequestThreshold(-1))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	for _, rec := range hub.Logs.Records() {
		if rec.Msg == "slow request" {
			t.Errorf("slow-request record emitted with logging disabled: %+v", rec)
		}
	}
}
