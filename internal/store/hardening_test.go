package store

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"patchdb/internal/telemetry"
)

func counterValue(hub *telemetry.Hub, name string) float64 {
	if hub == nil {
		return 0
	}
	total := 0.0
	for _, p := range hub.Registry.Snapshot() {
		if p.Name == name {
			total += p.Value
		}
	}
	return total
}

// TestHandlerPanicRecovery: a panicking handler answers 500, increments the
// panic counter, and leaves the server able to answer the next request.
func TestHandlerPanicRecovery(t *testing.T) {
	hub := telemetry.NewHub()
	st := New(4, hub)
	s := &api{store: st, reg: hub.Registry, tracer: hub.Tracer, timeout: DefaultRequestTimeout}
	h := s.instrument("boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})

	code, body := get(t, h, "GET", "/boom")
	if code != http.StatusInternalServerError || !strings.Contains(body, "internal error") {
		t.Fatalf("panicking handler: %d %q, want 500 internal error", code, body)
	}
	if n := counterValue(hub, MetricPanics); n != 1 {
		t.Errorf("%s = %v, want 1", MetricPanics, n)
	}
	// The process survived; an ordinary endpoint still works.
	ok := s.instrument("ok", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	if code, _ := get(t, ok, "GET", "/ok"); code != http.StatusOK {
		t.Errorf("request after panic: %d", code)
	}
}

// TestHandlerPanicAfterWrite: once the response has started, the recovery
// middleware cannot substitute a 500; it still counts the panic and the
// connection is left to the server to tear down.
func TestHandlerPanicAfterWrite(t *testing.T) {
	hub := telemetry.NewHub()
	st := New(4, hub)
	s := &api{store: st, reg: hub.Registry, tracer: hub.Tracer}
	h := s.instrument("late", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("after header")
	})
	code, _ := get(t, h, "GET", "/late")
	if code != http.StatusOK {
		t.Fatalf("code = %d, want the already-written 200", code)
	}
	if n := counterValue(hub, MetricPanics); n != 1 {
		t.Errorf("%s = %v, want 1", MetricPanics, n)
	}
}

// TestHandlerRequestDeadline: a handler that overruns the per-request
// timeout answers 503 with a JSON error body, and the overrun lands in the
// request counter under code 503.
func TestHandlerRequestDeadline(t *testing.T) {
	hub := telemetry.NewHub()
	st := New(4, hub)
	s := &api{store: st, reg: hub.Registry, tracer: hub.Tracer, timeout: 20 * time.Millisecond}
	h := s.instrument("slow", func(w http.ResponseWriter, r *http.Request) {
		// TimeoutHandler cancels the request context at the deadline.
		<-r.Context().Done()
	})
	code, body := get(t, h, "GET", "/slow")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503", code)
	}
	if !strings.Contains(body, "request deadline exceeded") {
		t.Errorf("body = %q", body)
	}
	found := false
	for _, p := range hub.Registry.Snapshot() {
		if p.Name != MetricRequests {
			continue
		}
		for _, l := range p.Labels {
			if l.Key == "code" && l.Value == "503" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no request counter with code=503")
	}
}

// TestHealthzReloadHealth: a failed LoadFile keeps the snapshot, surfaces
// last_reload_error on /healthz and in the failure counter; a successful
// load clears it.
func TestHealthzReloadHealth(t *testing.T) {
	hub := telemetry.NewHub()
	st := New(4, hub)
	st.Load(testDataset(10, "v1"))
	h := NewHandler(st, hub, nil)

	if _, err := st.LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("LoadFile of missing artifact succeeded")
	}
	if st.Snapshot().Records() != 10 {
		t.Fatal("failed reload disturbed the snapshot")
	}
	if n := counterValue(hub, MetricReloadFailures); n != 1 {
		t.Errorf("%s = %v, want 1", MetricReloadFailures, n)
	}
	code, body := get(t, h, "GET", "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz code %d", code)
	}
	for _, want := range []string{`"last_reload_error"`, "missing.json", `"snapshot_age_seconds"`, `"last_reload_at"`, `"records": 10`} {
		if !strings.Contains(body, want) {
			t.Errorf("healthz body %q missing %s", body, want)
		}
	}

	// A corrupt artifact is also a recorded failure, not a swap.
	bad := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadFile(bad); err == nil {
		t.Fatal("LoadFile of corrupt artifact succeeded")
	}
	if st.Snapshot().Records() != 10 {
		t.Fatal("corrupt reload disturbed the snapshot")
	}

	// Success clears the recorded failure.
	st.Load(testDataset(5, "v2"))
	_, body = get(t, h, "GET", "/healthz")
	if strings.Contains(body, "last_reload_error") {
		t.Errorf("healthz still reports a reload error after success: %q", body)
	}
	if !strings.Contains(body, `"version": 2`) {
		t.Errorf("healthz body %q missing version 2", body)
	}
	health := st.Health()
	if health.Version != 2 || health.Records != 5 || health.LastReloadError != "" || health.LoadedAt.IsZero() {
		t.Errorf("Health() = %+v", health)
	}
}
