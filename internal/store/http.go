package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"patchdb"
	"patchdb/internal/telemetry"
)

// Metric names published by the HTTP layer.
const (
	MetricRequests       = "patchdb_serve_requests_total"
	MetricRequestSeconds = "patchdb_serve_request_seconds"
	MetricReloads        = "patchdb_serve_reloads_total"
	// MetricPanics counts handler panics the recovery middleware converted
	// into 500s instead of letting them kill the serving process.
	MetricPanics = "patchdb_store_http_panics_total"
)

// DefaultRequestTimeout is the per-request handler deadline unless
// WithRequestTimeout overrides it. A handler that exceeds it gets a 503 and
// its (abandoned) output is discarded.
const DefaultRequestTimeout = 30 * time.Second

// DefaultSlowRequestThreshold is the latency above which a request earns a
// warn-level log record carrying its trace ID, unless
// WithSlowRequestThreshold overrides it.
const DefaultSlowRequestThreshold = 250 * time.Millisecond

// DefaultObjectives are the SLOs patchdb-serve ships with when WithSLOs is
// not supplied: 99.9% availability, and 99% of requests within the slow
// threshold.
func DefaultObjectives() []telemetry.Objective {
	return []telemetry.Objective{
		{Name: "availability", Target: 0.999},
		{Name: "latency", Target: 0.99, Threshold: DefaultSlowRequestThreshold},
	}
}

// HandlerOption customizes NewHandler.
type HandlerOption func(*api)

// WithRequestTimeout sets the per-request handler deadline; non-positive
// disables the deadline entirely.
func WithRequestTimeout(d time.Duration) HandlerOption {
	return func(s *api) { s.timeout = d }
}

// WithSLOs replaces the default objectives with a caller-built evaluator
// (e.g. one over an injected clock for deterministic verdicts in tests).
func WithSLOs(slos *telemetry.SLOSet) HandlerOption {
	return func(s *api) { s.slos = slos }
}

// WithSlowRequestThreshold sets the latency above which a request is logged
// as slow; non-positive disables slow-request logging.
func WithSlowRequestThreshold(d time.Duration) HandlerOption {
	return func(s *api) { s.slow = d }
}

// WithRequestIDs replaces the request-ID generator used when a request
// arrives without an X-Request-ID header (tests inject a sequential one).
func WithRequestIDs(next func() string) HandlerOption {
	return func(s *api) { s.newID = next }
}

// WithClock injects the clock behind snapshot-age and uptime arithmetic on
// the status page (latency measurement stays monotonic wall time).
func WithClock(now func() time.Time) HandlerOption {
	return func(s *api) { s.now = now }
}

// NewHandler builds the versioned query API over st:
//
//	GET  /v1/patch/{id}     one record by commit hash
//	GET  /v1/cve/{cve}      every record fixing a CVE
//	GET  /v1/patches        filtered scan with cursor pagination
//	                        (?source= &security= &pattern= &repo=
//	                         &cursor= &limit=)
//	GET  /v1/stats          component sizes, version, shard count
//	GET  /v1/distribution   Table V pattern distribution
//	POST /reload            swap in a fresh snapshot via the reload hook
//	GET  /healthz           liveness
//	GET  /debug/slo         current SLO burn-rate verdicts (JSON)
//	GET  /debug/logs        last N structured log records (JSON)
//	GET  /debug/status      self-contained HTML operator dashboard
//
// Every endpoint is instrumented into hub (request counters by endpoint and
// status code, latency histograms with per-request exemplars, one span per
// request), wrapped in a panic-recovery middleware (a panicking handler
// answers 500 and increments MetricPanics instead of killing the process),
// and bounded by a per-request deadline (DefaultRequestTimeout unless
// WithRequestTimeout overrides it; a handler that overruns answers 503).
// Every request is correlated: an inbound X-Request-ID is honored (minted
// otherwise), echoed in the response headers and error bodies, attached to
// the request's span, log records, and latency exemplar, and requests slower
// than the slow threshold log a warn record carrying it. The /debug/*
// endpoints are deliberately uninstrumented so dashboard polling cannot
// spend the error budget they report on. reload is invoked by POST /reload;
// pass nil to disable the endpoint (it then answers 501). A nil hub gets a
// private one.
func NewHandler(st *Store, hub *telemetry.Hub, reload func() (*Snapshot, error), opts ...HandlerOption) http.Handler {
	if hub == nil {
		hub = telemetry.NewHub()
	}
	s := &api{
		store:   st,
		reg:     hub.Registry,
		tracer:  hub.Tracer,
		logger:  hub.Logger(),
		reload:  reload,
		timeout: DefaultRequestTimeout,
		slow:    DefaultSlowRequestThreshold,
		newID:   telemetry.NewRequestID,
		now:     time.Now,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.slos == nil {
		s.slos = telemetry.NewSLOSet(hub.Registry, hub.Logger(), nil, DefaultObjectives()...)
	}
	s.started = s.now()
	hub.Registry.SetHelp(MetricRequests, "Requests served, by endpoint and status code.")
	hub.Registry.SetHelp(MetricRequestSeconds, "Request latency in seconds, by endpoint.")
	hub.Registry.SetHelp(MetricReloads, "Successful snapshot reloads.")
	hub.Registry.SetHelp(MetricPanics, "Handler panics converted into 500s.")
	hub.Registry.SetHelp("patchdb_slo_burn_rate", "Error-budget burn rate, by objective and window.")
	hub.Registry.SetHelp("patchdb_slo_healthy", "1 while no burn-rate pair fires for the objective.")
	mux := http.NewServeMux()
	mux.Handle("GET /v1/patch/{id}", s.instrument("patch", s.handlePatch))
	mux.Handle("GET /v1/cve/{cve}", s.instrument("cve", s.handleCVE))
	mux.Handle("GET /v1/patches", s.instrument("patches", s.handlePatches))
	mux.Handle("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.Handle("GET /v1/distribution", s.instrument("distribution", s.handleDistribution))
	mux.Handle("POST /reload", s.instrument("reload", s.handleReload))
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("GET /debug/slo", s.slos.Handler())
	mux.Handle("GET /debug/logs", hub.LogsHandler())
	mux.Handle("GET /debug/status", s.statusHandler())
	return mux
}

// api carries the handler dependencies: the store, the telemetry sinks
// (extracted from the hub once, at construction), and the reload hook.
type api struct {
	store   *Store
	reg     *telemetry.Registry
	tracer  *telemetry.Tracer
	logger  *slog.Logger
	slos    *telemetry.SLOSet
	reload  func() (*Snapshot, error)
	timeout time.Duration
	slow    time.Duration
	newID   func() string
	now     func() time.Time
	started time.Time
}

// statusWriter captures the status code for the request counter, and whether
// anything was written — the recovery middleware can only substitute a 500
// while the response has not started.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps an endpoint with request correlation (accept or mint an
// X-Request-ID, echo it, carry it on the context), a per-request span, a
// latency observation with the request's exemplar, SLO accounting, and a
// (endpoint, code) request counter, around the recovery and deadline
// middlewares (outermost to innermost: metrics → recover → timeout →
// handler, so a panic or deadline still lands in the counters). Requests
// slower than the slow threshold earn a warn log record with the trace ID.
func (s *api) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := s.reg.Histogram(MetricRequestSeconds, nil, telemetry.L("endpoint", endpoint))
	var inner http.Handler = h
	if s.timeout > 0 {
		inner = http.TimeoutHandler(inner, s.timeout, `{"error":"request deadline exceeded"}`)
	}
	inner = s.recoverPanics(endpoint, inner)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			// newID is always set by NewHandler; the fallback keeps
			// hand-assembled api values (tests) working.
			if s.newID != nil {
				id = s.newID()
			} else {
				id = telemetry.NewRequestID()
			}
		}
		w.Header().Set("X-Request-ID", id)
		ctx := telemetry.WithTraceID(r.Context(), id)
		ctx, span := s.tracer.Start(ctx, "serve."+endpoint)
		defer span.End()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		inner.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		hist.ObserveExemplar(elapsed.Seconds(), id)
		s.slos.RecordRequest(sw.status, elapsed)
		span.SetAttr("status", sw.status)
		s.reg.Counter(MetricRequests,
			telemetry.L("endpoint", endpoint),
			telemetry.L("code", strconv.Itoa(sw.status))).Inc()
		if s.slow > 0 && elapsed >= s.slow && s.logger != nil {
			s.logger.LogAttrs(ctx, slog.LevelWarn, "slow request",
				slog.String("endpoint", endpoint),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("elapsed", elapsed),
			)
		}
	})
}

// recoverPanics converts a handler panic into a 500 (when the response has
// not started) and counts it in MetricPanics, so one poisoned request cannot
// take down the serving process. http.TimeoutHandler re-raises its child's
// panic in this goroutine, so the middleware covers timed-out handlers too;
// http.ErrAbortHandler is the deliberate abort idiom and propagates.
func (s *api) recoverPanics(endpoint string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if err, ok := v.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(v)
			}
			s.reg.Counter(MetricPanics, telemetry.L("endpoint", endpoint)).Inc()
			if sw, ok := w.(*statusWriter); !ok || !sw.wrote {
				writeError(w, r, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// errorBody is the JSON shape of every non-2xx API response. RequestID
// repeats the response's X-Request-ID header so a client that only kept the
// body can still quote the correlation ID when reporting the failure.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	// The status line is already out; an encode failure here can only be a
	// dead client, which the server loop surfaces on its own.
	_ = enc.Encode(v)
}

// writeError emits the error body with the request's correlation ID. The ID
// comes from the context, not the response headers: http.TimeoutHandler
// hands inner handlers a private header map, so the X-Request-ID set by the
// instrument middleware is not visible through w here.
func writeError(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{
		Error:     fmt.Sprintf(format, args...),
		RequestID: telemetry.TraceIDFromContext(r.Context()),
	})
}

func (s *api) handlePatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Snapshot().Get(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, "no patch with id %q", id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// cveResponse is the /v1/cve/{cve} payload.
type cveResponse struct {
	CVE     string           `json:"cve"`
	Records []patchdb.Record `json:"records"`
	Version uint64           `json:"version"`
}

func (s *api) handleCVE(w http.ResponseWriter, r *http.Request) {
	cve := r.PathValue("cve")
	sn := s.store.Snapshot()
	recs := sn.CVE(cve)
	if len(recs) == 0 {
		writeError(w, r, http.StatusNotFound, "no patches for %q", cve)
		return
	}
	writeJSON(w, http.StatusOK, cveResponse{CVE: cve, Records: recs, Version: sn.Version})
}

// parseQuery maps the /v1/patches URL parameters onto a Query, reporting
// the first malformed parameter.
func parseQuery(r *http.Request) (Query, error) {
	q := Query{
		Source: r.URL.Query().Get("source"),
		Repo:   r.URL.Query().Get("repo"),
		Cursor: r.URL.Query().Get("cursor"),
	}
	if v := r.URL.Query().Get("security"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return q, fmt.Errorf("security=%q is not a boolean", v)
		}
		q.Security = &b
	}
	if v := r.URL.Query().Get("pattern"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return q, fmt.Errorf("pattern=%q is not a pattern class number", v)
		}
		q.Pattern = patchdb.Pattern(n)
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return q, fmt.Errorf("limit=%q is not an integer", v)
		}
		q.Limit = n
	}
	return q, nil
}

func (s *api) handlePatches(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	page, err := s.store.Snapshot().List(q)
	if err != nil {
		if errors.Is(err, ErrBadQuery) {
			writeError(w, r, http.StatusBadRequest, "%v", err)
			return
		}
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	patchdb.Stats
	Records    int    `json:"records"`
	Duplicates int    `json:"duplicates,omitempty"`
	Version    uint64 `json:"version"`
	Shards     int    `json:"shards"`
}

func (s *api) handleStats(w http.ResponseWriter, r *http.Request) {
	sn := s.store.Snapshot()
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:      sn.Stats(),
		Records:    sn.Records(),
		Duplicates: sn.Duplicates(),
		Version:    sn.Version,
		Shards:     sn.Shards,
	})
}

// distributionEntry is one pattern class row of /v1/distribution.
type distributionEntry struct {
	Pattern     int    `json:"pattern"`
	Description string `json:"description"`
	Count       int    `json:"count"`
}

// distributionResponse is the /v1/distribution payload, in pattern order.
type distributionResponse struct {
	Distribution []distributionEntry `json:"distribution"`
	Version      uint64              `json:"version"`
}

func (s *api) handleDistribution(w http.ResponseWriter, r *http.Request) {
	sn := s.store.Snapshot()
	dist := sn.Distribution()
	resp := distributionResponse{Version: sn.Version}
	for p := patchdb.Pattern(1); int(p) <= patchdb.NumPatterns; p++ {
		resp.Distribution = append(resp.Distribution, distributionEntry{
			Pattern:     int(p),
			Description: p.String(),
			Count:       dist[p],
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// reloadResponse is the POST /reload payload.
type reloadResponse struct {
	Version uint64        `json:"version"`
	Stats   patchdb.Stats `json:"stats"`
	Records int           `json:"records"`
}

func (s *api) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.reload == nil {
		writeError(w, r, http.StatusNotImplemented, "no reload source configured")
		return
	}
	sn, err := s.reload()
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, "reload: %v", err)
		return
	}
	s.reg.Counter(MetricReloads).Inc()
	writeJSON(w, http.StatusOK, reloadResponse{Version: sn.Version, Stats: sn.Stats(), Records: sn.Records()})
}

// healthResponse is the /healthz payload: liveness plus reload health, so a
// probe can tell "serving, but the artifact on disk no longer loads" from
// "serving the latest snapshot".
type healthResponse struct {
	OK      bool   `json:"ok"`
	Version uint64 `json:"version"`
	Records int    `json:"records"`
	// SnapshotAgeSeconds is how long the current snapshot has been serving
	// (-1 until the first successful load).
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// LastReloadError surfaces a failed reload (POST /reload or SIGHUP)
	// while the previous snapshot keeps serving; "" once a reload succeeds.
	LastReloadError string `json:"last_reload_error,omitempty"`
	// LastReloadAt is the RFC 3339 time of the most recent load attempt,
	// successful or not (omitted if none).
	LastReloadAt string `json:"last_reload_at,omitempty"`
	// RequestID echoes the response's X-Request-ID header, making the
	// correlation contract visible to probes.
	RequestID string `json:"request_id,omitempty"`
	// SLO summarizes each active objective's current burn-rate verdict.
	SLO []string `json:"slo,omitempty"`
}

func (s *api) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.store.Health()
	resp := healthResponse{
		OK:                 true,
		Version:            h.Version,
		Records:            h.Records,
		SnapshotAgeSeconds: -1,
		LastReloadError:    h.LastReloadError,
		RequestID:          telemetry.TraceIDFromContext(r.Context()),
		SLO:                telemetry.Summary(s.slos.Evaluate()),
	}
	if !h.LoadedAt.IsZero() {
		resp.SnapshotAgeSeconds = time.Since(h.LoadedAt).Seconds()
	}
	if !h.LastReloadAt.IsZero() {
		resp.LastReloadAt = h.LastReloadAt.UTC().Format(time.RFC3339Nano)
	}
	writeJSON(w, http.StatusOK, resp)
}
