package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"patchdb"
	"patchdb/internal/telemetry"
)

// Metric names published by the HTTP layer.
const (
	MetricRequests       = "patchdb_serve_requests_total"
	MetricRequestSeconds = "patchdb_serve_request_seconds"
	MetricReloads        = "patchdb_serve_reloads_total"
	// MetricPanics counts handler panics the recovery middleware converted
	// into 500s instead of letting them kill the serving process.
	MetricPanics = "patchdb_store_http_panics_total"
)

// DefaultRequestTimeout is the per-request handler deadline unless
// WithRequestTimeout overrides it. A handler that exceeds it gets a 503 and
// its (abandoned) output is discarded.
const DefaultRequestTimeout = 30 * time.Second

// HandlerOption customizes NewHandler.
type HandlerOption func(*api)

// WithRequestTimeout sets the per-request handler deadline; non-positive
// disables the deadline entirely.
func WithRequestTimeout(d time.Duration) HandlerOption {
	return func(s *api) { s.timeout = d }
}

// NewHandler builds the versioned query API over st:
//
//	GET  /v1/patch/{id}     one record by commit hash
//	GET  /v1/cve/{cve}      every record fixing a CVE
//	GET  /v1/patches        filtered scan with cursor pagination
//	                        (?source= &security= &pattern= &repo=
//	                         &cursor= &limit=)
//	GET  /v1/stats          component sizes, version, shard count
//	GET  /v1/distribution   Table V pattern distribution
//	POST /reload            swap in a fresh snapshot via the reload hook
//	GET  /healthz           liveness
//
// Every endpoint is instrumented into hub (request counters by endpoint and
// status code, latency histograms, one span per request), wrapped in a
// panic-recovery middleware (a panicking handler answers 500 and increments
// MetricPanics instead of killing the process), and bounded by a per-request
// deadline (DefaultRequestTimeout unless WithRequestTimeout overrides it; a
// handler that overruns answers 503). reload is invoked by POST /reload;
// pass nil to disable the endpoint (it then answers 501). A nil hub gets a
// private one.
func NewHandler(st *Store, hub *telemetry.Hub, reload func() (*Snapshot, error), opts ...HandlerOption) http.Handler {
	if hub == nil {
		hub = telemetry.NewHub()
	}
	s := &api{store: st, reg: hub.Registry, tracer: hub.Tracer, reload: reload, timeout: DefaultRequestTimeout}
	for _, opt := range opts {
		opt(s)
	}
	mux := http.NewServeMux()
	mux.Handle("GET /v1/patch/{id}", s.instrument("patch", s.handlePatch))
	mux.Handle("GET /v1/cve/{cve}", s.instrument("cve", s.handleCVE))
	mux.Handle("GET /v1/patches", s.instrument("patches", s.handlePatches))
	mux.Handle("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.Handle("GET /v1/distribution", s.instrument("distribution", s.handleDistribution))
	mux.Handle("POST /reload", s.instrument("reload", s.handleReload))
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	return mux
}

// api carries the handler dependencies: the store, the telemetry sinks
// (extracted from the hub once, at construction), and the reload hook.
type api struct {
	store   *Store
	reg     *telemetry.Registry
	tracer  *telemetry.Tracer
	reload  func() (*Snapshot, error)
	timeout time.Duration
}

// statusWriter captures the status code for the request counter, and whether
// anything was written — the recovery middleware can only substitute a 500
// while the response has not started.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps an endpoint with a per-request span, a latency
// observation, and a (endpoint, code) request counter, around the recovery
// and deadline middlewares (outermost to innermost: metrics → recover →
// timeout → handler, so a panic or deadline still lands in the counters).
func (s *api) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	hist := s.reg.Histogram(MetricRequestSeconds, nil, telemetry.L("endpoint", endpoint))
	var inner http.Handler = h
	if s.timeout > 0 {
		inner = http.TimeoutHandler(inner, s.timeout, `{"error":"request deadline exceeded"}`)
	}
	inner = s.recoverPanics(endpoint, inner)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, span := s.tracer.Start(r.Context(), "serve."+endpoint)
		defer span.End()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		inner.ServeHTTP(sw, r.WithContext(ctx))
		hist.Observe(time.Since(start).Seconds())
		span.SetAttr("status", sw.status)
		s.reg.Counter(MetricRequests,
			telemetry.L("endpoint", endpoint),
			telemetry.L("code", strconv.Itoa(sw.status))).Inc()
	})
}

// recoverPanics converts a handler panic into a 500 (when the response has
// not started) and counts it in MetricPanics, so one poisoned request cannot
// take down the serving process. http.TimeoutHandler re-raises its child's
// panic in this goroutine, so the middleware covers timed-out handlers too;
// http.ErrAbortHandler is the deliberate abort idiom and propagates.
func (s *api) recoverPanics(endpoint string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if err, ok := v.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(v)
			}
			s.reg.Counter(MetricPanics, telemetry.L("endpoint", endpoint)).Inc()
			if sw, ok := w.(*statusWriter); !ok || !sw.wrote {
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// errorBody is the JSON shape of every non-2xx API response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	// The status line is already out; an encode failure here can only be a
	// dead client, which the server loop surfaces on its own.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *api) handlePatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Snapshot().Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no patch with id %q", id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// cveResponse is the /v1/cve/{cve} payload.
type cveResponse struct {
	CVE     string           `json:"cve"`
	Records []patchdb.Record `json:"records"`
	Version uint64           `json:"version"`
}

func (s *api) handleCVE(w http.ResponseWriter, r *http.Request) {
	cve := r.PathValue("cve")
	sn := s.store.Snapshot()
	recs := sn.CVE(cve)
	if len(recs) == 0 {
		writeError(w, http.StatusNotFound, "no patches for %q", cve)
		return
	}
	writeJSON(w, http.StatusOK, cveResponse{CVE: cve, Records: recs, Version: sn.Version})
}

// parseQuery maps the /v1/patches URL parameters onto a Query, reporting
// the first malformed parameter.
func parseQuery(r *http.Request) (Query, error) {
	q := Query{
		Source: r.URL.Query().Get("source"),
		Repo:   r.URL.Query().Get("repo"),
		Cursor: r.URL.Query().Get("cursor"),
	}
	if v := r.URL.Query().Get("security"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return q, fmt.Errorf("security=%q is not a boolean", v)
		}
		q.Security = &b
	}
	if v := r.URL.Query().Get("pattern"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return q, fmt.Errorf("pattern=%q is not a pattern class number", v)
		}
		q.Pattern = patchdb.Pattern(n)
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return q, fmt.Errorf("limit=%q is not an integer", v)
		}
		q.Limit = n
	}
	return q, nil
}

func (s *api) handlePatches(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	page, err := s.store.Snapshot().List(q)
	if err != nil {
		if errors.Is(err, ErrBadQuery) {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	patchdb.Stats
	Records    int    `json:"records"`
	Duplicates int    `json:"duplicates,omitempty"`
	Version    uint64 `json:"version"`
	Shards     int    `json:"shards"`
}

func (s *api) handleStats(w http.ResponseWriter, r *http.Request) {
	sn := s.store.Snapshot()
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:      sn.Stats(),
		Records:    sn.Records(),
		Duplicates: sn.Duplicates(),
		Version:    sn.Version,
		Shards:     sn.Shards,
	})
}

// distributionEntry is one pattern class row of /v1/distribution.
type distributionEntry struct {
	Pattern     int    `json:"pattern"`
	Description string `json:"description"`
	Count       int    `json:"count"`
}

// distributionResponse is the /v1/distribution payload, in pattern order.
type distributionResponse struct {
	Distribution []distributionEntry `json:"distribution"`
	Version      uint64              `json:"version"`
}

func (s *api) handleDistribution(w http.ResponseWriter, r *http.Request) {
	sn := s.store.Snapshot()
	dist := sn.Distribution()
	resp := distributionResponse{Version: sn.Version}
	for p := patchdb.Pattern(1); int(p) <= patchdb.NumPatterns; p++ {
		resp.Distribution = append(resp.Distribution, distributionEntry{
			Pattern:     int(p),
			Description: p.String(),
			Count:       dist[p],
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// reloadResponse is the POST /reload payload.
type reloadResponse struct {
	Version uint64        `json:"version"`
	Stats   patchdb.Stats `json:"stats"`
	Records int           `json:"records"`
}

func (s *api) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.reload == nil {
		writeError(w, http.StatusNotImplemented, "no reload source configured")
		return
	}
	sn, err := s.reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload: %v", err)
		return
	}
	s.reg.Counter(MetricReloads).Inc()
	writeJSON(w, http.StatusOK, reloadResponse{Version: sn.Version, Stats: sn.Stats(), Records: sn.Records()})
}

// healthResponse is the /healthz payload: liveness plus reload health, so a
// probe can tell "serving, but the artifact on disk no longer loads" from
// "serving the latest snapshot".
type healthResponse struct {
	OK      bool   `json:"ok"`
	Version uint64 `json:"version"`
	Records int    `json:"records"`
	// SnapshotAgeSeconds is how long the current snapshot has been serving
	// (-1 until the first successful load).
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// LastReloadError surfaces a failed reload (POST /reload or SIGHUP)
	// while the previous snapshot keeps serving; "" once a reload succeeds.
	LastReloadError string `json:"last_reload_error,omitempty"`
	// LastReloadAt is the RFC 3339 time of the most recent load attempt,
	// successful or not (omitted if none).
	LastReloadAt string `json:"last_reload_at,omitempty"`
}

func (s *api) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.store.Health()
	resp := healthResponse{
		OK:                 true,
		Version:            h.Version,
		Records:            h.Records,
		SnapshotAgeSeconds: -1,
		LastReloadError:    h.LastReloadError,
	}
	if !h.LoadedAt.IsZero() {
		resp.SnapshotAgeSeconds = time.Since(h.LoadedAt).Seconds()
	}
	if !h.LastReloadAt.IsZero() {
		resp.LastReloadAt = h.LastReloadAt.UTC().Format(time.RFC3339Nano)
	}
	writeJSON(w, http.StatusOK, resp)
}
