// Package faults implements a deterministic, seed-driven fault-injecting
// http.Handler middleware. Wrapped around the simulated NVD service it
// reproduces the failure modes of a flaky upstream — rate limiting (429 +
// Retry-After), server errors (500), connection hangs, and truncated or
// corrupted response bodies — at configurable per-route rates, so every
// failure scenario of the crawl layer is replayable in tests and benches.
//
// Determinism: whether request number n for a given URL path faults, and
// with which class, is a pure function of (Seed, path, n). Per-path request
// counters make the decision independent of how concurrent requests
// interleave, which is what lets a fault-injected crawl stay byte-identical
// at any worker count.
package faults

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"sync"
	"time"

	"patchdb/internal/telemetry"
)

// The registry metric families the injector emits when its Config carries a
// telemetry registry.
const (
	// MetricRequests counts every request the injector observed.
	MetricRequests = "faults_requests_total"
	// MetricInjected counts injected faults, labeled by class.
	MetricInjected = "faults_injected_total"
)

// Class is one injected failure mode.
type Class string

const (
	// RateLimit responds 429 Too Many Requests with a Retry-After header.
	RateLimit Class = "rate-limit"
	// ServerError responds 500 Internal Server Error.
	ServerError Class = "server-error"
	// Hang stalls the request for HangFor, then drops the connection
	// without a response.
	Hang Class = "hang"
	// Truncate declares the full Content-Length but sends only half the
	// body before dropping the connection.
	Truncate Class = "truncate"
	// Corrupt mangles the response body (garbage prefix + broken hunk
	// headers) so feed decoding or patch parsing fails.
	Corrupt Class = "corrupt"
)

// AllClasses lists every fault class, in a fixed order (the order indexes
// the class-selection hash, so it is part of the determinism contract).
var AllClasses = []Class{RateLimit, ServerError, Hang, Truncate, Corrupt}

// Route subjects one URL path prefix to faults. The first matching route
// wins; paths matching no route pass through untouched.
type Route struct {
	// Prefix of the URL path this rule governs ("" matches every path).
	Prefix string
	// Rate is the per-request fault probability in [0, 1].
	Rate float64
	// Classes are the fault classes to draw from (nil = AllClasses).
	Classes []Class
}

// Config parameterizes an Injector.
type Config struct {
	// Seed drives every fault decision.
	Seed int64
	// Routes are the per-route fault rules.
	Routes []Route
	// RetryAfter is advertised on 429 responses (0 = default 25ms). It is
	// rendered in (possibly fractional) seconds.
	RetryAfter time.Duration
	// HangFor is how long a Hang stalls before the connection is dropped
	// (0 = default 50ms).
	HangFor time.Duration
	// MaxConsecutive caps consecutive faults per path: after that many in
	// a row the next request passes through, guaranteeing recovery under
	// a finite retry budget (0 = no cap).
	MaxConsecutive int
	// Registry, when non-nil, receives request and per-class injected-fault
	// counters (MetricRequests, MetricInjected).
	Registry *telemetry.Registry
}

// Stats is a snapshot of what the injector has done.
type Stats struct {
	// Requests is the total number of requests observed.
	Requests int
	// Faults counts injected faults by class.
	Faults map[Class]int
}

// Total sums the injected faults across classes.
func (s Stats) Total() int {
	n := 0
	for _, c := range s.Faults {
		n += c
	}
	return n
}

// String renders the snapshot compactly, classes in AllClasses order.
func (s Stats) String() string {
	parts := make([]string, 0, len(AllClasses))
	for _, c := range AllClasses {
		if n := s.Faults[c]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, n))
		}
	}
	if len(parts) == 0 {
		return fmt.Sprintf("%d requests, no faults", s.Requests)
	}
	return fmt.Sprintf("%d requests, %d faults (%s)", s.Requests, s.Total(), strings.Join(parts, " "))
}

// Injector injects faults into a wrapped handler per its Config.
type Injector struct {
	cfg Config

	mu          sync.Mutex
	seen        map[string]int // per-path request counter
	consecutive map[string]int // per-path consecutive-fault counter
	requests    int
	faults      map[Class]int
}

// New creates an injector.
func New(cfg Config) *Injector {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 25 * time.Millisecond
	}
	if cfg.HangFor <= 0 {
		cfg.HangFor = 50 * time.Millisecond
	}
	return &Injector{
		cfg:         cfg,
		seen:        make(map[string]int),
		consecutive: make(map[string]int),
		faults:      make(map[Class]int),
	}
}

// Wrap returns a handler that serves next, injecting faults per the config.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		class, fault := in.decide(r.URL.Path)
		if !fault {
			next.ServeHTTP(w, r)
			return
		}
		switch class {
		case RateLimit:
			w.Header().Set("Retry-After", fmt.Sprintf("%g", in.cfg.RetryAfter.Seconds()))
			http.Error(w, "injected rate limit", http.StatusTooManyRequests)
		case ServerError:
			http.Error(w, "injected server error", http.StatusInternalServerError)
		case Hang:
			select {
			case <-r.Context().Done():
			case <-time.After(in.cfg.HangFor):
			}
			panic(http.ErrAbortHandler) // drop the connection, no response
		case Truncate:
			rec := capture(next, r)
			body := rec.buf.Bytes()
			copyHeaders(w.Header(), rec.header)
			w.Header().Set("Content-Length", fmt.Sprint(len(body)))
			w.WriteHeader(rec.status)
			w.Write(body[:len(body)/2])
			// Push the partial body onto the wire before aborting; without
			// the flush net/http discards its buffer and the client sees no
			// response at all instead of a truncated one.
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler) // cut the stream mid-body
		case Corrupt:
			rec := capture(next, r)
			body := corruptBody(rec.buf.Bytes())
			copyHeaders(w.Header(), rec.header)
			w.Header().Set("Content-Length", fmt.Sprint(len(body)))
			w.WriteHeader(rec.status)
			w.Write(body)
		}
	})
}

// decide counts the request and draws the fault decision for it: pure in
// (Seed, path, per-path request number).
func (in *Injector) decide(path string) (Class, bool) {
	route := in.route(path)
	in.cfg.Registry.Counter(MetricRequests).Inc()

	in.mu.Lock()
	defer in.mu.Unlock()
	in.requests++
	in.seen[path]++
	n := in.seen[path]

	if route == nil || route.Rate <= 0 {
		in.consecutive[path] = 0
		return "", false
	}
	if in.cfg.MaxConsecutive > 0 && in.consecutive[path] >= in.cfg.MaxConsecutive {
		in.consecutive[path] = 0
		return "", false
	}
	if unitFloat(hashDraw(in.cfg.Seed, path, n, 0)) >= route.Rate {
		in.consecutive[path] = 0
		return "", false
	}
	classes := route.Classes
	if len(classes) == 0 {
		classes = AllClasses
	}
	class := classes[hashDraw(in.cfg.Seed, path, n, 1)%uint64(len(classes))]
	in.consecutive[path]++
	in.faults[class]++
	in.cfg.Registry.Counter(MetricInjected, telemetry.L("class", string(class))).Inc()
	return class, true
}

func (in *Injector) route(path string) *Route {
	for i := range in.cfg.Routes {
		if strings.HasPrefix(path, in.cfg.Routes[i].Prefix) {
			return &in.cfg.Routes[i]
		}
	}
	return nil
}

// Stats snapshots the injector's accounting.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := Stats{Requests: in.requests, Faults: make(map[Class]int, len(in.faults))}
	for c, n := range in.faults {
		out.Faults[c] = n
	}
	return out
}

// recorder buffers a handler's response so fault modes can rewrite it.
type recorder struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func capture(next http.Handler, r *http.Request) *recorder {
	rec := &recorder{header: make(http.Header), status: http.StatusOK}
	next.ServeHTTP(rec, r)
	return rec
}

func (rec *recorder) Header() http.Header         { return rec.header }
func (rec *recorder) WriteHeader(code int)        { rec.status = code }
func (rec *recorder) Write(p []byte) (int, error) { return rec.buf.Write(p) }

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if k == "Content-Length" {
			continue
		}
		dst[k] = append([]string(nil), vs...)
	}
}

// corruptBody mangles a response so it fails downstream validation: hunk
// headers lose their range sign (breaking patch parsing) and a binary
// garbage prefix breaks JSON decoding.
func corruptBody(body []byte) []byte {
	mangled := bytes.ReplaceAll(body, []byte("@@ -"), []byte("@@ ?"))
	out := make([]byte, 0, len(mangled)+16)
	out = append(out, []byte("\x00\xffcorrupted\xff\x00\n")...)
	return append(out, mangled...)
}

func hashDraw(seed int64, path string, n int, salt uint64) uint64 {
	h := fnv.New64a()
	var buf [24]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
		buf[8+i] = byte(uint64(n) >> (8 * i))
		buf[16+i] = byte(salt >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(path))
	return mix64(h.Sum64())
}

// mix64 is a murmur3-style finalizer: FNV alone avalanches weakly into the
// high bits unitFloat consumes.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
