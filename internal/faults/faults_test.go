package faults

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

const patchBody = "diff --git a/src/a.c b/src/a.c\n" +
	"--- a/src/a.c\n" +
	"+++ b/src/a.c\n" +
	"@@ -1,2 +1,2 @@\n" +
	" int x;\n" +
	"-int y;\n" +
	"+long y;\n"

// upstream is a healthy handler the injector wraps in every test.
func upstream() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, patchBody)
	})
}

func serve(t *testing.T, in *Injector) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(in.Wrap(upstream()))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, readErr := io.ReadAll(resp.Body)
	return resp, string(body), readErr
}

func TestNoFaultsPassesThrough(t *testing.T) {
	in := New(Config{Seed: 1}) // no routes at all
	srv := serve(t, in)
	resp, body, err := get(t, srv.URL+"/anything")
	if err != nil || resp.StatusCode != http.StatusOK || body != patchBody {
		t.Fatalf("passthrough broken: status=%v body=%q err=%v", resp, body, err)
	}
	if s := in.Stats(); s.Requests != 1 || s.Total() != 0 {
		t.Errorf("stats = %+v, want 1 request 0 faults", s)
	}
}

func TestZeroRatePassesThrough(t *testing.T) {
	in := New(Config{Seed: 1, Routes: []Route{{Rate: 0}}})
	srv := serve(t, in)
	for i := 0; i < 20; i++ {
		if _, body, err := get(t, srv.URL+"/p"); err != nil || body != patchBody {
			t.Fatalf("request %d faulted at rate 0: %v", i, err)
		}
	}
}

func TestRateLimitFault(t *testing.T) {
	in := New(Config{Seed: 1, Routes: []Route{{Rate: 1, Classes: []Class{RateLimit}}},
		RetryAfter: 50 * time.Millisecond})
	srv := serve(t, in)
	resp, _, err := get(t, srv.URL+"/p")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %s, want 429", resp.Status)
	}
	secs, err := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64)
	if err != nil || secs != 0.05 {
		t.Errorf("Retry-After = %q, want 0.05 seconds", resp.Header.Get("Retry-After"))
	}
}

func TestServerErrorFault(t *testing.T) {
	in := New(Config{Seed: 1, Routes: []Route{{Rate: 1, Classes: []Class{ServerError}}}})
	srv := serve(t, in)
	resp, _, err := get(t, srv.URL+"/p")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %s, want 500", resp.Status)
	}
}

func TestHangFaultDropsConnection(t *testing.T) {
	in := New(Config{Seed: 1, Routes: []Route{{Rate: 1, Classes: []Class{Hang}}},
		HangFor: 20 * time.Millisecond})
	srv := serve(t, in)
	start := time.Now()
	_, _, err := get(t, srv.URL+"/p")
	if err == nil {
		t.Fatal("hang fault returned a response")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond || elapsed > 5*time.Second {
		t.Errorf("hang lasted %s, want ~20ms", elapsed)
	}
}

func TestTruncateFaultCutsBody(t *testing.T) {
	in := New(Config{Seed: 1, Routes: []Route{{Rate: 1, Classes: []Class{Truncate}}}})
	srv := serve(t, in)
	resp, body, readErr := get(t, srv.URL+"/p")
	if resp == nil {
		t.Fatalf("no response at all: %v", readErr)
	}
	// The full length is declared but only half arrives: the client must
	// observe a read error, not a silently short body.
	if readErr == nil {
		t.Fatalf("truncated body read cleanly: %d of %d bytes", len(body), len(patchBody))
	}
	if len(body) >= len(patchBody) {
		t.Errorf("body not truncated: %d bytes", len(body))
	}
}

func TestCorruptFaultMangledBody(t *testing.T) {
	in := New(Config{Seed: 1, Routes: []Route{{Rate: 1, Classes: []Class{Corrupt}}}})
	srv := serve(t, in)
	resp, body, err := get(t, srv.URL+"/p")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("corrupt fault: status=%v err=%v", resp, err)
	}
	if body == patchBody {
		t.Fatal("body not corrupted")
	}
	if !strings.Contains(body, "@@ ?") || strings.Contains(body, "@@ -") {
		t.Errorf("hunk headers not mangled: %q", body)
	}
}

func TestPerRouteRates(t *testing.T) {
	in := New(Config{Seed: 1, Routes: []Route{
		{Prefix: "/github/", Rate: 1, Classes: []Class{ServerError}},
		{Prefix: "/feeds/", Rate: 0},
	}})
	srv := serve(t, in)
	if resp, _, _ := get(t, srv.URL+"/github/x"); resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("/github/ status = %s, want 500", resp.Status)
	}
	if resp, _, _ := get(t, srv.URL+"/feeds/cve.json"); resp.StatusCode != http.StatusOK {
		t.Errorf("/feeds/ status = %s, want 200", resp.Status)
	}
	if resp, _, _ := get(t, srv.URL+"/other"); resp.StatusCode != http.StatusOK {
		t.Errorf("unmatched route status = %s, want 200", resp.Status)
	}
}

func TestMaxConsecutiveForcesRecovery(t *testing.T) {
	in := New(Config{Seed: 1, MaxConsecutive: 2,
		Routes: []Route{{Rate: 1, Classes: []Class{ServerError}}}})
	srv := serve(t, in)
	statuses := make([]int, 0, 6)
	for i := 0; i < 6; i++ {
		resp, _, err := get(t, srv.URL+"/p")
		if err != nil {
			t.Fatal(err)
		}
		statuses = append(statuses, resp.StatusCode)
	}
	// Rate 1 with a 2-fault cap: every third request must pass through.
	want := []int{500, 500, 200, 500, 500, 200}
	for i := range want {
		if statuses[i] != want[i] {
			t.Fatalf("statuses = %v, want %v", statuses, want)
		}
	}
}

func TestDecisionsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Routes: []Route{{Rate: 0.4}}}
	draw := func() []string {
		in := New(cfg)
		var seq []string
		for _, path := range []string{"/a", "/b", "/a", "/c", "/a", "/b"} {
			class, fault := in.decide(path)
			seq = append(seq, fmt.Sprintf("%s:%v:%s", path, fault, class))
		}
		return seq
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	// Different seeds must produce a different decision sequence somewhere.
	other := New(Config{Seed: 8, Routes: []Route{{Rate: 0.4}}})
	differs := false
	for i, path := range []string{"/a", "/b", "/a", "/c", "/a", "/b"} {
		class, fault := other.decide(path)
		if fmt.Sprintf("%s:%v:%s", path, fault, class) != a[i] {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 produced identical decision sequences")
	}
}

func TestDecisionsIndependentOfInterleaving(t *testing.T) {
	// The decision for (path, nth-request) must not depend on requests to
	// other paths happening in between.
	seq1 := func() []bool {
		in := New(Config{Seed: 3, Routes: []Route{{Rate: 0.5}}})
		var out []bool
		for i := 0; i < 10; i++ {
			_, f := in.decide("/target")
			out = append(out, f)
		}
		return out
	}()
	seq2 := func() []bool {
		in := New(Config{Seed: 3, Routes: []Route{{Rate: 0.5}}})
		var out []bool
		for i := 0; i < 10; i++ {
			in.decide(fmt.Sprintf("/noise/%d", i))
			_, f := in.decide("/target")
			out = append(out, f)
			in.decide("/more-noise")
		}
		return out
	}()
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("decision %d for /target changed with interleaved traffic", i)
		}
	}
}

func TestApproximateRate(t *testing.T) {
	in := New(Config{Seed: 99, Routes: []Route{{Rate: 0.3}}})
	faults := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, f := in.decide(fmt.Sprintf("/p/%d", i)); f {
			faults++
		}
	}
	got := float64(faults) / n
	if got < 0.25 || got > 0.35 {
		t.Errorf("empirical fault rate %.3f, want ~0.30", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	in := New(Config{Seed: 1, Routes: []Route{{Rate: 1, Classes: []Class{ServerError}}}})
	srv := serve(t, in)
	for i := 0; i < 3; i++ {
		get(t, srv.URL+"/p")
	}
	s := in.Stats()
	if s.Requests != 3 || s.Faults[ServerError] != 3 || s.Total() != 3 {
		t.Errorf("stats = %+v, want 3 requests / 3 server-error faults", s)
	}
	if str := s.String(); !strings.Contains(str, "server-error=3") {
		t.Errorf("Stats.String() = %q", str)
	}
	if str := (Stats{Requests: 5}).String(); !strings.Contains(str, "no faults") {
		t.Errorf("empty Stats.String() = %q", str)
	}
}
