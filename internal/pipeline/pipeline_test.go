package pipeline

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsAccumulate(t *testing.T) {
	var m Metrics
	m.Observe(StageExtract, 10*time.Millisecond, 100)
	m.Observe(StageExtract, 5*time.Millisecond, 50)
	m.Observe(StageCrawl, time.Millisecond, 7)

	stats := m.Snapshot()
	if len(stats) != 2 {
		t.Fatalf("stages = %d, want 2", len(stats))
	}
	// Pipeline order: crawl before extract.
	if stats[0].Stage != StageCrawl || stats[1].Stage != StageExtract {
		t.Errorf("order = %v, %v", stats[0].Stage, stats[1].Stage)
	}
	if stats[1].Items != 150 || stats[1].Duration != 15*time.Millisecond {
		t.Errorf("extract stat = %+v", stats[1])
	}
}

func TestMetricsTimer(t *testing.T) {
	var m Metrics
	stop := m.Timer(StageSynthesize)
	stop(3)
	stats := m.Snapshot()
	if len(stats) != 1 || stats[0].Items != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Duration < 0 {
		t.Errorf("negative duration %v", stats[0].Duration)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Observe(StageSearch, time.Microsecond, 1)
			}
		}()
	}
	wg.Wait()
	stats := m.Snapshot()
	if len(stats) != 1 || stats[0].Items != 3200 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestNilMetricsAndProgress(t *testing.T) {
	var m *Metrics
	m.Observe(StageCrawl, time.Second, 1) // must not panic
	if s := m.Snapshot(); s != nil {
		t.Errorf("nil snapshot = %v", s)
	}
	n := NewNotifier(StageExtract, 10, nil)
	n.Done(3) // must not panic
	var nilN *Notifier
	nilN.Done(1) // must not panic
}

func TestNotifierCounts(t *testing.T) {
	type call struct{ done, total int }
	var mu sync.Mutex
	var calls []call
	n := NewNotifier(StageExtract, 4, func(s Stage, done, total int) {
		if s != StageExtract {
			t.Errorf("stage = %v", s)
		}
		mu.Lock()
		calls = append(calls, call{done, total})
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.Done(1)
		}()
	}
	wg.Wait()
	if len(calls) != 5 { // initial 0/4 plus four increments
		t.Fatalf("calls = %d, want 5", len(calls))
	}
	last := calls[len(calls)-1]
	// Counts are monotonic under the notifier's lock, so the final call
	// must report completion.
	if last.done != 4 || last.total != 4 {
		t.Errorf("final call = %+v", last)
	}
}

func TestMetricsString(t *testing.T) {
	var m Metrics
	if s := m.String(); s != "(no stage metrics)" {
		t.Errorf("empty string = %q", s)
	}
	m.Observe(StageAugment, 2*time.Second, 5)
	if s := m.String(); !strings.Contains(s, "augment") || !strings.Contains(s, "5") {
		t.Errorf("rendered = %q", s)
	}
}
