package pipeline

import (
	"strings"
	"testing"
	"time"

	"patchdb/internal/telemetry"
)

// TestFormatStatsAlignment checks that stage names longer than the default
// column width still produce aligned columns: every row's items column and
// duration column start at the same offset.
func TestFormatStatsAlignment(t *testing.T) {
	stats := []StageStat{
		{Stage: StageCrawl, Duration: 120 * time.Millisecond, Items: 40},
		{Stage: "mine-patterns-and-verify", Duration: 2 * time.Second, Items: 123456789},
		{Stage: StageSynthesize, Duration: 5 * time.Millisecond, Items: 3},
	}
	out := FormatStats(stats)
	lines := strings.Split(out, "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines, want 3:\n%s", len(lines), out)
	}
	itemsCol := -1
	for i, line := range lines {
		idx := strings.Index(line, " items")
		if idx < 0 {
			t.Fatalf("line %d missing items column: %q", i, line)
		}
		if itemsCol == -1 {
			itemsCol = idx
		} else if idx != itemsCol {
			t.Errorf("line %d items column at %d, want %d (misaligned):\n%s", i, idx, itemsCol, out)
		}
	}
	// The long stage name must appear unclipped.
	if !strings.Contains(out, "mine-patterns-and-verify") {
		t.Errorf("long stage name clipped:\n%s", out)
	}
}

// TestFormatStatsShortNamesKeepHistoricalWidth pins the floor widths so short
// stage tables render exactly as before the width fix.
func TestFormatStatsShortNamesKeepHistoricalWidth(t *testing.T) {
	out := FormatStats([]StageStat{{Stage: StageCrawl, Duration: time.Second, Items: 10}})
	want := "crawl              10 items          1s  (10 items/s)"
	if out != want {
		t.Errorf("rendered %q, want %q", out, want)
	}
}

// TestMetricsSharedRegistry checks the adapter contract: Observe lands in
// the backing registry's labeled counters, so a /metrics scrape and
// Snapshot read the same numbers.
func TestMetricsSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	m.Observe(StageSearch, 30*time.Millisecond, 12)
	m.Observe(StageSearch, 20*time.Millisecond, 8)

	label := telemetry.L("stage", string(StageSearch))
	if got := reg.Counter(MetricStageItems, label).Value(); got != 20 {
		t.Errorf("registry items counter = %v, want 20", got)
	}
	wantNS := float64((50 * time.Millisecond).Nanoseconds())
	if got := reg.Counter(MetricStageDurationNS, label).Value(); got != wantNS {
		t.Errorf("registry duration counter = %v ns, want %v", got, wantNS)
	}

	stats := m.Snapshot()
	if len(stats) != 1 || stats[0].Items != 20 || stats[0].Duration != 50*time.Millisecond {
		t.Errorf("snapshot = %+v", stats)
	}

	// Unknown stages written by other users of the same registry sort after
	// the known pipeline stages.
	m.Observe("zz-custom", time.Millisecond, 1)
	m.Observe("aa-custom", time.Millisecond, 1)
	stats = m.Snapshot()
	if len(stats) != 3 || stats[0].Stage != StageSearch ||
		stats[1].Stage != "aa-custom" || stats[2].Stage != "zz-custom" {
		t.Errorf("ordering with custom stages = %+v", stats)
	}
}
