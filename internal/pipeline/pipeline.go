// Package pipeline instruments the dataset-construction pipeline: it names
// the stages of a Build, accumulates per-stage wall-clock timings and item
// counters, and defines the progress-callback contract that lets CLIs render
// a live view of a run. Everything here is safe for concurrent use; the
// builder's worker pools report into one shared Metrics.
//
// Since the telemetry layer landed, Metrics is a thin adapter over a
// telemetry.Registry: every Observe lands in the registry's stage counters
// (MetricStageItems, MetricStageDurationNS), so a /metrics scrape and the
// StageStat snapshot read the same backing store.
package pipeline

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"patchdb/internal/telemetry"
)

// Stage identifies one phase of the construction pipeline.
type Stage string

// The stages of a Build, in execution order.
const (
	// StageCrawl covers the NVD feed fetch and patch downloads.
	StageCrawl Stage = "crawl"
	// StageExtract covers per-commit feature extraction over the wild pools
	// and the crawled seed (the dominant cost at realistic pool sizes).
	StageExtract Stage = "extract"
	// StageSearch covers the nearest-link searches inside augmentation
	// rounds.
	StageSearch Stage = "search"
	// StageAugment covers the augmentation rounds (search + verification).
	StageAugment Stage = "augment"
	// StageSynthesize covers source-level oversampling.
	StageSynthesize Stage = "synthesize"
	// StageCheckpoint covers journal writes at stage boundaries when the
	// build runs with a checkpoint directory.
	StageCheckpoint Stage = "checkpoint"
)

// The registry metric families Metrics writes stage accounting into. The
// stage name rides in a "stage" label. Durations are stored in integral
// nanoseconds so accumulated values survive the float64 counter exactly.
const (
	MetricStageItems      = "patchdb_stage_items_total"
	MetricStageDurationNS = "patchdb_stage_duration_nanoseconds_total"
)

// stageOrder fixes the rendering order of known stages; unknown stages sort
// after them, alphabetically.
var stageOrder = map[Stage]int{
	StageCrawl:      0,
	StageExtract:    1,
	StageSearch:     2,
	StageAugment:    3,
	StageSynthesize: 4,
	StageCheckpoint: 5,
}

// Progress observes pipeline advancement: done items out of total for a
// stage. Callbacks are invoked synchronously from pipeline goroutines, so
// they must be cheap and safe for concurrent use. A nil Progress is valid
// everywhere one is accepted.
type Progress func(stage Stage, done, total int)

// Notifier wraps a possibly-nil Progress with a monotonically increasing
// done counter for one stage, so concurrent workers can report completion
// without coordinating indices.
type Notifier struct {
	stage    Stage
	total    int
	progress Progress

	mu   sync.Mutex
	done int
}

// NewNotifier creates a notifier for one stage of total items. p may be nil.
func NewNotifier(stage Stage, total int, p Progress) *Notifier {
	n := &Notifier{stage: stage, total: total, progress: p}
	if p != nil {
		p(stage, 0, total)
	}
	return n
}

// Done records n more completed items and forwards the new count.
func (n *Notifier) Done(delta int) {
	if n == nil || n.progress == nil {
		return
	}
	n.mu.Lock()
	n.done += delta
	done := n.done
	n.mu.Unlock()
	n.progress(n.stage, done, n.total)
}

// StageStat is one stage's accumulated accounting.
type StageStat struct {
	Stage Stage
	// Duration is total wall-clock time attributed to the stage. Stages
	// timed from a single goroutine report elapsed time; per-item
	// attribution from worker pools would sum CPU-parallel time instead,
	// so the builder times stages around the pool, not inside it.
	Duration time.Duration
	// Items is the number of units processed (commits, patches, rounds...).
	Items int
}

// Metrics accumulates per-stage timings and counters, backed by a
// telemetry.Registry. The zero value is ready to use (it lazily creates a
// private registry); NewMetrics binds to a shared registry so stage
// counters show up on that registry's /metrics endpoint. A nil *Metrics
// ignores all observations.
type Metrics struct {
	mu  sync.Mutex
	reg *telemetry.Registry
}

// NewMetrics creates a Metrics writing into reg (nil reg behaves like the
// zero value: a private registry).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{reg: reg}
}

// Registry returns the backing registry, creating a private one on first
// use of a zero-value Metrics.
func (m *Metrics) Registry() *telemetry.Registry {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.reg == nil {
		m.reg = telemetry.NewRegistry()
	}
	return m.reg
}

// Observe adds elapsed time and an item count to a stage.
func (m *Metrics) Observe(stage Stage, d time.Duration, items int) {
	if m == nil {
		return
	}
	reg := m.Registry()
	label := telemetry.L("stage", string(stage))
	reg.Counter(MetricStageItems, label).Add(float64(items))
	reg.Counter(MetricStageDurationNS, label).Add(float64(d.Nanoseconds()))
}

// Timer starts timing a stage; the returned stop function records the
// elapsed time along with the given item count. Typical use:
//
//	stop := metrics.Timer(pipeline.StageExtract)
//	... do work ...
//	stop(len(items))
func (m *Metrics) Timer(stage Stage) func(items int) {
	//lint:ignore determinism stage timing is telemetry-only; durations never feed dataset output
	start := time.Now()
	return func(items int) {
		//lint:ignore determinism stage timing is telemetry-only; durations never feed dataset output
		m.Observe(stage, time.Since(start), items)
	}
}

// Snapshot returns the accumulated stats in pipeline order, read back from
// the backing registry's stage counters.
func (m *Metrics) Snapshot() []StageStat {
	if m == nil {
		return nil
	}
	byStage := make(map[Stage]*StageStat)
	for _, p := range m.Registry().Snapshot() {
		if p.Name != MetricStageItems && p.Name != MetricStageDurationNS {
			continue
		}
		var stage Stage
		for _, l := range p.Labels {
			if l.Key == "stage" {
				stage = Stage(l.Value)
			}
		}
		st, ok := byStage[stage]
		if !ok {
			st = &StageStat{Stage: stage}
			byStage[stage] = st
		}
		switch p.Name {
		case MetricStageItems:
			st.Items = int(p.Value)
		case MetricStageDurationNS:
			st.Duration = time.Duration(int64(p.Value))
		}
	}
	out := make([]StageStat, 0, len(byStage))
	for _, st := range byStage {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		oi, iKnown := stageOrder[out[i].Stage]
		oj, jKnown := stageOrder[out[j].Stage]
		switch {
		case iKnown && jKnown:
			return oi < oj
		case iKnown:
			return true
		case jKnown:
			return false
		default:
			return out[i].Stage < out[j].Stage
		}
	})
	return out
}

// String renders the snapshot as an aligned table, one stage per line.
func (m *Metrics) String() string {
	return FormatStats(m.Snapshot())
}

// FormatStats renders stage stats as an aligned table, one stage per line.
// Column widths are computed from the data (with floors matching the
// historical layout), so stage names longer than the default width no
// longer break the alignment.
func FormatStats(stats []StageStat) string {
	if len(stats) == 0 {
		return "(no stage metrics)"
	}
	nameW, itemsW, durW := 12, 8, 10
	type row struct {
		name, items, dur, rate string
	}
	rows := make([]row, 0, len(stats))
	for _, st := range stats {
		r := row{
			name:  string(st.Stage),
			items: fmt.Sprint(st.Items),
			dur:   st.Duration.Round(time.Millisecond).String(),
		}
		if st.Items > 0 && st.Duration > 0 {
			perSec := float64(st.Items) / st.Duration.Seconds()
			r.rate = fmt.Sprintf("  (%.0f items/s)", perSec)
		}
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
		if len(r.items) > itemsW {
			itemsW = len(r.items)
		}
		if len(r.dur) > durW {
			durW = len(r.dur)
		}
		rows = append(rows, r)
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s %*s items  %*s%s\n", nameW, r.name, itemsW, r.items, durW, r.dur, r.rate)
	}
	return strings.TrimRight(b.String(), "\n")
}
