// Package pipeline instruments the dataset-construction pipeline: it names
// the stages of a Build, accumulates per-stage wall-clock timings and item
// counters, and defines the progress-callback contract that lets CLIs render
// a live view of a run. Everything here is safe for concurrent use; the
// builder's worker pools report into one shared Metrics.
package pipeline

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage identifies one phase of the construction pipeline.
type Stage string

// The stages of a Build, in execution order.
const (
	// StageCrawl covers the NVD feed fetch and patch downloads.
	StageCrawl Stage = "crawl"
	// StageExtract covers per-commit feature extraction over the wild pools
	// and the crawled seed (the dominant cost at realistic pool sizes).
	StageExtract Stage = "extract"
	// StageSearch covers the nearest-link searches inside augmentation
	// rounds.
	StageSearch Stage = "search"
	// StageAugment covers the augmentation rounds (search + verification).
	StageAugment Stage = "augment"
	// StageSynthesize covers source-level oversampling.
	StageSynthesize Stage = "synthesize"
)

// stageOrder fixes the rendering order of known stages; unknown stages sort
// after them, alphabetically.
var stageOrder = map[Stage]int{
	StageCrawl:      0,
	StageExtract:    1,
	StageSearch:     2,
	StageAugment:    3,
	StageSynthesize: 4,
}

// Progress observes pipeline advancement: done items out of total for a
// stage. Callbacks are invoked synchronously from pipeline goroutines, so
// they must be cheap and safe for concurrent use. A nil Progress is valid
// everywhere one is accepted.
type Progress func(stage Stage, done, total int)

// Notifier wraps a possibly-nil Progress with a monotonically increasing
// done counter for one stage, so concurrent workers can report completion
// without coordinating indices.
type Notifier struct {
	stage    Stage
	total    int
	progress Progress

	mu   sync.Mutex
	done int
}

// NewNotifier creates a notifier for one stage of total items. p may be nil.
func NewNotifier(stage Stage, total int, p Progress) *Notifier {
	n := &Notifier{stage: stage, total: total, progress: p}
	if p != nil {
		p(stage, 0, total)
	}
	return n
}

// Done records n more completed items and forwards the new count.
func (n *Notifier) Done(delta int) {
	if n == nil || n.progress == nil {
		return
	}
	n.mu.Lock()
	n.done += delta
	done := n.done
	n.mu.Unlock()
	n.progress(n.stage, done, n.total)
}

// StageStat is one stage's accumulated accounting.
type StageStat struct {
	Stage Stage
	// Duration is total wall-clock time attributed to the stage. Stages
	// timed from a single goroutine report elapsed time; per-item
	// attribution from worker pools would sum CPU-parallel time instead,
	// so the builder times stages around the pool, not inside it.
	Duration time.Duration
	// Items is the number of units processed (commits, patches, rounds...).
	Items int
}

// Metrics accumulates per-stage timings and counters. The zero value is
// ready to use; a nil *Metrics ignores all observations.
type Metrics struct {
	mu     sync.Mutex
	stages map[Stage]*StageStat
}

// Observe adds elapsed time and an item count to a stage.
func (m *Metrics) Observe(stage Stage, d time.Duration, items int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stages == nil {
		m.stages = make(map[Stage]*StageStat)
	}
	st, ok := m.stages[stage]
	if !ok {
		st = &StageStat{Stage: stage}
		m.stages[stage] = st
	}
	st.Duration += d
	st.Items += items
}

// Timer starts timing a stage; the returned stop function records the
// elapsed time along with the given item count. Typical use:
//
//	stop := metrics.Timer(pipeline.StageExtract)
//	... do work ...
//	stop(len(items))
func (m *Metrics) Timer(stage Stage) func(items int) {
	start := time.Now()
	return func(items int) {
		m.Observe(stage, time.Since(start), items)
	}
}

// Snapshot returns the accumulated stats in pipeline order.
func (m *Metrics) Snapshot() []StageStat {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	out := make([]StageStat, 0, len(m.stages))
	for _, st := range m.stages {
		out = append(out, *st)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		oi, iKnown := stageOrder[out[i].Stage]
		oj, jKnown := stageOrder[out[j].Stage]
		switch {
		case iKnown && jKnown:
			return oi < oj
		case iKnown:
			return true
		case jKnown:
			return false
		default:
			return out[i].Stage < out[j].Stage
		}
	})
	return out
}

// String renders the snapshot as an aligned table, one stage per line.
func (m *Metrics) String() string {
	return FormatStats(m.Snapshot())
}

// FormatStats renders stage stats as an aligned table, one stage per line.
func FormatStats(stats []StageStat) string {
	if len(stats) == 0 {
		return "(no stage metrics)"
	}
	var b strings.Builder
	for _, st := range stats {
		rate := ""
		if st.Items > 0 && st.Duration > 0 {
			perSec := float64(st.Items) / st.Duration.Seconds()
			rate = fmt.Sprintf("  (%.0f items/s)", perSec)
		}
		fmt.Fprintf(&b, "%-12s %8d items  %10s%s\n",
			st.Stage, st.Items, st.Duration.Round(time.Millisecond), rate)
	}
	return strings.TrimRight(b.String(), "\n")
}
