package nvd

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"patchdb/internal/diff"
	"patchdb/internal/faults"
	"patchdb/internal/gitrepo"
	"patchdb/internal/retry"
)

// chaosWorld builds a store with n distinct C-touching commits, one feed
// entry per commit, and a service wrapped in the given fault injector.
func chaosWorld(t *testing.T, n int, cfg faults.Config) (*faults.Injector, string, []string) {
	t.Helper()
	store := gitrepo.NewStore()
	repo := gitrepo.NewRepo("acme/chaos")
	if err := store.Add(repo); err != nil {
		t.Fatal(err)
	}
	repo.SeedFile("src/m.c", "int v0;\n")
	hashes := make([]string, 0, n)
	for i := 0; i < n; i++ {
		c := repo.Commit("alice", "2021-01-01", fmt.Sprintf("fix %d", i),
			map[string]string{"src/m.c": fmt.Sprintf("int v%d;\n", i+1)})
		hashes = append(hashes, c.Hash)
	}
	inj := faults.New(cfg)
	svc := NewService(store)
	svc.Wrap = inj.Wrap
	base, err := svc.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	for i, h := range hashes {
		svc.AddEntry(Entry{ID: fmt.Sprintf("CVE-2021-%04d", i), References: []Reference{
			{URL: GitHubCommitURL(base, "acme/chaos", h), Tags: []string{"Patch"}},
		}})
	}
	return inj, base, hashes
}

// fastCrawler returns a crawler tuned for chaos tests: tiny backoff, a
// breaker with a tiny cooldown, default (4) attempts.
func fastCrawler(base string, workers int) *Crawler {
	return &Crawler{
		BaseURL:        base,
		Concurrency:    workers,
		Seed:           42,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
		Breaker:        retry.NewBreaker(retry.BreakerConfig{Cooldown: time.Millisecond}),
	}
}

// TestChaosFaultClassesRecovered drives every fault class at rate 1 with a
// consecutive-fault cap below the attempt budget: each class must be
// retried through to recovery, not dropped.
func TestChaosFaultClassesRecovered(t *testing.T) {
	for _, class := range faults.AllClasses {
		class := class
		t.Run(string(class), func(t *testing.T) {
			t.Parallel()
			_, base, hashes := chaosWorld(t, 6, faults.Config{
				Seed:           1,
				Routes:         []faults.Route{{Rate: 1, Classes: []faults.Class{class}}},
				RetryAfter:     2 * time.Millisecond,
				HangFor:        10 * time.Millisecond,
				MaxConsecutive: 2, // attempts 1-2 fault, attempt 3 passes
			})
			crawler := fastCrawler(base, 4)
			patches, stats, err := crawler.Crawl(context.Background())
			if err != nil {
				t.Fatalf("crawl under %s faults: %v", class, err)
			}
			if len(patches) != len(hashes) {
				t.Fatalf("recovered %d/%d patches under %s faults (quarantine: %+v)",
					len(patches), len(hashes), class, stats.Quarantine)
			}
			if stats.Quarantined != 0 || stats.Errors != 0 {
				t.Errorf("quarantined=%d errors=%d, want 0/0", stats.Quarantined, stats.Errors)
			}
			// Feed + every patch needed exactly 2 retries each.
			wantRetries := 2 * (len(hashes) + 1)
			if stats.Retries != wantRetries {
				t.Errorf("retries = %d, want %d", stats.Retries, wantRetries)
			}
		})
	}
}

// TestChaosFaultClassesQuarantined drives every class at rate 1 with no cap
// and an exhausted budget: every download must land in quarantine with its
// attempt count and a class-appropriate last error.
func TestChaosFaultClassesQuarantined(t *testing.T) {
	lastErrWant := map[faults.Class]string{
		faults.RateLimit:   "status 429",
		faults.ServerError: "status 500",
		faults.Hang:        "connection failure",
		faults.Truncate:    "read patch",
		faults.Corrupt:     "parse patch",
	}
	for _, class := range faults.AllClasses {
		class := class
		t.Run(string(class), func(t *testing.T) {
			t.Parallel()
			// Faults only on the patch route so the feed fetch succeeds.
			_, base, hashes := chaosWorld(t, 4, faults.Config{
				Seed:       1,
				Routes:     []faults.Route{{Prefix: "/github/", Rate: 1, Classes: []faults.Class{class}}},
				RetryAfter: 2 * time.Millisecond,
				HangFor:    10 * time.Millisecond,
			})
			crawler := fastCrawler(base, 2)
			crawler.MaxAttempts = 2
			patches, stats, err := crawler.Crawl(context.Background())
			if err != nil {
				t.Fatalf("crawl: %v", err) // a degraded crawl is not an error
			}
			if len(patches) != 0 || stats.Downloaded != 0 {
				t.Fatalf("downloaded %d patches under unrecoverable %s faults", stats.Downloaded, class)
			}
			if stats.Quarantined != len(hashes) || stats.Errors != len(hashes) {
				t.Fatalf("quarantined=%d errors=%d, want %d", stats.Quarantined, stats.Errors, len(hashes))
			}
			for i, q := range stats.Quarantine {
				if q.Attempts != 2 {
					t.Errorf("quarantine[%d].Attempts = %d, want 2", i, q.Attempts)
				}
				if !strings.Contains(q.LastError, lastErrWant[class]) {
					t.Errorf("quarantine[%d].LastError = %q, want substring %q", i, q.LastError, lastErrWant[class])
				}
				if q.Hash != hashes[i] || q.CVE == "" || q.URL == "" {
					t.Errorf("quarantine[%d] incomplete: %+v", i, q)
				}
			}
		})
	}
}

// TestChaosRecoveryRatio is the acceptance bar: at a 30% transient-failure
// rate with the default attempt budget, >= 95% of patches are recovered and
// the remainder is quarantined, not lost.
func TestChaosRecoveryRatio(t *testing.T) {
	_, base, hashes := chaosWorld(t, 100, faults.Config{
		Seed:       9,
		Routes:     []faults.Route{{Rate: 0.3}},
		RetryAfter: 2 * time.Millisecond,
		HangFor:    10 * time.Millisecond,
	})
	crawler := fastCrawler(base, 8)
	patches, stats, err := crawler.Crawl(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	recovered := float64(stats.Downloaded) / float64(len(hashes))
	if recovered < 0.95 {
		t.Fatalf("recovered %.1f%% of %d patches, want >= 95%% (quarantined %d)",
			100*recovered, len(hashes), stats.Quarantined)
	}
	if stats.Downloaded+stats.Quarantined != len(hashes) {
		t.Errorf("downloaded %d + quarantined %d != %d jobs: downloads lost without a trace",
			stats.Downloaded, stats.Quarantined, len(hashes))
	}
	if stats.Retries == 0 {
		t.Error("no retries recorded at a 30% fault rate")
	}
	t.Logf("rate 0.3: recovered %d/%d (%.1f%%), %d retries, %d quarantined, %d breaker trips",
		stats.Downloaded, len(hashes), 100*recovered, stats.Retries, stats.Quarantined, stats.BreakerTrips)
	_ = patches
}

// stripBase removes the per-run loopback port from quarantine URLs so
// reports from two service instances are comparable.
func stripBase(qs []QuarantinedDownload, base string) []QuarantinedDownload {
	out := append([]QuarantinedDownload(nil), qs...)
	for i := range out {
		out[i].URL = strings.TrimPrefix(out[i].URL, base)
	}
	return out
}

// TestChaosDeterministicAcrossWorkers is the determinism contract under
// faults: the same seed and fault config yield a byte-identical patch set
// and quarantine report at Workers=1 and Workers=GOMAXPROCS.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	// Hang is excluded: its quarantine entries are canonicalized (tested
	// above), but its wall-clock cost at Workers=1 makes the test slow.
	classes := []faults.Class{faults.RateLimit, faults.ServerError, faults.Truncate, faults.Corrupt}
	run := func(workers int) ([]*CrawledPatch, CrawlStats, string) {
		// The feed is exempt: at this rate a 2-attempt budget would
		// sometimes exhaust on the feed and fail the whole crawl.
		_, base, _ := chaosWorld(t, 60, faults.Config{
			Seed: 5,
			Routes: []faults.Route{
				{Prefix: "/feeds/", Rate: 0},
				{Prefix: "/github/", Rate: 0.45, Classes: classes},
			},
			RetryAfter: 2 * time.Millisecond,
		})
		crawler := fastCrawler(base, workers)
		crawler.MaxAttempts = 2 // tight budget so some downloads quarantine
		patches, stats, err := crawler.Crawl(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return patches, stats, base
	}

	p1, s1, base1 := run(1)
	pN, sN, baseN := run(runtime.GOMAXPROCS(0))

	if len(p1) != len(pN) {
		t.Fatalf("patch counts differ: %d vs %d", len(p1), len(pN))
	}
	for i := range p1 {
		if p1[i].Hash != pN[i].Hash || diff.Format(p1[i].Patch) != diff.Format(pN[i].Patch) {
			t.Fatalf("patch %d differs across worker counts", i)
		}
	}
	if s1.Downloaded != sN.Downloaded || s1.Errors != sN.Errors ||
		s1.Retries != sN.Retries || s1.Quarantined != sN.Quarantined {
		t.Fatalf("stats differ: %+v vs %+v", s1, sN)
	}
	q1, qN := stripBase(s1.Quarantine, base1), stripBase(sN.Quarantine, baseN)
	if !reflect.DeepEqual(q1, qN) {
		t.Fatalf("quarantine reports differ:\n%+v\nvs\n%+v", q1, qN)
	}
	if s1.Quarantined == 0 {
		t.Error("test too weak: nothing quarantined, raise the rate or cut the budget")
	}
	t.Logf("deterministic under faults: %d downloaded, %d quarantined, %d retries",
		s1.Downloaded, s1.Quarantined, s1.Retries)
}

// TestChaosBreakerTripsUnderTotalOutage: with the patch route hard down,
// the shared breaker must actually trip.
func TestChaosBreakerTripsUnderTotalOutage(t *testing.T) {
	_, base, _ := chaosWorld(t, 12, faults.Config{
		Seed:   1,
		Routes: []faults.Route{{Prefix: "/github/", Rate: 1, Classes: []faults.Class{faults.ServerError}}},
	})
	crawler := fastCrawler(base, 4)
	crawler.Breaker = retry.NewBreaker(retry.BreakerConfig{FailureThreshold: 3, Cooldown: time.Millisecond})
	crawler.MaxAttempts = 2
	_, stats, err := crawler.Crawl(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.BreakerTrips == 0 {
		t.Error("breaker never tripped during a total patch-route outage")
	}
	if stats.Quarantined != 12 {
		t.Errorf("quarantined = %d, want 12", stats.Quarantined)
	}
}

// TestChaosFeedRetriedAndQuarantineEmpty: feed-route faults are retried
// like any other fetch; a recovered feed leaves no quarantine residue.
func TestChaosFeedRecovery(t *testing.T) {
	_, base, hashes := chaosWorld(t, 3, faults.Config{
		Seed:           1,
		Routes:         []faults.Route{{Prefix: "/feeds/", Rate: 1, Classes: []faults.Class{faults.Corrupt}}},
		MaxConsecutive: 2,
	})
	crawler := fastCrawler(base, 2)
	patches, stats, err := crawler.Crawl(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(patches) != len(hashes) || stats.Retries != 2 || stats.Quarantined != 0 {
		t.Errorf("patches=%d retries=%d quarantined=%d, want %d/2/0",
			len(patches), stats.Retries, stats.Quarantined, len(hashes))
	}
}

// TestChaosFeedExhaustionFailsCrawl: a feed that never recovers fails the
// whole crawl (there is nothing to degrade to without a feed).
func TestChaosFeedExhaustionFailsCrawl(t *testing.T) {
	_, base, _ := chaosWorld(t, 3, faults.Config{
		Seed:   1,
		Routes: []faults.Route{{Prefix: "/feeds/", Rate: 1, Classes: []faults.Class{faults.ServerError}}},
	})
	crawler := fastCrawler(base, 2)
	crawler.MaxAttempts = 2
	_, stats, err := crawler.Crawl(context.Background())
	if err == nil || !strings.Contains(err.Error(), "feed status 500") {
		t.Fatalf("err = %v, want feed status 500", err)
	}
	if stats.Retries != 1 {
		t.Errorf("feed retries = %d, want 1", stats.Retries)
	}
}

// TestPatchTooLarge: an oversized patch fails permanently with a
// descriptive error instead of being retried or buffered unboundedly.
func TestPatchTooLarge(t *testing.T) {
	_, base, hashes := chaosWorld(t, 2, faults.Config{})
	crawler := fastCrawler(base, 2)
	crawler.MaxPatchBytes = 16 // far below any real patch body
	_, stats, err := crawler.Crawl(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Downloaded != 0 || stats.Quarantined != len(hashes) {
		t.Fatalf("downloaded=%d quarantined=%d, want 0/%d", stats.Downloaded, stats.Quarantined, len(hashes))
	}
	for _, q := range stats.Quarantine {
		if !strings.Contains(q.LastError, "patch too large") {
			t.Errorf("LastError = %q, want 'patch too large'", q.LastError)
		}
		if q.Attempts != 1 {
			t.Errorf("attempts = %d, want 1 (permanent errors are not retried)", q.Attempts)
		}
	}
}
