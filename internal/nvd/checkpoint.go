package nvd

import (
	"fmt"

	"patchdb/internal/diff"
)

// SavedPatch is the JSON-serializable form of a CrawledPatch: the parsed
// patch is flattened back to canonical git text so a checkpoint journal can
// hold crawl output without exposing diff internals.
type SavedPatch struct {
	CVE          string `json:"cve"`
	Repo         string `json:"repo"`
	Hash         string `json:"hash"`
	Patch        string `json:"patch"`
	FilesDropped int    `json:"files_dropped,omitempty"`
}

// SavePatches converts crawl output to its journal form, preserving order.
func SavePatches(patches []*CrawledPatch) []SavedPatch {
	out := make([]SavedPatch, len(patches))
	for i, cp := range patches {
		out[i] = SavedPatch{
			CVE:          cp.CVE,
			Repo:         cp.Repo,
			Hash:         cp.Hash,
			Patch:        diff.Format(cp.Patch),
			FilesDropped: cp.FilesDropped,
		}
	}
	return out
}

// RestorePatches parses journaled patches back into crawl output. Crawled
// patch text is already one Format/Parse cycle deep (the crawler parsed the
// downloaded bytes), so the round trip through the journal is exact.
func RestorePatches(saved []SavedPatch) ([]*CrawledPatch, error) {
	out := make([]*CrawledPatch, len(saved))
	for i, sp := range saved {
		p, err := diff.Parse(sp.Patch)
		if err != nil {
			return nil, fmt.Errorf("nvd: restore patch %s: %w", sp.Hash, err)
		}
		out[i] = &CrawledPatch{
			CVE:          sp.CVE,
			Repo:         sp.Repo,
			Hash:         sp.Hash,
			Patch:        p,
			FilesDropped: sp.FilesDropped,
		}
	}
	return out, nil
}
