// Package nvd simulates the National Vulnerability Database and the GitHub
// .patch endpoint, and implements the crawler that extracts security patches
// from them — the paper's Sec. III-A pipeline. The service is a real
// net/http server on a loopback listener, so the crawler exercises the same
// code path it would against nvd.nist.gov: fetch the CVE feed, select
// references tagged "Patch" that point at GitHub commit URLs, download the
// commit with a .patch suffix, parse it, and strip non-C/C++ files.
package nvd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"time"

	"patchdb/internal/diff"
	"patchdb/internal/gitrepo"
)

// Reference is one external hyperlink of a CVE entry.
type Reference struct {
	URL  string   `json:"url"`
	Tags []string `json:"tags"`
}

// Entry is one CVE record in the feed.
type Entry struct {
	ID          string      `json:"id"`
	Description string      `json:"description"`
	Published   string      `json:"published"`
	Severity    string      `json:"severity"`
	References  []Reference `json:"references"`
}

// Feed is the JSON document served at /feeds/cve.json.
type Feed struct {
	Entries []Entry `json:"cve_items"`
}

// Service serves a CVE feed plus GitHub-style commit patches from a
// repository store.
type Service struct {
	mu      sync.RWMutex
	entries []Entry
	store   *gitrepo.Store

	server   *http.Server
	listener net.Listener
	done     chan struct{}
}

// NewService creates a service backed by the given repository store.
func NewService(store *gitrepo.Store) *Service {
	return &Service{store: store, done: make(chan struct{})}
}

// AddEntry registers a CVE entry in the feed.
func (s *Service) AddEntry(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, e)
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/feeds/cve.json":
		s.mu.RLock()
		feed := Feed{Entries: append([]Entry(nil), s.entries...)}
		s.mu.RUnlock()
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(feed); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case strings.HasPrefix(r.URL.Path, "/github/"):
		s.servePatch(w, r)
	default:
		http.NotFound(w, r)
	}
}

var _ http.Handler = (*Service)(nil)

// servePatch handles /github/{owner}/{repo}/commit/{hash}.patch.
func (s *Service) servePatch(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/github/")
	i := strings.Index(path, "/commit/")
	if i < 0 || !strings.HasSuffix(path, ".patch") {
		http.NotFound(w, r)
		return
	}
	hash := strings.TrimSuffix(path[i+len("/commit/"):], ".patch")
	c, ok := s.store.Lookup(hash)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, diff.Format(c.Patch()))
}

// Start binds the service to a loopback port and serves until Close.
func (s *Service) Start() (baseURL string, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("nvd: listen: %w", err)
	}
	s.listener = ln
	s.server = &http.Server{Handler: s}
	go func() {
		defer close(s.done)
		if serveErr := s.server.Serve(ln); serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			// Serve errors after Close are expected; others are surfaced via
			// the crawler's request failures.
			_ = serveErr
		}
	}()
	return "http://" + ln.Addr().String(), nil
}

// Close shuts the server down and waits for the serve goroutine to exit.
func (s *Service) Close() error {
	if s.server == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.server.Shutdown(ctx)
	<-s.done
	return err
}

// GitHubCommitURL renders the canonical commit URL for a repo/hash pair,
// relative to a service base URL.
func GitHubCommitURL(baseURL, repo, hash string) string {
	return fmt.Sprintf("%s/github/%s/commit/%s", baseURL, repo, hash)
}

// commitURLRe matches GitHub commit reference URLs (paper Sec. III-A):
// .../github/{owner}/{repo}/commit/{hash}
var commitURLRe = regexp.MustCompile(`/github/(.+)/commit/([0-9a-f]{7,40})$`)

// CrawledPatch is one security patch extracted from the NVD.
type CrawledPatch struct {
	CVE   string
	Repo  string
	Hash  string
	Patch *diff.Patch
	// FilesDropped counts non-C/C++ file diffs removed during cleaning.
	FilesDropped int
}

// CrawlStats summarizes a crawl.
type CrawlStats struct {
	Entries         int // CVE entries in the feed
	WithPatchRefs   int // entries that had at least one Patch-tagged link
	Downloaded      int // patches fetched successfully
	EmptyAfterClean int // patches with no C/C++ files left
	Errors          int // fetch or parse failures
}

// Crawler downloads security patches referenced by the NVD feed.
type Crawler struct {
	// BaseURL of the NVD service.
	BaseURL string
	// Client defaults to a 10s-timeout client.
	Client *http.Client
	// Concurrency bounds parallel patch downloads (default 8). The result
	// order is the feed's reference order regardless of the setting.
	Concurrency int
	// Progress, when non-nil, observes the fetch stage: done downloads
	// (including failures) out of the total job count. It is called from
	// fetch goroutines and must be safe for concurrent use.
	Progress func(done, total int)
}

// Crawl fetches the feed and downloads every Patch-tagged GitHub commit
// reference, returning cleaned C/C++ patches in feed order. Downloads run
// on a bounded worker pool; ctx cancellation aborts the crawl with a
// wrapped context error.
func (c *Crawler) Crawl(ctx context.Context) ([]*CrawledPatch, CrawlStats, error) {
	client := c.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	conc := c.Concurrency
	if conc <= 0 {
		conc = 8
	}
	var stats CrawlStats

	feed, err := c.fetchFeed(ctx, client)
	if err != nil {
		return nil, stats, err
	}
	stats.Entries = len(feed.Entries)

	type job struct {
		cve  string
		repo string
		hash string
		url  string
	}
	var jobs []job
	for _, e := range feed.Entries {
		found := false
		for _, ref := range e.References {
			if !hasTag(ref.Tags, "Patch") {
				continue
			}
			m := commitURLRe.FindStringSubmatch(ref.URL)
			if m == nil {
				continue
			}
			found = true
			jobs = append(jobs, job{cve: e.ID, repo: m[1], hash: m[2], url: ref.URL + ".patch"})
		}
		if found {
			stats.WithPatchRefs++
		}
	}
	if c.Progress != nil {
		c.Progress(0, len(jobs))
	}

	// Fixed-size worker pool over job indices. Results land at their job's
	// index so the output order is deterministic (feed order) no matter how
	// the downloads interleave.
	results := make([]*CrawledPatch, len(jobs))
	idxCh := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards stats and done
		done int
	)
	if conc > len(jobs) {
		conc = len(jobs)
	}
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if ctx.Err() != nil {
					continue // drain without fetching
				}
				j := jobs[i]
				cp, fetchErr := c.fetchPatch(ctx, client, j.url)
				mu.Lock()
				done++
				d := done
				if fetchErr != nil {
					stats.Errors++
				} else {
					stats.Downloaded++
					cp.CVE = j.cve
					cp.Repo = j.repo
					cp.Hash = j.hash
					if len(cp.Patch.Files) == 0 {
						stats.EmptyAfterClean++
					} else {
						results[i] = cp
					}
				}
				mu.Unlock()
				if c.Progress != nil {
					c.Progress(d, len(jobs))
				}
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, stats, fmt.Errorf("nvd: crawl canceled: %w", err)
	}

	out := make([]*CrawledPatch, 0, len(results))
	for _, cp := range results {
		if cp != nil {
			out = append(out, cp)
		}
	}
	return out, stats, nil
}

func (c *Crawler) fetchFeed(ctx context.Context, client *http.Client) (*Feed, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/feeds/cve.json", nil)
	if err != nil {
		return nil, fmt.Errorf("nvd: build feed request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("nvd: fetch feed: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("nvd: feed status %s", resp.Status)
	}
	var feed Feed
	if err := json.NewDecoder(resp.Body).Decode(&feed); err != nil {
		return nil, fmt.Errorf("nvd: decode feed: %w", err)
	}
	return &feed, nil
}

func (c *Crawler) fetchPatch(ctx context.Context, client *http.Client, url string) (*CrawledPatch, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("nvd: build patch request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("nvd: fetch patch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("nvd: patch status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("nvd: read patch: %w", err)
	}
	p, err := diff.Parse(string(body))
	if err != nil {
		return nil, fmt.Errorf("nvd: parse patch: %w", err)
	}
	before := len(p.Files)
	cleaned := p.StripNonCFamily()
	return &CrawledPatch{Patch: cleaned, FilesDropped: before - len(cleaned.Files)}, nil
}

func hasTag(tags []string, want string) bool {
	for _, t := range tags {
		if strings.EqualFold(t, want) {
			return true
		}
	}
	return false
}
