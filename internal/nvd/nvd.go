// Package nvd simulates the National Vulnerability Database and the GitHub
// .patch endpoint, and implements the crawler that extracts security patches
// from them — the paper's Sec. III-A pipeline. The service is a real
// net/http server on a loopback listener, so the crawler exercises the same
// code path it would against nvd.nist.gov: fetch the CVE feed, select
// references tagged "Patch" that point at GitHub commit URLs, download the
// commit with a .patch suffix, parse it, and strip non-C/C++ files.
//
// The crawler is fault-tolerant: every fetch runs under a retry policy
// (exponential backoff with seeded jitter, Retry-After honoring, a shared
// circuit breaker — see internal/retry), and downloads that exhaust their
// attempt budget are quarantined with their attempt count and last error
// instead of silently vanishing.
package nvd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"patchdb/internal/diff"
	"patchdb/internal/gitrepo"
	"patchdb/internal/retry"
	"patchdb/internal/telemetry"
)

// The registry metric families the crawler emits. The crawl publishes into
// the telemetry hub carried by the Crawl context (falling back to the
// process-wide default hub), so builds with a private hub stay isolated.
const (
	// MetricDownloads counts patches fetched successfully.
	MetricDownloads = "crawl_downloads_total"
	// MetricRetries counts extra fetch attempts beyond each request's first.
	MetricRetries = "crawl_retries_total"
	// MetricQuarantined counts downloads that exhausted their budget.
	MetricQuarantined = "crawl_quarantined_total"
	// MetricEmptyAfterClean counts patches with no C/C++ files left.
	MetricEmptyAfterClean = "crawl_empty_after_clean_total"
	// MetricBreakerTrips counts the crawl breaker's closed-to-open
	// transitions (timing-dependent; outside the determinism contract).
	MetricBreakerTrips = "crawl_breaker_trips_total"
)

// Reference is one external hyperlink of a CVE entry.
type Reference struct {
	URL  string   `json:"url"`
	Tags []string `json:"tags"`
}

// Entry is one CVE record in the feed.
type Entry struct {
	ID          string      `json:"id"`
	Description string      `json:"description"`
	Published   string      `json:"published"`
	Severity    string      `json:"severity"`
	References  []Reference `json:"references"`
}

// Feed is the JSON document served at /feeds/cve.json.
type Feed struct {
	Entries []Entry `json:"cve_items"`
}

// Service serves a CVE feed plus GitHub-style commit patches from a
// repository store.
type Service struct {
	mu      sync.RWMutex
	entries []Entry
	store   *gitrepo.Store

	// Wrap, when non-nil before Start, wraps the service handler — the
	// seam the fault injector (internal/faults) plugs into.
	Wrap func(http.Handler) http.Handler

	server   *http.Server
	listener net.Listener
	done     chan struct{}
	serveErr error // first non-shutdown serve error, surfaced by Close
}

// NewService creates a service backed by the given repository store.
func NewService(store *gitrepo.Store) *Service {
	return &Service{store: store, done: make(chan struct{})}
}

// AddEntry registers a CVE entry in the feed.
func (s *Service) AddEntry(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, e)
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/feeds/cve.json":
		s.mu.RLock()
		feed := Feed{Entries: append([]Entry(nil), s.entries...)}
		s.mu.RUnlock()
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(feed); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case strings.HasPrefix(r.URL.Path, "/github/"):
		s.servePatch(w, r)
	default:
		http.NotFound(w, r)
	}
}

var _ http.Handler = (*Service)(nil)

// servePatch handles /github/{owner}/{repo}/commit/{hash}.patch.
func (s *Service) servePatch(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/github/")
	i := strings.Index(path, "/commit/")
	if i < 0 || !strings.HasSuffix(path, ".patch") {
		http.NotFound(w, r)
		return
	}
	hash := strings.TrimSuffix(path[i+len("/commit/"):], ".patch")
	c, ok := s.store.Lookup(hash)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, diff.Format(c.Patch()))
}

// Start binds the service to a loopback port and serves until Close.
func (s *Service) Start() (baseURL string, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("nvd: listen: %w", err)
	}
	s.listener = ln
	handler := http.Handler(s)
	if s.Wrap != nil {
		handler = s.Wrap(handler)
	}
	s.server = &http.Server{Handler: handler}
	go func() {
		defer close(s.done)
		if serveErr := s.server.Serve(ln); serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			// Recorded here, surfaced by Close: the serve goroutine has no
			// other channel back to the caller.
			s.serveErr = fmt.Errorf("nvd: serve: %w", serveErr)
		}
	}()
	return "http://" + ln.Addr().String(), nil
}

// Close shuts the server down, waits for the serve goroutine to exit, and
// returns the first serve error if one occurred (otherwise the shutdown
// error, if any).
func (s *Service) Close() error {
	if s.server == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownErr := s.server.Shutdown(ctx)
	<-s.done
	if s.serveErr != nil {
		return s.serveErr
	}
	return shutdownErr
}

// GitHubCommitURL renders the canonical commit URL for a repo/hash pair,
// relative to a service base URL.
func GitHubCommitURL(baseURL, repo, hash string) string {
	return fmt.Sprintf("%s/github/%s/commit/%s", baseURL, repo, hash)
}

// commitURLRe matches GitHub commit reference URLs (paper Sec. III-A):
// .../github/{owner}/{repo}/commit/{hash}
var commitURLRe = regexp.MustCompile(`/github/(.+)/commit/([0-9a-f]{7,40})$`)

// CrawledPatch is one security patch extracted from the NVD.
type CrawledPatch struct {
	CVE   string
	Repo  string
	Hash  string
	Patch *diff.Patch
	// FilesDropped counts non-C/C++ file diffs removed during cleaning.
	FilesDropped int
}

// QuarantinedDownload is one patch download that exhausted its retry
// budget. Quarantined downloads are reported, not silently dropped, so a
// degraded crawl is visible and replayable.
type QuarantinedDownload struct {
	CVE  string
	Repo string
	Hash string
	URL  string
	// Attempts is how many fetches were made before giving up.
	Attempts int
	// LastError describes the final failure. Transport-level errors are
	// canonicalized (the OS text for an aborted connection varies), so the
	// quarantine report is byte-identical for a given seed and fault
	// configuration at any worker count.
	LastError string
}

// CrawlStats summarizes a crawl.
type CrawlStats struct {
	Entries         int // CVE entries in the feed
	WithPatchRefs   int // entries that had at least one Patch-tagged link
	Downloaded      int // patches fetched successfully (possibly after retries)
	EmptyAfterClean int // patches with no C/C++ files left
	Errors          int // downloads that ultimately failed (== Quarantined)
	// Retries counts extra fetch attempts beyond each request's first.
	Retries int
	// Quarantined is len(Quarantine).
	Quarantined int
	// BreakerTrips counts closed→open transitions of the crawl's shared
	// circuit breaker. Trips depend on request timing, so this is the one
	// field outside the determinism contract.
	BreakerTrips int
	// Quarantine lists the downloads that exhausted their attempt budget,
	// in feed order.
	Quarantine []QuarantinedDownload
}

// Crawler downloads security patches referenced by the NVD feed.
type Crawler struct {
	// BaseURL of the NVD service.
	BaseURL string
	// Client defaults to a 10s-timeout client.
	Client *http.Client
	// Concurrency bounds parallel patch downloads (default 8). The result
	// order is the feed's reference order regardless of the setting.
	Concurrency int
	// Progress, when non-nil, observes the fetch stage: done downloads
	// (including failures) out of the total job count. It is called from
	// fetch goroutines and must be safe for concurrent use. On
	// cancellation the count still reaches the total — drained and
	// unsubmitted jobs are reported as done.
	Progress func(done, total int)

	// MaxAttempts is the per-fetch attempt budget, including the first try
	// (0 = default 4; negative = a single attempt, no retries).
	MaxAttempts int
	// RetryBaseDelay is the backoff before the first retry (0 = 50ms).
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff schedule (0 = 2s).
	RetryMaxDelay time.Duration
	// Seed drives the deterministic retry jitter.
	Seed int64
	// MaxPatchBytes caps a .patch download body (0 = default 4 MiB;
	// negative = unlimited). Oversized patches fail permanently.
	MaxPatchBytes int64
	// Breaker, when non-nil, replaces the crawl's own shared circuit
	// breaker (tests tune the threshold and cooldown through this).
	Breaker *retry.Breaker
}

const defaultMaxPatchBytes = 4 << 20

func (c *Crawler) maxPatchBytes() int64 {
	switch {
	case c.MaxPatchBytes > 0:
		return c.MaxPatchBytes
	case c.MaxPatchBytes < 0:
		return 0 // unlimited
	default:
		return defaultMaxPatchBytes
	}
}

// policy builds the retry policy every fetch of one Crawl runs under,
// sharing a single circuit breaker, both instrumented against reg.
func (c *Crawler) policy(reg *telemetry.Registry) (retry.Policy, *retry.Breaker) {
	br := c.Breaker
	if br == nil {
		br = retry.NewBreaker(retry.BreakerConfig{Registry: reg})
	}
	return retry.Policy{
		MaxAttempts: c.MaxAttempts,
		BaseDelay:   c.RetryBaseDelay,
		MaxDelay:    c.RetryMaxDelay,
		Seed:        c.Seed,
		Breaker:     br,
		Registry:    reg,
	}, br
}

// Crawl fetches the feed and downloads every Patch-tagged GitHub commit
// reference, returning cleaned C/C++ patches in feed order. Downloads run
// on a bounded worker pool; each fetch is retried with backoff, and
// downloads that exhaust their budget land in CrawlStats.Quarantine.
// ctx cancellation aborts the crawl with a wrapped context error.
func (c *Crawler) Crawl(ctx context.Context) ([]*CrawledPatch, CrawlStats, error) {
	hub := telemetry.HubFromContext(ctx)
	ctx, crawlSpan := telemetry.Start(ctx, "nvd.crawl")
	var stats CrawlStats
	defer func() {
		// Publish whatever the crawl accomplished, including on error and
		// cancellation paths, so a degraded crawl is visible on /metrics.
		reg := hub.Registry
		reg.Counter(MetricDownloads).Add(float64(stats.Downloaded))
		reg.Counter(MetricRetries).Add(float64(stats.Retries))
		reg.Counter(MetricQuarantined).Add(float64(stats.Quarantined))
		reg.Counter(MetricEmptyAfterClean).Add(float64(stats.EmptyAfterClean))
		reg.Counter(MetricBreakerTrips).Add(float64(stats.BreakerTrips))
		crawlSpan.SetAttr("entries", stats.Entries)
		crawlSpan.SetAttr("downloaded", stats.Downloaded)
		crawlSpan.SetAttr("retries", stats.Retries)
		crawlSpan.SetAttr("quarantined", stats.Quarantined)
		crawlSpan.End()
	}()
	client := c.Client
	if client == nil {
		// Keep-alives are off: net/http transparently re-sends an
		// idempotent request whose reused connection died, which would
		// consume fault-injection budget invisibly and make attempt
		// accounting (and with it the determinism contract) depend on
		// connection-pool timing.
		client = &http.Client{
			Timeout:   10 * time.Second,
			Transport: &http.Transport{DisableKeepAlives: true},
		}
	}
	conc := c.Concurrency
	if conc <= 0 {
		conc = 8
	}
	policy, breaker := c.policy(hub.Registry)

	feedCtx, feedSpan := telemetry.Start(ctx, "nvd.fetch_feed")
	feed, attempts, err := c.fetchFeed(feedCtx, client, policy)
	feedSpan.SetAttr("attempts", attempts)
	feedSpan.End()
	if attempts > 1 {
		stats.Retries += attempts - 1
	}
	if err != nil {
		stats.BreakerTrips = breaker.Trips()
		return nil, stats, err
	}
	stats.Entries = len(feed.Entries)

	type job struct {
		cve  string
		repo string
		hash string
		url  string
	}
	var jobs []job
	for _, e := range feed.Entries {
		found := false
		for _, ref := range e.References {
			if !hasTag(ref.Tags, "Patch") {
				continue
			}
			m := commitURLRe.FindStringSubmatch(ref.URL)
			if m == nil {
				continue
			}
			found = true
			jobs = append(jobs, job{cve: e.ID, repo: m[1], hash: m[2], url: ref.URL + ".patch"})
		}
		if found {
			stats.WithPatchRefs++
		}
	}
	if c.Progress != nil {
		c.Progress(0, len(jobs))
	}
	_, dlSpan := telemetry.Start(ctx, "nvd.download")
	dlSpan.SetAttr("jobs", len(jobs))

	// Fixed-size worker pool over job indices. Results (and quarantine
	// entries) land at their job's index so the output order is
	// deterministic (feed order) no matter how the downloads interleave.
	results := make([]*CrawledPatch, len(jobs))
	quarantined := make([]*QuarantinedDownload, len(jobs))
	idxCh := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards stats and done
		done int
	)
	if conc > len(jobs) {
		conc = len(jobs)
	}
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if ctx.Err() != nil {
					// Drained without fetching; still counts toward
					// progress so -progress reaches 100% on cancellation.
					mu.Lock()
					done++
					d := done
					mu.Unlock()
					if c.Progress != nil {
						c.Progress(d, len(jobs))
					}
					continue
				}
				j := jobs[i]
				var cp *CrawledPatch
				attempts, fetchErr := policy.Do(ctx, j.url, func(ctx context.Context) error {
					p, err := c.fetchPatch(ctx, client, j.url)
					if err != nil {
						return err
					}
					cp = p
					return nil
				})
				mu.Lock()
				done++
				d := done
				if attempts > 1 {
					stats.Retries += attempts - 1
				}
				if fetchErr != nil {
					if ctx.Err() == nil {
						// A genuine failure, not cancellation noise.
						stats.Errors++
						quarantined[i] = &QuarantinedDownload{
							CVE: j.cve, Repo: j.repo, Hash: j.hash, URL: j.url,
							Attempts: attempts, LastError: canonicalError(fetchErr),
						}
					}
				} else {
					stats.Downloaded++
					cp.CVE = j.cve
					cp.Repo = j.repo
					cp.Hash = j.hash
					if len(cp.Patch.Files) == 0 {
						stats.EmptyAfterClean++
					} else {
						results[i] = cp
					}
				}
				mu.Unlock()
				if c.Progress != nil {
					c.Progress(d, len(jobs))
				}
			}
		}()
	}
	submitted := 0
feed:
	for i := range jobs {
		select {
		case idxCh <- i:
			submitted++
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	if submitted < len(jobs) {
		// Jobs never handed to a worker still complete the progress count.
		mu.Lock()
		done += len(jobs) - submitted
		d := done
		mu.Unlock()
		if c.Progress != nil {
			c.Progress(d, len(jobs))
		}
	}
	for _, q := range quarantined {
		if q != nil {
			stats.Quarantine = append(stats.Quarantine, *q)
		}
	}
	stats.Quarantined = len(stats.Quarantine)
	stats.BreakerTrips = breaker.Trips()
	dlSpan.End()
	if err := ctx.Err(); err != nil {
		return nil, stats, fmt.Errorf("nvd: crawl canceled: %w", err)
	}

	out := make([]*CrawledPatch, 0, len(results))
	for _, cp := range results {
		if cp != nil {
			out = append(out, cp)
		}
	}
	return out, stats, nil
}

func (c *Crawler) fetchFeed(ctx context.Context, client *http.Client, policy retry.Policy) (*Feed, int, error) {
	var feed *Feed
	attempts, err := policy.Do(ctx, "/feeds/cve.json", func(ctx context.Context) error {
		f, err := c.fetchFeedOnce(ctx, client)
		if err != nil {
			return err
		}
		feed = f
		return nil
	})
	return feed, attempts, err
}

func (c *Crawler) fetchFeedOnce(ctx context.Context, client *http.Client) (*Feed, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/feeds/cve.json", nil)
	if err != nil {
		return nil, retry.Permanent(fmt.Errorf("nvd: build feed request: %w", err))
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("nvd: fetch feed: %w", err)
	}
	defer resp.Body.Close()
	if err := statusError(resp, "feed"); err != nil {
		return nil, err
	}
	var feed Feed
	if err := json.NewDecoder(resp.Body).Decode(&feed); err != nil {
		// Truncated or corrupted payload; the next attempt may decode.
		return nil, fmt.Errorf("nvd: decode feed: %w", err)
	}
	return &feed, nil
}

// fetchPatch performs one download attempt. Transient failures (connection
// errors, 429/5xx, truncated or unparsable bodies) return plain errors the
// retry policy will re-attempt; conclusive ones (other HTTP statuses,
// oversized patches) are marked permanent.
func (c *Crawler) fetchPatch(ctx context.Context, client *http.Client, url string) (*CrawledPatch, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, retry.Permanent(fmt.Errorf("nvd: build patch request: %w", err))
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("nvd: fetch patch: %w", err)
	}
	defer resp.Body.Close()
	if err := statusError(resp, "patch"); err != nil {
		return nil, err
	}
	var body []byte
	if limit := c.maxPatchBytes(); limit > 0 {
		body, err = io.ReadAll(io.LimitReader(resp.Body, limit+1))
		if err == nil && int64(len(body)) > limit {
			return nil, retry.Permanent(fmt.Errorf("nvd: patch too large: %s exceeds the %d-byte limit", url, limit))
		}
	} else {
		body, err = io.ReadAll(resp.Body)
	}
	if err != nil {
		return nil, fmt.Errorf("nvd: read patch: %w", err)
	}
	p, err := diff.Parse(string(body))
	if err != nil {
		return nil, fmt.Errorf("nvd: parse patch: %w", err)
	}
	before := len(p.Files)
	cleaned := p.StripNonCFamily()
	return &CrawledPatch{Patch: cleaned, FilesDropped: before - len(cleaned.Files)}, nil
}

// statusError classifies a non-200 response: 429 carries the server's
// Retry-After hint, 5xx is transient, anything else is permanent.
func statusError(resp *http.Response, what string) error {
	switch {
	case resp.StatusCode == http.StatusOK:
		return nil
	case resp.StatusCode == http.StatusTooManyRequests:
		err := fmt.Errorf("nvd: %s status %s", what, resp.Status)
		if after, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
			return retry.WithRetryAfter(err, after)
		}
		return err
	case resp.StatusCode >= 500:
		return fmt.Errorf("nvd: %s status %s", what, resp.Status)
	default:
		return retry.Permanent(fmt.Errorf("nvd: %s status %s", what, resp.Status))
	}
}

// parseRetryAfter accepts delay seconds (integral or fractional) or an
// HTTP date.
func parseRetryAfter(h string) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	if secs, err := strconv.ParseFloat(h, 64); err == nil && secs >= 0 {
		return time.Duration(secs * float64(time.Second)), true
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// canonicalError renders an error for the quarantine report. Transport
// failures (url.Error) are reduced to a stable description: whether an
// aborted connection surfaces as EOF or ECONNRESET depends on timing, and
// the quarantine report must be identical for identical seeds.
func canonicalError(err error) string {
	var uerr *url.Error
	if errors.As(err, &uerr) {
		reason := "connection failure"
		if uerr.Timeout() {
			reason = "timeout"
		}
		return fmt.Sprintf("nvd: fetch %s: %s", strings.ToLower(uerr.Op), reason)
	}
	return err.Error()
}

func hasTag(tags []string, want string) bool {
	for _, t := range tags {
		if strings.EqualFold(t, want) {
			return true
		}
	}
	return false
}
