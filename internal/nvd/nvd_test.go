package nvd

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"patchdb/internal/gitrepo"
)

// world builds a store with one repo and two commits and a started service.
func world(t *testing.T) (*Service, string, *gitrepo.Commit, *gitrepo.Commit) {
	t.Helper()
	store := gitrepo.NewStore()
	repo := gitrepo.NewRepo("acme/libfoo")
	if err := store.Add(repo); err != nil {
		t.Fatal(err)
	}
	repo.SeedFile("src/a.c", "int x;\nint y;\n")
	c1 := repo.Commit("alice", "2019-01-01", "fix overflow", map[string]string{"src/a.c": "int x;\nlong y;\n"})
	repo.SeedFile("docs/README", "hello\n")
	c2 := repo.Commit("bob", "2019-02-02", "docs only", map[string]string{"docs/README": "hello world\n"})

	svc := NewService(store)
	base, err := svc.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := svc.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return svc, base, c1, c2
}

func TestServePatch(t *testing.T) {
	_, base, c1, _ := world(t)
	resp, err := http.Get(GitHubCommitURL(base, "acme/libfoo", c1.Hash) + ".patch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "diff --git a/src/a.c") {
		t.Errorf("patch body = %q", body)
	}
}

func TestServeUnknownAndBadPaths(t *testing.T) {
	_, base, _, _ := world(t)
	for _, path := range []string{
		"/github/acme/libfoo/commit/0000000000000000000000000000000000000000.patch",
		"/github/acme/libfoo/commit/nothash", // no .patch suffix
		"/other/endpoint",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %s, want 404", path, resp.Status)
		}
	}
}

func TestCrawlEndToEnd(t *testing.T) {
	svc, base, c1, c2 := world(t)
	svc.AddEntry(Entry{
		ID: "CVE-2019-0001",
		References: []Reference{
			{URL: GitHubCommitURL(base, "acme/libfoo", c1.Hash), Tags: []string{"Patch"}},
			{URL: "https://vendor.example.com/advisory", Tags: []string{"Vendor Advisory"}},
		},
	})
	// An entry whose patch link points at a docs-only commit: downloads but
	// is dropped after C/C++ cleaning.
	svc.AddEntry(Entry{
		ID: "CVE-2019-0002",
		References: []Reference{
			{URL: GitHubCommitURL(base, "acme/libfoo", c2.Hash), Tags: []string{"Patch"}},
		},
	})
	// An entry with no patch-tagged reference at all.
	svc.AddEntry(Entry{ID: "CVE-2019-0003", References: []Reference{
		{URL: "https://example.com/x", Tags: []string{"Exploit"}},
	}})
	// An entry with a dangling patch link.
	svc.AddEntry(Entry{ID: "CVE-2019-0004", References: []Reference{
		{URL: GitHubCommitURL(base, "acme/libfoo", strings.Repeat("0", 40)), Tags: []string{"Patch"}},
	}})

	crawler := &Crawler{BaseURL: base}
	patches, stats, err := crawler.Crawl(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 4 {
		t.Errorf("entries = %d", stats.Entries)
	}
	if stats.WithPatchRefs != 3 {
		t.Errorf("with patch refs = %d", stats.WithPatchRefs)
	}
	if stats.Downloaded != 2 {
		t.Errorf("downloaded = %d", stats.Downloaded)
	}
	if stats.EmptyAfterClean != 1 {
		t.Errorf("empty after clean = %d", stats.EmptyAfterClean)
	}
	if stats.Errors != 1 {
		t.Errorf("errors = %d", stats.Errors)
	}
	if len(patches) != 1 {
		t.Fatalf("patches = %d", len(patches))
	}
	p := patches[0]
	if p.CVE != "CVE-2019-0001" || p.Hash != c1.Hash || p.Repo != "acme/libfoo" {
		t.Errorf("patch = %+v", p)
	}
	if len(p.Patch.Files) != 1 || p.Patch.Files[0].NewPath != "src/a.c" {
		t.Errorf("patch files = %+v", p.Patch.Files)
	}
}

func TestCrawlTagCaseInsensitive(t *testing.T) {
	svc, base, c1, _ := world(t)
	svc.AddEntry(Entry{ID: "CVE-1", References: []Reference{
		{URL: GitHubCommitURL(base, "acme/libfoo", c1.Hash), Tags: []string{"patch"}},
	}})
	crawler := &Crawler{BaseURL: base}
	patches, _, err := crawler.Crawl(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(patches) != 1 {
		t.Errorf("lowercase tag not matched")
	}
}

func TestCrawlBadBaseURL(t *testing.T) {
	crawler := &Crawler{BaseURL: "http://127.0.0.1:1"} // nothing listens there
	if _, _, err := crawler.Crawl(context.Background()); err == nil {
		t.Error("crawl against dead server succeeded")
	}
}

func TestCrawlCanceledContext(t *testing.T) {
	_, base, _, _ := world(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	crawler := &Crawler{BaseURL: base}
	if _, _, err := crawler.Crawl(ctx); err == nil {
		t.Error("crawl with canceled context succeeded")
	}
}

func TestCommitURLRegex(t *testing.T) {
	cases := []struct {
		url  string
		want bool
	}{
		{"http://x/github/acme/libfoo/commit/0123456789abcdef0123456789abcdef01234567", true},
		{"http://x/github/a/b/commit/abc1234", true},
		{"http://x/github/a/b/commit/xyz", false},      // not hex
		{"http://x/github/a/b/commits/abc1234", false}, // wrong path
	}
	for _, tc := range cases {
		if got := commitURLRe.MatchString(tc.url); got != tc.want {
			t.Errorf("match(%q) = %v, want %v", tc.url, got, tc.want)
		}
	}
}
