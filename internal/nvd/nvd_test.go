package nvd

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"patchdb/internal/gitrepo"
)

// world builds a store with one repo and two commits and a started service.
func world(t *testing.T) (*Service, string, *gitrepo.Commit, *gitrepo.Commit) {
	t.Helper()
	store := gitrepo.NewStore()
	repo := gitrepo.NewRepo("acme/libfoo")
	if err := store.Add(repo); err != nil {
		t.Fatal(err)
	}
	repo.SeedFile("src/a.c", "int x;\nint y;\n")
	c1 := repo.Commit("alice", "2019-01-01", "fix overflow", map[string]string{"src/a.c": "int x;\nlong y;\n"})
	repo.SeedFile("docs/README", "hello\n")
	c2 := repo.Commit("bob", "2019-02-02", "docs only", map[string]string{"docs/README": "hello world\n"})

	svc := NewService(store)
	base, err := svc.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := svc.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return svc, base, c1, c2
}

func TestServePatch(t *testing.T) {
	_, base, c1, _ := world(t)
	resp, err := http.Get(GitHubCommitURL(base, "acme/libfoo", c1.Hash) + ".patch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "diff --git a/src/a.c") {
		t.Errorf("patch body = %q", body)
	}
}

func TestServeUnknownAndBadPaths(t *testing.T) {
	_, base, _, _ := world(t)
	for _, path := range []string{
		"/github/acme/libfoo/commit/0000000000000000000000000000000000000000.patch",
		"/github/acme/libfoo/commit/nothash", // no .patch suffix
		"/other/endpoint",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %s, want 404", path, resp.Status)
		}
	}
}

func TestCrawlEndToEnd(t *testing.T) {
	svc, base, c1, c2 := world(t)
	svc.AddEntry(Entry{
		ID: "CVE-2019-0001",
		References: []Reference{
			{URL: GitHubCommitURL(base, "acme/libfoo", c1.Hash), Tags: []string{"Patch"}},
			{URL: "https://vendor.example.com/advisory", Tags: []string{"Vendor Advisory"}},
		},
	})
	// An entry whose patch link points at a docs-only commit: downloads but
	// is dropped after C/C++ cleaning.
	svc.AddEntry(Entry{
		ID: "CVE-2019-0002",
		References: []Reference{
			{URL: GitHubCommitURL(base, "acme/libfoo", c2.Hash), Tags: []string{"Patch"}},
		},
	})
	// An entry with no patch-tagged reference at all.
	svc.AddEntry(Entry{ID: "CVE-2019-0003", References: []Reference{
		{URL: "https://example.com/x", Tags: []string{"Exploit"}},
	}})
	// An entry with a dangling patch link.
	svc.AddEntry(Entry{ID: "CVE-2019-0004", References: []Reference{
		{URL: GitHubCommitURL(base, "acme/libfoo", strings.Repeat("0", 40)), Tags: []string{"Patch"}},
	}})

	crawler := &Crawler{BaseURL: base}
	patches, stats, err := crawler.Crawl(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 4 {
		t.Errorf("entries = %d", stats.Entries)
	}
	if stats.WithPatchRefs != 3 {
		t.Errorf("with patch refs = %d", stats.WithPatchRefs)
	}
	if stats.Downloaded != 2 {
		t.Errorf("downloaded = %d", stats.Downloaded)
	}
	if stats.EmptyAfterClean != 1 {
		t.Errorf("empty after clean = %d", stats.EmptyAfterClean)
	}
	if stats.Errors != 1 {
		t.Errorf("errors = %d", stats.Errors)
	}
	if len(patches) != 1 {
		t.Fatalf("patches = %d", len(patches))
	}
	p := patches[0]
	if p.CVE != "CVE-2019-0001" || p.Hash != c1.Hash || p.Repo != "acme/libfoo" {
		t.Errorf("patch = %+v", p)
	}
	if len(p.Patch.Files) != 1 || p.Patch.Files[0].NewPath != "src/a.c" {
		t.Errorf("patch files = %+v", p.Patch.Files)
	}
}

func TestCrawlTagCaseInsensitive(t *testing.T) {
	svc, base, c1, _ := world(t)
	svc.AddEntry(Entry{ID: "CVE-1", References: []Reference{
		{URL: GitHubCommitURL(base, "acme/libfoo", c1.Hash), Tags: []string{"patch"}},
	}})
	crawler := &Crawler{BaseURL: base}
	patches, _, err := crawler.Crawl(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(patches) != 1 {
		t.Errorf("lowercase tag not matched")
	}
}

func TestCrawlBadBaseURL(t *testing.T) {
	crawler := &Crawler{BaseURL: "http://127.0.0.1:1"} // nothing listens there
	if _, _, err := crawler.Crawl(context.Background()); err == nil {
		t.Error("crawl against dead server succeeded")
	}
}

func TestCrawlCanceledContext(t *testing.T) {
	_, base, _, _ := world(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	crawler := &Crawler{BaseURL: base}
	if _, _, err := crawler.Crawl(ctx); err == nil {
		t.Error("crawl with canceled context succeeded")
	}
}

func TestCommitURLRegex(t *testing.T) {
	cases := []struct {
		url  string
		want bool
	}{
		{"http://x/github/acme/libfoo/commit/0123456789abcdef0123456789abcdef01234567", true},
		{"http://x/github/a/b/commit/abc1234", true},
		{"http://x/github/a/b/commit/xyz", false},      // not hex
		{"http://x/github/a/b/commits/abc1234", false}, // wrong path
	}
	for _, tc := range cases {
		if got := commitURLRe.MatchString(tc.url); got != tc.want {
			t.Errorf("match(%q) = %v, want %v", tc.url, got, tc.want)
		}
	}
}

// multiCommitWorld seeds n distinct C-touching commits and one feed entry per
// commit, returning the service, base URL, and the commit hashes in feed
// order.
func multiCommitWorld(t *testing.T, n int) (*Service, string, []string) {
	t.Helper()
	store := gitrepo.NewStore()
	repo := gitrepo.NewRepo("acme/many")
	if err := store.Add(repo); err != nil {
		t.Fatal(err)
	}
	repo.SeedFile("src/m.c", "int v0;\n")
	hashes := make([]string, 0, n)
	for i := 0; i < n; i++ {
		c := repo.Commit("alice", "2020-01-01", fmt.Sprintf("fix %d", i),
			map[string]string{"src/m.c": fmt.Sprintf("int v%d;\n", i+1)})
		hashes = append(hashes, c.Hash)
	}
	svc := NewService(store)
	base, err := svc.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := svc.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	for i, h := range hashes {
		svc.AddEntry(Entry{ID: fmt.Sprintf("CVE-2020-%04d", i), References: []Reference{
			{URL: GitHubCommitURL(base, "acme/many", h), Tags: []string{"Patch"}},
		}})
	}
	return svc, base, hashes
}

func TestCrawlPreservesFeedOrder(t *testing.T) {
	// Concurrent downloads complete in arbitrary order; the crawl result
	// must still follow the feed, at any concurrency.
	_, base, hashes := multiCommitWorld(t, 40)
	for _, conc := range []int{1, 4, 32} {
		crawler := &Crawler{BaseURL: base, Concurrency: conc}
		patches, stats, err := crawler.Crawl(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(patches) != len(hashes) {
			t.Fatalf("conc=%d: patches = %d, want %d", conc, len(patches), len(hashes))
		}
		for i, p := range patches {
			if p.Hash != hashes[i] {
				t.Fatalf("conc=%d: patch %d = %s, want %s (feed order lost)", conc, i, p.Hash, hashes[i])
			}
		}
		if stats.Downloaded != len(hashes) {
			t.Errorf("conc=%d: downloaded = %d", conc, stats.Downloaded)
		}
	}
}

func TestCrawlProgress(t *testing.T) {
	_, base, hashes := multiCommitWorld(t, 10)
	var mu sync.Mutex
	var maxDone, calls, total int
	crawler := &Crawler{BaseURL: base, Concurrency: 4, Progress: func(done, tot int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		total = tot
		if done > maxDone {
			maxDone = done
		}
	}}
	if _, _, err := crawler.Crawl(context.Background()); err != nil {
		t.Fatal(err)
	}
	if total != len(hashes) || maxDone != len(hashes) {
		t.Errorf("progress saw %d/%d, want %d/%d", maxDone, total, len(hashes), len(hashes))
	}
	if calls != len(hashes)+1 { // initial 0/N plus one per download
		t.Errorf("progress calls = %d, want %d", calls, len(hashes)+1)
	}
}

func TestCrawlCancelMidway(t *testing.T) {
	_, base, _ := multiCommitWorld(t, 30)
	ctx, cancel := context.WithCancel(context.Background())
	crawler := &Crawler{BaseURL: base, Concurrency: 2, Progress: func(done, total int) {
		if done >= 3 {
			cancel()
		}
	}}
	_, _, err := crawler.Crawl(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestCloseSurfacesServeError(t *testing.T) {
	store := gitrepo.NewStore()
	svc := NewService(store)
	if _, err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill the listener out from under the server: Serve returns a real
	// error (not ErrServerClosed), which Close must surface instead of
	// swallowing.
	if err := svc.listener.Close(); err != nil {
		t.Fatal(err)
	}
	// Wait for the serve goroutine to observe the dead listener; calling
	// Close immediately can win the race and turn the accept failure into
	// a clean ErrServerClosed.
	<-svc.done
	err := svc.Close()
	if err == nil {
		t.Fatal("Close returned nil after the serve loop died")
	}
	if !strings.Contains(err.Error(), "nvd: serve:") {
		t.Errorf("Close error = %v, want a wrapped serve error", err)
	}
}

func TestCrawlCancelProgressReachesTotal(t *testing.T) {
	_, base, _ := multiCommitWorld(t, 30)
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	var maxDone, total int
	crawler := &Crawler{BaseURL: base, Concurrency: 2, Progress: func(done, tot int) {
		mu.Lock()
		defer mu.Unlock()
		total = tot
		if done > maxDone {
			maxDone = done
		}
		if done == 3 {
			cancel()
		}
	}}
	_, _, err := crawler.Crawl(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Drained and never-submitted jobs still count: a canceled crawl's
	// progress bar must land on 100%, not stall at the cancellation point.
	mu.Lock()
	defer mu.Unlock()
	if maxDone != total || total != 30 {
		t.Errorf("progress peaked at %d/%d, want 30/30", maxDone, total)
	}
}
