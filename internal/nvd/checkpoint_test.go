package nvd

import (
	"context"
	"encoding/json"
	"testing"

	"patchdb/internal/diff"
)

// TestSaveRestorePatchesRoundTrip crawls a real served feed, journals the
// output through the Saved form (including a JSON cycle, as the checkpoint
// layer does), and asserts restored patches format byte-identically.
func TestSaveRestorePatchesRoundTrip(t *testing.T) {
	svc, base, c1, _ := world(t)
	svc.AddEntry(Entry{
		ID: "CVE-2019-0001",
		References: []Reference{{
			URL:  GitHubCommitURL(base, "acme/libfoo", c1.Hash),
			Tags: []string{"Patch"},
		}},
	})
	crawler := &Crawler{BaseURL: base, Concurrency: 1, MaxAttempts: 1}
	crawled, _, err := crawler.Crawl(context.Background())
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if len(crawled) != 1 {
		t.Fatalf("crawled %d patches, want 1", len(crawled))
	}

	saved := SavePatches(crawled)
	data, err := json.Marshal(saved)
	if err != nil {
		t.Fatal(err)
	}
	var loaded []SavedPatch
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	restored, err := RestorePatches(loaded)
	if err != nil {
		t.Fatalf("RestorePatches: %v", err)
	}
	if len(restored) != 1 {
		t.Fatalf("restored %d patches, want 1", len(restored))
	}
	got, want := restored[0], crawled[0]
	if got.CVE != want.CVE || got.Repo != want.Repo || got.Hash != want.Hash ||
		got.FilesDropped != want.FilesDropped {
		t.Errorf("metadata mismatch: got %+v want %+v", got, want)
	}
	if diff.Format(got.Patch) != diff.Format(want.Patch) {
		t.Errorf("patch text not bit-identical after journal round trip:\n got %q\nwant %q",
			diff.Format(got.Patch), diff.Format(want.Patch))
	}
}

func TestRestorePatchesRejectsGarbage(t *testing.T) {
	if _, err := RestorePatches([]SavedPatch{{Hash: "abc", Patch: "not a patch"}}); err == nil {
		t.Fatal("RestorePatches accepted unparseable text")
	}
}
