package categorize

import (
	"testing"

	"patchdb/internal/corpus"
	"patchdb/internal/diff"
)

func mustParse(t *testing.T, text string) *diff.Patch {
	t.Helper()
	p, err := diff.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func patchText(removed, added []string) string {
	text := "commit 0123456789abcdef\ndiff --git a/f.c b/f.c\n--- a/f.c\n+++ b/f.c\n@@ -1,0 +1,0 @@ int fn(void)\n context\n"
	for _, l := range removed {
		text += "-" + l + "\n"
	}
	for _, l := range added {
		text += "+" + l + "\n"
	}
	return text + " context\n"
}

func TestCategorizeHandCases(t *testing.T) {
	cases := []struct {
		name    string
		removed []string
		added   []string
		want    corpus.Pattern
	}{
		{
			"bound check added",
			nil,
			[]string{"if (len > (int)sizeof(tmp))", "\treturn -1;"},
			corpus.PatternBoundCheck,
		},
		{
			"null check added",
			nil,
			[]string{"if (ptr == NULL)", "\treturn -1;"},
			corpus.PatternNullCheck,
		},
		{
			"sanity check added",
			nil,
			[]string{"if (state->mode == MODE_RAW)", "\treturn 0;"},
			corpus.PatternSanityCheck,
		},
		{
			"variable type change",
			[]string{"int idx;"},
			[]string{"unsigned int idx;"},
			corpus.PatternVarDef,
		},
		{
			"variable value change",
			[]string{"int limit = 64;"},
			[]string{"int limit = 4096;"},
			corpus.PatternVarValue,
		},
		{
			"memset zeroing",
			nil,
			[]string{"memset(buf, 0, sizeof(buf));"},
			corpus.PatternVarValue,
		},
		{
			"jump added",
			nil,
			[]string{"goto fail;"},
			corpus.PatternJump,
		},
		{
			"call swap",
			[]string{"\tstrcpy(dst, src);"},
			[]string{"\tstrlcpy(dst, src, size);"},
			corpus.PatternFuncCall,
		},
		{
			"call added",
			nil,
			[]string{"\trelease_state(ctx);"},
			corpus.PatternFuncCall,
		},
		{
			"pure move",
			[]string{"ctx->refs++;"},
			[]string{"ctx->refs++;"},
			corpus.PatternMove,
		},
		{
			"signature change",
			[]string{"static int fn(struct s *p)"},
			[]string{"static long fn(struct s *p)"},
			corpus.PatternFuncDecl,
		},
		{
			"parameter change",
			[]string{"static int fn(struct s *p)"},
			[]string{"static int fn(struct s *p, int cap)"},
			corpus.PatternFuncParam,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustParse(t, patchText(tc.removed, tc.added))
			if got := Categorize(p); got != tc.want {
				t.Errorf("Categorize = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCategorizeRedesign(t *testing.T) {
	var removed, added []string
	for i := 0; i < 9; i++ {
		removed = append(removed, "\told_line(i);")
	}
	added = append(added,
		"\tif (count > 0 && ctx->refs < 8) {",
		"\t\tint step = helper(count, 2);",
		"\t\twhile (step > 0) {",
		"\t\t\tstep >>= 1;",
		"\t\t}",
		"\t\tret = validate(ret);",
		"\t}",
		"\tcommit_state(ctx);",
	)
	p := mustParse(t, patchText(removed, added))
	if got := Categorize(p); got != corpus.PatternRedesign {
		t.Errorf("Categorize = %v, want redesign", got)
	}
}

// TestCategorizerAgreementWithGenerator checks the categorizer recovers the
// generator's ground-truth class well above chance, and near-perfectly for
// the syntactically crisp classes.
func TestCategorizerAgreementWithGenerator(t *testing.T) {
	g := corpus.NewGenerator(corpus.Config{Seed: 21})
	perClass := map[corpus.Pattern][2]int{} // hits, total
	for p := corpus.Pattern(1); int(p) <= corpus.NumPatterns; p++ {
		for i := 0; i < 25; i++ {
			lc := g.SecurityCommitOfPattern(p)
			got := Categorize(lc.Commit.Patch())
			entry := perClass[p]
			entry[1]++
			if got == p {
				entry[0]++
			}
			perClass[p] = entry
		}
	}
	total, hits := 0, 0
	for p, e := range perClass {
		total += e[1]
		hits += e[0]
		t.Logf("pattern %2d (%s): %d/%d", int(p), p, e[0], e[1])
	}
	overall := float64(hits) / float64(total)
	if overall < 0.45 {
		t.Errorf("overall agreement = %.2f, want > 0.45 (jitter makes perfect agreement impossible)", overall)
	}
	// The crisp classes must be recovered reliably; mixed commits (the
	// generator's jitter bundles incidental edits) cap what rules can do on
	// the rest.
	for _, p := range []corpus.Pattern{
		corpus.PatternVarDef, corpus.PatternVarValue,
		corpus.PatternFuncDecl, corpus.PatternFuncCall,
	} {
		e := perClass[p]
		if float64(e[0])/float64(e[1]) < 0.6 {
			t.Errorf("pattern %v agreement = %d/%d, want >= 60%%", p, e[0], e[1])
		}
	}
	for _, p := range []corpus.Pattern{corpus.PatternJump, corpus.PatternMove} {
		e := perClass[p]
		if float64(e[0])/float64(e[1]) < 0.3 {
			t.Errorf("pattern %v agreement = %d/%d, want >= 30%%", p, e[0], e[1])
		}
	}
}

func TestCategorizeEmptyPatch(t *testing.T) {
	p := &diff.Patch{Commit: "deadbeef"}
	if got := Categorize(p); got != corpus.PatternOther {
		t.Errorf("empty patch = %v, want others", got)
	}
}
