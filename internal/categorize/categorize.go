// Package categorize assigns a security patch to one of the 12 code-change
// pattern classes of Table V using syntactic rules over its hunks. The paper
// classifies patches manually; this categorizer reproduces that taxonomy
// mechanically so composition studies (Table V, Fig. 6) and downstream users
// can label arbitrary patches.
package categorize

import (
	"strings"

	"patchdb/internal/corpus"
	"patchdb/internal/ctoken"
	"patchdb/internal/diff"
)

// evidence aggregates the syntactic signals the rules vote on.
type evidence struct {
	addedLines   int
	removedLines int

	addedIfs     int
	changedIfs   int // if-lines present on both sides but textually altered
	boundish     int // conditions comparing sizes/indices or using sizeof
	nullish      int // conditions testing NULL / !ptr
	otherCheck   int
	addedJumps   int
	addedCalls   int
	removedCalls int
	changedSig   int // function signature lines changed
	paramChange  int // signature change that alters the parameter list
	declType     int // declaration lines with same variable, new type
	valueChange  int // declaration/assignment value changes, memset-style zeroing
	movedLines   int // identical lines removed in one place, added in another
	callSwaps    int // call replaced by a different callee on the same line shape
}

// Categorize inspects a patch and returns the most plausible pattern class.
func Categorize(p *diff.Patch) corpus.Pattern {
	ev := gather(p)

	total := ev.addedLines + ev.removedLines
	switch {
	case ev.movedLines > 0 && ev.movedLines*3 >= total && total > 0:
		return corpus.PatternMove
	case total >= 12 || (ev.addedIfs >= 2 && ev.addedCalls >= 2 && total > 8):
		return corpus.PatternRedesign
	case ev.addedJumps > 0:
		// Error-handling fixes pair a small check with the new jump; the
		// jump is the discriminating signal (paper Type 9).
		return corpus.PatternJump
	case ev.nullish > 0 && (ev.addedIfs > 0 || ev.changedIfs > 0):
		return corpus.PatternNullCheck
	case ev.boundish > 0 && (ev.addedIfs > 0 || ev.changedIfs > 0):
		return corpus.PatternBoundCheck
	case ev.addedIfs > 0 || ev.changedIfs > 0:
		return corpus.PatternSanityCheck
	case ev.paramChange > 0:
		return corpus.PatternFuncParam
	case ev.changedSig > 0:
		return corpus.PatternFuncDecl
	case ev.declType > 0:
		return corpus.PatternVarDef
	case ev.valueChange > 0:
		return corpus.PatternVarValue
	case ev.callSwaps > 0 || ev.addedCalls > 0 || ev.removedCalls > 0:
		return corpus.PatternFuncCall
	default:
		return corpus.PatternOther
	}
}

func gather(p *diff.Patch) evidence {
	var ev evidence
	var allAdded, allRemoved []string
	for _, f := range p.Files {
		for _, h := range f.Hunks {
			gatherHunk(h, &ev)
			allAdded = append(allAdded, h.AddedLines()...)
			allRemoved = append(allRemoved, h.RemovedLines()...)
		}
	}
	// Patch-level move detection: a statement removed in one hunk and
	// re-added verbatim in another (gatherHunk only sees same-hunk moves).
	removedSet := make(map[string]int, len(allRemoved))
	for _, ln := range allRemoved {
		removedSet[strings.TrimSpace(ln)]++
	}
	moved := 0
	for _, ln := range allAdded {
		tr := strings.TrimSpace(ln)
		if tr != "" && removedSet[tr] > 0 {
			removedSet[tr]--
			moved++
		}
	}
	if moved > ev.movedLines {
		ev.movedLines = moved
	}
	return ev
}

func gatherHunk(h *diff.Hunk, ev *evidence) {
	added := h.AddedLines()
	removed := h.RemovedLines()
	ev.addedLines += len(added)
	ev.removedLines += len(removed)

	removedSet := make(map[string]int, len(removed))
	for _, ln := range removed {
		removedSet[strings.TrimSpace(ln)]++
	}
	for _, ln := range added {
		t := strings.TrimSpace(ln)
		if removedSet[t] > 0 {
			removedSet[t]--
			ev.movedLines++
		}
	}

	removedIfConds := condLines(removed)
	addedIfConds := condLines(added)
	switch {
	case len(addedIfConds) > len(removedIfConds):
		ev.addedIfs += len(addedIfConds) - len(removedIfConds)
	case len(addedIfConds) > 0 && len(addedIfConds) == len(removedIfConds):
		for i := range addedIfConds {
			if addedIfConds[i] != removedIfConds[i] {
				ev.changedIfs++
			}
		}
	}
	for _, cond := range addedIfConds {
		switch classifyCond(cond) {
		case condBound:
			ev.boundish++
		case condNull:
			ev.nullish++
		default:
			ev.otherCheck++
		}
	}

	for _, ln := range added {
		t := strings.TrimSpace(ln)
		if strings.HasPrefix(t, "goto ") || t == "break;" || t == "continue;" ||
			strings.HasSuffix(t, ":") && !strings.Contains(t, " ") {
			ev.addedJumps++
		}
	}

	addedCalls, addedSigs := callsAndSigs(added)
	removedCalls, removedSigs := callsAndSigs(removed)
	if addedCalls > removedCalls {
		ev.addedCalls += addedCalls - removedCalls
	} else {
		ev.removedCalls += removedCalls - addedCalls
	}
	if addedCalls > 0 && addedCalls == removedCalls && len(added) == len(removed) {
		ev.callSwaps++
	}
	if addedSigs > 0 && removedSigs > 0 {
		ev.changedSig++
		if paramListChanged(added, removed) {
			ev.paramChange++
		}
	}

	gatherDecls(added, removed, ev)
}

// condLines extracts the conditions of if/while lines.
func condLines(lines []string) []string {
	var out []string
	for _, ln := range lines {
		t := strings.TrimSpace(ln)
		if strings.HasPrefix(t, "if (") || strings.HasPrefix(t, "} else if (") {
			out = append(out, t)
		}
	}
	return out
}

type condKind int

const (
	condBound condKind = iota + 1
	condNull
	condOther
)

func classifyCond(cond string) condKind {
	switch {
	case strings.Contains(cond, "NULL") || strings.Contains(cond, "!"):
		// `!ptr`-style tests; exclude != which is relational.
		if strings.Contains(cond, "NULL") || hasBareNegation(cond) {
			return condNull
		}
		return condOther
	case strings.Contains(cond, "sizeof") ||
		strings.Contains(cond, "< 0") || strings.Contains(cond, ">= 0"):
		return condBound
	case strings.ContainsAny(cond, "<>"):
		// Size/index comparison against a constant is bound-ish when a
		// number appears.
		for _, tok := range ctoken.LexLine(cond) {
			if tok.Kind == ctoken.Number {
				return condBound
			}
		}
		return condOther
	default:
		return condOther
	}
}

func hasBareNegation(cond string) bool {
	for i := 0; i < len(cond); i++ {
		if cond[i] == '!' && (i+1 >= len(cond) || cond[i+1] != '=') {
			return true
		}
	}
	return false
}

// callsAndSigs counts function-call tokens and definition-like signature
// lines.
func callsAndSigs(lines []string) (calls, sigs int) {
	for _, ln := range lines {
		toks := ctoken.LexLine(ln)
		lineCalls := 0
		for _, t := range toks {
			if ctoken.IsFunctionCall(t) {
				lineCalls++
			}
		}
		calls += lineCalls
		if lineCalls > 0 && len(ln) > 0 && ln[0] != ' ' && ln[0] != '\t' &&
			!strings.HasSuffix(strings.TrimSpace(ln), ";") {
			sigs++
		}
	}
	return calls, sigs
}

func paramListChanged(added, removed []string) bool {
	a := firstSigParams(added)
	r := firstSigParams(removed)
	return a != "" && r != "" && a != r
}

func firstSigParams(lines []string) string {
	for _, ln := range lines {
		if len(ln) == 0 || ln[0] == ' ' || ln[0] == '\t' {
			continue
		}
		open := strings.IndexByte(ln, '(')
		closeIdx := strings.LastIndexByte(ln, ')')
		if open >= 0 && closeIdx > open {
			return ln[open+1 : closeIdx]
		}
	}
	return ""
}

// gatherDecls detects declaration-type changes and value changes between
// paired removed/added lines.
func gatherDecls(added, removed []string, ev *evidence) {
	declVar := func(ln string) (name, rest string, ok bool) {
		toks := ctoken.LexLine(ln)
		if len(toks) < 2 || toks[0].Kind != ctoken.Keyword {
			return "", "", false
		}
		for i := 1; i < len(toks); i++ {
			if toks[i].Kind == ctoken.Identifier {
				return toks[i].Text, strings.TrimSpace(ln), true
			}
			if toks[i].Kind != ctoken.Keyword && toks[i].Text != "*" {
				break
			}
		}
		return "", "", false
	}
	removedDecls := make(map[string]string)
	for _, ln := range removed {
		if name, text, ok := declVar(ln); ok {
			removedDecls[name] = text
		}
	}
	for _, ln := range added {
		name, text, ok := declVar(ln)
		if !ok {
			if strings.Contains(ln, "memset(") {
				ev.valueChange++
			}
			continue
		}
		old, existed := removedDecls[name]
		if !existed {
			continue
		}
		oldType, oldVal := splitDecl(old)
		newType, newVal := splitDecl(text)
		if oldType != newType {
			ev.declType++
		} else if oldVal != newVal {
			ev.valueChange++
		}
	}
}

// splitDecl separates a declaration's type part from its initializer part.
func splitDecl(decl string) (typePart, valPart string) {
	if eq := strings.IndexByte(decl, '='); eq >= 0 {
		return strings.TrimSpace(decl[:eq]), strings.TrimSpace(decl[eq+1:])
	}
	return decl, ""
}
