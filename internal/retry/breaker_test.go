package retry

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	return NewBreaker(BreakerConfig{
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		Clock:            clock.Now,
	}), clock
}

// mustAllow asserts admission and returns the release callback.
func mustAllow(t *testing.T, b *Breaker) func(bool) {
	t.Helper()
	release, wait := b.Allow()
	if release == nil {
		t.Fatalf("rejected (wait %s), want admitted", wait)
	}
	return release
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		mustAllow(t, b)(true)
		if b.State() != Closed {
			t.Fatalf("tripped after %d failures, threshold 3", i+1)
		}
	}
	mustAllow(t, b)(true)
	if b.State() != Open || b.Trips() != 1 {
		t.Fatalf("state=%s trips=%d, want open/1", b.State(), b.Trips())
	}
	if release, wait := b.Allow(); release != nil || wait <= 0 {
		t.Fatalf("open breaker admitted an attempt (wait %s)", wait)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	mustAllow(t, b)(true)
	mustAllow(t, b)(true)
	mustAllow(t, b)(false) // streak broken
	mustAllow(t, b)(true)
	mustAllow(t, b)(true)
	if b.State() != Closed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	b, clock := newTestBreaker(1, time.Second)
	mustAllow(t, b)(true) // trip
	clock.Advance(2 * time.Second)

	probe := mustAllow(t, b) // half-open probe slot
	if b.State() != HalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	// A second caller is parked behind the in-flight probe.
	if release, wait := b.Allow(); release != nil || wait <= 0 {
		t.Fatal("half-open breaker admitted a second concurrent attempt")
	}
	probe(false)
	if b.State() != Closed {
		t.Fatalf("state = %s after successful probe, want closed", b.State())
	}
	mustAllow(t, b)(false)
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clock := newTestBreaker(1, time.Second)
	mustAllow(t, b)(true) // trip #1
	clock.Advance(2 * time.Second)
	mustAllow(t, b)(true) // failed probe → trip #2
	if b.State() != Open || b.Trips() != 2 {
		t.Fatalf("state=%s trips=%d, want open/2", b.State(), b.Trips())
	}
	if release, _ := b.Allow(); release != nil {
		t.Fatal("re-opened breaker admitted an attempt before cooldown")
	}
	clock.Advance(2 * time.Second)
	mustAllow(t, b)(false)
	if b.State() != Closed {
		t.Fatalf("state = %s, want closed", b.State())
	}
}

func TestBreakerLateFailuresDoNotExtendCooldown(t *testing.T) {
	b, clock := newTestBreaker(2, time.Second)
	r1 := mustAllow(t, b)
	r2 := mustAllow(t, b)
	r3 := mustAllow(t, b) // three in-flight attempts admitted while closed
	r1(true)
	r2(true) // trips here
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	clock.Advance(900 * time.Millisecond)
	r3(true) // straggler failure while already open
	if b.Trips() != 1 {
		t.Fatalf("straggler re-tripped: trips = %d", b.Trips())
	}
	clock.Advance(200 * time.Millisecond) // past the ORIGINAL cooldown
	if release, wait := b.Allow(); release == nil {
		t.Fatalf("cooldown extended by straggler (wait %s)", wait)
	} else {
		release(false)
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b, _ := newTestBreaker(5, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				release, wait := b.Allow()
				if release == nil {
					if wait <= 0 {
						t.Error("rejected with non-positive wait")
					}
					continue
				}
				release(i%3 == 0)
			}
		}(g)
	}
	wg.Wait()
	b.State()
	b.Trips()
}

func TestBreakerStateString(t *testing.T) {
	for state, want := range map[BreakerState]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
