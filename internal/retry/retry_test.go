package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// recordingSleep captures every delay the policy schedules without actually
// sleeping.
func recordingSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		*delays = append(*delays, d)
		return nil
	}
}

func TestDoSucceedsFirstTry(t *testing.T) {
	var delays []time.Duration
	p := Policy{Sleep: recordingSleep(&delays)}
	attempts, err := p.Do(context.Background(), "k", func(context.Context) error { return nil })
	if err != nil || attempts != 1 {
		t.Fatalf("attempts=%d err=%v, want 1 nil", attempts, err)
	}
	if len(delays) != 0 {
		t.Errorf("slept %v on success", delays)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 5, Sleep: recordingSleep(&delays)}
	calls := 0
	attempts, err := p.Do(context.Background(), "k", func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("attempts=%d err=%v, want 3 nil", attempts, err)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 3, Sleep: recordingSleep(&delays)}
	boom := errors.New("boom")
	attempts, err := p.Do(context.Background(), "k", func(context.Context) error { return boom })
	if !errors.Is(err, boom) || attempts != 3 {
		t.Fatalf("attempts=%d err=%v, want 3 boom", attempts, err)
	}
	if len(delays) != 2 { // no sleep after the final attempt
		t.Errorf("slept %d times, want 2", len(delays))
	}
}

func TestDoNegativeMaxAttemptsDisablesRetries(t *testing.T) {
	p := Policy{MaxAttempts: -1, Sleep: recordingSleep(new([]time.Duration))}
	attempts, err := p.Do(context.Background(), "k", func(context.Context) error { return errors.New("x") })
	if attempts != 1 || err == nil {
		t.Fatalf("attempts=%d err=%v, want a single failed attempt", attempts, err)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	p := Policy{MaxAttempts: 5, Sleep: recordingSleep(new([]time.Duration))}
	boom := errors.New("gone")
	attempts, err := p.Do(context.Background(), "k", func(context.Context) error { return Permanent(boom) })
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
	if !errors.Is(err, boom) || !IsPermanent(err) {
		t.Fatalf("err = %v, want permanent-wrapped boom", err)
	}
}

func TestDoHonorsRetryAfter(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: -1, Sleep: recordingSleep(&delays)}
	hint := 700 * time.Millisecond
	p.Do(context.Background(), "k", func(context.Context) error {
		return WithRetryAfter(errors.New("429"), hint)
	})
	if len(delays) != 1 || delays[0] < hint {
		t.Fatalf("delays = %v, want one delay >= %s", delays, hint)
	}
}

func TestDoCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{}
	attempts, err := p.Do(ctx, "k", func(context.Context) error { return nil })
	if attempts != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("attempts=%d err=%v, want 0 canceled", attempts, err)
	}
}

func TestDoStopsRetryingAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{MaxAttempts: 10, BaseDelay: time.Millisecond}
	attempts, err := p.Do(ctx, "k", func(context.Context) error {
		calls++
		cancel()
		return errors.New("fail during cancel")
	})
	if attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d, want 1/1 after cancel", attempts, calls)
	}
	if err == nil {
		t.Fatal("want an error")
	}
}

func TestDelayDeterministicAndGrowing(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Seed: 42}
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := p.Delay("url", attempt)
		d2 := p.Delay("url", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: %s vs %s — jitter not deterministic", attempt, d1, d2)
		}
		if d1 <= 0 || d1 > time.Second+time.Second/2 {
			t.Fatalf("attempt %d: delay %s out of range", attempt, d1)
		}
	}
	// Without jitter the schedule is exactly exponential and capped.
	noJitter := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 60, 60}
	for i, w := range want {
		if got := noJitter.Delay("k", i+1); got != w*time.Millisecond {
			t.Errorf("attempt %d: delay = %s, want %s", i+1, got, w*time.Millisecond)
		}
	}
}

func TestDelayDiffersAcrossSeeds(t *testing.T) {
	a := Policy{Seed: 1}.Delay("url", 1)
	b := Policy{Seed: 2}.Delay("url", 1)
	if a == b {
		t.Errorf("seeds 1 and 2 produced identical jitter %s", a)
	}
}

func TestRetryAfterHintAbsent(t *testing.T) {
	if _, ok := RetryAfterHint(errors.New("plain")); ok {
		t.Error("hint found on a plain error")
	}
	if Permanent(nil) != nil || WithRetryAfter(nil, time.Second) != nil {
		t.Error("nil error not passed through")
	}
}

func TestDoBreakerOpenWaitsWithoutConsumingBudget(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	br := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second, Clock: clock})
	// Trip it.
	release, _ := br.Allow()
	release(true)
	if br.State() != Open {
		t.Fatalf("state = %s, want open", br.State())
	}

	// While open, Do must wait (advancing the clock past the cooldown on
	// each simulated sleep) and then succeed on its FIRST counted attempt.
	p := Policy{
		MaxAttempts: 1,
		Breaker:     br,
		Sleep: func(ctx context.Context, d time.Duration) error {
			now = now.Add(d)
			return nil
		},
	}
	attempts, err := p.Do(context.Background(), "k", func(context.Context) error { return nil })
	if err != nil || attempts != 1 {
		t.Fatalf("attempts=%d err=%v, want 1 nil (breaker wait must not consume budget)", attempts, err)
	}
	if br.State() != Closed {
		t.Errorf("state = %s after successful probe, want closed", br.State())
	}
}

func TestDoBreakerIntegrationEndToEnd(t *testing.T) {
	// Real clock, tiny cooldown: 6 consecutive failures trip the breaker;
	// later calls must still complete once the upstream recovers.
	br := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Millisecond})
	p := Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Breaker: br}
	for i := 0; i < 3; i++ {
		p.Do(context.Background(), fmt.Sprint(i), func(context.Context) error { return errors.New("down") })
	}
	if br.Trips() == 0 {
		t.Fatal("breaker never tripped")
	}
	attempts, err := p.Do(context.Background(), "recovered", func(context.Context) error { return nil })
	if err != nil || attempts != 1 {
		t.Fatalf("attempts=%d err=%v after recovery, want 1 nil", attempts, err)
	}
}
