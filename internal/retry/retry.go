// Package retry implements the fault-tolerance primitives of the crawl
// layer: an exponential-backoff retry policy with seeded (deterministic)
// jitter, Retry-After honoring, per-request attempt budgets, and a shared
// circuit breaker that sheds load from a failing upstream.
//
// Determinism contract: every delay the policy computes is a pure function
// of (Seed, key, attempt). Timing — how long a call actually waits, whether
// the breaker is open when it arrives — never influences *whether* a request
// ultimately succeeds, only *when*; a breaker rejection waits and re-enters
// rather than consuming the attempt budget. Callers that key their upstream
// behavior on (request, attempt) therefore get byte-identical outcomes at
// any concurrency.
package retry

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"patchdb/internal/telemetry"
)

// The registry metric families the retry layer emits when a Policy or
// Breaker carries a telemetry registry.
const (
	// MetricAttempts counts every attempt made under a policy (first tries
	// included).
	MetricAttempts = "retry_attempts_total"
	// MetricRetries counts scheduled retries (attempts beyond the first).
	MetricRetries = "retry_retries_total"
	// MetricAttemptSeconds is the per-attempt latency histogram.
	MetricAttemptSeconds = "retry_attempt_seconds"
	// MetricBackoffSeconds is the histogram of computed backoff delays.
	MetricBackoffSeconds = "retry_backoff_seconds"
	// MetricBreakerTrips counts closed-to-open breaker transitions.
	MetricBreakerTrips = "breaker_trips_total"
	// MetricBreakerRejections counts attempts the breaker turned away (the
	// caller waits and re-enters, so rejections delay rather than fail).
	MetricBreakerRejections = "breaker_rejections_total"
)

// Policy shapes how an operation is retried. The zero value is usable:
// 4 attempts, 50ms base delay doubling up to 2s, 50% jitter, no breaker.
type Policy struct {
	// MaxAttempts is the total attempt budget per operation, including the
	// first try (0 = default 4; negative = a single attempt, no retries).
	MaxAttempts int
	// BaseDelay is the delay before the first retry (0 = default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential schedule (0 = default 2s).
	MaxDelay time.Duration
	// Multiplier is the per-retry growth factor (values < 1 mean default 2).
	Multiplier float64
	// Jitter spreads each delay by ±Jitter fraction, derived
	// deterministically from Seed+key+attempt (0 = default 0.5; negative
	// disables jitter entirely).
	Jitter float64
	// Seed drives the jitter so a given (key, attempt) always sleeps the
	// same duration.
	Seed int64
	// Breaker, when non-nil, gates every attempt. An open breaker makes the
	// policy wait for a half-open probe slot instead of failing: breaker
	// state delays attempts but never consumes the attempt budget.
	Breaker *Breaker
	// Sleep replaces the default context-aware sleep (tests). nil = real
	// timer sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when non-nil, observes each scheduled retry.
	OnRetry func(key string, attempt int, err error, delay time.Duration)
	// Registry, when non-nil, receives attempt/retry counters and latency
	// and backoff histograms (MetricAttempts, MetricRetries,
	// MetricAttemptSeconds, MetricBackoffSeconds).
	Registry *telemetry.Registry
}

// Do runs fn under the policy until it succeeds, returns a permanent error,
// exhausts the attempt budget, or ctx is canceled. It returns the number of
// attempts actually made alongside fn's final error. key identifies the
// operation for jitter derivation (use the request URL).
func (p Policy) Do(ctx context.Context, key string, fn func(context.Context) error) (attempts int, err error) {
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return attempt - 1, cerr
		}
		release, gateErr := p.acquire(ctx)
		if gateErr != nil {
			return attempt - 1, gateErr
		}
		p.Registry.Counter(MetricAttempts).Inc()
		attemptStart := time.Now()
		err = fn(ctx)
		p.Registry.Histogram(MetricAttemptSeconds, nil).Observe(time.Since(attemptStart).Seconds())
		if release != nil {
			release(err != nil)
		}
		if err == nil {
			return attempt, nil
		}
		if ctx.Err() != nil || IsPermanent(err) || attempt >= p.maxAttempts() {
			return attempt, err
		}
		delay := p.Delay(key, attempt)
		if hint, ok := RetryAfterHint(err); ok && hint > delay {
			delay = hint
		}
		p.Registry.Counter(MetricRetries).Inc()
		p.Registry.Histogram(MetricBackoffSeconds, nil).Observe(delay.Seconds())
		if p.OnRetry != nil {
			p.OnRetry(key, attempt, err, delay)
		}
		if serr := p.sleep(ctx, delay); serr != nil {
			return attempt, serr
		}
	}
}

// acquire waits until the breaker (if any) admits an attempt. It returns
// the release callback to report the attempt's outcome, or a context error.
func (p Policy) acquire(ctx context.Context) (func(failed bool), error) {
	if p.Breaker == nil {
		return nil, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		release, wait := p.Breaker.Allow()
		if release != nil {
			return release, nil
		}
		if err := p.sleep(ctx, wait); err != nil {
			return nil, err
		}
	}
}

// Delay computes the backoff before retry number attempt (1-based: the
// delay after the attempt-th failure). It is a pure function of
// (Seed, key, attempt).
func (p Policy) Delay(key string, attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base) * math.Pow(mult, float64(attempt-1))
	if d > float64(maxDelay) {
		d = float64(maxDelay)
	}
	jitter := p.Jitter
	switch {
	case jitter == 0:
		jitter = 0.5
	case jitter < 0:
		jitter = 0
	}
	if jitter > 0 {
		u := unitFloat(hashKey(p.Seed, key, attempt))
		d *= 1 + jitter*(2*u-1)
	}
	return time.Duration(d)
}

func (p Policy) maxAttempts() int {
	switch {
	case p.MaxAttempts > 0:
		return p.MaxAttempts
	case p.MaxAttempts < 0:
		return 1
	default:
		return 4
	}
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// hashKey derives a 64-bit hash from the seed, key, and attempt number.
func hashKey(seed int64, key string, attempt int) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
		buf[8+i] = byte(uint64(attempt) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is a murmur3-style finalizer: FNV alone avalanches weakly into the
// high bits unitFloat consumes.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// permanentError marks an error that retrying cannot fix (e.g. a 404).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately instead of retrying. A nil
// err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// retryAfterError carries an upstream back-off hint (a 429 Retry-After).
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.err, e.after)
}
func (e *retryAfterError) Unwrap() error { return e.err }

// WithRetryAfter attaches a server-advertised minimum back-off to err; Do
// waits at least that long before the next attempt. A nil err returns nil.
func WithRetryAfter(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	return &retryAfterError{err: err, after: after}
}

// RetryAfterHint extracts the largest Retry-After hint attached to err.
func RetryAfterHint(err error) (time.Duration, bool) {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.after, true
	}
	return 0, false
}
