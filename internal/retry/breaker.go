package retry

import (
	"sync"
	"time"

	"patchdb/internal/telemetry"
)

// BreakerState is the circuit breaker's admission mode.
type BreakerState int

const (
	// Closed admits every attempt (the healthy state).
	Closed BreakerState = iota
	// Open rejects every attempt until the cooldown elapses.
	Open
	// HalfOpen admits a single probe; its outcome closes or re-opens the
	// circuit.
	HalfOpen
)

// String renders the state name.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes a Breaker. The zero value is usable: trip
// after 5 consecutive failures, 100ms cooldown, wall clock.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// circuit (0 = default 5).
	FailureThreshold int
	// Cooldown is how long the circuit stays open before a half-open probe
	// is admitted (0 = default 100ms).
	Cooldown time.Duration
	// Clock replaces time.Now (tests).
	Clock func() time.Time
	// Registry, when non-nil, receives trip and rejection counters
	// (MetricBreakerTrips, MetricBreakerRejections).
	Registry *telemetry.Registry
}

// Breaker is a shared circuit breaker: after FailureThreshold consecutive
// failures it opens and rejects attempts for Cooldown, then admits one
// half-open probe whose outcome closes or re-opens the circuit. Rejection
// is advisory — callers are expected to wait and re-enter Allow, so the
// breaker paces a struggling upstream without changing request outcomes.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedUntil time.Time
	probing     bool
	trips       int
}

// NewBreaker creates a breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 100 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow asks to admit one attempt. When admitted, the returned release is
// non-nil and MUST be called exactly once with the attempt's outcome. When
// rejected, release is nil and wait suggests how long to sleep before
// asking again.
func (b *Breaker) Allow() (release func(failed bool), wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Clock()
	switch b.state {
	case Closed:
		return b.releaseFunc(false), 0
	case Open:
		if now.Before(b.openedUntil) {
			b.cfg.Registry.Counter(MetricBreakerRejections).Inc()
			return nil, b.openedUntil.Sub(now)
		}
		b.state = HalfOpen
		b.probing = true
		return b.releaseFunc(true), 0
	default: // HalfOpen
		if !b.probing {
			b.probing = true
			return b.releaseFunc(true), 0
		}
		b.cfg.Registry.Counter(MetricBreakerRejections).Inc()
		return nil, b.probeWait()
	}
}

// probeWait is the re-poll interval for callers parked behind an in-flight
// half-open probe.
func (b *Breaker) probeWait() time.Duration {
	w := b.cfg.Cooldown / 4
	if w < time.Millisecond {
		w = time.Millisecond
	}
	return w
}

func (b *Breaker) releaseFunc(probe bool) func(failed bool) {
	return func(failed bool) {
		b.mu.Lock()
		defer b.mu.Unlock()
		if probe {
			b.probing = false
		}
		if failed {
			b.consecutive++
			// Failures reported while already Open (in-flight attempts
			// admitted before the trip) must not re-trip and extend the
			// cooldown.
			if b.state == HalfOpen || (b.state == Closed && b.consecutive >= b.cfg.FailureThreshold) {
				b.trip()
			}
			return
		}
		b.consecutive = 0
		if b.state != Closed {
			b.state = Closed
		}
	}
}

// trip opens the circuit. Callers must hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedUntil = b.cfg.Clock().Add(b.cfg.Cooldown)
	b.probing = false
	b.trips++
	b.cfg.Registry.Counter(MetricBreakerTrips).Inc()
}

// State returns the current admission mode (refreshing an expired Open to
// report HalfOpen would race the probe slot, so Open is reported until a
// caller actually transitions it).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts closed→open transitions so far.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
