// Package oracle simulates the paper's manual verification step: three
// security researchers label each candidate independently and cross-check by
// majority vote. Ground truth comes from the corpus generator; the oracle
// reproduces the labeling interface, an optional per-annotator error model,
// and the effort accounting (number of candidates inspected) that Table II
// and Table III report.
package oracle

import (
	"math/rand"
	"sync"
)

// Option configures an Oracle.
type Option func(*Oracle)

// WithAnnotators sets the number of simulated annotators (default 3).
func WithAnnotators(n int) Option {
	return func(o *Oracle) {
		if n > 0 {
			o.annotators = n
		}
	}
}

// WithErrorRate sets the per-annotator probability of flipping a label
// (default 0: experts are reliable after cross-checking).
func WithErrorRate(r float64) Option {
	return func(o *Oracle) { o.errorRate = r }
}

// WithSeed seeds the annotator noise.
func WithSeed(seed int64) Option {
	return func(o *Oracle) { o.rng = rand.New(rand.NewSource(seed)) }
}

// Oracle verifies candidates against ground-truth labels.
type Oracle struct {
	mu         sync.Mutex
	labels     map[string]bool // commit hash -> is security patch
	annotators int
	errorRate  float64
	rng        *rand.Rand
	inspected  int
}

// New builds an oracle over ground-truth labels (commit hash -> security).
func New(labels map[string]bool, opts ...Option) *Oracle {
	o := &Oracle{
		labels:     labels,
		annotators: 3,
		rng:        rand.New(rand.NewSource(7)),
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// AddLabel registers ground truth for one commit.
func (o *Oracle) AddLabel(hash string, security bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.labels[hash] = security
}

// Verify labels one candidate: each annotator reads the commit (possibly
// erring), and the majority decision is returned. Every call counts toward
// the inspection effort.
func (o *Oracle) Verify(hash string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inspected++
	truth := o.labels[hash]
	if o.errorRate <= 0 {
		return truth
	}
	votes := 0
	for a := 0; a < o.annotators; a++ {
		v := truth
		if o.rng.Float64() < o.errorRate {
			v = !v
		}
		if v {
			votes++
		}
	}
	return votes*2 > o.annotators
}

// VerifyAll labels a batch and returns the verified-security subset mask.
func (o *Oracle) VerifyAll(hashes []string) []bool {
	out := make([]bool, len(hashes))
	for i, h := range hashes {
		out[i] = o.Verify(h)
	}
	return out
}

// Inspected returns how many candidates have been manually examined — the
// human-effort metric the nearest link search is designed to minimize.
func (o *Oracle) Inspected() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inspected
}

// ResetEffort zeroes the inspection counter (used between experiment arms).
func (o *Oracle) ResetEffort() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inspected = 0
}

// SetInspected restores the inspection counter to a journaled value, so a
// build resumed from a checkpoint reports the same cumulative human effort
// as an uninterrupted run.
func (o *Oracle) SetInspected(n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inspected = n
}
