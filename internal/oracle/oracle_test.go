package oracle

import "testing"

func TestVerifyTruth(t *testing.T) {
	o := New(map[string]bool{"sec": true, "non": false})
	if !o.Verify("sec") {
		t.Error("security patch rejected")
	}
	if o.Verify("non") {
		t.Error("non-security patch accepted")
	}
	if o.Verify("unknown") {
		t.Error("unknown hash accepted")
	}
	if o.Inspected() != 3 {
		t.Errorf("inspected = %d", o.Inspected())
	}
}

func TestVerifyAll(t *testing.T) {
	o := New(map[string]bool{"a": true, "b": false, "c": true})
	got := o.VerifyAll([]string{"a", "b", "c"})
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("VerifyAll[%d] = %v", i, got[i])
		}
	}
	if o.Inspected() != 3 {
		t.Errorf("inspected = %d", o.Inspected())
	}
}

func TestResetEffort(t *testing.T) {
	o := New(map[string]bool{"a": true})
	o.Verify("a")
	o.ResetEffort()
	if o.Inspected() != 0 {
		t.Errorf("inspected after reset = %d", o.Inspected())
	}
}

func TestAddLabel(t *testing.T) {
	o := New(map[string]bool{})
	o.AddLabel("x", true)
	if !o.Verify("x") {
		t.Error("added label not used")
	}
}

func TestErrorModelMajorityVote(t *testing.T) {
	// With a small per-annotator error rate and 3-way majority vote, the
	// effective error rate must be well below the individual one
	// (3e^2 - 2e^3 for independent annotators; 0.1 -> ~0.028).
	labels := map[string]bool{}
	for i := 0; i < 2000; i++ {
		labels[key(i)] = i%2 == 0
	}
	o := New(labels, WithErrorRate(0.1), WithSeed(42))
	wrong := 0
	for i := 0; i < 2000; i++ {
		if o.Verify(key(i)) != (i%2 == 0) {
			wrong++
		}
	}
	rate := float64(wrong) / 2000
	if rate > 0.06 {
		t.Errorf("majority-vote error rate = %.3f, want < 0.06", rate)
	}
	if rate == 0 {
		t.Error("error model inactive")
	}
}

func TestAnnotatorCount(t *testing.T) {
	labels := map[string]bool{}
	for i := 0; i < 1000; i++ {
		labels[key(i)] = true
	}
	// A single annotator at rate 0.2 errs ~20% of the time — much more than
	// the 3-annotator default.
	single := New(labels, WithErrorRate(0.2), WithAnnotators(1), WithSeed(1))
	wrongSingle := 0
	for i := 0; i < 1000; i++ {
		if !single.Verify(key(i)) {
			wrongSingle++
		}
	}
	triple := New(labels, WithErrorRate(0.2), WithSeed(1))
	wrongTriple := 0
	for i := 0; i < 1000; i++ {
		if !triple.Verify(key(i)) {
			wrongTriple++
		}
	}
	if wrongTriple >= wrongSingle {
		t.Errorf("cross-checking did not reduce errors: single=%d triple=%d", wrongSingle, wrongTriple)
	}
}

func key(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i%10)) + fmtInt(i) }

func fmtInt(i int) string {
	digits := "0123456789"
	if i == 0 {
		return "0"
	}
	var out []byte
	for i > 0 {
		out = append([]byte{digits[i%10]}, out...)
		i /= 10
	}
	return string(out)
}
