package ctoken

import (
	"reflect"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasic(t *testing.T) {
	toks := LexLine("if (len < 0 || len > 4096)")
	want := []struct {
		kind Kind
		text string
	}{
		{Keyword, "if"}, {Punct, "("}, {Identifier, "len"}, {RelationalOp, "<"},
		{Number, "0"}, {LogicalOp, "||"}, {Identifier, "len"}, {RelationalOp, ">"},
		{Number, "4096"}, {Punct, ")"},
	}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %d, want %d: %+v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("tok[%d] = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestOperatorClassification(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"+", ArithmeticOp}, {"-", ArithmeticOp}, {"*", ArithmeticOp},
		{"/", ArithmeticOp}, {"%", ArithmeticOp}, {"++", ArithmeticOp}, {"--", ArithmeticOp},
		{"==", RelationalOp}, {"!=", RelationalOp}, {"<", RelationalOp},
		{">", RelationalOp}, {"<=", RelationalOp}, {">=", RelationalOp},
		{"&&", LogicalOp}, {"||", LogicalOp}, {"!", LogicalOp},
		{"&", BitwiseOp}, {"|", BitwiseOp}, {"^", BitwiseOp}, {"~", BitwiseOp},
		{"<<", BitwiseOp}, {">>", BitwiseOp},
		{"=", AssignOp}, {"+=", AssignOp}, {"<<=", AssignOp}, {">>=", AssignOp},
		{"->", Punct}, {"::", Punct}, {";", Punct},
	}
	for _, tc := range cases {
		toks := LexLine("a " + tc.src + " b")
		if len(toks) < 2 {
			t.Fatalf("lex(%q): %d tokens", tc.src, len(toks))
		}
		if toks[1].Kind != tc.kind {
			t.Errorf("op %q classified %v, want %v", tc.src, toks[1].Kind, tc.kind)
		}
		if toks[1].Text != tc.src {
			t.Errorf("op %q lexed as %q (maximal munch broken)", tc.src, toks[1].Text)
		}
	}
}

func TestCallDetection(t *testing.T) {
	toks := LexLine("ret = helper(x) + other (y) - notcall;")
	var calls []string
	for _, tok := range toks {
		if IsFunctionCall(tok) {
			calls = append(calls, tok.Text)
		}
	}
	if !reflect.DeepEqual(calls, []string{"helper", "other"}) {
		t.Errorf("calls = %v", calls)
	}
}

func TestKeywordsNotCalls(t *testing.T) {
	toks := LexLine("if (x) while (y) sizeof(z)")
	for _, tok := range toks {
		if IsFunctionCall(tok) {
			t.Errorf("keyword %q detected as call", tok.Text)
		}
	}
}

func TestCommentsSkipped(t *testing.T) {
	src := "int a; // trailing comment with if (x)\n/* block\n if (y) */ int b;"
	toks := Lex(src, 1)
	for _, tok := range toks {
		if IsIfKeyword(tok) {
			t.Errorf("if inside comment lexed: %+v", tok)
		}
	}
	// b must be on line 3 (block comment spans two lines).
	last := toks[len(toks)-2]
	if last.Text != "b" || last.Line != 3 {
		t.Errorf("b at line %d, want 3 (%+v)", last.Line, last)
	}
}

func TestPreprocessorSkipped(t *testing.T) {
	src := "#include <string.h>\n#define MAX 10\nint x;"
	toks := Lex(src, 1)
	if len(toks) != 3 {
		t.Fatalf("tokens = %+v", toks)
	}
	if toks[0].Text != "int" || toks[0].Line != 3 {
		t.Errorf("first token %+v", toks[0])
	}
}

func TestStringLiterals(t *testing.T) {
	toks := LexLine(`printf("hello %d \" quoted", x);`)
	var strs []string
	for _, tok := range toks {
		if tok.Kind == String {
			strs = append(strs, tok.Text)
		}
	}
	if len(strs) != 1 || strs[0] != `"hello %d \" quoted"` {
		t.Errorf("strings = %q", strs)
	}
}

func TestCharLiteral(t *testing.T) {
	toks := LexLine(`c = '\n';`)
	found := false
	for _, tok := range toks {
		if tok.Kind == String && tok.Text == `'\n'` {
			found = true
		}
	}
	if !found {
		t.Errorf("char literal not lexed: %+v", toks)
	}
}

func TestNumbers(t *testing.T) {
	for _, src := range []string{"42", "0xff", "3.14", "1e-5", "077", "10u", "0x7fUL"} {
		toks := LexLine("x = " + src + ";")
		if len(toks) != 4 || toks[2].Kind != Number || toks[2].Text != src {
			t.Errorf("number %q lexed as %+v", src, toks)
		}
	}
}

func TestMemoryOperators(t *testing.T) {
	toks := LexLine("p = malloc(n); memcpy(p, q, n); free(p); s = sizeof(x); other(p);")
	var mems []string
	for _, tok := range toks {
		if IsMemoryOperator(tok) {
			mems = append(mems, tok.Text)
		}
	}
	if !reflect.DeepEqual(mems, []string{"malloc", "memcpy", "free", "sizeof"}) {
		t.Errorf("memory operators = %v", mems)
	}
}

func TestLoopAndIfKeywords(t *testing.T) {
	toks := LexLine("for (;;) while (1) do if (x)")
	var loops, ifs int
	for _, tok := range toks {
		if IsLoopKeyword(tok) {
			loops++
		}
		if IsIfKeyword(tok) {
			ifs++
		}
	}
	if loops != 3 || ifs != 1 {
		t.Errorf("loops=%d ifs=%d", loops, ifs)
	}
}

func TestAbstract(t *testing.T) {
	toks := LexLine(`ret = helper(buf, 42, "str");`)
	got := Abstract(toks)
	want := []string{"VAR", "=", "FUNC", "(", "VAR", ",", "NUM", ",", "STR", ")", ";"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Abstract = %v, want %v", got, want)
	}
}

func TestAbstractKeepsKeywordsAndOps(t *testing.T) {
	got := Abstract(LexLine("if (a && b) return;"))
	want := []string{"if", "(", "VAR", "&&", "VAR", ")", "return", ";"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Abstract = %v, want %v", got, want)
	}
}

func TestOffsetsAndColumns(t *testing.T) {
	src := "int x;\n  y = 2;"
	toks := Lex(src, 1)
	for _, tok := range toks {
		if src[tok.Offset:tok.Offset+len(tok.Text)] != tok.Text {
			t.Errorf("offset of %q wrong: %d", tok.Text, tok.Offset)
		}
	}
	// y is on line 2, col 2.
	var y Token
	for _, tok := range toks {
		if tok.Text == "y" {
			y = tok
		}
	}
	if y.Line != 2 || y.Col != 2 {
		t.Errorf("y at line %d col %d", y.Line, y.Col)
	}
}

func TestLexNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_ = Lex(s, 1)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLexReconstruction(t *testing.T) {
	// Every token's text must appear at its offset (property over random C-ish
	// inputs).
	srcs := []string{
		"static int f(struct s *p, char *b, int n)\n{\n\treturn p->x + b[n];\n}\n",
		"x <<= 2; y >>= 1; z ^= m & 0xff;",
		"if (!a || (b && c)) goto out;",
		"unterminated \"string\n next;",
		"/* unterminated comment",
	}
	for _, src := range srcs {
		for _, tok := range Lex(src, 1) {
			end := tok.Offset + len(tok.Text)
			if end > len(src) || src[tok.Offset:end] != tok.Text {
				t.Errorf("token %q not at offset %d in %q", tok.Text, tok.Offset, src)
			}
		}
	}
}

func TestIsKeyword(t *testing.T) {
	for _, kw := range []string{"if", "while", "return", "struct", "sizeof", "nullptr"} {
		if !IsKeyword(kw) {
			t.Errorf("IsKeyword(%q) = false", kw)
		}
	}
	for _, id := range []string{"iff", "Return", "len", "main"} {
		if IsKeyword(id) {
			t.Errorf("IsKeyword(%q) = true", id)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Keyword: "kw", Identifier: "id", Number: "num", String: "str",
		ArithmeticOp: "arith", RelationalOp: "rel", LogicalOp: "logic",
		BitwiseOp: "bit", AssignOp: "assign", Punct: "punct", Kind(99): "?",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
