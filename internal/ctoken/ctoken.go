// Package ctoken implements a C/C++ lexer tailored to patch analysis. It
// produces classified tokens (keywords, identifiers, literals, operator
// families, memory operators, function calls) from individual patch lines or
// whole files, and supports the token abstraction used by PatchDB's
// Levenshtein features and RNN input (identifiers -> VAR/FUNC, literals ->
// NUM/STR).
package ctoken

import (
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind int

const (
	// Keyword is a reserved C/C++ word (if, for, return, int, ...).
	Keyword Kind = iota + 1
	// Identifier is a name that is not a keyword.
	Identifier
	// Number is an integer or floating literal.
	Number
	// String is a string or character literal.
	String
	// ArithmeticOp is one of + - * / % ++ --.
	ArithmeticOp
	// RelationalOp is one of == != < > <= >=.
	RelationalOp
	// LogicalOp is one of && || !.
	LogicalOp
	// BitwiseOp is one of & | ^ ~ << >>.
	BitwiseOp
	// AssignOp is = and compound assignments (+=, -=, <<=, ...).
	AssignOp
	// Punct is any other punctuation: parens, braces, commas, semicolons,
	// member access, etc.
	Punct
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case Keyword:
		return "kw"
	case Identifier:
		return "id"
	case Number:
		return "num"
	case String:
		return "str"
	case ArithmeticOp:
		return "arith"
	case RelationalOp:
		return "rel"
	case LogicalOp:
		return "logic"
	case BitwiseOp:
		return "bit"
	case AssignOp:
		return "assign"
	case Punct:
		return "punct"
	default:
		return "?"
	}
}

// Token is a lexed token with its source position (line is 1-based when
// lexing multi-line input, column is a byte offset).
type Token struct {
	Kind   Kind
	Text   string
	Line   int
	Col    int
	Offset int // byte offset of the token start in the lexed source
	// Call is true for an Identifier immediately followed by '('.
	Call bool
}

var keywords = map[string]bool{
	"auto": true, "break": true, "case": true, "char": true, "const": true,
	"continue": true, "default": true, "do": true, "double": true, "else": true,
	"enum": true, "extern": true, "float": true, "for": true, "goto": true,
	"if": true, "inline": true, "int": true, "long": true, "register": true,
	"restrict": true, "return": true, "short": true, "signed": true,
	"sizeof": true, "static": true, "struct": true, "switch": true,
	"typedef": true, "union": true, "unsigned": true, "void": true,
	"volatile": true, "while": true, "bool": true, "true": true, "false": true,
	"class": true, "namespace": true, "new": true, "delete": true,
	"template": true, "typename": true, "nullptr": true, "NULL": true,
}

// memoryOperators are the functions/operators the paper counts as "memory
// operators" (allocation, deallocation, copying, and sizing primitives).
var memoryOperators = map[string]bool{
	"malloc": true, "calloc": true, "realloc": true, "free": true,
	"memcpy": true, "memmove": true, "memset": true, "memcmp": true,
	"strcpy": true, "strncpy": true, "strlcpy": true, "strcat": true,
	"strncat": true, "strdup": true, "strndup": true, "alloca": true,
	"kmalloc": true, "kzalloc": true, "kfree": true, "vmalloc": true,
	"vfree": true, "new": true, "delete": true, "sizeof": true,
	"mmap": true, "munmap": true, "brk": true, "sbrk": true,
}

// loopKeywords start loop statements.
var loopKeywords = map[string]bool{"for": true, "while": true, "do": true}

// IsKeyword reports whether s is a C/C++ keyword the lexer recognizes.
func IsKeyword(s string) bool { return keywords[s] }

// IsMemoryOperator reports whether tok denotes a memory operator per the
// paper's feature definition (features 39-42).
func IsMemoryOperator(tok Token) bool {
	switch tok.Kind {
	case Identifier, Keyword:
		return memoryOperators[tok.Text]
	}
	return false
}

// IsLoopKeyword reports whether tok begins a loop statement.
func IsLoopKeyword(tok Token) bool {
	return tok.Kind == Keyword && loopKeywords[tok.Text]
}

// IsIfKeyword reports whether tok is the `if` keyword.
func IsIfKeyword(tok Token) bool { return tok.Kind == Keyword && tok.Text == "if" }

// IsFunctionCall reports whether tok is an identifier used as a call (and
// not a keyword such as if/while/sizeof).
func IsFunctionCall(tok Token) bool { return tok.Kind == Identifier && tok.Call }

// Lex tokenizes source text. Line numbers start at startLine. Comments and
// preprocessor directives are skipped (a directive consumes its whole line);
// the lexer never fails: unknown bytes become Punct tokens.
func Lex(src string, startLine int) []Token {
	var toks []Token
	line := startLine
	i := 0
	lineStart := 0
	n := len(src)
	atLineStart := true

	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			lineStart = i
			atLineStart = true
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			continue
		case c == '#' && atLineStart:
			// Preprocessor directive: skip to end of line (handling \ continuations).
			for i < n {
				if src[i] == '\\' && i+1 < n && src[i+1] == '\n' {
					i += 2
					line++
					lineStart = i
					continue
				}
				if src[i] == '\n' {
					break
				}
				i++
			}
			continue
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
			continue
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
					lineStart = i + 1
				}
				i++
			}
			i += 2
			if i > n {
				i = n
			}
			continue
		}
		atLineStart = false
		col := i - lineStart
		switch {
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			text := src[start:i]
			kind := Identifier
			if keywords[text] {
				kind = Keyword
			}
			tok := Token{Kind: kind, Text: text, Line: line, Col: col, Offset: start}
			// Look ahead for '(' to mark calls.
			j := i
			for j < n && (src[j] == ' ' || src[j] == '\t') {
				j++
			}
			if kind == Identifier && j < n && src[j] == '(' {
				tok.Call = true
			}
			toks = append(toks, tok)
		case c >= '0' && c <= '9':
			start := i
			for i < n && (isIdentPart(src[i]) || src[i] == '.' ||
				((src[i] == '+' || src[i] == '-') && i > start && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, Token{Kind: Number, Text: src[start:i], Line: line, Col: col, Offset: start})
		case c == '"' || c == '\'':
			quote := c
			start := i
			i++
			for i < n && src[i] != quote {
				if src[i] == '\\' && i+1 < n {
					i++
				}
				if src[i] == '\n' {
					break // unterminated literal: stop at end of line
				}
				i++
			}
			if i < n && src[i] == quote {
				i++
			}
			toks = append(toks, Token{Kind: String, Text: src[start:i], Line: line, Col: col, Offset: start})
		default:
			text, kind := lexOperator(src[i:])
			start := i
			i += len(text)
			toks = append(toks, Token{Kind: kind, Text: text, Line: line, Col: col, Offset: start})
		}
	}
	return toks
}

// LexLine tokenizes a single patch line (no leading diff marker).
func LexLine(line string) []Token { return Lex(line, 1) }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || (c >= '0' && c <= '9')
}

// operator table ordered longest-first so maximal munch applies.
var operators = []struct {
	text string
	kind Kind
}{
	{"<<=", AssignOp}, {">>=", AssignOp},
	{"==", RelationalOp}, {"!=", RelationalOp}, {"<=", RelationalOp}, {">=", RelationalOp},
	{"&&", LogicalOp}, {"||", LogicalOp},
	{"<<", BitwiseOp}, {">>", BitwiseOp},
	{"++", ArithmeticOp}, {"--", ArithmeticOp},
	{"+=", AssignOp}, {"-=", AssignOp}, {"*=", AssignOp}, {"/=", AssignOp},
	{"%=", AssignOp}, {"&=", AssignOp}, {"|=", AssignOp}, {"^=", AssignOp},
	{"->", Punct}, {"::", Punct},
	{"+", ArithmeticOp}, {"-", ArithmeticOp}, {"*", ArithmeticOp}, {"/", ArithmeticOp},
	{"%", ArithmeticOp},
	{"<", RelationalOp}, {">", RelationalOp},
	{"!", LogicalOp},
	{"&", BitwiseOp}, {"|", BitwiseOp}, {"^", BitwiseOp}, {"~", BitwiseOp},
	{"=", AssignOp},
}

func lexOperator(s string) (string, Kind) {
	for _, op := range operators {
		if strings.HasPrefix(s, op.text) {
			return op.text, op.kind
		}
	}
	return s[:1], Punct
}

// Abstract maps a token stream onto the abstracted alphabet used by the
// paper's "after token abstraction" features and the RNN input: identifiers
// become FUNC (when called) or VAR, numeric literals NUM, string literals
// STR; keywords and operators keep their text.
func Abstract(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = AbstractOne(t)
	}
	return out
}

// AbstractOne abstracts a single token.
func AbstractOne(t Token) string {
	switch t.Kind {
	case Identifier:
		if t.Call {
			return "FUNC"
		}
		return "VAR"
	case Number:
		return "NUM"
	case String:
		return "STR"
	default:
		return t.Text
	}
}

// Texts returns the raw text of each token.
func Texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}
