package ctoken

import "testing"

// FuzzLex asserts the lexer never panics, never loses position accuracy,
// and always terminates with offsets that slice the input correctly.
func FuzzLex(f *testing.F) {
	f.Add("int x = 42;")
	f.Add("if (a && b) { f(x); }")
	f.Add("\"unterminated")
	f.Add("/* unterminated")
	f.Add("#define \\\n continued")
	f.Add("'\\'")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		toks := Lex(src, 1)
		prevEnd := 0
		for _, tok := range toks {
			end := tok.Offset + len(tok.Text)
			if tok.Offset < prevEnd || end > len(src) {
				t.Fatalf("token %q at %d overlaps or overflows (prev end %d, len %d)",
					tok.Text, tok.Offset, prevEnd, len(src))
			}
			if src[tok.Offset:end] != tok.Text {
				t.Fatalf("token text %q not at its offset", tok.Text)
			}
			if tok.Line < 1 {
				t.Fatalf("token line %d", tok.Line)
			}
			prevEnd = end
		}
		// Abstraction must be total.
		if got := Abstract(toks); len(got) != len(toks) {
			t.Fatalf("Abstract changed length")
		}
	})
}
