// Package checkpoint is the crash-safe build journal behind resumable
// PatchDB construction. A Journal lives in one directory and records the
// builder's state at every stage boundary: each completed stage is one JSON
// payload file written atomically (internal/atomicio: temp+fsync+rename),
// plus a manifest naming the completed stages in order with the SHA-256 of
// each payload, the journal format version, the build seed, and a
// fingerprint of every output-affecting config field.
//
// The crash model: a kill can land before a payload write, between the
// payload write and the manifest update, or after both. Because both files
// are written atomically, the journal is always one of two consistent
// states — the stage is durably completed (payload + manifest entry) or it
// is not (at worst an orphan payload file the next run overwrites). Nothing
// a crash produces can be half-trusted.
//
// Resume semantics: opening with Resume validates the manifest's format
// version, seed, and config fingerprint against the current build and
// refuses a mismatch (ErrConfigMismatch) — resuming under a different
// configuration would silently weld two incompatible builds together.
// Payload integrity is verified against the manifest hash on every Load
// (ErrCorrupt on mismatch). Opening without Resume truncates any existing
// journal so a fresh build never inherits stale stages.
//
// For chaos testing, a Journal carries an optional deterministic Fault that
// injects a crash (ErrInjectedCrash) immediately before or after one named
// stage's write — the same inject-at-a-seam discipline as internal/faults,
// driving the kill-and-resume matrix in internal/experiments/resumebench.
package checkpoint

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"patchdb/internal/atomicio"
	"patchdb/internal/telemetry"
)

// FormatVersion identifies the journal layout; a bump invalidates old
// journals (resume refuses them with ErrConfigMismatch detail).
const FormatVersion = 1

// manifestName is the journal's manifest file inside the checkpoint dir.
const manifestName = "MANIFEST.json"

// Canonical journal errors, matched with errors.Is.
var (
	// ErrConfigMismatch reports a resume attempt against a journal written
	// by a build with a different config fingerprint, seed, or format
	// version.
	ErrConfigMismatch = errors.New("checkpoint: journal does not match this build config")
	// ErrCorrupt reports a payload whose bytes no longer hash to the digest
	// the manifest recorded.
	ErrCorrupt = errors.New("checkpoint: corrupt journal")
	// ErrInjectedCrash is the deterministic crash the chaos Fault injects at
	// a stage boundary; it stands in for a SIGKILL in the resume matrix.
	ErrInjectedCrash = errors.New("checkpoint: injected crash")
)

// The registry metric families the journal emits (into the telemetry hub
// carried by the operation's context).
const (
	// MetricWrites counts stage checkpoints written.
	MetricWrites = "checkpoint_writes_total"
	// MetricWriteBytes counts payload bytes written across checkpoints.
	MetricWriteBytes = "checkpoint_write_bytes_total"
	// MetricLoads counts stage payloads loaded on resume.
	MetricLoads = "checkpoint_loads_total"
	// MetricSkips counts stages skipped because the journal already holds
	// their output.
	MetricSkips = "checkpoint_stages_skipped_total"
)

// FaultMode selects where an injected crash lands relative to a stage's
// checkpoint write.
type FaultMode int

const (
	// FaultAfterWrite crashes after the stage checkpoint is durably
	// journaled: resume must skip the stage.
	FaultAfterWrite FaultMode = iota + 1
	// FaultBeforeWrite crashes after the stage's work but before its
	// checkpoint write: the stage's output is lost and resume must re-run
	// it.
	FaultBeforeWrite
)

// String names the mode for harness reports.
func (m FaultMode) String() string {
	switch m {
	case FaultAfterWrite:
		return "after-write"
	case FaultBeforeWrite:
		return "before-write"
	default:
		return fmt.Sprintf("FaultMode(%d)", int(m))
	}
}

// Fault is a deterministic crash injected at one stage boundary.
type Fault struct {
	// Stage names the checkpoint stage whose write the crash brackets.
	Stage string
	// Mode places the crash before or after the journal write.
	Mode FaultMode
}

// stageEntry is one completed stage in the manifest.
type stageEntry struct {
	// Name is the stage identifier (e.g. "crawl", "augment-2").
	Name string `json:"name"`
	// File is the payload filename inside the journal directory.
	File string `json:"file"`
	// SHA256 is the hex digest of the payload bytes.
	SHA256 string `json:"sha256"`
	// Bytes is the payload size.
	Bytes int `json:"bytes"`
}

// manifest is the journal's root document.
type manifest struct {
	FormatVersion int    `json:"format_version"`
	Fingerprint   string `json:"fingerprint"`
	Seed          int64  `json:"seed"`
	// Stages lists completed stages in completion order.
	Stages []stageEntry `json:"stages"`
}

// Options configure Open.
type Options struct {
	// Seed is the build seed recorded in (and checked against) the manifest.
	Seed int64
	// Fingerprint is the hex digest of the build's output-affecting config
	// (see Fingerprint); resume refuses a journal with a different one.
	Fingerprint string
	// Resume keeps an existing journal and validates it; false truncates.
	Resume bool
	// Fault, when non-nil, injects a deterministic crash at one stage
	// boundary (chaos testing).
	Fault *Fault
}

// Journal is one build's checkpoint state rooted in a directory. Methods are
// called from the single builder goroutine; a Journal is not safe for
// concurrent use.
type Journal struct {
	dir   string
	man   manifest
	fault *Fault
}

// Fingerprint canonicalizes v as JSON and returns the hex SHA-256 — the
// config identity a journal is bound to.
func Fingerprint(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("checkpoint: fingerprint: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Open prepares the journal directory (creating it if needed). With
// o.Resume an existing manifest is validated against the format version,
// seed, and fingerprint — a mismatch is refused with ErrConfigMismatch — and
// its completed stages become loadable. Without o.Resume any existing
// journal is truncated: the manifest and every payload it names are removed
// so a fresh build cannot observe stale state.
func Open(dir string, o Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	j := &Journal{
		dir:   dir,
		man:   manifest{FormatVersion: FormatVersion, Fingerprint: o.Fingerprint, Seed: o.Seed},
		fault: o.Fault,
	}
	old, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if old == nil {
		return j, nil // nothing journaled yet; fresh either way
	}
	if !o.Resume {
		if err := truncate(dir, old); err != nil {
			return nil, err
		}
		return j, nil
	}
	switch {
	case old.FormatVersion != FormatVersion:
		return nil, fmt.Errorf("%w: journal format v%d, this build writes v%d",
			ErrConfigMismatch, old.FormatVersion, FormatVersion)
	case old.Seed != o.Seed:
		return nil, fmt.Errorf("%w: journal seed %d, build seed %d",
			ErrConfigMismatch, old.Seed, o.Seed)
	case old.Fingerprint != o.Fingerprint:
		return nil, fmt.Errorf("%w: journal fingerprint %.12s…, build fingerprint %.12s…",
			ErrConfigMismatch, old.Fingerprint, o.Fingerprint)
	}
	j.man = *old
	return j, nil
}

// readManifest loads the manifest, returning (nil, nil) when none exists.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest does not parse: %w", ErrCorrupt, err)
	}
	return &m, nil
}

// truncate removes a previous journal: every payload the old manifest names,
// then the manifest itself (last, so a crash mid-truncate still leaves a
// manifest whose next truncation finishes the job).
func truncate(dir string, old *manifest) error {
	for _, st := range old.Stages {
		if err := os.Remove(filepath.Join(dir, st.File)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("checkpoint: truncate: %w", err)
		}
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("checkpoint: truncate: %w", err)
	}
	return nil
}

// Stages returns the completed stage names in completion order.
func (j *Journal) Stages() []string {
	out := make([]string, len(j.man.Stages))
	for i, st := range j.man.Stages {
		out[i] = st.Name
	}
	return out
}

// LastCompleted returns the most recently completed stage name, or "".
func (j *Journal) LastCompleted() string {
	if n := len(j.man.Stages); n > 0 {
		return j.man.Stages[n-1].Name
	}
	return ""
}

// Completed reports whether a stage checkpoint is durably journaled.
func (j *Journal) Completed(stage string) bool {
	return j.entry(stage) != nil
}

func (j *Journal) entry(stage string) *stageEntry {
	for i := range j.man.Stages {
		if j.man.Stages[i].Name == stage {
			return &j.man.Stages[i]
		}
	}
	return nil
}

// stageFile names a stage's payload file.
func stageFile(stage string) string { return "stage-" + stage + ".json" }

// Write journals v as the completed stage's payload: the payload file lands
// atomically first, then the manifest entry (name, digest, size) — the
// commit point. ctx carries the telemetry hub for the write span and
// counters. A configured Fault on this stage returns ErrInjectedCrash
// before (FaultBeforeWrite) or after (FaultAfterWrite) the journal mutation.
func (j *Journal) Write(ctx context.Context, stage string, v any) error {
	if j.fault != nil && j.fault.Stage == stage && j.fault.Mode == FaultBeforeWrite {
		return fmt.Errorf("%w: before journaling stage %q", ErrInjectedCrash, stage)
	}
	_, span := telemetry.Start(ctx, "checkpoint.write")
	defer span.End()
	span.SetAttr("stage", stage)
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encode stage %q: %w", stage, err)
	}
	file := stageFile(stage)
	if err := atomicio.WriteFile(filepath.Join(j.dir, file), data); err != nil {
		return fmt.Errorf("checkpoint: stage %q: %w", stage, err)
	}
	sum := sha256.Sum256(data)
	entry := stageEntry{Name: stage, File: file, SHA256: hex.EncodeToString(sum[:]), Bytes: len(data)}
	if prev := j.entry(stage); prev != nil {
		*prev = entry // a re-run stage replaces its old record
	} else {
		j.man.Stages = append(j.man.Stages, entry)
	}
	if err := j.writeManifest(); err != nil {
		return fmt.Errorf("checkpoint: stage %q: %w", stage, err)
	}
	span.SetAttr("bytes", len(data))
	hub := telemetry.HubFromContext(ctx)
	hub.Registry.Counter(MetricWrites, telemetry.L("stage", stage)).Inc()
	hub.Registry.Counter(MetricWriteBytes).Add(float64(len(data)))
	if j.fault != nil && j.fault.Stage == stage && j.fault.Mode == FaultAfterWrite {
		return fmt.Errorf("%w: after journaling stage %q", ErrInjectedCrash, stage)
	}
	return nil
}

func (j *Journal) writeManifest() error {
	data, err := json.MarshalIndent(j.man, "", " ")
	if err != nil {
		return fmt.Errorf("encode manifest: %w", err)
	}
	return atomicio.WriteFile(filepath.Join(j.dir, manifestName), append(data, '\n'))
}

// Load reads a completed stage's payload into v, verifying the bytes
// against the digest the manifest recorded (ErrCorrupt on mismatch).
func (j *Journal) Load(ctx context.Context, stage string, v any) error {
	entry := j.entry(stage)
	if entry == nil {
		return fmt.Errorf("checkpoint: stage %q is not journaled", stage)
	}
	_, span := telemetry.Start(ctx, "checkpoint.load")
	defer span.End()
	span.SetAttr("stage", stage)
	data, err := os.ReadFile(filepath.Join(j.dir, entry.File))
	if err != nil {
		return fmt.Errorf("checkpoint: load stage %q: %w", stage, err)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != entry.SHA256 {
		return fmt.Errorf("%w: stage %q payload hashes %.12s…, manifest records %.12s…",
			ErrCorrupt, stage, got, entry.SHA256)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%w: stage %q does not decode: %w", ErrCorrupt, stage, err)
	}
	span.SetAttr("bytes", len(data))
	telemetry.HubFromContext(ctx).Registry.Counter(MetricLoads, telemetry.L("stage", stage)).Inc()
	return nil
}

// NoteSkip records that a build skipped a stage because the journal already
// holds its output (the checkpoint_stages_skipped_total counter).
func (j *Journal) NoteSkip(ctx context.Context, stage string) {
	telemetry.HubFromContext(ctx).Registry.Counter(MetricSkips, telemetry.L("stage", stage)).Inc()
}
