package checkpoint

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"patchdb/internal/telemetry"
)

type payload struct {
	N     int       `json:"n"`
	Items []string  `json:"items"`
	F     []float64 `json:"f"`
}

func testCtx() context.Context {
	return telemetry.WithHub(context.Background(), telemetry.NewHub())
}

func open(t *testing.T, dir string, o Options) *Journal {
	t.Helper()
	j, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx()
	j := open(t, dir, Options{Seed: 7, Fingerprint: "fp"})

	want := payload{N: 3, Items: []string{"a", "b"}, F: []float64{1.5, 0.1 + 0.2}}
	if err := j.Write(ctx, "crawl", want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := j.Write(ctx, "seed", payload{N: 9}); err != nil {
		t.Fatalf("Write seed: %v", err)
	}

	j2 := open(t, dir, Options{Seed: 7, Fingerprint: "fp", Resume: true})
	if got := j2.Stages(); len(got) != 2 || got[0] != "crawl" || got[1] != "seed" {
		t.Fatalf("Stages = %v", got)
	}
	if j2.LastCompleted() != "seed" {
		t.Fatalf("LastCompleted = %q", j2.LastCompleted())
	}
	if !j2.Completed("crawl") || j2.Completed("augment-1") {
		t.Fatal("Completed wrong")
	}
	var got payload
	if err := j2.Load(ctx, "crawl", &got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.N != want.N || len(got.Items) != 2 || got.F[1] != want.F[1] {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

func TestOpenFreshTruncates(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx()
	j := open(t, dir, Options{Seed: 1, Fingerprint: "fp"})
	if err := j.Write(ctx, "crawl", payload{N: 1}); err != nil {
		t.Fatal(err)
	}

	j2 := open(t, dir, Options{Seed: 1, Fingerprint: "fp"}) // Resume false
	if j2.LastCompleted() != "" {
		t.Fatalf("fresh open kept stages: %v", j2.Stages())
	}
	if _, err := os.Stat(filepath.Join(dir, stageFile("crawl"))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stage payload survived truncation: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("manifest survived truncation: %v", err)
	}
}

func TestResumeRefusesMismatch(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx()
	j := open(t, dir, Options{Seed: 1, Fingerprint: "fp"})
	if err := j.Write(ctx, "crawl", payload{}); err != nil {
		t.Fatal(err)
	}

	cases := []Options{
		{Seed: 1, Fingerprint: "other", Resume: true},
		{Seed: 2, Fingerprint: "fp", Resume: true},
	}
	for _, o := range cases {
		if _, err := Open(dir, o); !errors.Is(err, ErrConfigMismatch) {
			t.Errorf("Open(%+v) err = %v, want ErrConfigMismatch", o, err)
		}
	}
	// The journal itself must be untouched by refused opens.
	j2 := open(t, dir, Options{Seed: 1, Fingerprint: "fp", Resume: true})
	if j2.LastCompleted() != "crawl" {
		t.Fatalf("refused resume mutated journal: %v", j2.Stages())
	}
}

func TestResumeMissingManifestIsFresh(t *testing.T) {
	j := open(t, t.TempDir(), Options{Seed: 1, Fingerprint: "fp", Resume: true})
	if j.LastCompleted() != "" || len(j.Stages()) != 0 {
		t.Fatalf("empty dir resume not fresh: %v", j.Stages())
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx()
	j := open(t, dir, Options{Seed: 1, Fingerprint: "fp"})
	if err := j.Write(ctx, "crawl", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	// Flip payload bytes behind the manifest's back.
	path := filepath.Join(dir, stageFile("crawl"))
	if err := os.WriteFile(path, []byte(`{"n":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := open(t, dir, Options{Seed: 1, Fingerprint: "fp", Resume: true})
	var got payload
	if err := j2.Load(ctx, "crawl", &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of tampered payload: %v, want ErrCorrupt", err)
	}
}

func TestLoadUnknownStage(t *testing.T) {
	j := open(t, t.TempDir(), Options{})
	var got payload
	if err := j.Load(testCtx(), "nope", &got); err == nil {
		t.Fatal("Load of unjournaled stage succeeded")
	}
}

func TestRewriteStageReplacesEntry(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx()
	j := open(t, dir, Options{Seed: 1, Fingerprint: "fp"})
	if err := j.Write(ctx, "crawl", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Write(ctx, "crawl", payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	if got := j.Stages(); len(got) != 1 {
		t.Fatalf("rewrite duplicated the stage: %v", got)
	}
	var got payload
	if err := j.Load(ctx, "crawl", &got); err != nil || got.N != 2 {
		t.Fatalf("Load after rewrite: %+v, %v", got, err)
	}
}

func TestFaultModes(t *testing.T) {
	ctx := testCtx()

	// before-write: crash reported, nothing journaled.
	dir := t.TempDir()
	j := open(t, dir, Options{Seed: 1, Fingerprint: "fp",
		Fault: &Fault{Stage: "seed", Mode: FaultBeforeWrite}})
	if err := j.Write(ctx, "crawl", payload{N: 1}); err != nil {
		t.Fatalf("unrelated stage hit fault: %v", err)
	}
	if err := j.Write(ctx, "seed", payload{N: 2}); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("before-write fault: %v", err)
	}
	j2 := open(t, dir, Options{Seed: 1, Fingerprint: "fp", Resume: true})
	if j2.LastCompleted() != "crawl" {
		t.Fatalf("before-write fault journaled the stage: %v", j2.Stages())
	}

	// after-write: crash reported, stage durably journaled.
	dir = t.TempDir()
	j = open(t, dir, Options{Seed: 1, Fingerprint: "fp",
		Fault: &Fault{Stage: "crawl", Mode: FaultAfterWrite}})
	if err := j.Write(ctx, "crawl", payload{N: 1}); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("after-write fault: %v", err)
	}
	j2 = open(t, dir, Options{Seed: 1, Fingerprint: "fp", Resume: true})
	if j2.LastCompleted() != "crawl" {
		t.Fatalf("after-write fault lost the stage: %v", j2.Stages())
	}
}

func TestFingerprintStable(t *testing.T) {
	type cfg struct {
		Seed  int64
		Pools []int
	}
	a, err := Fingerprint(cfg{Seed: 1, Pools: []int{10, 20}})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Fingerprint(cfg{Seed: 1, Pools: []int{10, 20}})
	c, _ := Fingerprint(cfg{Seed: 1, Pools: []int{10, 21}})
	if a != b {
		t.Fatalf("identical configs fingerprint differently: %s vs %s", a, b)
	}
	if a == c {
		t.Fatal("different configs share a fingerprint")
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(a))
	}
}

func TestTelemetryCounters(t *testing.T) {
	hub := telemetry.NewHub()
	ctx := telemetry.WithHub(context.Background(), hub)
	dir := t.TempDir()
	j := open(t, dir, Options{Seed: 1, Fingerprint: "fp"})
	if err := j.Write(ctx, "crawl", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	j.NoteSkip(ctx, "crawl")
	var got payload
	if err := j.Load(ctx, "crawl", &got); err != nil {
		t.Fatal(err)
	}
	counts := map[string]float64{}
	for _, p := range hub.Registry.Snapshot() {
		counts[p.Name] += p.Value
	}
	for _, name := range []string{MetricWrites, MetricWriteBytes, MetricLoads, MetricSkips} {
		if counts[name] <= 0 {
			t.Errorf("counter %s = %v, want > 0", name, counts[name])
		}
	}
}
