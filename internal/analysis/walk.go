package analysis

import "go/ast"

// inspectNoFuncLit walks n in source order like ast.Inspect but does not
// descend into function literals (unless n itself is one) — for flow-
// sensitive analyzers whose property is per-function-body: a nested
// literal's statements belong to the literal's own CFG, not the enclosing
// function's.
func inspectNoFuncLit(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		if !visit(x) {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok && x != n {
			return false
		}
		return true
	})
}

// funcBodies yields every function body in the file — FuncDecl bodies and
// FuncLit bodies at any nesting depth — so each can be analyzed with its
// own control-flow graph.
func funcBodies(f *ast.File, yield func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				yield(n.Body)
			}
		case *ast.FuncLit:
			yield(n.Body)
		}
		return true
	})
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
