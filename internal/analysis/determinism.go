package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// deterministicPath reports whether an import path belongs to the packages
// whose output must be a pure function of the configured seed: the builder's
// root package, the core engines, the pipeline/crawl/corpus layers, and the
// checkpoint journal (a resumed build must be bit-identical to one that
// never crashed, so the journal can record no clocks or randomness). The
// ML and experiments layers consume explicit seeds but are not build-output
// paths, and cmd/ binaries legitimately read wall clocks for reporting.
func deterministicPath(path string) bool {
	switch path {
	case "patchdb",
		"patchdb/internal/core",
		"patchdb/internal/pipeline",
		"patchdb/internal/nvd",
		"patchdb/internal/corpus",
		"patchdb/internal/checkpoint":
		return true
	}
	return strings.HasPrefix(path, "patchdb/internal/core/")
}

// globalRandConstructors are the math/rand package functions that build
// explicitly seeded generators — the sanctioned way to get randomness.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism enforces the seed-purity contract of the build packages: no
// wall-clock reads (time.Now / time.Since), no process-global math/rand
// calls (their shared source is seeded from the clock), and no map-range
// loops that feed ordered output without a sort. Test files are exempt —
// the contract covers what ships in a build, and benchmarks time themselves
// by design.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "wall clocks, global randomness, and ordered map iteration are banned in deterministic build packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !deterministicPath(pass.Pkg.ImportPath) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, stack)
			}
			return true
		})
	}
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on an explicitly seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in deterministic build path; inject a clock or keep timing in telemetry-only state", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !globalRandConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"process-global rand.%s uses the shared clock-seeded source; use a rand.New(rand.NewSource(seed)) owned by the caller", fn.Name())
		}
	}
}

// checkMapRange flags `for ... := range m` over a map when the loop body
// feeds ordered output: appending to a slice declared outside the loop that
// is never sorted afterwards in the same function, or writing directly to a
// writer/printer. Map iteration order changes run to run, so both leak
// nondeterminism into build output.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	fnBody := enclosingFuncBody(stack)

	var appendTargets []*ast.Ident
	directWrite := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// target = append(target, ...) with target declared outside the loop.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(n.Lhs) <= i {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if obj := pass.ObjectOf(id); obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
						continue // a local function shadowing append
					}
				}
				lhs, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.ObjectOf(lhs)
				if obj == nil || withinNode(rng, obj.Pos()) {
					continue
				}
				appendTargets = append(appendTargets, lhs)
			}
		case *ast.CallExpr:
			if isOrderedWrite(pass, n) {
				directWrite = true
			}
		}
		return true
	})

	if directWrite {
		pass.Reportf(rng.For, "map iteration order feeds output directly; collect and sort the keys first")
		return
	}
	for _, target := range appendTargets {
		if fnBody != nil && sortedAfter(pass, fnBody, target, rng.End()) {
			continue
		}
		pass.Reportf(rng.For, "map iteration order feeds %q without a sort; sort the keys (or the result) before it is consumed", target.Name)
		return // one finding per loop is enough
	}
}

// isOrderedWrite reports whether call emits bytes whose order is observable:
// fmt printing to a writer/stdout, or Write* methods on builders/buffers.
func isOrderedWrite(pass *Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
		return true
	}
	if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil && strings.HasPrefix(fn.Name(), "Write") {
		switch types.TypeString(sig.Recv().Type(), nil) {
		case "*strings.Builder", "*bytes.Buffer":
			return true
		}
	}
	return false
}

// sortedAfter reports whether target is passed to a sort.* / slices.* call
// after pos within body — the canonical collect-then-sort idiom.
func sortedAfter(pass *Pass, body *ast.BlockStmt, target *ast.Ident, pos token.Pos) bool {
	obj := pass.ObjectOf(target)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					mentioned = true
				}
				return !mentioned
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal on the node stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	bodies := enclosingFuncBodies(stack)
	if len(bodies) == 0 {
		return nil
	}
	return bodies[0]
}

// enclosingFuncBodies returns the bodies of all function declarations and
// literals on the node stack, innermost first.
func enclosingFuncBodies(stack []ast.Node) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			bodies = append(bodies, fn.Body)
		case *ast.FuncLit:
			bodies = append(bodies, fn.Body)
		}
	}
	return bodies
}

// withinNode reports whether pos falls inside n's source range.
func withinNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}
