package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// deterministicPath reports whether an import path belongs to the packages
// whose output must be a pure function of the configured seed: the builder's
// root package, the core engines, the pipeline/crawl/corpus layers, and the
// checkpoint journal (a resumed build must be bit-identical to one that
// never crashed, so the journal can record no clocks or randomness). The
// ML and experiments layers consume explicit seeds but are not build-output
// paths, and cmd/ binaries legitimately read wall clocks for reporting.
func deterministicPath(path string) bool {
	switch path {
	case "patchdb",
		"patchdb/internal/core",
		"patchdb/internal/pipeline",
		"patchdb/internal/nvd",
		"patchdb/internal/corpus",
		"patchdb/internal/checkpoint":
		return true
	}
	return strings.HasPrefix(path, "patchdb/internal/core/")
}

// clockExemptPath reports whether a package is sanctioned to read clocks
// and process-global randomness by design, so calls into it never taint
// callers with clock-reachability facts: the telemetry layer (timing IS its
// job and none of it feeds build output), the retry layer (backoff and
// jitter are real-time behavior; crawl determinism is about output order,
// not timing), and the fault injector.
func clockExemptPath(path string) bool {
	for _, prefix := range []string{
		"patchdb/internal/telemetry",
		"patchdb/internal/retry",
		"patchdb/internal/faults",
	} {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

// globalRandConstructors are the math/rand package functions that build
// explicitly seeded generators — the sanctioned way to get randomness.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism enforces the seed-purity contract of the build packages: no
// wall-clock reads (time.Now / time.Since), no process-global math/rand
// calls (their shared source is seeded from the clock), no map-range loops
// that feed ordered output without a sort — and, via call-graph facts, no
// calls to module functions that *transitively* reach a clock or the global
// rand source, across package boundaries. A reasoned lint:ignore on the
// direct clock read stops the taint: the ignore asserts the timing never
// feeds build output, so callers stay clean. Test files are exempt — the
// contract covers what ships in a build, and benchmarks time themselves by
// design.
var Determinism = &Analyzer{
	Name:    "determinism",
	Doc:     "wall clocks, global randomness (direct or transitive), and ordered map iteration are banned in deterministic build packages",
	Version: 2,
	Run:     runDeterminism,
}

// clockReachFact is the fact name recording that a function transitively
// reaches a wall clock or the process-global rand source; the payload is a
// short witness chain ("nearestlink.Search -> time.Now").
const clockReachFact = "clockreach"

func runDeterminism(pass *Pass) {
	tainted := computeClockReach(pass)
	if !deterministicPath(pass.Pkg.ImportPath) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
				checkTransitiveClock(pass, n, tainted)
			case *ast.RangeStmt:
				checkMapRange(pass, n, stack)
			}
			return true
		})
	}
}

// computeClockReach builds the package-local clock-reachability closure and
// exports a clockreach fact per tainted package-level function. Seeds are
// unsuppressed direct clock/global-rand calls plus calls to imported module
// functions already carrying the fact; taint then propagates over the local
// call graph to a fixed point. Clock-exempt packages and external test
// units export nothing — nothing imports them, and their clocks are
// sanctioned by design.
func computeClockReach(pass *Pass) map[types.Object]string {
	if clockExemptPath(pass.Pkg.ImportPath) || strings.HasSuffix(pass.Pkg.ImportPath, ".test") {
		return nil
	}
	type funcInfo struct {
		obj     types.Object
		witness string             // "" until tainted
		callees []*types.Func      // local call edges
	}
	infos := make(map[types.Object]*funcInfo)
	var order []types.Object // declaration order, for deterministic fixed-point witnesses

	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Pkg.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			info := &funcInfo{obj: obj}
			infos[obj] = info
			order = append(order, obj)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if desc, bad := directClockCall(pass, call); bad {
					if info.witness == "" && !pass.Suppressed(call.Pos()) {
						info.witness = desc
					}
					return true
				}
				fn := pass.CalleeFunc(call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if fn.Pkg() == pass.Pkg.Types {
					info.callees = append(info.callees, fn)
				} else if info.witness == "" {
					if w, ok := pass.ObjectFact(fn, clockReachFact); ok {
						info.witness = chainWitness(funcDisplayName(fn), w)
					}
				}
				return true
			})
		}
	}

	// Propagate taint over local call edges to a fixed point.
	for changed := true; changed; {
		changed = false
		for _, obj := range order {
			info := infos[obj]
			if info.witness != "" {
				continue
			}
			for _, callee := range info.callees {
				if ci, ok := infos[callee]; ok && ci.witness != "" {
					info.witness = chainWitness(funcDisplayName(callee), ci.witness)
					changed = true
					break
				}
			}
		}
	}

	tainted := make(map[types.Object]string)
	for _, obj := range order {
		if info := infos[obj]; info.witness != "" {
			tainted[obj] = info.witness
			pass.ExportObjectFact(obj, clockReachFact, info.witness)
		}
	}
	return tainted
}

// checkTransitiveClock flags calls (in deterministic packages) to module
// functions that transitively reach a clock, resolved through local taint
// or imported clockreach facts.
func checkTransitiveClock(pass *Pass, call *ast.CallExpr, tainted map[types.Object]string) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	var witness string
	if fn.Pkg() == pass.Pkg.Types {
		witness = tainted[fn]
	} else if w, ok := pass.ObjectFact(fn, clockReachFact); ok {
		witness = w
	}
	if witness == "" {
		return
	}
	pass.Reportf(call.Pos(),
		"call to %s transitively reaches a wall clock or global rand (%s) in deterministic build path; inject a clock/seed, or lint:ignore the root read if it is telemetry-only",
		funcDisplayName(fn), witness)
}

// chainWitness prepends a hop to a witness chain, keeping chains readable
// by eliding middles past three hops.
func chainWitness(hop, rest string) string {
	if strings.Count(rest, " -> ") >= 2 {
		if i := strings.LastIndex(rest, " -> "); i >= 0 {
			return hop + " -> ... ->" + rest[i+3:]
		}
	}
	return hop + " -> " + rest
}

// funcDisplayName renders a function for diagnostics: pkg.Name or
// pkg.(Recv).Name.
func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			name = "(" + named.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// directClockCall reports whether call is a direct banned clock or
// global-rand read, with a short description for witness chains.
func directClockCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return "", false // methods (e.g. on an explicitly seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			return "time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		if !globalRandConstructors[fn.Name()] {
			return "rand." + fn.Name(), true
		}
	}
	return "", false
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on an explicitly seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in deterministic build path; inject a clock or keep timing in telemetry-only state", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !globalRandConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"process-global rand.%s uses the shared clock-seeded source; use a rand.New(rand.NewSource(seed)) owned by the caller", fn.Name())
		}
	}
}

// checkMapRange flags `for ... := range m` over a map when the loop body
// feeds ordered output: appending to a slice declared outside the loop that
// is never sorted afterwards in the same function, or writing directly to a
// writer/printer. Map iteration order changes run to run, so both leak
// nondeterminism into build output.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	fnBody := enclosingFuncBody(stack)

	var appendTargets []*ast.Ident
	directWrite := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// target = append(target, ...) with target declared outside the loop.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(n.Lhs) <= i {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if obj := pass.ObjectOf(id); obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
						continue // a local function shadowing append
					}
				}
				lhs, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.ObjectOf(lhs)
				if obj == nil || withinNode(rng, obj.Pos()) {
					continue
				}
				appendTargets = append(appendTargets, lhs)
			}
		case *ast.CallExpr:
			if isOrderedWrite(pass, n) {
				directWrite = true
			}
		}
		return true
	})

	if directWrite {
		pass.Reportf(rng.For, "map iteration order feeds output directly; collect and sort the keys first")
		return
	}
	for _, target := range appendTargets {
		if fnBody != nil && sortedAfter(pass, fnBody, target, rng.End()) {
			continue
		}
		pass.Reportf(rng.For, "map iteration order feeds %q without a sort; sort the keys (or the result) before it is consumed", target.Name)
		return // one finding per loop is enough
	}
}

// isOrderedWrite reports whether call emits bytes whose order is observable:
// fmt printing to a writer/stdout, or Write* methods on builders/buffers.
func isOrderedWrite(pass *Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
		return true
	}
	if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil && strings.HasPrefix(fn.Name(), "Write") {
		switch types.TypeString(sig.Recv().Type(), nil) {
		case "*strings.Builder", "*bytes.Buffer":
			return true
		}
	}
	return false
}

// sortedAfter reports whether target is passed to a sort.* / slices.* call
// after pos within body — the canonical collect-then-sort idiom.
func sortedAfter(pass *Pass, body *ast.BlockStmt, target *ast.Ident, pos token.Pos) bool {
	obj := pass.ObjectOf(target)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					mentioned = true
				}
				return !mentioned
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal on the node stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	bodies := enclosingFuncBodies(stack)
	if len(bodies) == 0 {
		return nil
	}
	return bodies[0]
}

// enclosingFuncBodies returns the bodies of all function declarations and
// literals on the node stack, innermost first.
func enclosingFuncBodies(stack []ast.Node) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			bodies = append(bodies, fn.Body)
		case *ast.FuncLit:
			bodies = append(bodies, fn.Body)
		}
	}
	return bodies
}

// withinNode reports whether pos falls inside n's source range.
func withinNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}
