// Package a is errcanon-analyzer golden testdata.
package a

import (
	"errors"
	"fmt"
	"io"
)

// ErrBoom is a canonical sentinel.
var ErrBoom = errors.New("boom")

// errLocalStyle does not follow the Err* convention and is left alone.
var errLocalStyle = errors.New("local")

func compareEq(err error) bool {
	return err == ErrBoom // want `use errors.Is\(err, ErrBoom\)`
}

func compareNeq(err error) bool {
	return err != ErrBoom // want `use errors.Is\(err, ErrBoom\)`
}

func compareStdlibSentinel(err error) bool {
	return err == io.EOF // want `use errors.Is\(err, io.EOF\)`
}

func errorsIsIsFine(err error) bool {
	return errors.Is(err, ErrBoom)
}

func nilCompareIsFine(err error) bool {
	return err != nil
}

func nonConventionNameIsFine(err error) bool {
	return err == errLocalStyle
}

func switchSentinel(err error) string {
	switch err {
	case nil:
		return "ok"
	case ErrBoom: // want `use errors.Is\(err, ErrBoom\)`
		return "boom"
	default:
		return "other"
	}
}

func wrapWithV(err error) error {
	return fmt.Errorf("stage failed: %v", err) // want `wrap with %w`
}

func wrapWithSAndLiteralPercent(n int, err error) error {
	return fmt.Errorf("%d%% done: %s", n, err) // want `wrap with %w`
}

func wrapWithWIsFine(err error) error {
	return fmt.Errorf("stage failed: %w", err)
}

func stringizedIsFine(err error) string {
	return fmt.Sprintf("stage failed: %v", err.Error())
}

func suppressedCompare(err error) bool {
	//lint:ignore errcanon golden-test case for directive suppression
	return err == ErrBoom
}
