// Package a is the goroleak golden. It is loaded under a synthetic
// pipeline-side import path so reporting is active; the helper package is
// analyzed first under its real path so its tied-function facts resolve
// here across the package boundary.
package a

import (
	"context"
	"sync"

	"patchdb/internal/analysis/testdata/src/goroleak/helper"
)

func spawnUntied(work func()) {
	go func() { // want `goroutine's exit is not tied to a context, WaitGroup, or channel`
		for {
			work()
		}
	}()
}

func spawnCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func spawnWG(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
}

func spawnRange(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// Closing a channel signals others that this goroutine finished; it does
// not bound when that happens, so it is not a tie.
func spawnCloseOnly(done chan struct{}) {
	go func() { // want `goroutine's exit is not tied to a context, WaitGroup, or channel`
		defer close(done)
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// A send alone does not bound the goroutine either: the send completes and
// the loop keeps running.
func spawnSendOnly(out chan<- int) {
	go func() { // want `goroutine's exit is not tied to a context, WaitGroup, or channel`
		for i := 0; ; i++ {
			out <- i
		}
	}()
}

func spawnHelperTied(ctx context.Context) {
	go helper.WatchCtx(ctx) // tied via the helper's cross-package fact
}

func spawnHelperDrain(ch chan int) {
	go helper.Drain(ch)
}

func spawnHelperUntied() {
	go helper.Spin() // want `goroutine's exit is not tied to a context, WaitGroup, or channel`
}

func watch(ctx context.Context) {
	<-ctx.Done()
}

func spawnLocalTied(ctx context.Context) {
	go watch(ctx)
}

func spawnLitCallingTied(ctx context.Context) {
	go func() {
		watch(ctx)
	}()
}

// An indirect spawn through a function value gets the benefit of the doubt.
func spawnIndirect(fn func()) {
	go fn()
}

// A nested `go` inside a goroutine body is its own goroutine: the outer
// literal is tied by its receive, the inner one is flagged on its own.
func spawnNested(ctx context.Context) {
	go func() {
		go func() { // want `goroutine's exit is not tied to a context, WaitGroup, or channel`
			for i := 0; ; i++ {
				_ = i
			}
		}()
		<-ctx.Done()
	}()
}
