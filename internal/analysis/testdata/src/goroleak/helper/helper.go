// Package helper provides cross-package targets for the goroleak golden:
// WatchCtx ties its exit to a context (exported as a fact), Spin does not.
package helper

import "context"

// WatchCtx blocks until ctx is canceled — a shutdown-bounded exit.
func WatchCtx(ctx context.Context) {
	<-ctx.Done()
}

// Drain exits when the channel is closed — also bounded.
func Drain(ch <-chan int) {
	for v := range ch {
		_ = v
	}
}

// Spin never observes a shutdown signal.
func Spin() {
	for i := 0; ; i++ {
		_ = i
	}
}
