// Package a is golden input for the logcanon analyzer: process-global print
// calls in a server/pipeline package, plus the calls that must stay silent
// (writer-explicit formatting, Sprintf, logger methods, shadowing names).
package a

import (
	"fmt"
	"log"
	"log/slog"
	"os"
)

func narrate(n int) {
	fmt.Println("processed", n)        // want `fmt\.Println bypasses the hub's structured logger`
	fmt.Printf("processed %d\n", n)    // want `fmt\.Printf bypasses the hub's structured logger`
	fmt.Print("done\n")                // want `fmt\.Print bypasses the hub's structured logger`
	log.Println("processed", n)        // want `log\.Println bypasses the hub's structured logger`
	log.Printf("processed %d\n", n)    // want `log\.Printf bypasses the hub's structured logger`
	log.Print("done\n")                // want `log\.Print bypasses the hub's structured logger`
}

func die(err error) {
	log.Fatal(err)                  // want `log\.Fatal bypasses the hub's structured logger`
	log.Fatalf("boom: %v", err)     // want `log\.Fatalf bypasses the hub's structured logger`
	log.Panicln("unreachable", err) // want `log\.Panicln bypasses the hub's structured logger`
}

// Writer-explicit and string-producing fmt calls are fine: nothing reaches a
// process-global stream behind the caller's back.
func allowedFmt(n int) string {
	fmt.Fprintf(os.Stderr, "explicit writer is allowed: %d\n", n)
	fmt.Fprintln(os.Stdout, "so is Fprintln")
	return fmt.Sprintf("n=%d", n)
}

// Methods on a *log.Logger instance are fine — an injected logger is exactly
// the dependency shape the canon wants (even better when it is a slog one).
func allowedLogger(l *log.Logger, s *slog.Logger) {
	l.Printf("instance logger: ok")
	l.Println("still ok")
	s.Info("structured", "key", "value")
}

// A method named Println on some other type is not fmt.Println.
type console struct{}

func (console) Println(...any) {}
func (console) Printf(string)  {}

func useConsole(c console) {
	c.Println("x")
	c.Printf("y")
}

// A local function shadowing the name is not log.Print either.
func shadowed() {
	Print := func(...any) {}
	Print("z")
}
