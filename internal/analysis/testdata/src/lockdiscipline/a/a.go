// Package a is the lockdiscipline golden: by-value lock copies, Lock
// without Unlock on some path, and locks held across blocking channel ops.
package a

import (
	"errors"
	"sync"
)

var errOops = errors.New("oops")

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
}

func missingUnlock(s *S, fail bool) error {
	s.mu.Lock() // want `s\.mu\.Lock\(\) has no matching Unlock on every return path`
	if fail {
		return errOops
	}
	s.mu.Unlock()
	return nil
}

func okDefer(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func okAllPaths(s *S, b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

func okPanicPathExempt(s *S, b bool) {
	s.mu.Lock()
	if b {
		panic("explicit panic paths are exempt")
	}
	s.mu.Unlock()
}

func rlockMissing(s *S, b bool) {
	s.rw.RLock() // want `s\.rw\.RLock\(\) has no matching RUnlock on every return path`
	if b {
		return
	}
	s.rw.RUnlock()
}

func okRLockPaired(s *S) {
	s.rw.RLock()
	defer s.rw.RUnlock()
}

func heldAcrossSend(s *S, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `a channel send is performed while holding s\.mu \(locked with Lock\)`
	s.mu.Unlock()
}

func heldAcrossRecv(s *S, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-ch // want `a channel receive is performed while holding s\.mu`
}

func heldAcrossSelect(s *S, ch chan int, done chan struct{}) {
	s.mu.Lock()
	select { // want `a blocking select is performed while holding s\.mu`
	case <-done:
	case v := <-ch:
		_ = v
	}
	s.mu.Unlock()
}

func okNonBlockingSelect(s *S, ch chan int) {
	s.mu.Lock()
	select {
	case v := <-ch:
		_ = v
	default:
	}
	s.mu.Unlock()
}

func heldAcrossRange(s *S, ch chan int) {
	s.mu.Lock()
	for range ch { // want `a channel range is performed while holding s\.mu`
	}
	s.mu.Unlock()
}

func okSliceRangeWhileLocked(s *S, xs []int) {
	s.mu.Lock()
	for _, x := range xs {
		_ = x
	}
	s.mu.Unlock()
}

func okReleaseBeforeSend(s *S, ch chan int) {
	s.mu.Lock()
	s.mu.Unlock()
	ch <- 1
}

func okLoopBalanced(s *S, n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock()
		s.mu.Unlock()
	}
}

func copiesMutex(mu sync.Mutex) { // want `parameter copies sync\.Mutex by value`
	_ = mu
}

func copiesStruct(s S) { // want `parameter copies sync\.Mutex by value`
	_ = s
}

func returnsRWMutex() sync.RWMutex { // want `result copies sync\.RWMutex by value`
	return sync.RWMutex{}
}

func (s S) valueReceiver() {} // want `receiver copies sync\.Mutex by value`

func (s *S) okPointerReceiver() {}

func okPointerParam(mu *sync.Mutex) {
	_ = mu
}
