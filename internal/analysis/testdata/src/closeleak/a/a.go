// Package a is the closeleak golden: files and response bodies must be
// closed on every normal-return path, directly, by defer, or by handing the
// handle to a helper whose closes-argument fact says it closes for the
// caller. The helper package is analyzed first so its facts resolve here
// across the package boundary.
package a

import (
	"bufio"
	"net/http"
	"os"

	"patchdb/internal/analysis/testdata/src/closeleak/helper"
)

func leaky(p string, skip bool) error {
	f, err := os.Open(p) // want `os\.Open file acquired here is not closed on every path`
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	f.Close()
	return nil
}

func okDeferred(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

func okErrGuard(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err // the handle never existed on this path
	}
	f.Close()
	return nil
}

func okBothBranches(p string, alt bool) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	if alt {
		f.Close()
		return nil
	}
	f.Close()
	return nil
}

func okHelperCloses(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	helper.CloseIt(f)
	return nil
}

func okHelperForwards(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	helper.Forward(f)
	return nil
}

func leakyHelperLeaves(p string) error {
	f, err := os.Open(p) // want `os\.Open file acquired here is not closed on every path`
	if err != nil {
		return err
	}
	helper.Leave(f)
	return nil
}

func closeLocal(f *os.File) {
	f.Close()
}

func okLocalHelper(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	closeLocal(f)
	return nil
}

// Passing the handle to a non-closing function is neutral, not a close and
// not an escape: the leak is still on this function.
func leakyReaderArg(p string) error {
	f, err := os.Open(p) // want `os\.Open file acquired here is not closed on every path`
	if err != nil {
		return err
	}
	r := bufio.NewReader(f)
	_, _ = r.ReadByte()
	return nil
}

// Returning the handle moves ownership to the caller.
func okEscapesReturn(p string) (*os.File, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Storing the handle in a struct moves ownership to the struct's owner.
type holder struct {
	f *os.File
}

func okEscapesStore(p string, h *holder) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	h.f = f
	return nil
}

func leakyBody(url string) error {
	resp, err := http.Get(url) // want `http response \(its Body\) acquired here is not closed on every path`
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		println("bad status")
	}
	return nil
}

func okBody(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return resp.Write(os.Stdout)
}

func okDeferredClosure(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	defer func() {
		f.Close()
	}()
	return nil
}

func okCreateTempPattern(dir string) error {
	f, err := os.CreateTemp(dir, "x*")
	if err != nil {
		return err
	}
	f.Close()
	return nil
}
