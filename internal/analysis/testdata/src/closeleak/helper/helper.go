// Package helper provides cross-package targets for the closeleak golden:
// CloseIt closes its parameter (exported as a closes-argument fact),
// Forward closes transitively through CloseIt, Leave does not close.
package helper

import "os"

// CloseIt closes its argument for the caller.
func CloseIt(f *os.File) {
	f.Close()
}

// Forward hands the file to CloseIt — the closes fact is transitive.
func Forward(f *os.File) {
	CloseIt(f)
}

// Leave inspects the file but does not close it.
func Leave(f *os.File) {
	_ = f.Name()
}
