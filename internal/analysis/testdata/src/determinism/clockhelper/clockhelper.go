// Package clockhelper is the fact source for the transitive-determinism
// golden: Stamp reaches the wall clock (and exports a clockreach fact),
// Pure does not, and Sanctioned's clock read carries a reasoned ignore so
// the taint stops at the root.
package clockhelper

import "time"

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Pure is a deterministic computation.
func Pure(x int64) int64 {
	return x * 2
}

// Sanctioned reads the clock, but the read is declared telemetry-only at
// the root, so callers do not inherit the taint.
func Sanctioned() int64 {
	//lint:ignore determinism golden fixture: timing is telemetry-only by construction
	return time.Now().UnixNano()
}
