// Package det is determinism-analyzer golden testdata. The harness loads it
// under a deterministic import path (patchdb/internal/core/det), where every
// `want` line must be reported, and again under a non-deterministic path,
// where nothing may be.
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock read time.Now`
	return time.Since(start) // want `wall-clock read time.Since`
}

func clockConstantsAreFine() time.Duration {
	return 5 * time.Millisecond
}

func globalRand() int {
	return rand.Intn(10) // want `process-global rand.Intn`
}

func seededRandIsFine(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func suppressedWallClock() time.Time {
	//lint:ignore determinism golden-test case for directive suppression
	return time.Now()
}

func mapFeedsSlice(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order feeds "keys" without a sort`
		keys = append(keys, k)
	}
	return keys
}

func mapSortedAfterIsFine(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapFeedsOutput(m map[string]int) {
	for k, v := range m { // want `map iteration order feeds output directly`
		fmt.Println(k, v)
	}
}

func mapAccumulationIsFine(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func mapLocalAppendIsFine(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
