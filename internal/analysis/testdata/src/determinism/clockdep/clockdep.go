// Package clockdep is the transitive-determinism golden: it is loaded under
// a synthetic core-side import path, and every clock it reaches is at least
// one call away — directly readable only through the clockhelper facts.
package clockdep

import "patchdb/internal/analysis/testdata/src/determinism/clockhelper"

func useStamp() int64 {
	return clockhelper.Stamp() // want `call to clockhelper\.Stamp transitively reaches a wall clock or global rand \(time\.Now\)`
}

func usePure() int64 {
	return clockhelper.Pure(7)
}

func useSanctioned() int64 {
	return clockhelper.Sanctioned()
}

func viaLocal() int64 {
	return clockhelper.Stamp() // want `call to clockhelper\.Stamp transitively reaches a wall clock`
}

func localChain() int64 {
	return viaLocal() // want `call to clockdep\.viaLocal transitively reaches a wall clock or global rand \(clockhelper\.Stamp -> time\.Now\)`
}
