// Package a is golden input for the atomicwrite analyzer: direct os file
// creation in an artifact-writing package, plus the calls that must stay
// silent (reads, methods named like the banned functions, test-file writes).
package a

import (
	"io"
	"os"
)

func writeArtifact(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `direct os\.WriteFile can leave a torn artifact on crash`
}

func createArtifact(path string) (io.WriteCloser, error) {
	return os.Create(path) // want `direct os\.Create can leave a torn artifact on crash`
}

func appendArtifact(path string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY|os.O_CREATE, 0o644) // want `direct os\.OpenFile can leave a torn artifact on crash`
	if err != nil {
		return err
	}
	return f.Close()
}

func scratchFile(dir string) error {
	f, err := os.CreateTemp(dir, "scratch-*") // want `direct os\.CreateTemp can leave a torn artifact on crash`
	if err != nil {
		return err
	}
	return f.Close()
}

// Reads are always fine.
func readArtifact(path string) ([]byte, error) {
	if f, err := os.Open(path); err == nil {
		f.Close()
	}
	return os.ReadFile(path)
}

// A method named Create on some other type is not os.Create.
type factory struct{}

func (factory) Create(string) error    { return nil }
func (factory) WriteFile(string) error { return nil }

func useFactory(f factory) {
	_ = f.Create("x")
	_ = f.WriteFile("y")
}

// A local function shadowing the name is not os.WriteFile either.
func shadowed() {
	WriteFile := func(string) error { return nil }
	_ = WriteFile("z")
}
