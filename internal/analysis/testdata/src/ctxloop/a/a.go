// Package a is ctxloop-analyzer golden testdata.
package a

import "context"

func spinNoCheck(ctx context.Context, work func()) {
	for { // want `unbounded loop in context-aware function never checks ctx`
		work()
	}
}

func whileNoCheck(ctx context.Context, busy func() bool) {
	for busy() { // want `unbounded loop in context-aware function never checks ctx`
	}
}

func spinWithSelect(ctx context.Context, work func()) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			work()
		}
	}
}

func whileWithErrCheck(ctx context.Context, busy func() bool) error {
	for busy() {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

func derivedContextCounts(ctx context.Context, busy func() bool) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	for busy() {
		if err := sub.Err(); err != nil {
			return err
		}
	}
	return nil
}

func countedLoopIsBounded(ctx context.Context, n int, work func(int)) {
	for i := 0; i < n; i++ {
		work(i)
	}
}

func sliceRangeIsBounded(ctx context.Context, items []int, work func(int)) {
	for _, it := range items {
		work(it)
	}
}

func workerNoCheck(ctx context.Context, jobs <-chan int, work func(int)) {
	for j := range jobs { // want `channel-range worker loop never checks ctx`
		work(j)
	}
}

func workerWithCheck(ctx context.Context, jobs <-chan int, work func(int)) {
	for j := range jobs {
		if ctx.Err() != nil {
			continue
		}
		work(j)
	}
}

func closureCapturesContext(ctx context.Context, jobs <-chan int, work func(int)) {
	go func() {
		for j := range jobs { // want `channel-range worker loop never checks ctx`
			work(j)
		}
	}()
}

func noContextNoContract(jobs <-chan int, work func(int)) {
	for j := range jobs {
		work(j)
	}
	for {
		return
	}
}

func suppressedSpin(ctx context.Context, step func() bool) {
	//lint:ignore ctxloop golden-test case: loop terminates via step
	for step() {
	}
}
