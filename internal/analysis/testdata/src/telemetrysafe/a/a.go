// Package a is telemetrysafe-analyzer golden testdata.
package a

import (
	"context"

	"patchdb/internal/telemetry"
)

// Config carries an optional hub, nil meaning "no telemetry" — the contract
// the analyzer guards.
type Config struct {
	Hub *telemetry.Hub
}

// processHub is package-level and initialized at startup, so it is non-nil
// by construction.
var processHub = telemetry.NewHub()

func unguardedParam(hub *telemetry.Hub) *telemetry.Registry {
	return hub.Registry // want `Registry read through a possibly-nil \*telemetry.Hub`
}

func unguardedTracer(hub *telemetry.Hub) *telemetry.Tracer {
	return hub.Tracer // want `Tracer read through a possibly-nil \*telemetry.Hub`
}

func unguardedField(cfg Config) *telemetry.Registry {
	return cfg.Hub.Registry // want `Registry read through a possibly-nil \*telemetry.Hub`
}

func guardedParam(hub *telemetry.Hub) *telemetry.Registry {
	if hub == nil {
		hub = telemetry.NewHub()
	}
	return hub.Registry
}

func guardedLocal(cfg Config) *telemetry.Registry {
	hub := cfg.Hub
	if hub == nil {
		return nil
	}
	return hub.Registry
}

func constructorResult() *telemetry.Registry {
	return telemetry.NewHub().Registry
}

func contextHub(ctx context.Context) *telemetry.Tracer {
	return telemetry.HubFromContext(ctx).Tracer
}

func assignedFromConstructor(ctx context.Context) *telemetry.Registry {
	hub := telemetry.HubFromContext(ctx)
	return hub.Registry
}

func packageLevelHub() *telemetry.Registry {
	return processHub.Registry
}

func guardCoversClosure(cfg Config) func() *telemetry.Registry {
	hub := cfg.Hub
	if hub == nil {
		hub = telemetry.NewHub()
	}
	return func() *telemetry.Registry {
		return hub.Registry
	}
}

func unguardedInClosure(hub *telemetry.Hub) func() *telemetry.Registry {
	return func() *telemetry.Registry {
		return hub.Registry // want `Registry read through a possibly-nil \*telemetry.Hub`
	}
}

func suppressedAccess(hub *telemetry.Hub) *telemetry.Registry {
	//lint:ignore telemetrysafe golden-test case: caller guarantees non-nil
	return hub.Registry
}
