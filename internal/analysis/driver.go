package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"patchdb/internal/atomicio"
	"patchdb/internal/telemetry"
)

// cacheSchema versions the on-disk cache entry layout; bumping it orphans
// every existing entry.
const cacheSchema = 1

// Driver is the incremental parallel analysis runner: it discovers package
// units with a cheap imports-only scan, analyzes them concurrently in
// topological waves (facts flow strictly from earlier waves, so results are
// identical at any worker count), and caches per-unit results keyed by a
// content hash of (sources, analyzer set + versions, imported facts) — a
// warm run over an unchanged tree type-checks nothing.
type Driver struct {
	Loader    *Loader
	Analyzers []*Analyzer
	// CacheDir holds per-unit result files; "" disables caching.
	CacheDir string
	// Workers caps concurrent unit analyses; <= 0 means GOMAXPROCS.
	Workers int
	// Hub, when set, receives cache hit/miss, source-load, and per-analyzer
	// timing counters.
	Hub *telemetry.Hub
}

// Stats summarizes one driver run.
type Stats struct {
	Units       int
	Waves       int
	CacheHits   int
	CacheMisses int
	// SourceLoads counts packages type-checked from source during this run
	// (analyzed units plus their module-internal imports); 0 on a fully
	// warm run.
	SourceLoads int64
	// AnalyzerNanos is wall-clock per analyzer across the units actually
	// analyzed (cache hits contribute nothing — no work was done).
	AnalyzerNanos map[string]int64
}

// String renders the one-line -stats summary.
func (s *Stats) String() string {
	return fmt.Sprintf("units=%d waves=%d cache_hits=%d cache_misses=%d source_loads=%d",
		s.Units, s.Waves, s.CacheHits, s.CacheMisses, s.SourceLoads)
}

// unit is one discovered package unit: a directory's base package (library
// + in-package tests) or its external test package.
type unit struct {
	importPath string
	dir        string
	external   bool
	srcHash    string
	deps       []*unit // in-set dependencies (facts flow along these)
	level      int

	key           string
	diags         []Diagnostic
	facts         *FactSet
	factsHash     string
	hit           bool
	analyzerNanos map[string]int64
}

// Run analyzes the packages matched by patterns and returns the globally
// sorted diagnostics plus run statistics.
func (d *Driver) Run(cwd string, patterns ...string) ([]Diagnostic, *Stats, error) {
	units, err := d.discover(cwd, patterns...)
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{Units: len(units), AnalyzerNanos: make(map[string]int64)}
	loadsBefore := d.Loader.SourceLoads()
	sig := analyzersSig(d.Analyzers)

	if d.CacheDir != "" {
		if err := os.MkdirAll(d.CacheDir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("analysis: create cache dir: %w", err)
		}
	}

	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	maxLevel := 0
	for _, u := range units {
		if u.level > maxLevel {
			maxLevel = u.level
		}
	}
	stats.Waves = maxLevel + 1

	var mu sync.Mutex
	var firstErr error
	for level := 0; level <= maxLevel; level++ {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for _, u := range units {
			if u.level != level {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(u *unit) {
				defer wg.Done()
				defer func() { <-sem }()
				err := d.runUnit(u, sig)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				if u.hit {
					stats.CacheHits++
				} else {
					stats.CacheMisses++
				}
			}(u)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, stats, firstErr
		}
	}

	var out []Diagnostic
	for _, u := range units {
		out = append(out, u.diags...)
		for name, n := range u.analyzerNanos {
			stats.AnalyzerNanos[name] += n
		}
	}
	SortDiagnostics(out)
	stats.SourceLoads = d.Loader.SourceLoads() - loadsBefore
	d.publish(stats)
	return out, stats, nil
}

// runUnit analyzes one unit, consulting and populating the cache.
func (d *Driver) runUnit(u *unit, sig string) error {
	trans := transitiveDeps(u)
	u.key = d.unitKey(u, sig, trans)

	if d.CacheDir != "" {
		if ent, ok := d.loadCacheEntry(u); ok {
			facts, err := DecodeFactSet(ent.Facts)
			if err == nil {
				u.facts = facts
				u.factsHash = ent.FactsHash
				u.diags = d.diagsFromCache(ent.Diags)
				u.hit = true
				return nil
			}
		}
	}

	pkg, err := d.Loader.LoadUnit(u.dir, u.external)
	if err != nil {
		return err
	}
	imported := NewFactSet()
	for _, dep := range trans {
		imported.Merge(dep.facts)
	}
	res := RunUnit(pkg, d.Analyzers, imported, func() int64 { return time.Now().UnixNano() })
	u.diags = res.Diagnostics
	u.facts = res.Facts
	u.factsHash = res.Facts.Hash()
	u.analyzerNanos = res.AnalyzerNanos

	if d.CacheDir != "" {
		if err := d.writeCacheEntry(u); err != nil {
			return err
		}
	}
	return nil
}

// unitKey derives the cache key: schema, module, unit identity, the
// analyzer set with versions, the unit's source hash, and the fact hash of
// every in-set transitive dependency. Dependency *sources* are deliberately
// absent — a dependency edit that leaves its exported facts unchanged (a
// comment, a private refactor) keeps dependents cached.
func (d *Driver) unitKey(u *unit, sig string, trans []*unit) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema %d\nmodule %s\nunit %s\nanalyzers %s\nsrc %s\n",
		cacheSchema, d.Loader.Module, u.importPath, sig, u.srcHash)
	for _, dep := range trans {
		fmt.Fprintf(h, "dep %s %s\n", dep.importPath, dep.factsHash)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// analyzersSig renders the analyzer configuration for the cache key: the
// enabled set, each with its version.
func analyzersSig(analyzers []*Analyzer) string {
	parts := make([]string, len(analyzers))
	for i, a := range analyzers {
		parts[i] = a.Name + ":" + strconv.Itoa(a.Version)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// transitiveDeps returns every unit reachable along dependency edges,
// sorted by import path.
func transitiveDeps(u *unit) []*unit {
	seen := make(map[*unit]bool)
	var visit func(*unit)
	visit = func(v *unit) {
		for _, dep := range v.deps {
			if !seen[dep] {
				seen[dep] = true
				visit(dep)
			}
		}
	}
	visit(u)
	out := make([]*unit, 0, len(seen))
	for dep := range seen {
		out = append(out, dep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].importPath < out[j].importPath })
	return out
}

// cacheEntry is the on-disk per-unit record.
type cacheEntry struct {
	Schema     int             `json:"schema"`
	Key        string          `json:"key"`
	ImportPath string          `json:"import_path"`
	Diags      []cacheDiag     `json:"diags,omitempty"`
	Facts      json.RawMessage `json:"facts"`
	FactsHash  string          `json:"facts_hash"`
}

// cacheDiag stores a diagnostic with a module-relative path so the cache
// survives a checkout moving.
type cacheDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d *Driver) cachePath(u *unit) string {
	sum := sha256.Sum256([]byte(u.importPath))
	return filepath.Join(d.CacheDir, hex.EncodeToString(sum[:])[:20]+".json")
}

func (d *Driver) loadCacheEntry(u *unit) (*cacheEntry, bool) {
	data, err := os.ReadFile(d.cachePath(u))
	if err != nil {
		return nil, false
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return nil, false // corrupt entry: treat as a miss, it will be rewritten
	}
	if ent.Schema != cacheSchema || ent.Key != u.key {
		return nil, false
	}
	return &ent, true
}

func (d *Driver) writeCacheEntry(u *unit) error {
	ent := cacheEntry{
		Schema:     cacheSchema,
		Key:        u.key,
		ImportPath: u.importPath,
		Facts:      json.RawMessage(u.facts.Encode()),
		FactsHash:  u.factsHash,
	}
	for _, diag := range u.diags {
		file := diag.Pos.Filename
		if rel, err := filepath.Rel(d.Loader.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		ent.Diags = append(ent.Diags, cacheDiag{
			File: file, Line: diag.Pos.Line, Col: diag.Pos.Column,
			Check: diag.Check, Message: diag.Message,
		})
	}
	data, err := json.Marshal(&ent)
	if err != nil {
		return fmt.Errorf("analysis: encode cache entry %s: %w", u.importPath, err)
	}
	// Atomic write: a killed run must never leave a torn entry behind.
	return atomicio.WriteFile(d.cachePath(u), data)
}

func (d *Driver) diagsFromCache(cached []cacheDiag) []Diagnostic {
	diags := make([]Diagnostic, len(cached))
	for i, c := range cached {
		file := c.File
		if !filepath.IsAbs(file) {
			file = filepath.Join(d.Loader.Root, filepath.FromSlash(c.File))
		}
		diags[i] = Diagnostic{
			Pos:     token.Position{Filename: file, Line: c.Line, Column: c.Col},
			Check:   c.Check,
			Message: c.Message,
		}
	}
	return diags
}

// publish pushes run counters to the telemetry hub.
func (d *Driver) publish(stats *Stats) {
	hub := d.Hub
	if hub == nil || hub.Registry == nil {
		return
	}
	reg := hub.Registry
	reg.Counter("patchdb_lint_cache_hits_total").Add(float64(stats.CacheHits))
	reg.Counter("patchdb_lint_cache_misses_total").Add(float64(stats.CacheMisses))
	reg.Counter("patchdb_lint_source_loads_total").Add(float64(stats.SourceLoads))
	for name, n := range stats.AnalyzerNanos {
		reg.Counter("patchdb_lint_analyzer_seconds_total", telemetry.L("analyzer", name)).Add(float64(n) / 1e9)
	}
}

// discover scans the matched directories with an imports-only parse — no
// type-checking — and returns the units with dependency edges and wave
// levels assigned.
func (d *Driver) discover(cwd string, patterns ...string) ([]*unit, error) {
	dirs, err := d.Loader.ResolveDirs(cwd, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	byPath := make(map[string]*unit) // base units by import path
	var units []*unit
	imports := make(map[*unit]map[string]bool)

	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		type srcFile struct {
			name     string
			data     []byte
			external bool
			imports  []string
		}
		var files []srcFile
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), data, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			sf := srcFile{name: name, data: data, external: strings.HasSuffix(f.Name.Name, "_test")}
			for _, im := range f.Imports {
				if p, err := strconv.Unquote(im.Path.Value); err == nil {
					sf.imports = append(sf.imports, p)
				}
			}
			files = append(files, sf)
		}
		if len(files) == 0 {
			continue
		}
		importPath, err := d.Loader.pathFor(dir)
		if err != nil {
			return nil, err
		}
		build := func(external bool) {
			h := sha256.New()
			imps := make(map[string]bool)
			n := 0
			for _, sf := range files {
				if sf.external != external {
					continue
				}
				n++
				fmt.Fprintf(h, "%s %d\n", sf.name, len(sf.data))
				h.Write(sf.data)
				for _, p := range sf.imports {
					if p == d.Loader.Module || strings.HasPrefix(p, d.Loader.Module+"/") {
						imps[p] = true
					}
				}
			}
			if n == 0 {
				return
			}
			u := &unit{importPath: importPath, dir: dir, external: external, srcHash: hex.EncodeToString(h.Sum(nil))}
			if external {
				u.importPath += ".test"
			} else {
				byPath[importPath] = u
			}
			units = append(units, u)
			imports[u] = imps
		}
		build(false)
		build(true)
	}

	// Resolve dependency edges against the discovered set; an external test
	// unit additionally depends on its own base unit.
	for _, u := range units {
		depSet := make(map[*unit]bool)
		for p := range imports[u] {
			if dep, ok := byPath[p]; ok && dep != u {
				depSet[dep] = true
			}
		}
		if u.external {
			if base, ok := byPath[strings.TrimSuffix(u.importPath, ".test")]; ok {
				depSet[base] = true
			}
		}
		for dep := range depSet {
			u.deps = append(u.deps, dep)
		}
		sort.Slice(u.deps, func(i, j int) bool { return u.deps[i].importPath < u.deps[j].importPath })
	}

	// Wave levels: a unit runs strictly after everything it depends on.
	memo := make(map[*unit]int)
	var levelOf func(*unit) int
	levelOf = func(u *unit) int {
		if lv, ok := memo[u]; ok {
			return lv
		}
		memo[u] = 0 // imports are acyclic; this also guards re-entry
		lv := 0
		for _, dep := range u.deps {
			if dl := levelOf(dep) + 1; dl > lv {
				lv = dl
			}
		}
		memo[u] = lv
		return lv
	}
	for _, u := range units {
		u.level = levelOf(u)
	}
	sort.Slice(units, func(i, j int) bool { return units[i].importPath < units[j].importPath })
	return units, nil
}
