package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches one loader (and with it the type-checked stdlib) for
// the whole test binary.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	root, err := FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return NewLoader(root)
})

func loadTestPkg(t *testing.T, rel, importPath string) *Package {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join(l.Root, rel), importPath)
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	return pkg
}

// wantRe extracts the backquoted regexes of a `// want` comment.
var wantRe = regexp.MustCompile("// want((?:\\s+`[^`]+`)+)")
var wantArgRe = regexp.MustCompile("`([^`]+)`")

type expectation struct {
	line int
	re   *regexp.Regexp
	used bool
	raw  string
}

// parseWants reads `// want `regex“ annotations per line of every file in
// dir.
func parseWants(t *testing.T, dir string) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(arg[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", e.Name(), i+1, arg[1], err)
				}
				wants[e.Name()] = append(wants[e.Name()], &expectation{line: i + 1, re: re, raw: arg[1]})
			}
		}
	}
	return wants
}

// goldenPkg names one testdata package of a golden scenario: its directory
// relative to the module root and the import path to load it under.
type goldenPkg struct {
	rel        string
	importPath string
}

// runGolden checks an analyzer against a testdata package: every `want`
// annotation must be matched by a diagnostic on its line, and every
// diagnostic must be claimed by a `want`.
func runGolden(t *testing.T, rel, importPath string, analyzers []*Analyzer) {
	t.Helper()
	runGoldenPkgs(t, []goldenPkg{{rel, importPath}}, analyzers)
}

// runGoldenPkgs is runGolden over a dependency-ordered package list: earlier
// packages are analyzed first so their exported facts are visible to later
// ones, exercising the cross-package fact layer. Wants are parsed from every
// listed directory (file basenames must be unique across them).
func runGoldenPkgs(t *testing.T, specs []goldenPkg, analyzers []*Analyzer) {
	t.Helper()
	pkgs := make([]*Package, len(specs))
	for i, s := range specs {
		pkgs[i] = loadTestPkg(t, s.rel, s.importPath)
	}
	diags := Run(pkgs, analyzers)
	wants := make(map[string][]*expectation)
	for _, pkg := range pkgs {
		for file, ws := range parseWants(t, pkg.Dir) {
			if _, dup := wants[file]; dup {
				t.Fatalf("duplicate golden basename %s across packages", file)
			}
			wants[file] = ws
		}
	}

	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants[base] {
			if w.used || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s:%d:%d: %s: %s", base, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: want %q not reported", file, w.line, w.raw)
			}
		}
	}
}

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, "internal/analysis/testdata/src/determinism/det",
		"patchdb/internal/core/det", []*Analyzer{Determinism})
}

// TestDeterminismAllowlistedPackage loads the same violating source under a
// package path outside the deterministic build set and expects silence:
// benches, CLIs, and the ML layer may read clocks.
func TestDeterminismAllowlistedPackage(t *testing.T) {
	pkg := loadTestPkg(t, "internal/analysis/testdata/src/determinism/det",
		"patchdb/internal/experiments/det")
	if diags := Run([]*Package{pkg}, []*Analyzer{Determinism}); len(diags) != 0 {
		t.Errorf("allowlisted package reported %d diagnostics: %v", len(diags), diags)
	}
}

func TestCtxLoopGolden(t *testing.T) {
	runGolden(t, "internal/analysis/testdata/src/ctxloop/a",
		"patchdb/internal/lintgolden/ctxloop", []*Analyzer{CtxLoop})
}

func TestErrCanonGolden(t *testing.T) {
	runGolden(t, "internal/analysis/testdata/src/errcanon/a",
		"patchdb/internal/lintgolden/errcanon", []*Analyzer{ErrCanon})
}

func TestTelemetrySafeGolden(t *testing.T) {
	runGolden(t, "internal/analysis/testdata/src/telemetrysafe/a",
		"patchdb/internal/lintgolden/telemetrysafe", []*Analyzer{TelemetrySafe})
}

func TestAtomicWriteGolden(t *testing.T) {
	runGolden(t, "internal/analysis/testdata/src/atomicwrite/a",
		"patchdb/cmd/lintgolden", []*Analyzer{AtomicWrite})
}

// TestAtomicWriteAllowlistedPackage loads the same violating source under a
// package path outside the artifact-writer set and expects silence: packages
// that never persist artifacts (and internal/atomicio itself) may call the
// os file functions directly.
func TestAtomicWriteAllowlistedPackage(t *testing.T) {
	pkg := loadTestPkg(t, "internal/analysis/testdata/src/atomicwrite/a",
		"patchdb/internal/lintgolden/atomicwrite")
	if diags := Run([]*Package{pkg}, []*Analyzer{AtomicWrite}); len(diags) != 0 {
		t.Errorf("allowlisted package reported %d diagnostics: %v", len(diags), diags)
	}
}

func TestLogCanonGolden(t *testing.T) {
	runGolden(t, "internal/analysis/testdata/src/logcanon/a",
		"patchdb/internal/store/lintgolden", []*Analyzer{LogCanon})
}

// TestLogCanonAllowlistedPackage loads the same violating source under a
// package path outside the server/pipeline set and expects silence: CLIs and
// experiment harnesses own their stdout and may print freely.
func TestLogCanonAllowlistedPackage(t *testing.T) {
	for _, path := range []string{
		"patchdb/internal/lintgolden/logcanon",
		"patchdb/cmd/lintgolden",
	} {
		pkg := loadTestPkg(t, "internal/analysis/testdata/src/logcanon/a", path)
		if diags := Run([]*Package{pkg}, []*Analyzer{LogCanon}); len(diags) != 0 {
			t.Errorf("allowlisted package %s reported %d diagnostics: %v", path, len(diags), diags)
		}
	}
}

func TestLockDisciplineGolden(t *testing.T) {
	runGolden(t, "internal/analysis/testdata/src/lockdiscipline/a",
		"patchdb/internal/lintgolden/lockdiscipline", []*Analyzer{LockDiscipline})
}

// TestGoroLeakGolden analyzes the helper package first (under its real
// import path, so the golden's import of it resolves to the same fact keys)
// and the golden under a synthetic pipeline-side path where reporting is
// active. The helper.Spin/WatchCtx cases only work if tied-function facts
// cross the package boundary.
func TestGoroLeakGolden(t *testing.T) {
	runGoldenPkgs(t, []goldenPkg{
		{"internal/analysis/testdata/src/goroleak/helper",
			"patchdb/internal/analysis/testdata/src/goroleak/helper"},
		{"internal/analysis/testdata/src/goroleak/a",
			"patchdb/internal/pipeline/lintgolden"},
	}, []*Analyzer{GoroLeak})
}

// TestGoroLeakAllowlistedPackage loads the same violating source under a
// package path outside the server/pipeline set and expects silence: a
// short-lived CLI-less library package owns its own goroutine hygiene.
func TestGoroLeakAllowlistedPackage(t *testing.T) {
	helper := loadTestPkg(t, "internal/analysis/testdata/src/goroleak/helper",
		"patchdb/internal/analysis/testdata/src/goroleak/helper")
	pkg := loadTestPkg(t, "internal/analysis/testdata/src/goroleak/a",
		"patchdb/internal/lintgolden/goroleak")
	if diags := Run([]*Package{helper, pkg}, []*Analyzer{GoroLeak}); len(diags) != 0 {
		t.Errorf("allowlisted package reported %d diagnostics: %v", len(diags), diags)
	}
}

// TestCloseLeakGolden exercises the closes-argument facts across the package
// boundary: helper.CloseIt/Forward close for the caller, helper.Leave does
// not.
func TestCloseLeakGolden(t *testing.T) {
	runGoldenPkgs(t, []goldenPkg{
		{"internal/analysis/testdata/src/closeleak/helper",
			"patchdb/internal/analysis/testdata/src/closeleak/helper"},
		{"internal/analysis/testdata/src/closeleak/a",
			"patchdb/internal/lintgolden/closeleak"},
	}, []*Analyzer{CloseLeak})
}

// TestDeterminismTransitiveGolden: every clock in the golden is at least one
// call away, reachable only through the clockhelper package's clockreach
// facts — including the negative case where a reasoned ignore on the root
// read stops the taint.
func TestDeterminismTransitiveGolden(t *testing.T) {
	runGoldenPkgs(t, []goldenPkg{
		{"internal/analysis/testdata/src/determinism/clockhelper",
			"patchdb/internal/analysis/testdata/src/determinism/clockhelper"},
		{"internal/analysis/testdata/src/determinism/clockdep",
			"patchdb/internal/core/clockdep"},
	}, []*Analyzer{Determinism})
}

// TestDeterminismTransitiveFactOrder guards the harness: analyzed without
// the helper's facts (helper not in the run), the clockdep golden must
// report nothing — proving the golden above passes only because facts
// crossed the package boundary.
func TestDeterminismTransitiveFactOrder(t *testing.T) {
	pkg := loadTestPkg(t, "internal/analysis/testdata/src/determinism/clockdep",
		"patchdb/internal/core/clockdep2")
	if diags := Run([]*Package{pkg}, []*Analyzer{Determinism}); len(diags) != 0 {
		t.Errorf("clockdep without helper facts reported %d diagnostics: %v", len(diags), diags)
	}
}

// TestSuiteSelfCheck runs the full suite over the analyzer framework and the
// patchdb-lint CLI: the linter must hold itself to the invariants it
// enforces.
func TestSuiteSelfCheck(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load(l.Root, "./internal/analysis", "./internal/analysis/cfg", "./cmd/patchdb-lint")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("self-check: %s", d)
	}
}

// TestGoldenPackagesDiffer guards the harness itself: the determinism golden
// package must produce findings under its deterministic path, so the
// allowlist test above cannot pass vacuously.
func TestGoldenPackagesDiffer(t *testing.T) {
	pkg := loadTestPkg(t, "internal/analysis/testdata/src/determinism/det",
		"patchdb/internal/core/det2")
	diags := Run([]*Package{pkg}, []*Analyzer{Determinism})
	if len(diags) == 0 {
		t.Fatal("deterministic-path load of golden package reported nothing; harness is broken")
	}
	for _, d := range diags {
		if d.Pos.Line <= 0 || d.Pos.Column <= 0 || !strings.HasSuffix(d.Pos.Filename, "det.go") {
			t.Errorf("diagnostic lacks accurate position: %+v", d)
		}
	}
}
