package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The driver tests run against a tiny hermetic module (no imports beyond
// its own packages, so type-checks cost nothing) with a test-local analyzer
// whose facts are controlled by doc-comment markers: that makes "a change
// that alters exported facts" and "a change that does not" trivially
// distinguishable.

const depMarked = `package dep

// Marked is special. mark:yes
func Marked() {}

// Plain is ordinary.
func Plain() {}
`

const appSrc = `package app

import "tmpmod/dep"

func Use() {
	dep.Marked()
	dep.Plain()
}
`

func writeTestModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	writeFiles(t, root, map[string]string{
		"go.mod":     "module tmpmod\n\ngo 1.21\n",
		"dep/dep.go": depMarked,
		"app/app.go": appSrc,
	})
	return root
}

func writeFiles(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// markAnalyzer exports an "m" fact for every function whose doc comment
// contains mark:yes and reports every call to a function carrying the fact
// (locally or imported).
func markAnalyzer(version int) *Analyzer {
	return &Analyzer{
		Name:    "tmark",
		Doc:     "test analyzer: flags calls to mark:yes functions",
		Version: version,
		Run: func(pass *Pass) {
			for _, f := range pass.Pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Doc == nil || !strings.Contains(fd.Doc.Text(), "mark:yes") {
						continue
					}
					if obj := pass.Pkg.Info.Defs[fd.Name]; obj != nil {
						pass.ExportObjectFact(obj, "m", "1")
					}
				}
			}
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn := pass.CalleeFunc(call); fn != nil {
						if _, marked := pass.ObjectFact(fn, "m"); marked {
							pass.Reportf(call.Pos(), "call to marked function %s", fn.Name())
						}
					}
					return true
				})
			}
		},
	}
}

// runTestDriver runs a fresh loader + driver over the module — a fresh
// loader per run is the point: a warm run must get everything from the
// cache, not from loader state.
func runTestDriver(t *testing.T, root, cacheDir string, analyzers []*Analyzer, workers int) ([]Diagnostic, *Stats) {
	t.Helper()
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	d := &Driver{Loader: l, Analyzers: analyzers, CacheDir: cacheDir, Workers: workers}
	diags, stats, err := d.Run(root, "./...")
	if err != nil {
		t.Fatalf("driver run: %v", err)
	}
	return diags, stats
}

func renderDiags(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

func sameDiags(a, b []Diagnostic) bool {
	ra, rb := renderDiags(a), renderDiags(b)
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

func TestDriverColdThenWarm(t *testing.T) {
	root := writeTestModule(t)
	cache := filepath.Join(root, ".lintcache")
	an := []*Analyzer{markAnalyzer(1)}

	cold, coldStats := runTestDriver(t, root, cache, an, 4)
	if len(cold) != 1 || !strings.Contains(cold[0].Message, "call to marked function Marked") {
		t.Fatalf("cold diagnostics = %v, want one marked-call finding", renderDiags(cold))
	}
	if coldStats.CacheHits != 0 || coldStats.CacheMisses != 2 {
		t.Errorf("cold stats = %s, want 0 hits / 2 misses", coldStats)
	}
	if coldStats.SourceLoads == 0 {
		t.Errorf("cold run type-checked nothing: %s", coldStats)
	}

	warm, warmStats := runTestDriver(t, root, cache, an, 4)
	if warmStats.CacheHits != 2 || warmStats.CacheMisses != 0 {
		t.Errorf("warm stats = %s, want 2 hits / 0 misses", warmStats)
	}
	if warmStats.SourceLoads != 0 {
		t.Errorf("warm run loaded %d packages from source, want 0", warmStats.SourceLoads)
	}
	if !sameDiags(cold, warm) {
		t.Errorf("warm diagnostics differ from cold:\ncold: %v\nwarm: %v", renderDiags(cold), renderDiags(warm))
	}
}

func TestDriverSourceChangeInvalidatesUnit(t *testing.T) {
	root := writeTestModule(t)
	cache := filepath.Join(root, ".lintcache")
	an := []*Analyzer{markAnalyzer(1)}
	runTestDriver(t, root, cache, an, 2)

	writeFiles(t, root, map[string]string{
		"app/app.go": appSrc + "\nfunc More() {\n\tdep.Plain()\n}\n",
	})
	_, stats := runTestDriver(t, root, cache, an, 2)
	if stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Errorf("after app edit: %s, want 1 hit (dep) / 1 miss (app)", stats)
	}
}

// TestDriverDepCommentChangeKeepsDependentCached is the key cache-design
// property: the dependent's key includes the dependency's *fact hash*, not
// its sources, so a dependency edit that leaves exported facts unchanged
// re-analyzes only the dependency.
func TestDriverDepCommentChangeKeepsDependentCached(t *testing.T) {
	root := writeTestModule(t)
	cache := filepath.Join(root, ".lintcache")
	an := []*Analyzer{markAnalyzer(1)}
	before, _ := runTestDriver(t, root, cache, an, 2)

	writeFiles(t, root, map[string]string{
		"dep/dep.go": strings.Replace(depMarked, "Plain is ordinary", "Plain is still ordinary", 1),
	})
	after, stats := runTestDriver(t, root, cache, an, 2)
	if stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Errorf("after dep comment edit: %s, want 1 hit (app) / 1 miss (dep)", stats)
	}
	if !sameDiags(before, after) {
		t.Errorf("diagnostics changed on a comment-only edit:\nbefore: %v\nafter: %v",
			renderDiags(before), renderDiags(after))
	}
}

func TestDriverFactChangeInvalidatesDependent(t *testing.T) {
	root := writeTestModule(t)
	cache := filepath.Join(root, ".lintcache")
	an := []*Analyzer{markAnalyzer(1)}
	runTestDriver(t, root, cache, an, 2)

	writeFiles(t, root, map[string]string{
		"dep/dep.go": strings.Replace(depMarked, "mark:yes", "mark:no", 1),
	})
	diags, stats := runTestDriver(t, root, cache, an, 2)
	if stats.CacheMisses != 2 || stats.CacheHits != 0 {
		t.Errorf("after fact change: %s, want both units re-analyzed", stats)
	}
	if len(diags) != 0 {
		t.Errorf("unmarked function still reported: %v", renderDiags(diags))
	}
}

func TestDriverAnalyzerVersionInvalidates(t *testing.T) {
	root := writeTestModule(t)
	cache := filepath.Join(root, ".lintcache")
	runTestDriver(t, root, cache, []*Analyzer{markAnalyzer(1)}, 2)

	_, stats := runTestDriver(t, root, cache, []*Analyzer{markAnalyzer(2)}, 2)
	if stats.CacheMisses != 2 || stats.CacheHits != 0 {
		t.Errorf("after version bump: %s, want every unit re-analyzed", stats)
	}
}

func TestDriverCorruptCacheEntryIsMiss(t *testing.T) {
	root := writeTestModule(t)
	cache := filepath.Join(root, ".lintcache")
	an := []*Analyzer{markAnalyzer(1)}
	before, _ := runTestDriver(t, root, cache, an, 2)

	ents, err := os.ReadDir(cache)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no cache entries written: %v", err)
	}
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(cache, e.Name()), []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	after, stats := runTestDriver(t, root, cache, an, 2)
	if stats.CacheMisses != 2 {
		t.Errorf("corrupt entries not treated as misses: %s", stats)
	}
	if !sameDiags(before, after) {
		t.Errorf("diagnostics differ after corrupt-cache recovery")
	}
}

// TestDriverResultsInvariant: diagnostics are bit-identical with and without
// the cache and at any worker count.
func TestDriverResultsInvariant(t *testing.T) {
	root := writeTestModule(t)
	an := []*Analyzer{markAnalyzer(1)}

	noCacheW1, _ := runTestDriver(t, root, "", an, 1)
	noCacheW8, _ := runTestDriver(t, root, "", an, 8)
	cache := filepath.Join(root, ".lintcache")
	cachedCold, _ := runTestDriver(t, root, cache, an, 8)
	cachedWarm, _ := runTestDriver(t, root, cache, an, 3)

	for name, got := range map[string][]Diagnostic{
		"workers=8 uncached": noCacheW8,
		"cold cached":        cachedCold,
		"warm cached":        cachedWarm,
	} {
		if !sameDiags(noCacheW1, got) {
			t.Errorf("%s diagnostics differ from workers=1 uncached:\nbase: %v\ngot:  %v",
				name, renderDiags(noCacheW1), renderDiags(got))
		}
	}
	if len(noCacheW1) != 1 {
		t.Fatalf("baseline run found %d diagnostics, want 1", len(noCacheW1))
	}
}
