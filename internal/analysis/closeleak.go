package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"patchdb/internal/analysis/cfg"
)

// CloseLeak is the resource-lifetime checker: a handle acquired in a
// function — an *os.File from the os.Open family, an *http.Response, or a
// module-internal Open*/Acquire* result with a Close method (snapshot
// handles) — must be closed on every path that returns normally. "Closed"
// includes handing the handle to a helper that closes it for the caller:
// such helpers export a closes-argument fact, so the check resolves across
// packages instead of false-positive-ing on cleanup helpers. Handles that
// escape the function (returned, stored, sent, captured) are the new
// owner's responsibility and are not tracked; error-check branches where
// the handle never existed are exempt.
var CloseLeak = &Analyzer{
	Name:    "closeleak",
	Doc:     "files, response bodies, and snapshot handles are closed on every path, with closes-argument facts for helpers",
	Version: 1,
	Run:     runCloseLeak,
}

// closesFactName marks a function that closes one of its parameters; the
// payload is a comma-separated list of zero-based parameter indices.
const closesFactName = "closes"

func runCloseLeak(pass *Pass) {
	closes := computeCloses(pass)
	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		funcBodies(f, func(body *ast.BlockStmt) {
			checkCloseFlow(pass, body, closes)
		})
	}
}

// closesIndices resolves which parameter indices fn closes, from the local
// fixed point or imported facts.
func closesIndices(pass *Pass, fn *types.Func, local map[types.Object]map[int]bool) map[int]bool {
	if fn == nil {
		return nil
	}
	if idxs, ok := local[fn]; ok {
		return idxs
	}
	payload, ok := pass.ObjectFact(fn, closesFactName)
	if !ok {
		return nil
	}
	idxs := make(map[int]bool)
	for _, s := range strings.Split(payload, ",") {
		if i, err := strconv.Atoi(s); err == nil {
			idxs[i] = true
		}
	}
	return idxs
}

// computeCloses builds the package-local closes-argument facts: for each
// function, the set of parameters it closes — directly (p.Close(),
// p.Body.Close(), deferred or not, including inside nested literals) or by
// forwarding the parameter to another closing function (fixed point, plus
// imported facts). External test units export nothing.
func computeCloses(pass *Pass) map[types.Object]map[int]bool {
	if strings.HasSuffix(pass.Pkg.ImportPath, ".test") {
		return nil
	}
	type forward struct {
		callee *types.Func
		calleeIdx, paramIdx int
	}
	type funcInfo struct {
		obj      types.Object
		params   []types.Object
		closed   map[int]bool
		forwards []forward
	}
	infos := make(map[types.Object]*funcInfo)
	var order []types.Object

	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Pkg.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			info := &funcInfo{obj: obj, closed: make(map[int]bool)}
			paramIdx := make(map[types.Object]int)
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if po := pass.Pkg.Info.Defs[name]; po != nil {
						paramIdx[po] = len(info.params)
						info.params = append(info.params, po)
					} else {
						info.params = append(info.params, nil)
					}
				}
			}
			infos[obj] = info
			order = append(order, obj)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if target := closeTarget(pass, call); target != nil {
					if i, ok := paramIdx[target]; ok {
						info.closed[i] = true
					}
					return true
				}
				fn := pass.CalleeFunc(call)
				if fn == nil {
					return true
				}
				for argIdx, arg := range call.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if pi, ok := paramIdx[pass.ObjectOf(id)]; ok {
							info.forwards = append(info.forwards, forward{callee: fn, calleeIdx: argIdx, paramIdx: pi})
						}
					}
				}
				return true
			})
		}
	}

	for changed := true; changed; {
		changed = false
		for _, obj := range order {
			info := infos[obj]
			for _, fw := range info.forwards {
				if info.closed[fw.paramIdx] {
					continue
				}
				var calleeCloses map[int]bool
				if ci, ok := infos[fw.callee]; ok {
					calleeCloses = ci.closed
				} else {
					calleeCloses = closesIndices(pass, fw.callee, nil)
				}
				if calleeCloses[fw.calleeIdx] {
					info.closed[fw.paramIdx] = true
					changed = true
				}
			}
		}
	}

	local := make(map[types.Object]map[int]bool)
	for _, obj := range order {
		info := infos[obj]
		if len(info.closed) == 0 {
			continue
		}
		local[obj] = info.closed
		idxs := make([]int, 0, len(info.closed))
		for i := range info.closed {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		parts := make([]string, len(idxs))
		for i, v := range idxs {
			parts[i] = strconv.Itoa(v)
		}
		pass.ExportObjectFact(obj, closesFactName, strings.Join(parts, ","))
	}
	return local
}

// closeTarget returns the object being closed by call — the x in x.Close()
// or x.Body.Close() — or nil.
func closeTarget(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil
	}
	base := ast.Unparen(sel.X)
	if inner, ok := base.(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" {
		base = ast.Unparen(inner.X)
	}
	if id, ok := base.(*ast.Ident); ok {
		return pass.ObjectOf(id)
	}
	return nil
}

// acquisition is one tracked resource: the handle variable, its paired
// error variable (if assigned alongside), and where/what it was acquired.
type acquisition struct {
	res  types.Object
	err  types.Object
	pos  token.Pos
	desc string
	blk  *cfg.Block
	idx  int // index into the block's node list, at the acquiring statement
}

// checkCloseFlow tracks resource acquisitions through the body's CFG.
func checkCloseFlow(pass *Pass, body *ast.BlockStmt, closes map[types.Object]map[int]bool) {
	g := cfg.New(body)

	var acqs []acquisition
	for _, blk := range g.Blocks {
		for idx, node := range blk.Nodes {
			as, ok := node.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			desc, ok := resourceCall(pass, call)
			if !ok {
				continue
			}
			resID, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok || resID.Name == "_" {
				continue
			}
			res := pass.ObjectOf(resID)
			if res == nil {
				continue
			}
			var errObj types.Object
			if len(as.Lhs) == 2 {
				if errID, ok := ast.Unparen(as.Lhs[1]).(*ast.Ident); ok && errID.Name != "_" {
					errObj = pass.ObjectOf(errID)
				}
			}
			acqs = append(acqs, acquisition{res: res, err: errObj, pos: as.Pos(), desc: desc, blk: blk, idx: idx})
		}
	}
	if len(acqs) == 0 {
		return
	}

	for _, acq := range acqs {
		if resourceEscapes(pass, body, acq, closes) {
			continue
		}
		if deferredClose(pass, g, acq, closes) {
			continue
		}
		if leaksOnSomePath(pass, g, acq, closes) {
			pass.Reportf(acq.pos, "%s acquired here is not closed on every path; close it on each return, defer the Close, or hand it to a closing helper", acq.desc)
		}
	}
}

// resourceCall classifies a call as a resource acquisition.
func resourceCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return "", false // conversion, not a call
	}
	fn := pass.CalleeFunc(call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" {
		switch fn.Name() {
		case "Open", "OpenFile", "Create", "CreateTemp":
			return "os." + fn.Name() + " file", true
		}
	}
	t := firstResultType(pass, call)
	if t == nil {
		return "", false
	}
	if named := namedPointee(t); named != nil {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response" {
			return "http response (its Body)", true
		}
		// Module-internal openers handing out closable handles (snapshot
		// readers and friends): the name says "you own this", the Close
		// method says "and must release it".
		if fn != nil && fn.Pkg() != nil && isModulePath(fn.Pkg().Path()) &&
			(strings.HasPrefix(fn.Name(), "Open") || strings.HasPrefix(fn.Name(), "Acquire")) &&
			hasCloseMethod(t) {
			return fmt.Sprintf("%s.%s handle", obj.Pkg().Name(), obj.Name()), true
		}
	}
	return "", false
}

func isModulePath(path string) bool {
	return path == "patchdb" || strings.HasPrefix(path, "patchdb/")
}

// firstResultType returns the (first) result type of a call expression.
func firstResultType(pass *Pass, call *ast.CallExpr) types.Type {
	tv, ok := pass.Pkg.Info.Types[ast.Expr(call)]
	if !ok || tv.Type == nil {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return nil
		}
		return tuple.At(0).Type()
	}
	return tv.Type
}

// namedPointee unwraps *Named to its Named type.
func namedPointee(t types.Type) *types.Named {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return nil
	}
	named, _ := types.Unalias(ptr.Elem()).(*types.Named)
	return named
}

// hasCloseMethod reports whether t's method set includes Close.
func hasCloseMethod(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Close")
	_, ok := obj.(*types.Func)
	return ok
}

// resourceEscapes reports whether the handle's ownership leaves the
// function: returned, assigned onward, stored in a composite/field/index,
// sent on a channel, address-taken, or captured by a function literal that
// is not itself a deferred closer. Escaped handles are the new owner's
// problem — tracking them here would be guesswork.
func resourceEscapes(pass *Pass, body *ast.BlockStmt, acq acquisition, closes map[types.Object]map[int]bool) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != acq.res {
			return true
		}
		if identEscapes(pass, stack, acq, closes) {
			escaped = true
		}
		return true
	})
	return escaped
}

// identEscapes classifies one use of the resource identifier (the last
// stack entry) by its enclosing context.
func identEscapes(pass *Pass, stack []ast.Node, acq acquisition, closes map[types.Object]map[int]bool) bool {
	// Capture by a nested function literal escapes — the closure owns an
	// alias whose lifetime the CFG walk cannot see — unless the literal is
	// a deferred closure that closes the handle (that idiom is a close on
	// every subsequent path, handled by deferredClose).
	for i := len(stack) - 2; i >= 1; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			return !litIsDeferredCloser(pass, stack, i, acq, closes)
		}
	}
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.SelectorExpr:
			continue // res.Close, res.Body, res.Name — member access, keep looking up
		case *ast.ParenExpr:
			continue
		case *ast.AssignStmt:
			// The acquiring assignment itself does not escape; any other
			// assignment position (alias, field store, swap) does.
			return parent.Pos() != acq.pos
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.IndexExpr:
			return true
		case *ast.UnaryExpr:
			return parent.Op == token.AND
		case *ast.CallExpr:
			// Argument passing is neutral (bufio.NewReader(f) does not take
			// ownership) — closing helpers are recognized by the flow walk.
			return false
		case ast.Stmt:
			return false
		}
	}
	return false
}

// litIsDeferredCloser reports whether the function literal at stack[i] is
// the operand of a defer statement and closes the resource.
func litIsDeferredCloser(pass *Pass, stack []ast.Node, i int, acq acquisition, closes map[types.Object]map[int]bool) bool {
	if i < 2 {
		return false
	}
	if _, ok := stack[i-1].(*ast.CallExpr); !ok {
		return false
	}
	if _, ok := stack[i-2].(*ast.DeferStmt); !ok {
		return false
	}
	lit := stack[i].(*ast.FuncLit)
	closed := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && closeEventMatches(pass, c, acq.res, closes) {
			closed = true
		}
		return true
	})
	return closed
}

// closeEventMatches reports whether call closes the resource: res.Close(),
// res.Body.Close(), or res forwarded to a function whose closes fact covers
// that argument index.
func closeEventMatches(pass *Pass, call *ast.CallExpr, res types.Object, closes map[types.Object]map[int]bool) bool {
	if closeTarget(pass, call) == res {
		return true
	}
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return false
	}
	idxs := closesIndices(pass, fn, closes)
	if len(idxs) == 0 {
		return false
	}
	for argIdx, arg := range call.Args {
		if !idxs[argIdx] {
			continue
		}
		base := ast.Unparen(arg)
		if inner, ok := base.(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" {
			base = ast.Unparen(inner.X)
		}
		if id, ok := base.(*ast.Ident); ok && pass.ObjectOf(id) == res {
			return true
		}
	}
	return false
}

// deferredClose reports whether some deferred call closes the resource —
// a defer covers every exit after registration, which for the supported
// acquire-then-defer idiom means every path that matters.
func deferredClose(pass *Pass, g *cfg.Graph, acq acquisition, closes map[types.Object]map[int]bool) bool {
	for _, d := range g.Defers {
		if closeEventMatches(pass, d.Call, acq.res, closes) {
			return true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			found := false
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok && closeEventMatches(pass, c, acq.res, closes) {
					found = true
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// leaksOnSomePath walks the CFG from the acquisition looking for a path to
// the normal exit with no close. Error-guard branches on the paired error
// variable are exempt — on `err != nil` the handle never existed. Panic
// exits are ignored.
func leaksOnSomePath(pass *Pass, g *cfg.Graph, acq acquisition, closes map[types.Object]map[int]bool) bool {
	closesInBlock := func(blk *cfg.Block, from int) bool {
		for i := from; i < len(blk.Nodes); i++ {
			if _, ok := blk.Nodes[i].(*ast.DeferStmt); ok {
				continue // handled by deferredClose
			}
			found := false
			inspectNoFuncLit(blk.Nodes[i], func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok && closeEventMatches(pass, c, acq.res, closes) {
					found = true
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}

	visited := make(map[*cfg.Block]bool)
	visited[acq.blk] = true
	leaks := false
	var walk func(blk *cfg.Block, from int)
	walk = func(blk *cfg.Block, from int) {
		if leaks {
			return
		}
		if closesInBlock(blk, from) {
			return // this path closed the handle
		}
		succs := blk.Succs
		if blk.Cond != nil && len(succs) == 2 && acq.err != nil {
			switch errGuard(pass, blk.Cond, acq.err) {
			case 1: // err != nil: true branch is the no-handle path
				succs = succs[1:2]
			case -1: // err == nil: false branch is the no-handle path
				succs = succs[0:1]
			}
		}
		for _, succ := range succs {
			switch succ {
			case g.Exit:
				leaks = true
			case g.PanicExit:
				// exempt
			default:
				if !visited[succ] {
					visited[succ] = true
					walk(succ, 0)
				}
			}
		}
	}
	walk(acq.blk, acq.idx+1)
	return leaks
}

// errGuard classifies cond as a nil-check on errObj: 1 when the true
// branch is the error path (err != nil), -1 when the false branch is
// (err == nil), 0 when cond is something else.
func errGuard(pass *Pass, cond ast.Expr, errObj types.Object) int {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return 0
	}
	var id *ast.Ident
	switch {
	case isNilExpr(be.Y):
		id, _ = ast.Unparen(be.X).(*ast.Ident)
	case isNilExpr(be.X):
		id, _ = ast.Unparen(be.Y).(*ast.Ident)
	default:
		return 0
	}
	if id == nil || pass.ObjectOf(id) != errObj {
		return 0
	}
	if be.Op == token.NEQ {
		return 1
	}
	return -1
}
