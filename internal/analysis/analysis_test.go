package analysis

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ignoreDirective, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs, malformed := parseDirectives(fset, f)
	return fset, dirs, malformed
}

func TestParseDirectives(t *testing.T) {
	src := `package x

func a() {
	//lint:ignore determinism timing is telemetry-only
	_ = 1
	_ = 2 //lint:ignore errcanon,ctxloop two checks one reason
}
`
	_, dirs, malformed := parseSrc(t, src)
	if len(malformed) != 0 {
		t.Fatalf("malformed = %v", malformed)
	}
	if len(dirs) != 2 {
		t.Fatalf("got %d directives, want 2", len(dirs))
	}
	if !dirs[0].checks["determinism"] || dirs[0].reason != "timing is telemetry-only" {
		t.Errorf("directive 0 = %+v", dirs[0])
	}
	if !dirs[1].checks["errcanon"] || !dirs[1].checks["ctxloop"] {
		t.Errorf("directive 1 checks = %v", dirs[1].checks)
	}
}

func TestParseDirectivesMalformed(t *testing.T) {
	for _, src := range []string{
		"package x\n\n//lint:ignore\nfunc a() {}\n",
		"package x\n\n//lint:ignore determinism\nfunc a() {}\n", // no reason
	} {
		_, dirs, malformed := parseSrc(t, src)
		if len(dirs) != 0 {
			t.Errorf("%q: parsed %d directives from malformed input", src, len(dirs))
		}
		if len(malformed) != 1 {
			t.Fatalf("%q: got %d malformed diags, want 1", src, len(malformed))
		}
		d := malformed[0]
		if d.Check != DirectiveCheck || !strings.Contains(d.Message, "malformed directive") {
			t.Errorf("malformed diag = %+v", d)
		}
		if d.Pos.Line != 3 {
			t.Errorf("malformed diag line = %d, want 3", d.Pos.Line)
		}
	}
}

func TestDirectiveLineScope(t *testing.T) {
	d := &ignoreDirective{
		pos:    token.Position{Filename: "x.go", Line: 10},
		checks: map[string]bool{"determinism": true},
	}
	if !d.matches("determinism", 10) {
		t.Error("directive should cover its own line")
	}
	if !d.matches("determinism", 11) {
		t.Error("directive should cover the next line")
	}
	if d.matches("determinism", 12) {
		t.Error("directive must not cover two lines down")
	}
	if d.matches("determinism", 9) {
		t.Error("directive must not cover the line above")
	}
	if d.matches("errcanon", 10) {
		t.Error("directive must not cover other checks")
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   string // verb letters concatenated; "-" for nil
	}{
		{"plain", ""},
		{"%v", "v"},
		{"%d%%: %v", "dv"},
		{"%s %w", "sw"},
		{"%+0.3f", "f"},
		{"%*d", "*d"},
		{"%[1]s", "-"},
		{"100%%", ""},
	}
	for _, c := range cases {
		got := formatVerbs(c.format)
		s := ""
		if got == nil {
			s = "-"
		}
		for _, r := range got {
			s += string(r)
		}
		if s != c.want {
			t.Errorf("formatVerbs(%q) = %q, want %q", c.format, s, c.want)
		}
	}
}

func TestDeterministicPath(t *testing.T) {
	yes := []string{
		"patchdb",
		"patchdb/internal/core/nearestlink",
		"patchdb/internal/core/augment",
		"patchdb/internal/pipeline",
		"patchdb/internal/nvd",
		"patchdb/internal/corpus",
		"patchdb/internal/checkpoint",
	}
	no := []string{
		"patchdb/cmd/patchdb-bench",
		"patchdb/internal/telemetry",
		"patchdb/internal/retry",
		"patchdb/internal/ml/tree",
		"patchdb/internal/experiments",
		"patchdb/internal/corpusx",
	}
	for _, p := range yes {
		if !deterministicPath(p) {
			t.Errorf("deterministicPath(%q) = false, want true", p)
		}
	}
	for _, p := range no {
		if deterministicPath(p) {
			t.Errorf("deterministicPath(%q) = true, want false", p)
		}
	}
}

func TestArtifactWriterPath(t *testing.T) {
	yes := []string{
		"patchdb",
		"patchdb/internal/telemetry",
		"patchdb/internal/store",
		"patchdb/internal/checkpoint",
		"patchdb/cmd/patchdb-build",
		"patchdb/cmd/patchdb-serve",
	}
	no := []string{
		"patchdb/internal/atomicio", // the one sanctioned direct writer
		"patchdb/internal/core/augment",
		"patchdb/internal/nvd",
		"patchdb/internal/experiments",
	}
	for _, p := range yes {
		if !artifactWriterPath(p) {
			t.Errorf("artifactWriterPath(%q) = false, want true", p)
		}
	}
	for _, p := range no {
		if artifactWriterPath(p) {
			t.Errorf("artifactWriterPath(%q) = true, want false", p)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "pkg/file.go", Line: 12, Column: 7},
		Check:   "determinism",
		Message: "wall-clock read",
	}
	want := "pkg/file.go:12:7: determinism: wall-clock read"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(root, "repo") && !strings.Contains(root, "/") {
		t.Errorf("suspicious module root %q", root)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if l.Module != "patchdb" {
		t.Errorf("module = %q, want patchdb", l.Module)
	}
	if _, err := FindModuleRoot("/"); err == nil {
		t.Error("FindModuleRoot(/) should fail")
	}
}

func TestAllAnalyzersNamed(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("incomplete analyzer %+v", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"determinism", "ctxloop", "errcanon", "telemetrysafe"} {
		if !seen[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
}
