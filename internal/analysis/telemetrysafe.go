package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// telemetryPkgPath is the package whose Hub type the analyzer guards.
const telemetryPkgPath = "patchdb/internal/telemetry"

// hubSafeConstructors are the functions documented to never return a nil
// *telemetry.Hub.
var hubSafeConstructors = map[string]bool{
	"NewHub":              true,
	"Default":             true,
	"HubFromContext":      true,
	"NewTelemetryHub":     true,
	"DefaultTelemetryHub": true,
}

// TelemetrySafe enforces the nil-safety contract of the telemetry layer:
// every method on a telemetry type is a no-op on a nil receiver, but the
// *telemetry.Hub struct exposes its Registry, Tracer, and Logs as fields — a
// field
// read through a nil hub panics. Config-supplied hubs are optional by
// contract (nil means "no telemetry"), so a hub must be proven non-nil
// before its fields are dereferenced: obtained from a never-nil constructor
// (NewHub, Default, HubFromContext), or nil-checked in the enclosing
// function first.
var TelemetrySafe = &Analyzer{
	Name: "telemetrysafe",
	Doc:  "guard possibly-nil *telemetry.Hub values before accessing their fields",
	Run:  runTelemetrySafe,
}

func runTelemetrySafe(pass *Pass) {
	// The telemetry package itself constructs hubs and owns the contract.
	if strings.HasPrefix(pass.Pkg.ImportPath, telemetryPkgPath) {
		return
	}
	for _, f := range pass.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			if sel, ok := n.(*ast.SelectorExpr); ok {
				checkHubFieldAccess(pass, sel, stack)
			}
			return true
		})
	}
}

func checkHubFieldAccess(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	if !isHubType(selection.Recv()) {
		return
	}
	field := sel.Sel.Name
	if field != "Registry" && field != "Tracer" && field != "Logs" {
		return
	}
	if hubExprSafe(pass, sel.X, stack) {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"%s read through a possibly-nil *telemetry.Hub; nil-check it (or obtain the hub via telemetry.HubFromContext) first", field)
}

// hubExprSafe reports whether the hub operand is provably non-nil: the
// direct result of a never-nil constructor, a package-level hub (initialized
// at startup), or an identifier the enclosing function nil-checks or assigns
// from a safe constructor before this use.
func hubExprSafe(pass *Pass, x ast.Expr, stack []ast.Node) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.CallExpr:
		return isSafeHubCall(x)
	case *ast.Ident:
		obj := pass.ObjectOf(x)
		if obj == nil {
			return false
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return true // package-level hub, initialized at startup
		}
		// Closures capture their parent's locals, so a guard in any
		// enclosing function covers a use in a nested literal.
		for _, body := range enclosingFuncBodies(stack) {
			if identProvenSafe(pass, body, obj, x.Pos()) {
				return true
			}
		}
		return false
	}
	return false
}

// isSafeHubCall reports whether call invokes a never-nil hub constructor,
// matched by name so the rule covers both the telemetry package and the root
// package's re-exported wrappers.
func isSafeHubCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return hubSafeConstructors[fun.Name]
	case *ast.SelectorExpr:
		return hubSafeConstructors[fun.Sel.Name]
	}
	return false
}

// identProvenSafe reports whether, before use, the enclosing function either
// nil-compares the identifier's object (any `h == nil` / `h != nil` guard —
// the repo idiom replaces or returns on nil) or assigns it from a safe
// constructor.
func identProvenSafe(pass *Pass, body *ast.BlockStmt, obj types.Object, use token.Pos) bool {
	safe := false
	ast.Inspect(body, func(n ast.Node) bool {
		if safe {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.OpPos >= use || (n.Op != token.EQL && n.Op != token.NEQ) {
				return true
			}
			for _, pair := range [][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
				id, ok := ast.Unparen(pair[0]).(*ast.Ident)
				if !ok || pass.ObjectOf(id) != obj {
					continue
				}
				if lit, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && lit.Name == "nil" {
					safe = true
					return false
				}
			}
		case *ast.AssignStmt:
			if n.Pos() >= use {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || len(n.Rhs) <= i {
					continue
				}
				target := pass.ObjectOf(id)
				if target != obj {
					continue
				}
				if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok && isSafeHubCall(call) {
					safe = true
					return false
				}
			}
		}
		return true
	})
	return safe
}

// isHubType reports whether t is telemetry.Hub or *telemetry.Hub.
func isHubType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == telemetryPkgPath && obj.Name() == "Hub"
}
