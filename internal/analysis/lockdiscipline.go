package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"patchdb/internal/analysis/cfg"
)

// LockDiscipline is the flow-sensitive mutex checker: a sync.Mutex/RWMutex
// must never be copied by value (signatures that take or return one), every
// Lock/RLock must be matched by an Unlock/RUnlock on every path that
// returns normally, and no lock may be held across a blocking channel
// operation — a send, receive, blocking select, or channel range while
// holding a mutex serializes the scheduler behind the lock and is this
// repo's canonical deadlock shape (a worker blocked on a full results
// channel while holding the shard lock the consumer needs).
var LockDiscipline = &Analyzer{
	Name:    "lockdiscipline",
	Doc:     "mutexes are never copied by value, every Lock pairs with an Unlock on all paths, and no lock is held across a blocking channel op",
	Version: 1,
	Run:     runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				checkLockCopies(pass, fd)
			}
		}
		funcBodies(f, func(body *ast.BlockStmt) {
			checkLockFlow(pass, body)
		})
	}
}

// checkLockCopies flags signature slots (receiver, params, results) whose
// type is, or contains by value, a sync.Mutex or sync.RWMutex.
func checkLockCopies(pass *Pass, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, slot string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if name, found := containsLockByValue(t, nil); found {
				pass.Reportf(field.Type.Pos(), "%s copies %s by value; pass a pointer so Lock and Unlock see the same state", slot, name)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

// containsLockByValue reports whether t is or (recursively through struct
// fields and array elements) contains a sync.Mutex or sync.RWMutex held by
// value, returning the lock's name for the diagnostic.
func containsLockByValue(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return "sync." + obj.Name(), true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, found := containsLockByValue(u.Field(i).Type(), seen); found {
				return name, true
			}
		}
	case *types.Array:
		return containsLockByValue(u.Elem(), seen)
	}
	return "", false
}

// Event kinds inside a block, in source order.
const (
	lockEv = iota
	unlockEv
	chanEv
)

type lockEvent struct {
	kind int
	pos  token.Pos
	key  string // textual lock key for lock/unlock events
	name string // Lock/RLock/Unlock/RUnlock, or a channel-op description
}

// checkLockFlow builds the body's CFG and, for each Lock/RLock site, walks
// forward demanding a matching unlock before every normal exit and flagging
// blocking channel operations encountered while the lock is held.
func checkLockFlow(pass *Pass, body *ast.BlockStmt) {
	g := cfg.New(body)

	// Channel operations that are part of a select's comm clauses complete
	// as the select dispatches — the dispatch block is the blocking point,
	// so the clause ops themselves must not double-report.
	commOps := make(map[ast.Node]bool)
	inspectNoFuncLit(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			if comm := cl.(*ast.CommClause).Comm; comm != nil {
				ast.Inspect(comm, func(x ast.Node) bool {
					switch x.(type) {
					case *ast.SendStmt, *ast.UnaryExpr:
						commOps[x] = true
					}
					return true
				})
			}
		}
		return true
	})

	events := make(map[*cfg.Block][]lockEvent)
	for _, blk := range g.Blocks {
		var evs []lockEvent
		if blk.Select != nil && blockingSelect(blk.Select) {
			evs = append(evs, lockEvent{kind: chanEv, pos: blk.Select.Pos(), name: "a blocking select"})
		}
		for _, node := range blk.Nodes {
			if _, ok := node.(*ast.DeferStmt); ok {
				continue // defers run at exit; handled via g.Defers below
			}
			inspectNoFuncLit(node, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if key, method, ok := mutexOp(pass, n); ok {
						kind := lockEv
						if strings.HasSuffix(method, "Unlock") {
							kind = unlockEv
						}
						evs = append(evs, lockEvent{kind: kind, pos: n.Pos(), key: key, name: method})
					}
				case *ast.SendStmt:
					if !commOps[n] {
						evs = append(evs, lockEvent{kind: chanEv, pos: n.Pos(), name: "a channel send"})
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW && !commOps[n] {
						evs = append(evs, lockEvent{kind: chanEv, pos: n.Pos(), name: "a channel receive"})
					}
				}
				return true
			})
		}
		if blk.Range != nil {
			if t := pass.TypeOf(blk.Range.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					evs = append(evs, lockEvent{kind: chanEv, pos: blk.Range.Pos(), name: "a channel range"})
				}
			}
		}
		if len(evs) > 0 {
			events[blk] = evs
		}
	}

	// Deferred unlocks cover every exit after registration.
	deferUnlocks := make(map[string]bool) // key + "/" + method
	for _, d := range g.Defers {
		if key, method, ok := mutexOp(pass, d.Call); ok && strings.HasSuffix(method, "Unlock") {
			deferUnlocks[key+"/"+method] = true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			inspectNoFuncLit(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, method, ok := mutexOp(pass, call); ok && strings.HasSuffix(method, "Unlock") {
						deferUnlocks[key+"/"+method] = true
					}
				}
				return true
			})
		}
	}

	for _, blk := range g.Blocks {
		for i, ev := range events[blk] {
			if ev.kind != lockEv {
				continue
			}
			unlockName := "Unlock"
			if ev.name == "RLock" {
				unlockName = "RUnlock"
			}
			deferred := deferUnlocks[ev.key+"/"+unlockName]
			leaks, chanOp := walkLocked(g, events, blk, i+1, ev.key, unlockName)
			if leaks && !deferred {
				pass.Reportf(ev.pos, "%s.%s() has no matching %s on every return path; add one or defer it", ev.key, ev.name, unlockName)
			}
			if chanOp != nil {
				pass.Reportf(chanOp.pos, "%s is performed while holding %s (locked with %s); release the lock before blocking", chanOp.name, ev.key, ev.name)
			}
		}
	}
}

// walkLocked follows every path from a lock site until the matching unlock,
// reporting whether some path reaches the normal exit still locked and the
// first blocking channel op encountered while held.
func walkLocked(g *cfg.Graph, events map[*cfg.Block][]lockEvent, start *cfg.Block, startIdx int, key, unlockName string) (leaks bool, chanOp *lockEvent) {
	visited := make(map[*cfg.Block]bool)
	visited[start] = true
	var walk func(blk *cfg.Block, idx int)
	walk = func(blk *cfg.Block, idx int) {
		evs := events[blk]
		for i := idx; i < len(evs); i++ {
			ev := evs[i]
			switch ev.kind {
			case unlockEv:
				if ev.key == key && ev.name == unlockName {
					return // this path released the lock
				}
			case chanEv:
				if chanOp == nil {
					e := ev
					chanOp = &e
				}
			}
		}
		for _, succ := range blk.Succs {
			switch succ {
			case g.Exit:
				leaks = true
			case g.PanicExit:
				// Explicit panic paths are exempt: any call can panic, and
				// deferred recovery is out of scope.
			default:
				if !visited[succ] {
					visited[succ] = true
					walk(succ, 0)
				}
			}
		}
	}
	walk(start, startIdx)
	return leaks, chanOp
}

// blockingSelect reports whether the select has no default clause (a
// default makes it a poll, not a block).
func blockingSelect(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cl.(*ast.CommClause).Comm == nil {
			return false
		}
	}
	return true
}

// mutexOp classifies a call as a sync mutex operation, returning the
// textual key of the receiver expression ("mu", "s.mu") and the method
// name. Receivers that are not simple ident/selector chains have no stable
// key and are skipped.
func mutexOp(pass *Pass, call *ast.CallExpr) (key, method string, ok bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	key = exprKey(sel.X)
	if key == "" {
		return "", "", false
	}
	return key, fn.Name(), true
}

// exprKey renders ident/selector chains ("mu", "s.shards.mu") as a textual
// lock identity; anything fancier (index expressions, calls) yields "".
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprKey(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return ""
}
