// Package analysis is patchdb's stdlib-only static-analysis framework: a
// module-aware file-set loader with per-package type-checking (load.go), a
// small analyzer API with position-accurate diagnostics, line-scoped
// `//lint:ignore <check> <reason>` suppression, and the analyzers that
// machine-check the repo's construction-hygiene invariants:
//
//   - determinism: no wall-clock reads, process-global randomness, or
//     order-sensitive map iteration in the deterministic build packages
//   - ctxloop: worker loops in context-aware functions must observe
//     cancellation on their hot path
//   - errcanon: canonical errors are matched with errors.Is and wrapped
//     with %w, never compared or reformatted away
//   - telemetrysafe: possibly-nil *telemetry.Hub values are guarded before
//     their fields are dereferenced
//   - atomicwrite: artifact-writing packages persist files through
//     internal/atomicio's temp+fsync+rename, never direct os writes
//   - logcanon: server/pipeline packages log through the telemetry hub's
//     structured slog logger, never fmt.Print* or log.Print*
//   - lockdiscipline: mutexes are never copied by value, every Lock is
//     paired with an Unlock on every path, and no lock is held across a
//     blocking channel operation (flow-sensitive, via internal/analysis/cfg)
//   - goroleak: goroutines in the server/pipeline packages exit via ctx,
//     a WaitGroup, or a closable channel — never leak past shutdown
//   - closeleak: os.File handles and http.Response bodies are closed on
//     every path, with closes-argument facts so helpers that close for
//     their caller don't trip false positives
//
// Beyond the per-package syntactic checks, the framework has a small
// control-flow-graph package (internal/analysis/cfg) for path-sensitive
// analyzers and a cross-package fact layer (facts.go): analyzers export
// per-object facts that the incremental driver (driver.go) propagates in
// dependency order, so "transitively calls time.Now" and "closes its
// argument" resolve across package boundaries. The driver caches per-unit
// results under .lintcache/ keyed by a content hash of (sources, config,
// analyzer versions, imported facts) and analyzes packages concurrently in
// topological waves — a warm run re-checks only what changed.
//
// The cmd/patchdb-lint CLI runs the suite over ./... and exits non-zero on
// findings, making the invariants part of `make verify`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the check identifier used in output and in lint:ignore
	// directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Version enters the incremental driver's cache key: bump it whenever
	// the analyzer's logic (diagnostics or exported facts) changes, so
	// stale cache entries invalidate.
	Version int
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, CtxLoop, ErrCanon, TelemetrySafe, AtomicWrite, LogCanon,
		LockDiscipline, GoroLeak, CloseLeak,
	}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Facts resolves object facts: this unit's own exports layered over the
	// facts imported from already-analyzed dependency packages.
	Facts FactView

	diags      *[]Diagnostic
	exports    *FactSet
	directives map[string][]*ignoreDirective // filename -> directives of this unit
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact records a fact on obj under this analyzer's namespace
// ("analyzer/name"). Facts on objects without a stable cross-load key
// (locals, builtins) are silently dropped.
func (p *Pass) ExportObjectFact(obj types.Object, name, payload string) {
	if p.exports != nil {
		p.exports.add(ObjKey(obj), p.Analyzer.Name+"/"+name, payload)
	}
}

// ObjectFact resolves a fact of this analyzer on obj: first this unit's own
// exports, then the imported facts of dependency packages.
func (p *Pass) ObjectFact(obj types.Object, name string) (string, bool) {
	if p.Facts == nil {
		return "", false
	}
	return p.Facts.Fact(ObjKey(obj), p.Analyzer.Name+"/"+name)
}

// Suppressed reports whether a diagnostic of this analyzer's check at pos
// would be suppressed by a lint:ignore directive. Analyzers that derive
// facts from would-be findings (determinism's clock-reachability seeds)
// use this so a reasoned ignore also stops the taint from propagating to
// callers.
func (p *Pass) Suppressed(pos token.Pos) bool {
	position := p.Pkg.Fset.Position(pos)
	for _, dir := range p.directives[position.Filename] {
		if dir.matches(p.Analyzer.Name, position.Line) {
			return true
		}
	}
	return false
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object an identifier denotes (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// CalleeFunc resolves a call expression to the package-level function or
// method it invokes, or nil (indirect calls, conversions, builtins).
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the conventional path:line:col form. Paths
// are emitted as stored; Run rewrites them relative to the module root.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// DirectiveCheck names the internal check that validates lint:ignore
// directives themselves.
const DirectiveCheck = "lintdirective"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	checks map[string]bool
	reason string
}

// matches reports whether the directive suppresses a diagnostic of the given
// check on the given line of the same file: the directive covers its own
// line (trailing comment) and the line directly below (comment-above-
// statement form).
func (d *ignoreDirective) matches(check string, line int) bool {
	if !d.checks[check] {
		return false
	}
	return line == d.pos.Line || line == d.pos.Line+1
}

// parseDirectives extracts lint:ignore directives from a file, reporting
// malformed ones (missing check list or missing reason) as diagnostics.
func parseDirectives(fset *token.FileSet, f *ast.File) (dirs []*ignoreDirective, malformed []Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) < 2 {
				malformed = append(malformed, Diagnostic{
					Pos:     pos,
					Check:   DirectiveCheck,
					Message: "malformed directive: want //lint:ignore <check>[,<check>] <reason>",
				})
				continue
			}
			checks := make(map[string]bool)
			for _, name := range strings.Split(fields[0], ",") {
				if name != "" {
					checks[name] = true
				}
			}
			dirs = append(dirs, &ignoreDirective{
				pos:    pos,
				checks: checks,
				reason: strings.Join(fields[1:], " "),
			})
		}
	}
	return dirs, malformed
}

// UnitResult is the outcome of analyzing one package unit: the surviving
// (post-suppression) diagnostics, the facts the unit exports for dependent
// packages, and per-analyzer wall-clock spent — everything the incremental
// driver caches.
type UnitResult struct {
	Diagnostics []Diagnostic
	Facts       *FactSet
	// AnalyzerNanos records wall-clock nanoseconds per analyzer (timing is
	// telemetry-only; it never affects diagnostics or facts).
	AnalyzerNanos map[string]int64
}

// RunUnit executes the analyzers over one package unit with the given
// imported facts, applies lint:ignore suppression, and returns the
// surviving diagnostics (sorted), exported facts, and per-analyzer timing.
// Malformed directives are reported under the "lintdirective" check and
// cannot be suppressed.
func RunUnit(pkg *Package, analyzers []*Analyzer, imported FactView, clock func() int64) UnitResult {
	var raw []Diagnostic
	var malformed []Diagnostic
	directives := make(map[string][]*ignoreDirective) // filename -> directives
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		dirs, bad := parseDirectives(pkg.Fset, f)
		directives[name] = append(directives[name], dirs...)
		malformed = append(malformed, bad...)
	}

	exports := NewFactSet()
	nanos := make(map[string]int64, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Pkg:        pkg,
			Facts:      factUnion{own: exports, imported: imported},
			diags:      &raw,
			exports:    exports,
			directives: directives,
		}
		var start int64
		if clock != nil {
			start = clock()
		}
		a.Run(pass)
		if clock != nil {
			nanos[a.Name] += clock() - start
		}
	}

	var out []Diagnostic
	seen := make(map[string]bool)
	for _, d := range raw {
		suppressed := false
		for _, dir := range directives[d.Pos.Filename] {
			if dir.matches(d.Check, d.Pos.Line) {
				suppressed = true
				break
			}
		}
		if suppressed {
			continue
		}
		key := d.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	for _, d := range malformed {
		key := d.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	SortDiagnostics(out)
	return UnitResult{Diagnostics: out, Facts: exports, AnalyzerNanos: nanos}
}

// Run executes the analyzers over the packages in order, threading each
// unit's exported facts into the later ones — list dependency packages
// before their dependents to exercise cross-package facts. Diagnostics are
// suppressed per lint:ignore directives and returned globally sorted.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	facts := NewFactSet()
	var out []Diagnostic
	for _, pkg := range pkgs {
		res := RunUnit(pkg, analyzers, facts, nil)
		facts.Merge(res.Facts)
		out = append(out, res.Diagnostics...)
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders diagnostics by (file, line, column, check,
// message) — the stable order both output modes and the cache emit, so CI
// diffs are deterministic at any worker count.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
