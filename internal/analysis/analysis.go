// Package analysis is patchdb's stdlib-only static-analysis framework: a
// module-aware file-set loader with per-package type-checking (load.go), a
// small analyzer API with position-accurate diagnostics, line-scoped
// `//lint:ignore <check> <reason>` suppression, and the analyzers that
// machine-check the repo's construction-hygiene invariants:
//
//   - determinism: no wall-clock reads, process-global randomness, or
//     order-sensitive map iteration in the deterministic build packages
//   - ctxloop: worker loops in context-aware functions must observe
//     cancellation on their hot path
//   - errcanon: canonical errors are matched with errors.Is and wrapped
//     with %w, never compared or reformatted away
//   - telemetrysafe: possibly-nil *telemetry.Hub values are guarded before
//     their fields are dereferenced
//   - atomicwrite: artifact-writing packages persist files through
//     internal/atomicio's temp+fsync+rename, never direct os writes
//   - logcanon: server/pipeline packages log through the telemetry hub's
//     structured slog logger, never fmt.Print* or log.Print*
//
// The cmd/patchdb-lint CLI runs the suite over ./... and exits non-zero on
// findings, making the invariants part of `make verify`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the check identifier used in output and in lint:ignore
	// directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, CtxLoop, ErrCanon, TelemetrySafe, AtomicWrite, LogCanon}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object an identifier denotes (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// CalleeFunc resolves a call expression to the package-level function or
// method it invokes, or nil (indirect calls, conversions, builtins).
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the conventional path:line:col form. Paths
// are emitted as stored; Run rewrites them relative to the module root.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// DirectiveCheck names the internal check that validates lint:ignore
// directives themselves.
const DirectiveCheck = "lintdirective"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	checks map[string]bool
	reason string
}

// matches reports whether the directive suppresses a diagnostic of the given
// check on the given line of the same file: the directive covers its own
// line (trailing comment) and the line directly below (comment-above-
// statement form).
func (d *ignoreDirective) matches(check string, line int) bool {
	if !d.checks[check] {
		return false
	}
	return line == d.pos.Line || line == d.pos.Line+1
}

// parseDirectives extracts lint:ignore directives from a file, reporting
// malformed ones (missing check list or missing reason) as diagnostics.
func parseDirectives(fset *token.FileSet, f *ast.File) (dirs []*ignoreDirective, malformed []Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) < 2 {
				malformed = append(malformed, Diagnostic{
					Pos:     pos,
					Check:   DirectiveCheck,
					Message: "malformed directive: want //lint:ignore <check>[,<check>] <reason>",
				})
				continue
			}
			checks := make(map[string]bool)
			for _, name := range strings.Split(fields[0], ",") {
				if name != "" {
					checks[name] = true
				}
			}
			dirs = append(dirs, &ignoreDirective{
				pos:    pos,
				checks: checks,
				reason: strings.Join(fields[1:], " "),
			})
		}
	}
	return dirs, malformed
}

// Run executes the analyzers over the packages, applies lint:ignore
// suppression, and returns the surviving diagnostics sorted by position.
// Malformed directives are themselves reported under the "lintdirective"
// check (and cannot be suppressed).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	var malformed []Diagnostic
	directives := make(map[string][]*ignoreDirective) // filename -> directives
	seenFile := make(map[string]bool)

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if seenFile[name] {
				continue
			}
			seenFile[name] = true
			dirs, bad := parseDirectives(pkg.Fset, f)
			directives[name] = append(directives[name], dirs...)
			malformed = append(malformed, bad...)
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
			a.Run(pass)
		}
	}

	var out []Diagnostic
	seen := make(map[string]bool)
	for _, d := range raw {
		suppressed := false
		for _, dir := range directives[d.Pos.Filename] {
			if dir.matches(d.Check, d.Pos.Line) {
				suppressed = true
				break
			}
		}
		if suppressed {
			continue
		}
		key := d.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	for _, d := range malformed {
		key := d.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}
