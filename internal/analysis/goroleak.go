package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLeak guards the long-running server and pipeline packages against
// leaked goroutines: every `go` statement there must have its exit tied to
// something the shutdown path controls — a context (ctx.Done/ctx.Err), a
// WaitGroup (wg.Done signals a waiter), or a channel (a receive or range
// ends when the channel is closed or served). The tie may be indirect:
// "this function's body observes ctx" is exported as a fact, so
// `go s.serve(ctx)` resolves across packages. Goroutines whose only exit
// signal is a `defer close(done)` are still flagged — closing a channel
// tells others the goroutine finished, it does not bound when that happens.
var GoroLeak = &Analyzer{
	Name:    "goroleak",
	Doc:     "goroutines in server/pipeline packages must tie their exit to a context, WaitGroup, or channel",
	Version: 1,
	Run:     runGoroLeak,
}

// tiedFact marks a function whose body ties its own exit to a shutdown
// signal; calling it as (or from) a goroutine body makes the goroutine
// shutdown-bounded.
const tiedFact = "tied"

// goroLeakPath gates reporting to the packages that host long-running
// goroutines: the pipeline, the snapshot store, the telemetry hub, and the
// binaries. Facts are computed module-wide so ties resolve through helper
// packages.
func goroLeakPath(path string) bool {
	for _, p := range []string{
		"patchdb/internal/pipeline",
		"patchdb/internal/store",
		"patchdb/internal/telemetry",
	} {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return strings.HasPrefix(path, "patchdb/cmd/")
}

func runGoroLeak(pass *Pass) {
	tied := computeTied(pass)
	if !goroLeakPath(pass.Pkg.ImportPath) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineTied(pass, gs, tied) {
				pass.Reportf(gs.Pos(),
					"goroutine's exit is not tied to a context, WaitGroup, or channel and can outlive shutdown; wait on ctx.Done or a channel, signal a WaitGroup, or lint:ignore with the shutdown story")
			}
			return true
		})
	}
}

// computeTied builds the package-local tied-function set and exports the
// fact for each: a function is tied when its body (descending into nested
// literals, but not into bodies it spawns with `go` — those are separate
// goroutines) directly observes a shutdown signal, or calls a tied
// function. External test units export nothing.
func computeTied(pass *Pass) map[types.Object]bool {
	if strings.HasSuffix(pass.Pkg.ImportPath, ".test") {
		return nil
	}
	type funcInfo struct {
		obj     types.Object
		tied    bool
		callees []*types.Func
	}
	infos := make(map[types.Object]*funcInfo)
	var order []types.Object

	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Pkg.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			info := &funcInfo{obj: obj}
			infos[obj] = info
			order = append(order, obj)
			inspectOwnGoroutine(fd.Body, func(n ast.Node) bool {
				if directTieSignal(pass, n) {
					info.tied = true
					return true
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if fn := pass.CalleeFunc(call); fn != nil && fn.Pkg() != nil {
						if fn.Pkg() == pass.Pkg.Types {
							info.callees = append(info.callees, fn)
						} else if _, ok := pass.ObjectFact(fn, tiedFact); ok {
							info.tied = true
						}
					}
				}
				return true
			})
		}
	}

	for changed := true; changed; {
		changed = false
		for _, obj := range order {
			info := infos[obj]
			if info.tied {
				continue
			}
			for _, callee := range info.callees {
				if ci, ok := infos[callee]; ok && ci.tied {
					info.tied = true
					changed = true
					break
				}
			}
		}
	}

	tied := make(map[types.Object]bool)
	for _, obj := range order {
		if infos[obj].tied {
			tied[obj] = true
			pass.ExportObjectFact(obj, tiedFact, "1")
		}
	}
	return tied
}

// goroutineTied reports whether the goroutine spawned by gs has a bounded
// exit. Indirect spawns (`go fn()` through a function value) are given the
// benefit of the doubt — the target is unknowable statically.
func goroutineTied(pass *Pass, gs *ast.GoStmt, tied map[types.Object]bool) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		found := false
		inspectOwnGoroutine(lit.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if directTieSignal(pass, n) {
				found = true
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := pass.CalleeFunc(call); fn != nil {
					if tied[fn] {
						found = true
						return false
					}
					if _, ok := pass.ObjectFact(fn, tiedFact); ok {
						found = true
						return false
					}
				}
			}
			return true
		})
		return found
	}
	fn := pass.CalleeFunc(gs.Call)
	if fn == nil {
		return true // indirect spawn; target unknown
	}
	if tied[fn] {
		return true
	}
	_, ok := pass.ObjectFact(fn, tiedFact)
	return ok
}

// directTieSignal reports whether node n is a direct shutdown-signal
// observation: a ctx.Done()/ctx.Err() call, a WaitGroup Done, a channel
// receive, or a range over a channel. Channel *sends* and close() calls do
// not count — they signal others, they do not bound this goroutine.
func directTieSignal(pass *Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		fn := pass.CalleeFunc(n)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "context":
			return fn.Name() == "Done" || fn.Name() == "Err"
		case "sync":
			return fn.Name() == "Done" || fn.Name() == "Wait"
		}
	case *ast.UnaryExpr:
		return n.Op == token.ARROW
	case *ast.RangeStmt:
		if t := pass.TypeOf(n.X); t != nil {
			_, isChan := t.Underlying().(*types.Chan)
			return isChan
		}
	}
	return false
}

// inspectOwnGoroutine walks a goroutine body in source order, descending
// into nested function literals that run on this goroutine but not into
// literals spawned with a nested `go` statement — their ties are their own.
func inspectOwnGoroutine(body *ast.BlockStmt, visit func(ast.Node) bool) {
	skip := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				skip[lit] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if skip[n] {
			return false
		}
		return visit(n)
	})
}
